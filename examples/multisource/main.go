// Multi-source dissemination: several gateways already hold a firmware
// update and must flood it to the whole field. The scheduler's PreCovered
// support turns this into the same conflict-aware minimum-latency problem,
// and monotonicity (more initial coverage never hurts) shows up directly:
// each added gateway shrinks the schedule.
package main

import (
	"fmt"
	"log"

	"mlbs"
)

func main() {
	dep, err := mlbs.PaperDeployment(200, 3)
	if err != nil {
		log.Fatal(err)
	}
	g := dep.G

	// Gateways: the source plus up to three nodes spread across the field
	// (chosen as the farthest-first sweep from the source).
	gateways := []mlbs.NodeID{dep.Source}
	dist := g.BFS(dep.Source)
	for len(gateways) < 4 {
		far, farD := -1, -1
		for v := 0; v < g.N(); v++ {
			d := dist[v]
			for _, gw := range gateways[1:] {
				if gd := g.BFS(gw)[v]; gd < d {
					d = gd
				}
			}
			if d > farD {
				far, farD = v, d
			}
		}
		gateways = append(gateways, far)
	}

	fmt.Printf("field: %d sensors; gateways added farthest-first: %v\n\n", g.N(), gateways)
	fmt.Println("gateways  G-OPT latency (rounds)   Mica2 wall clock")
	for k := 1; k <= len(gateways); k++ {
		in := mlbs.SyncInstance(g, dep.Source)
		in.PreCovered = gateways[1:k]
		res, err := mlbs.GOPT().Schedule(in)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9d %-24d %v\n", k, res.Schedule.Latency(),
			mlbs.Mica2().BroadcastTime(res.Schedule.Latency()))
	}
	fmt.Println("\nEach gateway is one more initially-covered node (Instance.PreCovered);")
	fmt.Println("latency is monotone non-increasing in the gateway set — the property")
	fmt.Println("that also justifies OPT's restriction to maximal conflict-free sets.")
}
