// Fire-alarm dissemination: the mission-critical scenario that motivates
// minimum-latency broadcasting ("in many mission-critical applications, it
// is very important to accomplish the broadcasting quickly", Section I).
//
// A sensor network instruments a long industrial hall: a dense grid of
// smoke sensors in each of four bays, connected through narrow doorways.
// The alarm starts at one corner and must reach every node; doorway nodes
// are contention hot-spots where conflicting relays would collide, exactly
// the structure in which BFS-layer blocking hurts and the conflict-aware
// pipeline shines.
package main

import (
	"fmt"
	"log"

	"mlbs"
)

// buildHall lays out four 5×4 sensor bays side by side, 9 ft sensor pitch,
// with single-sensor doorways linking consecutive bays.
func buildHall() []mlbs.Point {
	var pts []mlbs.Point
	const pitch = 9.0
	for bay := 0; bay < 4; bay++ {
		x0 := float64(bay) * 6 * pitch
		for gx := 0; gx < 5; gx++ {
			for gy := 0; gy < 4; gy++ {
				pts = append(pts, mlbs.Point{X: x0 + float64(gx)*pitch, Y: float64(gy) * pitch})
			}
		}
		if bay < 3 {
			// Doorway sensor between this bay and the next, aligned with
			// the second sensor row so both sides are in radio range.
			pts = append(pts, mlbs.Point{X: x0 + 5*pitch, Y: pitch})
		}
	}
	return pts
}

func main() {
	pts := buildHall()
	g := mlbs.NewUDG(pts, 10)
	if !g.Connected() {
		log.Fatal("hall layout disconnected; adjust the pitch")
	}
	source := mlbs.NodeID(0) // the corner detector that tripped
	in := mlbs.SyncInstance(g, source)
	ecc, _ := g.Eccentricity(source)
	fmt.Printf("hall: %d sensors, %d links, alarm source %d, farthest sensor %d hops away\n",
		g.N(), g.M(), source, ecc)

	radio := mlbs.Mica2()
	type row struct {
		name string
		s    mlbs.Scheduler
	}
	for _, r := range []row{
		{"26-approx (layer-blocked)", mlbs.Baseline26()},
		{"E-model (pipelined)", mlbs.EModel()},
		{"G-OPT (exact greedy)", mlbs.GOPT()},
	} {
		res, err := r.s.Schedule(in)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := mlbs.Replay(in, res.Schedule)
		if err != nil || !rep.Completed {
			log.Fatalf("%s: replay failed (%v)", r.name, err)
		}
		fmt.Printf("%-28s alarm everywhere after %2d rounds = %8v\n",
			r.name, res.Schedule.Latency(), radio.BroadcastTime(res.Schedule.Latency()))
	}
	fmt.Printf("%-28s guaranteed ceiling %2d rounds = %8v (Theorem 1)\n",
		"analysis", mlbs.SyncLatencyBound(ecc), radio.BroadcastTime(mlbs.SyncLatencyBound(ecc)))

	// Sleepy building mode: at night the hall runs a 2% duty cycle. Show
	// the cost of cycle waiting and how much scheduling recovers.
	wake := mlbs.UniformWake(g.N(), 50, 5)
	inNight := mlbs.AsyncInstance(g, source, wake, 0)
	base, err := mlbs.Baseline17().Schedule(inNight)
	if err != nil {
		log.Fatal(err)
	}
	em, err := mlbs.EModel().Schedule(inNight)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnight mode (2%% duty): baseline %v, E-model %v — pipeline saves %v\n",
		radio.BroadcastTime(base.Schedule.Latency()),
		radio.BroadcastTime(em.Schedule.Latency()),
		radio.BroadcastTime(base.Schedule.Latency()-em.Schedule.Latency()))
}
