// Localized broadcasting — the paper's Section VII future work, built out:
// every node decides to relay from 2-hop neighbor state only, with no
// source-rooted schedule, and the transmitting set of every slot is
// conflict-free by construction. This example compares the distributed
// scheme with the centralized E-model over several deployments.
package main

import (
	"fmt"
	"log"

	"mlbs"
)

func main() {
	fmt.Println("seed  n    centralized E-model   localized (2-hop)    slots lost")
	for seed := uint64(1); seed <= 8; seed++ {
		dep, err := mlbs.PaperDeployment(150, seed)
		if err != nil {
			log.Fatal(err)
		}
		in := mlbs.SyncInstance(dep.G, dep.Source)

		central, err := mlbs.EModel().Schedule(in)
		if err != nil {
			log.Fatal(err)
		}
		rep, sched, err := mlbs.LocalizedRun(in)
		if err != nil {
			log.Fatal(err)
		}
		if len(rep.Collisions) != 0 {
			log.Fatalf("seed %d: localized scheme collided — 2-hop rule broken", seed)
		}
		fmt.Printf("%-5d %-4d %-21d %-20d %d\n",
			seed, dep.G.N(), central.Schedule.Latency(), rep.Latency(),
			rep.Latency()-central.Schedule.Latency())
		_ = sched
	}
	fmt.Println("\nThe localized scheme needs no global topology, survives any source")
	fmt.Println("change for free, and stays collision-free; the price is the extra")
	fmt.Println("slots shown in the last column.")

	// Robustness: on a lossy channel the offline plan strands subtrees
	// (it never retransmits), while the localized scheme re-derives its
	// senders from real coverage every slot and always completes.
	fmt.Println("\nlossy channel (20% frame loss), n=150, seed 1:")
	dep, err := mlbs.PaperDeployment(150, 1)
	if err != nil {
		log.Fatal(err)
	}
	in := mlbs.SyncInstance(dep.G, dep.Source)
	plan, err := mlbs.EModel().Schedule(in)
	if err != nil {
		log.Fatal(err)
	}
	loss := mlbs.IIDLoss(0.20, 77)
	planRep, err := mlbs.ReplayLossy(in, plan.Schedule, loss)
	if err != nil {
		log.Fatal(err)
	}
	covered := 0
	for _, at := range planRep.CoveredAt {
		if at >= 0 {
			covered++
		}
	}
	locRep, _, err := mlbs.LocalizedRunLossy(in, loss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline E-model plan: covered %d/%d nodes, %d frames lost — plan cannot recover\n",
		covered, dep.G.N(), planRep.LostFrames)
	fmt.Printf("localized scheme:     covered %d/%d nodes in %d slots (%d tx incl. retransmissions)\n",
		dep.G.N(), dep.G.N(), locRep.Latency(), locRep.Usage.Transmissions)
}
