// Quickstart: generate a paper-style deployment, compute a minimum-latency
// conflict-aware broadcast schedule, and verify it against the physics.
package main

import (
	"fmt"
	"log"

	"mlbs"
)

func main() {
	// 150 nodes uniformly over 50×50 sq ft, radius 10 ft — the middle of
	// the paper's density sweep. Seeded, so this program always prints the
	// same schedule.
	dep, err := mlbs.PaperDeployment(150, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d nodes, %d links, source %d (eccentricity %d hops)\n",
		dep.G.N(), dep.G.M(), dep.Source, dep.SourceEcc)

	in := mlbs.SyncInstance(dep.G, dep.Source)

	// The practical E-model scheduler (Algorithm 2 + Eq. 10)...
	em, err := mlbs.EModel().Schedule(in)
	if err != nil {
		log.Fatal(err)
	}
	// ...and the exact greedy-color optimum it approximates (Eq. 7).
	gopt, err := mlbs.GOPT().Schedule(in)
	if err != nil {
		log.Fatal(err)
	}
	// The BFS-layer baseline the paper improves on.
	base, err := mlbs.Baseline26().Schedule(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("26-approx baseline: P(A) = %d rounds\n", base.PA)
	fmt.Printf("E-model:            P(A) = %d rounds\n", em.PA)
	fmt.Printf("G-OPT:              P(A) = %d rounds (exact=%v)\n", gopt.PA, gopt.Exact)
	fmt.Printf("Theorem 1 bound:    %d rounds\n", mlbs.SyncLatencyBound(dep.SourceEcc))

	// Never trust a scheduler: replay the schedule against the
	// interference physics and confirm every node hears exactly one
	// uncollided frame.
	rep, err := mlbs.Replay(in, em.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	radio := mlbs.Mica2()
	fmt.Printf("replay: completed=%v, %d transmissions, %d collisions, %v wall-clock, %.3f J\n",
		rep.Completed, rep.Usage.Transmissions, rep.Usage.Collisions,
		radio.BroadcastTime(rep.Latency()), radio.Energy(rep.Usage))
}
