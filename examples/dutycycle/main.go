// Duty-cycle broadcasting: every node's sending channel is on only at
// pseudo-random wake slots (one per cycle of r slots). This example shows
// how the cycle waiting time (CWT) dominates latency, how a neighbor's
// wake-ups are forecast from its seed, and how much the conflict-aware
// pipeline recovers compared with the layer-synchronized baseline — in the
// heavy (r=10) and light (r=50, 2%) regimes the paper evaluates.
package main

import (
	"fmt"
	"log"

	"mlbs"
)

func main() {
	const n = 120
	dep, err := mlbs.PaperDeployment(n, 7)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range []int{10, 50} {
		wake := mlbs.UniformWake(n, r, 99)
		in := mlbs.AsyncInstance(dep.G, dep.Source, wake, 0)
		fmt.Printf("=== duty cycle r=%d (%.0f%% duty) — source %d starts at its wake slot %d\n",
			r, 100.0/float64(r), dep.Source, in.Start)

		// Forecasting: any node that knows a neighbor's seed can predict
		// its wake-ups; the wait from a reception to the receiver's next
		// sending opportunity is the CWT of Table I.
		u := dep.Source
		v := dep.G.Adj(u)[0]
		fmt.Printf("CWT example: if %d relays to %d at slot %d, %d can forward after %d slots\n",
			u, v, in.Start, v, mlbs.CWT(wake, u, v, in.Start))

		base, err := mlbs.Baseline17().Schedule(in)
		if err != nil {
			log.Fatal(err)
		}
		em, err := mlbs.EModel().Schedule(in)
		if err != nil {
			log.Fatal(err)
		}
		gopt, err := mlbs.GOPT().Schedule(in)
		if err != nil {
			log.Fatal(err)
		}

		radio := mlbs.Mica2()
		for _, res := range []*mlbs.Result{base, em, gopt} {
			rep, err := mlbs.Replay(in, res.Schedule)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s P(A)=%-5d latency=%-5d slots  (%8v, %.3f J, %d tx)\n",
				res.Scheduler, res.PA, res.Schedule.Latency(),
				radio.BroadcastTime(res.Schedule.Latency()),
				radio.Energy(rep.Usage), rep.Usage.Transmissions)
		}
		fmt.Printf("Theorem 1 bound: %d slots\n\n", mlbs.AsyncLatencyBound(r, dep.SourceEcc))
	}
}
