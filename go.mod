module mlbs

go 1.23
