module mlbs

go 1.24
