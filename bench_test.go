// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md §7. Figure
// benches run a reduced sweep (2 trials, 3 densities) per iteration so
// `go test -bench=.` stays tractable; the full-size series are produced by
// cmd/mlb-sweep and recorded in EXPERIMENTS.md. Custom metrics attach the
// scientific output (mean rounds/slots) to the timing rows.
package mlbs_test

import (
	"testing"

	"mlbs"
)

// benchFigureCfg is the reduced sweep used by the figure benchmarks.
func benchFigureCfg(counts ...int) mlbs.ExperimentConfig {
	return mlbs.ExperimentConfig{Trials: 2, Seed: 1, NodeCounts: counts}
}

// reportSeries attaches each series' mean at the densest point. Metric
// units may not contain whitespace, so series names are slugified
// ("bound of [12]" → "bound-of-12").
func reportSeries(b *testing.B, fig *mlbs.Figure) {
	b.Helper()
	last := fig.Points[len(fig.Points)-1]
	for _, name := range fig.Names {
		if s, ok := last.Series[name]; ok {
			b.ReportMetric(s.Mean(), slug(name)+"_mean")
		}
	}
}

func slug(name string) string {
	var out []rune
	for _, r := range name {
		switch {
		case r == ' ':
			out = append(out, '-')
		case r == '[' || r == ']':
			// drop
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkFigure3(b *testing.B) {
	cfg := benchFigureCfg(50, 150, 300)
	var fig *mlbs.Figure
	var err error
	for i := 0; i < b.N; i++ {
		if fig, err = mlbs.Figure3(cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

func BenchmarkFigure4(b *testing.B) {
	cfg := benchFigureCfg(50, 150)
	var fig *mlbs.Figure
	var err error
	for i := 0; i < b.N; i++ {
		if fig, err = mlbs.Figure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

func BenchmarkFigure5(b *testing.B) {
	cfg := benchFigureCfg(50, 150, 300)
	var fig *mlbs.Figure
	var err error
	for i := 0; i < b.N; i++ {
		if fig, err = mlbs.Figure5(cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

func BenchmarkFigure6(b *testing.B) {
	cfg := benchFigureCfg(50, 150)
	var fig *mlbs.Figure
	var err error
	for i := 0; i < b.N; i++ {
		if fig, err = mlbs.Figure6(cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

func BenchmarkFigure7(b *testing.B) {
	cfg := benchFigureCfg(50, 150, 300)
	var fig *mlbs.Figure
	var err error
	for i := 0; i < b.N; i++ {
		if fig, err = mlbs.Figure7(cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

func BenchmarkTableII(b *testing.B) {
	g, src := mlbs.Figure2()
	in := mlbs.SyncInstance(g, src)
	var rows []mlbs.TraceRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = mlbs.TraceGOPT(in, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

func BenchmarkTableIII(b *testing.B) {
	g, src := mlbs.Figure1()
	in := mlbs.SyncInstance(g, src)
	var rows []mlbs.TraceRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = mlbs.TraceGOPT(in, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

func BenchmarkTableIV(b *testing.B) {
	g, src := mlbs.Figure2()
	in := mlbs.Instance{G: g, Source: src, Start: 2, Wake: mlbs.TableIVWake()}
	var rows []mlbs.TraceRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = mlbs.TraceGOPT(in, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// benchScheduler measures one scheduler on one instance and attaches its
// P(A) latency. The timer restarts after instance construction so ns/op
// and allocs/op cover only Schedule itself.
//
// Before/after the allocation-free search-core refactor (same machine,
// Intel Xeon @ 2.10GHz; "before" numbers predate the ResetTimer and so
// slightly overcount, which only understates the win):
//
//	BenchmarkSchedulerSyncGOPT300      14565660 ns/op  19902 allocs/op  →   11748322 ns/op  715 allocs/op
//	BenchmarkSchedulerSyncOPT300       14385961 ns/op  19933 allocs/op  →   12121464 ns/op  751 allocs/op
//	BenchmarkSchedulerSyncEModel300     5516558 ns/op  10027 allocs/op  →    2542998 ns/op  164 allocs/op
//	BenchmarkSchedulerDutyGOPT300R10  609374102 ns/op  19041 allocs/op  →  153711523 ns/op  841 allocs/op
//	BenchmarkSchedulerDutyEModel300R10 587065807 ns/op 11062 allocs/op  →  153598336 ns/op  218 allocs/op
//
// Ongoing numbers are tracked by cmd/mlb-bench (BENCH_*.json) in CI.
func benchScheduler(b *testing.B, in mlbs.Instance, s mlbs.Scheduler) {
	b.Helper()
	var res *mlbs.Result
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err = s.Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Schedule.Latency()), "latency")
}

func syncInstance300(b *testing.B) mlbs.Instance {
	b.Helper()
	dep, err := mlbs.PaperDeployment(300, 1)
	if err != nil {
		b.Fatal(err)
	}
	return mlbs.SyncInstance(dep.G, dep.Source)
}

func dutyInstance300(b *testing.B, r int) mlbs.Instance {
	b.Helper()
	dep, err := mlbs.PaperDeployment(300, 1)
	if err != nil {
		b.Fatal(err)
	}
	return mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(300, r, 9), 0)
}

func BenchmarkSchedulerSyncEModel300(b *testing.B) {
	benchScheduler(b, syncInstance300(b), mlbs.EModel())
}
func BenchmarkSchedulerSyncGOPT300(b *testing.B) { benchScheduler(b, syncInstance300(b), mlbs.GOPT()) }
func BenchmarkSchedulerSyncOPT300(b *testing.B)  { benchScheduler(b, syncInstance300(b), mlbs.OPT()) }
func BenchmarkSchedulerSync26Approx300(b *testing.B) {
	benchScheduler(b, syncInstance300(b), mlbs.Baseline26())
}

func BenchmarkSchedulerDutyEModel300R10(b *testing.B) {
	benchScheduler(b, dutyInstance300(b, 10), mlbs.EModel())
}
func BenchmarkSchedulerDutyGOPT300R10(b *testing.B) {
	benchScheduler(b, dutyInstance300(b, 10), mlbs.GOPT())
}
func BenchmarkSchedulerDuty17Approx300R10(b *testing.B) {
	benchScheduler(b, dutyInstance300(b, 10), mlbs.Baseline17())
}

// Ablation: pipelining. The same greedy colors, with immediate re-coloring
// (E-model) versus BFS-layer blocking (the baseline) — isolates the
// paper's core mechanism.
func BenchmarkAblationPipeline(b *testing.B) {
	in := syncInstance300(b)
	b.Run("pipelined", func(b *testing.B) { benchScheduler(b, in, mlbs.EModel()) })
	b.Run("layer-blocked", func(b *testing.B) { benchScheduler(b, in, mlbs.Baseline26()) })
}

// Ablation: E seeding — Algorithm 2's edge-first two-pass versus the
// one-pass variant that seeds every empty-quadrant node immediately.
func BenchmarkAblationESeeding(b *testing.B) {
	in := syncInstance300(b)
	b.Run("two-pass", func(b *testing.B) { benchScheduler(b, in, mlbs.EModel()) })
	b.Run("one-pass", func(b *testing.B) { benchScheduler(b, in, mlbs.EModelOnePass()) })
}

// Ablation: color-selection rule — Eq. 10's max-E versus utilization-greedy
// and plain first-color selection.
func BenchmarkAblationSelection(b *testing.B) {
	in := syncInstance300(b)
	b.Run("max-E", func(b *testing.B) { benchScheduler(b, in, mlbs.EModel()) })
	b.Run("max-coverage", func(b *testing.B) { benchScheduler(b, in, mlbs.MaxCoverage()) })
	b.Run("first-color", func(b *testing.B) { benchScheduler(b, in, mlbs.FirstColor()) })
}

// Ablation: search budget — how much optimality proof G-OPT buys per state.
func BenchmarkAblationBudget(b *testing.B) {
	in := dutyInstance300(b, 10)
	for _, budget := range []int{10, 1_000, 100_000} {
		budget := budget
		b.Run(byBudget(budget), func(b *testing.B) {
			var res *mlbs.Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = mlbs.GOPTBudget(budget).Schedule(in); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Schedule.Latency()), "latency")
			exact := 0.0
			if res.Exact {
				exact = 1
			}
			b.ReportMetric(exact, "exact")
		})
	}
}

func byBudget(budget int) string {
	switch {
	case budget >= 1_000_000:
		return "budget-1M"
	case budget >= 100_000:
		return "budget-100k"
	case budget >= 1_000:
		return "budget-1k"
	}
	return "budget-10"
}

// Localized future-work scheme at paper scale.
func BenchmarkLocalized300(b *testing.B) {
	in := syncInstance300(b)
	var lat int
	for i := 0; i < b.N; i++ {
		rep, _, err := mlbs.LocalizedRun(in)
		if err != nil {
			b.Fatal(err)
		}
		lat = rep.Latency()
	}
	b.ReportMetric(float64(lat), "latency")
}
