// Package mlbs is a library for minimum-latency broadcast scheduling with
// conflict awareness in wireless sensor networks, reproducing Jiang, Wu,
// Guo, Wu, Kline, Wang — "Minimum Latency Broadcasting with Conflict
// Awareness in Wireless Sensor Networks", ICPP 2012.
//
// The package schedules a broadcast from a source node over a unit-disk
// graph so that no two concurrent relays share an uncovered neighbor (the
// interference model of the paper's Section III), minimizing the slot at
// which the last node receives the message. It covers both the round-based
// synchronous system and the asynchronous duty-cycle system, in which each
// node's sending channel is only on at pseudo-random wake slots.
//
// Three schedulers implement the paper's Algorithm 3:
//
//   - OPT — the exact minimum over all maximal conflict-free relay sets,
//     found by memoized branch-and-bound on the time counter M (Eq. 5/6);
//   - GOPT — the same search restricted to the greedy color classes of
//     Algorithm 1 (Eq. 7/8);
//   - EModel — the practical O(1)-overhead policy driven by the quadrant
//     estimates E₁..E₄ of Algorithm 2 (Eq. 9/10/11).
//
// Baseline26 and Baseline17 provide the BFS-layer-synchronized
// state-of-the-art baselines the paper compares against, and Localized is
// the distributed 2-hop scheme sketched as future work in Section VII.
//
// A minimal synchronous run:
//
//	dep, _ := mlbs.PaperDeployment(150, 42)
//	in := mlbs.SyncInstance(dep.G, dep.Source)
//	res, _ := mlbs.GOPT().Schedule(in)
//	fmt.Println(res.PA, res.Exact)
//
// See the examples directory for duty-cycle and experiment-harness usage.
package mlbs

import (
	"context"
	"io"

	"mlbs/internal/aggregate"
	"mlbs/internal/baseline"
	"mlbs/internal/churn"
	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/emodel"
	"mlbs/internal/experiments"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/graphio"
	"mlbs/internal/improve"
	"mlbs/internal/interference"
	"mlbs/internal/localized"
	"mlbs/internal/mote"
	"mlbs/internal/obs"
	"mlbs/internal/paperfig"
	"mlbs/internal/reliability"
	"mlbs/internal/service"
	"mlbs/internal/sim"
	"mlbs/internal/stats"
	"mlbs/internal/topology"
	"mlbs/internal/trace"
)

// Core model types.
type (
	// Point is a node location in feet.
	Point = geom.Point
	// Graph is an immutable WSN topology (unit-disk or explicit).
	Graph = graph.Graph
	// NodeID identifies a node; IDs are dense in [0, N).
	NodeID = graph.NodeID
	// Instance is one broadcast problem: graph, source, start slot, wake
	// schedule.
	Instance = core.Instance
	// Advance is one broadcasting advance: a conflict-free relay set and
	// the nodes it covers.
	Advance = core.Advance
	// Schedule is a complete broadcast schedule; PA() is the paper's P(A).
	Schedule = core.Schedule
	// Result is a scheduler's outcome, including the optimality flag.
	Result = core.Result
	// Scheduler is the common interface of all scheduling algorithms.
	Scheduler = core.Scheduler
	// SearchStats reports branch-and-bound effort.
	SearchStats = core.SearchStats
	// WakeSchedule describes when each node's sending channel is on.
	WakeSchedule = dutycycle.Schedule
	// Deployment is a generated topology with its source.
	Deployment = topology.Deployment
	// TopologyConfig parameterizes deployment generation.
	TopologyConfig = topology.Config
	// Report is the physical outcome of executing a schedule.
	Report = sim.Report
	// SINRParams configures the physical (SINR) interference model; a nil
	// Instance.SINR keeps the paper's protocol model.
	SINRParams = interference.SINRParams
	// InterferenceOracle is the conflict predicate every layer consults —
	// graph (protocol) or SINR backed.
	InterferenceOracle = interference.Oracle
	// Radio models mote timing and energy (Mica2 by default).
	Radio = mote.Radio
	// RadioUsage tallies transmissions, receptions, collisions and idling.
	RadioUsage = mote.Usage
	// ETable holds the per-node quadrant estimates E₁..E₄.
	ETable = emodel.Table
	// Figure is a regenerated paper figure.
	Figure = experiments.Figure
	// ExperimentConfig tunes a figure sweep.
	ExperimentConfig = experiments.Config
	// ExperimentSummary quantifies the Section V-C claims.
	ExperimentSummary = experiments.Summary
	// TraceRow is one line of a Table II/III/IV-style decision table.
	TraceRow = trace.Row
	// Sample accumulates mean/CI statistics.
	Sample = stats.Sample
	// LossFunc decides per-link frame loss for lossy-channel executions.
	LossFunc = sim.LossFunc
	// LossyReport extends Report with the dropped-frame count.
	LossyReport = sim.LossyReport
	// Ablation is a named-variant comparison (DESIGN.md §7).
	Ablation = experiments.Ablation
	// SearchEngine is a reusable search scheduler: same algorithm as
	// OPT/G-OPT but its arenas survive across calls. Not concurrency-safe;
	// one per worker goroutine.
	SearchEngine = core.Engine
	// Digest is the content address of a broadcast instance.
	Digest = graphio.Digest
	// PlanService serves broadcast plans concurrently behind a
	// content-addressed cache (DESIGN.md §9).
	PlanService = service.Service
	// ServiceConfig sizes a PlanService.
	ServiceConfig = service.Config
	// WorkloadRequest is the shared request envelope every service
	// workload embeds: instance/generator selection, scheduler, budget and
	// caching discipline.
	WorkloadRequest = service.WorkloadRequest
	// PlanRequest is one plan-service request.
	PlanRequest = service.Request
	// PlanGenerator is the request form that asks the service to build the
	// paper-topology instance itself.
	PlanGenerator = service.Generator
	// PlanResponse is one plan-service answer.
	PlanResponse = service.Response
	// ServiceMetrics snapshots plan-service traffic.
	ServiceMetrics = service.Metrics
	// SweepRequest is a streaming parameter sweep over the topology family.
	SweepRequest = service.SweepRequest
	// SweepItem is one streamed sweep result.
	SweepItem = service.SweepItem
	// Improver is the anytime schedule improver: it tightens any valid
	// schedule under a deadline or move budget, never returning worse than
	// its input (DESIGN.md §14). Not concurrency-safe; one per goroutine.
	Improver = improve.Improver
	// ImproveOptions budgets one Improve call.
	ImproveOptions = improve.Options
	// ImproveStats reports what an Improve call did.
	ImproveStats = improve.Stats
	// Replayer executes schedules against the physics with reusable
	// buffers; a report stays valid until the replayer's next call.
	Replayer = sim.Replayer
	// LossyReplayer is the lossy-channel replayer with reusable buffers.
	LossyReplayer = sim.LossyReplayer
	// ReliabilityLossModel describes the stochastic channel of a
	// Monte-Carlo validation.
	ReliabilityLossModel = reliability.LossModel
	// ReliabilityConfig sizes a Monte-Carlo estimation run.
	ReliabilityConfig = reliability.Config
	// ReliabilityReport is a Monte-Carlo reliability estimate (DESIGN.md §10).
	ReliabilityReport = reliability.Report
	// ReliabilityQuantiles summarizes a latency distribution in slots.
	ReliabilityQuantiles = reliability.Quantiles
	// ReliabilityEstimator batches Monte-Carlo replays with reusable state.
	ReliabilityEstimator = reliability.Estimator
	// RepairConfig tunes conflict-aware retransmission repair.
	RepairConfig = reliability.RepairConfig
	// RepairResult reports a repair run and its latency penalty.
	RepairResult = reliability.RepairResult
	// ValidateRequest is one reliability-validation service request.
	ValidateRequest = service.ValidateRequest
	// ValidateResponse is one reliability-validation service answer.
	ValidateResponse = service.ValidateResponse
	// ChurnEvent is one typed topology change (fail/join/radius/jitter).
	ChurnEvent = churn.Event
	// ChurnKind names a topology event type.
	ChurnKind = churn.Kind
	// ChurnDelta is an ordered topology-event sequence with a canonical
	// encoding and content digest (DESIGN.md §11).
	ChurnDelta = churn.Delta
	// ChurnMapping relates base node IDs to mutated node IDs.
	ChurnMapping = churn.Mapping
	// Replanner repairs cached schedules after topology deltas with
	// reusable state; like a SearchEngine it is single-goroutine.
	Replanner = churn.Replanner
	// ReplannerConfig tunes a Replanner.
	ReplannerConfig = churn.ReplanConfig
	// ChurnReplanResult is a repaired plan plus its blast-radius
	// classification.
	ChurnReplanResult = churn.ReplanResult
	// ChurnStrategy names how a repaired plan was obtained
	// (prefix/incremental/cold).
	ChurnStrategy = churn.Strategy
	// ChurnTrace is a seeded multi-hour churn history against a base
	// instance.
	ChurnTrace = churn.Trace
	// ChurnTraceConfig parameterizes Poisson churn-trace generation.
	ChurnTraceConfig = churn.TraceConfig
	// ChurnTraceEvent is one timed topology event of a trace.
	ChurnTraceEvent = churn.TraceEvent
	// ReplanRequest is one churn-repair service request.
	ReplanRequest = service.ReplanRequest
	// ReplanResponse is one churn-repair service answer.
	ReplanResponse = service.ReplanResponse
	// AggSchedule is a complete convergecast (aggregation) schedule: a
	// routing tree toward the sink plus receiver-safe sender bundles per
	// (slot, channel) (DESIGN.md §18).
	AggSchedule = aggregate.Schedule
	// AggAdvance is one aggregation advance: the senders firing in one
	// (slot, channel) cell.
	AggAdvance = aggregate.Advance
	// AggResult is an aggregation scheduler's outcome.
	AggResult = aggregate.Result
	// AggScheduler plans convergecast schedules; its scratch arenas are
	// reused across calls, so one per goroutine.
	AggScheduler = aggregate.Scheduler
	// AggTree selects the aggregation-tree policy of an AggScheduler.
	AggTree = aggregate.Tree
	// AggReport is the physical outcome of replaying a convergecast
	// schedule.
	AggReport = sim.AggReport
	// AggregateRequest is one convergecast service request.
	AggregateRequest = service.AggregateRequest
	// AggregateResponse is one convergecast service answer.
	AggregateResponse = service.AggregateResponse
	// Trace collects the named phases of one request as a span tree; attach
	// it to a context with TraceContext and the service records cache,
	// search, improve and repair phases into it (DESIGN.md §15). The nil
	// Trace is the disabled tracer — every operation on it is a free no-op.
	Trace = obs.Trace
	// TraceSpan is a handle onto one span of a Trace.
	TraceSpan = obs.Span
	// TraceSnapshot is the immutable export of a finished trace — the JSON
	// schema GET /debug/traces serves.
	TraceSnapshot = obs.TraceSnapshot
	// SpanSnapshot is one exported span of a TraceSnapshot.
	SpanSnapshot = obs.SpanSnapshot
	// TraceRecorder is the always-on flight recorder: bounded ring of the
	// last-N finished traces plus a board of the slowest-N.
	TraceRecorder = obs.Recorder
	// LatencyHistogram is the fixed-edge histogram behind the Prometheus
	// _bucket/_sum/_count series /metrics emits.
	LatencyHistogram = obs.Histogram
	// LatencyHistogramSnapshot is its cumulative point-in-time view.
	LatencyHistogramSnapshot = obs.HistogramSnapshot
)

// The churn event kinds.
const (
	ChurnNodeFail       = churn.NodeFail
	ChurnNodeJoin       = churn.NodeJoin
	ChurnRadiusChange   = churn.RadiusChange
	ChurnPositionJitter = churn.PositionJitter
)

// The aggregation-tree policies.
const (
	// AggTreeSPT routes along the BFS shortest-path tree (default).
	AggTreeSPT = aggregate.TreeSPT
	// AggTreeBounded routes along the degree-bounded SPT variant.
	AggTreeBounded = aggregate.TreeBounded
)

// Typed failures callers (and the HTTP layer's error envelope)
// distinguish from generic request errors.
var (
	// ErrServiceClosed is returned by every service entry point after
	// Close.
	ErrServiceClosed = service.ErrClosed
	// ErrChurnSourceFailed reports a replan delta that fails the broadcast
	// source.
	ErrChurnSourceFailed = churn.ErrSourceFailed
	// ErrChurnDisconnected reports a replan delta that disconnects the
	// network from the source.
	ErrChurnDisconnected = churn.ErrDisconnected
	// ErrChurnLastNode reports a replan delta that removes the last node.
	ErrChurnLastNode = churn.ErrLastNode
)

// NewUDG builds the unit-disk graph over the given positions: nodes are
// adjacent exactly when within the communication radius.
func NewUDG(pos []Point, radius float64) *Graph { return graph.FromUDG(pos, radius) }

// GenerateDeployment draws a connected deployment with a valid source from
// the configuration, rejecting placements until both hold.
func GenerateDeployment(cfg TopologyConfig, seed uint64) (*Deployment, error) {
	return topology.Generate(cfg, seed)
}

// PaperDeployment draws a deployment with the paper's Section V-A setting:
// n nodes, 50×50 sq ft, radius 10 ft, source eccentricity 5–8 hops.
func PaperDeployment(n int, seed uint64) (*Deployment, error) {
	return topology.Generate(topology.PaperConfig(n), seed)
}

// PaperTopologyConfig returns the Section V-A generation parameters for n
// nodes, for callers who want to adjust them.
func PaperTopologyConfig(n int) TopologyConfig { return topology.PaperConfig(n) }

// SyncInstance wraps a graph and source into a round-based instance
// starting at t_s = 1 (the paper's convention).
func SyncInstance(g *Graph, source NodeID) Instance { return core.Sync(g, source) }

// MaxChannels bounds Instance.Channels.
const MaxChannels = core.MaxChannels

// WithChannels returns the instance with K orthogonal frequency channels:
// schedules may then fire up to K mutually-conflicting relay classes in
// one slot, one per channel, and collision detection becomes channel-aware
// (two senders conflict only in the same slot AND channel). K ≤ 1 is the
// paper's single shared channel; with K = 1 every scheduler, digest and
// wire encoding is bit-identical to the single-channel system.
func WithChannels(in Instance, k int) Instance {
	in.Channels = k
	return in
}

// WithSINR returns the instance under the physical (SINR) interference
// model: a transmission decodes at a receiver iff its strongest
// neighboring sender's received power beats β times noise plus the summed
// power of every other concurrent same-channel sender. Requires distinct
// node positions. p = nil restores the paper's protocol model, under which
// every scheduler, digest and wire encoding is bit-identical to the
// pre-SINR system.
func WithSINR(in Instance, p *SINRParams) Instance {
	in.SINR = p
	return in
}

// AsyncInstance wraps a graph, source and wake schedule into a duty-cycle
// instance starting at the source's first wake slot at or after `from`.
func AsyncInstance(g *Graph, source NodeID, wake WakeSchedule, from int) Instance {
	return core.Async(g, source, wake, from)
}

// UniformWake builds the paper's duty-cycle schedule: every node wakes once
// per cycle of r slots at an independent uniform pseudo-random offset.
func UniformWake(n, r int, seed uint64) WakeSchedule {
	return dutycycle.NewUniform(n, r, seed, 0)
}

// AlwaysAwakeWake returns the degenerate synchronous schedule (r = 1).
func AlwaysAwakeWake(n int) WakeSchedule { return dutycycle.AlwaysAwake{Nodes: n} }

// FixedWake builds an explicit periodic wake schedule; slots[u] lists node
// u's wake slots within [0, period).
func FixedWake(period, rate int, slots [][]int) WakeSchedule {
	return dutycycle.NewFixed(period, rate, slots)
}

// StaggeredWake builds the constant-phase duty cycle: each node wakes every
// r slots at a fixed pseudo-random offset (contrast UniformWake, which
// redraws the offset per cycle).
func StaggeredWake(n, r int, seed uint64) WakeSchedule {
	return dutycycle.NewStaggered(n, r, seed)
}

// CWT returns the cycle waiting time t(u,v) of Table I: with u
// transmitting at slot t, the wait until v's next wake slot after t.
func CWT(s WakeSchedule, u, v, t int) int { return dutycycle.CWT(s, u, v, t) }

// OPT returns the exact scheduler over all maximal conflict-free relay
// sets (Eq. 5/6), with default search budget.
func OPT() Scheduler { return core.NewOPT(0, 0) }

// OPTBudget returns OPT with an explicit search budget and per-state move
// cap (≤ 0 selects defaults). Results report Exact=false when truncated.
func OPTBudget(budget, maxSets int) Scheduler { return core.NewOPT(budget, maxSets) }

// GOPT returns the exact scheduler over greedy color classes (Eq. 7/8).
func GOPT() Scheduler { return core.NewGOPT(0) }

// GOPTBudget returns G-OPT with an explicit search budget.
func GOPTBudget(budget int) Scheduler { return core.NewGOPT(budget) }

// EModel returns the paper's practical scheduler: greedy colors selected
// by the largest quadrant estimate (Algorithm 2 + Eq. 10).
func EModel() Scheduler { return core.NewEModel(emodel.TwoPass) }

// EModelOnePass returns the ablation variant that seeds every
// empty-quadrant node immediately instead of edge-first.
func EModelOnePass() Scheduler { return core.NewEModel(emodel.OnePass) }

// EnergyAware returns the Section VII "energy saving" extension: Eq. 10's
// selection with ties broken toward fewer transmitters.
func EnergyAware() Scheduler { return core.NewEnergyAware() }

// MaxCoverage returns the ablation policy that always fires the color with
// the most uncovered receivers.
func MaxCoverage() Scheduler {
	return core.NewPolicy("max-coverage", core.MaxCoverageRule{})
}

// FirstColor returns the ablation policy that always fires greedy color 1.
func FirstColor() Scheduler {
	return core.NewPolicy("first-color", core.FirstColorRule{})
}

// Baseline26 returns the round-based BFS-layer baseline of Chen et al.
// (the paper's 26-approximation comparison point).
func Baseline26() Scheduler { return baseline.New26() }

// Baseline17 returns the duty-cycle BFS-layer baseline of Jiao et al.
// (the paper's 17-approximation comparison point).
func Baseline17() Scheduler { return baseline.New17() }

// BuildETable constructs the E₁..E₄ quadrant estimates for an instance —
// hop counts in the synchronous system, mean cycle waiting times in the
// duty-cycle system (Algorithm 2, Eq. 9/11).
func BuildETable(in Instance) *ETable {
	if in.Wake != nil && in.Wake.Rate() > 1 {
		return emodel.BuildAsync(in.G, in.Wake)
	}
	return emodel.BuildSync(in.G)
}

// Replay executes a schedule against the interference physics and reports
// coverage, latency, collisions, and radio usage.
func Replay(in Instance, s *Schedule) (*Report, error) { return sim.Replay(in, s) }

// LocalizedRun executes the distributed 2-hop scheme of Section VII
// (future work) online against the physics.
func LocalizedRun(in Instance) (*Report, *Schedule, error) { return localized.Run(in) }

// IIDLoss builds a deterministic channel that drops each frame
// independently with the given probability.
func IIDLoss(rate float64, seed uint64) LossFunc { return sim.IIDLoss(rate, seed) }

// ReplayLossy executes an offline schedule over a lossy channel; lost
// relays strand their subtrees, quantifying the fragility of offline plans.
func ReplayLossy(in Instance, s *Schedule, loss LossFunc) (*LossyReport, error) {
	return sim.ReplayLossy(in, s, loss)
}

// LocalizedRunLossy executes the localized scheme over a lossy channel;
// it retransmits naturally and completes at a latency/energy premium.
func LocalizedRunLossy(in Instance, loss LossFunc) (*LossyReport, *Schedule, error) {
	return localized.RunLossy(in, loss)
}

// AblationSelection compares color-selection rules (DESIGN.md §7).
func AblationSelection(cfg ExperimentConfig) (*Ablation, error) {
	return experiments.AblationSelection(cfg)
}

// AblationBudget sweeps the G-OPT search budget.
func AblationBudget(cfg ExperimentConfig, budgets []int) (*Ablation, error) {
	return experiments.AblationBudget(cfg, budgets)
}

// AblationRobustness compares the offline plan and the localized scheme
// over lossy channels.
func AblationRobustness(cfg ExperimentConfig, rates []float64) (*Ablation, error) {
	return experiments.AblationRobustness(cfg, rates)
}

// AblationWakeFamily compares uniform-per-cycle and staggered wake
// schedules at the same duty-cycle rate.
func AblationWakeFamily(cfg ExperimentConfig) (*Ablation, error) {
	return experiments.AblationWakeFamily(cfg)
}

// Mica2 returns the Mica2/CC1000 radio profile used to convert slots into
// wall-clock time and radio usage into energy.
func Mica2() Radio { return mote.Mica2() }

// SyncLatencyBound returns Theorem 1's synchronous bound d+2.
func SyncLatencyBound(d int) int { return core.SyncLatencyBound(d) }

// AsyncLatencyBound returns Theorem 1's duty-cycle bound 2r(d+2).
func AsyncLatencyBound(r, d int) int { return core.AsyncLatencyBound(r, d) }

// Figure3 regenerates the paper's Figure 3 (synchronous P(A) vs density).
func Figure3(cfg ExperimentConfig) (*Figure, error) { return experiments.Figure3(cfg) }

// Figure4 regenerates Figure 4 (duty cycle, r = 10).
func Figure4(cfg ExperimentConfig) (*Figure, error) { return experiments.Figure4(cfg) }

// Figure5 regenerates Figure 5 (analytical bounds, r = 10).
func Figure5(cfg ExperimentConfig) (*Figure, error) { return experiments.Figure5(cfg) }

// Figure6 regenerates Figure 6 (light duty cycle, r = 50).
func Figure6(cfg ExperimentConfig) (*Figure, error) { return experiments.Figure6(cfg) }

// Figure7 regenerates Figure 7 (analytical bounds, r = 50).
func Figure7(cfg ExperimentConfig) (*Figure, error) { return experiments.Figure7(cfg) }

// FigureByID regenerates figure 3–7 by paper number.
func FigureByID(id int, cfg ExperimentConfig) (*Figure, error) {
	return experiments.ByID(id, cfg)
}

// Summarize derives the Section V-C claims from regenerated figures.
func Summarize(figs ...*Figure) *ExperimentSummary { return experiments.Summarize(figs...) }

// TraceGOPT derives a Table II/III/IV-style decision table: every state on
// the optimal greedy-color path with each color's M value.
func TraceGOPT(in Instance, budget int) ([]TraceRow, error) { return trace.GOPT(in, budget) }

// TraceTree derives the paper's full decision table: every state reachable
// by committing to any greedy color, breadth-first with duplicates merged
// (Tables III and IV print this whole tree). maxRows ≤ 0 defaults to 256.
func TraceTree(in Instance, budget, maxRows int) ([]TraceRow, error) {
	return trace.Tree(in, budget, maxRows)
}

// RenderTrace prints trace rows in the paper's table layout; name may be
// nil for numeric labels.
func RenderTrace(rows []TraceRow, name func(NodeID) string) string {
	return trace.Render(rows, name)
}

// Figure1 returns the paper's Figure 1 example network and its source.
func Figure1() (*Graph, NodeID) { return paperfig.Figure1() }

// Figure2 returns the paper's Figure 2 example network and its source.
func Figure2() (*Graph, NodeID) { return paperfig.Figure2() }

// TableIVWake returns the explicit wake schedule of the paper's Table IV
// duty-cycle example (use with Figure2 and start slot 2).
func TableIVWake() WakeSchedule { return paperfig.TableIVWake() }

// EncodeDeployment serializes a deployment to JSON for archival/sharing.
func EncodeDeployment(d *Deployment) ([]byte, error) { return graphio.EncodeDeployment(d) }

// DecodeDeployment rebuilds a deployment from EncodeDeployment output,
// verifying connectivity and stored metadata.
func DecodeDeployment(data []byte) (*Deployment, error) { return graphio.DecodeDeployment(data) }

// EncodeSchedule serializes a schedule to JSON.
func EncodeSchedule(s *Schedule) ([]byte, error) { return graphio.EncodeSchedule(s) }

// DecodeSchedule rebuilds a schedule; Validate it against its instance
// before trusting it.
func DecodeSchedule(data []byte) (*Schedule, error) { return graphio.DecodeSchedule(data) }

// EncodeInstance serializes a broadcast instance (graph, source, start,
// wake schedule) for shipping to the plan service or archival.
func EncodeInstance(in Instance) ([]byte, error) { return graphio.EncodeInstance(in) }

// DecodeInstance rebuilds and validates an instance from EncodeInstance
// output.
func DecodeInstance(data []byte) (Instance, error) { return graphio.DecodeInstance(data) }

// InstanceDigest computes the content address of an instance: a SHA-256
// over a canonical encoding of the graph, source, start slot, pre-covered
// set and wake-schedule parameters. Equal instances digest equally across
// processes; the plan cache is keyed by it.
func InstanceDigest(in Instance) (Digest, error) { return graphio.InstanceDigest(in) }

// EncodeResult serializes a scheduler result (schedule included) in the
// same schema the plan service's HTTP API returns.
func EncodeResult(res *Result) ([]byte, error) { return graphio.EncodeResult(res) }

// DecodeResult rebuilds a result; Validate the inner schedule against its
// instance before trusting it.
func DecodeResult(data []byte) (*Result, error) { return graphio.DecodeResult(data) }

// NewReusableGOPT returns a G-OPT engine whose arenas (scratch frames,
// memo storage, bitset pool) are recycled across Schedule calls — the
// per-worker scheduler of the serving layer. Not safe for concurrent use.
func NewReusableGOPT(budget int) *SearchEngine { return core.NewGOPT(budget).NewEngine() }

// NewReusableOPT returns a reusable OPT engine; see NewReusableGOPT.
func NewReusableOPT(budget, maxSets int) *SearchEngine {
	return core.NewOPT(budget, maxSets).NewEngine()
}

// NewService starts a concurrent plan service: a content-addressed,
// LRU-bounded, singleflight-deduplicated schedule cache in front of a
// sharded worker pool of reusable engines. Close it when done.
func NewService(cfg ServiceConfig) *PlanService { return service.New(cfg) }

// NewTrace starts a request trace whose root span carries the endpoint
// name. Finish it to obtain the immutable snapshot.
func NewTrace(endpoint string) *Trace { return obs.NewTrace(endpoint) }

// TraceContext returns ctx carrying the trace; service requests planned
// under it record their phases into the trace.
func TraceContext(ctx context.Context, t *Trace) context.Context { return obs.NewContext(ctx, t) }

// TraceFromContext returns the trace carried by ctx, or nil (the disabled
// tracer) when none is attached.
func TraceFromContext(ctx context.Context) *Trace { return obs.FromContext(ctx) }

// NewTraceRecorder builds a flight recorder retaining the last recentN
// and slowest slowestN traces; values ≤ 0 select the defaults (64/16).
func NewTraceRecorder(recentN, slowestN int) *TraceRecorder {
	return obs.NewRecorder(recentN, slowestN)
}

// FormatTrace renders a trace snapshot as an indented span tree with
// durations and attributes — the form mlb-load -trace prints.
func FormatTrace(s *TraceSnapshot) string { return obs.FormatTrace(s) }

// NewLatencyHistogram builds a fixed-edge latency histogram over ascending
// nanosecond bucket bounds; nil selects the default power-of-two edges.
func NewLatencyHistogram(edgesNs []int64) *LatencyHistogram { return obs.NewHistogram(edgesNs) }

// WritePromHistogram emits one histogram family in Prometheus text format
// (# HELP/# TYPE, cumulative _bucket series with le edges in seconds,
// _sum, _count). labels, when non-empty, is a rendered label list without
// braces merged into every series.
func WritePromHistogram(w io.Writer, name, help, labels string, s LatencyHistogramSnapshot) {
	obs.WritePromHistogram(w, name, help, labels, s)
}

// WritePromHistogramSeries emits only the series lines of one histogram —
// no header — so several label sets of the same family can share a single
// # HELP/# TYPE written once.
func WritePromHistogramSeries(w io.Writer, name, labels string, s LatencyHistogramSnapshot) {
	obs.WritePromHistogramSeries(w, name, labels, s)
}

// WritePromCounter emits one unlabeled counter with HELP/TYPE lines.
func WritePromCounter(w io.Writer, name, help string, v int64) {
	obs.WritePromCounter(w, name, help, v)
}

// WritePromGauge emits one unlabeled gauge with HELP/TYPE lines.
func WritePromGauge(w io.Writer, name, help string, v int64) {
	obs.WritePromGauge(w, name, help, v)
}

// NewImprover returns a reusable anytime schedule improver. Like the
// search engines, its arenas survive across calls and it must not be
// shared between goroutines.
func NewImprover() *Improver { return improve.New() }

// NewReplayer returns a reusable ideal-channel replayer; reports alias its
// buffers and stay valid until its next call.
func NewReplayer() *Replayer { return sim.NewReplayer() }

// NewLossyReplayer returns a reusable lossy-channel replayer.
func NewLossyReplayer() *LossyReplayer { return sim.NewLossyReplayer() }

// NewReliabilityEstimator returns a reusable Monte-Carlo estimator — the
// engine behind EstimateReliability and the service's /v1/validate.
func NewReliabilityEstimator() *ReliabilityEstimator { return reliability.NewEstimator() }

// EstimateReliability batches seeded lossy replays of a schedule and
// aggregates delivery ratio, per-node coverage probability with Wilson
// intervals, and the latency distribution (DESIGN.md §10).
func EstimateReliability(in Instance, s *Schedule, model ReliabilityLossModel, cfg ReliabilityConfig) (*ReliabilityReport, error) {
	return reliability.Estimate(in, s, model, cfg)
}

// RepairSchedule greedily appends conflict-aware rebroadcast slots until
// the Monte-Carlo estimated delivery ratio reaches cfg.Target, reporting
// the latency penalty.
func RepairSchedule(in Instance, s *Schedule, model ReliabilityLossModel, cfg RepairConfig) (*RepairResult, error) {
	return reliability.Repair(in, s, model, cfg)
}

// EncodeReliabilityReport serializes a Monte-Carlo reliability report in
// the canonical schema /v1/validate and mlb-validate emit.
func EncodeReliabilityReport(rep *ReliabilityReport) ([]byte, error) {
	return graphio.EncodeReliabilityReport(rep)
}

// DecodeReliabilityReport rebuilds a report from EncodeReliabilityReport
// output.
func DecodeReliabilityReport(data []byte) (*ReliabilityReport, error) {
	return graphio.DecodeReliabilityReport(data)
}

// ApplyChurn applies a topology delta to a unit-disk instance, returning
// the mutated instance and the base→mutated node mapping (DESIGN.md §11).
func ApplyChurn(base Instance, d ChurnDelta) (Instance, ChurnMapping, error) {
	return churn.Apply(base, d)
}

// NewReplanner builds a reusable churn replanner: blast-radius
// classification plus residual search with cold-search fallback. Not safe
// for concurrent use; the plan service gives each worker its own.
func NewReplanner(cfg ReplannerConfig) *Replanner { return churn.NewReplanner(cfg) }

// GenerateChurnTrace draws a seeded Poisson churn trace against the base
// instance; every event is guaranteed applicable in sequence.
func GenerateChurnTrace(base Instance, cfg ChurnTraceConfig, seed uint64) (*ChurnTrace, error) {
	return churn.GenerateTrace(base, cfg, seed)
}

// ChurnDeltaDigest computes the content address of a delta; the serving
// layer keys repaired plans by (instance digest, delta digest).
func ChurnDeltaDigest(d ChurnDelta) (Digest, error) { return churn.DeltaDigest(d) }

// EncodeChurnDelta serializes a delta in the schema POST /v1/replan
// accepts.
func EncodeChurnDelta(d ChurnDelta) ([]byte, error) { return churn.EncodeDelta(d) }

// DecodeChurnDelta rebuilds a delta, validating every event.
func DecodeChurnDelta(data []byte) (ChurnDelta, error) { return churn.DecodeDelta(data) }

// ScheduleAggregate plans a conflict-aware minimum-latency convergecast:
// every node's reading routed to the sink (the instance's Source) along
// an aggregation tree with receiver-safe sender bundles (DESIGN.md §18).
// One-shot convenience; reuse an AggScheduler value across calls for warm
// arenas.
func ScheduleAggregate(in Instance) (*AggResult, error) {
	var s AggScheduler
	return s.Schedule(in)
}

// ReplayAggregate executes a convergecast schedule against the slot
// physics and reports what actually reached the sink.
func ReplayAggregate(in Instance, s *AggSchedule) (*AggReport, error) {
	return sim.ReplayAggregate(in, s)
}

// AggInstanceDigest computes the content address of an instance as an
// aggregation problem — the broadcast digest stream plus an "agg" tag, so
// the two workloads never alias in any cache.
func AggInstanceDigest(in Instance) (Digest, error) { return graphio.AggInstanceDigest(in) }

// EncodeAggSchedule serializes an aggregation schedule.
func EncodeAggSchedule(s *AggSchedule) ([]byte, error) { return graphio.EncodeAggSchedule(s) }

// DecodeAggSchedule rebuilds an aggregation schedule; Validate it against
// its instance before trusting it.
func DecodeAggSchedule(data []byte) (*AggSchedule, error) { return graphio.DecodeAggSchedule(data) }

// EncodeAggResult serializes an aggregation result in the schema the
// /v1/aggregate endpoint embeds.
func EncodeAggResult(res *AggResult) ([]byte, error) { return graphio.EncodeAggResult(res) }

// DecodeAggResult rebuilds an aggregation result from EncodeAggResult
// output.
func DecodeAggResult(data []byte) (*AggResult, error) { return graphio.DecodeAggResult(data) }

// EncodeChurnTrace serializes a churn trace.
func EncodeChurnTrace(tr *ChurnTrace) ([]byte, error) { return churn.EncodeTrace(tr) }

// DecodeChurnTrace rebuilds a churn trace, validating events and ordering.
func DecodeChurnTrace(data []byte) (*ChurnTrace, error) { return churn.DecodeTrace(data) }
