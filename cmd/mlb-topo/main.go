// Command mlb-topo generates and inspects deployments: connectivity,
// degrees, diameter, boundary nodes, and the E-model quadrant estimates.
//
// Usage:
//
//	mlb-topo [-n 150] [-seed 1] [-r 0] [-etable]
package main

import (
	"flag"
	"fmt"
	"os"

	"mlbs"
)

func main() {
	var (
		n      = flag.Int("n", 150, "number of nodes")
		seed   = flag.Uint64("seed", 1, "deployment seed")
		r      = flag.Int("r", 0, "duty-cycle rate for the E table; 0 = synchronous")
		etable = flag.Bool("etable", false, "print every node's E tuple")
		out    = flag.String("json", "", "write the deployment as JSON to this file")
		in     = flag.String("load", "", "load a deployment from JSON instead of generating")
	)
	flag.Parse()
	if err := run(*n, *seed, *r, *etable, *out, *in); err != nil {
		fmt.Fprintln(os.Stderr, "mlb-topo:", err)
		os.Exit(1)
	}
}

func run(n int, seed uint64, r int, printE bool, jsonOut, jsonIn string) error {
	var (
		dep *mlbs.Deployment
		err error
	)
	if jsonIn != "" {
		data, rerr := os.ReadFile(jsonIn)
		if rerr != nil {
			return rerr
		}
		dep, err = mlbs.DecodeDeployment(data)
	} else {
		dep, err = mlbs.PaperDeployment(n, seed)
	}
	if err != nil {
		return err
	}
	if jsonOut != "" {
		data, eerr := mlbs.EncodeDeployment(dep)
		if eerr != nil {
			return eerr
		}
		if werr := os.WriteFile(jsonOut, data, 0o644); werr != nil {
			return werr
		}
		fmt.Println("deployment written to", jsonOut)
	}
	g := dep.G
	fmt.Printf("deployment: n=%d area=%.0f×%.0f ft radius=%.0f ft density=%.3f\n",
		g.N(), dep.Cfg.AreaSide, dep.Cfg.AreaSide, dep.Cfg.Radius, dep.Cfg.Density())
	fmt.Printf("edges=%d avg degree=%.2f max degree=%d\n", g.M(), g.AvgDegree(), g.MaxDegree())
	fmt.Printf("source=%d eccentricity=%d (paper requires 5..8)\n", dep.Source, dep.SourceEcc)
	fmt.Printf("placements drawn=%d source draws=%d\n", dep.Attempts, dep.SourceDraws)

	var in mlbs.Instance
	if r > 1 {
		in = mlbs.AsyncInstance(g, dep.Source, mlbs.UniformWake(n, r, seed^0xA5), 0)
	} else {
		in = mlbs.SyncInstance(g, dep.Source)
	}
	tab := mlbs.BuildETable(in)
	edgeCount := 0
	for _, e := range tab.Edge {
		if e {
			edgeCount++
		}
	}
	fmt.Printf("network-edge nodes: %d of %d; max E value: %.2f\n", edgeCount, g.N(), tab.MaxFinite())
	if printE {
		for u := 0; u < g.N(); u++ {
			fmt.Printf("  node %3d at %v  E=[%.1f %.1f %.1f %.1f]\n",
				u, g.Pos(u), tab.E[u][0], tab.E[u][1], tab.E[u][2], tab.E[u][3])
		}
	}
	return nil
}
