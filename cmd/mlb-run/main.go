// Command mlb-run schedules one broadcast on a generated deployment and
// prints the schedule, its validation, and the physical replay.
//
// Usage:
//
//	mlb-run [-n 150] [-seed 1] [-r 0] [-sched gopt] [-v]
//
// -r 0 selects the round-based synchronous system; r > 1 the duty-cycle
// system with that cycle rate. -sched is one of opt, gopt, emodel,
// baseline, localized.
package main

import (
	"flag"
	"fmt"
	"os"

	"mlbs"
)

func main() {
	var (
		n       = flag.Int("n", 150, "number of nodes (paper sweeps 50..300)")
		seed    = flag.Uint64("seed", 1, "deployment seed")
		r       = flag.Int("r", 0, "duty-cycle rate r; 0 or 1 = synchronous")
		sched   = flag.String("sched", "gopt", "scheduler: opt|gopt|emodel|baseline|localized")
		verbose = flag.Bool("v", false, "print every advance")
	)
	flag.Parse()
	if err := run(*n, *seed, *r, *sched, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "mlb-run:", err)
		os.Exit(1)
	}
}

func run(n int, seed uint64, r int, schedName string, verbose bool) error {
	dep, err := mlbs.PaperDeployment(n, seed)
	if err != nil {
		return err
	}
	var in mlbs.Instance
	if r > 1 {
		in = mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(n, r, seed^0xA5), 0)
	} else {
		in = mlbs.SyncInstance(dep.G, dep.Source)
	}
	fmt.Printf("deployment: n=%d density=%.3f edges=%d source=%d ecc=%d seed=%d\n",
		n, dep.Cfg.Density(), dep.G.M(), dep.Source, dep.SourceEcc, seed)

	if schedName == "localized" {
		rep, s, err := mlbs.LocalizedRun(in)
		if err != nil {
			return err
		}
		printOutcome(in, s, rep, r, dep.SourceEcc, verbose)
		return nil
	}

	var scheduler mlbs.Scheduler
	switch schedName {
	case "opt":
		scheduler = mlbs.OPT()
	case "gopt":
		scheduler = mlbs.GOPT()
	case "emodel":
		scheduler = mlbs.EModel()
	case "baseline":
		if r > 1 {
			scheduler = mlbs.Baseline17()
		} else {
			scheduler = mlbs.Baseline26()
		}
	default:
		return fmt.Errorf("unknown scheduler %q", schedName)
	}
	res, err := scheduler.Schedule(in)
	if err != nil {
		return err
	}
	if err := res.Schedule.Validate(in); err != nil {
		return fmt.Errorf("schedule failed validation: %w", err)
	}
	rep, err := mlbs.Replay(in, res.Schedule)
	if err != nil {
		return err
	}
	fmt.Printf("scheduler: %s  exact=%v  expanded=%d states\n",
		res.Scheduler, res.Exact, res.Stats.Expanded)
	printOutcome(in, res.Schedule, rep, r, dep.SourceEcc, verbose)
	return nil
}

func printOutcome(in mlbs.Instance, s *mlbs.Schedule, rep *mlbs.Report, r, ecc int, verbose bool) {
	radio := mlbs.Mica2()
	fmt.Printf("P(A)=%d latency=%d slots (%v on %s)\n",
		s.PA(), s.Latency(), radio.BroadcastTime(s.Latency()), radio.Name)
	bound := mlbs.SyncLatencyBound(ecc)
	if r > 1 {
		bound = mlbs.AsyncLatencyBound(r, ecc)
	}
	fmt.Printf("Theorem 1 bound: %d slots\n", bound)
	fmt.Printf("physics: completed=%v tx=%d rx=%d collisions=%d energy=%.4f J\n",
		rep.Completed, rep.Usage.Transmissions, rep.Usage.Receptions,
		rep.Usage.Collisions, radio.Energy(rep.Usage))
	if verbose {
		for _, adv := range s.Advances {
			fmt.Printf("  t=%-4d senders=%v covered=%v\n", adv.T, adv.Senders, adv.Covered)
		}
	}
	_ = in
}
