// Command mlb-run schedules one broadcast on a generated deployment and
// prints the schedule, its validation, and the physical replay.
//
// Usage:
//
//	mlb-run [-n 150] [-seed 1] [-r 0] [-sched gopt] [-v] [-json]
//
// -r 0 selects the round-based synchronous system; r > 1 the duty-cycle
// system with that cycle rate. -sched is one of opt, gopt, emodel,
// baseline, localized.
//
// -json swaps the human-readable output for one machine-readable object —
// the instance digest, the graphio-encoded Result, and the replay Report,
// the same schema `mlb-serve` answers with — so runs can be scripted
// against the service's contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mlbs"
)

func main() {
	var (
		n        = flag.Int("n", 150, "number of nodes (paper sweeps 50..300)")
		seed     = flag.Uint64("seed", 1, "deployment seed")
		r        = flag.Int("r", 0, "duty-cycle rate r; 0 or 1 = synchronous")
		sched    = flag.String("sched", "gopt", "scheduler: opt|gopt|emodel|baseline|localized")
		channels = flag.Int("channels", 0, "orthogonal channels K; 0 or 1 = single shared channel")
		verbose  = flag.Bool("v", false, "print every advance")
		jsonMode = flag.Bool("json", false, "emit machine-readable digest+result+report JSON")
	)
	flag.Parse()
	if err := run(*n, *seed, *r, *channels, *sched, *verbose, *jsonMode); err != nil {
		fmt.Fprintln(os.Stderr, "mlb-run:", err)
		os.Exit(1)
	}
}

// jsonOutput mirrors the service's plan response: the content address of
// the instance, the result in graphio's schema, and the physical replay.
type jsonOutput struct {
	Digest string          `json:"digest"`
	Result json.RawMessage `json:"result"`
	Report *mlbs.Report    `json:"report"`
}

func emitJSON(in mlbs.Instance, res *mlbs.Result, rep *mlbs.Report) error {
	digest, err := mlbs.InstanceDigest(in)
	if err != nil {
		return err
	}
	resJSON, err := mlbs.EncodeResult(res)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(jsonOutput{Digest: digest.String(), Result: resJSON, Report: rep}, "", " ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(out))
	return err
}

func run(n int, seed uint64, r, channels int, schedName string, verbose, jsonMode bool) error {
	dep, err := mlbs.PaperDeployment(n, seed)
	if err != nil {
		return err
	}
	var in mlbs.Instance
	if r > 1 {
		in = mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(n, r, seed^0xA5), 0)
	} else {
		in = mlbs.SyncInstance(dep.G, dep.Source)
	}
	in = mlbs.WithChannels(in, channels)
	if !jsonMode {
		fmt.Printf("deployment: n=%d density=%.3f edges=%d source=%d ecc=%d seed=%d\n",
			n, dep.Cfg.Density(), dep.G.M(), dep.Source, dep.SourceEcc, seed)
	}

	if schedName == "localized" {
		rep, s, err := mlbs.LocalizedRun(in)
		if err != nil {
			return err
		}
		if jsonMode {
			return emitJSON(in, &mlbs.Result{Scheduler: "localized", Schedule: s, PA: s.PA()}, rep)
		}
		printOutcome(in, s, rep, r, dep.SourceEcc, verbose)
		return nil
	}

	var scheduler mlbs.Scheduler
	switch schedName {
	case "opt":
		scheduler = mlbs.OPT()
	case "gopt":
		scheduler = mlbs.GOPT()
	case "emodel":
		scheduler = mlbs.EModel()
	case "baseline":
		if r > 1 {
			scheduler = mlbs.Baseline17()
		} else {
			scheduler = mlbs.Baseline26()
		}
	default:
		return fmt.Errorf("unknown scheduler %q", schedName)
	}
	res, err := scheduler.Schedule(in)
	if err != nil {
		return err
	}
	if err := res.Schedule.Validate(in); err != nil {
		return fmt.Errorf("schedule failed validation: %w", err)
	}
	rep, err := mlbs.Replay(in, res.Schedule)
	if err != nil {
		return err
	}
	if jsonMode {
		return emitJSON(in, res, rep)
	}
	fmt.Printf("scheduler: %s  exact=%v  expanded=%d states\n",
		res.Scheduler, res.Exact, res.Stats.Expanded)
	printOutcome(in, res.Schedule, rep, r, dep.SourceEcc, verbose)
	return nil
}

func printOutcome(in mlbs.Instance, s *mlbs.Schedule, rep *mlbs.Report, r, ecc int, verbose bool) {
	radio := mlbs.Mica2()
	fmt.Printf("P(A)=%d latency=%d slots (%v on %s)\n",
		s.PA(), s.Latency(), radio.BroadcastTime(s.Latency()), radio.Name)
	bound := mlbs.SyncLatencyBound(ecc)
	if r > 1 {
		bound = mlbs.AsyncLatencyBound(r, ecc)
	}
	fmt.Printf("Theorem 1 bound: %d slots\n", bound)
	fmt.Printf("physics: completed=%v tx=%d rx=%d collisions=%d energy=%.4f J\n",
		rep.Completed, rep.Usage.Transmissions, rep.Usage.Receptions,
		rep.Usage.Collisions, radio.Energy(rep.Usage))
	if verbose {
		for _, adv := range s.Advances {
			fmt.Printf("  t=%-4d senders=%v covered=%v\n", adv.T, adv.Senders, adv.Covered)
		}
	}
	_ = in
}
