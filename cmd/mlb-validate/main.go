// Command mlb-validate drives Monte-Carlo reliability sweeps through the
// plan service: for each loss rate it validates the schedule cold (the
// full Monte-Carlo batch runs) and warm (the content-addressed reliability
// cache answers), printing delivery ratio with its Wilson interval, the
// lossy latency distribution, the repair outcome when a target is set, and
// the cold-path replay throughput.
//
// Usage:
//
//	mlb-validate [-n 300] [-seed 1] [-r 0] [-scheduler gopt] [-budget 0]
//	             [-rates 0.02,0.05,0.1] [-loss-seed 1] [-trials 1000]
//	             [-target 0] [-max-extra 64] [-out BENCH_validate.json]
//
// The -out JSON mirrors what the sweep printed, one record per rate, in
// the BENCH_*.json convention mlb-bench established.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mlbs"
)

type sweepRecord struct {
	Name              string   `json:"name"`
	Nodes             int      `json:"nodes"`
	DutyRate          int      `json:"duty_rate"`
	Scheduler         string   `json:"scheduler"`
	LossRate          float64  `json:"loss_rate"`
	Trials            int      `json:"trials"`
	MeanDeliveryRatio float64  `json:"mean_delivery_ratio"`
	FullCoverageRate  float64  `json:"full_coverage_rate"`
	FullCoverageLo    float64  `json:"full_coverage_lo"`
	FullCoverageHi    float64  `json:"full_coverage_hi"`
	ScheduleLatency   int      `json:"schedule_latency"`
	LatencyP99        int      `json:"latency_p99"`
	ColdNs            int64    `json:"cold_ns"`
	WarmNs            int64    `json:"warm_ns"`
	ReplaysPerSec     float64  `json:"cold_replays_per_sec"`
	TargetMet         *bool    `json:"target_met,omitempty"`
	AddedSlots        *int     `json:"added_slots,omitempty"`
	RepairedDelivery  *float64 `json:"repaired_delivery,omitempty"`
}

type output struct {
	Tool      string        `json:"tool"`
	GoVersion string        `json:"go_version"`
	Timestamp string        `json:"timestamp"`
	Nodes     int           `json:"nodes"`
	Seed      uint64        `json:"seed"`
	Records   []sweepRecord `json:"records"`
}

func main() {
	var (
		n         = flag.Int("n", 300, "deployment size (paper topology)")
		seed      = flag.Uint64("seed", 1, "deployment seed")
		r         = flag.Int("r", 0, "duty-cycle rate (0/1 = synchronous)")
		scheduler = flag.String("scheduler", "gopt", "scheduler: gopt|opt|emodel|energy|baseline")
		budget    = flag.Int("budget", 0, "search budget (0 = default)")
		rates     = flag.String("rates", "0.02,0.05,0.1", "comma-separated per-link loss rates")
		lossSeed  = flag.Uint64("loss-seed", 1, "loss-model master seed")
		trials    = flag.Int("trials", 1000, "Monte-Carlo trials per rate")
		target    = flag.Float64("target", 0, "repair target delivery ratio (0 = no repair)")
		maxExtra  = flag.Int("max-extra", 64, "repair latency budget in slots")
		out       = flag.String("out", "", "optional output JSON path")
	)
	flag.Parse()

	rateList, err := parseRates(*rates)
	if err != nil {
		fatal(err)
	}
	svc := mlbs.NewService(mlbs.ServiceConfig{Workers: runtime.GOMAXPROCS(0)})
	defer svc.Close()
	ctx := context.Background()

	// Prime the deployment and the plan once, outside any timed window:
	// the schedule is shared by every rate, and folding its one-time
	// search into the first rate's "cold" time would distort the recorded
	// Monte-Carlo throughput.
	if _, err := svc.Plan(ctx, mlbs.PlanRequest{
		Generator: &mlbs.PlanGenerator{N: *n, Seed: *seed, DutyRate: *r},
		Scheduler: *scheduler,
		Budget:    *budget,
	}); err != nil {
		fatal(err)
	}

	rep := output{
		Tool:      "mlb-validate",
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Nodes:     *n,
		Seed:      *seed,
	}
	fmt.Printf("%-8s %10s %22s %8s %12s %12s %14s\n",
		"rate", "delivery", "full-coverage (95% CI)", "p99", "cold", "warm", "replays/s")
	for _, rate := range rateList {
		req := mlbs.ValidateRequest{
			WorkloadRequest: mlbs.WorkloadRequest{
				Generator: &mlbs.PlanGenerator{N: *n, Seed: *seed, DutyRate: *r},
				Scheduler: *scheduler,
				Budget:    *budget,
			},
			Loss:          mlbs.ReliabilityLossModel{Rate: rate, Seed: *lossSeed},
			Trials:        *trials,
			Target:        *target,
			MaxExtraSlots: *maxExtra,
		}
		cold0 := time.Now()
		resp, err := svc.Validate(ctx, req)
		if err != nil {
			fatal(fmt.Errorf("rate %v: %w", rate, err))
		}
		coldNs := time.Since(cold0).Nanoseconds()
		if resp.CacheHit {
			fatal(fmt.Errorf("rate %v: first request unexpectedly hit the cache", rate))
		}
		warm0 := time.Now()
		warmResp, err := svc.Validate(ctx, req)
		if err != nil {
			fatal(fmt.Errorf("rate %v warm: %w", rate, err))
		}
		warmNs := time.Since(warm0).Nanoseconds()
		if !warmResp.CacheHit {
			fatal(fmt.Errorf("rate %v: warm request missed the cache", rate))
		}

		rp := resp.Report
		rec := sweepRecord{
			Name:              fmt.Sprintf("validate/n%d-rate%g", *n, rate),
			Nodes:             *n,
			DutyRate:          *r,
			Scheduler:         resp.Scheduler,
			LossRate:          rate,
			Trials:            rp.Trials,
			MeanDeliveryRatio: rp.MeanDeliveryRatio,
			FullCoverageRate:  rp.FullCoverageRate,
			FullCoverageLo:    rp.FullCoverageLo,
			FullCoverageHi:    rp.FullCoverageHi,
			ScheduleLatency:   rp.ScheduleLatency,
			LatencyP99:        rp.Latency.P99,
			ColdNs:            coldNs,
			WarmNs:            warmNs,
			ReplaysPerSec:     replaysPerSec(resp, coldNs),
		}
		line := fmt.Sprintf("%-8g %10.4f %10.4f [%.3f,%.3f] %8d %12s %12s %14.0f",
			rate, rp.MeanDeliveryRatio, rp.FullCoverageRate, rp.FullCoverageLo, rp.FullCoverageHi,
			rp.Latency.P99, time.Duration(coldNs), time.Duration(warmNs), rec.ReplaysPerSec)
		if rr := resp.Repair; rr != nil {
			met := rr.TargetMet
			added := rr.AddedSlots
			del := rr.After.MeanDeliveryRatio
			rec.TargetMet, rec.AddedSlots, rec.RepairedDelivery = &met, &added, &del
			line += fmt.Sprintf("  repair: %.4f→%.4f (+%d slots, met=%v)",
				rr.Before.MeanDeliveryRatio, del, added, met)
		}
		fmt.Println(line)
		rep.Records = append(rep.Records, rec)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d records)\n", *out, len(rep.Records))
	}
}

// replaysPerSec reports the cold Monte-Carlo throughput. Repair runs
// re-estimate once per round, so the replay count multiplies.
func replaysPerSec(resp mlbs.ValidateResponse, coldNs int64) float64 {
	if coldNs <= 0 {
		return 0
	}
	replays := resp.Report.Trials
	if rr := resp.Repair; rr != nil {
		replays = rr.Before.Trials * (rr.Rounds + 1)
	}
	return float64(replays) / (float64(coldNs) / 1e9)
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no loss rates given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlb-validate:", err)
	os.Exit(1)
}
