// Command mlb-churn replays seeded multi-hour churn traces against a
// paper-topology deployment: Poisson node failures, joins and position
// jitter evolve the network event by event, and each delta is repaired
// both incrementally (blast-radius classification + residual search) and
// by a cold from-scratch search, so the trade can be measured directly.
//
// Usage:
//
//	mlb-churn [-n 300] [-seed 1] [-r 0] [-scheduler gopt] [-budget 0]
//	          [-hours 2] [-fails 6] [-joins 3] [-jitters 12]
//	          [-jitter-sigma 1] [-batch 1] [-trace-seed 1]
//	          [-trace-out trace.json] [-out BENCH_churn.json]
//
// Every repaired schedule is validated (model constraints + collision-free
// replay + full live-node coverage); any violation fails the run. The -out
// JSON reports replan latency percentiles, the incremental-vs-cold
// speedup, the latency-regret distribution and the strategy mix, in the
// BENCH_*.json convention mlb-bench established.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"mlbs"
)

type quantilesNs struct {
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
	Mean int64 `json:"mean"`
}

type regretStats struct {
	Mean        float64 `json:"mean"`
	P50         int     `json:"p50"`
	P90         int     `json:"p90"`
	Max         int     `json:"max"`
	Min         int     `json:"min"`
	NonzeroFrac float64 `json:"nonzero_frac"`
}

type output struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	Timestamp string `json:"timestamp"`
	Nodes     int    `json:"nodes"`
	Seed      uint64 `json:"seed"`
	DutyRate  int    `json:"duty_rate"`
	Scheduler string `json:"scheduler"`
	Batch     int    `json:"events_per_replan"`

	TraceEvents  int     `json:"trace_events"`
	TraceHours   float64 `json:"trace_hours"`
	Replans      int     `json:"replans"`
	Prefix       int     `json:"strategy_prefix"`
	Incremental  int     `json:"strategy_incremental"`
	Cold         int     `json:"strategy_cold"`
	KeptFracMean float64 `json:"kept_frac_mean"`

	IncNs         quantilesNs `json:"incremental_ns"`
	ColdNs        quantilesNs `json:"cold_ns"`
	MedianSpeedup float64     `json:"median_speedup"`
	Regret        regretStats `json:"regret"`
	Validated     bool        `json:"validated"`
}

func main() {
	var (
		n           = flag.Int("n", 300, "node count of the paper deployment")
		seed        = flag.Uint64("seed", 1, "deployment seed")
		dutyRate    = flag.Int("r", 0, "duty-cycle rate (0/1 = synchronous)")
		scheduler   = flag.String("scheduler", "gopt", "search engine: gopt|opt")
		budget      = flag.Int("budget", 0, "search budget (0 = default)")
		hours       = flag.Float64("hours", 2, "trace horizon in hours")
		fails       = flag.Float64("fails", 6, "node failures per hour")
		joins       = flag.Float64("joins", 3, "node joins per hour")
		jitters     = flag.Float64("jitters", 12, "position jitters per hour")
		jitterSigma = flag.Float64("jitter-sigma", 1, "jitter displacement stddev (feet)")
		batch       = flag.Int("batch", 1, "events folded into one delta per replan")
		traceSeed   = flag.Uint64("trace-seed", 1, "churn trace seed")
		traceOut    = flag.String("trace-out", "", "also write the generated trace JSON here")
		outPath     = flag.String("out", "BENCH_churn.json", "output JSON path")
	)
	flag.Parse()
	if err := run(*n, *seed, *dutyRate, *scheduler, *budget, *hours, *fails, *joins,
		*jitters, *jitterSigma, *batch, *traceSeed, *traceOut, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "mlb-churn:", err)
		os.Exit(1)
	}
}

func newEngine(scheduler string, budget int) (mlbs.Scheduler, error) {
	switch scheduler {
	case "gopt":
		return mlbs.NewReusableGOPT(budget), nil
	case "opt":
		return mlbs.NewReusableOPT(budget, 0), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q (want gopt|opt)", scheduler)
	}
}

func run(n int, seed uint64, dutyRate int, scheduler string, budget int,
	hours, fails, joins, jitters, jitterSigma float64, batch int,
	traceSeed uint64, traceOut, outPath string) error {
	if batch < 1 {
		batch = 1
	}
	incEngine, err := newEngine(scheduler, budget)
	if err != nil {
		return err
	}
	coldEngine, err := newEngine(scheduler, budget)
	if err != nil {
		return err
	}
	dep, err := mlbs.PaperDeployment(n, seed)
	if err != nil {
		return err
	}
	base := mlbs.SyncInstance(dep.G, dep.Source)
	if dutyRate > 1 {
		base = mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(n, dutyRate, seed^0xA5), 0)
	}

	trace, err := mlbs.GenerateChurnTrace(base, mlbs.ChurnTraceConfig{
		HorizonHours:   hours,
		FailsPerHour:   fails,
		JoinsPerHour:   joins,
		JittersPerHour: jitters,
		JitterSigma:    jitterSigma,
	}, traceSeed)
	if err != nil {
		return err
	}
	if traceOut != "" {
		data, err := mlbs.EncodeChurnTrace(trace)
		if err != nil {
			return err
		}
		if err := os.WriteFile(traceOut, data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("mlb-churn: n=%d r=%d trace=%d events over %.1f h (%d fails, %d joins)\n",
		n, dutyRate, len(trace.Events), hours, countKind(trace, mlbs.ChurnNodeFail), countKind(trace, mlbs.ChurnNodeJoin))

	rp := mlbs.NewReplanner(mlbs.ReplannerConfig{Scheduler: incEngine})
	replayer := mlbs.NewReplayer()

	basePlan, err := coldEngine.Schedule(base)
	if err != nil {
		return err
	}

	out := output{
		Tool:      "mlb-churn",
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Nodes:     n, Seed: seed, DutyRate: dutyRate, Scheduler: scheduler,
		Batch: batch, TraceEvents: len(trace.Events), TraceHours: hours,
		Validated: true,
	}
	var incNs, coldNs []int64
	var regrets []int
	var keptFracSum float64

	cur, sched := base, basePlan.Schedule
	for i := 0; i < len(trace.Events); i += batch {
		j := min(i+batch, len(trace.Events))
		d := trace.Delta(i, j)

		t0 := time.Now()
		rr, err := rp.Replan(cur, sched, d)
		inc := time.Since(t0)
		if err != nil {
			return fmt.Errorf("replan at event %d: %w", i, err)
		}

		t1 := time.Now()
		coldRes, err := coldEngine.Schedule(rr.Instance)
		cold := time.Since(t1)
		if err != nil {
			return fmt.Errorf("cold search at event %d: %w", i, err)
		}

		// Validate the repaired plan the hard way: model constraints plus
		// collision-free replay with full live-node coverage.
		if err := rr.Result.Schedule.Validate(rr.Instance); err != nil {
			return fmt.Errorf("repaired plan invalid at event %d (%s): %w", i, rr.Strategy, err)
		}
		rep, err := replayer.Replay(rr.Instance, rr.Result.Schedule)
		if err != nil {
			return fmt.Errorf("replay at event %d: %w", i, err)
		}
		if !rep.Completed {
			return fmt.Errorf("replay incomplete or collided at event %d (%s)", i, rr.Strategy)
		}

		incNs = append(incNs, inc.Nanoseconds())
		coldNs = append(coldNs, cold.Nanoseconds())
		regrets = append(regrets, rr.Result.PA-coldRes.PA)
		if rr.BaseAdvances > 0 {
			keptFracSum += float64(rr.KeptAdvances) / float64(rr.BaseAdvances)
		}
		switch rr.Strategy {
		case mlbs.ChurnStrategy("prefix"):
			out.Prefix++
		case mlbs.ChurnStrategy("incremental"):
			out.Incremental++
		default:
			out.Cold++
		}
		out.Replans++
		cur, sched = rr.Instance, rr.Result.Schedule
	}
	if out.Replans == 0 {
		return fmt.Errorf("trace produced no events; raise -hours or the rates")
	}

	out.KeptFracMean = keptFracSum / float64(out.Replans)
	out.IncNs = summarizeNs(incNs)
	out.ColdNs = summarizeNs(coldNs)
	if out.IncNs.P50 > 0 {
		out.MedianSpeedup = float64(out.ColdNs.P50) / float64(out.IncNs.P50)
	}
	out.Regret = summarizeRegret(regrets)

	fmt.Printf("  replans=%d (prefix %d, incremental %d, cold %d), kept %.0f%% of advances on average\n",
		out.Replans, out.Prefix, out.Incremental, out.Cold, 100*out.KeptFracMean)
	fmt.Printf("  incremental p50=%s p99=%s | cold p50=%s | median speedup %.1f×\n",
		time.Duration(out.IncNs.P50), time.Duration(out.IncNs.P99),
		time.Duration(out.ColdNs.P50), out.MedianSpeedup)
	fmt.Printf("  regret: mean %.2f slots, p90 %d, max %d (nonzero in %.0f%% of replans)\n",
		out.Regret.Mean, out.Regret.P90, out.Regret.Max, 100*out.Regret.NonzeroFrac)

	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}

func countKind(tr *mlbs.ChurnTrace, k mlbs.ChurnKind) int {
	n := 0
	for _, te := range tr.Events {
		if te.Kind == k {
			n++
		}
	}
	return n
}

func summarizeNs(xs []int64) quantilesNs {
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	var sum int64
	for _, x := range sorted {
		sum += x
	}
	return quantilesNs{
		P50: at(0.50), P90: at(0.90), P99: at(0.99),
		Max: sorted[len(sorted)-1], Mean: sum / int64(len(sorted)),
	}
}

func summarizeRegret(xs []int) regretStats {
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	at := func(q float64) int {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	sum, nonzero := 0, 0
	for _, x := range sorted {
		sum += x
		if x != 0 {
			nonzero++
		}
	}
	return regretStats{
		Mean: float64(sum) / float64(len(sorted)),
		P50:  at(0.50), P90: at(0.90),
		Max: sorted[len(sorted)-1], Min: sorted[0],
		NonzeroFrac: float64(nonzero) / float64(len(sorted)),
	}
}
