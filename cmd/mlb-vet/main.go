// mlb-vet is the repo's project-specific static analyzer suite, run as a
// `go vet -vettool`. It enforces at vet time the invariants the test
// suite can only catch at run time: hot-path allocation discipline
// (hotalloc), search/improver determinism (detclock), bitset pool Get/Put
// pairing (poolput), and context/span threading on the request path
// (ctxspan). See DESIGN.md §16 for analyzer semantics and the `//mlbs:*`
// annotation reference.
//
// Usage:
//
//	mlb-vet ./...                 # standalone: re-execs `go vet -vettool=mlb-vet ./...`
//	go vet -vettool=mlb-vet ./... # the CI form
//
// The binary speaks the cmd/go vet-tool protocol directly (the -flags and
// -V=full handshakes plus one vet.cfg invocation per package), with no
// dependency on golang.org/x/tools: packages arrive pre-planned by the go
// command, are type-checked here against the compiler's export data, and
// each analyzer runs over the typed syntax. Exit status 2 means
// diagnostics were reported; 1 means the tool itself failed.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"os/exec"
	"strings"

	"mlbs/internal/analysis"
	"mlbs/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// The go command hashes this line into its action cache key, so
			// it must change whenever the analyzers do: hash the executable.
			fmt.Printf("mlb-vet version devel buildID=%s\n", selfHash())
			return
		case "-flags", "--flags":
			// No tool-specific flags; cmd/go requires valid JSON here.
			fmt.Println("[]")
			return
		}
	}
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			os.Exit(unitCheck(a))
		}
	}
	os.Exit(standalone(args))
}

// selfHash fingerprints the running executable for the -V=full handshake.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// standalone re-execs the go command with this binary as the vettool, so
// `mlb-vet ./...` and `go vet -vettool=$(which mlb-vet) ./...` are the
// same thing; package loading, build caching, and file planning all stay
// the go command's job.
func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlb-vet: %v\n", err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "mlb-vet: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig is the JSON the go command writes for each package when
// driving a vet tool; field set and semantics follow cmd/go's internal
// vetConfig struct.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func unitCheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlb-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mlb-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Dependency packages are visited only so fact-exporting tools can
	// produce their .vetx files; this suite is intra-package, so just
	// satisfy the protocol and move on.
	if cfg.VetxOnly {
		writeVetx(cfg)
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "mlb-vet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the go command compiled for
	// this build, exactly like the compiler itself sees them.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImporter.Import(path)
	})

	tconf := types.Config{Importer: imp}
	if lang := version.Lang(cfg.GoVersion); lang != "" {
		tconf.GoVersion = lang
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "mlb-vet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	var diags []analysis.Diagnostic
	for _, a := range suite.Analyzers {
		pass := analysis.NewPass(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "mlb-vet: %s: %v\n", a.Name, err)
			return 1
		}
	}
	writeVetx(cfg)
	if len(diags) == 0 {
		return 0
	}
	analysis.SortDiagnostics(fset, diags)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

// writeVetx writes an empty facts file at the path the go command
// reserved; the suite exports no facts, but the file's existence lets the
// action cache record the unit as complete.
func writeVetx(cfg vetConfig) {
	if cfg.VetxOutput != "" {
		_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
}
