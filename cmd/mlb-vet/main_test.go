package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles mlb-vet once into the test's temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mlb-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mlb-vet: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolHandshake checks the two cmd/go probes: -V=full must print a
// cache-keyable version line, -flags a JSON flag list.
func TestVettoolHandshake(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "mlb-vet version ") {
		t.Errorf("-V=full printed %q, want a 'mlb-vet version ...' line", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []any
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Errorf("-flags printed %q, want a JSON flag list: %v", out, err)
	}
}

// TestSuiteCleanOverRepo runs the built vettool over the whole module via
// `go vet -vettool` — the exact CI invocation — and requires silence: the
// repo must satisfy its own analyzers.
func TestSuiteCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module's full dependency graph")
	}
	bin := buildTool(t)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("..", "..")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -vettool over ./... reported findings: %v\n%s", err, buf.String())
	}
}
