// Command mlb-trace renders the paper's schedule-derivation tables: the
// time counter M evaluated for every greedy color along the optimal path.
//
// Usage:
//
//	mlb-trace -table 2   # Table II  (Figure 2(a), synchronous)
//	mlb-trace -table 3   # Table III (Figure 1(c), synchronous)
//	mlb-trace -table 4   # Table IV  (Figure 2(e), duty cycle r=10)
//	mlb-trace -n 60 -seed 3 -r 10   # trace an arbitrary deployment
package main

import (
	"flag"
	"fmt"
	"os"

	"mlbs"
)

func main() {
	var (
		table = flag.Int("table", 0, "paper table to reproduce: 2, 3 or 4")
		n     = flag.Int("n", 0, "trace a generated deployment of n nodes instead")
		seed  = flag.Uint64("seed", 1, "deployment seed")
		r     = flag.Int("r", 0, "duty-cycle rate for generated deployments")
		full  = flag.Bool("full", false, "print the whole decision tree, not just the optimal path")
	)
	flag.Parse()
	if err := run(*table, *n, *seed, *r, *full); err != nil {
		fmt.Fprintln(os.Stderr, "mlb-trace:", err)
		os.Exit(1)
	}
}

// fig1Namer labels Figure 1 nodes as the paper does: s, 0..10.
func fig1Namer(u mlbs.NodeID) string {
	if u == 0 {
		return "s"
	}
	return fmt.Sprintf("%d", u-1)
}

// fig2Namer labels Figure 2 nodes 1..5.
func fig2Namer(u mlbs.NodeID) string { return fmt.Sprintf("%d", u+1) }

func run(table, n int, seed uint64, r int, full bool) error {
	var (
		in    mlbs.Instance
		namer func(mlbs.NodeID) string
		title string
	)
	switch {
	case table == 2:
		g, src := mlbs.Figure2()
		in, namer = mlbs.SyncInstance(g, src), fig2Namer
		title = "Table II — Figure 2(a), round-based, t_s = 1"
	case table == 3:
		g, src := mlbs.Figure1()
		in, namer = mlbs.SyncInstance(g, src), fig1Namer
		title = "Table III — Figure 1(c), round-based, t_s = 1"
	case table == 4:
		g, src := mlbs.Figure2()
		in = mlbs.Instance{G: g, Source: src, Start: 2, Wake: mlbs.TableIVWake()}
		namer = fig2Namer
		title = "Table IV — Figure 2(e), duty cycle r = 10, t_s = 2"
	case n > 0:
		dep, err := mlbs.PaperDeployment(n, seed)
		if err != nil {
			return err
		}
		if r > 1 {
			in = mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(n, r, seed^0xA5), 0)
		} else {
			in = mlbs.SyncInstance(dep.G, dep.Source)
		}
		title = fmt.Sprintf("G-OPT trace — n=%d seed=%d r=%d", n, seed, r)
	default:
		return fmt.Errorf("specify -table 2|3|4 or -n <nodes>")
	}

	var (
		rows []mlbs.TraceRow
		err  error
	)
	if full {
		rows, err = mlbs.TraceTree(in, 0, 0)
		title += " (full decision tree)"
	} else {
		rows, err = mlbs.TraceGOPT(in, 0)
	}
	if err != nil {
		return err
	}
	fmt.Println(title)
	fmt.Print(mlbs.RenderTrace(rows, namer))
	return nil
}
