// Command mlb-sweep regenerates the paper's evaluation figures (3–7) and
// the Section V-C summary claims.
//
// Usage:
//
//	mlb-sweep -figure 3 [-trials 20] [-seed 1] [-csv out.csv]
//	mlb-sweep -summary [-trials 10]
//	mlb-sweep -all [-trials 10]
//
// Output is the same series the paper plots, as an aligned text table
// (mean ± 95% CI per density), optionally also as CSV.
package main

import (
	"flag"
	"fmt"
	"os"

	"mlbs"
)

func main() {
	var (
		figure    = flag.Int("figure", 0, "paper figure to regenerate (3..7)")
		all       = flag.Bool("all", false, "regenerate every figure")
		summary   = flag.Bool("summary", false, "print the Section V-C summary claims")
		ablations = flag.Bool("ablations", false, "run the DESIGN.md §7 ablations")
		plot      = flag.Bool("plot", false, "render an ASCII chart under each figure table")
		trials    = flag.Int("trials", 20, "deployments per density point")
		seed      = flag.Uint64("seed", 1, "master seed")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		csvPath   = flag.String("csv", "", "also write figure series as CSV to this file")
	)
	flag.Parse()
	cfg := mlbs.ExperimentConfig{Trials: *trials, Seed: *seed, Workers: *workers}

	if err := run(cfg, *figure, *all, *summary, *ablations, *plot, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "mlb-sweep:", err)
		os.Exit(1)
	}
}

func run(cfg mlbs.ExperimentConfig, figure int, all, summary, ablations, plot bool, csvPath string) error {
	switch {
	case ablations:
		sel, err := mlbs.AblationSelection(cfg)
		if err != nil {
			return err
		}
		fmt.Println(sel.Format())
		bud, err := mlbs.AblationBudget(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println(bud.Format())
		rob, err := mlbs.AblationRobustness(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println(rob.Format())
		fam, err := mlbs.AblationWakeFamily(cfg)
		if err != nil {
			return err
		}
		fmt.Println(fam.Format())
		return nil
	case all:
		var figs []*mlbs.Figure
		for id := 3; id <= 7; id++ {
			fig, err := mlbs.FigureByID(id, cfg)
			if err != nil {
				return err
			}
			fmt.Println(fig.Format())
			if id == 3 || id == 4 || id == 6 {
				figs = append(figs, fig)
			}
		}
		fmt.Println(mlbs.Summarize(figs...).Format())
		return nil
	case summary:
		f3, err := mlbs.Figure3(cfg)
		if err != nil {
			return err
		}
		f4, err := mlbs.Figure4(cfg)
		if err != nil {
			return err
		}
		f6, err := mlbs.Figure6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(mlbs.Summarize(f3, f4, f6).Format())
		return nil
	case figure >= 3 && figure <= 7:
		fig, err := mlbs.FigureByID(figure, cfg)
		if err != nil {
			return err
		}
		fmt.Println(fig.Format())
		if plot {
			fmt.Println(fig.Plot(72, 18))
		}
		if csvPath != "" {
			if err := os.WriteFile(csvPath, []byte(fig.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Println("csv written to", csvPath)
		}
		return nil
	default:
		return fmt.Errorf("specify -figure 3..7, -summary, or -all")
	}
}
