// Command mlb-serve exposes the plan service over HTTP/JSON: a
// content-addressed schedule cache with singleflight deduplication in
// front of a sharded pool of reusable search engines, plus the Monte-Carlo
// reliability engine behind /v1/validate.
//
// Usage:
//
//	mlb-serve [-addr :8080] [-workers 0] [-cache 4096] [-queue 16]
//	          [-improve-workers 2] [-trace-recent 64] [-trace-slowest 16]
//	          [-read-header-timeout 5s] [-read-timeout 60s] [-idle-timeout 2m]
//
// Endpoints:
//
//	POST /v1/plan      one plan request (generator params or inline instance)
//	POST /v1/aggregate convergecast (aggregation) schedule toward the sink
//	POST /v1/sweep     streaming parameter sweep (NDJSON, one item per line)
//	POST /v1/validate  Monte-Carlo reliability report (+ optional repair)
//	POST /v1/replan    incremental re-plan after a topology delta
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus text format
//	GET  /debug/traces           flight recorder: last-N + slowest-N traces
//	GET  /debug/traces/{digest}  one retained trace as a span tree
//	/debug/pprof/      runtime profiles
//
// Every POST endpoint above (except /v1/sweep) runs under an always-on
// request trace: the span tree — cache, search, improve, repair phases
// with search-internal counters — lands in a bounded in-memory flight
// recorder served by /debug/traces (DESIGN.md §15).
//
// A generator-form request and its response:
//
//	curl -s localhost:8080/v1/plan -d '{"n":150,"seed":1,"r":10,"scheduler":"gopt"}'
//	{"digest":"…","cache_hit":false,"result":{"pa":64,…},…}
//
// Every endpoint accepts an optional "channels" parameter selecting the
// K-orthogonal-channel system (K > 1); plans then assign each advance a
// (slot, channel) pair and cache entries are keyed per K:
//
//	curl -s localhost:8080/v1/plan -d '{"n":300,"seed":1,"r":50,"channels":4}'
//
// Reliability validation of the same plan at 5% frame loss:
//
//	curl -s localhost:8080/v1/validate \
//	  -d '{"n":150,"seed":1,"loss_rate":0.05,"trials":1000,"target":0.99}'
//
// Incremental re-planning after two nodes fail:
//
//	curl -s localhost:8080/v1/replan \
//	  -d '{"n":150,"seed":1,"delta":{"version":1,"events":[
//	        {"kind":"fail","node":17},{"kind":"fail","node":4}]}}'
//
// A convergecast (aggregation) schedule for the same deployment — every
// node's reading routed to the sink with payloads merged at parents:
//
//	curl -s localhost:8080/v1/aggregate -d '{"n":150,"seed":1,"r":10,"channels":4}'
//	{"digest":"…","scheduler":"agg-spt","latency_slots":93,…}
//
// Ship an exact instance instead with {"instance": <EncodeInstance JSON>}.
//
// Failures on every /v1/* endpoint share one wire envelope with a stable
// machine-readable code:
//
//	{"error":{"code":"bad_request","message":"…"}}
//
// Codes: bad_request (malformed body or parameters), unprocessable plus
// the typed churn codes source_failed / disconnected / last_node (a delta
// the broadcast cannot survive), not_found, unavailable (shutting down),
// internal.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	runtimemetrics "runtime/metrics"
	"syscall"
	"time"

	"mlbs"
)

// serveConfig is the parsed flag set — separated from main so the
// plumbing from flags to the http.Server is testable.
type serveConfig struct {
	addr              string
	workers           int
	cache             int
	queue             int
	improveWorkers    int
	traceRecent       int
	traceSlowest      int
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration
}

// parseServeFlags parses args (without the program name). Defaults keep
// one slow or stalled client from pinning a connection forever; write
// timeouts stay off because /v1/sweep streams for as long as the sweep
// runs.
func parseServeFlags(args []string) (serveConfig, error) {
	var cfg serveConfig
	fs := flag.NewFlagSet("mlb-serve", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.workers, "workers", 0, "scheduling workers (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.cache, "cache", 4096, "plan cache capacity (entries)")
	fs.IntVar(&cfg.queue, "queue", 16, "per-worker job queue depth")
	fs.IntVar(&cfg.improveWorkers, "improve-workers", 2,
		"background anytime-improver goroutines (0 disables background plan upgrades)")
	fs.IntVar(&cfg.traceRecent, "trace-recent", 64,
		"flight-recorder ring size: most recent request traces retained for /debug/traces")
	fs.IntVar(&cfg.traceSlowest, "trace-slowest", 16,
		"flight-recorder slow board size: slowest request traces retained for /debug/traces")
	fs.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", 5*time.Second,
		"max time to read a request's headers (0 disables)")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", 60*time.Second,
		"max time to read a full request including its body (0 disables)")
	fs.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute,
		"max keep-alive idle time between requests (0 disables)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	return cfg, nil
}

// buildServer wires the parsed timeouts into the http.Server — without
// them a single client that opens a connection and never finishes its
// request holds a goroutine and a socket until the process dies.
func buildServer(cfg serveConfig, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              cfg.addr,
		Handler:           h,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		ReadTimeout:       cfg.readTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
}

func main() {
	cfg, err := parseServeFlags(os.Args[1:])
	if err == flag.ErrHelp {
		os.Exit(0)
	}
	if err != nil {
		os.Exit(2)
	}
	svc := mlbs.NewService(mlbs.ServiceConfig{
		Workers:        cfg.workers,
		QueueDepth:     cfg.queue,
		CacheCapacity:  cfg.cache,
		ImproveWorkers: cfg.improveWorkers,
	})
	defer svc.Close()

	srv := buildServer(cfg, newMux(svc, newServeObs(cfg.traceRecent, cfg.traceSlowest)))
	go func() {
		log.Printf("mlb-serve: listening on %s (%d workers, cache %d)", cfg.addr, cfg.workers, cfg.cache)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("mlb-serve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("mlb-serve: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// serveObs bundles the server-side observability state: the always-on
// flight recorder behind /debug/traces and one fixed-edge latency
// histogram per traced endpoint (the mlbs_http_request_duration_seconds
// family on /metrics).
type serveObs struct {
	rec *mlbs.TraceRecorder
	lat map[string]*mlbs.LatencyHistogram
}

// tracedEndpoints are the POST endpoints that run under a request trace,
// in the order /metrics emits their latency series.
var tracedEndpoints = []string{"/v1/plan", "/v1/aggregate", "/v1/validate", "/v1/replan"}

func newServeObs(recentN, slowestN int) *serveObs {
	o := &serveObs{
		rec: mlbs.NewTraceRecorder(recentN, slowestN),
		lat: make(map[string]*mlbs.LatencyHistogram, len(tracedEndpoints)),
	}
	for _, ep := range tracedEndpoints {
		o.lat[ep] = mlbs.NewLatencyHistogram(nil)
	}
	return o
}

// traced wraps one handler with per-request span tracing: a fresh trace
// rides the request context into the service (which annotates its cache,
// search, improve and repair phases), and the finished snapshot lands in
// the flight recorder plus the endpoint's latency histogram. The handler
// returns the request's digest (empty if it never got that far) and the
// terminal error, both recorded on the trace.
func (o *serveObs) traced(endpoint string, h func(w http.ResponseWriter, r *http.Request) (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := mlbs.NewTrace(endpoint)
		digest, err := h(w, r.WithContext(mlbs.TraceContext(r.Context(), tr)))
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		snap := tr.Finish(digest, msg)
		o.rec.Record(snap)
		if snap != nil {
			o.lat[endpoint].Observe(time.Duration(snap.DurationNs))
		}
	}
}

// tracesIndexResponse is the GET /debug/traces schema.
type tracesIndexResponse struct {
	Seen    int64                 `json:"seen"`
	Recent  []*mlbs.TraceSnapshot `json:"recent"`
	Slowest []*mlbs.TraceSnapshot `json:"slowest"`
}

func handleTracesIndex(o *serveObs, w http.ResponseWriter) {
	recent, slowest := o.rec.Snapshot()
	if recent == nil {
		recent = []*mlbs.TraceSnapshot{}
	}
	if slowest == nil {
		slowest = []*mlbs.TraceSnapshot{}
	}
	writeJSON(w, http.StatusOK, tracesIndexResponse{Seen: o.rec.Seen(), Recent: recent, Slowest: slowest})
}

func handleTraceByDigest(o *serveObs, w http.ResponseWriter, digest string) {
	if s := o.rec.Find(digest); s != nil {
		writeJSON(w, http.StatusOK, s)
		return
	}
	httpError(w, http.StatusNotFound, fmt.Errorf("no retained trace for digest %s", digest))
}

func newMux(svc *mlbs.PlanService, obsv *serveObs) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", obsv.traced("/v1/plan",
		func(w http.ResponseWriter, r *http.Request) (string, error) { return handlePlan(svc, w, r) }))
	mux.HandleFunc("POST /v1/aggregate", obsv.traced("/v1/aggregate",
		func(w http.ResponseWriter, r *http.Request) (string, error) { return handleAggregate(svc, w, r) }))
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) { handleSweep(svc, w, r) })
	mux.HandleFunc("POST /v1/validate", obsv.traced("/v1/validate",
		func(w http.ResponseWriter, r *http.Request) (string, error) { return handleValidate(svc, w, r) }))
	mux.HandleFunc("POST /v1/replan", obsv.traced("/v1/replan",
		func(w http.ResponseWriter, r *http.Request) (string, error) { return handleReplan(svc, w, r) }))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) { handleMetrics(svc, obsv, w) })
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) { handleTracesIndex(obsv, w) })
	mux.HandleFunc("GET /debug/traces/{digest}", func(w http.ResponseWriter, r *http.Request) {
		handleTraceByDigest(obsv, w, r.PathValue("digest"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// baseSelection is the instance-selecting field set every endpoint
// shares: either the paper generator's parameters or an inline graphio
// instance encoding.
type baseSelection struct {
	N        int    `json:"n,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	R        int    `json:"r,omitempty"`
	WakeSeed uint64 `json:"wake_seed,omitempty"`
	Channels int    `json:"channels,omitempty"`
	// SINR physical-model parameters for the generator form; all zero
	// keeps the protocol model. Inline instances carry their own.
	SINRAlpha float64         `json:"sinr_alpha,omitempty"`
	SINRBeta  float64         `json:"sinr_beta,omitempty"`
	SINRNoise float64         `json:"sinr_noise,omitempty"`
	Instance  json.RawMessage `json:"instance,omitempty"`
}

// resolve projects the selection onto the service's request form: a
// decoded instance when one was shipped inline, the generator parameters
// otherwise. The decoded instance (if any) is returned for handlers that
// need it locally (replay).
func (b baseSelection) resolve() (*mlbs.Instance, *mlbs.PlanGenerator, error) {
	if len(b.Instance) > 0 {
		in, err := mlbs.DecodeInstance(b.Instance)
		if err != nil {
			return nil, nil, err
		}
		return &in, nil, nil
	}
	return nil, &mlbs.PlanGenerator{N: b.N, Seed: b.Seed, DutyRate: b.R, WakeSeed: b.WakeSeed, Channels: b.Channels,
		SINRAlpha: b.SINRAlpha, SINRBeta: b.SINRBeta, SINRNoise: b.SINRNoise}, nil
}

// planHTTPRequest is the wire form of a plan request.
type planHTTPRequest struct {
	baseSelection
	Scheduler string `json:"scheduler,omitempty"`
	Budget    int    `json:"budget,omitempty"`
	NoCache   bool   `json:"no_cache,omitempty"`
	Replay    bool   `json:"replay,omitempty"`
	// ImproveBudgetMs buys anytime improvement: spent synchronously on a
	// cold miss, or as a background upgrade re-published under the same
	// digest on a warm hit. 0 keeps the pre-improver path bit-identical.
	ImproveBudgetMs int64 `json:"improve_budget_ms,omitempty"`
}

type planHTTPResponse struct {
	Digest    string `json:"digest"`
	Scheduler string `json:"scheduler"`
	CacheHit  bool   `json:"cache_hit"`
	Coalesced bool   `json:"coalesced"`
	ElapsedNs int64  `json:"elapsed_ns"`
	// Exact mirrors the result's exactness at the top level so clients can
	// tell a proven-optimal plan from a budget-truncated one without
	// parsing the nested result; Generation/Improved carry the anytime
	// improver's provenance (omitted for plans it never touched).
	Exact      bool            `json:"exact"`
	Generation int             `json:"generation,omitempty"`
	Improved   bool            `json:"improved,omitempty"`
	Result     json.RawMessage `json:"result"`
	Report     *mlbs.Report    `json:"report,omitempty"`
}

// decodeBody reads a size-limited request body into v, reporting a 400 on
// failure. A non-nil return means the handler should stop.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		err = fmt.Errorf("bad request body: %w", err)
		httpError(w, http.StatusBadRequest, err)
		return err
	}
	return nil
}

// Handlers return the request's digest and terminal error for the trace
// middleware; the HTTP response itself is already written by the time
// they return.
func handlePlan(svc *mlbs.PlanService, w http.ResponseWriter, r *http.Request) (string, error) {
	var hr planHTTPRequest
	if err := decodeBody(w, r, &hr); err != nil {
		return "", err
	}
	req := mlbs.PlanRequest{
		Scheduler:     hr.Scheduler,
		Budget:        hr.Budget,
		NoCache:       hr.NoCache,
		ImproveBudget: time.Duration(hr.ImproveBudgetMs) * time.Millisecond,
	}
	inst, gen, err := hr.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return "", err
	}
	req.Instance, req.Generator = inst, gen

	resp, err := svc.Plan(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return "", err
	}
	resJSON, err := mlbs.EncodeResult(resp.Result)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return resp.Digest, err
	}
	out := planHTTPResponse{
		Digest:     resp.Digest,
		Scheduler:  resp.Scheduler,
		CacheHit:   resp.CacheHit,
		Coalesced:  resp.Coalesced,
		ElapsedNs:  resp.Elapsed.Nanoseconds(),
		Exact:      resp.Result.Exact,
		Generation: resp.Result.Generation,
		Improved:   resp.Result.Improved,
		Result:     resJSON,
	}
	if hr.Replay {
		if inst == nil {
			// Generator form: rebuild the instance the service planned
			// (deterministic from the same parameters).
			in, err := generatorInstance(hr.baseSelection)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return resp.Digest, err
			}
			inst = &in
		}
		rep, err := mlbs.Replay(*inst, resp.Result.Schedule)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return resp.Digest, err
		}
		out.Report = rep
	}
	writeJSON(w, http.StatusOK, out)
	return resp.Digest, nil
}

// aggregateHTTPRequest is the wire form of a convergecast (aggregation)
// request: the same base-instance selection as /v1/plan, with the
// aggregation tree policy in scheduler ("agg-spt" default, "agg-bounded").
type aggregateHTTPRequest struct {
	baseSelection
	Scheduler string `json:"scheduler,omitempty"`
	NoCache   bool   `json:"no_cache,omitempty"`
}

type aggregateHTTPResponse struct {
	Digest    string `json:"digest"`
	Scheduler string `json:"scheduler"`
	CacheHit  bool   `json:"cache_hit"`
	Coalesced bool   `json:"coalesced"`
	ElapsedNs int64  `json:"elapsed_ns"`
	// LatencySlots mirrors the nested result's makespan so clients polling
	// for the headline number need not parse the schedule.
	LatencySlots int             `json:"latency_slots"`
	Result       json.RawMessage `json:"result"`
}

func handleAggregate(svc *mlbs.PlanService, w http.ResponseWriter, r *http.Request) (string, error) {
	var hr aggregateHTTPRequest
	if err := decodeBody(w, r, &hr); err != nil {
		return "", err
	}
	req := mlbs.AggregateRequest{WorkloadRequest: mlbs.WorkloadRequest{
		Scheduler: hr.Scheduler,
		NoCache:   hr.NoCache,
	}}
	inst, gen, err := hr.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return "", err
	}
	req.Instance, req.Generator = inst, gen

	resp, err := svc.Aggregate(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return "", err
	}
	resJSON, err := mlbs.EncodeAggResult(resp.Result)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return resp.Digest, err
	}
	writeJSON(w, http.StatusOK, aggregateHTTPResponse{
		Digest:       resp.Digest,
		Scheduler:    resp.Scheduler,
		CacheHit:     resp.CacheHit,
		Coalesced:    resp.Coalesced,
		ElapsedNs:    resp.Elapsed.Nanoseconds(),
		LatencySlots: resp.Result.LatencySlots,
		Result:       resJSON,
	})
	return resp.Digest, nil
}

// generatorInstance mirrors the service's generator resolution (and
// mlb-run's conventions) for the replay path.
func generatorInstance(b baseSelection) (mlbs.Instance, error) {
	dep, err := mlbs.PaperDeployment(b.N, b.Seed)
	if err != nil {
		return mlbs.Instance{}, err
	}
	var in mlbs.Instance
	if b.R > 1 {
		ws := b.WakeSeed
		if ws == 0 {
			ws = b.Seed ^ 0xA5
		}
		in = mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(b.N, b.R, ws), 0)
	} else {
		in = mlbs.SyncInstance(dep.G, dep.Source)
	}
	if b.Channels > 1 {
		in.Channels = b.Channels
	}
	if b.SINRAlpha != 0 || b.SINRBeta != 0 || b.SINRNoise != 0 {
		in = mlbs.WithSINR(in, &mlbs.SINRParams{Alpha: b.SINRAlpha, Beta: b.SINRBeta, Noise: b.SINRNoise})
	}
	return in, nil
}

// validateHTTPRequest is the wire form of a reliability validation: the
// plan selection plus the loss model and Monte-Carlo parameters.
type validateHTTPRequest struct {
	baseSelection
	Scheduler     string  `json:"scheduler,omitempty"`
	Budget        int     `json:"budget,omitempty"`
	LossKind      string  `json:"loss_kind,omitempty"`
	LossRate      float64 `json:"loss_rate"`
	LossSeed      uint64  `json:"loss_seed,omitempty"`
	Trials        int     `json:"trials,omitempty"`
	Target        float64 `json:"target,omitempty"`
	MaxExtraSlots int     `json:"max_extra_slots,omitempty"`
	NoCache       bool    `json:"no_cache,omitempty"`
}

type validateHTTPResponse struct {
	Digest       string          `json:"digest"`
	Scheduler    string          `json:"scheduler"`
	CacheHit     bool            `json:"cache_hit"`
	Coalesced    bool            `json:"coalesced"`
	PlanCacheHit bool            `json:"plan_cache_hit"`
	ElapsedNs    int64           `json:"elapsed_ns"`
	Report       json.RawMessage `json:"report"`
	Repair       *repairHTTP     `json:"repair,omitempty"`
}

type repairHTTP struct {
	Target          float64         `json:"target"`
	TargetMet       bool            `json:"target_met"`
	Rounds          int             `json:"rounds"`
	AddedAdvances   int             `json:"added_advances"`
	AddedSlots      int             `json:"added_slots"`
	BaseLatency     int             `json:"base_latency"`
	RepairedLatency int             `json:"repaired_latency"`
	Before          json.RawMessage `json:"before"`
	Schedule        json.RawMessage `json:"schedule"`
}

func handleValidate(svc *mlbs.PlanService, w http.ResponseWriter, r *http.Request) (string, error) {
	var hr validateHTTPRequest
	if err := decodeBody(w, r, &hr); err != nil {
		return "", err
	}
	req := mlbs.ValidateRequest{
		WorkloadRequest: mlbs.WorkloadRequest{Scheduler: hr.Scheduler, Budget: hr.Budget, NoCache: hr.NoCache},
		Loss:            mlbs.ReliabilityLossModel{Kind: hr.LossKind, Rate: hr.LossRate, Seed: hr.LossSeed},
		Trials:          hr.Trials,
		Target:          hr.Target,
		MaxExtraSlots:   hr.MaxExtraSlots,
	}
	inst, gen, err := hr.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return "", err
	}
	req.Instance, req.Generator = inst, gen

	resp, err := svc.Validate(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return "", err
	}
	repJSON, err := mlbs.EncodeReliabilityReport(resp.Report)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return resp.Digest, err
	}
	out := validateHTTPResponse{
		Digest:       resp.Digest,
		Scheduler:    resp.Scheduler,
		CacheHit:     resp.CacheHit,
		Coalesced:    resp.Coalesced,
		PlanCacheHit: resp.PlanCacheHit,
		ElapsedNs:    resp.Elapsed.Nanoseconds(),
		Report:       repJSON,
	}
	if rr := resp.Repair; rr != nil {
		beforeJSON, err := mlbs.EncodeReliabilityReport(rr.Before)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return resp.Digest, err
		}
		schedJSON, err := mlbs.EncodeSchedule(rr.Schedule)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return resp.Digest, err
		}
		out.Repair = &repairHTTP{
			Target:          rr.Target,
			TargetMet:       rr.TargetMet,
			Rounds:          rr.Rounds,
			AddedAdvances:   rr.AddedAdvances,
			AddedSlots:      rr.AddedSlots,
			BaseLatency:     rr.BaseLatency,
			RepairedLatency: rr.RepairedLatency,
			Before:          beforeJSON,
			Schedule:        schedJSON,
		}
	}
	writeJSON(w, http.StatusOK, out)
	return resp.Digest, nil
}

// replanHTTPRequest is the wire form of a churn repair: the base-instance
// selection plus the delta in its EncodeChurnDelta schema.
type replanHTTPRequest struct {
	baseSelection
	Delta     json.RawMessage `json:"delta"`
	Scheduler string          `json:"scheduler,omitempty"`
	Budget    int             `json:"budget,omitempty"`
	NoCache   bool            `json:"no_cache,omitempty"`
}

type replanHTTPResponse struct {
	BaseDigest   string          `json:"base_digest"`
	Digest       string          `json:"digest"`
	Scheduler    string          `json:"scheduler"`
	Strategy     string          `json:"strategy"`
	KeptAdvances int             `json:"kept_advances"`
	BaseAdvances int             `json:"base_advances"`
	BasePlanHit  bool            `json:"base_plan_hit"`
	CacheHit     bool            `json:"cache_hit"`
	Coalesced    bool            `json:"coalesced"`
	ElapsedNs    int64           `json:"elapsed_ns"`
	Result       json.RawMessage `json:"result"`
}

func handleReplan(svc *mlbs.PlanService, w http.ResponseWriter, r *http.Request) (string, error) {
	var hr replanHTTPRequest
	if err := decodeBody(w, r, &hr); err != nil {
		return "", err
	}
	if len(hr.Delta) == 0 {
		err := fmt.Errorf("replan request needs a delta")
		httpError(w, http.StatusBadRequest, err)
		return "", err
	}
	delta, err := mlbs.DecodeChurnDelta(hr.Delta)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return "", err
	}
	req := mlbs.ReplanRequest{WorkloadRequest: mlbs.WorkloadRequest{Scheduler: hr.Scheduler, Budget: hr.Budget, NoCache: hr.NoCache}, Delta: delta}
	inst, gen, err := hr.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return "", err
	}
	req.Instance, req.Generator = inst, gen

	resp, err := svc.Replan(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return "", err
	}
	resJSON, err := mlbs.EncodeResult(resp.Result)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return resp.Digest, err
	}
	writeJSON(w, http.StatusOK, replanHTTPResponse{
		BaseDigest:   resp.BaseDigest,
		Digest:       resp.Digest,
		Scheduler:    resp.Scheduler,
		Strategy:     string(resp.Strategy),
		KeptAdvances: resp.KeptAdvances,
		BaseAdvances: resp.BaseAdvances,
		BasePlanHit:  resp.BasePlanHit,
		CacheHit:     resp.CacheHit,
		Coalesced:    resp.Coalesced,
		ElapsedNs:    resp.Elapsed.Nanoseconds(),
		Result:       resJSON,
	})
	return resp.Digest, nil
}

func handleSweep(svc *mlbs.PlanService, w http.ResponseWriter, r *http.Request) {
	var req mlbs.SweepRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	err := svc.Sweep(r.Context(), req, func(it mlbs.SweepItem) error {
		if err := enc.Encode(it); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// Headers are gone; best effort is a terminal NDJSON error line.
		_ = enc.Encode(mlbs.SweepItem{Err: err.Error()})
	}
}

func handleMetrics(svc *mlbs.PlanService, obsv *serveObs, w http.ResponseWriter) {
	m := svc.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	mlbs.WritePromCounter(w, "mlbs_plan_requests_total", "Plan requests received.", m.Requests)
	mlbs.WritePromCounter(w, "mlbs_plan_cache_hits_total", "Plan requests answered from the schedule cache.", m.Hits)
	mlbs.WritePromCounter(w, "mlbs_plan_cache_misses_total", "Plan requests that missed the schedule cache.", m.Misses)
	mlbs.WritePromCounter(w, "mlbs_plan_coalesced_total", "Plan requests coalesced onto another caller's in-flight search.", m.Coalesced)
	mlbs.WritePromCounter(w, "mlbs_plan_searches_total", "Schedule searches actually executed by the worker pool.", m.Searches)
	mlbs.WritePromCounter(w, "mlbs_plan_errors_total", "Requests that ended in an error.", m.Errors)
	mlbs.WritePromCounter(w, "mlbs_plan_cache_evictions_total", "Schedule-cache LRU evictions.", m.Evictions)
	mlbs.WritePromGauge(w, "mlbs_plan_cache_entries", "Schedule-cache entries currently resident.", int64(m.CacheEntries))
	mlbs.WritePromGauge(w, "mlbs_plan_cache_capacity", "Schedule-cache entry bound (pair with mlbs_plan_cache_entries for occupancy).", int64(m.CacheCapacity))
	mlbs.WritePromCounter(w, "mlbs_engine_states_total", "Branch-and-bound states expanded across every search the service ran.", m.EngineStates)
	mlbs.WritePromCounter(w, "mlbs_engine_memo_hits_total", "Search memo-table hits across every search the service ran.", m.EngineMemoHits)
	mlbs.WritePromCounter(w, "mlbs_aggregate_requests_total", "Convergecast (aggregation) requests received.", m.Aggregates)
	mlbs.WritePromCounter(w, "mlbs_aggregate_searches_total", "Convergecast scheduler runs actually executed.", m.AggSearches)
	mlbs.WritePromCounter(w, "mlbs_aggregate_cache_hits_total", "Aggregations answered from the convergecast-plan cache.", m.AggregateHits)
	mlbs.WritePromCounter(w, "mlbs_aggregate_cache_misses_total", "Aggregations that missed the convergecast-plan cache.", m.AggregateMisses)
	mlbs.WritePromGauge(w, "mlbs_aggregate_cache_entries", "Convergecast-plan cache entries currently resident.", int64(m.AggregateEntries))
	mlbs.WritePromCounter(w, "mlbs_validate_requests_total", "Reliability validation requests received.", m.Validations)
	mlbs.WritePromCounter(w, "mlbs_validate_trials_total", "Monte-Carlo trials executed.", m.MonteCarloTrials)
	mlbs.WritePromCounter(w, "mlbs_validate_cache_hits_total", "Validations answered from the reliability-report cache.", m.ValidateHits)
	mlbs.WritePromCounter(w, "mlbs_validate_cache_misses_total", "Validations that missed the reliability-report cache.", m.ValidateMisses)
	mlbs.WritePromGauge(w, "mlbs_validate_cache_entries", "Reliability-report cache entries currently resident.", int64(m.ValidateEntries))
	mlbs.WritePromCounter(w, "mlbs_replan_requests_total", "Churn replan requests received.", m.Replans)
	mlbs.WritePromCounter(w, "mlbs_replan_prefix_total", "Repairs classified prefix-reusable.", m.ReplanPrefix)
	mlbs.WritePromCounter(w, "mlbs_replan_incremental_total", "Repairs classified incremental.", m.ReplanIncremental)
	mlbs.WritePromCounter(w, "mlbs_replan_cold_total", "Repairs that fell back to a cold full search.", m.ReplanCold)
	mlbs.WritePromCounter(w, "mlbs_replan_cache_hits_total", "Replans answered from the repair cache.", m.ReplanHits)
	mlbs.WritePromCounter(w, "mlbs_replan_cache_misses_total", "Replans that missed the repair cache.", m.ReplanMisses)
	mlbs.WritePromGauge(w, "mlbs_replan_cache_entries", "Repair-cache entries currently resident.", int64(m.ReplanEntries))
	mlbs.WritePromCounter(w, "mlbs_improve_total", "Anytime-improver upgrades accepted (sync and background).", m.Improvements)
	mlbs.WritePromCounter(w, "mlbs_improve_slots_saved_total", "Latency slots shaved off served plans by the improver.", m.ImproveSlotsSaved)
	mlbs.WritePromCounter(w, "mlbs_improve_queued_total", "Background improvement jobs enqueued.", m.ImproveQueued)
	mlbs.WritePromCounter(w, "mlbs_improve_dropped_total", "Background improvement jobs dropped on a full queue.", m.ImproveDropped)
	mlbs.WritePromGauge(w, "mlbs_improve_queue_depth", "Background improver queue occupancy.", int64(m.ImproveQueueDepth))
	fmt.Fprintf(w, "# HELP mlbs_improve_generation_total Plan publications by improvement generation.\n")
	fmt.Fprintf(w, "# TYPE mlbs_improve_generation_total counter\n")
	for i, c := range m.Generations {
		fmt.Fprintf(w, "mlbs_improve_generation_total{gen=\"%d\"} %d\n", i, c)
	}
	mlbs.WritePromCounter(w, "mlbs_traces_recorded_total", "Request traces finished into the flight recorder.", obsv.rec.Seen())
	fmt.Fprintf(w, "# HELP mlbs_plan_latency_seconds Plan request latency quantiles (all requests).\n")
	fmt.Fprintf(w, "# TYPE mlbs_plan_latency_seconds summary\n")
	fmt.Fprintf(w, "mlbs_plan_latency_seconds{quantile=\"0.5\"} %g\n", m.P50.Seconds())
	fmt.Fprintf(w, "mlbs_plan_latency_seconds{quantile=\"0.99\"} %g\n", m.P99.Seconds())
	mlbs.WritePromHistogram(w, "mlbs_plan_hit_latency_seconds",
		"Latency distribution of plan requests answered from the cache.", "", m.HitLatency)
	mlbs.WritePromHistogram(w, "mlbs_plan_miss_latency_seconds",
		"Latency distribution of plan requests that ran a search.", "", m.MissLatency)
	fmt.Fprintf(w, "# HELP mlbs_http_request_duration_seconds End-to-end request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE mlbs_http_request_duration_seconds histogram\n")
	for _, ep := range tracedEndpoints {
		mlbs.WritePromHistogramSeries(w, "mlbs_http_request_duration_seconds",
			fmt.Sprintf("endpoint=%q", ep), obsv.lat[ep].Snapshot())
	}
	writeRuntimeMetrics(w)
}

// writeRuntimeMetrics exports the process-health slice of runtime/metrics:
// live goroutines, completed GC cycles, and live heap bytes.
func writeRuntimeMetrics(w io.Writer) {
	samples := []runtimemetrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/memory/classes/heap/objects:bytes"},
	}
	runtimemetrics.Read(samples)
	if samples[0].Value.Kind() == runtimemetrics.KindUint64 {
		mlbs.WritePromGauge(w, "mlbs_goroutines", "Live goroutines.", int64(samples[0].Value.Uint64()))
	}
	if samples[1].Value.Kind() == runtimemetrics.KindUint64 {
		mlbs.WritePromCounter(w, "mlbs_gc_cycles_total", "Completed GC cycles.", int64(samples[1].Value.Uint64()))
	}
	if samples[2].Value.Kind() == runtimemetrics.KindUint64 {
		mlbs.WritePromGauge(w, "mlbs_heap_objects_bytes", "Bytes of live heap objects.", int64(samples[2].Value.Uint64()))
	}
}

// errorBody is the one error envelope every /v1/* endpoint speaks: a
// stable machine-readable code for programs, the error text for humans.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// httpError writes the error envelope. Typed failures override the
// caller's status: a churn delta the broadcast cannot survive is a
// semantic failure (422) with its own code, not a malformed request, and
// a closing service is 503 so load balancers retry elsewhere.
func httpError(w http.ResponseWriter, status int, err error) {
	var code string
	switch {
	case errors.Is(err, mlbs.ErrChurnSourceFailed):
		status, code = http.StatusUnprocessableEntity, "source_failed"
	case errors.Is(err, mlbs.ErrChurnDisconnected):
		status, code = http.StatusUnprocessableEntity, "disconnected"
	case errors.Is(err, mlbs.ErrChurnLastNode):
		status, code = http.StatusUnprocessableEntity, "last_node"
	case errors.Is(err, mlbs.ErrServiceClosed):
		status, code = http.StatusServiceUnavailable, "unavailable"
	default:
		switch status {
		case http.StatusBadRequest:
			code = "bad_request"
		case http.StatusNotFound:
			code = "not_found"
		case http.StatusUnprocessableEntity:
			code = "unprocessable"
		case http.StatusServiceUnavailable:
			code = "unavailable"
		default:
			code = "internal"
		}
	}
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: err.Error()}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
