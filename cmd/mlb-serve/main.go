// Command mlb-serve exposes the plan service over HTTP/JSON: a
// content-addressed schedule cache with singleflight deduplication in
// front of a sharded pool of reusable search engines, plus the Monte-Carlo
// reliability engine behind /v1/validate.
//
// Usage:
//
//	mlb-serve [-addr :8080] [-workers 0] [-cache 4096] [-queue 16]
//	          [-improve-workers 2]
//	          [-read-header-timeout 5s] [-read-timeout 60s] [-idle-timeout 2m]
//
// Endpoints:
//
//	POST /v1/plan      one plan request (generator params or inline instance)
//	POST /v1/sweep     streaming parameter sweep (NDJSON, one item per line)
//	POST /v1/validate  Monte-Carlo reliability report (+ optional repair)
//	POST /v1/replan    incremental re-plan after a topology delta
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus text format
//	/debug/pprof/      runtime profiles
//
// A generator-form request and its response:
//
//	curl -s localhost:8080/v1/plan -d '{"n":150,"seed":1,"r":10,"scheduler":"gopt"}'
//	{"digest":"…","cache_hit":false,"result":{"pa":64,…},…}
//
// Every endpoint accepts an optional "channels" parameter selecting the
// K-orthogonal-channel system (K > 1); plans then assign each advance a
// (slot, channel) pair and cache entries are keyed per K:
//
//	curl -s localhost:8080/v1/plan -d '{"n":300,"seed":1,"r":50,"channels":4}'
//
// Reliability validation of the same plan at 5% frame loss:
//
//	curl -s localhost:8080/v1/validate \
//	  -d '{"n":150,"seed":1,"loss_rate":0.05,"trials":1000,"target":0.99}'
//
// Incremental re-planning after two nodes fail:
//
//	curl -s localhost:8080/v1/replan \
//	  -d '{"n":150,"seed":1,"delta":{"version":1,"events":[
//	        {"kind":"fail","node":17},{"kind":"fail","node":4}]}}'
//
// Ship an exact instance instead with {"instance": <EncodeInstance JSON>}.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mlbs"
)

// serveConfig is the parsed flag set — separated from main so the
// plumbing from flags to the http.Server is testable.
type serveConfig struct {
	addr              string
	workers           int
	cache             int
	queue             int
	improveWorkers    int
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration
}

// parseServeFlags parses args (without the program name). Defaults keep
// one slow or stalled client from pinning a connection forever; write
// timeouts stay off because /v1/sweep streams for as long as the sweep
// runs.
func parseServeFlags(args []string) (serveConfig, error) {
	var cfg serveConfig
	fs := flag.NewFlagSet("mlb-serve", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.workers, "workers", 0, "scheduling workers (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.cache, "cache", 4096, "plan cache capacity (entries)")
	fs.IntVar(&cfg.queue, "queue", 16, "per-worker job queue depth")
	fs.IntVar(&cfg.improveWorkers, "improve-workers", 2,
		"background anytime-improver goroutines (0 disables background plan upgrades)")
	fs.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", 5*time.Second,
		"max time to read a request's headers (0 disables)")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", 60*time.Second,
		"max time to read a full request including its body (0 disables)")
	fs.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute,
		"max keep-alive idle time between requests (0 disables)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	return cfg, nil
}

// buildServer wires the parsed timeouts into the http.Server — without
// them a single client that opens a connection and never finishes its
// request holds a goroutine and a socket until the process dies.
func buildServer(cfg serveConfig, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              cfg.addr,
		Handler:           h,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		ReadTimeout:       cfg.readTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
}

func main() {
	cfg, err := parseServeFlags(os.Args[1:])
	if err == flag.ErrHelp {
		os.Exit(0)
	}
	if err != nil {
		os.Exit(2)
	}
	svc := mlbs.NewService(mlbs.ServiceConfig{
		Workers:        cfg.workers,
		QueueDepth:     cfg.queue,
		CacheCapacity:  cfg.cache,
		ImproveWorkers: cfg.improveWorkers,
	})
	defer svc.Close()

	srv := buildServer(cfg, newMux(svc))
	go func() {
		log.Printf("mlb-serve: listening on %s (%d workers, cache %d)", cfg.addr, cfg.workers, cfg.cache)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("mlb-serve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("mlb-serve: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

func newMux(svc *mlbs.PlanService) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) { handlePlan(svc, w, r) })
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) { handleSweep(svc, w, r) })
	mux.HandleFunc("POST /v1/validate", func(w http.ResponseWriter, r *http.Request) { handleValidate(svc, w, r) })
	mux.HandleFunc("POST /v1/replan", func(w http.ResponseWriter, r *http.Request) { handleReplan(svc, w, r) })
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) { handleMetrics(svc, w) })
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// baseSelection is the instance-selecting field set every endpoint
// shares: either the paper generator's parameters or an inline graphio
// instance encoding.
type baseSelection struct {
	N        int             `json:"n,omitempty"`
	Seed     uint64          `json:"seed,omitempty"`
	R        int             `json:"r,omitempty"`
	WakeSeed uint64          `json:"wake_seed,omitempty"`
	Channels int             `json:"channels,omitempty"`
	Instance json.RawMessage `json:"instance,omitempty"`
}

// resolve projects the selection onto the service's request form: a
// decoded instance when one was shipped inline, the generator parameters
// otherwise. The decoded instance (if any) is returned for handlers that
// need it locally (replay).
func (b baseSelection) resolve() (*mlbs.Instance, *mlbs.PlanGenerator, error) {
	if len(b.Instance) > 0 {
		in, err := mlbs.DecodeInstance(b.Instance)
		if err != nil {
			return nil, nil, err
		}
		return &in, nil, nil
	}
	return nil, &mlbs.PlanGenerator{N: b.N, Seed: b.Seed, DutyRate: b.R, WakeSeed: b.WakeSeed, Channels: b.Channels}, nil
}

// planHTTPRequest is the wire form of a plan request.
type planHTTPRequest struct {
	baseSelection
	Scheduler string `json:"scheduler,omitempty"`
	Budget    int    `json:"budget,omitempty"`
	NoCache   bool   `json:"no_cache,omitempty"`
	Replay    bool   `json:"replay,omitempty"`
	// ImproveBudgetMs buys anytime improvement: spent synchronously on a
	// cold miss, or as a background upgrade re-published under the same
	// digest on a warm hit. 0 keeps the pre-improver path bit-identical.
	ImproveBudgetMs int64 `json:"improve_budget_ms,omitempty"`
}

type planHTTPResponse struct {
	Digest    string `json:"digest"`
	Scheduler string `json:"scheduler"`
	CacheHit  bool   `json:"cache_hit"`
	Coalesced bool   `json:"coalesced"`
	ElapsedNs int64  `json:"elapsed_ns"`
	// Exact mirrors the result's exactness at the top level so clients can
	// tell a proven-optimal plan from a budget-truncated one without
	// parsing the nested result; Generation/Improved carry the anytime
	// improver's provenance (omitted for plans it never touched).
	Exact      bool            `json:"exact"`
	Generation int             `json:"generation,omitempty"`
	Improved   bool            `json:"improved,omitempty"`
	Result     json.RawMessage `json:"result"`
	Report     *mlbs.Report    `json:"report,omitempty"`
}

// decodeBody reads a size-limited request body into v, reporting a 400 on
// failure. It returns false when the handler should stop.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func handlePlan(svc *mlbs.PlanService, w http.ResponseWriter, r *http.Request) {
	var hr planHTTPRequest
	if !decodeBody(w, r, &hr) {
		return
	}
	req := mlbs.PlanRequest{
		Scheduler:     hr.Scheduler,
		Budget:        hr.Budget,
		NoCache:       hr.NoCache,
		ImproveBudget: time.Duration(hr.ImproveBudgetMs) * time.Millisecond,
	}
	inst, gen, err := hr.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req.Instance, req.Generator = inst, gen

	resp, err := svc.Plan(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resJSON, err := mlbs.EncodeResult(resp.Result)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := planHTTPResponse{
		Digest:     resp.Digest,
		Scheduler:  resp.Scheduler,
		CacheHit:   resp.CacheHit,
		Coalesced:  resp.Coalesced,
		ElapsedNs:  resp.Elapsed.Nanoseconds(),
		Exact:      resp.Result.Exact,
		Generation: resp.Result.Generation,
		Improved:   resp.Result.Improved,
		Result:     resJSON,
	}
	if hr.Replay {
		if inst == nil {
			// Generator form: rebuild the instance the service planned
			// (deterministic from the same parameters).
			in, err := generatorInstance(hr.baseSelection)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			inst = &in
		}
		rep, err := mlbs.Replay(*inst, resp.Result.Schedule)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		out.Report = rep
	}
	writeJSON(w, http.StatusOK, out)
}

// generatorInstance mirrors the service's generator resolution (and
// mlb-run's conventions) for the replay path.
func generatorInstance(b baseSelection) (mlbs.Instance, error) {
	dep, err := mlbs.PaperDeployment(b.N, b.Seed)
	if err != nil {
		return mlbs.Instance{}, err
	}
	var in mlbs.Instance
	if b.R > 1 {
		ws := b.WakeSeed
		if ws == 0 {
			ws = b.Seed ^ 0xA5
		}
		in = mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(b.N, b.R, ws), 0)
	} else {
		in = mlbs.SyncInstance(dep.G, dep.Source)
	}
	if b.Channels > 1 {
		in.Channels = b.Channels
	}
	return in, nil
}

// validateHTTPRequest is the wire form of a reliability validation: the
// plan selection plus the loss model and Monte-Carlo parameters.
type validateHTTPRequest struct {
	baseSelection
	Scheduler     string  `json:"scheduler,omitempty"`
	Budget        int     `json:"budget,omitempty"`
	LossKind      string  `json:"loss_kind,omitempty"`
	LossRate      float64 `json:"loss_rate"`
	LossSeed      uint64  `json:"loss_seed,omitempty"`
	Trials        int     `json:"trials,omitempty"`
	Target        float64 `json:"target,omitempty"`
	MaxExtraSlots int     `json:"max_extra_slots,omitempty"`
	NoCache       bool    `json:"no_cache,omitempty"`
}

type validateHTTPResponse struct {
	Digest       string          `json:"digest"`
	Scheduler    string          `json:"scheduler"`
	CacheHit     bool            `json:"cache_hit"`
	Coalesced    bool            `json:"coalesced"`
	PlanCacheHit bool            `json:"plan_cache_hit"`
	ElapsedNs    int64           `json:"elapsed_ns"`
	Report       json.RawMessage `json:"report"`
	Repair       *repairHTTP     `json:"repair,omitempty"`
}

type repairHTTP struct {
	Target          float64         `json:"target"`
	TargetMet       bool            `json:"target_met"`
	Rounds          int             `json:"rounds"`
	AddedAdvances   int             `json:"added_advances"`
	AddedSlots      int             `json:"added_slots"`
	BaseLatency     int             `json:"base_latency"`
	RepairedLatency int             `json:"repaired_latency"`
	Before          json.RawMessage `json:"before"`
	Schedule        json.RawMessage `json:"schedule"`
}

func handleValidate(svc *mlbs.PlanService, w http.ResponseWriter, r *http.Request) {
	var hr validateHTTPRequest
	if !decodeBody(w, r, &hr) {
		return
	}
	req := mlbs.ValidateRequest{
		Scheduler:     hr.Scheduler,
		Budget:        hr.Budget,
		Loss:          mlbs.ReliabilityLossModel{Kind: hr.LossKind, Rate: hr.LossRate, Seed: hr.LossSeed},
		Trials:        hr.Trials,
		Target:        hr.Target,
		MaxExtraSlots: hr.MaxExtraSlots,
		NoCache:       hr.NoCache,
	}
	inst, gen, err := hr.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req.Instance, req.Generator = inst, gen

	resp, err := svc.Validate(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	repJSON, err := mlbs.EncodeReliabilityReport(resp.Report)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := validateHTTPResponse{
		Digest:       resp.Digest,
		Scheduler:    resp.Scheduler,
		CacheHit:     resp.CacheHit,
		Coalesced:    resp.Coalesced,
		PlanCacheHit: resp.PlanCacheHit,
		ElapsedNs:    resp.Elapsed.Nanoseconds(),
		Report:       repJSON,
	}
	if rr := resp.Repair; rr != nil {
		beforeJSON, err := mlbs.EncodeReliabilityReport(rr.Before)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		schedJSON, err := mlbs.EncodeSchedule(rr.Schedule)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		out.Repair = &repairHTTP{
			Target:          rr.Target,
			TargetMet:       rr.TargetMet,
			Rounds:          rr.Rounds,
			AddedAdvances:   rr.AddedAdvances,
			AddedSlots:      rr.AddedSlots,
			BaseLatency:     rr.BaseLatency,
			RepairedLatency: rr.RepairedLatency,
			Before:          beforeJSON,
			Schedule:        schedJSON,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// replanHTTPRequest is the wire form of a churn repair: the base-instance
// selection plus the delta in its EncodeChurnDelta schema.
type replanHTTPRequest struct {
	baseSelection
	Delta     json.RawMessage `json:"delta"`
	Scheduler string          `json:"scheduler,omitempty"`
	Budget    int             `json:"budget,omitempty"`
	NoCache   bool            `json:"no_cache,omitempty"`
}

type replanHTTPResponse struct {
	BaseDigest   string          `json:"base_digest"`
	Digest       string          `json:"digest"`
	Scheduler    string          `json:"scheduler"`
	Strategy     string          `json:"strategy"`
	KeptAdvances int             `json:"kept_advances"`
	BaseAdvances int             `json:"base_advances"`
	BasePlanHit  bool            `json:"base_plan_hit"`
	CacheHit     bool            `json:"cache_hit"`
	Coalesced    bool            `json:"coalesced"`
	ElapsedNs    int64           `json:"elapsed_ns"`
	Result       json.RawMessage `json:"result"`
}

func handleReplan(svc *mlbs.PlanService, w http.ResponseWriter, r *http.Request) {
	var hr replanHTTPRequest
	if !decodeBody(w, r, &hr) {
		return
	}
	if len(hr.Delta) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("replan request needs a delta"))
		return
	}
	delta, err := mlbs.DecodeChurnDelta(hr.Delta)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req := mlbs.ReplanRequest{Delta: delta, Scheduler: hr.Scheduler, Budget: hr.Budget, NoCache: hr.NoCache}
	inst, gen, err := hr.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req.Base, req.Generator = inst, gen

	resp, err := svc.Replan(r.Context(), req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resJSON, err := mlbs.EncodeResult(resp.Result)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, replanHTTPResponse{
		BaseDigest:   resp.BaseDigest,
		Digest:       resp.Digest,
		Scheduler:    resp.Scheduler,
		Strategy:     string(resp.Strategy),
		KeptAdvances: resp.KeptAdvances,
		BaseAdvances: resp.BaseAdvances,
		BasePlanHit:  resp.BasePlanHit,
		CacheHit:     resp.CacheHit,
		Coalesced:    resp.Coalesced,
		ElapsedNs:    resp.Elapsed.Nanoseconds(),
		Result:       resJSON,
	})
}

func handleSweep(svc *mlbs.PlanService, w http.ResponseWriter, r *http.Request) {
	var req mlbs.SweepRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	err := svc.Sweep(r.Context(), req, func(it mlbs.SweepItem) error {
		if err := enc.Encode(it); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// Headers are gone; best effort is a terminal NDJSON error line.
		_ = enc.Encode(mlbs.SweepItem{Err: err.Error()})
	}
}

func handleMetrics(svc *mlbs.PlanService, w http.ResponseWriter) {
	m := svc.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE mlbs_plan_requests_total counter\nmlbs_plan_requests_total %d\n", m.Requests)
	fmt.Fprintf(w, "# TYPE mlbs_plan_cache_hits_total counter\nmlbs_plan_cache_hits_total %d\n", m.Hits)
	fmt.Fprintf(w, "# TYPE mlbs_plan_cache_misses_total counter\nmlbs_plan_cache_misses_total %d\n", m.Misses)
	fmt.Fprintf(w, "# TYPE mlbs_plan_coalesced_total counter\nmlbs_plan_coalesced_total %d\n", m.Coalesced)
	fmt.Fprintf(w, "# TYPE mlbs_plan_searches_total counter\nmlbs_plan_searches_total %d\n", m.Searches)
	fmt.Fprintf(w, "# TYPE mlbs_plan_errors_total counter\nmlbs_plan_errors_total %d\n", m.Errors)
	fmt.Fprintf(w, "# TYPE mlbs_plan_cache_evictions_total counter\nmlbs_plan_cache_evictions_total %d\n", m.Evictions)
	fmt.Fprintf(w, "# TYPE mlbs_plan_cache_entries gauge\nmlbs_plan_cache_entries %d\n", m.CacheEntries)
	fmt.Fprintf(w, "# TYPE mlbs_validate_requests_total counter\nmlbs_validate_requests_total %d\n", m.Validations)
	fmt.Fprintf(w, "# TYPE mlbs_validate_trials_total counter\nmlbs_validate_trials_total %d\n", m.MonteCarloTrials)
	fmt.Fprintf(w, "# TYPE mlbs_validate_cache_hits_total counter\nmlbs_validate_cache_hits_total %d\n", m.ValidateHits)
	fmt.Fprintf(w, "# TYPE mlbs_validate_cache_misses_total counter\nmlbs_validate_cache_misses_total %d\n", m.ValidateMisses)
	fmt.Fprintf(w, "# TYPE mlbs_validate_cache_entries gauge\nmlbs_validate_cache_entries %d\n", m.ValidateEntries)
	fmt.Fprintf(w, "# TYPE mlbs_replan_requests_total counter\nmlbs_replan_requests_total %d\n", m.Replans)
	fmt.Fprintf(w, "# TYPE mlbs_replan_prefix_total counter\nmlbs_replan_prefix_total %d\n", m.ReplanPrefix)
	fmt.Fprintf(w, "# TYPE mlbs_replan_incremental_total counter\nmlbs_replan_incremental_total %d\n", m.ReplanIncremental)
	fmt.Fprintf(w, "# TYPE mlbs_replan_cold_total counter\nmlbs_replan_cold_total %d\n", m.ReplanCold)
	fmt.Fprintf(w, "# TYPE mlbs_replan_cache_hits_total counter\nmlbs_replan_cache_hits_total %d\n", m.ReplanHits)
	fmt.Fprintf(w, "# TYPE mlbs_replan_cache_misses_total counter\nmlbs_replan_cache_misses_total %d\n", m.ReplanMisses)
	fmt.Fprintf(w, "# TYPE mlbs_replan_cache_entries gauge\nmlbs_replan_cache_entries %d\n", m.ReplanEntries)
	fmt.Fprintf(w, "# TYPE mlbs_improve_total counter\nmlbs_improve_total %d\n", m.Improvements)
	fmt.Fprintf(w, "# TYPE mlbs_improve_slots_saved_total counter\nmlbs_improve_slots_saved_total %d\n", m.ImproveSlotsSaved)
	fmt.Fprintf(w, "# TYPE mlbs_improve_queued_total counter\nmlbs_improve_queued_total %d\n", m.ImproveQueued)
	fmt.Fprintf(w, "# TYPE mlbs_improve_dropped_total counter\nmlbs_improve_dropped_total %d\n", m.ImproveDropped)
	fmt.Fprintf(w, "# TYPE mlbs_improve_generation_total counter\n")
	for i, c := range m.Generations {
		fmt.Fprintf(w, "mlbs_improve_generation_total{gen=\"%d\"} %d\n", i, c)
	}
	fmt.Fprintf(w, "# TYPE mlbs_plan_latency_seconds summary\n")
	fmt.Fprintf(w, "mlbs_plan_latency_seconds{quantile=\"0.5\"} %g\n", m.P50.Seconds())
	fmt.Fprintf(w, "mlbs_plan_latency_seconds{quantile=\"0.99\"} %g\n", m.P99.Seconds())
	fmt.Fprintf(w, "mlbs_plan_hit_latency_seconds{quantile=\"0.5\"} %g\n", m.HitP50.Seconds())
	fmt.Fprintf(w, "mlbs_plan_hit_latency_seconds{quantile=\"0.99\"} %g\n", m.HitP99.Seconds())
	fmt.Fprintf(w, "mlbs_plan_miss_latency_seconds{quantile=\"0.5\"} %g\n", m.MissP50.Seconds())
	fmt.Fprintf(w, "mlbs_plan_miss_latency_seconds{quantile=\"0.99\"} %g\n", m.MissP99.Seconds())
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
