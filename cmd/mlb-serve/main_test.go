package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlbs"
)

// TestDebugTracesEndpoints drives the flight-recorder HTTP surface: a cold
// plan must leave a retained trace whose span tree carries the cache,
// search and improve phases, retrievable both from the index and by
// digest; /metrics must expose the new engine counters and the
// hit-latency histogram in standard Prometheus form.
func TestDebugTracesEndpoints(t *testing.T) {
	svc := mlbs.NewService(mlbs.ServiceConfig{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(newMux(svc, newServeObs(0, 0)))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"n":100,"seed":7,"improve_budget_ms":20}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var plan planHTTPResponse
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	if len(plan.Digest) != 64 || plan.CacheHit {
		t.Fatalf("cold plan response: %+v", plan)
	}

	// Index: the trace is in the ring (and, as the only request, on the
	// slow board) with its digest attached.
	ir, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer ir.Body.Close()
	var idx tracesIndexResponse
	if err := json.NewDecoder(ir.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	if idx.Seen != 1 || len(idx.Recent) != 1 || len(idx.Slowest) != 1 {
		t.Fatalf("index after one request: seen=%d recent=%d slowest=%d", idx.Seen, len(idx.Recent), len(idx.Slowest))
	}
	if idx.Recent[0].Digest != plan.Digest || idx.Recent[0].Endpoint != "/v1/plan" {
		t.Fatalf("retained trace: %+v", idx.Recent[0])
	}

	// By digest: the span tree carries the cache, search and improve
	// phases (the acceptance contract).
	tr, err := http.Get(ts.URL + "/debug/traces/" + plan.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace by digest: status %d", tr.StatusCode)
	}
	var snap mlbs.TraceSnapshot
	if err := json.NewDecoder(tr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	phases := map[string]bool{}
	for _, c := range snap.Root.Children {
		phases[c.Name] = true
	}
	for _, want := range []string{"cache", "search", "improve"} {
		if !phases[want] {
			t.Fatalf("trace lacks %q phase: have %v", want, phases)
		}
	}
	for _, c := range snap.Root.Children {
		if c.Name != "search" {
			continue
		}
		if exp, _ := c.Attrs["expanded"].(float64); exp <= 0 {
			t.Fatalf("search span carries no engine counters: %v", c.Attrs)
		}
	}

	// Unknown digest is a 404, not an empty 200.
	nf, err := http.Get(ts.URL + "/debug/traces/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d", nf.StatusCode)
	}

	// The expanded Prometheus surface: HELP lines, the engine totals, and
	// a conformant histogram for miss latency.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	mb, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(mb)
	for _, want := range []string{
		"# HELP mlbs_plan_requests_total",
		"# TYPE mlbs_plan_miss_latency_seconds histogram",
		"mlbs_plan_miss_latency_seconds_bucket{le=\"+Inf\"} 1",
		"mlbs_plan_miss_latency_seconds_count 1",
		"# TYPE mlbs_plan_hit_latency_seconds histogram",
		"mlbs_http_request_duration_seconds_bucket{endpoint=\"/v1/plan\",le=\"+Inf\"} 1",
		"mlbs_plan_cache_capacity",
		"mlbs_improve_queue_depth",
		"mlbs_traces_recorded_total 1",
		"mlbs_goroutines",
		"mlbs_gc_cycles_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if !strings.Contains(metrics, "mlbs_engine_states_total ") ||
		strings.Contains(metrics, "mlbs_engine_states_total 0\n") {
		t.Fatalf("engine states total missing or zero after a cold search:\n%s", metrics)
	}
}

// TestParseServeFlagsDefaults pins the satellite fix: the server must ship
// with non-zero read-header/read/idle timeouts so a single slow client
// cannot pin a connection forever.
func TestParseServeFlagsDefaults(t *testing.T) {
	cfg, err := parseServeFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.readHeaderTimeout <= 0 || cfg.readTimeout <= 0 || cfg.idleTimeout <= 0 {
		t.Fatalf("default timeouts must be positive: %+v", cfg)
	}
	if cfg.workers <= 0 {
		t.Fatalf("workers default %d", cfg.workers)
	}
	if cfg.addr != ":8080" || cfg.cache != 4096 || cfg.queue != 16 {
		t.Fatalf("defaults drifted: %+v", cfg)
	}
}

func TestParseServeFlagsPlumbing(t *testing.T) {
	cfg, err := parseServeFlags([]string{
		"-addr", "127.0.0.1:9999", "-workers", "3", "-cache", "7", "-queue", "2",
		"-read-header-timeout", "1s", "-read-timeout", "2s", "-idle-timeout", "3s",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := buildServer(cfg, http.NewServeMux())
	if srv.Addr != "127.0.0.1:9999" {
		t.Fatalf("addr %q", srv.Addr)
	}
	if srv.ReadHeaderTimeout != time.Second || srv.ReadTimeout != 2*time.Second || srv.IdleTimeout != 3*time.Second {
		t.Fatalf("timeouts not plumbed: %+v", srv)
	}
	if cfg.workers != 3 || cfg.cache != 7 || cfg.queue != 2 {
		t.Fatalf("pool flags not plumbed: %+v", cfg)
	}
	if _, err := parseServeFlags([]string{"-read-timeout", "nonsense"}); err == nil {
		t.Fatal("bad duration accepted")
	}
}

// TestValidateEndpointSmoke drives the full HTTP path: plan + Monte-Carlo
// validation with repair, then a warm repeat that must be a cache hit.
func TestValidateEndpointSmoke(t *testing.T) {
	svc := mlbs.NewService(mlbs.ServiceConfig{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(newMux(svc, newServeObs(0, 0)))
	defer ts.Close()

	body := `{"n":80,"seed":3,"loss_rate":0.1,"loss_seed":1,"trials":100,"target":0.98}`
	resp, err := http.Post(ts.URL+"/v1/validate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out validateHTTPResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Digest) != 64 || out.CacheHit {
		t.Fatalf("cold response: %+v", out)
	}
	rep, err := mlbs.DecodeReliabilityReport(out.Report)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 100 || len(rep.NodeCovered) != 80 {
		t.Fatalf("report: %+v", rep)
	}
	if out.Repair == nil {
		t.Fatal("no repair section despite target")
	}
	if out.Repair.RepairedLatency < out.Repair.BaseLatency {
		t.Fatalf("repair: %+v", out.Repair)
	}
	if _, err := mlbs.DecodeSchedule(out.Repair.Schedule); err != nil {
		t.Fatalf("repaired schedule does not decode: %v", err)
	}

	// Warm repeat: same parameters must hit the reliability cache.
	resp2, err := http.Post(ts.URL+"/v1/validate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 validateHTTPResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit {
		t.Fatal("warm validation was not a cache hit")
	}
	if string(out2.Report) != string(out.Report) {
		t.Fatal("warm report differs from cold report")
	}

	// Bad requests surface as 400s, not 500s.
	for _, bad := range []string{`{"n":80,"seed":3,"loss_rate":2}`, `{not json`} {
		r, err := http.Post(ts.URL+"/v1/validate", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %q → status %d", bad, r.StatusCode)
		}
	}

	// Metrics expose the validation counters.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	metrics, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "mlbs_validate_requests_total 2") {
		t.Fatalf("validate counters missing from /metrics:\n%s", metrics)
	}
}

// TestReplanEndpointSmoke drives the full churn HTTP path: generator-form
// base, a two-event delta, then a warm repeat that must be a cache hit.
func TestReplanEndpointSmoke(t *testing.T) {
	svc := mlbs.NewService(mlbs.ServiceConfig{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(newMux(svc, newServeObs(0, 0)))
	defer ts.Close()

	body := `{"n":80,"seed":3,"delta":{"version":1,"events":[
		{"kind":"jitter","node":5,"x":0.2,"y":-0.1},
		{"kind":"join","x":25,"y":25}]}}`
	resp, err := http.Post(ts.URL+"/v1/replan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out replanHTTPResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.BaseDigest) != 64 || len(out.Digest) != 64 || out.BaseDigest == out.Digest {
		t.Fatalf("digests: %+v", out)
	}
	if out.CacheHit || out.Coalesced {
		t.Fatalf("cold replan flagged as hit: %+v", out)
	}
	if out.Strategy == "" || out.BaseAdvances == 0 {
		t.Fatalf("classification missing: %+v", out)
	}
	res, err := mlbs.DecodeResult(out.Result)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil || len(res.Schedule.Advances) == 0 {
		t.Fatalf("repaired result has no schedule: %+v", res)
	}

	// Warm repeat: same (base, delta) must hit the replan cache.
	resp2, err := http.Post(ts.URL+"/v1/replan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 replanHTTPResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit {
		t.Fatal("warm replan was not a cache hit")
	}
	if string(out2.Result) != string(out.Result) {
		t.Fatal("warm replan result differs from cold")
	}

	// A Plan request for the mutated digest's topology is served from the
	// plan cache — verify through the metrics endpoint that replan counters
	// are exposed at all.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mlbs_replan_requests_total 2", "mlbs_replan_cache_hits_total 1"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, sb.String())
		}
	}

	// Bad requests surface as 400s with the bad_request envelope code.
	for _, bad := range []string{
		`{"n":80,"seed":3}`, // no delta
		`{"n":80,"seed":3,"delta":{"version":1,"events":[{"kind":"warp"}]}}`,
		`{not json`,
	} {
		r, err := http.Post(ts.URL+"/v1/replan", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		decodeErr := json.NewDecoder(r.Body).Decode(&eb)
		r.Body.Close()
		if decodeErr != nil {
			t.Fatalf("bad request %q: error body does not decode: %v", bad, decodeErr)
		}
		if r.StatusCode != http.StatusBadRequest || eb.Error.Code != "bad_request" {
			t.Fatalf("bad request %q got status %d code %q", bad, r.StatusCode, eb.Error.Code)
		}
	}
}

// TestAggregateEndpointSmoke drives the convergecast HTTP path on a
// duty-cycled multi-channel deployment: cold schedule, warm cache hit,
// decodable nested result, counters in /metrics, and the error envelope
// on a malformed body.
func TestAggregateEndpointSmoke(t *testing.T) {
	svc := mlbs.NewService(mlbs.ServiceConfig{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(newMux(svc, newServeObs(0, 0)))
	defer ts.Close()

	body := `{"n":80,"seed":3,"r":10,"channels":4}`
	resp, err := http.Post(ts.URL+"/v1/aggregate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out aggregateHTTPResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Digest) != 64 || out.CacheHit || out.Scheduler != "agg-spt" {
		t.Fatalf("cold response: %+v", out)
	}
	if out.LatencySlots <= 0 {
		t.Fatalf("latency_slots %d", out.LatencySlots)
	}
	res, err := mlbs.DecodeAggResult(out.Result)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencySlots != out.LatencySlots || len(res.Schedule.Advances) == 0 {
		t.Fatalf("nested result disagrees with top level: %+v vs %+v", res, out)
	}

	// Warm repeat: same parameters must hit the convergecast cache.
	resp2, err := http.Post(ts.URL+"/v1/aggregate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 aggregateHTTPResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit {
		t.Fatal("warm aggregation was not a cache hit")
	}
	if string(out2.Result) != string(out.Result) {
		t.Fatal("warm result differs from cold")
	}

	// The bounded tree is a distinct cache entry, still cold.
	resp3, err := http.Post(ts.URL+"/v1/aggregate", "application/json",
		strings.NewReader(`{"n":80,"seed":3,"r":10,"channels":4,"scheduler":"agg-bounded"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var out3 aggregateHTTPResponse
	if err := json.NewDecoder(resp3.Body).Decode(&out3); err != nil {
		t.Fatal(err)
	}
	if out3.CacheHit || out3.Scheduler != "agg-bounded" {
		t.Fatalf("bounded response: %+v", out3)
	}

	// Metrics expose the aggregation counters and the endpoint histogram.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	mb, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mlbs_aggregate_requests_total 3",
		"mlbs_aggregate_searches_total 2",
		"mlbs_aggregate_cache_hits_total 1",
		"mlbs_aggregate_cache_entries 2",
		`mlbs_http_request_duration_seconds_bucket{endpoint="/v1/aggregate",le="+Inf"} 3`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mb)
		}
	}

	// Bad requests carry the envelope with a stable code.
	for _, bad := range []string{`{not json`, `{"n":0}`, `{"n":80,"seed":3,"scheduler":"gopt"}`} {
		r, err := http.Post(ts.URL+"/v1/aggregate", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		decodeErr := json.NewDecoder(r.Body).Decode(&eb)
		r.Body.Close()
		if decodeErr != nil {
			t.Fatalf("bad request %q: error body does not decode: %v", bad, decodeErr)
		}
		if r.StatusCode != http.StatusBadRequest || eb.Error.Code != "bad_request" {
			t.Fatalf("bad request %q got status %d code %q", bad, r.StatusCode, eb.Error.Code)
		}
	}
}

// TestErrorEnvelopeTypedCodes pins the typed error classification: a churn
// delta that kills the source is a 422 with its own code, and a closed
// service answers 503 unavailable — regardless of the status the handler
// suggested.
func TestErrorEnvelopeTypedCodes(t *testing.T) {
	svc := mlbs.NewService(mlbs.ServiceConfig{Workers: 1})
	ts := httptest.NewServer(newMux(svc, newServeObs(0, 0)))
	defer ts.Close()

	dep, err := mlbs.PaperDeployment(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"n":40,"seed":1,"delta":{"version":1,"events":[{"kind":"fail","node":%d}]}}`, dep.Source)
	r, err := http.Post(ts.URL+"/v1/replan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	decodeErr := json.NewDecoder(r.Body).Decode(&eb)
	r.Body.Close()
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if r.StatusCode != http.StatusUnprocessableEntity || eb.Error.Code != "source_failed" {
		t.Fatalf("source-fail delta got status %d code %q", r.StatusCode, eb.Error.Code)
	}

	svc.Close()
	r2, err := http.Post(ts.URL+"/v1/aggregate", "application/json", strings.NewReader(`{"n":40,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var eb2 errorBody
	decodeErr = json.NewDecoder(r2.Body).Decode(&eb2)
	r2.Body.Close()
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if r2.StatusCode != http.StatusServiceUnavailable || eb2.Error.Code != "unavailable" {
		t.Fatalf("closed service got status %d code %q", r2.StatusCode, eb2.Error.Code)
	}
}
