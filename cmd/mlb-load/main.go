// Command mlb-load drives the plan service and reports plans/sec and
// latency percentiles for the cold path (every request runs the search)
// versus the warm path (every request is a cache hit) — the number that
// justifies the serving layer's existence.
//
// Usage:
//
//	mlb-load [-n 300] [-seed 1] [-r 0] [-sched gopt] [-requests 64]
//	         [-conc 8] [-budget 0,1ms,10ms] [-addr http://host:8080]
//	         [-out BENCH_load.json] [-trace]
//
// -trace prints the slowest retained request trace after the run as an
// indented span tree with per-phase durations and engine counters: against
// a server it is fetched from GET /debug/traces, in-process a local flight
// recorder captures every request.
//
// Without -addr the service runs in-process (no HTTP in the way); with
// -addr requests go over the wire to a running mlb-serve. The cold phase
// sends no_cache requests for one fixed instance, so every request pays
// the full branch-and-bound; the warm phase primes the cache once and then
// measures pure hits.
//
// -budget sweeps the anytime-improvement budget: each listed duration gets
// its own cold/warm pair (in-process runs use a fresh service per budget so
// phases don't share cache state). The warm numbers at every budget should
// match budget 0 within noise — a warm hit never pays for improvement, it
// only enqueues a background upgrade — which is exactly what this report
// is for proving.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"slices"
	"strings"
	"sync"
	"time"

	"mlbs"
)

type phaseStats struct {
	Requests    int     `json:"requests"`
	PlansPerSec float64 `json:"plans_per_sec"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
}

// budgetStats is one improvement budget's cold/warm pair.
type budgetStats struct {
	Budget  string     `json:"budget"`
	Cold    phaseStats `json:"cold"`
	Warm    phaseStats `json:"warm"`
	Speedup float64    `json:"warm_over_cold_speedup"`
}

type loadReport struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	Timestamp string `json:"timestamp"`
	Target    string `json:"target"` // "in-process" or the HTTP address
	Nodes     int    `json:"nodes"`
	Seed      uint64 `json:"seed"`
	DutyRate  int    `json:"duty_rate"`
	Scheduler string `json:"scheduler"`
	Conc      int    `json:"concurrency"`
	// Cold/Warm mirror the first budget (the schema every consumer already
	// reads); Budgets carries the full -budget sweep.
	Cold    phaseStats    `json:"cold"`
	Warm    phaseStats    `json:"warm"`
	Speedup float64       `json:"warm_over_cold_speedup"`
	Budgets []budgetStats `json:"budgets,omitempty"`
}

func main() {
	var (
		n       = flag.Int("n", 300, "deployment size (paper topology)")
		seed    = flag.Uint64("seed", 1, "deployment seed")
		r       = flag.Int("r", 0, "duty-cycle rate; 0 or 1 = synchronous")
		sched   = flag.String("sched", "gopt", "scheduler: gopt|opt|emodel|energy|baseline")
		reqs    = flag.Int("requests", 64, "requests per phase")
		conc    = flag.Int("conc", 8, "concurrent clients")
		addr    = flag.String("addr", "", "target a running mlb-serve (default: in-process)")
		budgets = flag.String("budget", "0", "comma-separated improvement budgets to sweep (e.g. 0,1ms,10ms)")
		out     = flag.String("out", "", "also write the report JSON here")
		trace   = flag.Bool("trace", false, "after the run, pretty-print the slowest retained request trace")
	)
	flag.Parse()

	// In-process runs have no mlb-serve flight recorder to ask, so -trace
	// keeps a local one and threads a trace through every request.
	var rec *mlbs.TraceRecorder
	if *trace && *addr == "" {
		rec = mlbs.NewTraceRecorder(0, 0)
	}

	budgetList, err := parseBudgets(*budgets)
	if err != nil {
		fatal(err)
	}

	target := "in-process"
	if *addr != "" {
		target = *addr
	}
	// makeSend builds one budget's request function, plus a cleanup. Each
	// in-process budget gets a fresh service so its cold/warm phases are
	// not primed (or pre-improved) by the previous budget's traffic.
	makeSend := func(budget time.Duration) (func(noCache bool) error, func()) {
		if *addr == "" {
			svc := mlbs.NewService(mlbs.ServiceConfig{Workers: runtime.GOMAXPROCS(0), ImproveWorkers: 2})
			return func(noCache bool) error {
				ctx := context.Background()
				var tr *mlbs.Trace
				if rec != nil {
					tr = mlbs.NewTrace("/v1/plan")
					ctx = mlbs.TraceContext(ctx, tr)
				}
				resp, err := svc.Plan(ctx, mlbs.PlanRequest{
					Generator:     &mlbs.PlanGenerator{N: *n, Seed: *seed, DutyRate: *r},
					Scheduler:     *sched,
					NoCache:       noCache,
					ImproveBudget: budget,
				})
				if tr != nil {
					digest, msg := "", ""
					if err != nil {
						msg = err.Error()
					} else {
						digest = resp.Digest
					}
					rec.Record(tr.Finish(digest, msg))
				}
				return err
			}, svc.Close
		}
		client := &http.Client{Timeout: 5 * time.Minute}
		return func(noCache bool) error {
			body, _ := json.Marshal(map[string]any{
				"n": *n, "seed": *seed, "r": *r,
				"scheduler": *sched, "no_cache": noCache,
				"improve_budget_ms": budget.Milliseconds(),
			})
			resp, err := client.Post(*addr+"/v1/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			return nil
		}, func() {}
	}

	rep := loadReport{
		Tool:      "mlb-load",
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Target:    target,
		Nodes:     *n,
		Seed:      *seed,
		DutyRate:  *r,
		Scheduler: *sched,
		Conc:      *conc,
	}

	fmt.Printf("target=%s n=%d r=%d sched=%s conc=%d\n", target, *n, *r, *sched, *conc)
	for _, budget := range budgetList {
		bs, err := runBudget(budget, *reqs, *conc, makeSend)
		if err != nil {
			fatal(err)
		}
		rep.Budgets = append(rep.Budgets, bs)
		fmt.Printf("budget=%-6s cold: %10.1f plans/sec  p50=%-12v p99=%v\n",
			bs.Budget, bs.Cold.PlansPerSec, time.Duration(bs.Cold.P50Ns), time.Duration(bs.Cold.P99Ns))
		fmt.Printf("budget=%-6s warm: %10.1f plans/sec  p50=%-12v p99=%v  (%.1f× over cold)\n",
			bs.Budget, bs.Warm.PlansPerSec, time.Duration(bs.Warm.P50Ns), time.Duration(bs.Warm.P99Ns), bs.Speedup)
	}
	rep.Cold, rep.Warm, rep.Speedup = rep.Budgets[0].Cold, rep.Budgets[0].Warm, rep.Budgets[0].Speedup

	if *trace {
		if err := printSlowestTrace(*addr, rec); err != nil {
			fatal(err)
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// printSlowestTrace renders the slowest retained request trace: from the
// local recorder for in-process runs, from the server's flight recorder
// (GET /debug/traces) otherwise.
func printSlowestTrace(addr string, rec *mlbs.TraceRecorder) error {
	var slowest *mlbs.TraceSnapshot
	if addr == "" {
		if _, slow := rec.Snapshot(); len(slow) > 0 {
			slowest = slow[0]
		}
	} else {
		resp, err := http.Get(addr + "/debug/traces")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /debug/traces: status %d", resp.StatusCode)
		}
		var idx struct {
			Slowest []*mlbs.TraceSnapshot `json:"slowest"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
			return err
		}
		if len(idx.Slowest) > 0 {
			slowest = idx.Slowest[0]
		}
	}
	if slowest == nil {
		fmt.Println("no request trace retained")
		return nil
	}
	fmt.Printf("\nslowest trace:\n%s", mlbs.FormatTrace(slowest))
	return nil
}

// parseBudgets splits the -budget list; "0" stays a plain zero so the
// default run is exactly the pre-improver load shape.
func parseBudgets(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "0" {
			out = append(out, 0)
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, fmt.Errorf("bad -budget %q: %w", part, err)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		out = []time.Duration{0}
	}
	return out, nil
}

// runBudget measures one budget's cold and warm phases.
func runBudget(budget time.Duration, reqs, conc int, makeSend func(time.Duration) (func(bool) error, func())) (budgetStats, error) {
	send, cleanup := makeSend(budget)
	defer cleanup()
	bs := budgetStats{Budget: budget.String()}
	// One throwaway request materializes the deployment so the cold phase
	// measures scheduling, not topology sampling.
	if err := send(true); err != nil {
		return bs, err
	}
	var err error
	bs.Cold, err = runPhase(reqs, conc, func() error { return send(true) })
	if err != nil {
		return bs, err
	}
	// Prime, then measure pure hits.
	if err := send(false); err != nil {
		return bs, err
	}
	bs.Warm, err = runPhase(reqs, conc, func() error { return send(false) })
	if err != nil {
		return bs, err
	}
	if bs.Cold.PlansPerSec > 0 {
		bs.Speedup = bs.Warm.PlansPerSec / bs.Cold.PlansPerSec
	}
	return bs, nil
}

// runPhase fires total requests from conc workers and aggregates wall
// throughput plus per-request latency percentiles.
func runPhase(total, conc int, send func() error) (phaseStats, error) {
	if conc < 1 {
		conc = 1
	}
	lat := make([]time.Duration, total)
	errs := make([]error, conc)
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if errs[w] != nil {
					continue // drain so the feeder never blocks
				}
				t0 := time.Now()
				if err := send(); err != nil {
					errs[w] = err
					continue
				}
				lat[i] = time.Since(t0)
			}
		}(w)
	}
	for i := 0; i < total; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return phaseStats{}, err
		}
	}
	slices.Sort(lat)
	return phaseStats{
		Requests:    total,
		PlansPerSec: float64(total) / elapsed.Seconds(),
		P50Ns:       lat[total/2].Nanoseconds(),
		P99Ns:       lat[total*99/100].Nanoseconds(),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlb-load:", err)
	os.Exit(1)
}
