// Command mlb-load drives the plan service and reports plans/sec and
// latency percentiles for the cold path (every request runs the search)
// versus the warm path (every request is a cache hit) — the number that
// justifies the serving layer's existence.
//
// Usage:
//
//	mlb-load [-n 300] [-seed 1] [-r 0] [-sched gopt] [-requests 64]
//	         [-conc 8] [-addr http://host:8080] [-out BENCH_load.json]
//
// Without -addr the service runs in-process (no HTTP in the way); with
// -addr requests go over the wire to a running mlb-serve. The cold phase
// sends no_cache requests for one fixed instance, so every request pays
// the full branch-and-bound; the warm phase primes the cache once and then
// measures pure hits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"slices"
	"sync"
	"time"

	"mlbs"
)

type phaseStats struct {
	Requests    int     `json:"requests"`
	PlansPerSec float64 `json:"plans_per_sec"`
	P50Ns       int64   `json:"p50_ns"`
	P99Ns       int64   `json:"p99_ns"`
}

type loadReport struct {
	Tool      string     `json:"tool"`
	GoVersion string     `json:"go_version"`
	Timestamp string     `json:"timestamp"`
	Target    string     `json:"target"` // "in-process" or the HTTP address
	Nodes     int        `json:"nodes"`
	Seed      uint64     `json:"seed"`
	DutyRate  int        `json:"duty_rate"`
	Scheduler string     `json:"scheduler"`
	Conc      int        `json:"concurrency"`
	Cold      phaseStats `json:"cold"`
	Warm      phaseStats `json:"warm"`
	Speedup   float64    `json:"warm_over_cold_speedup"`
}

func main() {
	var (
		n     = flag.Int("n", 300, "deployment size (paper topology)")
		seed  = flag.Uint64("seed", 1, "deployment seed")
		r     = flag.Int("r", 0, "duty-cycle rate; 0 or 1 = synchronous")
		sched = flag.String("sched", "gopt", "scheduler: gopt|opt|emodel|energy|baseline")
		reqs  = flag.Int("requests", 64, "requests per phase")
		conc  = flag.Int("conc", 8, "concurrent clients")
		addr  = flag.String("addr", "", "target a running mlb-serve (default: in-process)")
		out   = flag.String("out", "", "also write the report JSON here")
	)
	flag.Parse()

	var send func(noCache bool) error
	target := "in-process"
	if *addr == "" {
		svc := mlbs.NewService(mlbs.ServiceConfig{Workers: runtime.GOMAXPROCS(0)})
		defer svc.Close()
		send = func(noCache bool) error {
			_, err := svc.Plan(context.Background(), mlbs.PlanRequest{
				Generator: &mlbs.PlanGenerator{N: *n, Seed: *seed, DutyRate: *r},
				Scheduler: *sched,
				NoCache:   noCache,
			})
			return err
		}
	} else {
		target = *addr
		client := &http.Client{Timeout: 5 * time.Minute}
		send = func(noCache bool) error {
			body, _ := json.Marshal(map[string]any{
				"n": *n, "seed": *seed, "r": *r,
				"scheduler": *sched, "no_cache": noCache,
			})
			resp, err := client.Post(*addr+"/v1/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			return nil
		}
	}

	rep := loadReport{
		Tool:      "mlb-load",
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Target:    target,
		Nodes:     *n,
		Seed:      *seed,
		DutyRate:  *r,
		Scheduler: *sched,
		Conc:      *conc,
	}

	// One throwaway request materializes the deployment so the cold phase
	// measures scheduling, not topology sampling.
	if err := send(true); err != nil {
		fatal(err)
	}

	var err error
	rep.Cold, err = runPhase(*reqs, *conc, func() error { return send(true) })
	if err != nil {
		fatal(err)
	}
	// Prime, then measure pure hits.
	if err := send(false); err != nil {
		fatal(err)
	}
	rep.Warm, err = runPhase(*reqs, *conc, func() error { return send(false) })
	if err != nil {
		fatal(err)
	}
	if rep.Cold.PlansPerSec > 0 {
		rep.Speedup = rep.Warm.PlansPerSec / rep.Cold.PlansPerSec
	}

	fmt.Printf("target=%s n=%d r=%d sched=%s conc=%d\n", target, *n, *r, *sched, *conc)
	fmt.Printf("cold: %10.1f plans/sec  p50=%-12v p99=%v\n",
		rep.Cold.PlansPerSec, time.Duration(rep.Cold.P50Ns), time.Duration(rep.Cold.P99Ns))
	fmt.Printf("warm: %10.1f plans/sec  p50=%-12v p99=%v\n",
		rep.Warm.PlansPerSec, time.Duration(rep.Warm.P50Ns), time.Duration(rep.Warm.P99Ns))
	fmt.Printf("warm/cold speedup: %.1f×\n", rep.Speedup)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// runPhase fires total requests from conc workers and aggregates wall
// throughput plus per-request latency percentiles.
func runPhase(total, conc int, send func() error) (phaseStats, error) {
	if conc < 1 {
		conc = 1
	}
	lat := make([]time.Duration, total)
	errs := make([]error, conc)
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if errs[w] != nil {
					continue // drain so the feeder never blocks
				}
				t0 := time.Now()
				if err := send(); err != nil {
					errs[w] = err
					continue
				}
				lat[i] = time.Since(t0)
			}
		}(w)
	}
	for i := 0; i < total; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return phaseStats{}, err
		}
	}
	slices.Sort(lat)
	return phaseStats{
		Requests:    total,
		PlansPerSec: float64(total) / elapsed.Seconds(),
		P50Ns:       lat[total/2].Nanoseconds(),
		P99Ns:       lat[total*99/100].Nanoseconds(),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlb-load:", err)
	os.Exit(1)
}
