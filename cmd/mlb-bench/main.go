// Command mlb-bench measures the schedulers on the paper topology and
// emits one machine-readable JSON file per run, so the repository's
// performance trajectory (ns/op, allocs/op, latency) is tracked from a
// stable tool instead of hand-copied `go test -bench` output.
//
// Usage:
//
//	mlb-bench [-n 300] [-seed 1] [-r 10] [-iters 3] [-out BENCH_schedulers.json]
//
// The output is a JSON object with run metadata and one record per
// (scheduler, system) pair. Commit the numbers, not the file: BENCH_*.json
// is gitignored by convention and meant for dashboards/CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mlbs"
)

type record struct {
	Name        string  `json:"name"`
	System      string  `json:"system"`
	Scheduler   string  `json:"scheduler"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	LatencyPA   int     `json:"latency_slots"`
	Exact       bool    `json:"exact"`
}

type report struct {
	Tool      string   `json:"tool"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Timestamp string   `json:"timestamp"`
	Nodes     int      `json:"nodes"`
	Seed      uint64   `json:"seed"`
	DutyRate  int      `json:"duty_rate"`
	Records   []record `json:"records"`
}

func main() {
	var (
		n     = flag.Int("n", 300, "deployment size (paper topology)")
		seed  = flag.Uint64("seed", 1, "deployment seed")
		r     = flag.Int("r", 10, "duty-cycle rate for the async system")
		iters = flag.Int("iters", 3, "fixed benchmark iterations per case")
		out   = flag.String("out", "BENCH_schedulers.json", "output JSON path")
	)
	flag.Parse()

	dep, err := mlbs.PaperDeployment(*n, *seed)
	if err != nil {
		fatal(err)
	}
	syncIn := mlbs.SyncInstance(dep.G, dep.Source)
	dutyIn := mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(*n, *r, 9), 0)

	type benchCase struct {
		name   string
		system string
		in     mlbs.Instance
		sched  mlbs.Scheduler
	}
	cases := []benchCase{
		{"sync/e-model", "sync", syncIn, mlbs.EModel()},
		{"sync/g-opt", "sync", syncIn, mlbs.GOPT()},
		{"sync/opt", "sync", syncIn, mlbs.OPT()},
		{"sync/26-approx", "sync", syncIn, mlbs.Baseline26()},
		{fmt.Sprintf("duty-r%d/e-model", *r), "duty", dutyIn, mlbs.EModel()},
		{fmt.Sprintf("duty-r%d/g-opt", *r), "duty", dutyIn, mlbs.GOPT()},
		{fmt.Sprintf("duty-r%d/17-approx", *r), "duty", dutyIn, mlbs.Baseline17()},
	}

	rep := report{
		Tool:      "mlb-bench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Nodes:     *n,
		Seed:      *seed,
		DutyRate:  *r,
	}
	for _, c := range cases {
		// Warm-up run; also supplies the scientific outputs (latency, Exact).
		res, err := c.sched.Schedule(c.in)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", c.name, err))
		}
		nsOp, allocsOp, bytesOp, err := measure(*iters, func() error {
			_, err := c.sched.Schedule(c.in)
			return err
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", c.name, err))
		}
		rep.Records = append(rep.Records, record{
			Name:        c.name,
			System:      c.system,
			Scheduler:   res.Scheduler,
			Iterations:  *iters,
			NsPerOp:     nsOp,
			AllocsPerOp: allocsOp,
			BytesPerOp:  bytesOp,
			LatencyPA:   res.Schedule.Latency(),
			Exact:       res.Exact,
		})
		fmt.Printf("%-20s %12d ns/op %8d allocs/op %6d latency\n",
			c.name, nsOp, allocsOp, res.Schedule.Latency())
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d records)\n", *out, len(rep.Records))
}

// measure runs fn a fixed number of times and reports per-op wall time and
// allocation counts (via runtime.MemStats deltas). Fixed iterations keep
// the tool's runtime predictable for CI, unlike testing.Benchmark's
// auto-scaling.
func measure(iters int, fn func() error) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	k := int64(iters)
	return elapsed.Nanoseconds() / k,
		int64(m1.Mallocs-m0.Mallocs) / k,
		int64(m1.TotalAlloc-m0.TotalAlloc) / k,
		nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlb-bench:", err)
	os.Exit(1)
}
