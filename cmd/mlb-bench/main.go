// Command mlb-bench measures the schedulers on the paper topology and
// emits one machine-readable JSON file per run, so the repository's
// performance trajectory (ns/op, allocs/op, latency) is tracked from a
// stable tool instead of hand-copied `go test -bench` output.
//
// Usage:
//
//	mlb-bench [-n 300] [-seed 1] [-r 10] [-iters 3] [-svcreqs 32]
//	          [-out BENCH_schedulers.json] [-obsout BENCH_obs.json]
//
// The output is a JSON object with run metadata, one record per
// (scheduler, system) pair, and a service section measuring the plan
// service's cold-cache vs warm-cache throughput on the n=150 and n=300
// paper topologies. Commit the numbers, not the file: BENCH_*.json is
// gitignored by convention and meant for dashboards/CI artifacts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"slices"
	"time"

	"mlbs"
)

type record struct {
	Name        string `json:"name"`
	System      string `json:"system"`
	Scheduler   string `json:"scheduler"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	LatencyPA   int    `json:"latency_slots"`
	Exact       bool   `json:"exact"`
}

// serviceRecord captures the serving layer's headline numbers for one
// topology size: the cold path (every request runs the search, no_cache)
// against the warm path (every request is a content-addressed cache hit).
type serviceRecord struct {
	Name            string  `json:"name"`
	Nodes           int     `json:"nodes"`
	Requests        int     `json:"requests"`
	ColdPlansPerSec float64 `json:"cold_plans_per_sec"`
	ColdP99Ns       int64   `json:"cold_p99_ns"`
	WarmPlansPerSec float64 `json:"warm_plans_per_sec"`
	WarmP99Ns       int64   `json:"warm_p99_ns"`
	Speedup         float64 `json:"warm_over_cold_speedup"`
}

// reliabilityRecord captures the Monte-Carlo engine's throughput on one
// topology size: batched lossy replays per second and the per-replay
// allocation count (which must stay ~0 — the engine's reuse discipline).
type reliabilityRecord struct {
	Name            string  `json:"name"`
	Nodes           int     `json:"nodes"`
	Trials          int     `json:"trials"`
	LossRate        float64 `json:"loss_rate"`
	ReplaysPerSec   float64 `json:"replays_per_sec"`
	NsPerReplay     int64   `json:"ns_per_replay"`
	AllocsPerReplay float64 `json:"allocs_per_replay"`
	MeanDelivery    float64 `json:"mean_delivery_ratio"`
}

// channelRecord captures one cell of the latency-vs-K curve: the G-OPT
// schedule on the paper topology with K orthogonal channels.
type channelRecord struct {
	Name         string  `json:"name"`
	Nodes        int     `json:"nodes"`
	System       string  `json:"system"`
	Channels     int     `json:"channels"`
	LatencySlots int     `json:"latency_slots"`
	NsPerOp      int64   `json:"ns_per_op"`
	Exact        bool    `json:"exact"`
	LatencyVsK1  float64 `json:"latency_over_k1"`
}

// aggRecord captures one cell of the convergecast latency-vs-K curve: the
// SPT aggregation schedule on the paper topology with K orthogonal
// channels, routing every node's reading to the sink. Latencies are
// deterministic functions of (n, seed, r, K) — CI gates on them exactly.
type aggRecord struct {
	Name         string  `json:"name"`
	Nodes        int     `json:"nodes"`
	System       string  `json:"system"`
	Channels     int     `json:"channels"`
	LatencySlots int     `json:"latency_slots"`
	NsPerOp      int64   `json:"ns_per_op"`
	LatencyVsK1  float64 `json:"latency_over_k1"`
}

// modelRecord captures one cell of the latency-vs-interference-model
// curve: the G-OPT schedule on the paper topology under the protocol
// (graph) model against SINR variants of increasing strictness. Every
// schedule is validated and replayed under its own model before its
// numbers are reported.
type modelRecord struct {
	Name         string  `json:"name"`
	Nodes        int     `json:"nodes"`
	Model        string  `json:"model"`
	Alpha        float64 `json:"alpha,omitempty"`
	Beta         float64 `json:"beta,omitempty"`
	LatencySlots int     `json:"latency_slots"`
	NsPerOp      int64   `json:"ns_per_op"`
	Exact        bool    `json:"exact"`
	// LatencyVsGraph is this model's latency over the protocol model's on
	// the same deployment — the price of physical-interference awareness.
	LatencyVsGraph float64 `json:"latency_over_graph"`
}

// improveRecord captures one anytime-improver case: the approximation's
// schedule tightened under a deterministic move budget. Slot counts are
// exact functions of (n, seed, r, max_moves) — CI gates on them.
type improveRecord struct {
	Name         string `json:"name"`
	Nodes        int    `json:"nodes"`
	System       string `json:"system"`
	MaxMoves     int    `json:"max_moves"`
	InputSlots   int    `json:"input_latency_slots"`
	LatencySlots int    `json:"latency_slots"`
	SlotsSaved   int    `json:"slots_saved"`
	Moves        int    `json:"moves"`
	Searches     int    `json:"searches"`
	Exact        bool   `json:"exact"`
	NsPerOp      int64  `json:"ns_per_op"`
}

// obsRecord captures the tracing tax: cold plans measured with a request
// trace attached versus detached (fresh service each), plus the span count
// of one traced cold plan — deterministic for a fixed request shape, so CI
// gates on it exactly while the wall-clock overhead gets slack.
type obsRecord struct {
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Requests    int     `json:"requests"`
	DisabledNs  int64   `json:"disabled_ns"`
	EnabledNs   int64   `json:"enabled_ns"`
	OverheadPct float64 `json:"overhead_pct"`
	Spans       int     `json:"spans"`
}

type report struct {
	Tool        string              `json:"tool"`
	GoVersion   string              `json:"go_version"`
	GOOS        string              `json:"goos"`
	GOARCH      string              `json:"goarch"`
	Timestamp   string              `json:"timestamp"`
	Nodes       int                 `json:"nodes"`
	Seed        uint64              `json:"seed"`
	DutyRate    int                 `json:"duty_rate"`
	Records     []record            `json:"records"`
	Service     []serviceRecord     `json:"service"`
	Reliability []reliabilityRecord `json:"reliability"`
	Channels    []channelRecord     `json:"channels"`
	Agg         []aggRecord         `json:"agg"`
	Models      []modelRecord       `json:"models"`
	Improve     []improveRecord     `json:"improve"`
	Obs         []obsRecord         `json:"obs"`
}

func main() {
	var (
		n       = flag.Int("n", 300, "deployment size (paper topology)")
		seed    = flag.Uint64("seed", 1, "deployment seed")
		r       = flag.Int("r", 10, "duty-cycle rate for the async system")
		iters   = flag.Int("iters", 3, "fixed benchmark iterations per case")
		svcReqs = flag.Int("svcreqs", 32, "requests per service throughput phase")
		relTr   = flag.Int("reltrials", 500, "Monte-Carlo trials per reliability case")
		out     = flag.String("out", "BENCH_schedulers.json", "output JSON path")
		chOut   = flag.String("chout", "BENCH_channels.json", "latency-vs-K curve JSON path (empty disables)")
		aggOut  = flag.String("aggout", "BENCH_agg.json", "convergecast latency-vs-K JSON path (empty disables)")
		mdlOut  = flag.String("modelout", "BENCH_models.json", "latency-vs-interference-model JSON path (empty disables)")
		impOut  = flag.String("impout", "BENCH_improve.json", "anytime-improver section JSON path (empty disables)")
		obsOut  = flag.String("obsout", "BENCH_obs.json", "tracing-overhead section JSON path (empty disables)")
	)
	flag.Parse()

	dep, err := mlbs.PaperDeployment(*n, *seed)
	if err != nil {
		fatal(err)
	}
	syncIn := mlbs.SyncInstance(dep.G, dep.Source)
	dutyIn := mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(*n, *r, 9), 0)

	type benchCase struct {
		name   string
		system string
		in     mlbs.Instance
		sched  mlbs.Scheduler
	}
	cases := []benchCase{
		{"sync/e-model", "sync", syncIn, mlbs.EModel()},
		{"sync/g-opt", "sync", syncIn, mlbs.GOPT()},
		{"sync/opt", "sync", syncIn, mlbs.OPT()},
		{"sync/26-approx", "sync", syncIn, mlbs.Baseline26()},
		{fmt.Sprintf("duty-r%d/e-model", *r), "duty", dutyIn, mlbs.EModel()},
		{fmt.Sprintf("duty-r%d/g-opt", *r), "duty", dutyIn, mlbs.GOPT()},
		{fmt.Sprintf("duty-r%d/17-approx", *r), "duty", dutyIn, mlbs.Baseline17()},
	}

	rep := report{
		Tool:      "mlb-bench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Nodes:     *n,
		Seed:      *seed,
		DutyRate:  *r,
	}
	for _, c := range cases {
		// Warm-up run; also supplies the scientific outputs (latency, Exact).
		res, err := c.sched.Schedule(c.in)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", c.name, err))
		}
		nsOp, allocsOp, bytesOp, err := measure(*iters, func() error {
			_, err := c.sched.Schedule(c.in)
			return err
		})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", c.name, err))
		}
		rep.Records = append(rep.Records, record{
			Name:        c.name,
			System:      c.system,
			Scheduler:   res.Scheduler,
			Iterations:  *iters,
			NsPerOp:     nsOp,
			AllocsPerOp: allocsOp,
			BytesPerOp:  bytesOp,
			LatencyPA:   res.Schedule.Latency(),
			Exact:       res.Exact,
		})
		fmt.Printf("%-20s %12d ns/op %8d allocs/op %6d latency\n",
			c.name, nsOp, allocsOp, res.Schedule.Latency())
	}

	for _, sn := range []int{150, 300} {
		sr, err := benchService(sn, *seed, *svcReqs)
		if err != nil {
			fatal(fmt.Errorf("service n=%d: %w", sn, err))
		}
		rep.Service = append(rep.Service, sr)
		fmt.Printf("%-20s %12.1f cold plans/s %10.1f warm plans/s %6.1fx\n",
			sr.Name, sr.ColdPlansPerSec, sr.WarmPlansPerSec, sr.Speedup)
	}

	for _, rn := range []int{150, 300} {
		rr, err := benchReliability(rn, *seed, *relTr)
		if err != nil {
			fatal(fmt.Errorf("reliability n=%d: %w", rn, err))
		}
		rep.Reliability = append(rep.Reliability, rr)
		fmt.Printf("%-20s %12.0f replays/s %8.2f allocs/replay %8.4f delivery\n",
			rr.Name, rr.ReplaysPerSec, rr.AllocsPerReplay, rr.MeanDelivery)
	}

	chRecs, err := benchChannels(dep, *n, *seed, *r)
	if err != nil {
		fatal(err)
	}
	rep.Channels = chRecs
	for _, cr := range chRecs {
		fmt.Printf("%-28s %6d latency %8.3f vs K=1 %12d ns/op\n",
			cr.Name, cr.LatencySlots, cr.LatencyVsK1, cr.NsPerOp)
	}
	if *chOut != "" {
		chData, err := json.MarshalIndent(struct {
			Tool      string          `json:"tool"`
			GoVersion string          `json:"go_version"`
			Timestamp string          `json:"timestamp"`
			Nodes     int             `json:"nodes"`
			Seed      uint64          `json:"seed"`
			Channels  []channelRecord `json:"channels"`
		}{"mlb-bench", runtime.Version(), rep.Timestamp, *n, *seed, chRecs}, "", "  ")
		if err != nil {
			fatal(err)
		}
		chData = append(chData, '\n')
		if err := os.WriteFile(*chOut, chData, 0o644); err != nil {
			fatal(err)
		}
	}

	aggRecs, err := benchAggregate(dep, *n, *seed, *r)
	if err != nil {
		fatal(err)
	}
	rep.Agg = aggRecs
	for _, ar := range aggRecs {
		fmt.Printf("%-28s %6d latency %8.3f vs K=1 %12d ns/op\n",
			ar.Name, ar.LatencySlots, ar.LatencyVsK1, ar.NsPerOp)
	}
	if *aggOut != "" {
		aggData, err := json.MarshalIndent(struct {
			Tool      string      `json:"tool"`
			GoVersion string      `json:"go_version"`
			Timestamp string      `json:"timestamp"`
			Nodes     int         `json:"nodes"`
			Seed      uint64      `json:"seed"`
			Agg       []aggRecord `json:"agg"`
		}{"mlb-bench", runtime.Version(), rep.Timestamp, *n, *seed, aggRecs}, "", "  ")
		if err != nil {
			fatal(err)
		}
		aggData = append(aggData, '\n')
		if err := os.WriteFile(*aggOut, aggData, 0o644); err != nil {
			fatal(err)
		}
	}

	mdlRecs, err := benchModels(dep, *n, *seed)
	if err != nil {
		fatal(err)
	}
	rep.Models = mdlRecs
	for _, mr := range mdlRecs {
		fmt.Printf("%-28s %6d latency %8.3f vs graph %12d ns/op\n",
			mr.Name, mr.LatencySlots, mr.LatencyVsGraph, mr.NsPerOp)
	}
	if *mdlOut != "" {
		mdlData, err := json.MarshalIndent(struct {
			Tool      string        `json:"tool"`
			GoVersion string        `json:"go_version"`
			Timestamp string        `json:"timestamp"`
			Nodes     int           `json:"nodes"`
			Seed      uint64        `json:"seed"`
			Models    []modelRecord `json:"models"`
		}{"mlb-bench", runtime.Version(), rep.Timestamp, *n, *seed, mdlRecs}, "", "  ")
		if err != nil {
			fatal(err)
		}
		mdlData = append(mdlData, '\n')
		if err := os.WriteFile(*mdlOut, mdlData, 0o644); err != nil {
			fatal(err)
		}
	}

	impRecs, err := benchImprove(dep, *n, *seed, *r)
	if err != nil {
		fatal(err)
	}
	rep.Improve = impRecs
	for _, ir := range impRecs {
		fmt.Printf("%-28s %6d -> %4d slots (%d moves, exact=%v) %12d ns/op\n",
			ir.Name, ir.InputSlots, ir.LatencySlots, ir.Moves, ir.Exact, ir.NsPerOp)
	}
	if *impOut != "" {
		impData, err := json.MarshalIndent(struct {
			Tool      string          `json:"tool"`
			GoVersion string          `json:"go_version"`
			Timestamp string          `json:"timestamp"`
			Nodes     int             `json:"nodes"`
			Seed      uint64          `json:"seed"`
			Improve   []improveRecord `json:"improve"`
		}{"mlb-bench", runtime.Version(), rep.Timestamp, *n, *seed, impRecs}, "", "  ")
		if err != nil {
			fatal(err)
		}
		impData = append(impData, '\n')
		if err := os.WriteFile(*impOut, impData, 0o644); err != nil {
			fatal(err)
		}
	}

	obsRec, err := benchObs(150, *seed, *svcReqs)
	if err != nil {
		fatal(err)
	}
	rep.Obs = []obsRecord{obsRec}
	fmt.Printf("%-28s %12d ns disabled %10d ns enabled %+6.2f%% (%d spans)\n",
		obsRec.Name, obsRec.DisabledNs, obsRec.EnabledNs, obsRec.OverheadPct, obsRec.Spans)
	if *obsOut != "" {
		obsData, err := json.MarshalIndent(struct {
			Tool      string      `json:"tool"`
			GoVersion string      `json:"go_version"`
			Timestamp string      `json:"timestamp"`
			Seed      uint64      `json:"seed"`
			Obs       []obsRecord `json:"obs"`
		}{"mlb-bench", runtime.Version(), rep.Timestamp, *seed, rep.Obs}, "", "  ")
		if err != nil {
			fatal(err)
		}
		obsData = append(obsData, '\n')
		if err := os.WriteFile(*obsOut, obsData, 0o644); err != nil {
			fatal(err)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d records)\n", *out, len(rep.Records))
}

// benchObs measures what always-on tracing costs a cold plan: the same
// no_cache request stream against a fresh in-process service, once with no
// trace in the context (the production warm-path default) and once with a
// request trace attached (which also switches the engine to its
// depth-profiled search). The span count of a traced cold plan is a
// deterministic function of the request shape; the wall-clock overhead is
// the number the <2% design target speaks to. The two modes run in
// INTERLEAVED best-of-three rounds (disabled, enabled, disabled, ...): a
// noisy neighbour on a shared runner then taxes both modes instead of
// poisoning one side of the ratio, and the per-mode minimum is the round
// with the least interference.
func benchObs(n int, seed uint64, reqs int) (obsRecord, error) {
	if reqs < 8 {
		reqs = 8
	}
	var svcs []*mlbs.PlanService
	defer func() {
		for _, s := range svcs {
			s.Close()
		}
	}()
	spans := 0
	newSend := func(traced bool) (func() error, error) {
		svc := mlbs.NewService(mlbs.ServiceConfig{Workers: runtime.GOMAXPROCS(0)})
		svcs = append(svcs, svc)
		send := func() error {
			ctx := context.Background()
			var tr *mlbs.Trace
			if traced {
				tr = mlbs.NewTrace("/v1/plan")
				ctx = mlbs.TraceContext(ctx, tr)
			}
			resp, err := svc.Plan(ctx, mlbs.PlanRequest{
				Generator: &mlbs.PlanGenerator{N: n, Seed: seed},
				NoCache:   true,
			})
			if err != nil {
				return err
			}
			if snap := tr.Finish(resp.Digest, ""); snap != nil {
				spans = snap.Spans
			}
			return nil
		}
		return send, send() // first call materializes the deployment
	}
	sendDisabled, err := newSend(false)
	if err != nil {
		return obsRecord{}, err
	}
	sendEnabled, err := newSend(true)
	if err != nil {
		return obsRecord{}, err
	}
	var disabledNs, enabledNs int64
	for round := 0; round < 3; round++ {
		d, _, _, err := measure(reqs, sendDisabled)
		if err != nil {
			return obsRecord{}, err
		}
		e, _, _, err := measure(reqs, sendEnabled)
		if err != nil {
			return obsRecord{}, err
		}
		if disabledNs == 0 || d < disabledNs {
			disabledNs = d
		}
		if enabledNs == 0 || e < enabledNs {
			enabledNs = e
		}
	}
	rec := obsRecord{
		Name:       fmt.Sprintf("obs/cold-plan-n%d", n),
		Nodes:      n,
		Requests:   reqs,
		DisabledNs: disabledNs,
		EnabledNs:  enabledNs,
		Spans:      spans,
	}
	if disabledNs > 0 {
		rec.OverheadPct = 100 * (float64(enabledNs) - float64(disabledNs)) / float64(disabledNs)
	}
	return rec, nil
}

// benchService measures the plan service end to end on the n-node sync
// paper topology: reqs no_cache requests (cold — every one searches)
// followed by reqs cached requests (warm — every one hits), sequentially
// so the two phases are directly comparable.
func benchService(n int, seed uint64, reqs int) (serviceRecord, error) {
	if reqs < 4 {
		reqs = 4
	}
	svc := mlbs.NewService(mlbs.ServiceConfig{Workers: runtime.GOMAXPROCS(0)})
	defer svc.Close()
	ctx := context.Background()
	send := func(noCache bool) (time.Duration, error) {
		t0 := time.Now()
		_, err := svc.Plan(ctx, mlbs.PlanRequest{
			Generator: &mlbs.PlanGenerator{N: n, Seed: seed},
			NoCache:   noCache,
		})
		return time.Since(t0), err
	}
	if _, err := send(true); err != nil { // materialize the deployment
		return serviceRecord{}, err
	}
	phase := func(noCache bool) (perSec float64, p99 int64, err error) {
		lat := make([]time.Duration, reqs)
		start := time.Now()
		for i := range lat {
			if lat[i], err = send(noCache); err != nil {
				return 0, 0, err
			}
		}
		elapsed := time.Since(start)
		slices.Sort(lat)
		return float64(reqs) / elapsed.Seconds(), lat[reqs*99/100].Nanoseconds(), nil
	}
	rec := serviceRecord{Name: fmt.Sprintf("service/sync-n%d", n), Nodes: n, Requests: reqs}
	var err error
	if rec.ColdPlansPerSec, rec.ColdP99Ns, err = phase(true); err != nil {
		return rec, err
	}
	if _, err := send(false); err != nil { // prime the cache
		return rec, err
	}
	if rec.WarmPlansPerSec, rec.WarmP99Ns, err = phase(false); err != nil {
		return rec, err
	}
	if rec.ColdPlansPerSec > 0 {
		rec.Speedup = rec.WarmPlansPerSec / rec.ColdPlansPerSec
	}
	return rec, nil
}

// benchChannels sweeps the latency-vs-K curve: the G-OPT schedule of the
// paper deployment across K ∈ {1, 2, 4, 8} orthogonal channels, on the
// synchronous system, the -r duty cycle, and the light r=50 duty cycle
// (where conflict-induced re-wake waits dominate and channels collapse
// latency; the synchronous system is hop-bound by Theorem 1's d+2, so its
// curve is near-flat). Every schedule is validated and replayed before its
// numbers are reported.
func benchChannels(dep *mlbs.Deployment, n int, seed uint64, r int) ([]channelRecord, error) {
	systems := []struct {
		name string
		in   mlbs.Instance
	}{
		{"sync", mlbs.SyncInstance(dep.G, dep.Source)},
		{fmt.Sprintf("duty-r%d", r), mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(n, r, 9), 0)},
		{"duty-r50", mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(n, 50, 9), 0)},
	}
	var out []channelRecord
	for _, sys := range systems {
		k1 := 0
		for _, k := range []int{1, 2, 4, 8} {
			in := mlbs.WithChannels(sys.in, k)
			sched := mlbs.GOPT()
			res, err := sched.Schedule(in)
			if err != nil {
				return nil, fmt.Errorf("channels %s K=%d: %w", sys.name, k, err)
			}
			if err := res.Schedule.Validate(in); err != nil {
				return nil, fmt.Errorf("channels %s K=%d: invalid schedule: %w", sys.name, k, err)
			}
			rep, err := mlbs.Replay(in, res.Schedule)
			if err != nil {
				return nil, fmt.Errorf("channels %s K=%d: %w", sys.name, k, err)
			}
			if !rep.Completed {
				return nil, fmt.Errorf("channels %s K=%d: replay incomplete or collided", sys.name, k)
			}
			nsOp, _, _, err := measure(1, func() error {
				_, err := sched.Schedule(in)
				return err
			})
			if err != nil {
				return nil, err
			}
			lat := res.Schedule.Latency()
			if k == 1 {
				k1 = lat
			}
			rec := channelRecord{
				Name:         fmt.Sprintf("channels/%s-n%d/k%d", sys.name, n, k),
				Nodes:        n,
				System:       sys.name,
				Channels:     k,
				LatencySlots: lat,
				NsPerOp:      nsOp,
				Exact:        res.Exact,
			}
			if k1 > 0 {
				rec.LatencyVsK1 = float64(lat) / float64(k1)
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// benchAggregate sweeps the convergecast latency-vs-K curve: the SPT
// aggregation schedule of the paper deployment across K ∈ {1, 2, 4}
// orthogonal channels, on the synchronous system and the -r duty cycle
// (where the sink-ward merge waits on sleeping parents and channels buy
// the most). Every schedule is validated and replayed — all readings at
// the sink, zero collisions — before its numbers are reported.
func benchAggregate(dep *mlbs.Deployment, n int, seed uint64, r int) ([]aggRecord, error) {
	systems := []struct {
		name string
		in   mlbs.Instance
	}{
		{"sync", mlbs.SyncInstance(dep.G, dep.Source)},
		{fmt.Sprintf("duty-r%d", r), mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(n, r, 9), 0)},
	}
	var out []aggRecord
	for _, sys := range systems {
		k1 := 0
		for _, k := range []int{1, 2, 4} {
			in := mlbs.WithChannels(sys.in, k)
			res, err := mlbs.ScheduleAggregate(in)
			if err != nil {
				return nil, fmt.Errorf("agg %s K=%d: %w", sys.name, k, err)
			}
			if err := res.Schedule.Validate(in); err != nil {
				return nil, fmt.Errorf("agg %s K=%d: invalid schedule: %w", sys.name, k, err)
			}
			rep, err := mlbs.ReplayAggregate(in, res.Schedule)
			if err != nil {
				return nil, fmt.Errorf("agg %s K=%d: %w", sys.name, k, err)
			}
			if !rep.Completed {
				return nil, fmt.Errorf("agg %s K=%d: replay incomplete or collided", sys.name, k)
			}
			nsOp, _, _, err := measure(1, func() error {
				_, err := mlbs.ScheduleAggregate(in)
				return err
			})
			if err != nil {
				return nil, err
			}
			lat := res.LatencySlots
			if k == 1 {
				k1 = lat
			}
			rec := aggRecord{
				Name:         fmt.Sprintf("agg/%s-n%d/k%d", sys.name, n, k),
				Nodes:        n,
				System:       sys.name,
				Channels:     k,
				LatencySlots: lat,
				NsPerOp:      nsOp,
			}
			if k1 > 0 {
				rec.LatencyVsK1 = float64(lat) / float64(k1)
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// benchModels sweeps the latency-vs-interference-model curve: the G-OPT
// schedule of the synchronous paper deployment under the protocol (graph)
// model and two SINR settings of increasing strictness. Noise is zero, so
// the SINR decision is scale-invariant in the deployment geometry and the
// curve is a pure function of (n, seed, α, β).
func benchModels(dep *mlbs.Deployment, n int, seed uint64) ([]modelRecord, error) {
	base := mlbs.SyncInstance(dep.G, dep.Source)
	models := []struct {
		name        string
		sinr        *mlbs.SINRParams
		alpha, beta float64
	}{
		{"graph", nil, 0, 0},
		{"sinr-a3b1", &mlbs.SINRParams{Alpha: 3, Beta: 1}, 3, 1},
		{"sinr-a3b2", &mlbs.SINRParams{Alpha: 3, Beta: 2}, 3, 2},
	}
	var out []modelRecord
	graphLat := 0
	for _, m := range models {
		in := mlbs.WithSINR(base, m.sinr)
		sched := mlbs.GOPT()
		res, err := sched.Schedule(in)
		if err != nil {
			return nil, fmt.Errorf("models %s: %w", m.name, err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			return nil, fmt.Errorf("models %s: invalid schedule: %w", m.name, err)
		}
		rep, err := mlbs.Replay(in, res.Schedule)
		if err != nil {
			return nil, fmt.Errorf("models %s: %w", m.name, err)
		}
		if !rep.Completed {
			return nil, fmt.Errorf("models %s: replay incomplete or collided", m.name)
		}
		nsOp, _, _, err := measure(1, func() error {
			_, err := sched.Schedule(in)
			return err
		})
		if err != nil {
			return nil, err
		}
		lat := res.Schedule.Latency()
		if m.sinr == nil {
			graphLat = lat
		}
		rec := modelRecord{
			Name:         fmt.Sprintf("models/sync-n%d/%s", n, m.name),
			Nodes:        n,
			Model:        m.name,
			Alpha:        m.alpha,
			Beta:         m.beta,
			LatencySlots: lat,
			NsPerOp:      nsOp,
			Exact:        res.Exact,
		}
		if graphLat > 0 {
			rec.LatencyVsGraph = float64(lat) / float64(graphLat)
		}
		out = append(out, rec)
	}
	return out, nil
}

// benchImprove runs the anytime improver over the baseline approximations
// under deterministic move budgets — MaxMoves instead of a wall-clock
// deadline, so the slot counts CI gates on cannot flake with machine load.
func benchImprove(dep *mlbs.Deployment, n int, seed uint64, r int) ([]improveRecord, error) {
	systems := []struct {
		name  string
		in    mlbs.Instance
		sched mlbs.Scheduler
	}{
		{"sync", mlbs.SyncInstance(dep.G, dep.Source), mlbs.Baseline26()},
		{fmt.Sprintf("duty-r%d", r), mlbs.AsyncInstance(dep.G, dep.Source, mlbs.UniformWake(n, r, 9), 0), mlbs.Baseline17()},
	}
	imp := mlbs.NewImprover()
	var out []improveRecord
	for _, sys := range systems {
		base, err := sys.sched.Schedule(sys.in)
		if err != nil {
			return nil, fmt.Errorf("improve %s: %w", sys.name, err)
		}
		for _, moves := range []int{8, 64} {
			opt := mlbs.ImproveOptions{MaxMoves: moves}
			res, st, err := imp.Improve(sys.in, base.Schedule, opt)
			if err != nil {
				return nil, fmt.Errorf("improve %s moves=%d: %w", sys.name, moves, err)
			}
			if err := res.Validate(sys.in); err != nil {
				return nil, fmt.Errorf("improve %s moves=%d: invalid schedule: %w", sys.name, moves, err)
			}
			nsOp, _, _, err := measure(1, func() error {
				_, _, err := imp.Improve(sys.in, base.Schedule, opt)
				return err
			})
			if err != nil {
				return nil, err
			}
			out = append(out, improveRecord{
				Name:         fmt.Sprintf("improve/%s-n%d/moves%d", sys.name, n, moves),
				Nodes:        n,
				System:       sys.name,
				MaxMoves:     moves,
				InputSlots:   base.Schedule.Latency(),
				LatencySlots: res.Latency(),
				SlotsSaved:   st.SlotsSaved,
				Moves:        st.Moves,
				Searches:     st.Searches,
				Exact:        st.Exact,
				NsPerOp:      nsOp,
			})
		}
	}
	return out, nil
}

// benchReliability measures the Monte-Carlo engine: one warm-up batch,
// then a timed batch of `trials` lossy replays of the G-OPT schedule on
// the n-node sync paper topology at 5% per-link loss.
func benchReliability(n int, seed uint64, trials int) (reliabilityRecord, error) {
	if trials < 10 {
		trials = 10
	}
	dep, err := mlbs.PaperDeployment(n, seed)
	if err != nil {
		return reliabilityRecord{}, err
	}
	in := mlbs.SyncInstance(dep.G, dep.Source)
	res, err := mlbs.GOPT().Schedule(in)
	if err != nil {
		return reliabilityRecord{}, err
	}
	model := mlbs.ReliabilityLossModel{Rate: 0.05, Seed: seed}
	cfg := mlbs.ReliabilityConfig{Trials: trials, Workers: 1}
	est := mlbs.NewReliabilityEstimator()
	rel, err := est.Estimate(in, res.Schedule, model, cfg) // warm-up
	if err != nil {
		return reliabilityRecord{}, err
	}
	nsOp, allocsOp, _, err := measure(1, func() error {
		_, err := est.Estimate(in, res.Schedule, model, cfg)
		return err
	})
	if err != nil {
		return reliabilityRecord{}, err
	}
	nsPerReplay := nsOp / int64(trials)
	rec := reliabilityRecord{
		Name:            fmt.Sprintf("reliability/sync-n%d", n),
		Nodes:           n,
		Trials:          trials,
		LossRate:        model.Rate,
		NsPerReplay:     nsPerReplay,
		AllocsPerReplay: float64(allocsOp) / float64(trials),
		MeanDelivery:    rel.MeanDeliveryRatio,
	}
	if nsPerReplay > 0 {
		rec.ReplaysPerSec = 1e9 / float64(nsPerReplay)
	}
	return rec, nil
}

// measure runs fn a fixed number of times and reports per-op wall time and
// allocation counts (via runtime.MemStats deltas). Fixed iterations keep
// the tool's runtime predictable for CI, unlike testing.Benchmark's
// auto-scaling.
func measure(iters int, fn func() error) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	k := int64(iters)
	return elapsed.Nanoseconds() / k,
		int64(m1.Mallocs-m0.Mallocs) / k,
		int64(m1.TotalAlloc-m0.TotalAlloc) / k,
		nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlb-bench:", err)
	os.Exit(1)
}
