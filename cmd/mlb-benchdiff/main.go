// Command mlb-benchdiff is the CI bench regression gate: it compares a
// current mlb-bench report against a checked-in baseline and fails (exit
// code 1) when a pinned metric regresses beyond the tolerance.
//
// Usage:
//
//	mlb-benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json [-tol 0.25]
//
// Pinned metrics, chosen because they are deterministic for a fixed
// (n, seed, r) — wall-clock numbers are NOT compared, CI machines are too
// noisy for that:
//
//   - records[].latency_slots — the scheduled broadcast latency per
//     (scheduler, system) case;
//   - records[].allocs_per_op — the allocation-discipline pins (with an
//     absolute slack, so a 2→3 alloc jitter on a tiny count cannot flake);
//   - reliability[].allocs_per_replay — the Monte-Carlo engine's ~0
//     allocs/replay contract;
//   - channels[].latency_slots — the latency-vs-K curve;
//   - agg[].latency_slots — the convergecast latency-vs-K curve,
//     deterministic for a fixed (n, seed, r, K) and compared with zero
//     relative slack;
//   - models[].latency_slots — the latency-vs-interference-model curve
//     (graph vs SINR), deterministic for a fixed (n, seed, α, β) and
//     compared with zero relative slack: the oracle indirection landing
//     the protocol model on a different schedule IS the regression this
//     section exists to catch;
//   - improve[].latency_slots — the anytime improver's slot counts under
//     deterministic move budgets (must never exceed baseline: the improver
//     getting WORSE at improving is a regression even inside tolerance, so
//     these compare with zero relative slack);
//   - obs[].spans — the span count of a traced cold plan, deterministic for
//     a fixed request shape, compared exactly;
//   - obs[].overhead_pct — the tracing-enabled-vs-disabled cold-plan tax,
//     compared with an absolute percentage-point slack (-obs-slack) because
//     shared CI runners make tight wall-clock ratios flake.
//
// A record present in the baseline but missing from the current report is
// also a failure: silently dropping a benchmark is how regressions hide.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// benchReport mirrors the mlb-bench output schema, keeping only the
// pinned fields.
type benchReport struct {
	Records []struct {
		Name         string `json:"name"`
		LatencySlots int    `json:"latency_slots"`
		AllocsPerOp  int64  `json:"allocs_per_op"`
	} `json:"records"`
	Reliability []struct {
		Name            string  `json:"name"`
		AllocsPerReplay float64 `json:"allocs_per_replay"`
	} `json:"reliability"`
	Channels []struct {
		Name         string `json:"name"`
		LatencySlots int    `json:"latency_slots"`
	} `json:"channels"`
	Agg []struct {
		Name         string `json:"name"`
		LatencySlots int    `json:"latency_slots"`
	} `json:"agg"`
	Models []struct {
		Name         string `json:"name"`
		LatencySlots int    `json:"latency_slots"`
	} `json:"models"`
	Improve []struct {
		Name         string `json:"name"`
		LatencySlots int    `json:"latency_slots"`
	} `json:"improve"`
	Obs []struct {
		Name        string  `json:"name"`
		OverheadPct float64 `json:"overhead_pct"`
		Spans       int     `json:"spans"`
	} `json:"obs"`
}

// tolerances bundles the comparison knobs.
type tolerances struct {
	// Rel is the relative regression bound: current may be at most
	// (1+Rel) × baseline.
	Rel float64
	// AllocSlack is the absolute allocs/op slack added on top of the
	// relative bound, absorbing fixed-size jitter on small counts.
	AllocSlack float64
	// ObsOverheadSlack is the absolute percentage-point slack on the
	// tracing-overhead comparison: wall-clock ratios on shared CI runners
	// are too noisy for a tight bound, so the real zero-cost pin lives in
	// the alloc-count unit tests and this gate only catches the tracing
	// path becoming grossly expensive.
	ObsOverheadSlack float64
}

// compare returns every regression found, empty when the gate passes.
func compare(baseline, current benchReport, tol tolerances) []string {
	var fails []string
	exceeds := func(cur, base, slack float64) bool {
		return cur > base*(1+tol.Rel)+slack
	}

	cur := make(map[string]int, len(current.Records))
	curAllocs := make(map[string]int64, len(current.Records))
	for _, r := range current.Records {
		cur[r.Name] = r.LatencySlots
		curAllocs[r.Name] = r.AllocsPerOp
	}
	for _, b := range baseline.Records {
		got, ok := cur[b.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("record %q missing from current report", b.Name))
			continue
		}
		if exceeds(float64(got), float64(b.LatencySlots), 0) {
			fails = append(fails, fmt.Sprintf("%s: latency %d slots, baseline %d (>%d%% regression)",
				b.Name, got, b.LatencySlots, int(tol.Rel*100)))
		}
		if exceeds(float64(curAllocs[b.Name]), float64(b.AllocsPerOp), tol.AllocSlack) {
			fails = append(fails, fmt.Sprintf("%s: %d allocs/op, baseline %d (>%d%% + %d regression)",
				b.Name, curAllocs[b.Name], b.AllocsPerOp, int(tol.Rel*100), int(tol.AllocSlack)))
		}
	}

	curRel := make(map[string]float64, len(current.Reliability))
	for _, r := range current.Reliability {
		curRel[r.Name] = r.AllocsPerReplay
	}
	for _, b := range baseline.Reliability {
		got, ok := curRel[b.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("reliability record %q missing from current report", b.Name))
			continue
		}
		// allocs/replay pins sit near zero; compare with a fixed +1 slack.
		if got > b.AllocsPerReplay*(1+tol.Rel)+1 {
			fails = append(fails, fmt.Sprintf("%s: %.2f allocs/replay, baseline %.2f",
				b.Name, got, b.AllocsPerReplay))
		}
	}

	curCh := make(map[string]int, len(current.Channels))
	for _, r := range current.Channels {
		curCh[r.Name] = r.LatencySlots
	}
	for _, b := range baseline.Channels {
		got, ok := curCh[b.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("channel record %q missing from current report", b.Name))
			continue
		}
		if exceeds(float64(got), float64(b.LatencySlots), 0) {
			fails = append(fails, fmt.Sprintf("%s: latency %d slots, baseline %d",
				b.Name, got, b.LatencySlots))
		}
	}
	curAgg := make(map[string]int, len(current.Agg))
	for _, r := range current.Agg {
		curAgg[r.Name] = r.LatencySlots
	}
	for _, b := range baseline.Agg {
		got, ok := curAgg[b.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("agg record %q missing from current report", b.Name))
			continue
		}
		// Convergecast schedules are deterministic per (n, seed, r, K): any
		// slot drift is a real scheduling change — no relative slack.
		if got != b.LatencySlots {
			fails = append(fails, fmt.Sprintf("%s: convergecast latency %d slots, baseline %d",
				b.Name, got, b.LatencySlots))
		}
	}
	curMdl := make(map[string]int, len(current.Models))
	for _, r := range current.Models {
		curMdl[r.Name] = r.LatencySlots
	}
	for _, b := range baseline.Models {
		got, ok := curMdl[b.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("model record %q missing from current report", b.Name))
			continue
		}
		// Deterministic schedules per (n, seed, model): any slot drift is a
		// real scheduling change — no relative slack.
		if got != b.LatencySlots {
			fails = append(fails, fmt.Sprintf("%s: latency %d slots, baseline %d",
				b.Name, got, b.LatencySlots))
		}
	}
	curImp := make(map[string]int, len(current.Improve))
	for _, r := range current.Improve {
		curImp[r.Name] = r.LatencySlots
	}
	for _, b := range baseline.Improve {
		got, ok := curImp[b.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("improve record %q missing from current report", b.Name))
			continue
		}
		// Deterministic move budgets: the improved slot count is exact, so
		// any increase is a real quality regression — no relative slack.
		if got > b.LatencySlots {
			fails = append(fails, fmt.Sprintf("%s: improved latency %d slots, baseline %d",
				b.Name, got, b.LatencySlots))
		}
	}
	type obsPin struct {
		overhead float64
		spans    int
	}
	curObs := make(map[string]obsPin, len(current.Obs))
	for _, r := range current.Obs {
		curObs[r.Name] = obsPin{r.OverheadPct, r.Spans}
	}
	for _, b := range baseline.Obs {
		got, ok := curObs[b.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("obs record %q missing from current report", b.Name))
			continue
		}
		// The span tree of a fixed request shape is deterministic: any
		// change must be a deliberate baseline update, so compare exactly.
		if got.spans != b.Spans {
			fails = append(fails, fmt.Sprintf("%s: traced cold plan has %d spans, baseline %d",
				b.Name, got.spans, b.Spans))
		}
		if got.overhead > b.OverheadPct+tol.ObsOverheadSlack {
			fails = append(fails, fmt.Sprintf("%s: tracing overhead %.2f%%, baseline %.2f%% (+%.0f-point slack)",
				b.Name, got.overhead, b.OverheadPct, tol.ObsOverheadSlack))
		}
	}
	return fails
}

func load(path string) (benchReport, error) {
	var rep benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	var (
		basePath   = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline report")
		curPath    = flag.String("current", "BENCH_ci.json", "freshly generated report")
		tol        = flag.Float64("tol", 0.25, "relative regression tolerance")
		allocSlack = flag.Float64("alloc-slack", 200, "absolute allocs/op slack")
		obsSlack   = flag.Float64("obs-slack", 10, "absolute percentage-point slack on tracing overhead")
	)
	flag.Parse()
	if *tol < 0 || math.IsNaN(*tol) {
		fmt.Fprintln(os.Stderr, "mlb-benchdiff: tolerance must be >= 0")
		os.Exit(2)
	}
	baseline, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlb-benchdiff:", err)
		os.Exit(2)
	}
	current, err := load(*curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlb-benchdiff:", err)
		os.Exit(2)
	}
	fails := compare(baseline, current, tolerances{Rel: *tol, AllocSlack: *allocSlack, ObsOverheadSlack: *obsSlack})
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("mlb-benchdiff: %d scheduler, %d reliability, %d channel, %d agg, %d model, %d improve, %d obs records within %.0f%% of baseline\n",
		len(baseline.Records), len(baseline.Reliability), len(baseline.Channels), len(baseline.Agg), len(baseline.Models), len(baseline.Improve), len(baseline.Obs), *tol*100)
}
