package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func report(t *testing.T, src string) benchReport {
	t.Helper()
	var rep benchReport
	if err := json.Unmarshal([]byte(src), &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

const baselineJSON = `{
  "records": [
    {"name": "sync/g-opt", "latency_slots": 8, "allocs_per_op": 700},
    {"name": "duty-r10/g-opt", "latency_slots": 60, "allocs_per_op": 9000}
  ],
  "reliability": [
    {"name": "reliability/sync-n150", "allocs_per_replay": 0.1}
  ],
  "channels": [
    {"name": "channels/duty-r50-n300/k1", "latency_slots": 50},
    {"name": "channels/duty-r50-n300/k4", "latency_slots": 35}
  ],
  "agg": [
    {"name": "agg/sync-n300/k1", "latency_slots": 120},
    {"name": "agg/duty-r10-n300/k4", "latency_slots": 90}
  ],
  "improve": [
    {"name": "improve/duty-r10-n150/moves8", "latency_slots": 40},
    {"name": "improve/duty-r10-n150/moves64", "latency_slots": 20}
  ],
  "obs": [
    {"name": "obs/cold-plan-n150", "overhead_pct": 1.5, "spans": 5}
  ]
}`

var defaultTol = tolerances{Rel: 0.25, AllocSlack: 200, ObsOverheadSlack: 10}

func TestCompareIdenticalPasses(t *testing.T) {
	b := report(t, baselineJSON)
	if fails := compare(b, b, defaultTol); len(fails) != 0 {
		t.Fatalf("identical reports flagged: %v", fails)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Records[0].LatencySlots = 10   // 8 → 10 = exactly +25%
	cur.Records[1].AllocsPerOp = 11000 // within 25% + slack
	cur.Reliability[0].AllocsPerReplay = 0.9
	if fails := compare(b, cur, defaultTol); len(fails) != 0 {
		t.Fatalf("within-tolerance report flagged: %v", fails)
	}
}

func TestCompareLatencyRegressionFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Records[0].LatencySlots = 11 // 8 → 11 > +25%
	fails := compare(b, cur, defaultTol)
	if len(fails) != 1 || !strings.Contains(fails[0], "sync/g-opt") {
		t.Fatalf("fails = %v", fails)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Records[1].AllocsPerOp = 12000 // > 9000*1.25+200
	fails := compare(b, cur, defaultTol)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/op") {
		t.Fatalf("fails = %v", fails)
	}
}

func TestCompareAllocSlackAbsorbsSmallCounts(t *testing.T) {
	b := report(t, `{"records":[{"name":"x","latency_slots":5,"allocs_per_op":3}]}`)
	cur := report(t, `{"records":[{"name":"x","latency_slots":5,"allocs_per_op":150}]}`)
	if fails := compare(b, cur, defaultTol); len(fails) != 0 {
		t.Fatalf("slack did not absorb a tiny absolute jump: %v", fails)
	}
}

func TestCompareChannelRegressionFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Channels[1].LatencySlots = 50 // the K=4 win evaporated
	fails := compare(b, cur, defaultTol)
	if len(fails) != 1 || !strings.Contains(fails[0], "k4") {
		t.Fatalf("fails = %v", fails)
	}
}

func TestCompareAggDriftFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	// Convergecast latencies gate with ZERO slack in BOTH directions: a
	// drifted deterministic schedule is a behaviour change even when it
	// happens to be shorter.
	cur.Agg[1].LatencySlots = 89
	fails := compare(b, cur, defaultTol)
	if len(fails) != 1 || !strings.Contains(fails[0], "agg/duty-r10-n300/k4") {
		t.Fatalf("fails = %v", fails)
	}
}

func TestCompareAggMissingFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Agg = nil
	fails := compare(b, cur, defaultTol)
	if len(fails) != 2 {
		t.Fatalf("want 2 missing agg records, got %v", fails)
	}
}

func TestCompareMissingRecordFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Records = cur.Records[:1]
	cur.Channels = nil
	fails := compare(b, cur, defaultTol)
	if len(fails) != 3 {
		t.Fatalf("want 3 missing-record failures, got %v", fails)
	}
	for _, f := range fails {
		if !strings.Contains(f, "missing") {
			t.Fatalf("unexpected failure: %s", f)
		}
	}
}

func TestCompareReliabilityAllocFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Reliability[0].AllocsPerReplay = 5
	fails := compare(b, cur, defaultTol)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/replay") {
		t.Fatalf("fails = %v", fails)
	}
}

func TestCompareExtraCurrentRecordsIgnored(t *testing.T) {
	b := report(t, `{"records":[{"name":"x","latency_slots":5,"allocs_per_op":10}]}`)
	cur := report(t, baselineJSON)
	cur.Records = append(cur.Records, struct {
		Name         string `json:"name"`
		LatencySlots int    `json:"latency_slots"`
		AllocsPerOp  int64  `json:"allocs_per_op"`
	}{"x", 5, 10})
	if fails := compare(b, cur, defaultTol); len(fails) != 0 {
		t.Fatalf("extra records should not fail the gate: %v", fails)
	}
}

func TestCompareImproveRegressionFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	// Improve records gate with ZERO slack: even one extra slot — well
	// inside the 25% relative tolerance — is a quality regression.
	cur.Improve[1].LatencySlots = 21
	fails := compare(b, cur, defaultTol)
	if len(fails) != 1 || !strings.Contains(fails[0], "moves64") {
		t.Fatalf("fails = %v", fails)
	}
}

func TestCompareImproveMissingFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Improve = nil
	fails := compare(b, cur, defaultTol)
	if len(fails) != 2 {
		t.Fatalf("want 2 missing improve records, got %v", fails)
	}
}

func TestCompareObsSpanDriftFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	// The span tree is deterministic: even one FEWER span must fail — a
	// silently vanished phase is an observability regression.
	cur.Obs[0].Spans = 4
	fails := compare(b, cur, defaultTol)
	if len(fails) != 1 || !strings.Contains(fails[0], "spans") {
		t.Fatalf("fails = %v", fails)
	}
}

func TestCompareObsOverheadGate(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Obs[0].OverheadPct = 11.0 // within baseline 1.5 + 10-point slack
	if fails := compare(b, cur, defaultTol); len(fails) != 0 {
		t.Fatalf("within-slack overhead flagged: %v", fails)
	}
	cur.Obs[0].OverheadPct = 12.0 // beyond the slack
	fails := compare(b, cur, defaultTol)
	if len(fails) != 1 || !strings.Contains(fails[0], "overhead") {
		t.Fatalf("fails = %v", fails)
	}
}

func TestCompareObsMissingFails(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Obs = nil
	fails := compare(b, cur, defaultTol)
	if len(fails) != 1 || !strings.Contains(fails[0], "obs record") {
		t.Fatalf("fails = %v", fails)
	}
}

func TestCompareImproveBetterPasses(t *testing.T) {
	b := report(t, baselineJSON)
	cur := report(t, baselineJSON)
	cur.Improve[0].LatencySlots = 18 // improver got better — never a failure
	if fails := compare(b, cur, defaultTol); len(fails) != 0 {
		t.Fatalf("improvement flagged: %v", fails)
	}
}
