package mlbs_test

import (
	"fmt"

	"mlbs"
)

// ExampleApplyChurn repairs a cached schedule after a node failure on a
// small deterministic deployment: plan once, fail a node, replan
// incrementally, and check the repaired plan still covers every live node.
func Example_replanAfterChurn() {
	// A tiny fixed unit-disk deployment: 6 nodes on a 2×3 grid, radius
	// 1.25, so each node hears its horizontal/vertical neighbors.
	pos := []mlbs.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0},
		{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1},
	}
	g := mlbs.NewUDG(pos, 1.25)
	in := mlbs.SyncInstance(g, 0)

	res, err := mlbs.GOPT().Schedule(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("base plan: latency %d, exact %v\n", res.Schedule.Latency(), res.Exact)

	// Node 4 (center of the top row) dies; repair the plan for the five
	// survivors instead of searching from scratch.
	rp := mlbs.NewReplanner(mlbs.ReplannerConfig{})
	rr, err := rp.Replan(in, res.Schedule, mlbs.ChurnDelta{Events: []mlbs.ChurnEvent{
		{Kind: mlbs.ChurnNodeFail, Node: 4},
	}})
	if err != nil {
		panic(err)
	}
	rep, err := mlbs.Replay(rr.Instance, rr.Result.Schedule)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after failure: %d nodes, repaired latency %d, covered all: %v\n",
		rr.Instance.G.N(), rr.Result.Schedule.Latency(), rep.Completed)
	// Output:
	// base plan: latency 3, exact true
	// after failure: 5 nodes, repaired latency 3, covered all: true
}

// Example_multiChannelBroadcast schedules the same duty-cycle deployment
// on one and on four orthogonal frequency channels: with K channels, up
// to K mutually-conflicting relay classes share a slot (one per channel),
// deleting the re-wake waits that same-channel conflicts force.
func Example_multiChannelBroadcast() {
	dep, err := mlbs.PaperDeployment(300, 1)
	if err != nil {
		panic(err)
	}
	wake := mlbs.UniformWake(300, 50, 9) // light duty cycle, r = 50
	for _, k := range []int{1, 4} {
		in := mlbs.WithChannels(mlbs.AsyncInstance(dep.G, dep.Source, wake, 0), k)
		res, err := mlbs.GOPT().Schedule(in)
		if err != nil {
			panic(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			panic(err)
		}
		rep, err := mlbs.Replay(in, res.Schedule)
		if err != nil {
			panic(err)
		}
		fmt.Printf("K=%d: latency %d slots, replay complete %v, collisions %d\n",
			k, res.Schedule.Latency(), rep.Completed, rep.Usage.Collisions)
	}
	// Output:
	// K=1: latency 50 slots, replay complete true, collisions 0
	// K=4: latency 35 slots, replay complete true, collisions 0
}
