package mlbs_test

import (
	"fmt"
	"strings"
	"testing"

	"mlbs"
)

func TestQuickstartFlow(t *testing.T) {
	dep, err := mlbs.PaperDeployment(100, 42)
	if err != nil {
		t.Fatal(err)
	}
	in := mlbs.SyncInstance(dep.G, dep.Source)
	for _, s := range []mlbs.Scheduler{
		mlbs.OPT(), mlbs.GOPT(), mlbs.EModel(), mlbs.Baseline26(),
		mlbs.MaxCoverage(), mlbs.FirstColor(), mlbs.EModelOnePass(),
	} {
		res, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		rep, err := mlbs.Replay(in, res.Schedule)
		if err != nil || !rep.Completed {
			t.Fatalf("%s replay: %v completed=%v", s.Name(), err, rep != nil && rep.Completed)
		}
	}
}

func TestAsyncFlow(t *testing.T) {
	dep, err := mlbs.PaperDeployment(80, 7)
	if err != nil {
		t.Fatal(err)
	}
	wake := mlbs.UniformWake(dep.G.N(), 10, 3)
	in := mlbs.AsyncInstance(dep.G, dep.Source, wake, 0)
	res, err := mlbs.GOPT().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	base, err := mlbs.Baseline17().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA > base.PA {
		t.Fatalf("G-OPT %d worse than 17-approx %d", res.PA, base.PA)
	}
	d := dep.SourceEcc
	if res.Schedule.Latency() > mlbs.AsyncLatencyBound(10, d) {
		t.Fatalf("latency %d above Theorem 1 bound %d", res.Schedule.Latency(), mlbs.AsyncLatencyBound(10, d))
	}
}

func TestFacadeFixtures(t *testing.T) {
	g1, s1 := mlbs.Figure1()
	if g1.N() != 12 || s1 != 0 {
		t.Fatalf("Figure1 = n%d src%d", g1.N(), s1)
	}
	g2, _ := mlbs.Figure2()
	in := mlbs.Instance{G: g2, Source: 0, Start: 2, Wake: mlbs.TableIVWake()}
	res, err := mlbs.GOPT().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 4 {
		t.Fatalf("Table IV P(A) = %d, want 4", res.PA)
	}
}

func TestFacadeETableAndRadio(t *testing.T) {
	g, _ := mlbs.Figure1()
	in := mlbs.SyncInstance(g, 0)
	tab := mlbs.BuildETable(in)
	if tab.Value(2, 2) != 2 { // paper node 1, quadrant 2
		t.Fatalf("E2(node 1) = %v, want 2", tab.Value(2, 2))
	}
	radio := mlbs.Mica2()
	if radio.BroadcastTime(3) <= 0 {
		t.Fatal("radio time must be positive")
	}
}

func TestFacadeTrace(t *testing.T) {
	g, src := mlbs.Figure2()
	rows, err := mlbs.TraceGOPT(mlbs.SyncInstance(g, src), 0)
	if err != nil {
		t.Fatal(err)
	}
	out := mlbs.RenderTrace(rows, nil)
	if !strings.Contains(out, "selected") {
		t.Fatalf("trace render:\n%s", out)
	}
}

func TestFacadeLocalized(t *testing.T) {
	dep, err := mlbs.PaperDeployment(60, 11)
	if err != nil {
		t.Fatal(err)
	}
	in := mlbs.SyncInstance(dep.G, dep.Source)
	rep, sched, err := mlbs.LocalizedRun(in)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || len(sched.Advances) == 0 {
		t.Fatal("localized run failed")
	}
}

func TestFacadeBounds(t *testing.T) {
	if mlbs.SyncLatencyBound(6) != 8 || mlbs.AsyncLatencyBound(10, 6) != 160 {
		t.Fatal("bound helpers")
	}
}

func ExampleGOPT() {
	g, src := mlbs.Figure2()
	in := mlbs.SyncInstance(g, src)
	res, err := mlbs.GOPT().Schedule(in)
	if err != nil {
		panic(err)
	}
	fmt.Println("P(A):", res.PA, "exact:", res.Exact)
	// Output:
	// P(A): 2 exact: true
}

func ExampleEModel() {
	g, src := mlbs.Figure1()
	in := mlbs.SyncInstance(g, src)
	res, err := mlbs.EModel().Schedule(in)
	if err != nil {
		panic(err)
	}
	// The magenta relay (paper node 1) fires in the second advance.
	fmt.Println("P(A):", res.PA)
	fmt.Println("second advance senders:", res.Schedule.Advances[1].Senders)
	// Output:
	// P(A): 3
	// second advance senders: [2]
}

func ExampleReplay() {
	g, src := mlbs.Figure2()
	in := mlbs.SyncInstance(g, src)
	res, _ := mlbs.GOPT().Schedule(in)
	rep, _ := mlbs.Replay(in, res.Schedule)
	fmt.Println("completed:", rep.Completed, "transmissions:", rep.Usage.Transmissions)
	// Output:
	// completed: true transmissions: 2
}

func TestFacadeLossyAndPersistence(t *testing.T) {
	dep, err := mlbs.PaperDeployment(60, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the deployment through JSON.
	blob, err := mlbs.EncodeDeployment(dep)
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := mlbs.DecodeDeployment(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dep2.G.M() != dep.G.M() || dep2.Source != dep.Source {
		t.Fatal("deployment round-trip changed the instance")
	}
	in := mlbs.SyncInstance(dep2.G, dep2.Source)
	res, err := mlbs.EModel().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	sblob, err := mlbs.EncodeSchedule(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := mlbs.DecodeSchedule(sblob)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Lossy channel: the offline plan degrades, the localized scheme recovers.
	loss := mlbs.IIDLoss(0.25, 3)
	planRep, err := mlbs.ReplayLossy(in, s2, loss)
	if err != nil {
		t.Fatal(err)
	}
	locRep, _, err := mlbs.LocalizedRunLossy(in, loss)
	if err != nil {
		t.Fatal(err)
	}
	if !locRep.Completed {
		t.Fatal("localized scheme failed under loss")
	}
	if planRep.Completed && planRep.LostFrames > 0 {
		// Possible but rare: every lost frame was redundant. Accept, but
		// the localized run must never be the one that fails.
		t.Logf("offline plan survived %d lost frames (redundant coverage)", planRep.LostFrames)
	}
}

func TestFacadeEnergyAwareAndStaggered(t *testing.T) {
	dep, err := mlbs.PaperDeployment(80, 21)
	if err != nil {
		t.Fatal(err)
	}
	wake := mlbs.StaggeredWake(dep.G.N(), 10, 5)
	in := mlbs.AsyncInstance(dep.G, dep.Source, wake, 0)
	res, err := mlbs.EnergyAware().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	rep, err := mlbs.Replay(in, res.Schedule)
	if err != nil || !rep.Completed {
		t.Fatalf("energy-aware replay: %v", err)
	}
}

func TestFacadeAblations(t *testing.T) {
	cfg := mlbs.ExperimentConfig{Trials: 2, Seed: 3, NodeCounts: []int{50}}
	a, err := mlbs.AblationSelection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Variants) == 0 {
		t.Fatal("no variants")
	}
}

func TestFacadeRemainingWrappers(t *testing.T) {
	// Topology configuration and generation.
	cfg := mlbs.PaperTopologyConfig(60)
	if cfg.N != 60 {
		t.Fatal("PaperTopologyConfig")
	}
	dep, err := mlbs.GenerateDeployment(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Wake schedule constructors.
	if w := mlbs.AlwaysAwakeWake(dep.G.N()); w.Rate() != 1 {
		t.Fatal("AlwaysAwakeWake rate")
	}
	fixed := mlbs.FixedWake(10, 10, [][]int{{2}})
	if mlbs.CWT(fixed, 0, 0, 2) != 10 {
		t.Fatal("CWT via facade")
	}
	// Budgeted searches.
	in := mlbs.SyncInstance(dep.G, dep.Source)
	if _, err := mlbs.OPTBudget(1000, 32).Schedule(in); err != nil {
		t.Fatal(err)
	}
	if _, err := mlbs.GOPTBudget(1000).Schedule(in); err != nil {
		t.Fatal(err)
	}
	// UDG constructor.
	g := mlbs.NewUDG([]mlbs.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}, 10)
	if g.M() != 1 {
		t.Fatal("NewUDG")
	}
	// Remaining figure wrappers on a minimal config (analytic ones are fast).
	tiny := mlbs.ExperimentConfig{Trials: 1, Seed: 2, NodeCounts: []int{50}}
	for _, id := range []int{5, 7} {
		fig, err := mlbs.FigureByID(id, tiny)
		if err != nil || len(fig.Points) != 1 {
			t.Fatalf("figure %d: %v", id, err)
		}
	}
	f4, err := mlbs.Figure4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := mlbs.Figure6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := mlbs.Figure3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	sum := mlbs.Summarize(f3, f4, f6)
	if len(sum.ImprovementPct) != 3 {
		t.Fatalf("summary covers %d figures", len(sum.ImprovementPct))
	}
	// Ablation wrappers.
	if _, err := mlbs.AblationBudget(tiny, []int{10}); err != nil {
		t.Fatal(err)
	}
	if _, err := mlbs.AblationRobustness(tiny, []float64{0.1}); err != nil {
		t.Fatal(err)
	}
	// Bound helpers already covered; sanity on radio.
	if mlbs.Mica2().SlotDuration() <= 0 {
		t.Fatal("radio slot duration")
	}
}
