package mote

import (
	"strings"
	"testing"
	"time"
)

func TestMica2SlotDuration(t *testing.T) {
	r := Mica2()
	// 36 bytes at 19.2 kbps = 15 ms airtime + 5 ms guard = 20 ms.
	want := 20 * time.Millisecond
	if got := r.SlotDuration(); got != want {
		t.Fatalf("SlotDuration = %v, want %v", got, want)
	}
}

func TestBroadcastTime(t *testing.T) {
	r := Mica2()
	if got := r.BroadcastTime(10); got != 200*time.Millisecond {
		t.Fatalf("BroadcastTime(10) = %v", got)
	}
	if got := r.BroadcastTime(0); got != 0 {
		t.Fatalf("BroadcastTime(0) = %v", got)
	}
}

func TestMicaZFaster(t *testing.T) {
	if MicaZ().SlotDuration() >= Mica2().SlotDuration() {
		t.Fatal("MicaZ slots must be shorter than Mica2 slots")
	}
}

func TestEnergyMonotone(t *testing.T) {
	r := Mica2()
	base := Usage{Transmissions: 10, Receptions: 50, IdleSlots: 100, SleepSlots: 1000}
	e0 := r.Energy(base)
	if e0 <= 0 {
		t.Fatalf("energy = %f, want positive", e0)
	}
	more := base
	more.Transmissions++
	if r.Energy(more) <= e0 {
		t.Fatal("an extra transmission must cost energy")
	}
	withCollision := base
	withCollision.Collisions = 5
	if r.Energy(withCollision) <= e0 {
		t.Fatal("collisions must cost receive energy")
	}
}

func TestEnergyTxDominatesSleep(t *testing.T) {
	r := Mica2()
	tx := r.Energy(Usage{Transmissions: 1})
	sleep := r.Energy(Usage{SleepSlots: 1})
	if tx < 1000*sleep {
		t.Fatalf("tx %g should dwarf sleep %g", tx, sleep)
	}
}

func TestSlotDurationPanicsOnZeroBitrate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bitrate must panic")
		}
	}()
	(Radio{FrameBytes: 10}).SlotDuration()
}

func TestString(t *testing.T) {
	if s := Mica2().String(); !strings.Contains(s, "Mica2") || !strings.Contains(s, "19.2") {
		t.Fatalf("String = %q", s)
	}
}
