// Package mote models the physical sensor node the paper's simulator was
// calibrated against ("a custom simulator built from real Mica mote testbed
// data", Section V). We do not have the authors' testbed traces; instead
// this package encodes the published Mica2 / CC1000 radio characteristics,
// which play the same role: converting abstract rounds and slots into
// wall-clock time and transmission counts into energy.
//
// The paper's evaluated quantity — P(A) in rounds/slots — is independent of
// these constants; they only scale the derived wall-clock and energy
// figures reported alongside it. The substitution is recorded in DESIGN.md.
package mote

import (
	"fmt"
	"time"
)

// Radio describes a mote radio's timing and power envelope.
type Radio struct {
	Name        string
	BitrateBps  float64       // effective over-the-air bitrate
	FrameBytes  int           // broadcast frame size incl. preamble/CRC
	SlotGuard   time.Duration // turnaround + guard time per slot
	TxPowerW    float64       // transmit power draw
	RxPowerW    float64       // receive/listen power draw
	SleepPowerW float64       // sending channel off (receiver still on is RxPowerW)
}

// Mica2 returns the CC1000-based Mica2 profile: 19.2 kbps manchester-coded
// effective rate, 36-byte frames (TinyOS default payload + header), typical
// current draws at 3 V (tx ≈ 16.5 mA, rx ≈ 9.6 mA, sleep ≈ 1 µA).
func Mica2() Radio {
	return Radio{
		Name:        "Mica2/CC1000",
		BitrateBps:  19200,
		FrameBytes:  36,
		SlotGuard:   5 * time.Millisecond,
		TxPowerW:    3.0 * 16.5e-3,
		RxPowerW:    3.0 * 9.6e-3,
		SleepPowerW: 3.0 * 1e-6,
	}
}

// MicaZ returns the CC2420-based MicaZ profile (250 kbps, 127-byte max
// frame), for ablations on faster radios.
func MicaZ() Radio {
	return Radio{
		Name:        "MicaZ/CC2420",
		BitrateBps:  250000,
		FrameBytes:  127,
		SlotGuard:   2 * time.Millisecond,
		TxPowerW:    3.0 * 17.4e-3,
		RxPowerW:    3.0 * 19.7e-3,
		SleepPowerW: 3.0 * 1e-6,
	}
}

// SlotDuration returns the length of one round/slot: the time to clock a
// full frame out plus the guard interval.
func (r Radio) SlotDuration() time.Duration {
	if r.BitrateBps <= 0 {
		panic("mote: non-positive bitrate")
	}
	tx := time.Duration(float64(8*r.FrameBytes)/r.BitrateBps*1e9) * time.Nanosecond
	return tx + r.SlotGuard
}

// BroadcastTime converts a slot count into wall-clock time.
func (r Radio) BroadcastTime(slots int) time.Duration {
	return time.Duration(slots) * r.SlotDuration()
}

// Usage tallies radio activity over a broadcast, as counted by the
// simulator.
type Usage struct {
	Transmissions int // frames sent
	Receptions    int // frames successfully received (incl. duplicates)
	Collisions    int // receiver slots destroyed by interference
	IdleSlots     int // node-slots spent with no traffic (listening)
	SleepSlots    int // node-slots with the sending channel off
}

// Energy estimates the energy in joules consumed by the tallied activity:
// each transmission costs one slot of TxPower, each reception or collision
// one slot of RxPower, idle slots RxPower (the receiving channel stays on,
// Section III), and sleep slots SleepPower for the sending circuitry.
func (r Radio) Energy(u Usage) float64 {
	slot := r.SlotDuration().Seconds()
	return slot * (float64(u.Transmissions)*r.TxPowerW +
		float64(u.Receptions+u.Collisions)*r.RxPowerW +
		float64(u.IdleSlots)*r.RxPowerW +
		float64(u.SleepSlots)*r.SleepPowerW)
}

// String summarizes the radio.
func (r Radio) String() string {
	return fmt.Sprintf("%s (%.1f kbps, %dB frame, slot %v)",
		r.Name, r.BitrateBps/1000, r.FrameBytes, r.SlotDuration().Round(time.Microsecond))
}
