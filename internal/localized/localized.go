// Package localized implements the paper's stated future work (Section
// VII): "a localized color scheme and its selection to provide a more
// reliable and scalable solution."
//
// Instead of a source-rooted offline schedule, every node decides for
// itself, per slot, from information available within two hops:
//
//   - its own coverage and wake state (Section III's beaconing keeps
//     1-hop neighbor state fresh; neighbors relay it one hop further, so a
//     node knows the coverage and candidacy of its 2-hop neighborhood);
//   - the proactively built E tuple (Algorithm 2 is already distributed —
//     each entry is settled from neighbor announcements exactly once).
//
// The rule: an awake candidate transmits at slot t iff its priority
// (uncovered receivers, then Eq. 10's E score, then node ID) beats every
// awake candidate it conflicts with. Conflicting candidates are exactly
// 2 hops apart (they share an uncovered neighbor), so the decision is
// local, and for any conflicting pair only the higher-priority node sends
// — the transmitting set of every slot is conflict-free by construction,
// without any global coordination. The top-priority candidate always
// transmits, so the broadcast keeps progressing.
package localized

import (
	"fmt"
	"sort"

	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/emodel"
	"mlbs/internal/graph"
	"mlbs/internal/sim"
)

// priority orders candidates: more uncovered receivers first, then larger
// E score, then smaller node ID. Returns true when u beats v.
func priority(recvU int, scoreU float64, u graph.NodeID, recvV int, scoreV float64, v graph.NodeID) bool {
	if recvU != recvV {
		return recvU > recvV
	}
	if scoreU != scoreV {
		return scoreU > scoreV
	}
	return u < v
}

// Policy returns the per-slot localized transmission rule for the
// instance. The returned sim.PolicyFunc reads, for each node, only state
// within its 2-hop neighborhood — the coverage bits it inspects are those
// of the deciding node's neighbors and neighbors' neighbors.
func Policy(in core.Instance, tab *emodel.Table) sim.PolicyFunc {
	g := in.G
	return func(w bitset.Set, t int) []graph.NodeID {
		isUncovered := func(v graph.NodeID) bool { return !w.Has(v) }
		// Per-slot candidate evaluation; each entry is derivable by the
		// node itself from beaconed neighbor state.
		type cand struct {
			recv  int
			score float64
		}
		cands := make(map[graph.NodeID]cand)
		w.ForEach(func(u int) {
			if !in.Wake.Awake(u, t) {
				return
			}
			recv := g.Nbr(u).CountDifference(w)
			if recv == 0 {
				return
			}
			cands[u] = cand{recv: recv, score: tab.Score(g, u, isUncovered)}
		})
		var senders []graph.NodeID
		for u, cu := range cands {
			wins := true
			// Conflicting contenders share an uncovered neighbor with u —
			// all within two hops of u.
			for v, cv := range cands {
				if u == v || !g.Nbr(u).IntersectsDifference(g.Nbr(v), w) {
					continue
				}
				if !priority(cu.recv, cu.score, u, cv.recv, cv.score, v) {
					wins = false
					break
				}
			}
			if wins {
				senders = append(senders, u)
			}
		}
		sort.Ints(senders) // map iteration order must not leak into schedules
		return senders
	}
}

// table builds the E estimates the priorities use.
func table(in core.Instance) (*emodel.Table, error) {
	if !in.G.DistinctPositions() {
		return nil, fmt.Errorf("localized: E-model priorities need distinct node positions")
	}
	weight := emodel.HopWeight
	if in.Wake.Rate() > 1 {
		weight = emodel.CWTWeight(in.Wake)
	}
	return emodel.Build(in.G, weight, emodel.TwoPass), nil
}

// Run executes the localized scheme against the physics and returns the
// physical report and as-executed schedule. The scheme is collision-free
// by construction; Run verifies that and fails loudly otherwise.
func Run(in core.Instance) (*sim.Report, *core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	tab, err := table(in)
	if err != nil {
		return nil, nil, err
	}
	rep, sched, err := sim.RunPolicy(in, Policy(in, tab), 0)
	if err != nil {
		return nil, nil, err
	}
	if len(rep.Collisions) > 0 {
		return nil, nil, fmt.Errorf("localized: %d collisions — the 2-hop rule is broken", len(rep.Collisions))
	}
	if !rep.Completed {
		return nil, nil, fmt.Errorf("localized: broadcast incomplete within horizon")
	}
	return rep, sched, nil
}

// RunLossy executes the localized scheme over a lossy channel. Because
// every slot's senders are re-derived from the coverage that physically
// happened, lost frames are retransmitted naturally; the scheme completes
// on any loss rate < 1 given enough horizon, at a latency and energy
// premium the report quantifies.
func RunLossy(in core.Instance, loss sim.LossFunc) (*sim.LossyReport, *core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	tab, err := table(in)
	if err != nil {
		return nil, nil, err
	}
	return sim.RunPolicyLossy(in, Policy(in, tab), 0, loss)
}
