package localized

import (
	"testing"
	"testing/quick"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/paperfig"
	"mlbs/internal/topology"
)

func TestRunCompletesOnFigure1(t *testing.T) {
	g, src := paperfig.Figure1()
	in := core.Sync(g, src)
	rep, sched, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || len(rep.Collisions) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if err := sched.Validate(in); err != nil {
		t.Fatalf("as-executed schedule invalid: %v", err)
	}
	// d = 3 on Figure 1; a localized scheme may pay extra rounds but must
	// stay within a small constant of the optimum on this 12-node example.
	if rep.Latency() > 6 {
		t.Fatalf("localized latency %d unreasonably high (OPT = 3)", rep.Latency())
	}
}

func TestRunDeterministic(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(80), 5)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	a, sa, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.End != b.End || len(sa.Advances) != len(sb.Advances) {
		t.Fatal("localized run not deterministic")
	}
}

func TestRunRejectsDegenerateGeometry(t *testing.T) {
	g, src := paperfig.Figure2()
	in := core.Sync(g, src)
	if _, _, err := Run(in); err != nil {
		// Figure 2 has distinct positions; this must succeed.
		t.Fatalf("Figure 2 run: %v", err)
	}
}

func TestRunAsync(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(60), 9)
	if err != nil {
		t.Fatal(err)
	}
	wake := dutycycle.NewUniform(d.G.N(), 10, 3, 0)
	in := core.Async(d.G, d.Source, wake, 0)
	rep, sched, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("async localized run incomplete")
	}
	if err := sched.Validate(in); err != nil {
		t.Fatalf("async schedule invalid: %v", err)
	}
}

// Property: on random paper-style deployments the localized scheme always
// completes without collisions (the 2-hop rule guarantees conflict-freedom)
// and can transmit more than one relay per slot (parallelism actually
// happens).
func TestQuickLocalizedSound(t *testing.T) {
	sawParallel := false
	f := func(seed uint64) bool {
		cfg := topology.Config{N: 50, AreaSide: 35, Radius: 10, MaxRetries: 60}
		d, err := topology.Generate(cfg, seed)
		if err != nil {
			return true
		}
		in := core.Sync(d.G, d.Source)
		rep, sched, err := Run(in)
		if err != nil {
			return false
		}
		if !rep.Completed || len(rep.Collisions) != 0 {
			return false
		}
		for _, adv := range sched.Advances {
			if len(adv.Senders) > 1 {
				sawParallel = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	if !sawParallel {
		t.Fatal("localized scheme never transmitted two relays in one slot across 20 deployments")
	}
}

// The localized scheme is online and local, so it may lose rounds to the
// centralized E-model — but it must not be catastrophically worse.
func TestLocalizedVsCentralized(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		d, err := topology.Generate(topology.PaperConfig(100), seed)
		if err != nil {
			t.Fatal(err)
		}
		in := core.Sync(d.G, d.Source)
		rep, _, err := Run(in)
		if err != nil {
			t.Fatal(err)
		}
		em, err := core.NewEModel(0).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Latency() > 3*em.Schedule.Latency()+3 {
			t.Fatalf("seed %d: localized %d vs centralized %d — too far off",
				seed, rep.Latency(), em.Schedule.Latency())
		}
	}
}
