package interference

import (
	"math"
	"strings"
	"testing"

	"mlbs/internal/bitset"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/rng"
	"mlbs/internal/topology"
)

func TestSINRParamsValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		p    *SINRParams
		n    int
		ok   bool
	}{
		{"nil", nil, 5, true},
		{"minimal", &SINRParams{Alpha: 2, Beta: 1}, 5, true},
		{"full", &SINRParams{Alpha: 3, Beta: 2, Noise: 0.1, Power: []float64{1, 2, 3, 4, 5}}, 5, true},
		{"zero-alpha", &SINRParams{Alpha: 0, Beta: 1}, 5, true},
		{"nan-alpha", &SINRParams{Alpha: nan, Beta: 1}, 5, false},
		{"inf-alpha", &SINRParams{Alpha: inf, Beta: 1}, 5, false},
		{"neg-alpha", &SINRParams{Alpha: -1, Beta: 1}, 5, false},
		{"zero-beta", &SINRParams{Alpha: 2, Beta: 0}, 5, false},
		{"neg-beta", &SINRParams{Alpha: 2, Beta: -2}, 5, false},
		{"nan-beta", &SINRParams{Alpha: 2, Beta: nan}, 5, false},
		{"inf-beta", &SINRParams{Alpha: 2, Beta: inf}, 5, false},
		{"neg-noise", &SINRParams{Alpha: 2, Beta: 1, Noise: -0.1}, 5, false},
		{"nan-noise", &SINRParams{Alpha: 2, Beta: 1, Noise: nan}, 5, false},
		{"power-len", &SINRParams{Alpha: 2, Beta: 1, Power: []float64{1, 1}}, 5, false},
		{"zero-power", &SINRParams{Alpha: 2, Beta: 1, Power: []float64{1, 0, 1, 1, 1}}, 5, false},
		{"neg-power", &SINRParams{Alpha: 2, Beta: 1, Power: []float64{1, -3, 1, 1, 1}}, 5, false},
		{"nan-power", &SINRParams{Alpha: 2, Beta: 1, Power: []float64{1, nan, 1, 1, 1}}, 5, false},
		{"inf-power", &SINRParams{Alpha: 2, Beta: 1, Power: []float64{1, inf, 1, 1, 1}}, 5, false},
	}
	for _, c := range cases {
		err := c.p.Validate(c.n)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid params accepted", c.name)
		}
		if err != nil && !strings.Contains(err.Error(), "interference:") {
			t.Errorf("%s: error %q missing package prefix", c.name, err)
		}
	}
}

func TestSINRParamsEqualClone(t *testing.T) {
	p := &SINRParams{Alpha: 3, Beta: 2, Noise: 0.5, Power: []float64{1, 2}}
	q := p.Clone()
	if !p.Equal(q) || !q.Equal(p) {
		t.Fatal("clone not equal")
	}
	q.Power[0] = 9
	if p.Equal(q) {
		t.Fatal("clone shares power backing")
	}
	if !(*SINRParams)(nil).Equal(nil) {
		t.Fatal("nil must equal nil")
	}
	if p.Equal(nil) || (*SINRParams)(nil).Equal(p) {
		t.Fatal("nil must equal only nil")
	}
	if (*SINRParams)(nil).Clone() != nil {
		t.Fatal("nil clone not nil")
	}
}

// legacyConflict is the historic inline predicate every call site used to
// carry: u and v conflict iff they share an uncovered neighbor.
func legacyConflict(g *graph.Graph, w bitset.Set, u, v graph.NodeID) bool {
	return g.Nbr(u).IntersectsDifference(g.Nbr(v), w)
}

// TestGraphOracleMatchesLegacy is the property test pinning the tentpole's
// bit-identity claim: on random paper deployments with random coverage
// sets, every GraphOracle verdict must equal the legacy inline logic.
func TestGraphOracleMatchesLegacy(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		dep, err := topology.Generate(topology.PaperConfig(60), seed)
		if err != nil {
			t.Fatal(err)
		}
		g := dep.G
		n := g.N()
		src := rng.New(seed * 77)
		var b Binder
		o := b.Bind(g, nil)
		if o.Name() != "graph" || !o.Pairwise() || !o.SoloDecodes() {
			t.Fatalf("nil params bound %q pairwise=%v solo=%v", o.Name(), o.Pairwise(), o.SoloDecodes())
		}
		for trial := 0; trial < 50; trial++ {
			w := bitset.New(n)
			w.Add(dep.Source)
			for u := 0; u < n; u++ {
				if src.Intn(3) == 0 {
					w.Add(u)
				}
			}
			set := make([]graph.NodeID, 0, 8)
			for len(set) < 6 {
				set = append(set, src.Intn(n))
			}
			for i, u := range set {
				for _, v := range set[i+1:] {
					want := u != v && legacyConflict(g, w, u, v)
					if got := o.Conflict(w, u, v); got != want {
						t.Fatalf("seed %d: Conflict(%d,%d) = %v, legacy %v", seed, u, v, got, want)
					}
				}
			}
			// ConflictFree ≡ pairwise legacy; CanJoin ≡ member-loop legacy.
			wantFree := true
			for i := 0; i < len(set) && wantFree; i++ {
				for j := i + 1; j < len(set); j++ {
					if set[i] != set[j] && legacyConflict(g, w, set[i], set[j]) {
						wantFree = false
						break
					}
				}
			}
			if got := o.ConflictFree(w, set); got != wantFree {
				t.Fatalf("seed %d: ConflictFree(%v) = %v, legacy %v", seed, set, got, wantFree)
			}
			u := graph.NodeID(src.Intn(n))
			wantJoin := true
			for _, v := range set {
				if u != v && legacyConflict(g, w, u, v) {
					wantJoin = false
					break
				}
			}
			if got := o.CanJoin(w, set, u); got != wantJoin {
				t.Fatalf("seed %d: CanJoin(%v, %d) = %v, legacy %v", seed, set, u, got, wantJoin)
			}
		}
	}
}

func TestGraphOracleOutcome(t *testing.T) {
	// Path 0—1—2 plus 1—3: receiver 3 decodes a lone neighbor frame, and
	// collides when 1's frame meets another; non-neighbors never deliver.
	g := graph.NewBuilder(4, nil).AddEdge(0, 1).AddEdge(1, 2).AddEdge(1, 3).Build()
	var b Binder
	o := b.Bind(g, nil)
	if got, ok := o.Outcome(3, []graph.NodeID{1}); !ok || got != 1 {
		t.Fatalf("lone neighbor frame: got %d, %v", got, ok)
	}
	if _, ok := o.Outcome(3, []graph.NodeID{0, 2}); ok {
		t.Fatal("non-neighbors decoded")
	}
	if got, ok := o.Outcome(3, []graph.NodeID{0, 1, 2}); !ok || got != 1 {
		t.Fatalf("non-neighbors must not interfere under the protocol model: %d, %v", got, ok)
	}
	if got, ok := o.Outcome(2, []graph.NodeID{1, 3}); !ok || got != 1 {
		t.Fatalf("3 is not a neighbor of 2, so 1's frame is clean: %d, %v", got, ok)
	}
}

// captureGraph builds the canonical capture fixture: source 0 above the
// axis, relays 1 at (1,0) and 2 at (-1,0) equidistant from receiver 3 at
// the origin. Node 1 shouts at power 100; under α=2, β=2 its frame
// captures at node 3 over node 2's concurrent equal-distance one.
func captureGraph() (*graph.Graph, *SINRParams) {
	pos := []geom.Point{{X: 0, Y: 1}, {X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 0}}
	g := graph.NewBuilder(4, pos).
		AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 3).AddEdge(2, 3).
		Build()
	p := &SINRParams{Alpha: 2, Beta: 2, Power: []float64{1, 100, 1, 1}}
	return g, p
}

func TestSINRCapture(t *testing.T) {
	g, p := captureGraph()
	var b Binder
	o := b.Bind(g, p)
	if o.Name() != "sinr" || o.Pairwise() || o.SoloDecodes() {
		t.Fatalf("SINR binding reported %q pairwise=%v solo=%v", o.Name(), o.Pairwise(), o.SoloDecodes())
	}
	w := bitset.New(4)
	w.Add(0)
	w.Add(1)
	w.Add(2)

	// At node 3: pw(1) = 100/1 = 100, pw(2) = 1/1 = 1. 100 ≥ 2·1: the
	// strongest sender decodes despite a concurrent weaker one.
	got, ok := o.Outcome(3, []graph.NodeID{1, 2})
	if !ok || got != 1 {
		t.Fatalf("capture failed: decoded %d, ok=%v", got, ok)
	}
	if !o.ConflictFree(w, []graph.NodeID{1, 2}) {
		t.Fatal("capturing sender set rejected")
	}
	// The same set is graph-illegal: 1 and 2 share uncovered neighbor 3.
	if b.Bind(g, nil).ConflictFree(w, []graph.NodeID{1, 2}) {
		t.Fatal("protocol model accepted the conflicting pair")
	}

	// Equal powers: neither frame clears β against the other, collision.
	q := &SINRParams{Alpha: 2, Beta: 2}
	o2 := b.Bind(g, q)
	if _, ok := o2.Outcome(3, []graph.NodeID{1, 2}); ok {
		t.Fatal("equal-power concurrent frames decoded")
	}
	if o2.ConflictFree(w, []graph.NodeID{1, 2}) {
		t.Fatal("equal-power conflicting set accepted")
	}
	// But each sender alone decodes (Noise = 0: lone frames always clear).
	for _, u := range []graph.NodeID{1, 2} {
		if !o2.ConflictFree(w, []graph.NodeID{u}) {
			t.Fatalf("lone sender %d rejected under zero noise", u)
		}
	}
}

func TestSINRNoiseFloorStrandsLoneSender(t *testing.T) {
	// Two nodes 3 apart, power 1, α=2: received power 1/9. With β=1 and
	// noise 0.2 the lone frame misses the floor (1/9 < 0.2); with noise
	// 0.01 it clears.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}}
	g := graph.NewBuilder(2, pos).AddEdge(0, 1).Build()
	var b Binder
	w := bitset.New(2)
	w.Add(0)
	if b.Bind(g, &SINRParams{Alpha: 2, Beta: 1, Noise: 0.2}).ConflictFree(w, []graph.NodeID{0}) {
		t.Fatal("frame below the noise floor decoded")
	}
	if !b.Bind(g, &SINRParams{Alpha: 2, Beta: 1, Noise: 0.01}).ConflictFree(w, []graph.NodeID{0}) {
		t.Fatal("clear frame rejected")
	}
}

func TestSINRZeroDistance(t *testing.T) {
	// Co-located sender and receiver: received power is +Inf, which must
	// decode (Inf ≥ β·interf) without NaN poisoning the comparison.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 5, Y: 0}}
	g := graph.NewBuilder(3, pos).AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 2).Build()
	var b Binder
	o := b.Bind(g, &SINRParams{Alpha: 2, Beta: 2, Noise: 0.1})
	if got, ok := o.Outcome(1, []graph.NodeID{0, 2}); !ok || got != 0 {
		t.Fatalf("infinite-power frame lost: %d, %v", got, ok)
	}
}

func TestSINRInterferenceFromNonNeighbor(t *testing.T) {
	// 0—1 is the only edge reaching receiver 1, but node 2 — NOT a graph
	// neighbor of 1 (edge pruned by the builder? no: just no edge) — fires
	// concurrently nearby. Protocol model ignores it; SINR must not.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1.5, Y: 0}, {X: 2.5, Y: 0}}
	g := graph.NewBuilder(4, pos).AddEdge(0, 1).AddEdge(2, 3).AddEdge(0, 2).Build()
	var b Binder
	o := b.Bind(g, &SINRParams{Alpha: 2, Beta: 1})
	// pw(0→1) = 1, interference from 2 at distance 0.5: 1/0.25 = 4.
	// 1 < 1·4 — the frame is jammed by a transmitter outside 1's adjacency.
	if _, ok := o.Outcome(1, []graph.NodeID{0, 2}); ok {
		t.Fatal("non-neighbor interference ignored")
	}
	if got, ok := o.Outcome(1, []graph.NodeID{0}); !ok || got != 0 {
		t.Fatalf("lone frame lost: %d, %v", got, ok)
	}
}

func TestSINRConflictFreeScratchUnwinds(t *testing.T) {
	// Back-to-back ConflictFree calls on overlapping receiver sets must not
	// leak `seen` marks between calls.
	g, p := captureGraph()
	var b Binder
	o := b.Bind(g, p)
	w := bitset.New(4)
	w.Add(0)
	w.Add(1)
	w.Add(2)
	for i := 0; i < 3; i++ {
		if !o.ConflictFree(w, []graph.NodeID{1, 2}) {
			t.Fatalf("call %d: verdict changed across repeats", i)
		}
	}
}

func TestOracleWarmAllocs(t *testing.T) {
	dep, err := topology.Generate(topology.PaperConfig(80), 3)
	if err != nil {
		t.Fatal(err)
	}
	g := dep.G
	n := g.N()
	w := bitset.New(n)
	w.Add(dep.Source)
	for _, v := range g.Adj(dep.Source) {
		w.Add(v)
	}
	set := append([]graph.NodeID(nil), g.Adj(dep.Source)...)
	if len(set) > 4 {
		set = set[:4]
	}
	sinr := &SINRParams{Alpha: 3, Beta: 0.5}
	var b Binder
	for _, model := range []*SINRParams{nil, sinr} {
		o := b.Bind(g, model)
		o.ConflictFree(w, set) // warm the scratch
		allocs := testing.AllocsPerRun(100, func() {
			b.Bind(g, model)
			o.ConflictFree(w, set)
			o.CanJoin(w, set[:1], set[len(set)-1])
			o.Outcome(set[0], set)
		})
		if allocs != 0 {
			t.Errorf("%s oracle: %v allocs/op on the warm path, want 0", o.Name(), allocs)
		}
	}
}
