// Package interference centralizes the interference model behind one
// oracle interface. The paper's conflict predicate — two concurrent
// relays sharing an uncovered neighbor collide there (Eq. 1 constraint 3)
// — used to be re-derived inline by the search's move generation, by
// Schedule.Validate, by the sim replayer's per-slot physics, by
// reliability repair's class packing and by churn replan classification;
// any one copy could silently drift from the others. Every one of those
// sites now consults an Oracle instead.
//
// Two backends exist:
//
//   - GraphOracle — the paper's protocol/UDG model, bit-identical to the
//     historic inline logic (same predicate, same iteration order).
//   - SINROracle — the physical model of Halldórsson & Mitra ("Towards
//     Tight Bounds for Local Broadcasting"): a receiver decodes the
//     strongest in-range sender iff its received power clears β against
//     ambient noise plus the summed interference of every other
//     concurrent same-channel sender, wherever in the plane that sender
//     sits. Graph adjacency still gates *reach* (who can ever deliver the
//     message); SINR gates *interference* — which is exactly what makes a
//     graph-legal sender set SINR-illegal and vice versa (capture).
//
// SINR conflict-freedom is neither pairwise-decomposable nor hereditary:
// adding a sender can rescue a receiver (capture) or doom one
// (interference). Callers that enumerate over the pairwise Conflict
// relation must therefore re-check emitted sets with ConflictFree and
// treat the enumeration as heuristic (Oracle.Pairwise reports which
// regime applies).
package interference

import (
	"fmt"
	"math"

	"mlbs/internal/bitset"
	"mlbs/internal/graph"
)

// Oracle is the interference model consulted by every conflict
// computation in the system. w is always the coverage *before* the slot
// under consideration; senders fire concurrently on one channel.
//
// An Oracle bound by a Binder holds per-call scratch state and is NOT
// safe for concurrent use — each engine, replayer or validator owns its
// own Binder, mirroring the Scratch/Engine discipline.
type Oracle interface {
	// Name identifies the backend: "graph" or "sinr".
	Name() string
	// Pairwise reports whether ConflictFree decomposes into pairwise
	// Conflict checks. True for the protocol model; false for SINR, where
	// enumeration over the pairwise relation is only a heuristic and any
	// emitted set must be re-checked with ConflictFree.
	Pairwise() bool
	// Conflict reports whether candidates u and v may not fire together
	// under coverage w (u never conflicts with itself).
	Conflict(w bitset.Set, u, v graph.NodeID) bool
	// CanJoin reports whether u may join the sender set members without
	// breaking its admissibility under coverage w — the greedy
	// partition's class-join test. An empty members set asks whether u
	// can fire alone.
	CanJoin(w bitset.Set, members []graph.NodeID, u graph.NodeID) bool
	// ConflictFree reports whether the sender set is admissible as one
	// (slot, channel) advance under coverage w: every uncovered neighbor
	// of a sender decodes some sender.
	ConflictFree(w bitset.Set, senders []graph.NodeID) bool
	// SoloDecodes reports the protocol-model receiver rule — exactly one
	// arriving frame decodes, two or more collide — letting the replayer
	// keep its counting fast path. False selects the Outcome-based
	// resolution.
	SoloDecodes() bool
	// Outcome resolves one receiver of one (slot, channel): senders is
	// every concurrent same-channel transmitter whose signal physically
	// reaches v's location (the caller applies per-link loss filtering).
	// It returns the sender v decodes, or ok=false when the frames are
	// undecodable (a collision at an uncovered receiver).
	Outcome(v graph.NodeID, senders []graph.NodeID) (graph.NodeID, bool)
}

// SINRParams selects the physical interference model and carries its
// constants. The zero value is invalid; a nil *SINRParams means the
// protocol-graph model.
type SINRParams struct {
	// Alpha is the path-loss exponent: received power decays as d^-α.
	// α = 0 (legal) makes reception distance-independent.
	Alpha float64 `json:"alpha"`
	// Beta is the SINR decoding threshold (> 0): the decode candidate's
	// power must be ≥ β·(Noise + interference).
	Beta float64 `json:"beta"`
	// Noise is the ambient noise floor (≥ 0). The default 0 guarantees a
	// lone sender always decodes at any distance, so every protocol-model
	// schedule shape stays reachable; a positive floor can strand
	// receivers entirely.
	Noise float64 `json:"noise,omitempty"`
	// Power holds per-node transmit powers (> 0). Empty means uniform
	// power 1 for every node; otherwise its length must equal the node
	// count.
	Power []float64 `json:"power,omitempty"`
}

// Validate rejects non-finite or out-of-range parameters for an n-node
// instance — the guard every decoder and request path routes through, so
// a degenerate oracle (NaN comparisons, negative powers) can never be
// constructed from wire data.
func (p *SINRParams) Validate(n int) error {
	if p == nil {
		return nil
	}
	if math.IsNaN(p.Alpha) || math.IsInf(p.Alpha, 0) || p.Alpha < 0 {
		return fmt.Errorf("interference: path-loss exponent α = %v must be finite and ≥ 0", p.Alpha)
	}
	if math.IsNaN(p.Beta) || math.IsInf(p.Beta, 0) || p.Beta <= 0 {
		return fmt.Errorf("interference: SINR threshold β = %v must be finite and > 0", p.Beta)
	}
	if math.IsNaN(p.Noise) || math.IsInf(p.Noise, 0) || p.Noise < 0 {
		return fmt.Errorf("interference: noise floor %v must be finite and ≥ 0", p.Noise)
	}
	if len(p.Power) != 0 && len(p.Power) != n {
		return fmt.Errorf("interference: %d per-node powers for %d nodes", len(p.Power), n)
	}
	for u, pw := range p.Power {
		if math.IsNaN(pw) || math.IsInf(pw, 0) || pw <= 0 {
			return fmt.Errorf("interference: node %d transmit power %v must be finite and > 0", u, pw)
		}
	}
	return nil
}

// PowerOf returns node u's transmit power (1 when Power is uniform).
//
//mlbs:hotpath -- read once per (sender, receiver) pair in the SINR inner loops
func (p *SINRParams) PowerOf(u graph.NodeID) float64 {
	if len(p.Power) == 0 {
		return 1
	}
	return p.Power[u]
}

// Equal reports parameter-wise equality (nil equals only nil).
func (p *SINRParams) Equal(q *SINRParams) bool {
	if p == nil || q == nil {
		return p == q
	}
	if p.Alpha != q.Alpha || p.Beta != q.Beta || p.Noise != q.Noise || len(p.Power) != len(q.Power) {
		return false
	}
	for i, pw := range p.Power {
		if pw != q.Power[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent deep copy (nil in, nil out).
func (p *SINRParams) Clone() *SINRParams {
	if p == nil {
		return nil
	}
	out := &SINRParams{Alpha: p.Alpha, Beta: p.Beta, Noise: p.Noise}
	if len(p.Power) > 0 {
		out.Power = append([]float64(nil), p.Power...)
	}
	return out
}

// GraphOracle is the paper's protocol-model backend: u and v conflict iff
// they share an uncovered neighbor, a set is admissible iff it is
// pairwise conflict-free, and a receiver decodes iff exactly one frame
// arrives. Bit-identical to the historic inline predicates.
type GraphOracle struct {
	g *graph.Graph
}

// Reset rebinds the oracle to a graph; allocation-free.
func (o *GraphOracle) Reset(g *graph.Graph) { o.g = g }

// Name implements Oracle.
func (o *GraphOracle) Name() string { return "graph" }

// Pairwise implements Oracle: protocol conflicts decompose pairwise.
func (o *GraphOracle) Pairwise() bool { return true }

// SoloDecodes implements Oracle: one frame decodes, more collide.
func (o *GraphOracle) SoloDecodes() bool { return true }

// Conflict implements Oracle: N(u) ∩ N(v) ∩ W̄ ≠ ∅.
//
//mlbs:hotpath -- the inner predicate of greedy labeling and BK compat building
func (o *GraphOracle) Conflict(w bitset.Set, u, v graph.NodeID) bool {
	if u == v {
		return false
	}
	return o.g.Nbr(u).IntersectsDifference(o.g.Nbr(v), w)
}

// CanJoin implements Oracle with exactly the legacy greedy-labeling loop:
// u joins iff it conflicts with no current member.
//
//mlbs:hotpath -- Algorithm 1's class-join test, run once per (candidate, class)
func (o *GraphOracle) CanJoin(w bitset.Set, members []graph.NodeID, u graph.NodeID) bool {
	for _, v := range members {
		if o.Conflict(w, u, v) {
			return false
		}
	}
	return true
}

// ConflictFree implements Oracle: pairwise over the set, identical to the
// historic color.ConflictFree double loop.
//
//mlbs:hotpath -- the per-advance admissibility check of Validate, replan and improve
func (o *GraphOracle) ConflictFree(w bitset.Set, senders []graph.NodeID) bool {
	for i := 0; i < len(senders); i++ {
		for j := i + 1; j < len(senders); j++ {
			if o.Conflict(w, senders[i], senders[j]) {
				return false
			}
		}
	}
	return true
}

// Outcome implements Oracle: v decodes iff exactly one of the senders is
// a graph neighbor. The replayer's SoloDecodes fast path normally answers
// this by frame counting; Outcome exists so the two backends stay
// interchangeable.
func (o *GraphOracle) Outcome(v graph.NodeID, senders []graph.NodeID) (graph.NodeID, bool) {
	got := graph.NodeID(-1)
	nbr := o.g.Nbr(v)
	for _, u := range senders {
		if !nbr.Has(u) {
			continue
		}
		if got >= 0 {
			return -1, false
		}
		got = u
	}
	return got, got >= 0
}

// SINROracle is the physical-model backend. Reach is still the protocol
// graph (only a graph neighbor can deliver the message — the deployment's
// link layer), but admissibility is physical: receiver v decodes its
// strongest graph-neighbor sender u* iff
//
//	pw(u*, v) ≥ β · (Noise + Σ_{x ≠ u*} pw(x, v))
//
// where pw(x, v) = P(x) / d(x, v)^α and the interference sum runs over
// EVERY other concurrent same-channel sender, graph neighbor or not.
// Received powers are computed on the fly from node positions — no n²
// matrix — so binding the oracle costs nothing and warm calls are
// allocation-free.
type SINROracle struct {
	g *graph.Graph
	p *SINRParams

	seen    bitset.Set     // receivers already resolved in this ConflictFree call
	touched []graph.NodeID // members of seen, for O(touched) unwinding
	join    []graph.NodeID // CanJoin's members+u buffer
	pair    [2]graph.NodeID
}

// Reset rebinds the oracle to a graph and parameter set; allocation-free
// once the receiver-dedup bitset has grown to the node count.
func (o *SINROracle) Reset(g *graph.Graph, p *SINRParams) {
	o.g, o.p = g, p
	if n := g.N(); o.seen.Capacity() < n {
		o.seen = bitset.New(n)
	} else {
		o.seen.Clear()
	}
	o.touched = o.touched[:0]
}

// Name implements Oracle.
func (o *SINROracle) Name() string { return "sinr" }

// Pairwise implements Oracle: capture makes SINR admissibility
// non-decomposable, so pairwise enumeration is only heuristic.
func (o *SINROracle) Pairwise() bool { return false }

// SoloDecodes implements Oracle: even a lone frame is subject to the
// noise floor, and concurrent frames may capture — frame counting cannot
// resolve a receiver.
func (o *SINROracle) SoloDecodes() bool { return false }

// pw returns the power of x's transmission as received at v's position:
// P(x)/d^α, +Inf at zero distance (the limit of the law; co-located
// nodes are degenerate but must not divide by zero).
//
//mlbs:hotpath -- evaluated per (sender, receiver) pair in every admissibility check
func (o *SINROracle) pw(x, v graph.NodeID) float64 {
	px, pv := o.g.Pos(x), o.g.Pos(v)
	dx, dy := px.X-pv.X, px.Y-pv.Y
	d2 := dx*dx + dy*dy
	if d2 == 0 {
		return math.Inf(1)
	}
	// d^α = (d²)^(α/2); one Pow, no Sqrt.
	return o.p.PowerOf(x) / math.Pow(d2, 0.5*o.p.Alpha)
}

// Outcome implements Oracle: the decode candidate is v's strongest
// graph-neighbor sender (ties broken toward the earliest in senders,
// which class buffers keep sorted ascending — deterministic), and it
// decodes iff its power clears β against noise plus the interference of
// every other sender. The comparison is multiplicative, so Noise = 0
// never divides by zero and a lone sender always decodes under it.
//
//mlbs:hotpath -- the SINR receiver resolution, run per uncovered receiver per advance
func (o *SINROracle) Outcome(v graph.NodeID, senders []graph.NodeID) (graph.NodeID, bool) {
	best := graph.NodeID(-1)
	bestPw := 0.0
	nbr := o.g.Nbr(v)
	for _, x := range senders {
		if !nbr.Has(x) {
			continue
		}
		if pwx := o.pw(x, v); best < 0 || pwx > bestPw {
			best, bestPw = x, pwx
		}
	}
	if best < 0 {
		return -1, false
	}
	// Second pass so an infinite best power never feeds Inf − Inf = NaN
	// through a running total.
	interf := o.p.Noise
	for _, x := range senders {
		if x != best {
			interf += o.pw(x, v)
		}
	}
	return best, bestPw >= o.p.Beta*interf
}

// ConflictFree implements Oracle: the set is admissible iff every
// uncovered neighbor of a sender decodes some sender — the same receiver
// set N(senders) − w whose coverage Schedule.Validate attributes, so
// admissible advances are exactly the replay-collision-free ones.
//
//mlbs:hotpath -- per-advance admissibility; seen/touched make repeat receivers O(1)
func (o *SINROracle) ConflictFree(w bitset.Set, senders []graph.NodeID) bool {
	ok := true
	for _, u := range senders {
		for _, v := range o.g.Adj(u) {
			if w.Has(v) || o.seen.Has(v) {
				continue
			}
			o.seen.Add(v)
			o.touched = append(o.touched, v)
			if _, dec := o.Outcome(v, senders); !dec {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
	}
	for _, v := range o.touched {
		o.seen.Remove(v)
	}
	o.touched = o.touched[:0]
	return ok
}

// CanJoin implements Oracle set-level: members ∪ {u} must be admissible
// as a whole — joining u may doom an existing member's receiver
// (interference) even when no pairwise conflict exists.
//
//mlbs:hotpath -- greedy class-join test; the join buffer is reused across calls
func (o *SINROracle) CanJoin(w bitset.Set, members []graph.NodeID, u graph.NodeID) bool {
	o.join = append(o.join[:0], members...)
	o.join = append(o.join, u)
	return o.ConflictFree(w, o.join)
}

// Conflict implements Oracle pairwise: {u, v} inadmissible as a pair.
// Under capture this is NOT inherited by supersets — enumerators over
// this relation must re-check emitted sets with ConflictFree.
//
//mlbs:hotpath -- BK compat building on SINR instances
func (o *SINROracle) Conflict(w bitset.Set, u, v graph.NodeID) bool {
	if u == v {
		return false
	}
	o.pair[0], o.pair[1] = u, v
	return !o.ConflictFree(w, o.pair[:])
}

// Binder owns one preallocated oracle of each backend and binds the one
// an instance selects. Because Bind returns a pointer into the Binder,
// a long-lived holder (engine, replayer, improver, replanner) rebinds on
// reset without allocating — the discipline the warm-path alloc pins
// depend on.
type Binder struct {
	graph GraphOracle
	sinr  SINROracle
}

// Bind rebinds the backend selected by p (nil = protocol graph) to g and
// returns it. The returned Oracle aliases the Binder and is valid until
// the next Bind.
func (b *Binder) Bind(g *graph.Graph, p *SINRParams) Oracle {
	if p == nil {
		b.graph.Reset(g)
		return &b.graph
	}
	b.sinr.Reset(g, p)
	return &b.sinr
}
