package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FormatTrace renders a snapshot as an indented span tree with start
// offsets, durations and attributes — the human form mlb-load -trace
// prints. It works on snapshots decoded from the /debug/traces JSON as
// well as freshly finished ones (attribute values may arrive as float64
// after a JSON round trip; they render the same).
func FormatTrace(s *TraceSnapshot) string {
	if s == nil {
		return "(no trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  digest=%s  %v  (%d spans)",
		s.Endpoint, shortDigest(s.Digest), time.Duration(s.DurationNs), s.Spans)
	if s.Error != "" {
		fmt.Fprintf(&b, "  error=%q", s.Error)
	}
	b.WriteByte('\n')
	formatSpan(&b, &s.Root, "")
	return b.String()
}

func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12] + "…"
	}
	if d == "" {
		return "-"
	}
	return d
}

func formatSpan(b *strings.Builder, sp *SpanSnapshot, indent string) {
	for i := range sp.Children {
		c := &sp.Children[i]
		branch, next := "├─ ", "│  "
		if i == len(sp.Children)-1 {
			branch, next = "└─ ", "   "
		}
		fmt.Fprintf(b, "%s%s%-12s +%-10v %v%s\n",
			indent, branch, c.Name, time.Duration(c.StartNs), time.Duration(c.DurationNs), formatAttrs(c.Attrs))
		formatSpan(b, c, indent+next)
	}
}

func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		v := attrs[k]
		// JSON decoding turns integer attributes into float64; render
		// whole numbers without the trailing ".0" either way.
		if f, ok := v.(float64); ok && f == float64(int64(f)) {
			v = int64(f)
		}
		fmt.Fprintf(&b, "  %s=%v", k, v)
	}
	return b.String()
}
