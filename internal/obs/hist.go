package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultLatencyEdgesNs are the default finite bucket upper bounds of a
// latency Histogram: one per power-of-two octave from 1.024µs to ~68.7s.
// Exported so every emitter (per-endpoint histograms, the service's
// hit/miss coarsening) agrees on the edge set.
func DefaultLatencyEdgesNs() []int64 {
	edges := make([]int64, 0, 27)
	for e := 10; e <= 36; e++ {
		edges = append(edges, int64(1)<<e)
	}
	return edges
}

// Histogram is a fixed-edge, lock-free latency histogram sized for
// Prometheus export: ascending finite bucket upper bounds plus an
// overflow bucket, a running nanosecond sum and a total count. Observe is
// a binary search over ~27 edges and three atomic adds.
type Histogram struct {
	edges  []int64
	counts []atomic.Int64 // len(edges)+1; last is the overflow bucket
	sum    atomic.Int64
	n      atomic.Int64
}

// NewHistogram builds a histogram over ascending finite edges
// (nanoseconds); nil selects DefaultLatencyEdgesNs.
func NewHistogram(edges []int64) *Histogram {
	if edges == nil {
		edges = DefaultLatencyEdgesNs()
	}
	return &Histogram{edges: edges, counts: make([]atomic.Int64, len(edges)+1)}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	lo, hi := 0, len(h.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.edges[mid] < ns {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
}

// HistogramSnapshot is a point-in-time cumulative view: CumCounts[i] is
// the number of observations ≤ UppersNs[i]; Count includes the overflow
// bucket.
type HistogramSnapshot struct {
	UppersNs  []int64
	CumCounts []int64
	Count     int64
	SumNs     int64
}

// Snapshot builds the cumulative view Prometheus histograms want.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		UppersNs:  h.edges,
		CumCounts: make([]int64, len(h.edges)),
		SumNs:     h.sum.Load(),
		Count:     h.n.Load(),
	}
	var cum int64
	for i := range h.edges {
		cum += h.counts[i].Load()
		snap.CumCounts[i] = cum
	}
	return snap
}

// promFloat renders a float the way Prometheus clients conventionally do.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePromHistogram emits one histogram metric family in Prometheus text
// format: # HELP, # TYPE histogram, the cumulative _bucket series with
// le edges in seconds, the terminal le="+Inf" bucket, _sum (seconds) and
// _count. labels, when non-empty, is a rendered label list without braces
// (`endpoint="/v1/plan"`) merged into every series.
func WritePromHistogram(w io.Writer, name, help, labels string, s HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	WritePromHistogramSeries(w, name, labels, s)
}

// WritePromHistogramSeries emits only the series lines of one histogram —
// no # HELP/# TYPE header — so several label sets of the same family
// (e.g. one per endpoint) can share a single header written once.
func WritePromHistogramSeries(w io.Writer, name, labels string, s HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, upper := range s.UppersNs {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			name, labels, sep, promFloat(float64(upper)/1e9), s.CumCounts[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, promFloat(float64(s.SumNs)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

// WritePromCounter emits one unlabeled counter with HELP/TYPE lines.
func WritePromCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// WritePromGauge emits one unlabeled gauge with HELP/TYPE lines.
func WritePromGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}
