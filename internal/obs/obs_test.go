package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("/v1/plan")
	root := tr.Root()
	rs := root.Child("resolve")
	rs.SetInt("nodes", 150)
	rs.End()
	cs := root.Child("cache")
	cs.SetBool("hit", false)
	ss := cs.Child("search")
	ss.SetStr("scheduler", "G-OPT")
	ss.SetInt("expanded", 1234)
	ss.SetFloat("frac", 0.5)
	ss.End()
	cs.End()
	snap := tr.Finish("abc123", "")
	if snap == nil {
		t.Fatal("Finish returned nil for a live trace")
	}
	if snap.Endpoint != "/v1/plan" || snap.Digest != "abc123" || snap.Spans != 4 {
		t.Fatalf("snapshot header: %+v", snap)
	}
	if len(snap.Root.Children) != 2 {
		t.Fatalf("root children: %d", len(snap.Root.Children))
	}
	if snap.Root.Children[0].Name != "resolve" || snap.Root.Children[1].Name != "cache" {
		t.Fatalf("child order: %+v", snap.Root.Children)
	}
	if snap.Root.Children[0].Attrs["nodes"] != int64(150) {
		t.Fatalf("int attr: %v", snap.Root.Children[0].Attrs)
	}
	cache := snap.Root.Children[1]
	if cache.Attrs["hit"] != false {
		t.Fatalf("bool attr: %v", cache.Attrs)
	}
	if len(cache.Children) != 1 || cache.Children[0].Name != "search" {
		t.Fatalf("nesting lost: %+v", cache)
	}
	search := cache.Children[0]
	if search.Attrs["scheduler"] != "G-OPT" || search.Attrs["expanded"] != int64(1234) || search.Attrs["frac"] != 0.5 {
		t.Fatalf("search attrs: %v", search.Attrs)
	}
	if search.StartNs < cache.StartNs || search.DurationNs < 0 {
		t.Fatalf("span timing: search %d+%d, cache %d", search.StartNs, search.DurationNs, cache.StartNs)
	}
	// Finishing twice returns nil, and spans on a finished trace no-op.
	if tr.Finish("x", "") != nil {
		t.Fatal("second Finish returned a snapshot")
	}
	if root.Child("late") != nil {
		t.Fatal("Child on a finished trace returned a live span")
	}
}

// TestNilTraceNoops pins the disabled path: every operation on the nil
// tracer is a no-op AND allocation-free — the property that keeps the
// service's warm-path alloc pin intact when no trace is attached.
func TestNilTraceNoops(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.Root()
		sp := root.Child("x")
		sp.SetInt("k", 1)
		sp.SetStr("s", "v")
		sp.SetBool("b", true)
		sp.End()
		if tr.Finish("d", "") != nil {
			t.Fatal("nil trace produced a snapshot")
		}
		var rec *Recorder
		rec.Record(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f/op, want 0", allocs)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carried a trace")
	}
	tr := NewTrace("x")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("context did not carry the trace")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if FromContext(context.Background()) != nil {
			t.Fatal("trace from nowhere")
		}
	})
	if allocs != 0 {
		t.Fatalf("FromContext on a bare context allocated %.1f/op", allocs)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	tr := NewTrace("/v1/plan")
	sp := tr.Root().Child("search")
	sp.SetInt("expanded", 42)
	sp.End()
	snap := tr.Finish("d1", "")
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got TraceSnapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Endpoint != snap.Endpoint || got.Spans != snap.Spans || len(got.Root.Children) != 1 {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	// The formatter accepts both the fresh and the decoded form.
	for _, s := range []*TraceSnapshot{snap, &got} {
		out := FormatTrace(s)
		if !strings.Contains(out, "search") || !strings.Contains(out, "expanded=42") {
			t.Fatalf("format output missing span/attr:\n%s", out)
		}
	}
}

func TestHistogramSnapshotAndProm(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(2 * time.Microsecond) // bucket 2048ns
	h.Observe(2 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(200 * time.Second) // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count %d", s.Count)
	}
	wantSum := (2*time.Microsecond + 2*time.Microsecond + 3*time.Millisecond + 200*time.Second).Nanoseconds()
	if s.SumNs != wantSum {
		t.Fatalf("sum %d want %d", s.SumNs, wantSum)
	}
	if last := s.CumCounts[len(s.CumCounts)-1]; last != 3 {
		t.Fatalf("finite cumulative %d, want 3 (one sample overflows)", last)
	}
	for i := 1; i < len(s.CumCounts); i++ {
		if s.CumCounts[i] < s.CumCounts[i-1] {
			t.Fatalf("cumulative counts not monotone at %d", i)
		}
	}
	var b bytes.Buffer
	WritePromHistogram(&b, "x_seconds", "help text", `endpoint="/v1/plan"`, s)
	out := b.String()
	for _, want := range []string{
		"# HELP x_seconds help text",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{endpoint="/v1/plan",le="+Inf"} 4`,
		`x_seconds_sum{endpoint="/v1/plan"}`,
		`x_seconds_count{endpoint="/v1/plan"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// Unlabeled form and the scalar helpers.
	b.Reset()
	WritePromHistogram(&b, "y_seconds", "h", "", s)
	if !strings.Contains(b.String(), `y_seconds_bucket{le="+Inf"} 4`) || !strings.Contains(b.String(), "y_seconds_sum ") {
		t.Fatalf("unlabeled prom output:\n%s", b.String())
	}
	b.Reset()
	WritePromCounter(&b, "c_total", "c", 7)
	WritePromGauge(&b, "g", "g", 9)
	if !strings.Contains(b.String(), "# TYPE c_total counter\nc_total 7") ||
		!strings.Contains(b.String(), "# TYPE g gauge\ng 9") {
		t.Fatalf("scalar prom output:\n%s", b.String())
	}
}

// TestHistogramObserveAllocs pins the metrics hot path: observing is
// allocation-free.
func TestHistogramObserveAllocs(t *testing.T) {
	h := NewHistogram(nil)
	allocs := testing.AllocsPerRun(100, func() { h.Observe(time.Millisecond) })
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f/op", allocs)
	}
}
