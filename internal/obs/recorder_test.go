package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// snap builds a minimal finished snapshot with a fixed duration.
func snap(digest string, d time.Duration) *TraceSnapshot {
	return &TraceSnapshot{
		Endpoint:   "/v1/plan",
		Digest:     digest,
		DurationNs: d.Nanoseconds(),
		Spans:      1,
		Root:       SpanSnapshot{Name: "/v1/plan", DurationNs: d.Nanoseconds()},
	}
}

func TestRecorderRecentOrderAndEviction(t *testing.T) {
	r := NewRecorder(4, 2)
	for i := 0; i < 6; i++ {
		r.Record(snap(fmt.Sprintf("d%d", i), time.Duration(i+1)*time.Millisecond))
	}
	recent, slowest := r.Snapshot()
	if len(recent) != 4 {
		t.Fatalf("recent len %d, want ring size 4", len(recent))
	}
	for i, want := range []string{"d5", "d4", "d3", "d2"} {
		if recent[i].Digest != want {
			t.Fatalf("recent[%d] = %s, want %s (newest first)", i, recent[i].Digest, want)
		}
	}
	if len(slowest) != 2 || slowest[0].Digest != "d5" || slowest[1].Digest != "d4" {
		t.Fatalf("slow board: %v", digests(slowest))
	}
	if r.Seen() != 6 {
		t.Fatalf("seen %d", r.Seen())
	}
	// d0/d1 aged out of the ring and never made the slow board.
	if r.Find("d0") != nil {
		t.Fatal("d0 should have aged out")
	}
	// d2 is still in the ring; d4 resolvable (ring), and a slow-board-only
	// entry survives ring eviction.
	if r.Find("d2") == nil || r.Find("d4") == nil {
		t.Fatal("ring lookups failed")
	}
	for i := 6; i < 10; i++ {
		r.Record(snap(fmt.Sprintf("q%d", i), time.Nanosecond))
	}
	if r.Find("d5") == nil {
		t.Fatal("slowest trace fell out despite the slow board")
	}
}

func TestRecorderSlowBoardKeepsMaxima(t *testing.T) {
	r := NewRecorder(2, 3)
	durs := []time.Duration{5, 1, 9, 3, 7, 2, 8} // ms
	for i, d := range durs {
		r.Record(snap(fmt.Sprintf("s%d", i), d*time.Millisecond))
	}
	_, slowest := r.Snapshot()
	want := []string{"s2", "s6", "s4"} // 9ms, 8ms, 7ms
	if len(slowest) != 3 {
		t.Fatalf("slow board size %d", len(slowest))
	}
	for i := range want {
		if slowest[i].Digest != want[i] {
			t.Fatalf("slow[%d] = %s, want %s; board %v", i, slowest[i].Digest, want[i], digests(slowest))
		}
	}
}

func digests(ss []*TraceSnapshot) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Digest
	}
	return out
}

// TestRecorderContention hammers one recorder from 64 goroutines while
// concurrent readers take snapshots, pinning (under -race) that snapshot
// slices are immune to later writes, that the slow board stays in
// descending order at every observation point, and that retained
// snapshots are never mutated.
func TestRecorderContention(t *testing.T) {
	const (
		writers   = 64
		perWriter = 128
	)
	r := NewRecorder(32, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: continuously snapshot, check ordering invariants, and
	// serialize what they got — marshalling every span would race with any
	// post-Record mutation.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recent, slowest := r.Snapshot()
				for i := 1; i < len(slowest); i++ {
					if slowest[i-1].DurationNs < slowest[i].DurationNs {
						t.Errorf("slow board out of order: %d < %d at %d",
							slowest[i-1].DurationNs, slowest[i].DurationNs, i)
						return
					}
				}
				for _, s := range append(recent, slowest...) {
					if _, err := json.Marshal(s); err != nil {
						t.Errorf("marshal retained snapshot: %v", err)
						return
					}
				}
			}
		}()
	}

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Deterministic duration spread so the true maxima are known.
				d := time.Duration(g*perWriter+i+1) * time.Microsecond
				tr := NewTrace("/v1/plan")
				sp := tr.Root().Child("search")
				sp.SetInt("expanded", int64(i))
				sp.End()
				s := tr.Finish(fmt.Sprintf("w%d-%d", g, i), "")
				s.DurationNs = d.Nanoseconds() // fix duration for determinism
				r.Record(s)
			}
		}(g)
	}

	// Let the writers drain, then release the readers and join everyone.
	for r.Seen() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := r.Seen(); got != writers*perWriter {
		t.Fatalf("seen %d, want %d", got, writers*perWriter)
	}
	recent, slowest := r.Snapshot()
	if len(recent) != 32 {
		t.Fatalf("recent %d, want full ring", len(recent))
	}
	if len(slowest) != 8 {
		t.Fatalf("slow board %d, want 8", len(slowest))
	}
	// The 8 slowest durations across all writers are the 8 largest indices.
	total := int64(writers * perWriter)
	for i, s := range slowest {
		want := (total - int64(i)) * int64(time.Microsecond)
		if s.DurationNs != want {
			t.Fatalf("slow[%d] = %dns, want %dns; board %v", i, s.DurationNs, want, digests(slowest))
		}
	}
	// A snapshot taken now must not change when more traces arrive.
	before, _ := json.Marshal(recent[0])
	for i := 0; i < 64; i++ {
		r.Record(snap(fmt.Sprintf("late%d", i), time.Hour))
	}
	after, _ := json.Marshal(recent[0])
	if string(before) != string(after) {
		t.Fatal("snapshot mutated by later Records")
	}
	if len(recent) != 32 || recent[0] == nil {
		t.Fatal("snapshot slice changed under the caller")
	}
}
