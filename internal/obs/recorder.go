package obs

import "sync"

// Default recorder bounds: the flight recorder's whole memory footprint
// is (DefaultRecent + DefaultSlowest) trace snapshots, each a few KB for
// a typical ten-span request — well under a megabyte at the defaults.
const (
	DefaultRecent  = 64
	DefaultSlowest = 16
)

// Recorder is the flight recorder: a ring buffer of the last N finished
// traces plus a sorted board of the slowest N, both bounded at
// construction. Record is O(1) amortized (ring write + bounded insertion
// into the slow board) under one mutex held for pointer shuffling only —
// snapshots are built by Trace.Finish before Record is called, so the
// lock never covers serialization work. The nil Recorder discards.
type Recorder struct {
	mu     sync.Mutex
	recent []*TraceSnapshot // ring; head is the next write position
	head   int
	seen   int64
	slow   []*TraceSnapshot // descending by DurationNs, ≤ slowN entries
	slowN  int
}

// NewRecorder builds a recorder retaining the last recentN and slowest
// slowestN traces; values ≤ 0 select the defaults.
func NewRecorder(recentN, slowestN int) *Recorder {
	if recentN <= 0 {
		recentN = DefaultRecent
	}
	if slowestN <= 0 {
		slowestN = DefaultSlowest
	}
	return &Recorder{recent: make([]*TraceSnapshot, recentN), slowN: slowestN}
}

// Record retains a finished trace. Nil snapshots (a disabled trace's
// Finish) and the nil recorder are ignored.
func (r *Recorder) Record(s *TraceSnapshot) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.recent[r.head] = s
	r.head = (r.head + 1) % len(r.recent)
	r.seen++
	// Slow board: binary-search the insertion point in the descending
	// order, drop the entry when it falls off the bounded tail.
	lo, hi := 0, len(r.slow)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.slow[mid].DurationNs >= s.DurationNs {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < r.slowN {
		r.slow = append(r.slow, nil)
		copy(r.slow[lo+1:], r.slow[lo:])
		r.slow[lo] = s
		if len(r.slow) > r.slowN {
			r.slow = r.slow[:r.slowN]
		}
	}
	r.mu.Unlock()
}

// Seen returns the number of traces recorded over the recorder's life.
func (r *Recorder) Seen() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Snapshot returns the retained traces: recent ordered newest-first and
// the slow board ordered slowest-first. Both slices are fresh copies —
// later Records never mutate them — and the snapshots they point at are
// immutable by construction.
func (r *Recorder) Snapshot() (recent, slowest []*TraceSnapshot) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.recent)
	for i := 1; i <= n; i++ {
		s := r.recent[(r.head-i+n)%n]
		if s == nil {
			break
		}
		recent = append(recent, s)
	}
	slowest = append([]*TraceSnapshot(nil), r.slow...)
	return recent, slowest
}

// Find returns the newest retained trace for digest, searching the
// recent ring first and the slow board second; nil when the digest has
// aged out of both.
func (r *Recorder) Find(digest string) *TraceSnapshot {
	if r == nil || digest == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.recent)
	for i := 1; i <= n; i++ {
		s := r.recent[(r.head-i+n)%n]
		if s == nil {
			break
		}
		if s.Digest == digest {
			return s
		}
	}
	for _, s := range r.slow {
		if s.Digest == digest {
			return s
		}
	}
	return nil
}
