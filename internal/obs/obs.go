// Package obs is the serving stack's zero-dependency observability layer:
// request-scoped span traces, an always-on flight recorder bounded to the
// last-N and slowest-N requests, and a Prometheus-text histogram — all
// built so that a request WITHOUT a trace attached pays nothing but a nil
// check at every instrumentation point.
//
// The design splits responsibilities:
//
//   - Trace/Span (this file) collect named phases with monotonic
//     start/end offsets and typed attributes while a request runs. Every
//     method is nil-safe: a nil *Trace or *Span is the disabled tracer,
//     and calls on it are no-ops that neither branch into the tracer nor
//     allocate — which is what keeps the warm-path alloc pin and the
//     golden digests bit-identical when tracing is off.
//   - Recorder (recorder.go) retains finished traces in two bounded
//     buffers and hands out immutable snapshots for /debug/traces.
//   - Histogram (hist.go) is the fixed-edge latency histogram behind the
//     per-endpoint Prometheus _bucket/_sum/_count series.
//
// A Trace is safe for handoff across goroutines (the service moves it
// from the request goroutine onto a worker and back): every span
// operation takes the trace's mutex. It is not a high-frequency lock —
// traced requests record on the order of ten spans.
package obs

import (
	"context"
	"sync"
	"time"
)

// attrKind discriminates the typed attribute payload.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrStr
	attrFloat
	attrBool
)

// attr is one typed span attribute.
type attr struct {
	key  string
	kind attrKind
	num  int64
	f    float64
	str  string
}

// value returns the attribute's payload as the JSON-facing any.
func (a attr) value() any {
	switch a.kind {
	case attrStr:
		return a.str
	case attrFloat:
		return a.f
	case attrBool:
		return a.num != 0
	default:
		return a.num
	}
}

// spanRec is the trace-internal span record: tree structure by parent
// index, times as nanosecond offsets from the trace's start.
type spanRec struct {
	name       string
	parent     int32
	start, end int64
	attrs      []attr
}

// Trace collects the spans of one request. Build with NewTrace, thread
// through context (NewContext/FromContext), close with Finish. The nil
// Trace is the disabled tracer: all methods no-op.
type Trace struct {
	mu       sync.Mutex
	endpoint string
	wall     time.Time // start, wall clock (carries the monotonic reading)
	spans    []spanRec
	finished bool
}

// NewTrace starts a trace whose root span carries the endpoint name.
func NewTrace(endpoint string) *Trace {
	t := &Trace{endpoint: endpoint, wall: time.Now()}
	t.spans = make([]spanRec, 1, 8)
	t.spans[0] = spanRec{name: endpoint, parent: -1}
	return t
}

// Span is a handle onto one span of a trace. The nil Span is the disabled
// span: Child returns nil, attribute setters and End no-op.
type Span struct {
	t *Trace
	i int32
}

// Root returns the trace's root span; nil for the nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t}
}

// Child starts a sub-span under s. Returns nil (and records nothing) on
// the nil span or a finished trace.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return nil
	}
	idx := int32(len(t.spans))
	t.spans = append(t.spans, spanRec{name: name, parent: s.i, start: int64(time.Since(t.wall))})
	t.mu.Unlock()
	return &Span{t: t, i: idx}
}

// End closes the span at the current monotonic offset. Ending twice keeps
// the first end.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if !t.finished && t.spans[s.i].end == 0 {
		t.spans[s.i].end = int64(time.Since(t.wall))
	}
	t.mu.Unlock()
}

func (s *Span) set(a attr) {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if !t.finished {
		t.spans[s.i].attrs = append(t.spans[s.i].attrs, a)
	}
	t.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) { s.set(attr{key: key, kind: attrInt, num: v}) }

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) { s.set(attr{key: key, kind: attrStr, str: v}) }

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) { s.set(attr{key: key, kind: attrFloat, f: v}) }

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	var n int64
	if v {
		n = 1
	}
	s.set(attr{key: key, kind: attrBool, num: n})
}

// TraceSnapshot is the immutable export of a finished trace — the JSON
// schema /debug/traces serves and mlb-load -trace decodes. Nothing in a
// snapshot is ever mutated after Finish returns it; the Recorder hands
// the same pointer to every reader.
type TraceSnapshot struct {
	Endpoint   string       `json:"endpoint"`
	Digest     string       `json:"digest,omitempty"`
	Start      time.Time    `json:"start"`
	DurationNs int64        `json:"duration_ns"`
	Error      string       `json:"error,omitempty"`
	Spans      int          `json:"spans"`
	Root       SpanSnapshot `json:"root"`
}

// SpanSnapshot is one exported span: offsets relative to the trace start,
// attributes flattened to a JSON object, children in start order.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartNs    int64          `json:"start_ns"`
	DurationNs int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Finish closes the trace and builds its immutable snapshot. digest and
// errMsg annotate the snapshot (either may be empty). Spans still open
// are closed at the trace's end. Finish is idempotent in effect but
// should be called once; later calls return nil. The nil trace returns
// nil.
func (t *Trace) Finish(digest, errMsg string) *TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return nil
	}
	t.finished = true
	total := int64(time.Since(t.wall))
	for i := range t.spans {
		if t.spans[i].end == 0 {
			t.spans[i].end = total
		}
	}

	// Materialize the parent-indexed flat records into a tree. Children
	// are appended in record order, which is start order.
	nodes := make([]SpanSnapshot, len(t.spans))
	kids := make([][]int, len(t.spans))
	for i, r := range t.spans {
		nodes[i] = SpanSnapshot{Name: r.name, StartNs: r.start, DurationNs: r.end - r.start}
		if len(r.attrs) > 0 {
			m := make(map[string]any, len(r.attrs))
			for _, a := range r.attrs {
				m[a.key] = a.value()
			}
			nodes[i].Attrs = m
		}
		if r.parent >= 0 {
			kids[r.parent] = append(kids[r.parent], i)
		}
	}
	var build func(i int) SpanSnapshot
	build = func(i int) SpanSnapshot {
		n := nodes[i]
		for _, c := range kids[i] {
			n.Children = append(n.Children, build(c))
		}
		return n
	}
	return &TraceSnapshot{
		Endpoint:   t.endpoint,
		Digest:     digest,
		Start:      t.wall,
		DurationNs: total,
		Error:      errMsg,
		Spans:      len(t.spans),
		Root:       build(0),
	}
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// NewContext returns ctx carrying the trace; requests planned under it
// record their phases into t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil — the disabled
// tracer — when none is attached. The lookup allocates nothing.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
