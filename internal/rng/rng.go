// Package rng implements the deterministic pseudo-random generators used
// throughout the reproduction: splitmix64 for seeding and xoshiro256** for
// the streams themselves.
//
// The paper's duty-cycle model requires every node to follow "a predictable
// pseudo-random sequence ... with a preset seed" that neighbors can replay
// after learning the seed (Section III). Using our own generator — rather
// than math/rand, whose algorithm is unspecified across Go releases — makes
// deployments, wake schedules, and therefore every experiment bit-for-bit
// reproducible, and lets the simulator model seed exchange faithfully: a
// neighbor that learns (seed, lastWake) can forecast future wake slots by
// re-running the same small generator.
package rng

import "math"

// SplitMix64 advances the splitmix64 state and returns the next value.
// It is used to derive independent stream seeds from a master seed.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 output finalizer to x: two xor-shift-multiply
// rounds and a final xor-shift, a full-avalanche 64-bit mix (every input bit
// flips each output bit with probability ≈ 1/2). Use it to hash-combine
// fields by chaining — h = Mix64(h ^ field) — where XOR-ing raw products
// would leave linear structure.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Source is a xoshiro256** generator. The zero value is invalid; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed via splitmix64, as the
// xoshiro authors recommend. Distinct seeds yield independent streams.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed resets the generator to the stream identified by seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// A pathological all-zero state cannot arise from splitmix64, but guard
	// anyway: xoshiro has a single invalid (all-zero) state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). Panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection to avoid modulo bias.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// InRange returns a uniform float in [lo, hi).
func (r *Source) InRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a random permutation of [0, n) via Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// NormFloat64 returns a standard-normal variate (Marsaglia polar method),
// used for jittered deployments in ablation workloads.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Fork returns a new independent Source derived from r's stream, so that
// parallel workers can draw from decorrelated generators deterministically.
func (r *Source) Fork() *Source {
	return New(r.Uint64())
}
