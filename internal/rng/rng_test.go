package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := r.Uint64()
	r.Uint64()
	r.Seed(7)
	if got := r.Uint64(); got != first {
		t.Fatalf("after reseed first draw = %d, want %d", got, first)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %f by more than 5σ", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %f out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %f, want ≈0.5", mean)
	}
}

func TestInRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.InRange(-3, 8)
		if v < -3 || v >= 8 {
			t.Fatalf("InRange(-3,8) = %f out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(1)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(2)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d -> %d", sum, got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %f, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %f, want ≈1", variance)
	}
}

func TestForkDecorrelates(t *testing.T) {
	r := New(10)
	a := r.Fork()
	b := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams produced %d identical values", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the splitmix64 reference implementation with
	// state 1234567: first three outputs.
	state := uint64(1234567)
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
