package reliability

import (
	"reflect"
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/topology"
)

func paperInstance(t testing.TB, n int, seed uint64) (core.Instance, *core.Schedule) {
	t.Helper()
	d, err := topology.Generate(topology.PaperConfig(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	return in, res.Schedule
}

func TestEstimateNoLossIsPerfect(t *testing.T) {
	in, sched := paperInstance(t, 100, 3)
	rep, err := Estimate(in, sched, LossModel{Rate: 0}, Config{Trials: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanDeliveryRatio != 1 || rep.FullCoverageRate != 1 || rep.DeliveredTrials != 50 {
		t.Fatalf("lossless estimate not perfect: %+v", rep)
	}
	for v, k := range rep.NodeCovered {
		if k != 50 {
			t.Fatalf("node %d covered in %d/50 lossless trials", v, k)
		}
	}
	if rep.Latency.P50 != sched.Latency() || rep.Latency.Max != sched.Latency() {
		t.Fatalf("lossless latency quantiles %+v, schedule latency %d", rep.Latency, sched.Latency())
	}
	if rep.MeanLostFrames != 0 {
		t.Fatalf("lost frames on a lossless channel: %v", rep.MeanLostFrames)
	}
}

func TestEstimateLossDegradesDelivery(t *testing.T) {
	in, sched := paperInstance(t, 150, 5)
	rep, err := Estimate(in, sched, LossModel{Rate: 0.1, Seed: 1}, Config{Trials: 300})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanDeliveryRatio >= 1 || rep.MeanDeliveryRatio <= 0 {
		t.Fatalf("delivery ratio %v not in (0,1) at 10%% loss", rep.MeanDeliveryRatio)
	}
	if rep.MeanLostFrames <= 0 {
		t.Fatal("no frames lost at 10% loss")
	}
	// The source holds the message by definition.
	if rep.NodeCovered[in.Source] != rep.Trials {
		t.Fatalf("source covered in %d/%d trials", rep.NodeCovered[in.Source], rep.Trials)
	}
	// Wilson bounds bracket the rate and are ordered.
	if !(rep.FullCoverageLo <= rep.FullCoverageRate && rep.FullCoverageRate <= rep.FullCoverageHi) {
		t.Fatalf("Wilson interval (%v, %v) does not bracket %v",
			rep.FullCoverageLo, rep.FullCoverageHi, rep.FullCoverageRate)
	}
	// Deeper loss must not improve delivery.
	worse, err := Estimate(in, sched, LossModel{Rate: 0.3, Seed: 1}, Config{Trials: 300})
	if err != nil {
		t.Fatal(err)
	}
	if worse.MeanDeliveryRatio > rep.MeanDeliveryRatio {
		t.Fatalf("delivery improved with loss: %v at 30%% vs %v at 10%%",
			worse.MeanDeliveryRatio, rep.MeanDeliveryRatio)
	}
}

// TestEstimateDeterministicAcrossWorkers pins the aggregation design:
// trial seeds derive from the trial index alone and observations land in
// trial-indexed arrays, so the report is bit-identical however the batch
// is partitioned — the property that makes reports cacheable by content
// address.
func TestEstimateDeterministicAcrossWorkers(t *testing.T) {
	in, sched := paperInstance(t, 120, 7)
	model := LossModel{Rate: 0.08, Seed: 42}
	var reports []*Report
	for _, workers := range []int{1, 2, 7} {
		rep, err := Estimate(in, sched, model, Config{Trials: 200, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("workers=%d report diverged:\n%+v\nvs\n%+v", []int{1, 2, 7}[i], reports[i], reports[0])
		}
	}
	// And a reused estimator agrees with one-shots.
	e := NewEstimator()
	for i := 0; i < 2; i++ {
		rep, err := e.Estimate(in, sched, model, Config{Trials: 200, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, reports[0]) {
			t.Fatalf("reused estimator run %d diverged", i)
		}
	}
}

func TestEstimateDutyCycle(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	wake := dutycycle.NewUniform(100, 10, 9, 0)
	in := core.Async(d.G, d.Source, wake, 0)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Estimate(in, res.Schedule, LossModel{Rate: 0.05, Seed: 3}, Config{Trials: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanDeliveryRatio <= 0.3 {
		t.Fatalf("duty-cycle delivery ratio %v suspiciously low", rep.MeanDeliveryRatio)
	}
	if rep.ScheduleLatency != res.Schedule.Latency() {
		t.Fatalf("schedule latency %d, want %d", rep.ScheduleLatency, res.Schedule.Latency())
	}
}

func TestEstimateRejectsBadInputs(t *testing.T) {
	in, sched := paperInstance(t, 40, 1)
	if _, err := Estimate(in, sched, LossModel{Rate: 1.5}, Config{Trials: 10}); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
	if _, err := Estimate(in, sched, LossModel{Kind: "burst"}, Config{Trials: 10}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Estimate(in, nil, LossModel{}, Config{Trials: 10}); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

// TestEstimateBatchAllocs pins the acceptance criterion: a Monte-Carlo
// batch of 1000 lossy replays on the n=300 paper topology is
// allocation-stable — the warm per-replay cost is (amortized) zero, with
// only the per-batch report and validation BFS remaining.
func TestEstimateBatchAllocs(t *testing.T) {
	in, sched := paperInstance(t, 300, 2)
	model := LossModel{Rate: 0.05, Seed: 9}
	cfg := Config{Trials: 1000, Workers: 1}
	e := NewEstimator()
	if _, err := e.Estimate(in, sched, model, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2, func() {
		if _, err := e.Estimate(in, sched, model, cfg); err != nil {
			t.Fatal(err)
		}
	})
	perReplay := allocs / float64(cfg.Trials)
	if perReplay > 0.05 {
		t.Errorf("warm Monte-Carlo batch allocated %.0f objects for %d replays (%.3f/replay); want ≤ 0.05/replay",
			allocs, cfg.Trials, perReplay)
	}
}

func BenchmarkEstimate300x1000(b *testing.B) {
	in, sched := paperInstance(b, 300, 2)
	model := LossModel{Rate: 0.05, Seed: 9}
	cfg := Config{Trials: 1000, Workers: 1}
	e := NewEstimator()
	if _, err := e.Estimate(in, sched, model, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Estimate(in, sched, model, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
