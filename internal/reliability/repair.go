package reliability

import (
	"fmt"

	"mlbs/internal/bitset"
	"mlbs/internal/color"
	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// RepairConfig tunes the conflict-aware retransmission repair loop.
type RepairConfig struct {
	// Target is the required mean delivery ratio in (0, 1].
	Target float64
	// Trials and Workers size each Monte-Carlo evaluation (see Config).
	Trials  int
	Workers int
	// MaxExtraSlots caps the latency penalty: no repair slot is appended
	// more than this many slots past the base schedule's end. Default 64.
	MaxExtraSlots int
	// MaxRounds caps the measure-and-patch iterations. Default 8.
	MaxRounds int
}

// DefaultMaxExtraSlots and DefaultMaxRounds are the RepairConfig defaults.
const (
	DefaultMaxExtraSlots = 64
	DefaultMaxRounds     = 8
)

// RepairResult reports a repair run: the extended schedule, the estimates
// bracketing it, and the latency the added slots cost.
type RepairResult struct {
	// Schedule is the repaired schedule: the base advances plus the
	// appended rebroadcast slots. It intentionally fails
	// core.Schedule.Validate — the extra advances re-cover nodes the ideal
	// model considers done; they exist for the lossy channel only.
	Schedule *core.Schedule `json:"-"`

	Before *Report `json:"before"`
	After  *Report `json:"after"`

	Target        float64 `json:"target"`
	TargetMet     bool    `json:"target_met"`
	Rounds        int     `json:"rounds"`
	AddedAdvances int     `json:"added_advances"`
	// AddedSlots is the latency penalty: repaired end − base end.
	AddedSlots      int `json:"added_slots"`
	BaseLatency     int `json:"base_latency"`
	RepairedLatency int `json:"repaired_latency"`
}

// Repair appends conflict-aware rebroadcast slots to sched until the
// Monte-Carlo estimated mean delivery ratio under model reaches
// cfg.Target, or a cap (rounds, extra slots) is hit.
//
// Each round re-measures, takes the nodes missed in any trial as the
// repair targets, and treats the always-covered nodes as the holding set
// W: the greedy color classes of the candidates of W (color.Scratch,
// Algorithm 1's machinery) are pairwise conflict-free at the targets, so
// the appended rebroadcasts cannot collide at the very nodes they are
// rescuing. Classes fire on consecutive wake-feasible slots after the
// current end; senders asleep at a class's slot are filtered out, and a
// lossy trial in which an appended sender never actually received the
// message simply leaves it silent (the simulator's stranded-sender rule).
func (e *Estimator) Repair(in core.Instance, sched *core.Schedule, model LossModel, cfg RepairConfig) (*RepairResult, error) {
	if cfg.Target <= 0 || cfg.Target > 1 {
		return nil, fmt.Errorf("reliability: repair target %v outside (0, 1]", cfg.Target)
	}
	if cfg.MaxExtraSlots <= 0 {
		cfg.MaxExtraSlots = DefaultMaxExtraSlots
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	estCfg := Config{Trials: cfg.Trials, Workers: cfg.Workers}
	before, err := e.Estimate(in, sched, model, estCfg)
	if err != nil {
		return nil, err
	}

	cur := &core.Schedule{
		Source:   sched.Source,
		Start:    sched.Start,
		Advances: append([]core.Advance(nil), sched.Advances...),
	}
	res := &RepairResult{
		Schedule:        cur,
		Before:          before,
		After:           before,
		Target:          cfg.Target,
		BaseLatency:     sched.Latency(),
		RepairedLatency: sched.Latency(),
	}
	if before.MeanDeliveryRatio >= cfg.Target {
		res.TargetMet = true
		return res, nil
	}

	g := in.G
	n := g.N()
	baseEnd := sched.End()
	var sc color.Scratch
	var ib interference.Binder
	oracle := in.Oracle(&ib)
	reliable := bitset.New(n)
	targets := bitset.New(n)
	reach := bitset.New(n)
	after := before

	for round := 0; round < cfg.MaxRounds && after.MeanDeliveryRatio < cfg.Target; round++ {
		reliable.Clear()
		targets.Clear()
		nTargets := 0
		for v := 0; v < n; v++ {
			if after.NodeCovered[v] == after.Trials {
				reliable.Add(v)
			} else {
				targets.Add(v)
				nTargets++
			}
		}
		if nTargets == 0 {
			break
		}
		// Candidates of the holding set W = reliable: reliable nodes with a
		// neighbor in the miss set — exactly the relays that can rescue a
		// target without risking their own coverage.
		cands := sc.Candidates(g, reliable)
		if len(cands) == 0 {
			break
		}
		classes := sc.GreedyPartitionOracle(g, reliable, cands, oracle)
		added := false
		// With K > 1 orthogonal channels, mutually-conflicting repair
		// classes pack onto the same slot on distinct channels (greedy
		// classes are sender-disjoint, so the one-radio rule holds); a
		// class whose members all sleep at the open slot falls through to
		// its own later slot. K = 1 reduces to one class per slot.
		k := in.K()
		t := cur.End() + 1
		openT, openCh := -1, -1
		for _, cls := range classes {
			if t-baseEnd > cfg.MaxExtraSlots {
				// Every later class would fire at slot ≥ t: the whole
				// remainder of this round is out of budget.
				break
			}
			// Earliest slot ≥ from at which some class member may
			// transmit, where from is the open slot while it has a free
			// channel.
			from := t
			if openT >= 0 && openCh+1 < k {
				from = openT
			}
			slot := -1
			for _, u := range cls {
				if nw := in.Wake.NextAwake(u, from); slot < 0 || nw < slot {
					slot = nw
				}
			}
			if slot-baseEnd > cfg.MaxExtraSlots {
				// Only this class sleeps past the budget — classes are
				// ordered by greedy coverage, not wake time, so a later
				// class may still fit. Skip, don't abort.
				continue
			}
			awake := sc.FilterAwake(cls, in.Wake, slot)
			if len(awake) == 0 {
				continue
			}
			ch := 0
			if slot == openT {
				ch = openCh + 1
			}
			reach.Clear()
			for _, u := range awake {
				reach.UnionWith(g.Nbr(u))
			}
			reach.IntersectWith(targets)
			cur.Advances = append(cur.Advances, core.Advance{
				T:       slot,
				Channel: ch,
				Senders: append([]graph.NodeID(nil), awake...),
				Covered: reach.Members(),
			})
			added = true
			openT, openCh = slot, ch
			t = slot
			if ch+1 >= k {
				t = slot + 1
			}
		}
		if !added {
			break
		}
		res.Rounds = round + 1
		if after, err = e.Estimate(in, cur, model, estCfg); err != nil {
			return nil, err
		}
	}

	res.After = after
	res.AddedAdvances = len(cur.Advances) - len(sched.Advances)
	res.AddedSlots = cur.End() - baseEnd
	res.RepairedLatency = cur.Latency()
	res.TargetMet = after.MeanDeliveryRatio >= cfg.Target
	return res, nil
}

// Repair is the one-shot convenience form of (*Estimator).Repair.
func Repair(in core.Instance, sched *core.Schedule, model LossModel, cfg RepairConfig) (*RepairResult, error) {
	return NewEstimator().Repair(in, sched, model, cfg)
}
