package reliability

import (
	"testing"

	"mlbs/internal/color"
	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/topology"
)

// TestRepairLiftsDeliveryToTarget is the headline acceptance property: on
// a lossy instance whose base schedule misses the target, repair appends
// rebroadcast slots until the estimated mean delivery ratio clears it, and
// reports the latency penalty honestly.
func TestRepairLiftsDeliveryToTarget(t *testing.T) {
	in, sched := paperInstance(t, 150, 5)
	model := LossModel{Rate: 0.1, Seed: 1}
	cfg := RepairConfig{Target: 0.995, Trials: 300}
	rr, err := Repair(in, sched, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Before.MeanDeliveryRatio >= cfg.Target {
		t.Fatalf("base schedule already meets the target (%v); test instance too easy", rr.Before.MeanDeliveryRatio)
	}
	if !rr.TargetMet {
		t.Fatalf("repair failed to reach %v: before %v, after %v (+%d slots, %d rounds)",
			cfg.Target, rr.Before.MeanDeliveryRatio, rr.After.MeanDeliveryRatio, rr.AddedSlots, rr.Rounds)
	}
	if rr.After.MeanDeliveryRatio < cfg.Target {
		t.Fatalf("TargetMet but after ratio %v < target", rr.After.MeanDeliveryRatio)
	}
	if rr.AddedAdvances <= 0 || rr.AddedSlots <= 0 {
		t.Fatalf("repair claims success without adding anything: %+v", rr)
	}
	if rr.RepairedLatency != rr.BaseLatency+rr.AddedSlots {
		t.Fatalf("latency accounting: repaired %d != base %d + added %d",
			rr.RepairedLatency, rr.BaseLatency, rr.AddedSlots)
	}
	if got := len(rr.Schedule.Advances) - len(sched.Advances); got != rr.AddedAdvances {
		t.Fatalf("schedule grew by %d advances, result claims %d", got, rr.AddedAdvances)
	}
}

// TestRepairAdvancesAreConflictAware verifies the structural guarantee:
// every appended advance is strictly after the base end, its senders are
// awake, pairwise conflict-free with respect to the miss set it was built
// against, and its recorded coverage is inside that miss set.
func TestRepairAdvancesAreConflictAware(t *testing.T) {
	in, sched := paperInstance(t, 150, 5)
	rr, err := Repair(in, sched, LossModel{Rate: 0.15, Seed: 2}, RepairConfig{Target: 0.99, Trials: 200})
	if err != nil {
		t.Fatal(err)
	}
	base := sched.End()
	prev := base
	for _, adv := range rr.Schedule.Advances[len(sched.Advances):] {
		if adv.T <= prev {
			t.Fatalf("appended advance at t=%d not after t=%d", adv.T, prev)
		}
		prev = adv.T
		if len(adv.Senders) == 0 {
			t.Fatal("appended advance with no senders")
		}
		for _, u := range adv.Senders {
			if !in.Wake.Awake(u, adv.T) {
				t.Fatalf("appended sender %d asleep at t=%d", u, adv.T)
			}
		}
		// Senders must not conflict at any node they are trying to rescue:
		// the uncovered set of the repair round contains the advance's own
		// recorded coverage, so conflict-freedom there is necessary.
		w := in.G.Nbr(0).Clone()
		for i := range w {
			w[i] = ^uint64(0)
		}
		for _, v := range adv.Covered {
			w.Remove(v)
		}
		if !color.ConflictFree(in.G, w, adv.Senders) {
			t.Fatalf("appended advance at t=%d collides inside its own target set", adv.T)
		}
	}
}

func TestRepairNoOpWhenTargetAlreadyMet(t *testing.T) {
	in, sched := paperInstance(t, 100, 3)
	rr, err := Repair(in, sched, LossModel{Rate: 0}, RepairConfig{Target: 0.99, Trials: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.TargetMet || rr.AddedAdvances != 0 || rr.AddedSlots != 0 || rr.Rounds != 0 {
		t.Fatalf("lossless repair should be a no-op: %+v", rr)
	}
	if rr.RepairedLatency != rr.BaseLatency {
		t.Fatal("no-op repair changed latency")
	}
}

func TestRepairRespectsSlotCap(t *testing.T) {
	in, sched := paperInstance(t, 150, 5)
	// A brutal channel with a tiny budget: the cap must bound the penalty
	// whether or not the target is reached.
	rr, err := Repair(in, sched, LossModel{Rate: 0.4, Seed: 7},
		RepairConfig{Target: 1.0, Trials: 100, MaxExtraSlots: 5, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rr.AddedSlots > 5 {
		t.Fatalf("repair added %d slots, cap was 5", rr.AddedSlots)
	}
	if rr.After.MeanDeliveryRatio < rr.Before.MeanDeliveryRatio {
		t.Fatalf("repair made delivery worse: %v → %v",
			rr.Before.MeanDeliveryRatio, rr.After.MeanDeliveryRatio)
	}
}

func TestRepairDutyCycleSendersAwake(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	wake := dutycycle.NewUniform(100, 8, 5, 0)
	in := core.Async(d.G, d.Source, wake, 0)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Repair(in, res.Schedule, LossModel{Rate: 0.1, Seed: 4},
		RepairConfig{Target: 0.99, Trials: 150, MaxExtraSlots: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, adv := range rr.Schedule.Advances[len(res.Schedule.Advances):] {
		for _, u := range adv.Senders {
			if !in.Wake.Awake(u, adv.T) {
				t.Fatalf("duty-cycle repair fired sleeping sender %d at t=%d", u, adv.T)
			}
		}
	}
	if rr.After.MeanDeliveryRatio < rr.Before.MeanDeliveryRatio {
		t.Fatal("duty-cycle repair made delivery worse")
	}
}

func TestRepairRejectsBadTarget(t *testing.T) {
	in, sched := paperInstance(t, 40, 1)
	for _, target := range []float64{0, -0.5, 1.5} {
		if _, err := Repair(in, sched, LossModel{Rate: 0.1}, RepairConfig{Target: target, Trials: 10}); err == nil {
			t.Fatalf("target %v accepted", target)
		}
	}
}
