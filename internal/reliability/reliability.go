// Package reliability is the Monte-Carlo engine that answers the question
// the scheduler's own coverage claim cannot: what does a conflict-free
// broadcast schedule actually deliver on a channel that loses frames?
//
// The paper's schedules are provably collision-free on the ideal channel of
// Section III, but one lost relay frame strands the relay's whole subtree
// (the fragility Section VI attributes to offline interference-free
// plans). Estimate batches N independently seeded lossy replays of a
// schedule — each trial a full physics execution on a sim.LossyReplayer
// whose buffers are reused, so the batch runs allocation-free after warm-up
// — and aggregates delivery ratio, per-node coverage probability with
// Wilson confidence intervals, the latency distribution over delivering
// trials, and frame-loss/collision tallies.
//
// Repair then closes the loop: from the measured per-node miss counts it
// greedily appends conflict-aware rebroadcast slots (greedy color classes
// over the miss set, the same color.Scratch machinery the schedulers use)
// until the estimated delivery ratio clears a target, reporting the latency
// the insurance costs.
//
// Every quantity is deterministic in (instance, schedule, loss model,
// trials): trial seeds are derived from the model seed and the trial index
// alone, per-trial observations land in arrays indexed by trial, and
// cross-worker aggregation sums integers — so a report is reproducible
// across runs, worker counts, and machines, and the serving layer can cache
// it by content address.
package reliability

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/rng"
	"mlbs/internal/sim"
	"mlbs/internal/stats"
)

// KindIID names the independent-per-frame loss model.
const KindIID = "iid"

// LossModel describes the stochastic channel of a validation run. The zero
// Kind means KindIID.
type LossModel struct {
	Kind string  `json:"kind"`
	Rate float64 `json:"rate"`
	Seed uint64  `json:"seed"`
}

// Normalize fills defaults and rejects malformed models.
func (m LossModel) Normalize() (LossModel, error) {
	if m.Kind == "" {
		m.Kind = KindIID
	}
	if m.Kind != KindIID {
		return m, fmt.Errorf("reliability: unknown loss model kind %q", m.Kind)
	}
	if m.Rate < 0 || m.Rate >= 1 {
		return m, fmt.Errorf("reliability: loss rate %v outside [0, 1)", m.Rate)
	}
	return m, nil
}

// TrialSeed derives the channel seed of one Monte-Carlo trial by chaining
// the master seed and the trial index through the SplitMix64 finalizer —
// a pure function of (Seed, trial), so the estimate cannot depend on how
// trials are spread across workers.
func (m LossModel) TrialSeed(trial int) uint64 {
	return rng.Mix64(rng.Mix64(m.Seed+0x9e3779b97f4a7c15) ^ uint64(trial+1))
}

// Config sizes a Monte-Carlo estimation run.
type Config struct {
	// Trials is the number of independent lossy replays. Default 1000.
	Trials int
	// Workers parallelizes the batch; each worker owns one reusable
	// LossyReplayer. Default 1 (the serving layer provides concurrency
	// across requests; set GOMAXPROCS for standalone sweeps). ≤ 0 or
	// values above Trials are clamped.
	Workers int
}

// DefaultTrials is the Config.Trials default.
const DefaultTrials = 1000

// Quantiles summarizes a latency distribution in slots.
type Quantiles struct {
	P50 int `json:"p50"`
	P90 int `json:"p90"`
	P99 int `json:"p99"`
	Max int `json:"max"`
}

// Report is the Monte-Carlo reliability estimate of one schedule under one
// loss model. All fields are deterministic in (instance, schedule, model,
// trials).
type Report struct {
	Trials int       `json:"trials"`
	Loss   LossModel `json:"loss"`

	// ScheduleLatency is the schedule's ideal-channel latency in slots —
	// the baseline the lossy latency distribution is read against.
	ScheduleLatency int `json:"schedule_latency"`

	// MeanDeliveryRatio is the mean over trials of (covered nodes)/n, with
	// the Student-t 95% half-width of that mean.
	MeanDeliveryRatio float64 `json:"mean_delivery_ratio"`
	MeanDeliveryCI    float64 `json:"mean_delivery_ci"`

	// FullCoverageRate is the fraction of trials that covered every node,
	// with its 95% Wilson interval.
	FullCoverageRate float64 `json:"full_coverage_rate"`
	FullCoverageLo   float64 `json:"full_coverage_lo"`
	FullCoverageHi   float64 `json:"full_coverage_hi"`

	// DeliveredTrials counts trials with full coverage; Latency summarizes
	// the completion slot distribution over exactly those trials.
	DeliveredTrials int       `json:"delivered_trials"`
	Latency         Quantiles `json:"latency"`

	// NodeCovered[v] counts the trials in which node v received the
	// message — the exact integer form of the per-node coverage
	// probability (see NodeProb for the Wilson interval).
	NodeCovered []int `json:"node_covered"`

	MeanLostFrames float64 `json:"mean_lost_frames"`
	MeanCollisions float64 `json:"mean_collisions"`
}

// NodeProb returns node v's coverage probability with its 95% Wilson
// bounds.
func (r *Report) NodeProb(v graph.NodeID) (p, lo, hi float64) {
	k := r.NodeCovered[v]
	lo, hi = stats.Wilson95(k, r.Trials)
	return float64(k) / float64(r.Trials), lo, hi
}

// WorstNode returns the node with the lowest coverage probability (ties to
// the smallest ID) and that probability.
func (r *Report) WorstNode() (v graph.NodeID, p float64) {
	v, best := 0, r.Trials+1
	for u, k := range r.NodeCovered {
		if k < best {
			v, best = u, k
		}
	}
	if r.Trials == 0 {
		return v, 0
	}
	return v, float64(best) / float64(r.Trials)
}

// trialWorker is one worker's reusable execution state.
type trialWorker struct {
	rep     sim.LossyReplayer
	covered []int64 // per-node covered-trial counts for this worker's slice
	rate    float64
	seed    uint64 // pre-mixed per trial; loss closes over the pointer
	loss    sim.LossFunc
	err     error
}

func newTrialWorker() *trialWorker {
	tw := &trialWorker{}
	tw.loss = func(t int, from, to graph.NodeID) bool {
		return sim.IIDDropPremixed(tw.rate, tw.seed, t, from, to)
	}
	return tw
}

// Estimator batches Monte-Carlo replays with reusable per-worker state
// (replayers, per-node counters, the per-trial observation arrays). It is
// not safe for concurrent use; the serving layer gives each pool worker its
// own. The zero value is ready.
type Estimator struct {
	workers []*trialWorker

	// Per-trial observations, indexed by trial so workers write disjoint
	// slots and aggregation order never depends on scheduling.
	coveredPerTrial []int32
	latencyPerTrial []int32 // -1 when the trial did not reach full coverage
	lostPerTrial    []int32
	collPerTrial    []int32

	lats []int32 // scratch: delivering trials' latencies, for quantiles
}

// NewEstimator returns a ready estimator.
func NewEstimator() *Estimator { return &Estimator{} }

func (e *Estimator) ensure(workers, trials, n int) {
	for len(e.workers) < workers {
		e.workers = append(e.workers, newTrialWorker())
	}
	for _, tw := range e.workers[:workers] {
		if len(tw.covered) < n {
			tw.covered = make([]int64, n)
		} else {
			for i := range tw.covered[:n] {
				tw.covered[i] = 0
			}
		}
	}
	if cap(e.coveredPerTrial) < trials {
		e.coveredPerTrial = make([]int32, trials)
		e.latencyPerTrial = make([]int32, trials)
		e.lostPerTrial = make([]int32, trials)
		e.collPerTrial = make([]int32, trials)
	}
	e.coveredPerTrial = e.coveredPerTrial[:trials]
	e.latencyPerTrial = e.latencyPerTrial[:trials]
	e.lostPerTrial = e.lostPerTrial[:trials]
	e.collPerTrial = e.collPerTrial[:trials]
}

// runTrials executes trials [lo, hi) on worker tw.
func (e *Estimator) runTrials(tw *trialWorker, in core.Instance, sched *core.Schedule, model LossModel, lo, hi int) {
	n := in.G.N()
	start := sched.Start
	for i := lo; i < hi; i++ {
		tw.rate = model.Rate
		// Hoist the seed-only pre-mix out of the per-frame draw: it is
		// constant across every (t, from, to) of the trial.
		tw.seed = sim.IIDPremix(model.TrialSeed(i))
		rep, err := tw.rep.ReplayValidated(in, sched, tw.loss)
		if err != nil {
			tw.err = err
			return
		}
		covered := 0
		last := start - 1
		for v := 0; v < n; v++ {
			if at := rep.CoveredAt[v]; at >= 0 {
				covered++
				tw.covered[v]++
				if at > last {
					last = at
				}
			}
		}
		e.coveredPerTrial[i] = int32(covered)
		if covered == n {
			e.latencyPerTrial[i] = int32(last - start + 1)
		} else {
			e.latencyPerTrial[i] = -1
		}
		e.lostPerTrial[i] = int32(rep.LostFrames)
		e.collPerTrial[i] = int32(rep.Usage.Collisions)
	}
}

// Estimate runs the Monte-Carlo batch and returns a freshly allocated,
// caller-owned report (the estimator's internal buffers are reused across
// calls, but never escape).
func (e *Estimator) Estimate(in core.Instance, sched *core.Schedule, model LossModel, cfg Config) (*Report, error) {
	model, err := model.Normalize()
	if err != nil {
		return nil, err
	}
	if sched == nil {
		return nil, errors.New("reliability: nil schedule")
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = DefaultTrials
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > runtime.GOMAXPROCS(0)*4 {
		workers = runtime.GOMAXPROCS(0) * 4
	}
	if workers > trials {
		workers = trials
	}
	n := in.G.N()
	e.ensure(workers, trials, n)

	if workers == 1 {
		e.runTrials(e.workers[0], in, sched, model, 0, trials)
	} else {
		var wg sync.WaitGroup
		per := (trials + workers - 1) / workers
		for wi := 0; wi < workers; wi++ {
			lo := wi * per
			hi := min(lo+per, trials)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(tw *trialWorker, lo, hi int) {
				defer wg.Done()
				e.runTrials(tw, in, sched, model, lo, hi)
			}(e.workers[wi], lo, hi)
		}
		wg.Wait()
	}
	// Clear every worker's error slot, not just the first failed one —
	// a stale err left behind would poison the next Estimate on a reused
	// Estimator.
	var trialErr error
	for _, tw := range e.workers[:workers] {
		if tw.err != nil && trialErr == nil {
			trialErr = tw.err
		}
		tw.err = nil
	}
	if trialErr != nil {
		return nil, trialErr
	}

	rep := &Report{
		Trials:          trials,
		Loss:            model,
		ScheduleLatency: sched.Latency(),
		NodeCovered:     make([]int, n),
	}
	for _, tw := range e.workers[:workers] {
		for v := 0; v < n; v++ {
			rep.NodeCovered[v] += int(tw.covered[v])
		}
	}
	var ratio stats.Sample
	var lostSum, collSum int64
	e.lats = e.lats[:0]
	for i := 0; i < trials; i++ {
		ratio.Add(float64(e.coveredPerTrial[i]) / float64(n))
		lostSum += int64(e.lostPerTrial[i])
		collSum += int64(e.collPerTrial[i])
		if l := e.latencyPerTrial[i]; l >= 0 {
			e.lats = append(e.lats, l)
		}
	}
	rep.MeanDeliveryRatio = ratio.Mean()
	rep.MeanDeliveryCI = ratio.CI95()
	rep.DeliveredTrials = len(e.lats)
	rep.FullCoverageRate = float64(rep.DeliveredTrials) / float64(trials)
	rep.FullCoverageLo, rep.FullCoverageHi = stats.Wilson95(rep.DeliveredTrials, trials)
	rep.MeanLostFrames = float64(lostSum) / float64(trials)
	rep.MeanCollisions = float64(collSum) / float64(trials)
	if k := len(e.lats); k > 0 {
		slices.Sort(e.lats)
		rep.Latency = Quantiles{
			P50: int(e.lats[(k-1)*50/100]),
			P90: int(e.lats[(k-1)*90/100]),
			P99: int(e.lats[(k-1)*99/100]),
			Max: int(e.lats[k-1]),
		}
	}
	return rep, nil
}

// Estimate is the one-shot convenience form of (*Estimator).Estimate.
func Estimate(in core.Instance, sched *core.Schedule, model LossModel, cfg Config) (*Report, error) {
	return NewEstimator().Estimate(in, sched, model, cfg)
}
