package reliability

import (
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/sim"
	"mlbs/internal/topology"
)

// TestRepairPacksChannels pins the channel-aware repair loop: with K > 1
// the appended retransmission classes pack onto shared slots (ascending
// channels, disjoint senders) instead of serializing one class per slot,
// and the repaired schedule still replays without errors.
func TestRepairPacksChannels(t *testing.T) {
	dep, err := topology.Generate(topology.PaperConfig(80), 5)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Instance{G: dep.G, Source: dep.Source, Start: 1,
		Wake: dutycycle.AlwaysAwake{Nodes: 80}, Channels: 4}
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	model := LossModel{Rate: 0.3, Seed: 11}
	rr, err := Repair(in, res.Schedule, model, RepairConfig{Target: 0.999, Trials: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rr.AddedAdvances == 0 {
		t.Skip("30% loss needed no repair on this topology")
	}
	appended := rr.Schedule.Advances[len(res.Schedule.Advances):]
	packed := false
	for i := 1; i < len(appended); i++ {
		a, b := appended[i-1], appended[i]
		if a.T == b.T {
			packed = true
			if b.Channel <= a.Channel || b.Channel >= in.K() {
				t.Fatalf("appended slot malformed: %+v then %+v", a, b)
			}
			seen := map[int]bool{}
			for _, u := range append(append([]int(nil), a.Senders...), b.Senders...) {
				if seen[u] {
					t.Fatalf("sender %d on two channels in appended slot %d", u, a.T)
				}
				seen[u] = true
			}
		}
	}
	if len(appended) > 1 && !packed {
		t.Log("repair appended several classes but packed none (few conflicts among repair relays)")
	}
	if rr.After.MeanDeliveryRatio < rr.Before.MeanDeliveryRatio {
		t.Fatalf("repair reduced delivery: %v → %v", rr.Before.MeanDeliveryRatio, rr.After.MeanDeliveryRatio)
	}
	// The repaired schedule executes without model errors on the lossy
	// channel (repair schedules intentionally fail ideal Validate).
	if _, err := sim.ReplayLossy(in, rr.Schedule, sim.IIDLoss(0.3, 11)); err != nil {
		t.Fatalf("repaired channelized schedule does not replay: %v", err)
	}
}

// TestRepairChannelizedNoWorse: on the same instance and loss, the
// channel-packed repair reaches at least the delivery of the single-
// channel repair with no greater latency penalty.
func TestRepairChannelizedNoWorse(t *testing.T) {
	dep, err := topology.Generate(topology.PaperConfig(80), 5)
	if err != nil {
		t.Fatal(err)
	}
	model := LossModel{Rate: 0.3, Seed: 11}
	lat := map[int]int{}
	for _, k := range []int{1, 4} {
		in := core.Instance{G: dep.G, Source: dep.Source, Start: 1,
			Wake: dutycycle.AlwaysAwake{Nodes: 80}, Channels: k}
		res, err := core.NewGOPT(0).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := Repair(in, res.Schedule, model, RepairConfig{Target: 0.999, Trials: 200})
		if err != nil {
			t.Fatal(err)
		}
		lat[k] = rr.AddedSlots
	}
	if lat[4] > lat[1] {
		t.Fatalf("channelized repair penalty %d slots exceeds single-channel %d", lat[4], lat[1])
	}
}
