package graphio

import (
	"bytes"

	"testing"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/topology"
)

// figureInstance is a small fixed duty-cycle instance used by the digest
// tests: an explicit UDG with an explicit wake schedule, no randomness.
func figureInstance() core.Instance {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 1}}
	g := graph.FromUDG(pos, 1.25)
	return core.Instance{G: g, Source: 0, Start: 2,
		Wake: dutycycle.NewFixed(4, 2, [][]int{{0, 2}, {1, 3}, {0, 1}, {2}})}
}

func paperInstance(t *testing.T, n int, seed uint64, r int) core.Instance {
	t.Helper()
	dep, err := topology.Generate(topology.PaperConfig(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1 {
		return core.Async(dep.G, dep.Source, dutycycle.NewUniform(n, r, seed^0xA5, 0), 0)
	}
	return core.Sync(dep.G, dep.Source)
}

func TestInstanceRoundTrip(t *testing.T) {
	for name, in := range map[string]core.Instance{
		"udg-sync":    paperInstance(t, 60, 3, 0),
		"udg-uniform": paperInstance(t, 60, 3, 10),
		"fixed":       figureInstance(),
		"staggered": {
			G:      paperInstance(t, 40, 5, 0).G,
			Source: paperInstance(t, 40, 5, 0).Source,
			Start:  0,
			Wake:   dutycycle.NewStaggered(40, 5, 99),
		},
	} {
		t.Run(name, func(t *testing.T) {
			data, err := EncodeInstance(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeInstance(data)
			if err != nil {
				t.Fatal(err)
			}
			d1, err := InstanceDigest(in)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := InstanceDigest(got)
			if err != nil {
				t.Fatal(err)
			}
			if d1 != d2 {
				t.Fatalf("round trip changed the digest: %s → %s", d1, d2)
			}
			// The decoded instance must schedule identically, not just
			// digest identically.
			r1, err := core.NewGOPT(0).Schedule(in)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := core.NewGOPT(0).Schedule(got)
			if err != nil {
				t.Fatal(err)
			}
			if r1.PA != r2.PA {
				t.Errorf("decoded instance schedules to PA=%d, original PA=%d", r2.PA, r1.PA)
			}
		})
	}
}

func TestInstanceRoundTripAbstractGraph(t *testing.T) {
	g := graph.NewBuilder(4, nil).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(0, 3).Build()
	in := core.Sync(g, 0)
	data, err := EncodeInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.G.M() != 4 || !got.G.HasEdge(0, 3) {
		t.Fatalf("decoded abstract graph lost edges: %v", got.G)
	}
	d1, _ := InstanceDigest(in)
	d2, _ := InstanceDigest(got)
	if d1 != d2 {
		t.Fatalf("abstract round trip changed the digest")
	}
}

// TestInstanceRoundTripAbstractGraphWithPositions guards the case of an
// explicit-edge graph that still carries geometry (legal via NewBuilder,
// and what the E-model's quadrant reads need): positions must survive the
// round trip, or the digest — which hashes them — would change.
func TestInstanceRoundTripAbstractGraphWithPositions(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 3, Y: 3}, {X: 0, Y: 3}}
	g := graph.NewBuilder(4, pos).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(0, 3).Build()
	in := core.Sync(g, 0)
	data, err := EncodeInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.G.Pos(2) != pos[2] {
		t.Fatalf("positions lost: node 2 at %v, want %v", got.G.Pos(2), pos[2])
	}
	d1, _ := InstanceDigest(in)
	d2, _ := InstanceDigest(got)
	if d1 != d2 {
		t.Fatalf("positioned abstract round trip changed the digest: %s → %s", d1, d2)
	}
}

// TestDigestGolden pins the digest of a fixed instance to a constant
// computed in a separate process. Any Go version, architecture, process or
// map-ordering change that altered the digest would break warm caches
// fleet-wide, so the canonical encoding must never drift silently.
func TestDigestGolden(t *testing.T) {
	const want = "9df145f8189e5e7953fe1addba9bb5d19e0ae330f9d15b48193bb3988255652e"
	d, err := InstanceDigest(figureInstance())
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != want {
		t.Fatalf("digest drifted:\n got %s\nwant %s\n(if the canonical encoding changed intentionally, bump digestMagic and this constant)", d, want)
	}
}

func TestDigestDeterminismAcrossConstruction(t *testing.T) {
	a, err := InstanceDigest(paperInstance(t, 80, 7, 10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := InstanceDigest(paperInstance(t, 80, 7, 10))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("independently constructed identical instances digest differently: %s vs %s", a, b)
	}
}

// TestDigestSensitivity verifies the digest moves when any instance input
// moves: an edge, the source, the start slot, the pre-covered set, or any
// wake-schedule parameter.
func TestDigestSensitivity(t *testing.T) {
	base := figureInstance()
	baseD, err := InstanceDigest(base)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	variants := map[string]core.Instance{}

	// Edge change: nudge one node so the UDG gains an edge.
	pos := append([]geom.Point(nil), base.G.Positions()...)
	pos[3] = geom.Point{X: 1, Y: 0.5}
	v := base
	v.G = graph.FromUDG(pos, 1.25)
	variants["edge"] = v

	v = base
	v.Source = 1
	variants["source"] = v

	v = base
	v.Start = 3
	variants["start"] = v

	v = base
	v.PreCovered = []int{2}
	variants["pre-covered"] = v

	v = base
	v.Wake = dutycycle.NewFixed(4, 2, [][]int{{0, 2}, {1, 3}, {0, 1}, {3}})
	variants["wake-slot"] = v

	v = base
	v.Wake = dutycycle.NewFixed(4, 4, [][]int{{0, 2}, {1, 3}, {0, 1}, {2}})
	variants["wake-rate"] = v

	v = base
	v.Wake = dutycycle.NewUniform(4, 2, 1, 0)
	variants["wake-kind"] = v

	v = base
	v.Wake = dutycycle.NewUniform(4, 2, 2, 0)
	variants["wake-seed"] = v

	for name, in := range variants {
		d, err := InstanceDigest(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d == baseD {
			t.Errorf("%s: variant digests equal to base", name)
		}
		if prev, dup := seen[d.String()]; dup {
			t.Errorf("%s and %s collide", name, prev)
		}
		seen[d.String()] = name
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := paperInstance(t, 60, 3, 0)
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.PA != res.PA || got.Exact != res.Exact || got.Scheduler != res.Scheduler {
		t.Fatalf("result header changed: got %+v want %+v", got, res)
	}
	if err := got.Schedule.Validate(in); err != nil {
		t.Fatalf("decoded schedule invalid: %v", err)
	}
}

// TestResultWireStability: a result the improver never touched encodes
// without the generation/improved keys at all — pre-improver consumers
// (and golden files) see byte-identical JSON — while improver provenance
// survives a round trip when present.
func TestResultWireStability(t *testing.T) {
	in := paperInstance(t, 60, 3, 0)
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"generation", "improved"} {
		if bytes.Contains(data, []byte(key)) {
			t.Errorf("unimproved encoding leaks %q:\n%s", key, data)
		}
	}

	imp := *res
	imp.Generation = 3
	imp.Improved = true
	data, err = EncodeResult(&imp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 3 || !got.Improved {
		t.Fatalf("provenance lost in round trip: gen %d improved %v", got.Generation, got.Improved)
	}
}
