package graphio

import (
	"bytes"
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/reliability"
)

// The graphio fuzz contract, shared by every decoder: arbitrary bytes
// must never panic (reject with an error instead), and any input the
// decoder accepts must re-encode canonically — Encode(Decode(x)) followed
// by a second Decode/Encode cycle is byte-identical, so accepted values
// round-trip and the wire form is a fixed point.

// seedInstances returns valid encodings to seed the corpus: one per wake
// family, plus a small abstract (edge-list) instance.
func seedInstances(f *testing.F) [][]byte {
	f.Helper()
	ins := []core.Instance{
		figureInstance(),
		{G: figureInstance().G, Source: 1, Start: 3,
			Wake: dutycycle.NewUniform(4, 3, 99, 8)},
		{G: figureInstance().G, Source: 0, Start: 0,
			Wake: dutycycle.NewPeriodicPhase(3, []int{0, 1, 2, 1})},
		{G: figureInstance().G, Source: 2, Start: 1,
			Wake: dutycycle.AlwaysAwake{Nodes: 4}, PreCovered: []int{0, 3}},
		{G: figureInstance().G, Source: 0, Start: 1,
			Wake: dutycycle.AlwaysAwake{Nodes: 4}, Channels: 4},
	}
	var out [][]byte
	for _, in := range ins {
		data, err := EncodeInstance(in)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

func FuzzDecodeInstance(f *testing.F) {
	for _, data := range seedInstances(f) {
		f.Add(data)
	}
	f.Add([]byte(`{"version":1,"nodes":2,"edge_u":[0],"edge_v":[1],"source":0,"wake":{"kind":"always","nodes":2}}`))
	f.Add([]byte(`{"version":1,"nodes":-5}`))
	f.Add([]byte(`{"version":1,"nodes":999999999,"wake":{"kind":"uniform","nodes":999999999,"rate":2,"cycles":2}}`))
	f.Add([]byte(`{"version":1,"nodes":1,"x":[0],"y":[0],"wake":{"kind":"fixed","nodes":1,"rate":1,"period":4,"slots":[[3,1]]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := DecodeInstance(data)
		if err != nil {
			return
		}
		// Accepted instances are valid by contract...
		if err := in.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid instance: %v", err)
		}
		// ...and round-trip: same digest, byte-identical canonical form.
		enc, err := EncodeInstance(in)
		if err != nil {
			t.Fatalf("accepted instance does not re-encode: %v", err)
		}
		in2, err := DecodeInstance(enc)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		d1, err := InstanceDigest(in)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := InstanceDigest(in2)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("round trip changed the digest: %s → %s", d1, d2)
		}
		enc2, err := EncodeInstance(in2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	res := &core.Result{
		Scheduler: "gopt",
		Schedule: &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
			{T: 1, Senders: []int{0}, Covered: []int{1, 3}},
			{T: 2, Senders: []int{1, 3}, Covered: []int{2}},
		}},
		PA: 2, Exact: true,
		Stats: core.SearchStats{Expanded: 7, MemoHits: 2, MemoEntries: 5},
	}
	data, err := EncodeResult(res)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	chRes, err := EncodeResult(&core.Result{
		Scheduler: "gopt",
		Schedule: &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
			{T: 1, Senders: []int{0}, Covered: []int{1, 2}},
			{T: 2, Channel: 0, Senders: []int{1}, Covered: []int{3}},
			{T: 2, Channel: 1, Senders: []int{2}, Covered: []int{4}},
		}},
		PA: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(chRes)
	f.Add([]byte(`{"version":1,"scheduler":"x","schedule":{"t":[1],"senders":[[0]],"covered":[[1]]}}`))
	f.Add([]byte(`{"version":1,"schedule":{"t":[1,2],"senders":[[0]],"covered":[[1]]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResult(data)
		if err != nil {
			return
		}
		enc, err := EncodeResult(res)
		if err != nil {
			t.Fatalf("accepted result does not re-encode: %v", err)
		}
		res2, err := DecodeResult(enc)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		enc2, err := EncodeResult(res2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}

func FuzzDecodeReliabilityReport(f *testing.F) {
	rep := &reliability.Report{
		Trials:            4,
		Loss:              reliability.LossModel{Kind: "iid", Rate: 0.25, Seed: 7},
		ScheduleLatency:   6,
		MeanDeliveryRatio: 0.9375,
		FullCoverageRate:  0.75,
		DeliveredTrials:   3,
		NodeCovered:       []int{4, 4, 3, 4},
	}
	data, err := EncodeReliabilityReport(rep)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{"version":1,"report":{"trials":1,"node_covered":[1]}}`))
	f.Add([]byte(`{"version":1,"report":{"trials":-1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReliabilityReport(data)
		if err != nil {
			return
		}
		enc, err := EncodeReliabilityReport(rep)
		if err != nil {
			t.Fatalf("accepted report does not re-encode: %v", err)
		}
		rep2, err := DecodeReliabilityReport(enc)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		enc2, err := EncodeReliabilityReport(rep2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}

func FuzzDecodeSchedule(f *testing.F) {
	s := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []int{0}, Covered: []int{1}},
	}}
	data, err := EncodeSchedule(s)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	// A channelized schedule: two advances sharing slot 2 on channels 0/1.
	chData, err := EncodeSchedule(&core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []int{0}, Covered: []int{1, 2}},
		{T: 2, Channel: 0, Senders: []int{1}, Covered: []int{3}},
		{T: 2, Channel: 1, Senders: []int{2}, Covered: []int{4}},
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(chData)
	f.Add([]byte(`{"version":1,"t":[2,1],"senders":[[0],[1]],"covered":[[1],[0]]}`))
	f.Add([]byte(`{"version":1,"t":[1],"senders":[[0]],"covered":[[1]],"channel":[-3]}`))
	f.Add([]byte(`{"version":1,"t":[1,2],"senders":[[0],[1]],"covered":[[1],[2]],"channel":[1]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSchedule(data)
		if err != nil {
			return
		}
		enc, err := EncodeSchedule(s)
		if err != nil {
			t.Fatalf("accepted schedule does not re-encode: %v", err)
		}
		s2, err := DecodeSchedule(enc)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		enc2, err := EncodeSchedule(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}

func FuzzDecodeDeployment(f *testing.F) {
	f.Add([]byte(`{"version":1,"seed":3,"radius":10,"area_side":50,"source":0,"source_ecc":1,` +
		`"x":[1,5],"y":[1,5]}`))
	f.Add([]byte(`{"version":1,"radius":-1,"x":[0],"y":[0]}`))
	f.Add([]byte(`{"version":1,"radius":10,"source":5,"x":[0],"y":[0]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDeployment(data)
		if err != nil {
			return
		}
		enc, err := EncodeDeployment(d)
		if err != nil {
			t.Fatalf("accepted deployment does not re-encode: %v", err)
		}
		d2, err := DecodeDeployment(enc)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		enc2, err := EncodeDeployment(d2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
