package graphio

import (
	"encoding/json"
	"strings"
	"testing"

	"mlbs/internal/interference"
)

func TestInstanceRoundTripSINR(t *testing.T) {
	for name, p := range map[string]*interference.SINRParams{
		"plain":   {Alpha: 3, Beta: 2},
		"noise":   {Alpha: 2.5, Beta: 1.5, Noise: 0.01},
		"powered": {Alpha: 3, Beta: 2, Power: []float64{1, 2, 0.5, 1}},
	} {
		t.Run(name, func(t *testing.T) {
			in := figureInstance()
			in.SINR = p
			data, err := EncodeInstance(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeInstance(data)
			if err != nil {
				t.Fatal(err)
			}
			if got.SINR == nil || !got.SINR.Equal(in.SINR) {
				t.Fatalf("round trip changed SINR params: %+v → %+v", in.SINR, got.SINR)
			}
			d1, err := InstanceDigest(in)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := InstanceDigest(got)
			if err != nil {
				t.Fatal(err)
			}
			if d1 != d2 {
				t.Fatalf("round trip changed the digest: %s → %s", d1, d2)
			}
		})
	}
}

// TestInstanceDigestSINRTagged checks the tagged-suffix contract: a
// protocol-model instance digests exactly as before the SINR field
// existed, and every distinct parameter set lands on a distinct digest.
func TestInstanceDigestSINRTagged(t *testing.T) {
	digest := func(p *interference.SINRParams) string {
		in := figureInstance()
		in.SINR = p
		d, err := InstanceDigest(in)
		if err != nil {
			t.Fatal(err)
		}
		return d.String()
	}
	variants := map[string]string{
		"none":    digest(nil),
		"a3b2":    digest(&interference.SINRParams{Alpha: 3, Beta: 2}),
		"a3b1":    digest(&interference.SINRParams{Alpha: 3, Beta: 1}),
		"noise":   digest(&interference.SINRParams{Alpha: 3, Beta: 2, Noise: 0.01}),
		"powered": digest(&interference.SINRParams{Alpha: 3, Beta: 2, Power: []float64{1, 2, 1, 1}}),
	}
	seen := map[string]string{}
	for name, d := range variants {
		if prev, dup := seen[d]; dup {
			t.Errorf("variants %s and %s share digest %s", prev, name, d)
		}
		seen[d] = name
	}
}

// TestDecodeInstanceRejectsBadSINR feeds the decoder wire-level SINR
// parameters that must never reach a scheduler. NaN/Inf cannot arrive via
// JSON (the encoder rejects the literals), so the table covers the
// finite-but-invalid space; non-finite values are pinned at the
// SINRParams.Validate layer in internal/interference.
func TestDecodeInstanceRejectsBadSINR(t *testing.T) {
	base, err := EncodeInstance(figureInstance())
	if err != nil {
		t.Fatal(err)
	}
	patch := func(t *testing.T, fields map[string]any) []byte {
		t.Helper()
		var m map[string]any
		if err := json.Unmarshal(base, &m); err != nil {
			t.Fatal(err)
		}
		for k, v := range fields {
			m[k] = v
		}
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := []struct {
		name   string
		fields map[string]any
		want   string
	}{
		{"negative-alpha", map[string]any{"sinr_alpha": -2.0, "sinr_beta": 2.0}, "α"},
		{"zero-beta", map[string]any{"sinr_alpha": 3.0, "sinr_noise": 0.1}, "β"},
		{"negative-beta", map[string]any{"sinr_alpha": 3.0, "sinr_beta": -1.0}, "β"},
		{"negative-noise", map[string]any{"sinr_alpha": 3.0, "sinr_beta": 2.0, "sinr_noise": -0.5}, "noise"},
		{"power-length", map[string]any{"sinr_alpha": 3.0, "sinr_beta": 2.0, "sinr_power": []float64{1, 1}}, "power"},
		{"zero-power", map[string]any{"sinr_alpha": 3.0, "sinr_beta": 2.0, "sinr_power": []float64{1, 0, 1, 1}}, "power"},
		{"negative-power", map[string]any{"sinr_alpha": 3.0, "sinr_beta": 2.0, "sinr_power": []float64{1, -1, 1, 1}}, "power"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeInstance(patch(t, c.fields))
			if err == nil {
				t.Fatalf("decoder accepted %v", c.fields)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
	// Sanity: the same patch mechanism with valid params decodes cleanly.
	if _, err := DecodeInstance(patch(t, map[string]any{"sinr_alpha": 3.0, "sinr_beta": 2.0})); err != nil {
		t.Fatalf("valid SINR patch rejected: %v", err)
	}
}
