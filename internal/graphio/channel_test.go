package graphio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/graph"
)

func channelizedSchedule() *core.Schedule {
	return &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2}},
		{T: 2, Channel: 0, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{3}},
		{T: 2, Channel: 1, Senders: []graph.NodeID{2}, Covered: []graph.NodeID{}},
	}}
}

func TestScheduleChannelRoundTrip(t *testing.T) {
	s := channelizedSchedule()
	data, err := EncodeSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"channel"`)) {
		t.Fatal("channelized schedule encodes without a channel array")
	}
	got, err := DecodeSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed the schedule:\n%+v\nvs\n%+v", s, got)
	}
}

func TestSingleChannelScheduleWireUnchanged(t *testing.T) {
	// A schedule with every advance on channel 0 must encode exactly as
	// the pre-multi-channel format: no "channel" key at all.
	s := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1}},
	}}
	data, err := EncodeSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("channel")) {
		t.Fatalf("single-channel schedule mentions channels:\n%s", data)
	}
}

func TestDecodeScheduleChannelErrors(t *testing.T) {
	cases := map[string]string{
		"length mismatch": `{"version":1,"t":[1,2],"senders":[[0],[1]],"covered":[[1],[2]],"channel":[0]}`,
		"negative":        `{"version":1,"t":[1],"senders":[[0]],"covered":[[1]],"channel":[-1]}`,
		"huge":            `{"version":1,"t":[1],"senders":[[0]],"covered":[[1]],"channel":[9999]}`,
	}
	for name, data := range cases {
		if _, err := DecodeSchedule([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestResultChannelRoundTrip(t *testing.T) {
	res := &core.Result{Scheduler: "gopt", Schedule: channelizedSchedule(), PA: 2, Exact: false}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Schedule, got.Schedule) {
		t.Fatal("result round trip changed the channelized schedule")
	}
}

func channelizedInstance(k int) core.Instance {
	in := figureInstance()
	in.Channels = k
	return in
}

func TestInstanceChannelRoundTrip(t *testing.T) {
	in := channelizedInstance(4)
	data, err := EncodeInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"channels": 4`)) {
		t.Fatalf("channels missing from encoding:\n%s", data)
	}
	got, err := DecodeInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Channels != 4 {
		t.Fatalf("decoded channels = %d, want 4", got.Channels)
	}
}

func TestSingleChannelInstanceWireAndDigestUnchanged(t *testing.T) {
	base := figureInstance()
	enc0, err := EncodeInstance(base)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(enc0, []byte("channels")) {
		t.Fatalf("single-channel instance mentions channels:\n%s", enc0)
	}
	// Channels = 1 canonicalizes to the same wire bytes and digest.
	one := channelizedInstance(1)
	enc1, err := EncodeInstance(one)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc0, enc1) {
		t.Fatal("Channels=1 changes the wire encoding")
	}
	d0, err := InstanceDigest(base)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := InstanceDigest(one)
	if err != nil {
		t.Fatal(err)
	}
	if d0 != d1 {
		t.Fatal("Channels=1 changes the instance digest")
	}
	d4, err := InstanceDigest(channelizedInstance(4))
	if err != nil {
		t.Fatal(err)
	}
	if d4 == d0 {
		t.Fatal("Channels=4 does not change the instance digest")
	}
}

// TestChannelizedDigestGolden pins the channelized digest extension
// against drift, exactly like TestInstanceDigestGolden pins the base
// scheme: if this hash changes, every cached channelized plan key in every
// deployment is silently invalidated.
func TestChannelizedDigestGolden(t *testing.T) {
	in := core.Instance{
		G:      graph.NewBuilder(3, nil).AddEdge(0, 1).AddEdge(1, 2).Build(),
		Source: 0,
		Start:  1,
		Wake:   dutycycle.AlwaysAwake{Nodes: 3},
	}
	d1, err := InstanceDigest(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Channels = 4
	d4, err := InstanceDigest(in)
	if err != nil {
		t.Fatal(err)
	}
	const want = "a4fd5e03c5988c9b02047cb87dc18648bc6157c0901d9064ebad833f3081201b"
	if got := d4.String(); got != want {
		t.Fatalf("channelized digest drifted:\n got %s\nwant %s\n(single-channel: %s)", got, want, d1)
	}
}

func TestDecodeInstanceChannelBounds(t *testing.T) {
	in := channelizedInstance(2)
	data, err := EncodeInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	for name, repl := range map[string]string{
		"negative":  `"channels": -2`,
		"too large": `"channels": 65`,
	} {
		bad := strings.Replace(string(data), `"channels": 2`, repl, 1)
		if bad == string(data) {
			t.Fatalf("%s: replacement failed", name)
		}
		if _, err := DecodeInstance([]byte(bad)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// channels: 1 decodes to the canonical 0.
	one := strings.Replace(string(data), `"channels": 2`, `"channels": 1`, 1)
	got, err := DecodeInstance([]byte(one))
	if err != nil {
		t.Fatal(err)
	}
	if got.Channels != 0 {
		t.Fatalf("channels:1 decoded to %d, want canonical 0", got.Channels)
	}
}
