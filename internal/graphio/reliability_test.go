package graphio

import (
	"reflect"
	"strings"
	"testing"

	"mlbs/internal/reliability"
)

func sampleReport() *reliability.Report {
	return &reliability.Report{
		Trials:            4,
		Loss:              reliability.LossModel{Kind: reliability.KindIID, Rate: 0.25, Seed: 7},
		ScheduleLatency:   6,
		MeanDeliveryRatio: 0.9375,
		MeanDeliveryCI:    0.1194,
		FullCoverageRate:  0.75,
		FullCoverageLo:    0.3006,
		FullCoverageHi:    0.9544,
		DeliveredTrials:   3,
		Latency:           reliability.Quantiles{P50: 6, P90: 7, P99: 7, Max: 7},
		NodeCovered:       []int{4, 4, 3, 4},
		MeanLostFrames:    1.5,
		MeanCollisions:    0.25,
	}
}

func TestReliabilityReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	data, err := EncodeReliabilityReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReliabilityReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, rep)
	}
	// Encoding is canonical: re-encoding the decoded report is
	// byte-identical.
	again, err := EncodeReliabilityReport(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("re-encoding is not byte-stable")
	}
}

// TestReliabilitySchemaGolden pins the wire schema: adding, renaming, or
// reordering fields changes cached/archived reports and must be a
// conscious, version-bumped decision.
func TestReliabilitySchemaGolden(t *testing.T) {
	data, err := EncodeReliabilityReport(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
 "version": 1,
 "report": {
  "trials": 4,
  "loss": {
   "kind": "iid",
   "rate": 0.25,
   "seed": 7
  },
  "schedule_latency": 6,
  "mean_delivery_ratio": 0.9375,
  "mean_delivery_ci": 0.1194,
  "full_coverage_rate": 0.75,
  "full_coverage_lo": 0.3006,
  "full_coverage_hi": 0.9544,
  "delivered_trials": 3,
  "latency": {
   "p50": 6,
   "p90": 7,
   "p99": 7,
   "max": 7
  },
  "node_covered": [
   4,
   4,
   3,
   4
  ],
  "mean_lost_frames": 1.5,
  "mean_collisions": 0.25
 }
}`
	if strings.TrimSpace(string(data)) != golden {
		t.Fatalf("reliability schema drifted:\n%s", data)
	}
}

func TestReliabilityReportRejectsBadInput(t *testing.T) {
	if _, err := EncodeReliabilityReport(nil); err == nil {
		t.Fatal("nil report accepted")
	}
	if _, err := DecodeReliabilityReport([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := DecodeReliabilityReport([]byte(`{"version":99,"report":{}}`)); err == nil {
		t.Fatal("future version accepted")
	}
}
