package graphio

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"slices"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// wakeJSON is the stored form of a dutycycle.Schedule: the constructor
// kind plus exactly the parameters that rebuild it. Pseudo-random
// schedules store their seed, never their expansion, so files stay small
// and the decoded schedule is bit-identical to the encoder's.
type wakeJSON struct {
	Kind   string  `json:"kind"` // always | uniform | fixed | phase
	Nodes  int     `json:"nodes"`
	Rate   int     `json:"rate,omitempty"`
	Cycles int     `json:"cycles,omitempty"` // uniform
	Seed   uint64  `json:"seed,omitempty"`   // uniform
	Period int     `json:"period,omitempty"` // fixed
	Phases []int   `json:"phases,omitempty"` // phase
	Slots  [][]int `json:"slots,omitempty"`  // fixed
}

// instanceJSON is the stored form of a core.Instance. Unit-disk graphs are
// stored as positions + radius; abstract graphs as explicit edge lists.
type instanceJSON struct {
	Version    int       `json:"version"`
	Nodes      int       `json:"nodes"`
	X          []float64 `json:"x,omitempty"`
	Y          []float64 `json:"y,omitempty"`
	Radius     float64   `json:"radius,omitempty"`
	EdgeU      []int     `json:"edge_u,omitempty"`
	EdgeV      []int     `json:"edge_v,omitempty"`
	Source     int       `json:"source"`
	Start      int       `json:"start"`
	PreCovered []int     `json:"pre_covered,omitempty"`
	// Channels is the orthogonal-channel count K; omitted (0) and 1 both
	// mean the paper's single shared channel, so single-channel encodings
	// are byte-identical to the pre-multi-channel wire format.
	Channels int      `json:"channels,omitempty"`
	Wake     wakeJSON `json:"wake"`
	// SINR parameters of the physical interference model. All omitted
	// means the paper's protocol (graph) model, keeping protocol-model
	// encodings byte-identical to the pre-SINR wire format. Presence is
	// detected as any field nonzero/non-empty; β > 0 is then mandatory.
	SINRAlpha float64   `json:"sinr_alpha,omitempty"`
	SINRBeta  float64   `json:"sinr_beta,omitempty"`
	SINRNoise float64   `json:"sinr_noise,omitempty"`
	SINRPower []float64 `json:"sinr_power,omitempty"`
}

func encodeWake(s dutycycle.Schedule) (wakeJSON, error) {
	switch w := s.(type) {
	case dutycycle.AlwaysAwake:
		return wakeJSON{Kind: "always", Nodes: w.Nodes}, nil
	case *dutycycle.Uniform:
		return wakeJSON{Kind: "uniform", Nodes: w.N(), Rate: w.Rate(),
			Cycles: w.Cycles(), Seed: w.MasterSeed()}, nil
	case *dutycycle.Fixed:
		return wakeJSON{Kind: "fixed", Nodes: w.N(), Rate: w.Rate(),
			Period: w.Period(), Slots: w.SlotLists()}, nil
	case *dutycycle.PeriodicPhase:
		return wakeJSON{Kind: "phase", Nodes: w.N(), Rate: w.Rate(),
			Phases: w.Phases()}, nil
	default:
		return wakeJSON{}, fmt.Errorf("graphio: wake schedule %T has no stored form", s)
	}
}

// decodeWake rebuilds a wake schedule from its stored form. Every
// constructor precondition is checked here first: the dutycycle
// constructors panic on malformed inputs (their callers are programs, not
// wires), and a decoder must never panic on arbitrary bytes.
func decodeWake(w wakeJSON) (dutycycle.Schedule, error) {
	if w.Nodes < 0 || w.Nodes > MaxWireNodes {
		return nil, fmt.Errorf("graphio: wake schedule covers %d nodes (limit %d)", w.Nodes, MaxWireNodes)
	}
	switch w.Kind {
	case "always":
		return dutycycle.AlwaysAwake{Nodes: w.Nodes}, nil
	case "uniform":
		if w.Rate < 1 || w.Cycles < 1 {
			return nil, fmt.Errorf("graphio: uniform wake needs rate ≥ 1 and cycles ≥ 1")
		}
		return dutycycle.NewUniform(w.Nodes, w.Rate, w.Seed, w.Cycles), nil
	case "fixed":
		if w.Period < 1 || w.Rate < 1 || len(w.Slots) != w.Nodes {
			return nil, fmt.Errorf("graphio: malformed fixed wake schedule")
		}
		for u, list := range w.Slots {
			if len(list) == 0 {
				return nil, fmt.Errorf("graphio: fixed wake node %d has no wake slots", u)
			}
			prev := -1
			for _, t := range list {
				if t < 0 || t >= w.Period || t <= prev {
					return nil, fmt.Errorf("graphio: fixed wake node %d slots not ascending in [0,%d)", u, w.Period)
				}
				prev = t
			}
		}
		return dutycycle.NewFixed(w.Period, w.Rate, w.Slots), nil
	case "phase":
		if w.Rate < 1 || len(w.Phases) != w.Nodes {
			return nil, fmt.Errorf("graphio: malformed phase wake schedule")
		}
		for u, p := range w.Phases {
			if p < 0 || p >= w.Rate {
				return nil, fmt.Errorf("graphio: phase wake node %d phase %d outside [0,%d)", u, p, w.Rate)
			}
		}
		return dutycycle.NewPeriodicPhase(w.Rate, w.Phases), nil
	default:
		return nil, fmt.Errorf("graphio: unknown wake kind %q", w.Kind)
	}
}

// EncodeInstance serializes a broadcast instance — graph, source, start
// slot, pre-covered set and wake schedule — so the exact problem a
// schedule answers can be shipped to the plan service or archived next to
// its result.
func EncodeInstance(in core.Instance) ([]byte, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	wake, err := encodeWake(in.Wake)
	if err != nil {
		return nil, err
	}
	out := instanceJSON{
		Version: currentVersion,
		Nodes:   in.G.N(),
		Source:  in.Source,
		Start:   in.Start,
		Wake:    wake,
	}
	if in.Channels > 1 {
		// 0 and 1 both mean single-channel; canonicalize to the omitted
		// form so equal instances encode equally.
		out.Channels = in.Channels
	}
	if len(in.PreCovered) > 0 {
		out.PreCovered = append([]int(nil), in.PreCovered...)
		slices.Sort(out.PreCovered)
	}
	if in.SINR != nil {
		out.SINRAlpha = in.SINR.Alpha
		out.SINRBeta = in.SINR.Beta
		out.SINRNoise = in.SINR.Noise
		if len(in.SINR.Power) > 0 {
			out.SINRPower = append([]float64(nil), in.SINR.Power...)
		}
	}
	// Positions are always stored: abstract (radius-0) graphs may still
	// carry geometry the E-model reads, and InstanceDigest hashes it —
	// dropping it here would change the digest across a round trip.
	for _, p := range in.G.Positions() {
		out.X = append(out.X, p.X)
		out.Y = append(out.Y, p.Y)
	}
	if in.G.Radius() > 0 {
		out.Radius = in.G.Radius()
	} else {
		for u := 0; u < in.G.N(); u++ {
			for _, v := range in.G.Adj(u) {
				if v > u {
					out.EdgeU = append(out.EdgeU, u)
					out.EdgeV = append(out.EdgeV, v)
				}
			}
		}
	}
	return json.MarshalIndent(out, "", " ")
}

// DecodeInstance rebuilds an instance from EncodeInstance output and
// validates it.
func DecodeInstance(data []byte) (core.Instance, error) {
	var st instanceJSON
	if err := json.Unmarshal(data, &st); err != nil {
		return core.Instance{}, fmt.Errorf("graphio: %w", err)
	}
	if st.Version != currentVersion {
		return core.Instance{}, fmt.Errorf("graphio: unsupported version %d", st.Version)
	}
	if st.Nodes < 1 || st.Nodes > MaxWireNodes {
		return core.Instance{}, fmt.Errorf("graphio: instance has %d nodes (limit %d)", st.Nodes, MaxWireNodes)
	}
	if st.Channels < 0 || st.Channels > core.MaxChannels {
		return core.Instance{}, fmt.Errorf("graphio: channel count %d outside [0,%d]", st.Channels, core.MaxChannels)
	}
	if st.Channels == 1 {
		st.Channels = 0 // canonical single-channel form
	}
	var pos []geom.Point
	if len(st.X) > 0 || len(st.Y) > 0 {
		if len(st.X) != st.Nodes || len(st.Y) != st.Nodes {
			return core.Instance{}, fmt.Errorf("graphio: %d nodes but %d/%d coordinates", st.Nodes, len(st.X), len(st.Y))
		}
		pos = make([]geom.Point, st.Nodes)
		for i := range pos {
			pos[i] = geom.Point{X: st.X[i], Y: st.Y[i]}
		}
	}
	var g *graph.Graph
	switch {
	case st.Radius > 0:
		if pos == nil {
			return core.Instance{}, fmt.Errorf("graphio: UDG instance without coordinates")
		}
		g = graph.FromUDG(pos, st.Radius)
	default:
		if len(st.EdgeU) != len(st.EdgeV) {
			return core.Instance{}, fmt.Errorf("graphio: edge arrays of different lengths")
		}
		b := graph.NewBuilder(st.Nodes, pos)
		for i := range st.EdgeU {
			u, v := st.EdgeU[i], st.EdgeV[i]
			if u < 0 || v < 0 || u >= st.Nodes || v >= st.Nodes || u == v {
				return core.Instance{}, fmt.Errorf("graphio: bad edge {%d,%d}", u, v)
			}
			b.AddEdge(u, v)
		}
		g = b.Build()
	}
	wake, err := decodeWake(st.Wake)
	if err != nil {
		return core.Instance{}, err
	}
	in := core.Instance{
		G:          g,
		Source:     st.Source,
		Start:      st.Start,
		Wake:       wake,
		PreCovered: st.PreCovered,
		Channels:   st.Channels,
	}
	if st.SINRAlpha != 0 || st.SINRBeta != 0 || st.SINRNoise != 0 || len(st.SINRPower) > 0 {
		p := &interference.SINRParams{
			Alpha: st.SINRAlpha,
			Beta:  st.SINRBeta,
			Noise: st.SINRNoise,
			Power: st.SINRPower,
		}
		// Range/finiteness checks run here, before Instance.Validate walks
		// the geometry: a decoder must reject NaN/Inf powers, α < 0, β ≤ 0
		// or negative noise without panicking on arbitrary bytes.
		if err := p.Validate(st.Nodes); err != nil {
			return core.Instance{}, fmt.Errorf("graphio: %w", err)
		}
		in.SINR = p
	}
	if err := in.Validate(); err != nil {
		return core.Instance{}, fmt.Errorf("graphio: %w", err)
	}
	return in, nil
}

// Digest is the content address of a broadcast instance: a SHA-256 over a
// canonical binary encoding of everything a scheduler's answer depends on
// — node positions, radius, the edge set, source, start slot, pre-covered
// nodes, and the wake schedule's parameters. Equal instances digest
// equally across processes and architectures; changing any input changes
// the digest.
type Digest [sha256.Size]byte

// String returns the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// digestMagic versions the canonical encoding; bump it whenever the byte
// layout below changes, so stale cache keys can never alias new ones.
const digestMagic = "mlbs-instance-v1"

// DigestWriter accumulates a canonical binary encoding into a SHA-256 —
// the shared substrate of every content digest in the system (instance
// digests here, delta digests in the churn package). One writer, one
// byte-layout convention: little-endian u64s, length-prefixed strings
// and slices.
type DigestWriter struct {
	h   hash.Hash
	buf [8]byte
}

// NewDigestWriter returns a writer seeded with the given magic string —
// the version tag that keeps digest schemes from aliasing each other.
func NewDigestWriter(magic string) *DigestWriter {
	w := &DigestWriter{h: sha256.New()}
	w.S(magic)
	return w
}

// U64 writes one little-endian 64-bit word.
func (w *DigestWriter) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

// I writes an int. F writes a float64 by bit pattern. S writes a
// length-prefixed string. Ints writes a length-prefixed int slice.
func (w *DigestWriter) I(v int)     { w.U64(uint64(int64(v))) }
func (w *DigestWriter) F(v float64) { w.U64(math.Float64bits(v)) }
func (w *DigestWriter) S(v string)  { w.I(len(v)); w.h.Write([]byte(v)) }
func (w *DigestWriter) Ints(v []int) {
	w.I(len(v))
	for _, x := range v {
		w.I(x)
	}
}

// Sum finalizes the digest.
func (w *DigestWriter) Sum() Digest {
	var d Digest
	w.h.Sum(d[:0])
	return d
}

// InstanceDigest computes the content address of an instance.
func InstanceDigest(in core.Instance) (Digest, error) {
	w, err := instanceDigestWriter(in)
	if err != nil {
		return Digest{}, err
	}
	return w.Sum(), nil
}

// instanceDigestWriter streams the canonical instance encoding into a
// fresh writer and returns it unfinalized, so digest variants (the
// aggregation workload's "agg" suffix) can append their tag before Sum.
func instanceDigestWriter(in core.Instance) (*DigestWriter, error) {
	if in.G == nil || in.Wake == nil {
		return nil, fmt.Errorf("graphio: cannot digest an instance with a nil graph or wake schedule")
	}
	wake, err := encodeWake(in.Wake)
	if err != nil {
		return nil, err
	}
	w := NewDigestWriter(digestMagic)
	n := in.G.N()
	w.I(n)
	w.F(in.G.Radius())
	for _, p := range in.G.Positions() {
		w.F(p.X)
		w.F(p.Y)
	}
	w.I(in.G.M())
	for u := 0; u < n; u++ {
		for _, v := range in.G.Adj(u) { // sorted by construction
			if v > u {
				w.I(u)
				w.I(v)
			}
		}
	}
	w.I(in.Source)
	w.I(in.Start)
	pre := append([]int(nil), in.PreCovered...)
	slices.Sort(pre)
	w.Ints(pre)
	w.S(wake.Kind)
	w.I(wake.Nodes)
	w.I(wake.Rate)
	w.I(wake.Cycles)
	w.U64(wake.Seed)
	w.I(wake.Period)
	w.Ints(wake.Phases)
	w.I(len(wake.Slots))
	for _, s := range wake.Slots {
		w.Ints(s)
	}
	// The channel count is appended only when K > 1, so every
	// single-channel instance keeps its pre-multi-channel digest (cache
	// keys, golden pins). The tag string keeps a channelized encoding from
	// aliasing any single-channel one.
	if in.Channels > 1 {
		w.S("channels")
		w.I(in.Channels)
	}
	// Same tagged-suffix pattern for the interference model: protocol-model
	// instances keep their historic digests; an SINR encoding can never
	// alias a protocol one (or one with different parameters).
	if in.SINR != nil {
		w.S("sinr")
		w.F(in.SINR.Alpha)
		w.F(in.SINR.Beta)
		w.F(in.SINR.Noise)
		w.I(len(in.SINR.Power))
		for _, p := range in.SINR.Power {
			w.F(p)
		}
	}
	return w, nil
}

// resultJSON is the stored form of a core.Result — the schema both
// `mlb-run -json` and the plan service's HTTP responses emit.
type resultJSON struct {
	Version   int    `json:"version"`
	Scheduler string `json:"scheduler"`
	PA        int    `json:"pa"`
	Latency   int    `json:"latency"`
	Exact     bool   `json:"exact"`
	// Generation and Improved carry the anytime-improver provenance of a
	// served plan. Both are omitted at their zero values so every wire
	// encoding that predates the improver stays byte-identical.
	Generation int              `json:"generation,omitempty"`
	Improved   bool             `json:"improved,omitempty"`
	Stats      core.SearchStats `json:"stats"`
	Schedule   scheduleJSON     `json:"schedule"`
}

// EncodeResult serializes a scheduler result, schedule included.
func EncodeResult(res *core.Result) ([]byte, error) {
	if res == nil || res.Schedule == nil {
		return nil, fmt.Errorf("graphio: nil result")
	}
	out := resultJSON{
		Version:    currentVersion,
		Scheduler:  res.Scheduler,
		PA:         res.PA,
		Latency:    res.Schedule.Latency(),
		Exact:      res.Exact,
		Generation: res.Generation,
		Improved:   res.Improved,
		Stats:      res.Stats,
		Schedule:   toScheduleJSON(res.Schedule),
	}
	return json.MarshalIndent(out, "", " ")
}

// DecodeResult rebuilds a result from EncodeResult output; Validate the
// inner schedule against its instance before trusting it.
func DecodeResult(data []byte) (*core.Result, error) {
	var st resultJSON
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if st.Version != currentVersion {
		return nil, fmt.Errorf("graphio: unsupported version %d", st.Version)
	}
	s, err := fromScheduleJSON(st.Schedule)
	if err != nil {
		return nil, err
	}
	return &core.Result{
		Scheduler:  st.Scheduler,
		Schedule:   s,
		PA:         st.PA,
		Exact:      st.Exact,
		Generation: st.Generation,
		Improved:   st.Improved,
		Stats:      st.Stats,
	}, nil
}
