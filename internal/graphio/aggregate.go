package graphio

import (
	"encoding/json"
	"fmt"

	"mlbs/internal/aggregate"
	"mlbs/internal/core"
	"mlbs/internal/graph"
)

// aggScheduleJSON is the stored form of an aggregate.Schedule, columnar
// like scheduleJSON: parallel arrays per advance plus the routing tree's
// parent array. The channel column is present only when some advance uses
// a channel above 0, so single-channel encodings stay minimal.
type aggScheduleJSON struct {
	Version int              `json:"version"`
	Sink    graph.NodeID     `json:"sink"`
	Start   int              `json:"start"`
	Parent  []graph.NodeID   `json:"parent"`
	T       []int            `json:"t"`
	Senders [][]graph.NodeID `json:"senders"`
	Channel []int            `json:"channel,omitempty"`
}

func toAggScheduleJSON(s *aggregate.Schedule) aggScheduleJSON {
	out := aggScheduleJSON{
		Version: currentVersion,
		Sink:    s.Sink,
		Start:   s.Start,
		Parent:  s.Parent,
	}
	channelized := false
	for _, adv := range s.Advances {
		out.T = append(out.T, adv.T)
		out.Senders = append(out.Senders, adv.Senders)
		if adv.Channel != 0 {
			channelized = true
		}
	}
	if channelized {
		out.Channel = make([]int, len(s.Advances))
		for i, adv := range s.Advances {
			out.Channel[i] = adv.Channel
		}
	}
	return out
}

func fromAggScheduleJSON(st aggScheduleJSON) (*aggregate.Schedule, error) {
	if len(st.T) != len(st.Senders) {
		return nil, fmt.Errorf("graphio: aggregation schedule arrays of different lengths")
	}
	if len(st.Channel) != 0 && len(st.Channel) != len(st.T) {
		return nil, fmt.Errorf("graphio: aggregation channel array of different length")
	}
	n := len(st.Parent)
	if n < 1 || n > MaxWireNodes {
		return nil, fmt.Errorf("graphio: aggregation parent array has %d entries (limit %d)", n, MaxWireNodes)
	}
	if st.Sink < 0 || st.Sink >= n {
		return nil, fmt.Errorf("graphio: sink %d outside [0,%d)", st.Sink, n)
	}
	for u, p := range st.Parent {
		if p < -1 || p >= n {
			return nil, fmt.Errorf("graphio: node %d parent %d outside [-1,%d)", u, p, n)
		}
	}
	s := &aggregate.Schedule{Sink: st.Sink, Start: st.Start, Parent: st.Parent}
	for i := range st.T {
		adv := aggregate.Advance{T: st.T[i], Senders: st.Senders[i]}
		if len(st.Channel) > 0 {
			adv.Channel = st.Channel[i]
			if adv.Channel < 0 || adv.Channel > maxWireChannel {
				return nil, fmt.Errorf("graphio: advance %d channel %d outside [0,%d]", i, adv.Channel, maxWireChannel)
			}
		}
		for _, u := range adv.Senders {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("graphio: advance %d sender %d outside [0,%d)", i, u, n)
			}
		}
		s.Advances = append(s.Advances, adv)
	}
	return s, nil
}

// EncodeAggSchedule serializes an aggregation schedule.
func EncodeAggSchedule(s *aggregate.Schedule) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("graphio: nil aggregation schedule")
	}
	return json.MarshalIndent(toAggScheduleJSON(s), "", " ")
}

// DecodeAggSchedule rebuilds an aggregation schedule from
// EncodeAggSchedule output. Like every decoder in this package it rejects
// malformed bytes instead of panicking; run aggregate.Schedule.Validate
// against the instance before trusting the plan.
func DecodeAggSchedule(data []byte) (*aggregate.Schedule, error) {
	var st aggScheduleJSON
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if st.Version != currentVersion {
		return nil, fmt.Errorf("graphio: unsupported version %d", st.Version)
	}
	return fromAggScheduleJSON(st)
}

// aggResultJSON is the stored form of an aggregate.Result — the schema the
// aggregation endpoint's HTTP responses embed.
type aggResultJSON struct {
	Version   int             `json:"version"`
	Scheduler string          `json:"scheduler"`
	Latency   int             `json:"latency"`
	Schedule  aggScheduleJSON `json:"schedule"`
}

// EncodeAggResult serializes an aggregation scheduling result.
func EncodeAggResult(res *aggregate.Result) ([]byte, error) {
	if res == nil || res.Schedule == nil {
		return nil, fmt.Errorf("graphio: nil aggregation result")
	}
	out := aggResultJSON{
		Version:   currentVersion,
		Scheduler: res.Scheduler,
		Latency:   res.Schedule.Latency(),
		Schedule:  toAggScheduleJSON(res.Schedule),
	}
	return json.MarshalIndent(out, "", " ")
}

// DecodeAggResult rebuilds an aggregation result from EncodeAggResult
// output.
func DecodeAggResult(data []byte) (*aggregate.Result, error) {
	var st aggResultJSON
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if st.Version != currentVersion {
		return nil, fmt.Errorf("graphio: unsupported version %d", st.Version)
	}
	s, err := fromAggScheduleJSON(st.Schedule)
	if err != nil {
		return nil, err
	}
	return &aggregate.Result{Scheduler: st.Scheduler, Schedule: s, LatencySlots: st.Latency}, nil
}

// AggInstanceDigest computes the content address of an instance *as an
// aggregation problem*: the broadcast digest stream plus an "agg" suffix
// tag, following the channels/sinr tagged-suffix pattern. The same
// topology asked as a broadcast and as a convergecast must never share a
// cache key or alias each other's plans.
func AggInstanceDigest(in core.Instance) (Digest, error) {
	w, err := instanceDigestWriter(in)
	if err != nil {
		return Digest{}, err
	}
	w.S("agg")
	return w.Sum(), nil
}
