package graphio

import (
	"reflect"
	"strings"
	"testing"

	"mlbs/internal/aggregate"
	"mlbs/internal/core"
	"mlbs/internal/graph"
)

// sampleAggSchedule is a small fixed convergecast plan: path 3→2→1→0 plus
// a channel-1 bundle, exercising the parent array and the channel column.
func sampleAggSchedule() *aggregate.Schedule {
	return &aggregate.Schedule{
		Sink:   0,
		Start:  1,
		Parent: []graph.NodeID{-1, 0, 1, 2, 1},
		Advances: []aggregate.Advance{
			{T: 1, Channel: 0, Senders: []graph.NodeID{3}},
			{T: 1, Channel: 1, Senders: []graph.NodeID{4}},
			{T: 2, Channel: 0, Senders: []graph.NodeID{2}},
			{T: 3, Channel: 0, Senders: []graph.NodeID{1}},
		},
	}
}

func TestAggScheduleRoundTrip(t *testing.T) {
	s := sampleAggSchedule()
	data, err := EncodeAggSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAggSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, s)
	}
	again, err := EncodeAggSchedule(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("re-encoding is not byte-stable")
	}
}

// TestAggScheduleSingleChannelOmitsColumn pins the minimal single-channel
// form: no channel column, so K=1 plans stay as small as broadcast's.
func TestAggScheduleSingleChannelOmitsColumn(t *testing.T) {
	s := &aggregate.Schedule{Sink: 0, Start: 1, Parent: []graph.NodeID{-1, 0}, Advances: []aggregate.Advance{
		{T: 1, Senders: []graph.NodeID{1}},
	}}
	data, err := EncodeAggSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"channel"`) {
		t.Fatalf("single-channel encoding carries a channel column:\n%s", data)
	}
	got, err := DecodeAggSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip diverged: %+v", got)
	}
}

// TestAggScheduleSchemaGolden pins the wire schema byte-for-byte: renaming
// or reordering fields changes archived plans and cache payloads and must
// be a conscious, version-bumped decision.
func TestAggScheduleSchemaGolden(t *testing.T) {
	data, err := EncodeAggSchedule(sampleAggSchedule())
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
 "version": 1,
 "sink": 0,
 "start": 1,
 "parent": [
  -1,
  0,
  1,
  2,
  1
 ],
 "t": [
  1,
  1,
  2,
  3
 ],
 "senders": [
  [
   3
  ],
  [
   4
  ],
  [
   2
  ],
  [
   1
  ]
 ],
 "channel": [
  0,
  1,
  0,
  0
 ]
}`
	if strings.TrimSpace(string(data)) != golden {
		t.Fatalf("aggregation schedule schema drifted:\n%s", data)
	}
}

func TestAggResultRoundTrip(t *testing.T) {
	res := &aggregate.Result{Scheduler: "agg-spt", Schedule: sampleAggSchedule(), LatencySlots: 3}
	data, err := EncodeAggResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAggResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, res)
	}
}

func TestAggScheduleRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not json", `{nope`},
		{"bad version", `{"version":9,"sink":0,"start":1,"parent":[-1],"t":[],"senders":[]}`},
		{"length mismatch", `{"version":1,"sink":0,"start":1,"parent":[-1,0],"t":[1],"senders":[]}`},
		{"channel mismatch", `{"version":1,"sink":0,"start":1,"parent":[-1,0],"t":[1],"senders":[[1]],"channel":[0,0]}`},
		{"no nodes", `{"version":1,"sink":0,"start":1,"parent":[],"t":[],"senders":[]}`},
		{"sink out of range", `{"version":1,"sink":5,"start":1,"parent":[-1,0],"t":[],"senders":[]}`},
		{"parent out of range", `{"version":1,"sink":0,"start":1,"parent":[-1,7],"t":[],"senders":[]}`},
		{"sender out of range", `{"version":1,"sink":0,"start":1,"parent":[-1,0],"t":[1],"senders":[[9]]}`},
		{"channel out of range", `{"version":1,"sink":0,"start":1,"parent":[-1,0],"t":[1],"senders":[[1]],"channel":[999]}`},
	}
	for _, tc := range cases {
		if _, err := DecodeAggSchedule([]byte(tc.data)); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	if _, err := EncodeAggSchedule(nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
	if _, err := EncodeAggResult(nil); err == nil {
		t.Fatal("nil result accepted")
	}
}

// TestAggDigestTag pins the digest-tagging contract: the aggregation
// digest of an instance differs from its broadcast digest (no cache
// aliasing between workloads) while staying deterministic.
func TestAggDigestTag(t *testing.T) {
	in := figureInstance()
	base, err := InstanceDigest(in)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := AggInstanceDigest(in)
	if err != nil {
		t.Fatal(err)
	}
	if agg == base {
		t.Fatal("aggregation digest aliases the broadcast digest")
	}
	again, err := AggInstanceDigest(in)
	if err != nil {
		t.Fatal(err)
	}
	if agg != again {
		t.Fatal("aggregation digest not deterministic")
	}
	if _, err := AggInstanceDigest(core.Instance{}); err == nil {
		t.Fatal("nil-graph instance digested")
	}
}
