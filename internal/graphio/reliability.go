package graphio

import (
	"encoding/json"
	"fmt"

	"mlbs/internal/reliability"
)

// reliabilityJSON is the stored form of a reliability.Report — the
// canonical schema both `mlb-validate` and the plan service's
// /v1/validate endpoint emit. Every field of the report is deterministic
// in (instance, schedule, loss model, trials), so the encoding is stable
// across runs and machines and can be cached by content address.
type reliabilityJSON struct {
	Version int                `json:"version"`
	Report  reliability.Report `json:"report"`
}

// EncodeReliabilityReport serializes a Monte-Carlo reliability report.
func EncodeReliabilityReport(rep *reliability.Report) ([]byte, error) {
	if rep == nil {
		return nil, fmt.Errorf("graphio: nil reliability report")
	}
	return json.MarshalIndent(reliabilityJSON{Version: currentVersion, Report: *rep}, "", " ")
}

// DecodeReliabilityReport rebuilds a report from EncodeReliabilityReport
// output.
func DecodeReliabilityReport(data []byte) (*reliability.Report, error) {
	var st reliabilityJSON
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if st.Version != currentVersion {
		return nil, fmt.Errorf("graphio: unsupported version %d", st.Version)
	}
	if st.Report.Trials < 0 || len(st.Report.NodeCovered) == 0 && st.Report.Trials > 0 {
		return nil, fmt.Errorf("graphio: malformed reliability report")
	}
	return &st.Report, nil
}
