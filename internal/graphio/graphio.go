// Package graphio persists deployments and schedules as JSON, so that a
// specific random instance — or a schedule computed on one machine — can
// be shared, archived, and replayed exactly. Graphs are stored as
// positions + radius and rebuilt with the UDG constructor, which keeps
// files small and guarantees the decoded adjacency matches the encoder's.
package graphio

import (
	"encoding/json"
	"fmt"

	"mlbs/internal/core"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/topology"
)

// deploymentJSON is the stored form of a topology.Deployment.
type deploymentJSON struct {
	Version   int          `json:"version"`
	Seed      uint64       `json:"seed"`
	Radius    float64      `json:"radius"`
	AreaSide  float64      `json:"area_side"`
	Source    graph.NodeID `json:"source"`
	SourceEcc int          `json:"source_ecc"`
	X         []float64    `json:"x"`
	Y         []float64    `json:"y"`
}

// currentVersion guards file-format evolution.
const currentVersion = 1

// MaxWireNodes bounds the node count any wire-reachable path will
// materialize: the decoders here, and churn.Apply (a join-heavy delta on
// /v1/replan must not grow the network past it). Graph construction is
// quadratic in memory (per-node neighbor bitsets, and adjacency slabs on
// dense graphs), so sizes that arbitrary bytes could otherwise demand
// must be refused; in-process callers with genuinely larger instances
// don't round-trip through JSON. A complete graph at this cap costs
// ~67 MB of adjacency — survivable; 1<<14 would already be ~2 GB.
const MaxWireNodes = 1 << 12

// EncodeDeployment serializes a deployment.
func EncodeDeployment(d *topology.Deployment) ([]byte, error) {
	if d == nil || d.G == nil {
		return nil, fmt.Errorf("graphio: nil deployment")
	}
	out := deploymentJSON{
		Version:   currentVersion,
		Seed:      d.Seed,
		Radius:    d.Cfg.Radius,
		AreaSide:  d.Cfg.AreaSide,
		Source:    d.Source,
		SourceEcc: d.SourceEcc,
	}
	for _, p := range d.G.Positions() {
		out.X = append(out.X, p.X)
		out.Y = append(out.Y, p.Y)
	}
	return json.MarshalIndent(out, "", " ")
}

// DecodeDeployment rebuilds a deployment from its stored form.
func DecodeDeployment(data []byte) (*topology.Deployment, error) {
	var in deploymentJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if in.Version != currentVersion {
		return nil, fmt.Errorf("graphio: unsupported version %d", in.Version)
	}
	if len(in.X) != len(in.Y) {
		return nil, fmt.Errorf("graphio: coordinate arrays of different lengths")
	}
	if len(in.X) == 0 {
		return nil, fmt.Errorf("graphio: empty deployment")
	}
	if len(in.X) > MaxWireNodes {
		return nil, fmt.Errorf("graphio: deployment has %d nodes (limit %d)", len(in.X), MaxWireNodes)
	}
	if in.Radius <= 0 {
		return nil, fmt.Errorf("graphio: non-positive radius")
	}
	pos := make([]geom.Point, len(in.X))
	for i := range pos {
		pos[i] = geom.Point{X: in.X[i], Y: in.Y[i]}
	}
	g := graph.FromUDG(pos, in.Radius)
	if in.Source < 0 || in.Source >= g.N() {
		return nil, fmt.Errorf("graphio: source %d out of range", in.Source)
	}
	ecc, connected := g.Eccentricity(in.Source)
	if !connected {
		return nil, fmt.Errorf("graphio: decoded deployment is disconnected")
	}
	if in.SourceEcc != 0 && ecc != in.SourceEcc {
		return nil, fmt.Errorf("graphio: stored eccentricity %d, recomputed %d — file corrupt?", in.SourceEcc, ecc)
	}
	return &topology.Deployment{
		G:         g,
		Source:    in.Source,
		SourceEcc: ecc,
		Seed:      in.Seed,
		Cfg: topology.Config{
			N:        g.N(),
			AreaSide: in.AreaSide,
			Radius:   in.Radius,
		},
	}, nil
}

// scheduleJSON is the stored form of a core.Schedule. Channel is emitted
// only when some advance uses a channel other than 0, so single-channel
// schedules encode byte-identically to the pre-multi-channel format.
type scheduleJSON struct {
	Version int              `json:"version"`
	Source  graph.NodeID     `json:"source"`
	Start   int              `json:"start"`
	T       []int            `json:"t"`
	Senders [][]graph.NodeID `json:"senders"`
	Covered [][]graph.NodeID `json:"covered"`
	Channel []int            `json:"channel,omitempty"`
}

// maxWireChannel bounds per-advance channel numbers a decoder will accept;
// Schedule.Validate enforces the instance's real channel count later.
const maxWireChannel = core.MaxChannels

// toScheduleJSON projects a schedule onto its stored form.
func toScheduleJSON(s *core.Schedule) scheduleJSON {
	out := scheduleJSON{Version: currentVersion, Source: s.Source, Start: s.Start}
	channelized := false
	for _, adv := range s.Advances {
		out.T = append(out.T, adv.T)
		out.Senders = append(out.Senders, adv.Senders)
		out.Covered = append(out.Covered, adv.Covered)
		if adv.Channel != 0 {
			channelized = true
		}
	}
	if channelized {
		for _, adv := range s.Advances {
			out.Channel = append(out.Channel, adv.Channel)
		}
	}
	return out
}

// fromScheduleJSON rebuilds a schedule from its stored form, checking the
// array shape and channel bounds.
func fromScheduleJSON(in scheduleJSON) (*core.Schedule, error) {
	if len(in.T) != len(in.Senders) || len(in.T) != len(in.Covered) {
		return nil, fmt.Errorf("graphio: advance arrays of different lengths")
	}
	if len(in.Channel) != 0 && len(in.Channel) != len(in.T) {
		return nil, fmt.Errorf("graphio: channel array of different length")
	}
	s := &core.Schedule{Source: in.Source, Start: in.Start}
	for i := range in.T {
		adv := core.Advance{
			T:       in.T[i],
			Senders: in.Senders[i],
			Covered: in.Covered[i],
		}
		if len(in.Channel) > 0 {
			ch := in.Channel[i]
			if ch < 0 || ch >= maxWireChannel {
				return nil, fmt.Errorf("graphio: advance %d channel %d outside [0,%d)", i, ch, maxWireChannel)
			}
			adv.Channel = ch
		}
		s.Advances = append(s.Advances, adv)
	}
	return s, nil
}

// EncodeSchedule serializes a schedule.
func EncodeSchedule(s *core.Schedule) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("graphio: nil schedule")
	}
	return json.MarshalIndent(toScheduleJSON(s), "", " ")
}

// DecodeSchedule rebuilds a schedule; callers should Validate it against
// their instance before trusting it.
func DecodeSchedule(data []byte) (*core.Schedule, error) {
	var in scheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if in.Version != currentVersion {
		return nil, fmt.Errorf("graphio: unsupported version %d", in.Version)
	}
	return fromScheduleJSON(in)
}
