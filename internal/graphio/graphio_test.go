package graphio

import (
	"strings"
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/topology"
)

func TestDeploymentRoundTrip(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(90), 17)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeDeployment(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDeployment(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.G.N() != d.G.N() || got.G.M() != d.G.M() {
		t.Fatalf("graph changed: %v vs %v", got.G, d.G)
	}
	if got.Source != d.Source || got.SourceEcc != d.SourceEcc || got.Seed != d.Seed {
		t.Fatalf("metadata changed: %+v", got)
	}
	for u := 0; u < d.G.N(); u++ {
		if got.G.Pos(u) != d.G.Pos(u) {
			t.Fatalf("position %d changed", u)
		}
		for v := u + 1; v < d.G.N(); v++ {
			if got.G.HasEdge(u, v) != d.G.HasEdge(u, v) {
				t.Fatalf("edge {%d,%d} changed", u, v)
			}
		}
	}
}

func TestScheduleRoundTripAndValidate(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(70), 3)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSchedule(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.PA() != res.PA || len(got.Advances) != len(res.Schedule.Advances) {
		t.Fatalf("schedule changed: PA %d vs %d", got.PA(), res.PA)
	}
	if err := got.Validate(in); err != nil {
		t.Fatalf("decoded schedule invalid: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(60), 5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeDeployment(d)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"bad json":      "{",
		"wrong version": strings.Replace(string(data), `"version": 1`, `"version": 99`, 1),
		"bad ecc":       strings.Replace(string(data), `"source_ecc": `+itoa(d.SourceEcc), `"source_ecc": 99`, 1),
	}
	for name, payload := range cases {
		if _, err := DecodeDeployment([]byte(payload)); err == nil {
			t.Fatalf("%s: corrupt file accepted", name)
		}
	}
}

func TestDecodeRejectsStructuralErrors(t *testing.T) {
	bad := []string{
		`{"version":1,"radius":10,"x":[1],"y":[]}`,             // length mismatch
		`{"version":1,"radius":10,"x":[],"y":[]}`,              // empty
		`{"version":1,"radius":0,"x":[1],"y":[1]}`,             // bad radius
		`{"version":1,"radius":10,"source":5,"x":[1],"y":[1]}`, // source range
	}
	for i, payload := range bad {
		if _, err := DecodeDeployment([]byte(payload)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestEncodeNil(t *testing.T) {
	if _, err := EncodeDeployment(nil); err == nil {
		t.Fatal("nil deployment encoded")
	}
	if _, err := EncodeSchedule(nil); err == nil {
		t.Fatal("nil schedule encoded")
	}
}

func TestDecodeScheduleMismatchedArrays(t *testing.T) {
	if _, err := DecodeSchedule([]byte(`{"version":1,"t":[1],"senders":[],"covered":[]}`)); err == nil {
		t.Fatal("mismatched arrays accepted")
	}
	if _, err := DecodeSchedule([]byte(`{"version":2}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := ""
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return digits
}
