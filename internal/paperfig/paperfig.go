// Package paperfig reconstructs the paper's worked examples: the 12-node
// network of Figure 1 and the 5-node network of Figure 2, exactly as pinned
// down by the prose of Sections II and IV-E and the schedule traces of
// Tables II–IV.
//
// The Figure 1 adjacency is forced, edge by edge, by the coverage sets the
// tables report (e.g. firing node 0 covers {3,5,6,7} ⇒ N(0)∩W̄ = {3,5,6,7}
// at that state). Node coordinates were then solved so that (a) the unit-
// disk graph at radius 10 reproduces that adjacency exactly and (b) the
// quadrant structure yields the E₂ values of Section IV-E: E₂(7)=E₂(8)=
// E₂(9)=0, E₂(0)=E₂(4)=E₂(5)=E₂(6)=E₂(10)=1, E₂(1)=2 — with node 3 in Q₂
// of node 0 and node 7 north-west of node 6 as drawn, so that Eq. 10
// selects node 1's (magenta) color at the source and the {0,4} color at
// the following step, reproducing the optimal Figure 1(c) schedule.
//
// One documented erratum: the tables both assert and deny the edge 3–8
// (rows M({s,0−3},·) and M({s,0−4,6,8−9},·) require it; the color lists of
// row M({s,0−7,9−10},4) omit node 3). We keep the edge — three rows match
// exactly with it and only one color list gains an extra (value-equivalent)
// singleton — and record the choice here and in EXPERIMENTS.md.
package paperfig

import (
	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
)

// Fig1Radius is the UDG radius under which the Figure 1 coordinates
// reproduce the paper's adjacency.
const Fig1Radius = 10.0

// Figure 1 node indices: the source s is node 0; paper node k is index k+1.
const (
	Fig1S = iota
	Fig1N0
	Fig1N1
	Fig1N2
	Fig1N3
	Fig1N4
	Fig1N5
	Fig1N6
	Fig1N7
	Fig1N8
	Fig1N9
	Fig1N10
)

// Figure1Positions returns the reconstructed coordinates (feet).
func Figure1Positions() []geom.Point {
	return []geom.Point{
		{X: 34.58, Y: 19.67}, // s
		{X: 25.94, Y: 24.17}, // 0
		{X: 33.48, Y: 27.30}, // 1
		{X: 32.59, Y: 25.11}, // 2
		{X: 25.53, Y: 30.50}, // 3
		{X: 31.27, Y: 36.49}, // 4
		{X: 23.24, Y: 19.95}, // 5
		{X: 22.26, Y: 24.48}, // 6
		{X: 16.26, Y: 24.96}, // 7
		{X: 30.55, Y: 37.47}, // 8
		{X: 21.87, Y: 33.95}, // 9
		{X: 38.10, Y: 34.73}, // 10
	}
}

// Figure1 returns the Figure 1 network as a unit-disk graph with the paper's
// adjacency, and the source node.
func Figure1() (*graph.Graph, graph.NodeID) {
	return graph.FromUDG(Figure1Positions(), Fig1Radius), Fig1S
}

// Figure1Edges lists the adjacency the paper's tables force (excluding the
// three unconstrained pairs 0–1, 0–2, 1–2 among the source's already-covered
// children, which the coordinate solution happens to realize as edges).
func Figure1Edges() [][2]graph.NodeID {
	return [][2]graph.NodeID{
		{Fig1S, Fig1N0}, {Fig1S, Fig1N1}, {Fig1S, Fig1N2},
		{Fig1N0, Fig1N3}, {Fig1N0, Fig1N5}, {Fig1N0, Fig1N6}, {Fig1N0, Fig1N7},
		{Fig1N1, Fig1N3}, {Fig1N1, Fig1N4}, {Fig1N1, Fig1N10},
		{Fig1N2, Fig1N3},
		{Fig1N3, Fig1N4}, {Fig1N3, Fig1N6}, {Fig1N3, Fig1N8}, {Fig1N3, Fig1N9},
		{Fig1N4, Fig1N8}, {Fig1N4, Fig1N9}, {Fig1N4, Fig1N10},
		{Fig1N5, Fig1N6}, {Fig1N5, Fig1N7},
		{Fig1N6, Fig1N7}, {Fig1N6, Fig1N9},
		{Fig1N8, Fig1N9}, {Fig1N8, Fig1N10},
	}
}

// Figure1FreePairs lists the node pairs whose adjacency the paper leaves
// unconstrained (both endpoints are covered in every table state).
func Figure1FreePairs() [][2]graph.NodeID {
	return [][2]graph.NodeID{{Fig1N0, Fig1N1}, {Fig1N0, Fig1N2}, {Fig1N1, Fig1N2}}
}

// Figure1E2Want maps node → the E₂ value Section IV-E states for it.
func Figure1E2Want() map[graph.NodeID]float64 {
	return map[graph.NodeID]float64{
		Fig1N7: 0, Fig1N8: 0, Fig1N9: 0,
		Fig1N0: 1, Fig1N4: 1, Fig1N5: 1, Fig1N6: 1, Fig1N10: 1,
		Fig1N1: 2,
	}
}

// Figure 2 node indices: paper node k (1-based) is index k−1.
const (
	Fig2N1 = iota
	Fig2N2
	Fig2N3
	Fig2N4
	Fig2N5
)

// Fig2Radius is the UDG radius for the Figure 2 coordinates.
const Fig2Radius = 10.0

// Figure2Positions returns coordinates realizing Figure 2's adjacency
// (1–2, 1–3, 2–4, 2–5, 3–4; the conflict between 2 and 3 sits at node 4).
func Figure2Positions() []geom.Point {
	return []geom.Point{
		{X: 0, Y: 0},   // 1
		{X: 7, Y: 7},   // 2
		{X: 7, Y: -7},  // 3
		{X: 14, Y: 0},  // 4
		{X: 13, Y: 14}, // 5
	}
}

// Figure2 returns the Figure 2 network and its broadcast source u1.
func Figure2() (*graph.Graph, graph.NodeID) {
	return graph.FromUDG(Figure2Positions(), Fig2Radius), Fig2N1
}

// Figure2Edges lists Figure 2's five edges.
func Figure2Edges() [][2]graph.NodeID {
	return [][2]graph.NodeID{
		{Fig2N1, Fig2N2}, {Fig2N1, Fig2N3},
		{Fig2N2, Fig2N4}, {Fig2N2, Fig2N5},
		{Fig2N3, Fig2N4},
	}
}

// TableIVRate is the cycle rate of the Table IV duty-cycle example.
const TableIVRate = 10

// TableIVWake returns the explicit wake schedule of Table IV: the source
// u1 wakes at slot 2; u2 at slots 4 and r+3 = 13; u3 at slot 4. (u4 and u5
// never need to transmit; they get harmless late slots.) The broadcast
// starts at t_s = 2 and the optimal schedule fires u1@2 and u2@4 for
// P(A) = 4; mis-selecting u3 at slot 4 defers completion to u2's next
// wake-up at slot 13.
func TableIVWake() dutycycle.Schedule {
	return dutycycle.NewFixed(20, TableIVRate, [][]int{
		{2},     // u1
		{4, 13}, // u2: slot 4, then r+3
		{4},     // u3
		{5},     // u4: never needs to transmit
		{6},     // u5: never needs to transmit
	})
}
