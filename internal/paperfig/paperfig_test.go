package paperfig

import (
	"testing"

	"mlbs/internal/bitset"
	"mlbs/internal/color"
	"mlbs/internal/core"
	"mlbs/internal/emodel"
	"mlbs/internal/graph"
	"mlbs/internal/sim"
)

// pn maps a paper node number of Figure 1 to our index (s = Fig1S).
func pn(k int) graph.NodeID { return k + 1 }

// wset builds the coverage bitset for Figure 1 from paper node numbers,
// with the source always included.
func wset(n int, paperNodes ...int) bitset.Set {
	w := bitset.New(n)
	w.Add(Fig1S)
	for _, k := range paperNodes {
		w.Add(pn(k))
	}
	return w
}

// preCovered converts paper node numbers into a PreCovered list.
func preCovered(paperNodes ...int) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(paperNodes))
	for _, k := range paperNodes {
		out = append(out, pn(k))
	}
	return out
}

func TestFigure1AdjacencyExact(t *testing.T) {
	g, _ := Figure1()
	want := make(map[[2]graph.NodeID]bool)
	for _, e := range Figure1Edges() {
		want[[2]graph.NodeID{e[0], e[1]}] = true
	}
	free := make(map[[2]graph.NodeID]bool)
	for _, e := range Figure1FreePairs() {
		free[[2]graph.NodeID{e[0], e[1]}] = true
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			key := [2]graph.NodeID{u, v}
			if free[key] {
				continue
			}
			if g.HasEdge(u, v) != want[key] {
				t.Errorf("edge {%d,%d}: got %v, want %v", u, v, g.HasEdge(u, v), want[key])
			}
		}
	}
}

func TestFigure2AdjacencyExact(t *testing.T) {
	g, _ := Figure2()
	want := make(map[[2]graph.NodeID]bool)
	for _, e := range Figure2Edges() {
		want[[2]graph.NodeID{e[0], e[1]}] = true
	}
	if g.M() != len(Figure2Edges()) {
		t.Fatalf("Figure 2 has %d edges, want %d", g.M(), len(Figure2Edges()))
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if g.HasEdge(u, v) != want[[2]graph.NodeID{u, v}] {
				t.Errorf("edge {%d,%d} mismatch", u, v)
			}
		}
	}
}

// Section IV-E's worked E-model values on Figure 1.
func TestFigure1E2Values(t *testing.T) {
	g, _ := Figure1()
	for _, mode := range []emodel.Seeding{emodel.TwoPass, emodel.OnePass} {
		tab := emodel.Build(g, emodel.HopWeight, mode)
		for node, want := range Figure1E2Want() {
			if got := tab.Value(node, 2); got != want { // geom.Q2
				t.Errorf("mode %v: E2(paper %d) = %v, want %v", mode, node-1, got, want)
			}
		}
	}
}

func TestFigure1FarCornerIsNetworkEdge(t *testing.T) {
	g, _ := Figure1()
	edge := emodel.EdgeNodes(g)
	for _, n := range []graph.NodeID{Fig1N7, Fig1N8, Fig1N9} {
		if !edge[n] {
			t.Errorf("paper node %d must be a network-edge node", n-1)
		}
	}
}

// Table III row 2: at W = {s,0,1,2} the greedy colors are {0}, {1}, {2}.
func TestTableIIIColorsRow2(t *testing.T) {
	g, _ := Figure1()
	w := wset(g.N(), 0, 1, 2)
	classes := color.GreedySync(g, w)
	assertClasses(t, classes, [][]graph.NodeID{{pn(0)}, {pn(1)}, {pn(2)}})
}

// Table III row 3: at W = {s,0–3,5–7} the greedy colors are {3} and {1,6}.
func TestTableIIIColorsRow3(t *testing.T) {
	g, _ := Figure1()
	w := wset(g.N(), 0, 1, 2, 3, 5, 6, 7)
	classes := color.GreedySync(g, w)
	assertClasses(t, classes, [][]graph.NodeID{{pn(3)}, {pn(1), pn(6)}})
}

// Table III row 6: at W = {s,0–4,10} the greedy colors are {0,4}, {3}, {10}.
func TestTableIIIColorsRow6(t *testing.T) {
	g, _ := Figure1()
	w := wset(g.N(), 0, 1, 2, 3, 4, 10)
	classes := color.GreedySync(g, w)
	assertClasses(t, classes, [][]graph.NodeID{{pn(0), pn(4)}, {pn(3)}, {pn(10)}})
}

// Table III row 4: at W = {s,0–9} the colors are {1}, {4}, {8}.
func TestTableIIIColorsRow4(t *testing.T) {
	g, _ := Figure1()
	w := wset(g.N(), 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	classes := color.GreedySync(g, w)
	assertClasses(t, classes, [][]graph.NodeID{{pn(1)}, {pn(4)}, {pn(8)}})
}

// Table III row 5 (documented erratum): at W = {s,0–7,9,10} the paper lists
// colors {4}, {9}, {10}; with the 3–8 edge its own other rows force, node 3
// is a fourth (value-equivalent) candidate.
func TestTableIIIColorsRow5Erratum(t *testing.T) {
	g, _ := Figure1()
	w := wset(g.N(), 0, 1, 2, 3, 4, 5, 6, 7, 9, 10)
	classes := color.GreedySync(g, w)
	assertClasses(t, classes, [][]graph.NodeID{{pn(3)}, {pn(4)}, {pn(9)}, {pn(10)}})
}

// Table III M values, checked by solving the sub-instance that starts at
// the table row's coverage and time. M(W,t) is the end slot of the optimal
// remaining schedule under the greedy color scheme (G-OPT, Eq. 7).
func TestTableIIIMValues(t *testing.T) {
	g, src := Figure1()
	rows := []struct {
		name    string
		covered []graph.NodeID
		start   int
		want    int
	}{
		{"M({s},1)", nil, 1, 3},
		{"M({s,0-2},2)", preCovered(0, 1, 2), 2, 3},
		{"M({s,0-3,5-7},3)", preCovered(0, 1, 2, 3, 5, 6, 7), 3, 4},
		{"M({s,0-4,10},3)", preCovered(0, 1, 2, 3, 4, 10), 3, 3},
		{"M({s,0-3},3)", preCovered(0, 1, 2, 3), 3, 4},
		{"M({s,0-9},4)", preCovered(0, 1, 2, 3, 4, 5, 6, 7, 8, 9), 4, 4},
		{"M({s,0-7,9-10},4)", preCovered(0, 1, 2, 3, 4, 5, 6, 7, 9, 10), 4, 4},
		{"M({s,0-4,6,8-9},4)", preCovered(0, 1, 2, 3, 4, 6, 8, 9), 4, 4},
	}
	for _, row := range rows {
		in := core.Sync(g, src)
		in.Start = row.start
		in.PreCovered = row.covered
		res, err := core.NewGOPT(0).Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		if !res.Exact {
			t.Fatalf("%s: not exact", row.name)
		}
		if res.PA != row.want {
			t.Fatalf("%s = %d, want %d", row.name, res.PA, row.want)
		}
	}
}

// The optimal Figure 1(c) path: s fires at 1; node 1 (magenta) at 2
// covering {3,4,10}; nodes {0,4} at 3 covering {5,6,7,8,9}. P(A) = 3.
func TestTableIIIOptimalPath(t *testing.T) {
	g, src := Figure1()
	in := core.Sync(g, src)
	for _, s := range []core.Scheduler{core.NewGOPT(0), core.NewOPT(0, 0)} {
		res, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.PA != 3 || !res.Exact {
			t.Fatalf("%s: PA=%d exact=%v, want 3/true", s.Name(), res.PA, res.Exact)
		}
		adv := res.Schedule.Advances
		if len(adv) != 3 {
			t.Fatalf("%s: %d advances, want 3", s.Name(), len(adv))
		}
		assertSenders(t, s.Name()+" t1", adv[0], []graph.NodeID{Fig1S})
		assertSenders(t, s.Name()+" t2", adv[1], []graph.NodeID{pn(1)})
		assertSenders(t, s.Name()+" t3", adv[2], []graph.NodeID{pn(0), pn(4)})
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

// Section IV-E: "Color magenta with node 1 will be selected to achieve the
// optimization in Figure 1(c)." The E-model policy must reproduce the
// optimal 3-round schedule.
func TestFigure1EModelSelectsMagenta(t *testing.T) {
	g, src := Figure1()
	in := core.Sync(g, src)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 3 {
		t.Fatalf("E-model P(A) = %d, want 3", res.PA)
	}
	assertSenders(t, "t2", res.Schedule.Advances[1], []graph.NodeID{pn(1)})
}

// The hop-distance baseline blocks on layer 1's three colors and needs an
// extra round on Figure 1 — the motivating gap of Section II.
func TestFigure1BaselineBlocks(t *testing.T) {
	g, src := Figure1()
	in := core.Sync(g, src)
	// The baseline lives in internal/baseline; to keep paperfig free of
	// that dependency we assert the blocking behavior directly: a layer-
	// synchronized schedule must fire {0}, {1} sequentially (conflict at 3)
	// and only then advance layer 2, ending at 4 — one round later than
	// OPT. We verify 4 is indeed achievable layer-wise and 3 is not,
	// using a FirstColor policy restricted... simply: G-OPT from the
	// post-layer-1 state {s,0-3,5-7,4,10} at t=4 ends at 4.
	inL := in
	inL.Start = 4
	inL.PreCovered = preCovered(0, 1, 2, 3, 4, 5, 6, 7, 10)
	res, err := core.NewGOPT(0).Schedule(inL)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 4 {
		t.Fatalf("post-layer-1 completion = %d, want 4", res.PA)
	}
}

// Table II: Figure 2(a) from u1 at t_s = 1 completes at P(A) = 2, firing
// u1@1 and u2@2 (covering {4,5}); colors at W={1,2,3} are {2} then {3}.
func TestTableII(t *testing.T) {
	g, src := Figure2()
	in := core.Sync(g, src)

	w := bitset.FromMembers(g.N(), Fig2N1, Fig2N2, Fig2N3)
	classes := color.GreedySync(g, w)
	assertClasses(t, classes, [][]graph.NodeID{{Fig2N2}, {Fig2N3}})

	for _, s := range []core.Scheduler{core.NewGOPT(0), core.NewOPT(0, 0), core.NewEModel(0)} {
		res, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.PA != 2 {
			t.Fatalf("%s: P(A) = %d, want 2 (Table II)", s.Name(), res.PA)
		}
		assertSenders(t, s.Name()+" t1", res.Schedule.Advances[0], []graph.NodeID{Fig2N1})
		assertSenders(t, s.Name()+" t2", res.Schedule.Advances[1], []graph.NodeID{Fig2N2})
	}
}

// Figure 2(b): selecting u3 first defers the broadcast to 3 rounds; the
// deferred schedule is still conflict-free and the physics agrees.
func TestFigure2bDeferred(t *testing.T) {
	g, src := Figure2()
	in := core.Sync(g, src)
	deferred := &core.Schedule{Source: src, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{Fig2N1}, Covered: []graph.NodeID{Fig2N2, Fig2N3}},
		{T: 2, Senders: []graph.NodeID{Fig2N3}, Covered: []graph.NodeID{Fig2N4}},
		{T: 3, Senders: []graph.NodeID{Fig2N2}, Covered: []graph.NodeID{Fig2N5}},
	}}
	if err := deferred.Validate(in); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Replay(in, deferred)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.End != 3 {
		t.Fatalf("deferred run: completed=%v end=%d, want true/3", rep.Completed, rep.End)
	}
}

// Table IV: the duty-cycle schedule of Figure 2(e) with t_s = 2. Firing
// u1@2 and u2@4 gives P(A) = 4; the slot-3 row is empty (nobody awake);
// mis-selecting u3 at slot 4 defers completion to u2's next wake at r+3.
func TestTableIV(t *testing.T) {
	g, src := Figure2()
	in := core.Instance{G: g, Source: src, Start: 2, Wake: TableIVWake()}
	for _, s := range []core.Scheduler{core.NewGOPT(0), core.NewOPT(0, 0), core.NewEModel(0)} {
		res, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.PA != 4 {
			t.Fatalf("%s: P(A) = %d, want 4 (Table IV)", s.Name(), res.PA)
		}
		adv := res.Schedule.Advances
		if len(adv) != 2 || adv[0].T != 2 || adv[1].T != 4 {
			t.Fatalf("%s: advances %+v, want u1@2 u2@4", s.Name(), adv)
		}
		assertSenders(t, s.Name()+" slot4", adv[1], []graph.NodeID{Fig2N2})
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

// Table IV's final row: from W = {1,2,3,4} at slot 5 the only remaining
// relay is u2, which next wakes at r+3 = 13, so M = 13 ≫ 4.
func TestTableIVDeferredBranch(t *testing.T) {
	g, src := Figure2()
	in := core.Instance{
		G: g, Source: src, Start: 5, Wake: TableIVWake(),
		PreCovered: []graph.NodeID{Fig2N2, Fig2N3, Fig2N4},
	}
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.PA != 13 {
		t.Fatalf("deferred branch M = %d (exact=%v), want 13", res.PA, res.Exact)
	}
}

// Theorem 1 on the fixtures: latency ≤ d+2 (sync) and ≤ 2r(d+2) (Table IV).
func TestTheorem1OnFixtures(t *testing.T) {
	g1, s1 := Figure1()
	in1 := core.Sync(g1, s1)
	r1, err := core.NewOPT(0, 0).Schedule(in1)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := g1.Eccentricity(s1)
	if r1.Schedule.Latency() > core.SyncLatencyBound(d1) {
		t.Fatalf("Figure 1 latency %d > bound %d", r1.Schedule.Latency(), core.SyncLatencyBound(d1))
	}

	g2, s2 := Figure2()
	in2 := core.Instance{G: g2, Source: s2, Start: 2, Wake: TableIVWake()}
	r2, err := core.NewOPT(0, 0).Schedule(in2)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := g2.Eccentricity(s2)
	if r2.Schedule.Latency() > core.AsyncLatencyBound(TableIVRate, d2) {
		t.Fatalf("Table IV latency %d > bound %d", r2.Schedule.Latency(), core.AsyncLatencyBound(TableIVRate, d2))
	}
}

func assertClasses(t *testing.T, got []color.Class, want [][]graph.NodeID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("λ = %d classes %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("class %d = %v, want %v", i+1, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("class %d = %v, want %v", i+1, got[i], want[i])
			}
		}
	}
}

func assertSenders(t *testing.T, label string, adv core.Advance, want []graph.NodeID) {
	t.Helper()
	if len(adv.Senders) != len(want) {
		t.Fatalf("%s: senders %v, want %v", label, adv.Senders, want)
	}
	for i := range want {
		if adv.Senders[i] != want[i] {
			t.Fatalf("%s: senders %v, want %v", label, adv.Senders, want)
		}
	}
}
