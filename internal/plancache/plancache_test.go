package plancache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPut(t *testing.T) {
	c := New[int](8, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("a", 10) // refresh
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("refresh lost: got %d", v)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](4, 1) // single shard so the bound is exact
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.Get("k0") // bump k0 to most recent; k1 is now the LRU victim
	c.Put("k4", 4)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestShardedCapacity(t *testing.T) {
	c := New[int](64, 8)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	// Per-shard bounds make the global bound approximate; it must never
	// exceed capacity rounded up to shards.
	if n := c.Len(); n > 64 {
		t.Fatalf("cache holds %d entries, bound is 64", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions recorded after overfilling")
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	c := New[int](16, 4)
	var computes atomic.Int64
	release := make(chan struct{})

	const waiters = 32
	var wg sync.WaitGroup
	vals := make([]int, waiters)
	hits := make([]bool, waiters)
	coal := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, co, err := c.GetOrCompute("key", func() (int, error) {
				computes.Add(1)
				<-release // hold every concurrent caller in the window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], hits[i], coal[i] = v, hit, co
		}(i)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times; singleflight wants exactly 1", n)
	}
	leaders, coalesced := 0, 0
	for i := range vals {
		if vals[i] != 42 {
			t.Fatalf("caller %d got %d", i, vals[i])
		}
		if !hits[i] && !coal[i] {
			leaders++
		}
		if coal[i] {
			coalesced++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders; want 1", leaders)
	}
	if leaders+coalesced != waiters-countTrue(hits) {
		t.Fatalf("accounting mismatch: leaders=%d coalesced=%d hits=%d", leaders, coalesced, countTrue(hits))
	}
	// Subsequent calls are pure hits.
	if _, hit, _, _ := c.GetOrCompute("key", func() (int, error) {
		t.Fatal("compute ran on a resident key")
		return 0, nil
	}); !hit {
		t.Fatal("resident key did not hit")
	}
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New[int](16, 4)
	boom := errors.New("boom")
	if _, _, _, err := c.GetOrCompute("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed computation was cached")
	}
	// The key must be computable again after a failure.
	v, _, _, err := c.GetOrCompute("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after error: %d, %v", v, err)
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestHitPathAllocs pins the warm probe: a Get and a resident GetOrCompute
// must not allocate at all — the serving layer's hit path rides on this.
func TestHitPathAllocs(t *testing.T) {
	c := New[*int](16, 4)
	v := 42
	c.Put("key", &v)
	compute := func() (*int, error) { return nil, errors.New("must not run") }
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := c.Get("key"); !ok {
			t.Fatal("miss")
		}
	}); allocs != 0 {
		t.Errorf("Get allocated %.1f objects per hit; want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, hit, _, _ := c.GetOrCompute("key", compute); !hit {
			t.Fatal("miss")
		}
	}); allocs != 0 {
		t.Errorf("GetOrCompute allocated %.1f objects per hit; want 0", allocs)
	}
}

// TestConcurrentPutGetSameKey exercises in-place value refreshes against
// concurrent readers of the same entry — the Put path overwrites e.val
// under the shard lock, so readers must copy it out before unlocking.
// The race detector is the assertion here.
func TestConcurrentPutGetSameKey(t *testing.T) {
	c := New[*int](8, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := i
			c.Put("k", &v)
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v, ok := c.Get("k"); ok && *v < 0 {
				t.Error("impossible value")
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, _, _, err := c.GetOrCompute("k", func() (*int, error) { zero := 0; return &zero, nil })
			if err != nil || *v < 0 {
				t.Error("impossible value")
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestConcurrentMixedLoad(t *testing.T) {
	c := New[int](128, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%200)
				v, _, _, err := c.GetOrCompute(k, func() (int, error) { return i % 200, nil })
				if err != nil {
					t.Error(err)
					return
				}
				if v != i%200 {
					t.Errorf("key %s holds %d", k, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 128 {
		t.Fatalf("bound violated: %d entries", n)
	}
}

func TestPeekDoesNotTouchStatsOrRecency(t *testing.T) {
	c := New[int](4, 1)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if v, ok := c.Peek("k0"); !ok || v != 0 {
		t.Fatalf("Peek(k0) = %d, %v", v, ok)
	}
	if _, ok := c.Peek("absent"); ok {
		t.Fatal("Peek invented an entry")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek moved traffic counters: %+v", st)
	}
	// Peek must not have bumped k0: inserting one more entry evicts it
	// as the least recently used.
	c.Put("k4", 4)
	if _, ok := c.Peek("k0"); ok {
		t.Fatal("Peek refreshed recency; k0 survived eviction")
	}
}

func TestUpdateAtomicRMW(t *testing.T) {
	c := New[int](8, 1)
	c.Put("a", 5)
	// Commit path.
	if v, ok := c.Update("a", func(cur int) (int, bool) { return cur + 1, true }); !ok || v != 6 {
		t.Fatalf("Update commit = %d, %v", v, ok)
	}
	if v, _ := c.Get("a"); v != 6 {
		t.Fatalf("committed value lost: %d", v)
	}
	// Decline path leaves the entry untouched.
	if v, ok := c.Update("a", func(cur int) (int, bool) { return 99, false }); !ok || v != 6 {
		t.Fatalf("declined Update = %d, %v", v, ok)
	}
	// Absent keys are never inserted and f is never called.
	called := false
	if _, ok := c.Update("ghost", func(cur int) (int, bool) { called = true; return 1, true }); ok || called {
		t.Fatalf("Update on absent key: ok=%v called=%v", ok, called)
	}
	if _, ok := c.Peek("ghost"); ok {
		t.Fatal("Update resurrected an absent key")
	}
}

func TestUpdateConcurrentMonotone(t *testing.T) {
	// 32 goroutines race increment-if-larger updates; the final value must
	// be the max and no reader may ever observe it decrease.
	c := New[int](8, 1)
	c.Put("gen", 0)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := 0
			for i := 0; i < 200; i++ {
				v, ok := c.Update("gen", func(cur int) (int, bool) { return cur + 1, true })
				if !ok {
					panic("entry vanished")
				}
				if v < prev {
					panic("observed regression")
				}
				prev = v
			}
		}()
	}
	wg.Wait()
	if v, _ := c.Get("gen"); v != 32*200 {
		t.Fatalf("lost updates: %d", v)
	}
}
