// Package plancache is the serving layer's content-addressed store: a
// sharded, LRU-bounded map from a canonical instance digest (plus the
// scheduler spec) to the immutable plan computed for it. Real deployments
// re-plan the same broadcast instance constantly — same topology, same
// wake family, new request — so the cache turns the steady-state cost of
// a plan from a branch-and-bound search into a map probe.
//
// Two properties matter beyond plain caching:
//
//   - The hit path allocates nothing once warm: a probe is a shard lock,
//     a map lookup and two pointer swings on the intrusive LRU list.
//   - GetOrCompute deduplicates concurrent misses per key (singleflight):
//     N simultaneous requests for the same uncached instance trigger
//     exactly one computation; the other N−1 block on the leader's result.
//
// Values must be treated as immutable by all callers — the same pointer is
// handed to every hit.
package plancache

import (
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of cache traffic.
type Stats struct {
	Hits      int64 // probes answered from the cache
	Misses    int64 // probes that found nothing (leaders count here)
	Coalesced int64 // misses that piggybacked on an inflight computation
	Evictions int64 // entries pushed out by the LRU bound
	Errors    int64 // computations that failed (nothing stored)
	Entries   int   // current resident entries
	Capacity  int   // entry bound the cache was built with (post-rounding)
}

// Cache is a sharded LRU keyed by string. The zero value is not usable;
// call New.
type Cache[V any] struct {
	shards    []shard[V]
	mask      uint64
	perShard  int
	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
	errors    atomic.Int64
}

type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V] // intrusive LRU list; head = most recently used
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type shard[V any] struct {
	mu       sync.Mutex
	entries  map[string]*entry[V]
	head     *entry[V]
	tail     *entry[V]
	inflight map[string]*call[V]
	_        [24]byte // pad shards apart so their locks don't false-share
}

// New builds a cache bounded at capacity entries spread over the given
// shard count (rounded up to a power of two). capacity ≤ 0 selects 4096;
// shards ≤ 0 selects 16.
func New[V any](capacity, shards int) *Cache[V] {
	if capacity <= 0 {
		capacity = 4096
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache[V]{
		shards:   make([]shard[V], n),
		mask:     uint64(n - 1),
		perShard: (capacity + n - 1) / n,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry[V])
		c.shards[i].inflight = make(map[string]*call[V])
	}
	return c
}

// KeyHash hashes a cache key (FNV-1a, allocation-free, deterministic).
// Exported so callers that co-shard their own structures with the cache —
// the service's worker pool keys engine locality off the same hash — stay
// in lockstep with the cache's shard selection by construction.
//
//mlbs:hotpath -- runs on every cache probe
func KeyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return &c.shards[KeyHash(key)&c.mask]
}

// unlink removes e from the LRU list (it must be resident).
func (s *shard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (s *shard[V]) pushFront(e *entry[V]) {
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// Get probes the cache, bumping the entry's recency on a hit. The value
// is copied out under the shard lock — Put may overwrite e.val in place.
//
//mlbs:hotpath -- the serving hit path; intrusive LRU links keep it allocation-free
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	var val V
	if ok {
		if s.head != e {
			s.unlink(e)
			s.pushFront(e)
		}
		val = e.val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return val, false
	}
	c.hits.Add(1)
	return val, true
}

// Peek returns the value under key without bumping its recency or the
// hit/miss counters. The background improver pool uses this to read the
// plan it is about to upgrade: a maintenance probe must not distort the
// traffic statistics operators alert on, nor keep an otherwise-cold entry
// artificially resident.
func (c *Cache[V]) Peek(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	var val V
	if ok {
		val = e.val
	}
	s.mu.Unlock()
	return val, ok
}

// Update atomically rewrites the value under key: f observes the current
// value under the shard lock and returns the replacement plus whether to
// commit. Returning commit=false leaves the entry untouched; a key that
// is not resident is never inserted (f is not called), so an upgrade
// racing an eviction quietly drops instead of resurrecting a dead entry.
// Neither recency nor the traffic counters move — like Peek, this is a
// maintenance operation, not a serving probe. f runs under the shard
// lock and must be fast and must not touch the cache.
//
// The serving layer's generation protocol builds on the atomicity: each
// improver publication reads the resident plan's generation and end slot
// and commits only a strictly better plan with the next generation, so
// readers can never observe the generation counter move backwards or the
// plan quality regress within an entry's lifetime.
func (c *Cache[V]) Update(key string, f func(cur V) (V, bool)) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	var val V
	if ok {
		if next, commit := f(e.val); commit {
			e.val = next
		}
		val = e.val
	}
	s.mu.Unlock()
	return val, ok
}

// Put stores val under key, evicting the shard's least recently used entry
// when the shard is at its bound. Storing an existing key refreshes the
// value and its recency.
func (c *Cache[V]) Put(key string, val V) {
	s := c.shard(key)
	s.mu.Lock()
	c.putLocked(s, key, val)
	s.mu.Unlock()
}

// putLocked is Put's body; s.mu must be held.
func (c *Cache[V]) putLocked(s *shard[V], key string, val V) {
	if e, ok := s.entries[key]; ok {
		e.val = val
		if s.head != e {
			s.unlink(e)
			s.pushFront(e)
		}
		return
	}
	if len(s.entries) >= c.perShard {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		c.evictions.Add(1)
	}
	e := &entry[V]{key: key, val: val}
	s.entries[key] = e
	s.pushFront(e)
}

// GetOrCompute returns the cached value for key, or runs compute to fill
// it. Concurrent callers for the same key are coalesced: one runs compute,
// the rest wait and share its result. A failed compute is not cached; its
// error is returned to the leader and every coalesced waiter.
//
// hit reports a cache hit (compute not involved); coalesced reports that
// this caller waited on another's computation.
func (c *Cache[V]) GetOrCompute(key string, compute func() (V, error)) (val V, hit, coalesced bool, err error) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		if s.head != e {
			s.unlink(e)
			s.pushFront(e)
		}
		v := e.val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true, false, nil
	}
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		<-cl.done
		return cl.val, false, true, cl.err
	}
	cl := &call[V]{done: make(chan struct{})}
	s.inflight[key] = cl
	c.misses.Add(1)
	s.mu.Unlock()

	cl.val, cl.err = compute()

	// Store and retire the inflight record in one critical section: a gap
	// between them would let a new request find neither and re-run the
	// computation, breaking the exactly-one-search guarantee.
	s.mu.Lock()
	delete(s.inflight, key)
	if cl.err == nil {
		c.putLocked(s, key, cl.val)
	}
	s.mu.Unlock()
	if cl.err != nil {
		c.errors.Add(1)
	}
	close(cl.done)
	return cl.val, false, false, cl.err
}

// Len returns the resident entry count.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the traffic counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Errors:    c.errors.Load(),
		Entries:   c.Len(),
		Capacity:  c.perShard * len(c.shards),
	}
}
