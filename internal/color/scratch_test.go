package color

import (
	"testing"

	"mlbs/internal/bitset"
	"mlbs/internal/dutycycle"
)

// The scratch methods must reproduce the package-level functions exactly:
// same classes, same order, same truncation point. Equivalence over random
// scenarios is the contract that lets the search engine reuse one Scratch
// per frame.
func TestScratchMatchesPackageFunctions(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		g, w := randomScenario(seed)
		cands := Candidates(g, w)
		var sc Scratch

		if got := sc.Candidates(g, w); !equalIDs(got, cands) {
			t.Fatalf("seed %d: scratch candidates %v, want %v", seed, got, cands)
		}

		want := GreedyPartition(g, w, cands)
		got := sc.GreedyPartition(g, w, cands)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d classes, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if !equalClass(got[i], want[i]) {
				t.Fatalf("seed %d class %d: %v, want %v", seed, i, got[i], want[i])
			}
		}

		for _, limit := range []int{0, 1, 3} {
			wantSets, wantTrunc := MaximalSets(g, w, cands, limit)
			gotSets, gotTrunc := sc.MaximalSets(g, w, cands, limit)
			if gotTrunc != wantTrunc || len(gotSets) != len(wantSets) {
				t.Fatalf("seed %d limit %d: (%d sets, trunc=%v), want (%d, %v)",
					seed, limit, len(gotSets), gotTrunc, len(wantSets), wantTrunc)
			}
			for i := range wantSets {
				if !equalClass(gotSets[i], wantSets[i]) {
					t.Fatalf("seed %d limit %d set %d: %v, want %v",
						seed, limit, i, gotSets[i], wantSets[i])
				}
			}
		}
	}
}

// Reusing one Scratch across many states must not allocate once warm —
// the property the whole refactor exists for.
func TestScratchSteadyStateAllocs(t *testing.T) {
	g, w := randomScenario(77)
	var sc Scratch
	cands := sc.Candidates(g, w)
	sc.GreedyPartition(g, w, cands)
	sc.MaximalSets(g, w, cands, 64)

	if allocs := testing.AllocsPerRun(20, func() {
		c := sc.Candidates(g, w)
		sc.GreedyPartition(g, w, c)
	}); allocs > 0 {
		t.Errorf("warm GreedyPartition allocated %.1f objects, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		c := sc.Candidates(g, w)
		sc.MaximalSets(g, w, c, 64)
	}); allocs > 0 {
		t.Errorf("warm MaximalSets allocated %.1f objects, want 0", allocs)
	}
}

func TestScratchCoveredLen(t *testing.T) {
	g, w := randomScenario(5)
	var sc Scratch
	for _, cls := range GreedySync(g, w) {
		if got, want := sc.CoveredLen(g, w, cls), cls.Covered(g, w).Len(); got != want {
			t.Fatalf("CoveredLen(%v) = %d, want %d", cls, got, want)
		}
	}
}

func TestCoveredInto(t *testing.T) {
	g, w := randomScenario(9)
	dst := bitset.New(g.N())
	for _, cls := range GreedySync(g, w) {
		if got, want := cls.CoveredInto(g, w, dst), cls.Covered(g, w); !got.Equal(want) {
			t.Fatalf("CoveredInto(%v) = %v, want %v", cls, got, want)
		}
	}
}

func TestFilterAwake(t *testing.T) {
	g, w := randomScenario(11)
	s := dutycycle.NewStaggered(g.N(), 4, 3)
	var sc Scratch
	cands := sc.Candidates(g, w)
	got := sc.FilterAwake(cands, s, 6)
	want := AwakeCandidates(g, w, s, 6)
	if !equalIDs(got, want) {
		t.Fatalf("FilterAwake = %v, want %v", got, want)
	}
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkScratchGreedyPartition(b *testing.B) {
	g, w := randomScenario(12345)
	var sc Scratch
	cands := sc.Candidates(g, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.GreedyPartition(g, w, cands)
	}
}

func BenchmarkScratchMaximalSets(b *testing.B) {
	g, w := randomScenario(999)
	var sc Scratch
	cands := sc.Candidates(g, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sc.MaximalSets(g, w, cands, 0)
	}
}
