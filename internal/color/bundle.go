package color

import (
	"mlbs/internal/bitset"
	"mlbs/internal/graph"
)

// Multi-channel extension of the color scheme: with K orthogonal frequency
// channels, one slot can carry up to K color classes at once — classes
// that mutually conflict on a shared channel are harmless on different
// channels, because a collision needs the same slot AND the same channel.
// A Bundle is one such per-slot selection: an ordered list of classes,
// class i firing on channel i. The only physical constraint across
// channels is the radio itself — a node transmits on at most one channel
// per slot — so bundle members must have pairwise-disjoint senders.

// Bundle is an ordered set of pairwise sender-disjoint classes assigned to
// channels 0..len(b)-1 of one slot.
type Bundle []Class

// DefaultMaxBundles caps per-state bundle enumeration in the channelized
// search when the caller passes limit ≤ 0.
const DefaultMaxBundles = 64

// SendersDisjoint reports whether no node appears in two classes of the
// bundle — the one-radio-per-node constraint.
func (b Bundle) SendersDisjoint() bool {
	seen := make(map[graph.NodeID]struct{})
	for _, cls := range b {
		for _, u := range cls {
			if _, dup := seen[u]; dup {
				return false
			}
			seen[u] = struct{}{}
		}
	}
	return true
}

// CoveredInto computes the union of uncovered receivers over every class
// of the bundle into dst (cleared first) and returns it — the joint
// advance a channelized slot produces.
func (b Bundle) CoveredInto(g *graph.Graph, w bitset.Set, dst bitset.Set) bitset.Set {
	dst.Clear()
	for _, cls := range b {
		for _, u := range cls {
			dst.UnionWith(g.Nbr(u))
		}
	}
	dst.DifferenceWith(w)
	return dst
}

// Bundles enumerates the size-m subsets of classes with pairwise-disjoint
// senders, where m = min(k, len(classes)) — every way to load one slot's K
// channels. Monotone coverage makes maximal bundles dominate smaller ones
// (firing an extra class on a free channel never hurts), so only the
// largest feasible size is enumerated; when sender overlap (possible with
// maximal-set classes, never with a greedy partition) leaves no size-m
// subset disjoint, the size steps down until some subset fits. Subsets
// emit in lexicographic index order — with classes in greedy order, the
// first bundle is the top-m classes by coverage. limit ≤ 0 selects
// DefaultMaxBundles; hitting the cap sets truncated.
//
// The returned bundles alias the Scratch's buffers (and the classes given)
// and stay valid until its next use.
func (sc *Scratch) Bundles(classes []Class, k, limit int) (bundles []Bundle, truncated bool) {
	if limit <= 0 {
		limit = DefaultMaxBundles
	}
	m := k
	if len(classes) < m {
		m = len(classes)
	}
	if m <= 0 {
		return nil, false
	}
	sc.bundleClasses = sc.bundleClasses[:0]
	sc.bundles = sc.bundles[:0]
	// Pre-size the recursion index once: depth never exceeds m, so every
	// append inside enumBundles stays in place and a warm Scratch
	// enumerates without allocating (the search calls this per dfs state).
	if cap(sc.bundleIdx) < m {
		sc.bundleIdx = make([]int, 0, m)
	}
	idx := sc.bundleIdx[:0]
	for size := m; size >= 1 && len(sc.bundles) == 0; size-- {
		truncated = sc.enumBundles(classes, idx, 0, size, limit)
	}
	return sc.bundles, truncated
}

// enumBundles extends the partial index selection idx (next index ≥ from)
// to the target size, emitting disjoint combinations into sc.bundles. It
// returns true when the limit cut the enumeration short.
func (sc *Scratch) enumBundles(classes []Class, idx []int, from, size, limit int) bool {
	if len(idx) == size {
		start := len(sc.bundleClasses)
		for _, i := range idx {
			sc.bundleClasses = append(sc.bundleClasses, classes[i])
		}
		b := Bundle(sc.bundleClasses[start:len(sc.bundleClasses):len(sc.bundleClasses)])
		sc.bundles = append(sc.bundles, b)
		return len(sc.bundles) >= limit
	}
	for i := from; i <= len(classes)-(size-len(idx)); i++ {
		if !sc.disjointWith(classes, idx, i) {
			continue
		}
		if sc.enumBundles(classes, append(idx, i), i+1, size, limit) {
			return true
		}
	}
	return false
}

// disjointWith reports whether classes[i] shares no sender with the
// classes already selected in idx.
func (sc *Scratch) disjointWith(classes []Class, idx []int, i int) bool {
	for _, j := range idx {
		if intersects(classes[j], classes[i]) {
			return false
		}
	}
	return true
}

// intersects reports whether two ascending-sorted classes share a member.
func intersects(a, b Class) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// CompareBundles orders bundles lexicographically class by class — the
// deterministic tie-break of the channelized search's move ordering.
func CompareBundles(a, b Bundle) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := compareClasses(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
