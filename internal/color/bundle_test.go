package color

import (
	"reflect"
	"testing"

	"mlbs/internal/bitset"
	"mlbs/internal/graph"
)

func classesOf(ids ...[]graph.NodeID) []Class {
	out := make([]Class, len(ids))
	for i, c := range ids {
		out[i] = Class(c)
	}
	return out
}

func TestBundlesDisjointSubsets(t *testing.T) {
	var sc Scratch
	classes := classesOf([]int{0}, []int{1}, []int{2}, []int{3})
	bundles, trunc := sc.Bundles(classes, 2, 0)
	if trunc {
		t.Fatal("unexpected truncation")
	}
	want := [][][]int{
		{{0}, {1}}, {{0}, {2}}, {{0}, {3}},
		{{1}, {2}}, {{1}, {3}}, {{2}, {3}},
	}
	if len(bundles) != len(want) {
		t.Fatalf("got %d bundles, want %d: %v", len(bundles), len(want), bundles)
	}
	for i, b := range bundles {
		if len(b) != 2 {
			t.Fatalf("bundle %d has %d classes", i, len(b))
		}
		for j, cls := range b {
			if !reflect.DeepEqual([]int(cls), want[i][j]) {
				t.Fatalf("bundle %d = %v, want %v", i, b, want[i])
			}
		}
		if !b.SendersDisjoint() {
			t.Fatalf("bundle %d not sender-disjoint: %v", i, b)
		}
	}
}

func TestBundlesSkipOverlapping(t *testing.T) {
	var sc Scratch
	classes := classesOf([]int{0, 1}, []int{1, 2}, []int{3})
	bundles, trunc := sc.Bundles(classes, 2, 0)
	if trunc {
		t.Fatal("unexpected truncation")
	}
	// {0,1}+{1,2} share sender 1 and must be skipped.
	want := [][][]int{{{0, 1}, {3}}, {{1, 2}, {3}}}
	if len(bundles) != len(want) {
		t.Fatalf("got %v, want %v", bundles, want)
	}
	for i, b := range bundles {
		for j, cls := range b {
			if !reflect.DeepEqual([]int(cls), want[i][j]) {
				t.Fatalf("bundle %d = %v, want %v", i, b, want[i])
			}
		}
	}
}

func TestBundlesFallBackToSmallerSize(t *testing.T) {
	var sc Scratch
	// Every pair overlaps: no size-2 bundle exists, so size 1 is emitted.
	classes := classesOf([]int{0, 1}, []int{1, 2}, []int{0, 2})
	bundles, trunc := sc.Bundles(classes, 2, 0)
	if trunc {
		t.Fatal("unexpected truncation")
	}
	if len(bundles) != 3 {
		t.Fatalf("got %d bundles, want 3 singletons: %v", len(bundles), bundles)
	}
	for i, b := range bundles {
		if len(b) != 1 || !reflect.DeepEqual([]int(b[0]), []int(classes[i])) {
			t.Fatalf("bundle %d = %v, want singleton %v", i, b, classes[i])
		}
	}
}

func TestBundlesLimitTruncates(t *testing.T) {
	var sc Scratch
	classes := classesOf([]int{0}, []int{1}, []int{2}, []int{3}, []int{4})
	bundles, trunc := sc.Bundles(classes, 2, 3)
	if !trunc {
		t.Fatal("expected truncation at limit 3")
	}
	if len(bundles) != 3 {
		t.Fatalf("got %d bundles, want exactly the limit 3", len(bundles))
	}
	// The prefix must match the unlimited enumeration.
	var sc2 Scratch
	full, _ := sc2.Bundles(classes, 2, 0)
	for i := range bundles {
		if CompareBundles(bundles[i], full[i]) != 0 {
			t.Fatalf("truncated prefix diverges at %d: %v vs %v", i, bundles[i], full[i])
		}
	}
}

func TestBundlesKBeyondClassCount(t *testing.T) {
	var sc Scratch
	classes := classesOf([]int{0}, []int{2})
	bundles, _ := sc.Bundles(classes, 8, 0)
	if len(bundles) != 1 || len(bundles[0]) != 2 {
		t.Fatalf("want the single full bundle, got %v", bundles)
	}
}

func TestBundleCoveredInto(t *testing.T) {
	g := graph.NewBuilder(6, nil).
		AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 3).AddEdge(2, 4).AddEdge(1, 5).AddEdge(2, 5).
		Build()
	w := bitset.FromMembers(6, 0, 1, 2)
	b := Bundle{Class{1}, Class{2}}
	dst := bitset.FromMembers(6)
	got := b.CoveredInto(g, w, dst).Members()
	if !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Fatalf("bundle coverage = %v, want [3 4 5]", got)
	}
	var sc Scratch
	if n := sc.BundleCoveredLen(g, w, b); n != 3 {
		t.Fatalf("BundleCoveredLen = %d, want 3", n)
	}
}

// TestBundlesWarmAllocs pins the enumeration's reuse discipline: after
// warm-up, repeated Bundles calls on a Scratch allocate nothing — the
// property the channelized search's per-state move generation relies on.
func TestBundlesWarmAllocs(t *testing.T) {
	var sc Scratch
	classes := classesOf([]int{0}, []int{1}, []int{2}, []int{3}, []int{4}, []int{5})
	sc.Bundles(classes, 3, 0) // warm-up
	allocs := testing.AllocsPerRun(10, func() {
		sc.Bundles(classes, 3, 0)
	})
	if allocs > 0 {
		t.Errorf("warm Bundles allocated %.0f objects per call; want 0", allocs)
	}
}

func TestCompareBundles(t *testing.T) {
	a := Bundle{Class{0}, Class{1}}
	b := Bundle{Class{0}, Class{2}}
	if CompareBundles(a, b) >= 0 || CompareBundles(b, a) <= 0 || CompareBundles(a, a) != 0 {
		t.Fatal("CompareBundles ordering broken")
	}
	short := Bundle{Class{0}}
	if CompareBundles(short, a) >= 0 {
		t.Fatal("shorter bundle with equal prefix must order first")
	}
}
