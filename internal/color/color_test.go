package color

import (
	"testing"
	"testing/quick"

	"mlbs/internal/bitset"
	"mlbs/internal/dutycycle"
	"mlbs/internal/graph"
	"mlbs/internal/rng"
)

// fig2a builds the Figure 2(a) example: broadcasting from node 1 with a
// conflict at node 4. Node IDs are shifted to 0-based: paper's node k is
// our k−1.  Edges: 1–2, 1–3, 2–4, 2–5, 3–4 (paper numbering).
func fig2a() *graph.Graph {
	return graph.NewBuilder(5, nil).
		AddEdge(0, 1). // 1–2
		AddEdge(0, 2). // 1–3
		AddEdge(1, 3). // 2–4
		AddEdge(1, 4). // 2–5
		AddEdge(2, 3). // 3–4
		Build()
}

func TestCandidates(t *testing.T) {
	g := fig2a()
	w := bitset.FromMembers(5, 0) // W = {1} in paper numbering
	cands := Candidates(g, w)
	if len(cands) != 1 || cands[0] != 0 {
		t.Fatalf("candidates = %v, want [0]", cands)
	}
	// After the first advance W = {1,2,3}: candidates are 2 and 3; node 1's
	// neighbors are all covered.
	w = bitset.FromMembers(5, 0, 1, 2)
	cands = Candidates(g, w)
	if len(cands) != 2 || cands[0] != 1 || cands[1] != 2 {
		t.Fatalf("candidates = %v, want [1 2]", cands)
	}
}

func TestConflictAtCommonUncoveredNeighbor(t *testing.T) {
	g := fig2a()
	w := bitset.FromMembers(5, 0, 1, 2)
	// Paper's nodes 2 and 3 share the uncovered neighbor 4.
	if !Conflict(g, 1, 2, w) {
		t.Fatal("2 and 3 must conflict at uncovered node 4")
	}
	// Once 4 is covered the conflict disappears.
	w.Add(3)
	if Conflict(g, 1, 2, w) {
		t.Fatal("conflict must vanish when the common neighbor is covered")
	}
	if Conflict(g, 1, 1, w) {
		t.Fatal("a node never conflicts with itself")
	}
}

func TestReceivers(t *testing.T) {
	g := fig2a()
	w := bitset.FromMembers(5, 0, 1, 2)
	if r := Receivers(g, 1, w); r != 2 { // node 2 reaches {4,5}
		t.Fatalf("Receivers(2) = %d, want 2", r)
	}
	if r := Receivers(g, 2, w); r != 1 { // node 3 reaches {4}
		t.Fatalf("Receivers(3) = %d, want 1", r)
	}
	dst := bitset.New(5)
	ReceiverSet(g, 1, w, dst)
	if !dst.Equal(bitset.FromMembers(5, 3, 4)) {
		t.Fatalf("ReceiverSet = %v", dst)
	}
}

func TestGreedyPartitionFig2a(t *testing.T) {
	g := fig2a()
	w := bitset.FromMembers(5, 0, 1, 2)
	classes := GreedySync(g, w)
	// Table II: C1 = {2}, C2 = {3} — node 2 first (more receivers).
	if len(classes) != 2 {
		t.Fatalf("λ = %d, want 2", len(classes))
	}
	if len(classes[0]) != 1 || classes[0][0] != 1 {
		t.Fatalf("C1 = %v, want [1] (paper node 2)", classes[0])
	}
	if len(classes[1]) != 1 || classes[1][0] != 2 {
		t.Fatalf("C2 = %v, want [2] (paper node 3)", classes[1])
	}
	if ok, why := ValidatePartition(g, w, Candidates(g, w), classes); !ok {
		t.Fatalf("partition invalid: %s", why)
	}
}

func TestClassCovered(t *testing.T) {
	g := fig2a()
	w := bitset.FromMembers(5, 0, 1, 2)
	adv := Class{1}.Covered(g, w)
	if !adv.Equal(bitset.FromMembers(5, 3, 4)) {
		t.Fatalf("advance of {2} = %v, want {4,5}", adv)
	}
}

func TestGreedyDutyRespectsWakeups(t *testing.T) {
	g := fig2a()
	w := bitset.FromMembers(5, 0, 1, 2)
	// Only paper-node 3 (our 2) is awake at slot 4.
	s := dutycycle.NewFixed(10, 10, [][]int{{1}, {6}, {4}, {0}, {0}})
	classes := GreedyDuty(g, w, s, 4)
	if len(classes) != 1 || len(classes[0]) != 1 || classes[0][0] != 2 {
		t.Fatalf("duty classes at slot 4 = %v, want [[2]]", classes)
	}
	if got := GreedyDuty(g, w, s, 5); got != nil {
		t.Fatalf("no candidate awake at slot 5, got %v", got)
	}
}

func TestMaximalSetsFig2a(t *testing.T) {
	g := fig2a()
	w := bitset.FromMembers(5, 0, 1, 2)
	sets, truncated := MaximalSets(g, w, Candidates(g, w), 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	// 2 and 3 conflict ⇒ maximal sets are {2} and {3}.
	if len(sets) != 2 {
		t.Fatalf("maximal sets = %v, want two singletons", sets)
	}
	if sets[0][0] != 1 || sets[1][0] != 2 {
		t.Fatalf("maximal sets = %v", sets)
	}
}

func TestMaximalSetsIndependentCandidates(t *testing.T) {
	// Star: center 0 covered, leaves 1..3 covered, each leaf has a private
	// uncovered pendant: all leaves compatible ⇒ single maximal set.
	b := graph.NewBuilder(7, nil)
	b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3)
	b.AddEdge(1, 4).AddEdge(2, 5).AddEdge(3, 6)
	g := b.Build()
	w := bitset.FromMembers(7, 0, 1, 2, 3)
	sets, _ := MaximalSets(g, w, Candidates(g, w), 0)
	if len(sets) != 1 || len(sets[0]) != 3 {
		t.Fatalf("maximal sets = %v, want one set of all three leaves", sets)
	}
}

func TestMaximalSetsLimit(t *testing.T) {
	g := fig2a()
	w := bitset.FromMembers(5, 0, 1, 2)
	sets, truncated := MaximalSets(g, w, Candidates(g, w), 1)
	if !truncated || len(sets) != 1 {
		t.Fatalf("limit=1: got %d sets truncated=%v", len(sets), truncated)
	}
}

func TestMaximalSetsEmpty(t *testing.T) {
	g := fig2a()
	sets, truncated := MaximalSets(g, bitset.New(5), nil, 0)
	if sets != nil || truncated {
		t.Fatal("no candidates must yield no sets")
	}
}

func TestConflictFree(t *testing.T) {
	g := fig2a()
	w := bitset.FromMembers(5, 0, 1, 2)
	if ConflictFree(g, w, []graph.NodeID{1, 2}) {
		t.Fatal("{2,3} conflict at 4")
	}
	if !ConflictFree(g, w, []graph.NodeID{1}) {
		t.Fatal("singleton always conflict-free")
	}
}

func TestValidatePartitionRejects(t *testing.T) {
	g := fig2a()
	w := bitset.FromMembers(5, 0, 1, 2)
	cands := Candidates(g, w)
	cases := []struct {
		name    string
		classes []Class
	}{
		{"conflicting class", []Class{{1, 2}}},
		{"missing candidate", []Class{{1}}},
		{"duplicate", []Class{{1}, {1, 2}}},
		{"empty class", []Class{{1}, {}, {2}}},
		{"bad greedy order", []Class{{2}, {1}}},
		{"mergeable classes", nil}, // built below
	}
	// "mergeable classes": two compatible nodes in different classes.
	b := graph.NewBuilder(6, nil)
	b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 4).AddEdge(2, 5)
	g2 := b.Build()
	w2 := bitset.FromMembers(6, 0, 1, 2)
	cands2 := Candidates(g2, w2) // 1 and 2, compatible
	if ok, _ := ValidatePartition(g2, w2, cands2, []Class{{1}, {2}}); ok {
		t.Fatal("mergeable classes accepted (constraint 4)")
	}
	for _, c := range cases {
		if c.classes == nil {
			continue
		}
		if ok, _ := ValidatePartition(g, w, cands, c.classes); ok {
			t.Fatalf("%s: invalid partition accepted", c.name)
		}
	}
}

// randomScenario builds a random connected graph and a random coverage set
// containing node 0, for property tests.
func randomScenario(seed uint64) (*graph.Graph, bitset.Set) {
	src := rng.New(seed)
	n := 4 + src.Intn(24)
	b := graph.NewBuilder(n, nil)
	for i := 1; i < n; i++ {
		b.AddEdge(i, src.Intn(i))
	}
	for k := 0; k < n/2; k++ {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	w := bitset.New(n)
	w.Add(0)
	for i := 1; i < n; i++ {
		if src.Float64() < 0.5 {
			w.Add(i)
		}
	}
	return g, w
}

// Property: GreedyPartition always yields a valid partition.
func TestQuickGreedyPartitionValid(t *testing.T) {
	f := func(seed uint64) bool {
		g, w := randomScenario(seed)
		cands := Candidates(g, w)
		classes := GreedyPartition(g, w, cands)
		ok, _ := ValidatePartition(g, w, cands, classes)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every maximal set is conflict-free and truly maximal, and the
// first greedy class appears among them.
func TestQuickMaximalSetsSound(t *testing.T) {
	f := func(seed uint64) bool {
		g, w := randomScenario(seed)
		cands := Candidates(g, w)
		sets, truncated := MaximalSets(g, w, cands, 0)
		if truncated {
			return false
		}
		for _, s := range sets {
			if !ConflictFree(g, w, s) {
				return false
			}
			in := map[graph.NodeID]bool{}
			for _, u := range s {
				in[u] = true
			}
			for _, c := range cands {
				if in[c] {
					continue
				}
				conflicts := false
				for _, u := range s {
					if Conflict(g, c, u, w) {
						conflicts = true
						break
					}
				}
				if !conflicts {
					return false // s ∪ {c} still conflict-free ⇒ not maximal
				}
			}
		}
		if len(cands) > 0 {
			classes := GreedyPartition(g, w, cands)
			found := false
			for _, s := range sets {
				if equalClass(s, classes[0]) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: conflicts are symmetric.
func TestQuickConflictSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		g, w := randomScenario(seed)
		cands := Candidates(g, w)
		for i := 0; i < len(cands); i++ {
			for j := 0; j < len(cands); j++ {
				if Conflict(g, cands[i], cands[j], w) != Conflict(g, cands[j], cands[i], w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func equalClass(a, b Class) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkGreedyPartition(b *testing.B) {
	g, w := randomScenario(12345)
	cands := Candidates(g, w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = GreedyPartition(g, w, cands)
	}
}

func BenchmarkMaximalSets(b *testing.B) {
	g, w := randomScenario(999)
	cands := Candidates(g, w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = MaximalSets(g, w, cands, 0)
	}
}
