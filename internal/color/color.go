// Package color implements the conflict-aware color scheme of Section IV:
// relay candidates, the interference predicate, the extended greedy color
// partition (Algorithm 1, Eq. 1–3), and the enumeration of all maximal
// conflict-free relay sets that the OPT search branches over (Eq. 1).
//
// Terminology, following the paper: given coverage W, a *candidate* is a
// node u ∈ W with at least one neighbor outside W. Two candidates u, v
// *conflict* when they share an uncovered neighbor (N(u)∩N(v)∩W̄ ≠ ∅):
// firing both in the same round would collide at that neighbor. A *color*
// is a set of pairwise conflict-free candidates; the greedy scheme orders
// candidates by how many uncovered receivers they reach.
package color

import (
	"mlbs/internal/bitset"
	"mlbs/internal/dutycycle"
	"mlbs/internal/graph"
)

// Candidates returns, sorted ascending, the nodes of W that still have an
// uncovered neighbor — the relays eligible to fire (constraints 1–2 of
// Eq. 1).
func Candidates(g *graph.Graph, w bitset.Set) []graph.NodeID {
	return AppendCandidates(nil, g, w)
}

// AppendCandidates appends the candidates of w to dst and returns it — the
// buffer-reuse form of Candidates for callers that evaluate many coverage
// states.
func AppendCandidates(dst []graph.NodeID, g *graph.Graph, w bitset.Set) []graph.NodeID {
	for u := w.NextAfter(0); u >= 0; u = w.NextAfter(u + 1) {
		if g.Nbr(u).AnyDifference(w) {
			dst = append(dst, u)
		}
	}
	return dst
}

// AwakeCandidates returns the candidates whose sending channel is on at
// slot t — the duty-cycle restriction of Eq. 3 (u ∈ W ∧ t ∈ T(u)).
func AwakeCandidates(g *graph.Graph, w bitset.Set, s dutycycle.Schedule, t int) []graph.NodeID {
	var out []graph.NodeID
	w.ForEach(func(u int) {
		if s.Awake(u, t) && g.Nbr(u).AnyDifference(w) {
			out = append(out, u)
		}
	})
	return out
}

// Conflict reports whether candidates u and v interfere given coverage w:
// N(u) ∩ N(v) ∩ W̄ ≠ ∅ (constraint 3 of Eq. 1). A node never conflicts
// with itself.
func Conflict(g *graph.Graph, u, v graph.NodeID, w bitset.Set) bool {
	if u == v {
		return false
	}
	return g.Nbr(u).IntersectsDifference(g.Nbr(v), w)
}

// Receivers returns |N(u) ∩ W̄| — the uncovered neighbors u's relay would
// reach, the greedy scheme's utilization metric (Eq. 2).
func Receivers(g *graph.Graph, u graph.NodeID, w bitset.Set) int {
	return g.Nbr(u).CountDifference(w)
}

// ReceiverSet appends N(u) ∩ W̄ into dst (cleared first) and returns it.
func ReceiverSet(g *graph.Graph, u graph.NodeID, w bitset.Set, dst bitset.Set) bitset.Set {
	dst.CopyFrom(g.Nbr(u))
	dst.DifferenceWith(w)
	return dst
}

// Class is one color: a set of pairwise conflict-free candidates, sorted
// ascending by node ID.
type Class []graph.NodeID

// Covered returns the union of uncovered receivers of all class members —
// the broadcasting advance A this color would produce.
func (c Class) Covered(g *graph.Graph, w bitset.Set) bitset.Set {
	return c.CoveredInto(g, w, bitset.New(w.Capacity()))
}

// CoveredInto computes Covered into dst (cleared first) and returns it —
// the buffer-reuse form the scheduler's move generation runs on.
func (c Class) CoveredInto(g *graph.Graph, w bitset.Set, dst bitset.Set) bitset.Set {
	dst.Clear()
	for _, u := range c {
		dst.UnionWith(g.Nbr(u))
	}
	dst.DifferenceWith(w)
	return dst
}

// GreedyPartition runs Algorithm 1 on the given candidates: sort by
// descending receiver count (ties by ascending node ID, making the
// partition deterministic), then label color 1, 2, … greedily — a
// candidate joins the current color iff it conflicts with no member
// already labeled with it. The returned classes satisfy Eq. 1 and the
// greedy ordering constraint of Eq. 2.
func GreedyPartition(g *graph.Graph, w bitset.Set, cands []graph.NodeID) []Class {
	var sc Scratch
	return sc.GreedyPartition(g, w, cands)
}

// GreedySync computes the greedy colors of coverage w in the round-based
// system (Eq. 2).
func GreedySync(g *graph.Graph, w bitset.Set) []Class {
	return GreedyPartition(g, w, Candidates(g, w))
}

// GreedyDuty computes the greedy colors among the candidates awake at slot
// t in the duty-cycle system (Eq. 3).
func GreedyDuty(g *graph.Graph, w bitset.Set, s dutycycle.Schedule, t int) []Class {
	return GreedyPartition(g, w, AwakeCandidates(g, w, s, t))
}

// MaximalSets enumerates the maximal conflict-free subsets of cands —
// every color set any scheme could fire (Eq. 1) that is not dominated by a
// larger one. These are the maximal independent sets of the conflict graph,
// enumerated Bron–Kerbosch-style on the compatibility relation with
// pivoting, in deterministic order. limit > 0 caps the enumeration; the
// second return value reports whether the enumeration was truncated.
func MaximalSets(g *graph.Graph, w bitset.Set, cands []graph.NodeID, limit int) ([]Class, bool) {
	var sc Scratch
	return sc.MaximalSets(g, w, cands, limit)
}

func lessClasses(a, b Class) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// ValidatePartition checks that classes form a legal extended-greedy
// coloring of the candidates of w: (1) together they contain each
// candidate exactly once, (2) each class is pairwise conflict-free,
// (3) every member of class i > 0 conflicts with some member of every
// earlier class (otherwise it would have been labeled earlier — the
// paper's constraint 4), and (4) the classes' maximum receiver counts are
// non-increasing (Eq. 2). It returns a descriptive reason on failure.
func ValidatePartition(g *graph.Graph, w bitset.Set, cands []graph.NodeID, classes []Class) (bool, string) {
	seen := make(map[graph.NodeID]int)
	total := 0
	for ci, cls := range classes {
		if len(cls) == 0 {
			return false, "empty class"
		}
		for _, u := range cls {
			if _, dup := seen[u]; dup {
				return false, "node labeled twice"
			}
			seen[u] = ci
			total++
		}
		for i := 0; i < len(cls); i++ {
			for j := i + 1; j < len(cls); j++ {
				if Conflict(g, cls[i], cls[j], w) {
					return false, "intra-class conflict"
				}
			}
		}
	}
	if total != len(cands) {
		return false, "classes do not cover the candidate set"
	}
	for _, u := range cands {
		if _, ok := seen[u]; !ok {
			return false, "candidate missing from partition"
		}
	}
	for ci := 1; ci < len(classes); ci++ {
		for _, u := range classes[ci] {
			for pj := 0; pj < ci; pj++ {
				conflicts := false
				for _, v := range classes[pj] {
					if Conflict(g, u, v, w) {
						conflicts = true
						break
					}
				}
				if !conflicts {
					return false, "node could join an earlier class (constraint 4 violated)"
				}
			}
		}
	}
	maxRecv := func(cls Class) int {
		m := 0
		for _, u := range cls {
			if r := Receivers(g, u, w); r > m {
				m = r
			}
		}
		return m
	}
	for ci := 1; ci < len(classes); ci++ {
		if maxRecv(classes[ci-1]) < maxRecv(classes[ci]) {
			return false, "greedy ordering (Eq. 2) violated"
		}
	}
	return true, ""
}

// ConflictFree reports whether the given set of candidates is pairwise
// conflict-free under coverage w — the simulator's per-advance check.
func ConflictFree(g *graph.Graph, w bitset.Set, set []graph.NodeID) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if Conflict(g, set[i], set[j], w) {
				return false
			}
		}
	}
	return true
}
