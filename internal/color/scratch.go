package color

import (
	"slices"
	"sort"

	"mlbs/internal/bitset"
	"mlbs/internal/dutycycle"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// Scratch holds every buffer the color computations of one search frame
// need: class headers and their member backing, the candidate sort order,
// and a size-classed bitset pool for the Bron–Kerbosch working sets. After
// warm-up, GreedyPartition and MaximalSets run allocation-free on a reused
// Scratch — the property the scheduler's hot loop depends on.
//
// Results returned by Scratch methods alias its buffers and stay valid
// only until the next call on the same Scratch. A Scratch is not safe for
// concurrent use; the zero value is ready to go.
type Scratch struct {
	// Pool recycles the maximal-set enumeration's working bitsets. Lazily
	// created on first use; engines may share one pool across the
	// scratches of all their frames.
	Pool *bitset.Pool

	classes []Class
	members []graph.NodeID // backing storage the returned classes slice into
	order   []graph.NodeID
	recv    []int
	labeled []bool
	sorter  recvSorter

	cands []graph.NodeID
	awake []graph.NodeID

	covTmp bitset.Set

	// Bundle enumeration state (multi-channel slots; see bundle.go).
	bundles       []Bundle
	bundleClasses []Class // backing storage the returned bundles slice into
	bundleIdx     []int

	// gor backs the oracle-free convenience forms of GreedyPartition and
	// MaximalSets: they bind the protocol-graph oracle here so callers
	// without an interference.Binder stay allocation-free.
	gor interference.GraphOracle

	mk mkState
}

// BundleCoveredLen returns the joint advance size |A| of a bundle —
// Bundle.CoveredInto(...).Len() without materializing a fresh set.
func (sc *Scratch) BundleCoveredLen(g *graph.Graph, w bitset.Set, b Bundle) int {
	if sc.covTmp.Capacity() < w.Capacity() {
		sc.covTmp = bitset.New(w.Capacity())
	}
	tmp := sc.covTmp[:w.Words()]
	return b.CoveredInto(g, w, tmp).Len()
}

func (sc *Scratch) pool() *bitset.Pool {
	if sc.Pool == nil {
		sc.Pool = bitset.NewPool()
	}
	return sc.Pool
}

// Candidates is the buffer-reuse form of the package-level Candidates: the
// result aliases the Scratch and is valid until its next use.
func (sc *Scratch) Candidates(g *graph.Graph, w bitset.Set) []graph.NodeID {
	sc.cands = AppendCandidates(sc.cands[:0], g, w)
	return sc.cands
}

// FilterAwake narrows cands to the nodes whose sending channel is on at
// slot t, writing into the Scratch's awake buffer. cands may be the
// Scratch's own candidate buffer.
func (sc *Scratch) FilterAwake(cands []graph.NodeID, s dutycycle.Schedule, t int) []graph.NodeID {
	sc.awake = sc.awake[:0]
	for _, u := range cands {
		if s.Awake(u, t) {
			sc.awake = append(sc.awake, u)
		}
	}
	return sc.awake
}

// CoveredLen returns |A| for the advance A the class would produce —
// Class.Covered(...).Len() without materializing a fresh set.
func (sc *Scratch) CoveredLen(g *graph.Graph, w bitset.Set, c Class) int {
	if sc.covTmp.Capacity() < w.Capacity() {
		sc.covTmp = bitset.New(w.Capacity())
	}
	tmp := sc.covTmp[:w.Words()]
	return c.CoveredInto(g, w, tmp).Len()
}

// recvSorter orders candidates by descending receiver count, ties by
// ascending node ID — Algorithm 1's deterministic greedy order. It exists
// as a named type so sort.Stable receives a pointer and the sort itself
// does not allocate.
type recvSorter struct {
	ids  []graph.NodeID
	recv []int
}

func (s *recvSorter) Len() int { return len(s.ids) }
func (s *recvSorter) Less(i, j int) bool {
	if s.recv[i] != s.recv[j] {
		return s.recv[i] > s.recv[j]
	}
	return s.ids[i] < s.ids[j]
}
func (s *recvSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.recv[i], s.recv[j] = s.recv[j], s.recv[i]
}

// GreedyPartition is the buffer-reuse form of the package-level
// GreedyPartition: identical classes in identical order, with all
// intermediate state (sort order, receiver counts, labels, class members)
// held in the Scratch.
//
//mlbs:hotpath -- Algorithm 1's move generator; allocation-free on a warm Scratch by design
func (sc *Scratch) GreedyPartition(g *graph.Graph, w bitset.Set, cands []graph.NodeID) []Class {
	sc.gor.Reset(g)
	return sc.GreedyPartitionOracle(g, w, cands, &sc.gor)
}

// GreedyPartitionOracle runs Algorithm 1's greedy labeling with class
// admissibility judged by o instead of the inline protocol predicate.
// Under the graph oracle it is bit-identical to GreedyPartition (CanJoin
// is the very same member loop). Under a non-pairwise oracle a candidate
// may fail to open even a singleton class (a lone sender below the SINR
// noise floor); such candidates are labeled out of the partition — they
// can never fire at this coverage, and dropping them is what keeps the
// outer loop terminating.
//
//mlbs:hotpath -- Algorithm 1's move generator; allocation-free on a warm Scratch by design
func (sc *Scratch) GreedyPartitionOracle(g *graph.Graph, w bitset.Set, cands []graph.NodeID, o interference.Oracle) []Class {
	if len(cands) == 0 {
		return nil
	}
	sc.order = append(sc.order[:0], cands...)
	sc.recv = sc.recv[:0]
	for _, u := range sc.order {
		sc.recv = append(sc.recv, Receivers(g, u, w))
	}
	sc.sorter.ids, sc.sorter.recv = sc.order, sc.recv
	sort.Stable(&sc.sorter)

	total := len(sc.order)
	sc.labeled = sc.labeled[:0]
	for i := 0; i < total; i++ {
		sc.labeled = append(sc.labeled, false)
	}
	if cap(sc.members) < total {
		sc.members = make([]graph.NodeID, 0, total)
	} else {
		sc.members = sc.members[:0]
	}
	sc.classes = sc.classes[:0]
	done := 0
	for done < total {
		start := len(sc.members)
		for oi, u := range sc.order {
			if sc.labeled[oi] {
				continue
			}
			if !o.CanJoin(w, sc.members[start:], u) {
				if start == len(sc.members) {
					// u cannot fire even alone at this coverage (never the
					// case under the pairwise graph oracle): drop it so the
					// partition terminates.
					sc.labeled[oi] = true
					done++
				}
				continue
			}
			sc.members = append(sc.members, u)
			sc.labeled[oi] = true
			done++
		}
		cls := Class(sc.members[start:len(sc.members):len(sc.members)])
		if len(cls) > 0 {
			sort.Ints(cls)
			sc.classes = append(sc.classes, cls)
		}
	}
	return sc.classes
}

// MaximalSets is the buffer-reuse form of the package-level MaximalSets:
// identical sets in identical order (and the identical truncation point
// under a limit), with the Bron–Kerbosch working sets drawn from the
// Scratch's pool.
//
//mlbs:poolowner -- the compat masks and r park in mkState during the enumeration and are Put in bulk before return
//mlbs:hotpath -- exhaustive move generator; pooled working sets keep a warm Scratch allocation-free
func (sc *Scratch) MaximalSets(g *graph.Graph, w bitset.Set, cands []graph.NodeID, limit int) ([]Class, bool) {
	sc.gor.Reset(g)
	return sc.MaximalSetsOracle(g, w, cands, limit, &sc.gor)
}

// MaximalSetsOracle enumerates maximal admissible sender sets with
// conflicts judged by o. Under the graph oracle it is bit-identical to
// MaximalSets. Under a non-pairwise oracle (SINR) the Bron–Kerbosch
// enumeration over the pairwise relation is only a heuristic generator:
// every emitted set is re-checked set-level and the failures dropped, and
// the result is always reported truncated — admissible sets outside the
// pairwise-compat cliques (capture rescues) are not enumerated, so no
// optimality claim survives.
//
//mlbs:poolowner -- the compat masks and r park in mkState during the enumeration and are Put in bulk before return
//mlbs:hotpath -- exhaustive move generator; pooled working sets keep a warm Scratch allocation-free
func (sc *Scratch) MaximalSetsOracle(g *graph.Graph, w bitset.Set, cands []graph.NodeID, limit int, o interference.Oracle) ([]Class, bool) {
	k := len(cands)
	if k == 0 {
		return nil, false
	}
	st := &sc.mk
	st.g, st.w, st.cands, st.limit = g, w, cands, limit
	st.pool = sc.pool()
	st.truncated = false
	st.out = st.out[:0]
	st.members = st.members[:0]

	// compat[i] = candidate indices j≠i that do NOT conflict with i; the
	// maximal independent sets of the conflict graph are the maximal cliques
	// of this compatibility graph.
	st.compat = st.compat[:0]
	for i := 0; i < k; i++ {
		st.compat = append(st.compat, st.pool.Get(k))
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if !o.Conflict(w, cands[i], cands[j]) {
				st.compat[i].Add(j)
				st.compat[j].Add(i)
			}
		}
	}

	st.r = st.pool.Get(k)
	full := st.pool.Get(k)
	for i := 0; i < k; i++ {
		full.Add(i)
	}
	empty := st.pool.Get(k)
	st.bk(full, empty)
	st.pool.Put(full)
	st.pool.Put(empty)
	st.pool.Put(st.r)
	for _, c := range st.compat {
		st.pool.Put(c)
	}
	st.r = nil
	st.compat = st.compat[:0]

	slices.SortFunc(st.out, compareClasses)
	if !o.Pairwise() {
		kept := st.out[:0]
		for _, cls := range st.out {
			if o.ConflictFree(w, cls) {
				kept = append(kept, cls)
			}
		}
		st.out = kept
		st.truncated = true
	}
	st.g, st.w, st.cands, st.pool = nil, nil, nil, nil
	return st.out, st.truncated
}

// compareClasses orders classes lexicographically — the deterministic
// output order of MaximalSets.
func compareClasses(a, b Class) int {
	switch {
	case lessClasses(a, b):
		return -1
	case lessClasses(b, a):
		return 1
	}
	return 0
}

// mkState is the Bron–Kerbosch enumeration state of one MaximalSets call,
// kept in the Scratch so the recursion is method-based (no self-referential
// closure allocation) and its buffers persist across calls.
type mkState struct {
	g         *graph.Graph
	w         bitset.Set
	cands     []graph.NodeID
	compat    []bitset.Set
	limit     int
	out       []Class
	members   []graph.NodeID // backing for out's classes
	truncated bool
	r         bitset.Set
	pool      *bitset.Pool
}

// bk emits every maximal clique of the compatibility graph extending r,
// with candidate set p and exclusion set x (both consumed). p and x are
// owned by the caller; bk mutates them exactly as the classic pivoted
// enumeration prescribes.
//
//mlbs:hotpath -- the Bron–Kerbosch recursion; method-based so no closure allocates per call
func (st *mkState) bk(p, x bitset.Set) {
	if st.truncated {
		return
	}
	if p.Empty() && x.Empty() {
		start := len(st.members)
		for i := st.r.NextAfter(0); i >= 0; i = st.r.NextAfter(i + 1) {
			st.members = append(st.members, st.cands[i])
		}
		cls := Class(st.members[start:len(st.members):len(st.members)])
		sort.Ints(cls)
		st.out = append(st.out, cls)
		if st.limit > 0 && len(st.out) >= st.limit {
			st.truncated = true
		}
		return
	}
	// Pivot: the vertex of p ∪ x with the most compatible vertices in p.
	pivot, best := -1, -1
	for i := p.NextAfter(0); i >= 0; i = p.NextAfter(i + 1) {
		if c := st.compat[i].CountIntersect(p); c > best {
			best, pivot = c, i
		}
	}
	for i := x.NextAfter(0); i >= 0; i = x.NextAfter(i + 1) {
		if c := st.compat[i].CountIntersect(p); c > best {
			best, pivot = c, i
		}
	}
	ext := st.pool.GetCopy(p)
	if pivot >= 0 {
		ext.DifferenceWith(st.compat[pivot])
	}
	p2 := st.pool.Get(p.Capacity())
	x2 := st.pool.Get(x.Capacity())
	for i := ext.NextAfter(0); i >= 0; i = ext.NextAfter(i + 1) {
		if st.truncated {
			break
		}
		st.r.Add(i)
		bitset.IntersectInto(p2, p, st.compat[i])
		bitset.IntersectInto(x2, x, st.compat[i])
		st.bk(p2, x2)
		st.r.Remove(i)
		p.Remove(i)
		x.Add(i)
	}
	st.pool.Put(p2)
	st.pool.Put(x2)
	st.pool.Put(ext)
}
