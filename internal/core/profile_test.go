package core

import (
	"testing"

	"mlbs/internal/topology"
)

// TestDepthProfileInvariance pins the observability contract of the
// per-depth search profile: a profiled run returns exactly the schedule
// and aggregate stats of an unprofiled run (the profile observes, never
// steers), its per-depth rows sum back to the aggregates, and an
// unprofiled run carries no Depths at all — that nil is what keeps
// pre-profile Result encodings byte-identical.
func TestDepthProfileInvariance(t *testing.T) {
	for _, seed := range []uint64{1, 7, 21} {
		dep, err := topology.Generate(topology.PaperConfig(100), seed)
		if err != nil {
			t.Fatal(err)
		}
		in := Sync(dep.G, dep.Source)

		en := NewGOPT(0).NewEngine()
		plain, err := en.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Stats.Depths != nil {
			t.Fatalf("seed %d: unprofiled run carries Depths", seed)
		}

		prof, err := NewGOPT(0).NewEngine().ScheduleProfiled(in)
		if err != nil {
			t.Fatal(err)
		}
		if prof.Schedule.End() != plain.Schedule.End() || prof.PA != plain.PA || prof.Exact != plain.Exact {
			t.Fatalf("seed %d: profiling changed the result: end %d/%d PA %d/%d",
				seed, prof.Schedule.End(), plain.Schedule.End(), prof.PA, plain.PA)
		}
		if prof.Stats.Expanded != plain.Stats.Expanded || prof.Stats.MemoHits != plain.Stats.MemoHits {
			t.Fatalf("seed %d: profiling changed search effort: %+v vs %+v",
				seed, prof.Stats, plain.Stats)
		}
		if len(prof.Stats.Depths) == 0 {
			t.Fatalf("seed %d: profiled run collected no depth rows", seed)
		}
		var exp, memo int
		for _, d := range prof.Stats.Depths {
			exp += d.Expanded
			memo += d.MemoHits
		}
		if exp != prof.Stats.Expanded || memo != prof.Stats.MemoHits {
			t.Fatalf("seed %d: depth rows don't sum to aggregates: expanded %d/%d memo %d/%d",
				seed, exp, prof.Stats.Expanded, memo, prof.Stats.MemoHits)
		}

		// Reuse hazard: a profiled run followed by a plain run on the same
		// engine must not leak or mutate the first result's profile.
		en2 := NewGOPT(0).NewEngine()
		p1, err := en2.ScheduleProfiled(in)
		if err != nil {
			t.Fatal(err)
		}
		rows := len(p1.Stats.Depths)
		p2, err := en2.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if p2.Stats.Depths != nil {
			t.Fatalf("seed %d: profile leaked into the next unprofiled run", seed)
		}
		if len(p1.Stats.Depths) != rows {
			t.Fatalf("seed %d: engine reuse mutated a handed-out profile", seed)
		}
	}
}
