package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mlbs/internal/dutycycle"
	"mlbs/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden schedule files")

// goldenCase identifies one (scheduler, system, seed) cell of the golden
// matrix: GOPT and OPT, synchronous and r=10 duty-cycle, over 10 paper
// deployments of 100 nodes.
type goldenCase struct {
	Scheduler string    `json:"scheduler"`
	Mode      string    `json:"mode"`
	Seed      uint64    `json:"seed"`
	PA        int       `json:"pa"`
	Exact     bool      `json:"exact"`
	Advances  []Advance `json:"advances"`
}

const goldenN = 100

func goldenInstance(t testing.TB, mode string, seed uint64) Instance {
	t.Helper()
	dep, err := topology.Generate(topology.PaperConfig(goldenN), seed)
	if err != nil {
		t.Fatalf("deployment seed %d: %v", seed, err)
	}
	switch mode {
	case "sync":
		return Sync(dep.G, dep.Source)
	case "duty-r10":
		return Async(dep.G, dep.Source, dutycycle.NewUniform(goldenN, 10, seed, 0), 0)
	}
	t.Fatalf("unknown mode %q", mode)
	return Instance{}
}

func goldenScheduler(name string) Scheduler {
	if name == "OPT" {
		return NewOPT(0, 0)
	}
	return NewGOPT(0)
}

// TestGoldenSchedules locks GOPT and OPT output bit-for-bit across the
// allocation-free refactor: the stored schedules were produced by the
// pre-refactor map/string-key implementation, and every future change to
// the search core must keep reproducing them byte-identically.
func TestGoldenSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix is slow; skipped with -short")
	}
	var cases []goldenCase
	for _, schedName := range []string{"G-OPT", "OPT"} {
		for _, mode := range []string{"sync", "duty-r10"} {
			for seed := uint64(1); seed <= 10; seed++ {
				in := goldenInstance(t, mode, seed)
				res, err := goldenScheduler(schedName).Schedule(in)
				if err != nil {
					t.Fatalf("%s %s seed %d: %v", schedName, mode, seed, err)
				}
				if err := res.Schedule.Validate(in); err != nil {
					t.Fatalf("%s %s seed %d produced invalid schedule: %v", schedName, mode, seed, err)
				}
				cases = append(cases, goldenCase{
					Scheduler: schedName,
					Mode:      mode,
					Seed:      seed,
					PA:        res.PA,
					Exact:     res.Exact,
					Advances:  res.Schedule.Advances,
				})
			}
		}
	}

	got, err := json.MarshalIndent(cases, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_schedules.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", path, len(cases))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		var wantCases []goldenCase
		if err := json.Unmarshal(want, &wantCases); err != nil {
			t.Fatalf("golden file corrupt: %v", err)
		}
		for i := range wantCases {
			if i >= len(cases) {
				break
			}
			if diff := describeCaseDiff(wantCases[i], cases[i]); diff != "" {
				t.Errorf("case %d (%s %s seed %d): %s",
					i, wantCases[i].Scheduler, wantCases[i].Mode, wantCases[i].Seed, diff)
			}
		}
		t.Fatalf("schedules diverged from the pre-refactor golden output")
	}
}

func describeCaseDiff(want, got goldenCase) string {
	if want.PA != got.PA {
		return fmt.Sprintf("PA %d, want %d", got.PA, want.PA)
	}
	if want.Exact != got.Exact {
		return fmt.Sprintf("Exact %v, want %v", got.Exact, want.Exact)
	}
	if len(want.Advances) != len(got.Advances) {
		return fmt.Sprintf("%d advances, want %d", len(got.Advances), len(want.Advances))
	}
	for ai := range want.Advances {
		w, g := want.Advances[ai], got.Advances[ai]
		if w.T != g.T || !equalIDs(w.Senders, g.Senders) || !equalIDs(w.Covered, g.Covered) {
			return fmt.Sprintf("advance %d: got {t=%d s=%v c=%v}, want {t=%d s=%v c=%v}",
				ai, g.T, g.Senders, g.Covered, w.T, w.Senders, w.Covered)
		}
	}
	return ""
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
