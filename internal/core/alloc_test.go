package core

import (
	"testing"

	"mlbs/internal/topology"
)

// TestDFSSteadyStateAllocs pins the refactor's core property: once the
// engine's frame arena, scratches, and pools are warm, re-running the full
// branch-and-bound from the root allocates only what the (reset) memo
// table itself needs — a handful of slab/slot arrays — no matter how many
// hundreds of states it expands. The pre-refactor engine allocated several
// objects per expanded state (string keys, coverage unions, member lists,
// class slices), so this ceiling would have been in the thousands.
func TestDFSSteadyStateAllocs(t *testing.T) {
	dep, err := topology.Generate(topology.PaperConfig(100), 7)
	if err != nil {
		t.Fatal(err)
	}
	in := Sync(dep.G, dep.Source)
	inc, err := NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}

	cfg := SearchConfig{Moves: GreedyMoves, Budget: DefaultBudget, MaxSets: DefaultMaxSets}
	e := newEngine(in, cfg)
	e.bestEnd = inc.Schedule.End()
	e.best = append([]Advance(nil), inc.Schedule.Advances...)
	w0 := in.initialCoverage()

	run := func() {
		e.memo = newMemoTable(memoSeed)
		e.budget = cfg.Budget
		e.stack = e.stack[:0]
		e.dfs(0, w0, in.Start, e.bestEnd)
	}
	run() // warm-up: builds frames, grows scratches, fills pools

	stats := e.stats
	allocs := testing.AllocsPerRun(5, run)
	if allocs > 64 {
		t.Errorf("warm dfs allocated %.0f objects per full search (expanded %d states); want ≤ 64",
			allocs, e.stats.Expanded-stats.Expanded)
	}
	if e.stats.Expanded == 0 {
		t.Fatal("dfs expanded no states; the allocation ceiling proved nothing")
	}
}

// TestOPTSteadyStateAllocs repeats the ceiling for the maximal-set move
// generator, whose Bron–Kerbosch enumeration draws all working sets from
// the shared pool.
func TestOPTSteadyStateAllocs(t *testing.T) {
	dep, err := topology.Generate(topology.PaperConfig(100), 7)
	if err != nil {
		t.Fatal(err)
	}
	in := Sync(dep.G, dep.Source)
	inc, err := NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}

	cfg := SearchConfig{Moves: MaximalMoves, Budget: DefaultBudget, MaxSets: DefaultMaxSets}
	e := newEngine(in, cfg)
	e.bestEnd = inc.Schedule.End()
	e.best = append([]Advance(nil), inc.Schedule.Advances...)
	w0 := in.initialCoverage()

	run := func() {
		e.memo = newMemoTable(memoSeed)
		e.budget = cfg.Budget
		e.stack = e.stack[:0]
		e.dfs(0, w0, in.Start, e.bestEnd)
	}
	run()

	allocs := testing.AllocsPerRun(5, run)
	if allocs > 64 {
		t.Errorf("warm OPT dfs allocated %.0f objects per full search; want ≤ 64", allocs)
	}
}

// TestPolicyScheduleAllocs bounds the practical scheduler end to end: one
// E-model table build plus the rollout. Output materialization (the
// schedule's own sender/receiver lists) is the dominant remainder; the
// bound still sits far below the pre-refactor cost of the same call.
func TestPolicyScheduleAllocs(t *testing.T) {
	dep, err := topology.Generate(topology.PaperConfig(100), 7)
	if err != nil {
		t.Fatal(err)
	}
	in := Sync(dep.G, dep.Source)
	sched := NewEModel(0)
	if _, err := sched.Schedule(in); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := sched.Schedule(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 300 {
		t.Errorf("E-model Schedule allocated %.0f objects per call; want ≤ 300", allocs)
	}
}
