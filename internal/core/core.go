// Package core implements the paper's primary contribution: minimum
// latency broadcast scheduling with conflict awareness.
//
// Three schedulers are provided, mirroring Algorithm 3:
//
//   - OPT    — the ultimate target: the time counter M evaluated over every
//     maximal conflict-free relay set (Eq. 1, 4, 5, 6), found by
//     memoized branch-and-bound search.
//   - G-OPT  — the same search restricted to the greedy color classes of
//     Algorithm 1 (Eq. 2, 3, 7, 8).
//   - E-model — the practical policy: fire the greedy color whose candidate
//     has the largest quadrant estimate E (Eq. 10), no search.
//
// All three run unchanged in the round-based synchronous system (wake
// schedule AlwaysAwake) and the asynchronous duty-cycle system (any other
// dutycycle.Schedule): the synchronous system is the degenerate duty cycle
// with r = 1, exactly as the paper develops it.
package core

import (
	"errors"
	"fmt"

	"mlbs/internal/bitset"
	"mlbs/internal/color"
	"mlbs/internal/dutycycle"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// MaxChannels bounds Instance.Channels: more orthogonal channels than any
// real radio stack offers would only blow up the per-slot bundle
// enumeration without changing a schedule (λ classes saturate far below
// this).
const MaxChannels = 64

// Instance is one broadcast problem: a topology, the source, the slot at
// which the source initiates (t_s), and the wake schedule.
type Instance struct {
	G      *graph.Graph
	Source graph.NodeID
	Start  int
	Wake   dutycycle.Schedule
	// PreCovered lists nodes that already hold the message at t_s besides
	// the source — multi-source dissemination and the monotonicity
	// experiments use it; leave nil for the paper's single-source setting.
	PreCovered []graph.NodeID
	// Channels is the number of orthogonal frequency channels available to
	// the deployment. 0 and 1 both mean the paper's single shared channel.
	// With K > 1 a slot may carry up to K concurrent relay classes, one per
	// channel: two senders conflict only when they collide in the same slot
	// AND on the same channel (the multi-channel model of Nguyen et al.,
	// arXiv:1810.12130, transplanted to broadcast).
	Channels int
	// SINR selects the physical interference model (Halldórsson & Mitra)
	// instead of the paper's protocol-graph conflicts: receivers decode
	// their strongest in-range sender iff its power clears SINR.Beta
	// against noise plus the summed interference of every other concurrent
	// same-channel sender. Requires distinct node positions. Nil — the
	// default — keeps the paper's model and every historic digest/golden.
	SINR *interference.SINRParams
}

// Oracle binds the interference backend this instance selects into b.
func (in Instance) Oracle(b *interference.Binder) interference.Oracle {
	return b.Bind(in.G, in.SINR)
}

// K returns the effective channel count: max(1, Channels).
func (in Instance) K() int {
	if in.Channels > 1 {
		return in.Channels
	}
	return 1
}

// initialCoverage returns {Source} ∪ PreCovered as a bitset.
func (in Instance) initialCoverage() bitset.Set {
	w := bitset.New(in.G.N())
	w.Add(in.Source)
	for _, u := range in.PreCovered {
		w.Add(u)
	}
	return w
}

// Validate reports whether the instance is well formed and solvable.
func (in Instance) Validate() error {
	switch {
	case in.G == nil:
		return errors.New("core: nil graph")
	case in.Source < 0 || in.Source >= in.G.N():
		return fmt.Errorf("core: source %d outside [0,%d)", in.Source, in.G.N())
	case in.Wake == nil:
		return errors.New("core: nil wake schedule")
	case in.Wake.N() < in.G.N():
		return fmt.Errorf("core: wake schedule covers %d nodes, graph has %d", in.Wake.N(), in.G.N())
	case in.Start < 0:
		return errors.New("core: negative start slot")
	case in.Channels < 0:
		return fmt.Errorf("core: negative channel count %d", in.Channels)
	case in.Channels > MaxChannels:
		return fmt.Errorf("core: %d channels exceeds the limit %d", in.Channels, MaxChannels)
	}
	for _, u := range in.PreCovered {
		if u < 0 || u >= in.G.N() {
			return fmt.Errorf("core: pre-covered node %d outside [0,%d)", u, in.G.N())
		}
	}
	if in.SINR != nil {
		if err := in.SINR.Validate(in.G.N()); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if !in.G.DistinctPositions() {
			return errors.New("core: SINR interference model requires distinct node positions")
		}
	}
	if _, connected := in.G.Eccentricity(in.Source); !connected {
		return errors.New("core: graph not connected from source; broadcast cannot complete")
	}
	return nil
}

// Sync wraps a graph and source into a round-based synchronous instance
// starting at t_s = 1 (the paper's convention in Tables II and III).
func Sync(g *graph.Graph, source graph.NodeID) Instance {
	return Instance{G: g, Source: source, Start: 1, Wake: dutycycle.AlwaysAwake{Nodes: g.N()}}
}

// Async wraps a graph, source and wake schedule into a duty-cycle instance
// whose start is the source's first wake slot at or after from.
func Async(g *graph.Graph, source graph.NodeID, wake dutycycle.Schedule, from int) Instance {
	return Instance{G: g, Source: source, Start: wake.NextAwake(source, from), Wake: wake}
}

// Advance is one broadcasting advance: the selected color's relays firing
// concurrently at slot T on frequency channel Channel (always 0 in the
// single-channel system) and the nodes they newly cover. In a
// multi-channel schedule several advances may share a slot, one per
// channel in ascending channel order; a node reachable by more than one
// of them is attributed to the lowest channel that covers it.
type Advance struct {
	T       int
	Channel int `json:"Channel,omitempty"`
	Senders []graph.NodeID
	Covered []graph.NodeID
}

// Schedule is a complete conflict-aware broadcast schedule.
type Schedule struct {
	Source   graph.NodeID
	Start    int
	Advances []Advance
}

// End returns the slot of the last advance — the paper's P(A) (the
// recursion M(N, t) = t−1 evaluates to the last firing slot). A schedule
// with no advances (single-node network) ends at Start−1.
func (s *Schedule) End() int {
	if len(s.Advances) == 0 {
		return s.Start - 1
	}
	return s.Advances[len(s.Advances)-1].T
}

// PA returns the paper's P(A) metric: the end time of the broadcast.
func (s *Schedule) PA() int { return s.End() }

// Latency returns the elapsed rounds/slots P(A) − t_s + 1, the quantity
// Theorem 1 bounds by d+2 (sync) and 2r(d+2) (async).
func (s *Schedule) Latency() int { return s.End() - s.Start + 1 }

// Validate replays the schedule against the instance and checks every
// model constraint: advances strictly ordered by (slot, channel) and not
// before t_s, at most K advances (channels 0..K−1, strictly ascending) per
// slot, senders covered, awake, in possession of uncovered neighbors, and
// transmitting on at most one channel per slot (one radio), same-channel
// senders pairwise conflict-free (Eq. 1 constraint 3, made channel-aware),
// the recorded coverage exactly N(senders) ∩ W̄ minus what lower channels
// of the same slot already claimed, and full coverage at the end.
func (s *Schedule) Validate(in Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	n := in.G.N()
	k := in.K()
	var ib interference.Binder
	oracle := in.Oracle(&ib)
	w := in.initialCoverage()
	got := bitset.New(n)
	want := bitset.New(n)
	slotCov := bitset.New(n) // coverage claimed by lower channels of the current slot
	slotTx := bitset.New(n)  // nodes already transmitting in the current slot
	prev := s.Start - 1
	for ai := 0; ai < len(s.Advances); {
		t := s.Advances[ai].T
		if t <= prev {
			return fmt.Errorf("advance %d at t=%d not after t=%d", ai, t, prev)
		}
		prev = t
		end := ai
		for end < len(s.Advances) && s.Advances[end].T == t {
			end++
		}
		if end-ai > k {
			return fmt.Errorf("slot %d carries %d advances, instance has %d channels", t, end-ai, k)
		}
		slotCov.Clear()
		slotTx.Clear()
		prevCh := -1
		for ; ai < end; ai++ {
			adv := s.Advances[ai]
			if adv.Channel <= prevCh {
				return fmt.Errorf("advance %d: channel %d not above channel %d in slot %d", ai, adv.Channel, prevCh, t)
			}
			if adv.Channel >= k {
				return fmt.Errorf("advance %d: channel %d outside [0,%d)", ai, adv.Channel, k)
			}
			prevCh = adv.Channel
			if len(adv.Senders) == 0 {
				return fmt.Errorf("advance %d has no senders", ai)
			}
			for _, u := range adv.Senders {
				if !w.Has(u) {
					return fmt.Errorf("advance %d: sender %d has not received the message", ai, u)
				}
				if !in.Wake.Awake(u, t) {
					return fmt.Errorf("advance %d: sender %d asleep at slot %d", ai, u, t)
				}
				if !in.G.Nbr(u).AnyDifference(w) {
					return fmt.Errorf("advance %d: sender %d has no uncovered neighbor", ai, u)
				}
				if slotTx.Has(u) {
					return fmt.Errorf("advance %d: sender %d transmits on two channels in slot %d", ai, u, t)
				}
				slotTx.Add(u)
			}
			if !oracle.ConflictFree(w, adv.Senders) {
				return fmt.Errorf("advance %d: senders conflict at an uncovered node", ai)
			}
			got.Clear()
			for _, u := range adv.Senders {
				got.UnionWith(in.G.Nbr(u))
			}
			got.DifferenceWith(w)
			got.DifferenceWith(slotCov)
			want.Clear()
			for _, v := range adv.Covered {
				want.Add(v)
			}
			if !got.Equal(want) {
				return fmt.Errorf("advance %d: recorded coverage %v, relays reach %v", ai, want, got)
			}
			if got.Empty() {
				return fmt.Errorf("advance %d: covers no new node (lower channels of slot %d claim its whole reach)", ai, t)
			}
			slotCov.UnionWith(got)
		}
		w.UnionWith(slotCov)
	}
	if w.Len() != n {
		return fmt.Errorf("broadcast incomplete: %d of %d nodes covered", w.Len(), n)
	}
	return nil
}

// SearchStats reports the effort of a search-based scheduler.
type SearchStats struct {
	Expanded    int  // states expanded
	MemoHits    int  // memoized states reused
	MemoEntries int  // distinct states stored
	MovesCapped bool // OPT move enumeration hit its cap somewhere
	// BudgetExhausted reports that the state budget ran out mid-search:
	// some subtree was abandoned with only its admissible bound. A result
	// can still be Exact with this set (fail-high proofs survive
	// truncation), but a non-exact result with it set is a budget
	// artifact, not a structural limit. Omitted from JSON when false so
	// pre-existing encodings keep their exact bytes.
	BudgetExhausted bool `json:",omitempty"`
	// Depths holds the per-depth search profile — indexed by DFS depth —
	// when the search ran with SearchConfig.DepthProfile set (traced
	// requests only). Nil otherwise, and omitted from JSON when nil so
	// pre-existing Result encodings keep their exact bytes.
	Depths []DepthStats `json:",omitempty"`
}

// DepthStats is one depth level of a profiled search: how many states the
// DFS expanded there, how many memo hits short-circuited recursion, and
// how many subtrees each prune class cut.
type DepthStats struct {
	Expanded    int `json:",omitempty"` // states expanded at this depth
	MemoHits    int `json:",omitempty"` // memo lookups that answered here
	BoundPrunes int `json:",omitempty"` // subtrees cut by the admissible lower bound
	BudgetCuts  int `json:",omitempty"` // subtrees abandoned when the budget ran out
}

// Result is a scheduler's output. Exact is true when the scheduler proved
// the schedule optimal for its color scheme (always false for policy
// schedulers, which make no optimality claim).
type Result struct {
	Scheduler string
	Schedule  *Schedule
	PA        int
	Exact     bool
	Stats     SearchStats
	// Generation counts quality re-publications of this plan under its
	// instance digest: 0 is the first plan computed for the key, and each
	// background improver upgrade re-publishes with the next generation.
	// Improved marks a schedule the anytime improver has tightened below
	// its original scheduler's output.
	Generation int
	Improved   bool
}

// Scheduler is the common interface of OPT, G-OPT, E-model and baselines.
type Scheduler interface {
	Name() string
	Schedule(in Instance) (*Result, error)
}

// SyncLatencyBound returns Theorem 1's round-based bound: latency ≤ d+2,
// where d is the source's eccentricity.
func SyncLatencyBound(d int) int { return d + 2 }

// AsyncLatencyBound returns Theorem 1's duty-cycle bound: latency ≤
// 2r(d+2) slots.
func AsyncLatencyBound(r, d int) int { return 2 * r * (d + 2) }

// Ref12LatencyBound returns the accumulation bound of the paper's
// reference [12] (Jiao et al.): up to 17·k·d slots, where k is the maximum
// wait between neighboring nodes — at most 2r for the uniform-per-cycle
// schedule (Section V compares against this bound in Figures 5 and 7).
func Ref12LatencyBound(r, d int) int { return 17 * 2 * r * d }

// nextUsefulSlot returns the earliest slot ≥ t at which some candidate of w
// is awake, together with the candidate list; ok=false when w has no
// candidates at all (complete coverage or a stuck partition). The returned
// list aliases sc's buffers and is valid until sc's next candidate query.
func nextUsefulSlot(g *graph.Graph, wake dutycycle.Schedule, w bitset.Set, t int, sc *color.Scratch) (slot int, cands []graph.NodeID, ok bool) {
	all := sc.Candidates(g, w)
	if len(all) == 0 {
		return 0, nil, false
	}
	best := -1
	for _, u := range all {
		nw := wake.NextAwake(u, t)
		if best < 0 || nw < best {
			best = nw
		}
	}
	return best, sc.FilterAwake(all, wake, best), true
}

// move is one coverage-annotated selection the search can fire in a slot:
// a single color class on the shared channel (bundle nil), or — on a
// multi-channel instance — a bundle of up to K sender-disjoint classes,
// one per channel. covLen is the size of the (joint) advance it would
// produce; the advance's member set is deliberately absent — it is
// materialized into the frame's single active-coverage buffer only when
// the search actually descends into the move, so pruned branches never
// pay for it.
type move struct {
	senders color.Class
	bundle  color.Bundle // nil in the single-channel system
	covLen  int
}

// compareMoves orders moves by descending coverage, ties by ascending
// lexicographic senders (class by class for bundles) — the deterministic
// branch order of the search.
func compareMoves(a, b move) int {
	if a.covLen != b.covLen {
		return b.covLen - a.covLen
	}
	if a.bundle != nil || b.bundle != nil {
		return color.CompareBundles(a.bundle, b.bundle)
	}
	switch {
	case lessIDs(a.senders, b.senders):
		return -1
	case lessIDs(b.senders, a.senders):
		return 1
	}
	return 0
}

func lessIDs(a, b []graph.NodeID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
