package core

import (
	"testing"

	"mlbs/internal/bitset"
)

func memoSet(n int, members ...int) bitset.Set {
	return bitset.FromMembers(n, members...)
}

func TestMemoTableBasic(t *testing.T) {
	m := newMemoTable(1)
	w := memoSet(130, 1, 64, 129)
	if _, kind := m.lookup(w, 3); kind != memoEmpty {
		t.Fatalf("lookup on empty table returned kind %d", kind)
	}
	m.put(w, 3, 7, memoLower)
	if r, kind := m.lookup(w, 3); kind != memoLower || r != 7 {
		t.Fatalf("got (%d,%d), want (7,lower)", r, kind)
	}
	// Same coverage, different phase: a distinct entry.
	if _, kind := m.lookup(w, 4); kind != memoEmpty {
		t.Fatal("phase should be part of the key")
	}
	// Update in place must not create a second entry.
	m.put(w, 3, 5, memoExact)
	if r, kind := m.lookup(w, 3); kind != memoExact || r != 5 {
		t.Fatalf("got (%d,%d), want (5,exact)", r, kind)
	}
	if m.count != 1 {
		t.Fatalf("count = %d after overwrite, want 1", m.count)
	}
}

func TestMemoTableStoredKeyIsACopy(t *testing.T) {
	m := newMemoTable(1)
	w := memoSet(64, 2, 5)
	m.put(w, 0, 1, memoExact)
	w.Add(60) // caller mutates its set after the insert
	if _, kind := m.lookup(w, 0); kind != memoEmpty {
		t.Fatal("mutated set should miss: the table must have stored a copy")
	}
	w.Remove(60)
	if r, kind := m.lookup(w, 0); kind != memoExact || r != 1 {
		t.Fatal("original set should still hit")
	}
}

// TestMemoTableAdversarialCollisions forces every key onto one digest and
// verifies the explicit collision fallback (stored-set comparison plus
// linear probing) still resolves each entry exactly, through several
// growth cycles.
func TestMemoTableAdversarialCollisions(t *testing.T) {
	m := newMemoTable(1)
	m.hashFn = func(bitset.Set) uint64 { return 0xdead }
	const n = 2000 // > initial 1024 slots: exercises grow under collisions
	for i := 0; i < n; i++ {
		m.put(memoSet(n, i), i%7, int32(i), memoExact)
	}
	if m.count != n {
		t.Fatalf("count = %d, want %d", m.count, n)
	}
	for i := 0; i < n; i++ {
		r, kind := m.lookup(memoSet(n, i), i%7)
		if kind != memoExact || r != int32(i) {
			t.Fatalf("entry %d: got (%d,%d), want (%d,exact)", i, r, kind, i)
		}
	}
	// A colliding-but-distinct set must miss, not hit a stranger's value.
	if _, kind := m.lookup(memoSet(n, 13, 17, 19), 0); kind != memoEmpty {
		t.Fatal("distinct set with identical digest must be a miss")
	}
}

func TestMemoTableManyDistinctHashes(t *testing.T) {
	m := newMemoTable(42)
	const n = 5000
	for i := 0; i < n; i++ {
		m.put(memoSet(n, i), 0, int32(i%97), memoLower)
	}
	for i := 0; i < n; i++ {
		r, kind := m.lookup(memoSet(n, i), 0)
		if kind != memoLower || r != int32(i%97) {
			t.Fatalf("entry %d lost after growth: got (%d,%d)", i, r, kind)
		}
	}
}

func TestMemoTableSlabSpill(t *testing.T) {
	m := newMemoTable(9)
	// Each 4096-bit key is 64 words; memoSlabWords/64 = 256 keys per slab.
	// 512 inserts force a second slab; keys on both sides of the boundary
	// must stay intact.
	const n = 512
	for i := 0; i < n; i++ {
		m.put(memoSet(4096, i), 1, int32(i), memoExact)
	}
	if m.count != n {
		t.Fatalf("count = %d, want %d distinct keys", m.count, n)
	}
	for _, i := range []int{0, 1, 255, 256, 511} {
		r, kind := m.lookup(memoSet(4096, i), 1)
		if kind != memoExact || r != int32(i) {
			t.Fatalf("key %d corrupted across slab boundary: (%d,%d)", i, r, kind)
		}
	}
}

func BenchmarkMemoTablePut(b *testing.B) {
	m := newMemoTable(7)
	keys := make([]bitset.Set, 1024)
	for i := range keys {
		keys[i] = memoSet(320, i%320, (i*7)%320)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.put(keys[i%len(keys)], i%11, int32(i), memoLower)
	}
}

func BenchmarkMemoTableLookup(b *testing.B) {
	m := newMemoTable(7)
	keys := make([]bitset.Set, 1024)
	for i := range keys {
		keys[i] = memoSet(320, i%320, (i*7)%320)
		m.put(keys[i], i%11, int32(i), memoExact)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, kind := m.lookup(keys[i%len(keys)], i%11); kind == memoEmpty {
			b.Fatal("unexpected miss")
		}
	}
}
