package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"mlbs/internal/bitset"
	"mlbs/internal/color"
	"mlbs/internal/dutycycle"
	"mlbs/internal/graph"
	"mlbs/internal/rng"
)

// exhaustiveM is an independent re-implementation of the time counter M:
// plain breadth-first dynamic programming over (coverage, slot) states with
// no pruning, bounds, or memo subtleties — deliberately dumb, so that any
// disagreement with the branch-and-bound engine exposes a search bug. It
// explores the same move sets (greedy classes or maximal conflict-free
// sets) and returns the minimal end slot, or -1 if the horizon passes.
func exhaustiveM(in Instance, moves MoveGen, horizon int) int {
	n := in.G.N()
	full := bitset.New(n)
	for i := 0; i < n; i++ {
		full.Add(i)
	}
	type state struct {
		w bitset.Set
		t int
	}
	start := in.initialCoverage()
	if start.Len() == n {
		return in.Start - 1
	}
	frontier := []state{{w: start, t: in.Start}}
	seen := map[string]bool{}
	stateKey := func(w bitset.Set, t int) string {
		return fmt.Sprintf("%s@%d", w.Key(), t)
	}
	push := func(next []state, w bitset.Set, t int) []state {
		key := stateKey(w, t)
		if seen[key] {
			return next
		}
		seen[key] = true
		return append(next, state{w: w, t: t})
	}
	for len(frontier) > 0 {
		var next []state
		for _, st := range frontier {
			if st.t > horizon {
				continue
			}
			cands := color.AwakeCandidates(in.G, st.w, in.Wake, st.t)
			if len(cands) == 0 {
				// Idle slot: time passes, coverage unchanged.
				next = push(next, st.w, st.t+1)
				continue
			}
			var classes []color.Class
			switch moves {
			case GreedyMoves:
				classes = color.GreedyPartition(in.G, st.w, cands)
			case MaximalMoves:
				classes, _ = color.MaximalSets(in.G, st.w, cands, 0)
			}
			for _, cls := range classes {
				w2 := bitset.Union(st.w, cls.Covered(in.G, st.w))
				if w2.Len() == n {
					return st.t // BFS order ⇒ the first completion is minimal
				}
				next = push(next, w2, st.t+1)
			}
		}
		frontier = next
	}
	return -1
}

// randomConnected builds a small random connected graph.
func randomConnected(src *rng.Source, n int) *graph.Graph {
	b := graph.NewBuilder(n, nil)
	for i := 1; i < n; i++ {
		b.AddEdge(i, src.Intn(i))
	}
	for k := 0; k < n/2; k++ {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// The branch-and-bound G-OPT must agree with exhaustive BFS over greedy
// classes on every tiny synchronous instance.
func TestQuickGOPTMatchesExhaustiveSync(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 4 + src.Intn(7)
		g := randomConnected(src, n)
		in := Sync(g, src.Intn(n))
		want := exhaustiveM(in, GreedyMoves, in.Start+3*n)
		res, err := NewGOPT(0).Schedule(in)
		if err != nil || !res.Exact {
			return false
		}
		return res.PA == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Same for OPT over maximal conflict-free sets.
func TestQuickOPTMatchesExhaustiveSync(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 4 + src.Intn(6)
		g := randomConnected(src, n)
		in := Sync(g, src.Intn(n))
		want := exhaustiveM(in, MaximalMoves, in.Start+3*n)
		res, err := NewOPT(0, 0).Schedule(in)
		if err != nil || !res.Exact {
			return false
		}
		return res.PA == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// And in the duty-cycle system, where M depends on t through the wake
// schedule: the memo key (W, t mod period) must not merge distinct states.
func TestQuickGOPTMatchesExhaustiveAsync(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 4 + src.Intn(5)
		g := randomConnected(src, n)
		r := 2 + src.Intn(4)
		wake := dutycycle.NewUniform(n, r, seed^0xBEEF, 4)
		in := Async(g, src.Intn(n), wake, 0)
		want := exhaustiveM(in, GreedyMoves, in.Start+4*n*r)
		if want < 0 {
			return true // horizon too tight for this draw; not the property
		}
		res, err := NewGOPT(0).Schedule(in)
		if err != nil || !res.Exact {
			return false
		}
		return res.PA == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The async OPT agrees too.
func TestQuickOPTMatchesExhaustiveAsync(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 4 + src.Intn(4)
		g := randomConnected(src, n)
		r := 2 + src.Intn(3)
		wake := dutycycle.NewUniform(n, r, seed^0xF00D, 4)
		in := Async(g, src.Intn(n), wake, 0)
		want := exhaustiveM(in, MaximalMoves, in.Start+4*n*r)
		if want < 0 {
			return true
		}
		res, err := NewOPT(0, 0).Schedule(in)
		if err != nil || !res.Exact {
			return false
		}
		return res.PA == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
