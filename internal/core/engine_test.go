package core

import (
	"testing"

	"mlbs/internal/dutycycle"
	"mlbs/internal/topology"
)

// TestEngineMatchesSearch pins the reusable engine's contract: a single
// Engine driven across many instances — different sizes, seeds, and wake
// systems, in an order that forces arena re-binding — returns exactly what
// a fresh Search returns for each.
func TestEngineMatchesSearch(t *testing.T) {
	en := NewGOPT(0).NewEngine()
	for _, tc := range []struct {
		n    int
		seed uint64
		r    int
	}{
		{60, 1, 0}, {100, 2, 0}, {60, 3, 5}, {100, 2, 0}, {60, 1, 0},
	} {
		dep, err := topology.Generate(topology.PaperConfig(tc.n), tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		var in Instance
		if tc.r > 1 {
			in = Async(dep.G, dep.Source, dutycycle.NewUniform(tc.n, tc.r, tc.seed^0xA5, 0), 0)
		} else {
			in = Sync(dep.G, dep.Source)
		}
		want, err := NewGOPT(0).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := en.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if got.PA != want.PA || got.Exact != want.Exact {
			t.Errorf("n=%d seed=%d r=%d: engine PA=%d exact=%v, search PA=%d exact=%v",
				tc.n, tc.seed, tc.r, got.PA, got.Exact, want.PA, want.Exact)
		}
		if err := got.Schedule.Validate(in); err != nil {
			t.Errorf("n=%d seed=%d r=%d: engine schedule invalid: %v", tc.n, tc.seed, tc.r, err)
		}
	}
}

// TestEngineResultsSurviveReuse guards the aliasing hazard of engine
// reuse: the incumbent buffer a Result's advances were materialized into
// must be detached on reset, not truncated and overwritten.
func TestEngineResultsSurviveReuse(t *testing.T) {
	dep1, err := topology.Generate(topology.PaperConfig(80), 11)
	if err != nil {
		t.Fatal(err)
	}
	dep2, err := topology.Generate(topology.PaperConfig(80), 12)
	if err != nil {
		t.Fatal(err)
	}
	in1, in2 := Sync(dep1.G, dep1.Source), Sync(dep2.G, dep2.Source)

	en := NewGOPT(0).NewEngine()
	res1, err := en.Schedule(in1)
	if err != nil {
		t.Fatal(err)
	}
	pa1 := res1.PA
	if _, err := en.Schedule(in2); err != nil {
		t.Fatal(err)
	}
	if res1.PA != pa1 {
		t.Fatalf("first result mutated by reuse: PA %d → %d", pa1, res1.PA)
	}
	if err := res1.Schedule.Validate(in1); err != nil {
		t.Errorf("first schedule corrupted by engine reuse: %v", err)
	}
}

// TestEngineSteadyStateAllocs bounds a warm engine's per-call allocations
// end to end (incumbent rollout + search + result materialization). The
// point is not zero — the incumbent policy and the output schedule
// allocate — but that the search arenas themselves stop growing.
func TestEngineSteadyStateAllocs(t *testing.T) {
	dep, err := topology.Generate(topology.PaperConfig(100), 7)
	if err != nil {
		t.Fatal(err)
	}
	in := Sync(dep.G, dep.Source)
	en := NewGOPT(0).NewEngine()
	if _, err := en.Schedule(in); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := en.Schedule(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 500 {
		t.Errorf("warm engine allocated %.0f objects per Schedule; want ≤ 500", allocs)
	}
}
