package core

import (
	"fmt"

	"mlbs/internal/bitset"
	"mlbs/internal/color"
	"mlbs/internal/emodel"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
	"mlbs/internal/rng"
)

// SelectRule picks which greedy color fires, given the classes computed at
// the current slot. Implementations must be deterministic functions of
// their inputs (Random carries its own seeded stream). sc is the caller's
// color scratch: rules needing per-class coverage sizes query
// sc.CoveredLen instead of materializing sets, keeping rollouts
// allocation-free.
type SelectRule interface {
	Name() string
	// Select returns the index of the class to fire. classes is non-empty;
	// w is the current coverage (read-only).
	Select(g *graph.Graph, w bitset.Set, classes []color.Class, sc *color.Scratch) int
}

// EModelRule is the paper's Eq. 10: fire the color containing the
// candidate with the largest E_k over quadrants that still hold uncovered
// neighbors; break ties toward the class with more uncovered receivers,
// then the lowest class index.
type EModelRule struct {
	Table *emodel.Table
}

// Name implements SelectRule.
func (r EModelRule) Name() string { return "E-model" }

// Select implements SelectRule.
func (r EModelRule) Select(g *graph.Graph, w bitset.Set, classes []color.Class, sc *color.Scratch) int {
	bestIdx, bestScore, bestCover := 0, -1.0, -1
	for i, cls := range classes {
		score := -1.0
		for _, u := range cls {
			if s := r.Table.ScoreCovered(g, u, w); s > score {
				score = s
			}
		}
		cover := sc.CoveredLen(g, w, cls)
		if score > bestScore || (score == bestScore && cover > bestCover) {
			bestIdx, bestScore, bestCover = i, score, cover
		}
	}
	return bestIdx
}

// EnergyAwareRule is the Section VII "energy saving" extension: it keeps
// Eq. 10's max-E primary criterion but breaks ties toward the color that
// covers the most nodes with the fewest transmitters — each transmission
// costs a slot of TX power, so among latency-equivalent choices the rule
// drains batteries slowest. With unique scores it coincides with EModelRule.
type EnergyAwareRule struct {
	Table *emodel.Table
}

// Name implements SelectRule.
func (r EnergyAwareRule) Name() string { return "E-model/energy" }

// Select implements SelectRule.
func (r EnergyAwareRule) Select(g *graph.Graph, w bitset.Set, classes []color.Class, sc *color.Scratch) int {
	bestIdx := 0
	bestScore, bestCover, bestSenders := -1.0, -1, 1<<30
	for i, cls := range classes {
		score := -1.0
		for _, u := range cls {
			if s := r.Table.ScoreCovered(g, u, w); s > score {
				score = s
			}
		}
		cover := sc.CoveredLen(g, w, cls)
		senders := len(cls)
		better := score > bestScore ||
			(score == bestScore && cover > bestCover) ||
			(score == bestScore && cover == bestCover && senders < bestSenders)
		if better {
			bestIdx, bestScore, bestCover, bestSenders = i, score, cover, senders
		}
	}
	return bestIdx
}

// NewEnergyAware returns the Section VII "energy saving" extension (Eq.
// 10's selection with ties broken toward fewer transmitters) built out as
// a selection rule.
func NewEnergyAware() *Policy {
	return &Policy{
		RuleName: "E-model/energy",
		NewRule: func(in Instance) (SelectRule, error) {
			if !in.G.DistinctPositions() {
				return nil, fmt.Errorf("core: E-model/energy requires distinct node positions")
			}
			w := emodel.HopWeight
			if in.Wake.Rate() > 1 {
				w = emodel.CWTWeight(in.Wake)
			}
			return EnergyAwareRule{Table: emodel.Build(in.G, w, emodel.TwoPass)}, nil
		},
	}
}

// MaxCoverageRule fires the class covering the most uncovered nodes — an
// ablation isolating how much of E-model's gain is mere utilization.
type MaxCoverageRule struct{}

// Name implements SelectRule.
func (MaxCoverageRule) Name() string { return "max-coverage" }

// Select implements SelectRule.
func (MaxCoverageRule) Select(g *graph.Graph, w bitset.Set, classes []color.Class, sc *color.Scratch) int {
	best, bestCover := 0, -1
	for i, cls := range classes {
		if c := sc.CoveredLen(g, w, cls); c > bestCover {
			best, bestCover = i, c
		}
	}
	return best
}

// FirstColorRule always fires greedy color 1 — the plain greedy scheme
// with pipelining but no cross-color selection intelligence.
type FirstColorRule struct{}

// Name implements SelectRule.
func (FirstColorRule) Name() string { return "first-color" }

// Select implements SelectRule.
func (FirstColorRule) Select(*graph.Graph, bitset.Set, []color.Class, *color.Scratch) int { return 0 }

// RandomRule fires a uniformly random class — the ablation floor.
type RandomRule struct{ Src *rng.Source }

// Name implements SelectRule.
func (RandomRule) Name() string { return "random" }

// Select implements SelectRule.
func (r RandomRule) Select(_ *graph.Graph, _ bitset.Set, classes []color.Class, _ *color.Scratch) int {
	return r.Src.Intn(len(classes))
}

// Policy runs the extended greedy color scheme as an online policy: at
// every slot with an awake candidate it computes the greedy classes
// (Algorithm 1) and fires the class chosen by Rule. With an EModelRule this
// is the paper's E-model scheduler; other rules are ablations.
type Policy struct {
	RuleName string
	// NewRule builds the selection rule for an instance (the E-model table
	// depends on the graph and wake schedule, so rules are instance-scoped).
	NewRule func(in Instance) (SelectRule, error)
}

// NewEModel returns the paper's practical scheduler (Algorithm 2 + Eq. 10)
// with the given seeding mode.
func NewEModel(seeding emodel.Seeding) *Policy {
	name := "E-model"
	if seeding == emodel.OnePass {
		name = "E-model/one-pass"
	}
	return &Policy{
		RuleName: name,
		NewRule: func(in Instance) (SelectRule, error) {
			if !in.G.DistinctPositions() {
				return nil, fmt.Errorf("core: %s requires distinct node positions (quadrant estimates are geometric)", name)
			}
			var w emodel.Weight
			if in.Wake.Rate() == 1 {
				w = emodel.HopWeight
			} else {
				w = emodel.CWTWeight(in.Wake)
			}
			return EModelRule{Table: emodel.Build(in.G, w, seeding)}, nil
		},
	}
}

// NewPolicy wraps a stateless rule into a scheduler.
func NewPolicy(name string, rule SelectRule) *Policy {
	return &Policy{
		RuleName: name,
		NewRule:  func(Instance) (SelectRule, error) { return rule, nil },
	}
}

// Name implements Scheduler.
func (p *Policy) Name() string { return p.RuleName }

// Schedule implements Scheduler.
func (p *Policy) Schedule(in Instance) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	rule, err := p.NewRule(in)
	if err != nil {
		return nil, err
	}
	n := in.G.N()
	w := in.initialCoverage()
	sched := &Schedule{Source: in.Source, Start: in.Start}

	// One scratch and one coverage buffer serve the whole rollout: the only
	// per-advance allocations left are the schedule's own sender/receiver
	// lists, which outlive the loop.
	var sc color.Scratch
	var ib interference.Binder
	oracle := in.Oracle(&ib)
	covered := bitset.New(n)

	// Safety horizon: every advance covers ≥1 node and arrives within one
	// wake period of the previous one, so a complete broadcast needs fewer
	// than n·(period+1) slots past the start.
	horizon := in.Start + n*(in.Wake.Period()+1) + in.Wake.Period()
	t := in.Start
	for w.Len() < n {
		slot, cands, ok := nextUsefulSlot(in.G, in.Wake, w, t, &sc)
		if !ok {
			return nil, fmt.Errorf("core: no candidates with coverage %v (disconnected?)", w)
		}
		if slot > horizon {
			return nil, fmt.Errorf("core: policy exceeded horizon %d (wake schedule starves candidates)", horizon)
		}
		classes := sc.GreedyPartitionOracle(in.G, w, cands, oracle)
		pick := rule.Select(in.G, w, classes, &sc)
		if pick < 0 || pick >= len(classes) {
			return nil, fmt.Errorf("core: rule %s selected class %d of %d", rule.Name(), pick, len(classes))
		}
		cls := classes[pick]
		cls.CoveredInto(in.G, w, covered)
		sched.Advances = append(sched.Advances, Advance{
			T:       slot,
			Senders: append([]graph.NodeID(nil), cls...),
			Covered: covered.Members(),
		})
		w.UnionWith(covered)
		t = slot + 1
	}
	return &Result{
		Scheduler: p.Name(),
		Schedule:  sched,
		PA:        sched.PA(),
	}, nil
}
