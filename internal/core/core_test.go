package core

import (
	"strings"
	"testing"
	"testing/quick"

	"mlbs/internal/dutycycle"
	"mlbs/internal/emodel"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/rng"
	"mlbs/internal/topology"
)

// fig2a is the Figure 2(a) example (paper node k = our k−1):
// edges 1–2, 1–3, 2–4, 2–5, 3–4; conflict at node 4.
func fig2a() *graph.Graph {
	return graph.NewBuilder(5, nil).
		AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 3).AddEdge(1, 4).
		AddEdge(2, 3).
		Build()
}

// pathGraph places n nodes on a line so that geometric schedulers
// (E-model) work on it too.
func pathGraph(n int) *graph.Graph {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	return graph.FromUDG(pos, 1)
}

func allSchedulers() []Scheduler {
	return []Scheduler{
		NewOPT(0, 0),
		NewGOPT(0),
		NewPolicy("max-coverage", MaxCoverageRule{}),
		NewPolicy("first-color", FirstColorRule{}),
	}
}

func TestInstanceValidate(t *testing.T) {
	g := fig2a()
	good := Sync(g, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Instance{
		{G: nil, Source: 0, Start: 1, Wake: dutycycle.AlwaysAwake{Nodes: 5}},
		{G: g, Source: -1, Start: 1, Wake: dutycycle.AlwaysAwake{Nodes: 5}},
		{G: g, Source: 9, Start: 1, Wake: dutycycle.AlwaysAwake{Nodes: 5}},
		{G: g, Source: 0, Start: 1, Wake: nil},
		{G: g, Source: 0, Start: 1, Wake: dutycycle.AlwaysAwake{Nodes: 2}},
		{G: g, Source: 0, Start: -3, Wake: dutycycle.AlwaysAwake{Nodes: 5}},
		{G: g, Source: 0, Start: 1, Wake: dutycycle.AlwaysAwake{Nodes: 5}, PreCovered: []graph.NodeID{77}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Fatalf("bad instance %d validated", i)
		}
	}
	disconnected := graph.NewBuilder(3, nil).AddEdge(0, 1).Build()
	if err := Sync(disconnected, 0).Validate(); err == nil {
		t.Fatal("disconnected instance validated")
	}
}

// Table II: the schedule for Figure 2(a) with t_s = 1 has P(A) = 2.
func TestTableIIOptimalValue(t *testing.T) {
	in := Sync(fig2a(), 0)
	for _, s := range []Scheduler{NewOPT(0, 0), NewGOPT(0)} {
		res, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.PA != 2 {
			t.Fatalf("%s: P(A) = %d, want 2 (Table II)", s.Name(), res.PA)
		}
		if !res.Exact {
			t.Fatalf("%s: not exact on a 5-node fixture", s.Name())
		}
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("%s: invalid schedule: %v", s.Name(), err)
		}
		// The optimal first advance fires the source; the second fires
		// paper-node 2 (our node 1), covering {4,5}.
		adv := res.Schedule.Advances
		if len(adv) != 2 || adv[0].T != 1 || adv[1].T != 2 {
			t.Fatalf("%s: advances = %+v", s.Name(), adv)
		}
		if len(adv[1].Senders) != 1 || adv[1].Senders[0] != 1 {
			t.Fatalf("%s: second advance senders = %v, want [1]", s.Name(), adv[1].Senders)
		}
	}
}

func TestPathBroadcast(t *testing.T) {
	// On a path from one end every scheduler needs exactly n−1 advances.
	g := pathGraph(6)
	in := Sync(g, 0)
	for _, s := range allSchedulers() {
		res, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.PA != 5 {
			t.Fatalf("%s: P(A) = %d, want 5", s.Name(), res.PA)
		}
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestStarBroadcast(t *testing.T) {
	b := graph.NewBuilder(6, nil)
	for v := 1; v < 6; v++ {
		b.AddEdge(0, v)
	}
	in := Sync(b.Build(), 0)
	for _, s := range allSchedulers() {
		res, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.PA != 1 {
			t.Fatalf("%s: P(A) = %d, want 1", s.Name(), res.PA)
		}
	}
}

func TestSingleNode(t *testing.T) {
	g := graph.NewBuilder(1, nil).Build()
	in := Sync(g, 0)
	res, err := NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Advances) != 0 || res.Schedule.Latency() != 0 {
		t.Fatalf("single node: %+v", res.Schedule)
	}
	if !res.Exact {
		t.Fatal("single node must be exact")
	}
}

func TestScheduleAccessors(t *testing.T) {
	s := &Schedule{Source: 0, Start: 3}
	if s.End() != 2 || s.Latency() != 0 {
		t.Fatalf("empty schedule End=%d Latency=%d", s.End(), s.Latency())
	}
	s.Advances = []Advance{{T: 3}, {T: 5}}
	if s.End() != 5 || s.PA() != 5 || s.Latency() != 3 {
		t.Fatalf("End=%d PA=%d Latency=%d", s.End(), s.PA(), s.Latency())
	}
}

func TestValidateCatchesTampering(t *testing.T) {
	in := Sync(fig2a(), 0)
	res, err := NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(mutate func(s *Schedule)) error {
		cp := &Schedule{Source: res.Schedule.Source, Start: res.Schedule.Start}
		for _, a := range res.Schedule.Advances {
			cp.Advances = append(cp.Advances, Advance{
				T:       a.T,
				Senders: append([]graph.NodeID(nil), a.Senders...),
				Covered: append([]graph.NodeID(nil), a.Covered...),
			})
		}
		mutate(cp)
		return cp.Validate(in)
	}
	cases := map[string]func(*Schedule){
		"time regression":  func(s *Schedule) { s.Advances[1].T = s.Advances[0].T },
		"uncovered sender": func(s *Schedule) { s.Advances[0].Senders = []graph.NodeID{4} },
		"conflict":         func(s *Schedule) { s.Advances[1].Senders = []graph.NodeID{1, 2} },
		"wrong coverage":   func(s *Schedule) { s.Advances[1].Covered = []graph.NodeID{3} },
		"incomplete":       func(s *Schedule) { s.Advances = s.Advances[:1] },
		"empty advance":    func(s *Schedule) { s.Advances[0].Senders = nil },
	}
	for name, m := range cases {
		if err := tamper(m); err == nil {
			t.Fatalf("%s: tampered schedule validated", name)
		}
	}
}

func TestValidateAsleepSender(t *testing.T) {
	g := pathGraph(3)
	wake := dutycycle.NewFixed(10, 10, [][]int{{1}, {5}, {9}})
	in := Instance{G: g, Source: 0, Start: 1, Wake: wake}
	s := &Schedule{Source: 0, Start: 1, Advances: []Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1}},
		{T: 3, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{2}}, // 1 sleeps at 3
	}}
	if err := s.Validate(in); err == nil || !strings.Contains(err.Error(), "asleep") {
		t.Fatalf("want asleep error, got %v", err)
	}
}

func TestAsyncPathWaitsForWakeups(t *testing.T) {
	// Path 0–1–2; node 0 wakes at slot 1, node 1 at slot 5 (then 15...).
	g := pathGraph(3)
	wake := dutycycle.NewFixed(10, 10, [][]int{{1}, {5}, {0}})
	in := Async(g, 0, wake, 0)
	if in.Start != 1 {
		t.Fatalf("Start = %d, want source's wake slot 1", in.Start)
	}
	for _, s := range []Scheduler{NewOPT(0, 0), NewGOPT(0), NewEModel(0)} {
		res, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.PA != 5 {
			t.Fatalf("%s: P(A) = %d, want 5 (waits for node 1's wake-up)", s.Name(), res.PA)
		}
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestAsyncChoosesFastPath(t *testing.T) {
	// Diamond: 0–1, 0–2, 1–3, 2–3. Node 1 wakes soon (slot 2), node 2 late
	// (slot 9). OPT and G-OPT must route through node 1 for P(A)=2; only
	// after covering 3. Firing the wrong relay costs 7 extra slots.
	g := graph.NewBuilder(4, nil).AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(2, 3).Build()
	wake := dutycycle.NewFixed(20, 10, [][]int{{0}, {2}, {9}, {15}})
	in := Async(g, 0, wake, 0)
	for _, s := range []Scheduler{NewOPT(0, 0), NewGOPT(0)} {
		res, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.PA != 2 {
			t.Fatalf("%s: P(A) = %d, want 2", s.Name(), res.PA)
		}
		if !res.Exact {
			t.Fatalf("%s: inexact on 4-node fixture", s.Name())
		}
	}
}

func TestSearchBudgetTruncation(t *testing.T) {
	// A budget of 2 must be respected; the result must stay valid; and an
	// Exact claim (possible — the incumbent may hit the hop lower bound,
	// which proves optimality without expansion) must agree with the
	// unbounded search.
	d, err := topology.Generate(topology.PaperConfig(50), 3)
	if err != nil {
		t.Fatal(err)
	}
	in := Sync(d.G, d.Source)
	tiny, err := NewSearch("tiny", SearchConfig{Moves: GreedyMoves, Budget: 2,
		Incumbent: NewPolicy("random", RandomRule{Src: rng.New(99)})}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Stats.Expanded > 2 {
		t.Fatalf("expanded %d states with budget 2", tiny.Stats.Expanded)
	}
	if err := tiny.Schedule.Validate(in); err != nil {
		t.Fatalf("truncated search must still return a valid schedule: %v", err)
	}
	full, err := NewGOPT(5_000_000).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if full.Exact {
		if tiny.Exact && tiny.PA != full.PA {
			t.Fatalf("budget-2 search claims exact %d but optimum is %d", tiny.PA, full.PA)
		}
		if tiny.PA < full.PA {
			t.Fatalf("truncated result %d beats the proven optimum %d", tiny.PA, full.PA)
		}
	}
}

func TestGOPTNeverWorseThanEModel(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		d, err := topology.Generate(topology.PaperConfig(60), seed)
		if err != nil {
			t.Fatal(err)
		}
		in := Sync(d.G, d.Source)
		em, err := NewEModel(0).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		gopt, err := NewGOPT(0).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if gopt.PA > em.PA {
			t.Fatalf("seed %d: G-OPT %d worse than its E-model incumbent %d", seed, gopt.PA, em.PA)
		}
	}
}

func TestOPTNeverWorseThanGOPT(t *testing.T) {
	// Greedy classes are maximal conflict-free sets, so exact OPT ≤ exact
	// G-OPT.
	for seed := uint64(1); seed <= 8; seed++ {
		src := rng.New(seed)
		n := 8 + src.Intn(8)
		b := graph.NewBuilder(n, nil)
		for i := 1; i < n; i++ {
			b.AddEdge(i, src.Intn(i))
		}
		for k := 0; k < n/2; k++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		in := Sync(b.Build(), 0)
		opt, err := NewOPT(0, 0).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		gopt, err := NewGOPT(0).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Exact || !gopt.Exact {
			t.Fatalf("seed %d: expected exact on %d nodes", seed, n)
		}
		if opt.PA > gopt.PA {
			t.Fatalf("seed %d: OPT %d > G-OPT %d", seed, opt.PA, gopt.PA)
		}
	}
}

// Theorem 1 (sync): the optimal latency is at most d+2 rounds.
func TestTheorem1Sync(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := topology.Config{N: 40, AreaSide: 35, Radius: 10, MaxRetries: 100}
		d, err := topology.Generate(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		in := Sync(d.G, d.Source)
		res, err := NewGOPT(2_000_000).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		ecc, _ := d.G.Eccentricity(d.Source)
		if res.Exact && res.Schedule.Latency() > SyncLatencyBound(ecc) {
			t.Fatalf("seed %d: optimal latency %d exceeds Theorem 1 bound %d (d=%d)",
				seed, res.Schedule.Latency(), SyncLatencyBound(ecc), ecc)
		}
	}
}

// Monotonicity: enlarging the initial coverage never increases OPT's P(A).
func TestQuickMonotonicity(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 6 + src.Intn(6)
		b := graph.NewBuilder(n, nil)
		for i := 1; i < n; i++ {
			b.AddEdge(i, src.Intn(i))
		}
		for k := 0; k < n/3; k++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		base := Sync(g, 0)
		extra := Sync(g, 0)
		extra.PreCovered = []graph.NodeID{src.Intn(n)}
		rb, err := NewOPT(0, 0).Schedule(base)
		if err != nil {
			return false
		}
		re, err := NewOPT(0, 0).Schedule(extra)
		if err != nil {
			return false
		}
		if !rb.Exact || !re.Exact {
			return true // don't judge truncated runs
		}
		return re.PA <= rb.PA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Every scheduler's output must pass full validation on random instances,
// sync and async.
func TestQuickSchedulesValid(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := topology.Config{N: 30, AreaSide: 30, Radius: 10, MaxRetries: 60}
		d, err := topology.Generate(cfg, seed)
		if err != nil {
			return true
		}
		wake := dutycycle.NewUniform(d.G.N(), 5, seed, 0)
		instances := []Instance{
			Sync(d.G, d.Source),
			Async(d.G, d.Source, wake, 0),
		}
		for _, in := range instances {
			for _, s := range []Scheduler{NewOPT(50_000, 0), NewGOPT(50_000), NewEModel(0), NewEModel(emodel.OnePass)} {
				res, err := s.Schedule(in)
				if err != nil {
					return false
				}
				if err := res.Schedule.Validate(in); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestBounds(t *testing.T) {
	if SyncLatencyBound(6) != 8 {
		t.Fatal("SyncLatencyBound")
	}
	if AsyncLatencyBound(10, 6) != 160 {
		t.Fatal("AsyncLatencyBound")
	}
	if Ref12LatencyBound(10, 6) != 2040 {
		t.Fatal("Ref12LatencyBound")
	}
}

func TestPolicyDeterminism(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(100), 9)
	if err != nil {
		t.Fatal(err)
	}
	in := Sync(d.G, d.Source)
	a, err := NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.PA != b.PA || len(a.Schedule.Advances) != len(b.Schedule.Advances) {
		t.Fatal("E-model not deterministic")
	}
}

func TestRandomRuleStillValid(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(60), 2)
	if err != nil {
		t.Fatal(err)
	}
	in := Sync(d.G, d.Source)
	res, err := NewPolicy("random", RandomRule{Src: rng.New(4)}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEModel150(b *testing.B) {
	d, err := topology.Generate(topology.PaperConfig(150), 1)
	if err != nil {
		b.Fatal(err)
	}
	in := Sync(d.G, d.Source)
	s := NewEModel(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGOPT100(b *testing.B) {
	d, err := topology.Generate(topology.PaperConfig(100), 1)
	if err != nil {
		b.Fatal(err)
	}
	in := Sync(d.G, d.Source)
	s := NewGOPT(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEnergyAwareRule(t *testing.T) {
	// The energy variant must stay valid and never transmit more frames
	// than it covers nodes plus advances (each advance's senders ≤ what a
	// plain E-model would use on ties).
	d, err := topology.Generate(topology.PaperConfig(120), 4)
	if err != nil {
		t.Fatal(err)
	}
	in := Sync(d.G, d.Source)
	res, err := NewEnergyAware().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	em, err := NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	// Energy tie-breaking must not change the primary criterion wildly:
	// within a couple of rounds of the plain E-model.
	if diff := res.Schedule.Latency() - em.Schedule.Latency(); diff > 2 || diff < -2 {
		t.Fatalf("energy variant latency %d vs E-model %d", res.Schedule.Latency(), em.Schedule.Latency())
	}
}

func TestEnergyAwareRequiresGeometry(t *testing.T) {
	g := graph.NewBuilder(3, nil).AddEdge(0, 1).AddEdge(1, 2).Build()
	if _, err := NewEnergyAware().Schedule(Sync(g, 0)); err == nil {
		t.Fatal("degenerate geometry accepted")
	}
}
