package core

// Engine is a reusable search scheduler: it runs the same branch-and-bound
// as its parent Search but keeps the frame arena, bitset pool, BFS buffers
// and memo storage across calls, so a warm engine schedules instance after
// instance without re-growing its arenas — the serving layer's per-worker
// allocation discipline. Results returned from an Engine are immutable;
// the engine never writes into a schedule it has handed out.
//
// An Engine is NOT safe for concurrent use. Give each worker goroutine its
// own (the service layer does exactly that); the parent Search remains
// safe to share because Search.Schedule builds a fresh engine per call.
type Engine struct {
	search *Search
	e      *engine
	// inc is the reusable incumbent engine for maximal-set searches: OPT
	// seeds its upper bound with a full G-OPT run, which would otherwise
	// pay a cold engine per call.
	inc *Engine
}

// NewEngine returns a reusable engine for this search configuration.
func (s *Search) NewEngine() *Engine { return &Engine{search: s} }

// Name implements Scheduler.
func (en *Engine) Name() string { return en.search.name }

// ScheduleWith runs one search with per-call configuration overrides,
// recycling the engine's arenas exactly like Schedule. The anytime
// improver drives its tail re-searches through this: every move carries
// its own state budget and a freshly seeded incumbent, neither of which
// is known at engine construction. Zero fields of cfg default the same
// way Search defaults them.
func (en *Engine) ScheduleWith(in Instance, cfg SearchConfig) (*Result, error) {
	res, e, err := en.search.run(in, cfg, en.e)
	en.e = e
	return res, err
}

// Schedule implements Scheduler, recycling the engine's arenas.
func (en *Engine) Schedule(in Instance) (*Result, error) {
	return en.schedule(in, false)
}

// ScheduleProfiled runs Schedule with the per-depth search profile
// enabled: the Result's Stats.Depths reports expansions, memo hits and
// prune counts by DFS depth. Traced requests use this; the plain
// Schedule path stays profile-free so untraced results keep their exact
// historic encodings.
func (en *Engine) ScheduleProfiled(in Instance) (*Result, error) {
	return en.schedule(in, true)
}

func (en *Engine) schedule(in Instance, profile bool) (*Result, error) {
	cfg := en.search.cfg
	if cfg.Incumbent == nil && cfg.Moves == MaximalMoves {
		if en.inc == nil {
			en.inc = NewGOPT(cfg.Budget).NewEngine()
		}
		cfg.Incumbent = en.inc
	}
	cfg.DepthProfile = profile
	res, e, err := en.search.run(in, cfg, en.e)
	en.e = e
	return res, err
}
