package core

import (
	"reflect"
	"strings"
	"testing"

	"mlbs/internal/dutycycle"
	"mlbs/internal/graph"
	"mlbs/internal/topology"
)

// diamond is the classic conflict graph: 0—1, 0—2, 1—3, 2—3. Relays 1 and
// 2 share the uncovered neighbor 3, so they conflict on a shared channel
// and are harmless on two.
func diamond() *graph.Graph {
	return graph.NewBuilder(4, nil).
		AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 3).AddEdge(2, 3).
		Build()
}

// kite extends the diamond with private receivers 4 (of 1) and 5 (of 2),
// so both relays stay useful even when 3 is claimed by the other.
func kite() *graph.Graph {
	return graph.NewBuilder(6, nil).
		AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 3).AddEdge(2, 3).
		AddEdge(1, 4).AddEdge(2, 5).
		Build()
}

func kiteInstance(k int) Instance {
	in := Sync(kite(), 0)
	in.Channels = k
	return in
}

// kiteSchedule is the canonical 2-channel schedule of the kite: the source
// fires alone, then the conflicting relays 1 and 2 share slot 2 on
// channels 0 and 1, node 3 attributed to channel 0.
func kiteSchedule() *Schedule {
	return &Schedule{Source: 0, Start: 1, Advances: []Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2}},
		{T: 2, Channel: 0, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{3, 4}},
		{T: 2, Channel: 1, Senders: []graph.NodeID{2}, Covered: []graph.NodeID{5}},
	}}
}

func TestInstanceValidateChannels(t *testing.T) {
	in := kiteInstance(4)
	if err := in.Validate(); err != nil {
		t.Fatalf("4-channel instance rejected: %v", err)
	}
	in.Channels = -1
	if err := in.Validate(); err == nil {
		t.Fatal("negative channel count accepted")
	}
	in.Channels = MaxChannels + 1
	if err := in.Validate(); err == nil {
		t.Fatal("channel count above MaxChannels accepted")
	}
	if got := kiteInstance(0).K(); got != 1 {
		t.Fatalf("K() of unset channels = %d, want 1", got)
	}
	if got := kiteInstance(4).K(); got != 4 {
		t.Fatalf("K() = %d, want 4", got)
	}
}

func TestChannelizedValidateAccepts(t *testing.T) {
	if err := kiteSchedule().Validate(kiteInstance(2)); err != nil {
		t.Fatalf("canonical 2-channel schedule rejected: %v", err)
	}
	if err := kiteSchedule().Validate(kiteInstance(4)); err != nil {
		t.Fatalf("2-channel schedule on a 4-channel instance rejected: %v", err)
	}
}

func TestChannelizedValidateRejects(t *testing.T) {
	cases := map[string]struct {
		k      int
		mutate func(*Schedule)
		want   string
	}{
		"single-channel instance": {1, func(s *Schedule) {}, "advances"},
		"channel beyond K": {2, func(s *Schedule) {
			s.Advances[2].Channel = 2
		}, "channel"},
		"channels not ascending": {2, func(s *Schedule) {
			s.Advances[1].Channel = 1
			s.Advances[2].Channel = 1
		}, "channel"},
		"same-channel conflict": {2, func(s *Schedule) {
			// 1 and 2 both on channel 0 collide at uncovered node 3.
			s.Advances[1].Senders = []graph.NodeID{1, 2}
			s.Advances[1].Covered = []graph.NodeID{3, 4, 5}
			s.Advances = s.Advances[:2]
		}, "conflict"},
		"two radios": {2, func(s *Schedule) {
			s.Advances[2].Senders = []graph.NodeID{1, 2}
		}, "two channels"},
		"stolen attribution": {2, func(s *Schedule) {
			// Channel 1 claims node 3, which channel 0 already covers.
			s.Advances[2].Covered = []graph.NodeID{3, 5}
		}, "coverage"},
		"nothing new": {2, func(s *Schedule) {
			// Drop relay 2's private receiver: the advance covers nothing
			// once channel 0 claims 3.
			s.Advances[2].Senders = []graph.NodeID{2}
			s.Advances[2].Covered = nil
			s.Advances[1].Covered = []graph.NodeID{3, 4}
		}, ""},
	}
	for name, tc := range cases {
		s := kiteSchedule()
		tc.mutate(s)
		err := s.Validate(kiteInstance(tc.k))
		if name == "nothing new" {
			// The kite's relay 2 always reaches 5; rebuild without it.
			in := Instance{G: diamond(), Source: 0, Start: 1,
				Wake: dutycycle.AlwaysAwake{Nodes: 4}, Channels: 2}
			s = &Schedule{Source: 0, Start: 1, Advances: []Advance{
				{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2}},
				{T: 2, Channel: 0, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{3}},
				{T: 2, Channel: 1, Senders: []graph.NodeID{2}, Covered: nil},
			}}
			err = s.Validate(in)
		}
		if err == nil {
			t.Errorf("%s: accepted", name)
		} else if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestK1BitIdentical pins the central compatibility contract: an instance
// with Channels ∈ {0, 1} schedules bit-for-bit like the pre-multi-channel
// system, for both move generators and both wake systems.
func TestK1BitIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		dep, err := topology.Generate(topology.PaperConfig(80), seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []string{"sync", "duty"} {
			var in Instance
			if mode == "sync" {
				in = Sync(dep.G, dep.Source)
			} else {
				in = Async(dep.G, dep.Source, dutycycle.NewUniform(80, 10, seed, 0), 0)
			}
			for _, mk := range []func() Scheduler{
				func() Scheduler { return NewGOPT(0) },
				func() Scheduler { return NewOPT(0, 0) },
			} {
				base, err := mk().Schedule(in)
				if err != nil {
					t.Fatal(err)
				}
				in1 := in
				in1.Channels = 1
				got, err := mk().Schedule(in1)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(base.Schedule, got.Schedule) || base.PA != got.PA || base.Exact != got.Exact {
					t.Fatalf("seed %d %s: Channels=1 diverges from Channels=0", seed, mode)
				}
			}
		}
	}
}

// TestChannelizedSearchValid runs the channelized search across K and
// verifies the model invariants: every schedule validates, latency never
// increases with more channels, and some slot actually carries concurrent
// classes when K > 1.
func TestChannelizedSearchValid(t *testing.T) {
	dep, err := topology.Generate(topology.PaperConfig(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, k := range []int{1, 2, 4} {
		in := Sync(dep.G, dep.Source)
		in.Channels = k
		res, err := NewGOPT(0).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("K=%d schedule invalid: %v", k, err)
		}
		lat := res.Schedule.Latency()
		if prev >= 0 && lat > prev {
			t.Fatalf("K=%d latency %d worse than previous K's %d", k, lat, prev)
		}
		prev = lat
		if k > 1 {
			multi := false
			for i := 1; i < len(res.Schedule.Advances); i++ {
				if res.Schedule.Advances[i].T == res.Schedule.Advances[i-1].T {
					multi = true
				}
			}
			if !multi {
				t.Logf("K=%d: no slot carries two classes (topology not conflict-bound here)", k)
			}
		}
	}
}

// TestChannelizedDutyLatencyCollapse pins the headline result: on the
// n=300 paper topology under the light duty cycle (r=50, the paper's
// Figure 6 setting), 4 orthogonal channels cut broadcast latency by ≥25%.
// The synchronous system cannot show this — Theorem 1 caps it at d+2
// regardless of channels — so the win lives exactly where conflicts force
// re-wake waits.
func TestChannelizedDutyLatencyCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("n=300 duty-cycle searches are slow; skipped with -short")
	}
	dep, err := topology.Generate(topology.PaperConfig(300), 1)
	if err != nil {
		t.Fatal(err)
	}
	lat := map[int]int{}
	for _, k := range []int{1, 4} {
		in := Async(dep.G, dep.Source, dutycycle.NewUniform(300, 50, 9, 0), 0)
		in.Channels = k
		res, err := NewGOPT(0).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("K=%d schedule invalid: %v", k, err)
		}
		lat[k] = res.Schedule.Latency()
	}
	if float64(lat[4]) > 0.75*float64(lat[1]) {
		t.Fatalf("K=4 latency %d not ≥25%% below K=1's %d", lat[4], lat[1])
	}
}
