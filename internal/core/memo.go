package core

import "mlbs/internal/bitset"

// The search memoizes M(w, t mod period) in an open-addressing hash table
// keyed by a 64-bit digest of the coverage set plus the slot phase. The
// previous implementation built a string key per probe (the raw words of w
// concatenated with the phase), which made every dfs state allocate; the
// table below hashes w in place and keeps one pooled copy of w per entry
// purely to verify candidate slots, so steady-state probes allocate
// nothing.

// Memo entry kinds: a slot is empty, holds a proven lower bound on
// end − slot, or holds the exact value.
const (
	memoEmpty uint8 = iota
	memoLower
	memoExact
)

type memoSlot struct {
	hash uint64
	r    int32 // end − slot when exact; known lower bound on it otherwise
	tmod int32
	kind uint8
}

// memoTable is an open-addressing (linear probing) map from
// (coverage set, slot phase) to memoSlot. Collisions on the 64-bit digest
// are resolved explicitly: keys[i] holds a pooled copy of the coverage set
// stored at slot i, captured on first insert, and a probe only hits when
// the digest, the phase, and the full set all match.
type memoTable struct {
	slots []memoSlot
	keys  []bitset.Set
	count int
	mask  uint64
	seed  uint64
	slab  []uint64 // arena backing the stored key copies
	// hashFn overrides the digest for tests that need adversarial
	// collisions; nil selects w.HashWith(seed).
	hashFn func(w bitset.Set) uint64
}

const (
	memoInitialSlots = 1 << 10
	memoSlabWords    = 1 << 14
)

func newMemoTable(seed uint64) memoTable {
	return memoTable{seed: seed}
}

// reset empties the table while keeping its slot array and current key
// slab, so a reused engine's next search fills warm storage instead of
// reallocating it. Keys are nilled out to release retired slabs to the GC.
func (m *memoTable) reset() {
	for i := range m.slots {
		m.slots[i] = memoSlot{}
	}
	for i := range m.keys {
		m.keys[i] = nil
	}
	m.count = 0
	m.slab = m.slab[:0]
}

// copyKey stores a copy of w in the arena. Entries live for the whole
// search, so a bump allocator amortizes thousands of key copies into a
// handful of slab allocations; exhausted slabs stay referenced by the keys
// sliced out of them.
func (m *memoTable) copyKey(w bitset.Set) bitset.Set {
	words := len(w)
	if len(m.slab)+words > cap(m.slab) {
		size := memoSlabWords
		if words > size {
			size = words
		}
		m.slab = make([]uint64, 0, size)
	}
	start := len(m.slab)
	m.slab = m.slab[: start+words : cap(m.slab)]
	k := bitset.Set(m.slab[start : start+words])
	copy(k, w)
	return k
}

func (m *memoTable) hash(w bitset.Set, tmod int) uint64 {
	var h uint64
	if m.hashFn != nil {
		h = m.hashFn(w)
	} else {
		h = w.HashWith(m.seed)
	}
	// Fold the phase in with one extra mix round so (w, t1) and (w, t2)
	// land independently.
	h ^= uint64(uint32(tmod)) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// lookup returns the stored value for (w, tmod), or kind == memoEmpty.
func (m *memoTable) lookup(w bitset.Set, tmod int) (r int32, kind uint8) {
	if m.count == 0 {
		return 0, memoEmpty
	}
	h := m.hash(w, tmod)
	for i := h & m.mask; ; i = (i + 1) & m.mask {
		s := &m.slots[i]
		if s.kind == memoEmpty {
			return 0, memoEmpty
		}
		if s.hash == h && s.tmod == int32(tmod) && m.keys[i].Equal(w) {
			return s.r, s.kind
		}
	}
}

// put inserts or overwrites the entry for (w, tmod). The coverage set is
// copied into the pool only when the entry is new.
func (m *memoTable) put(w bitset.Set, tmod int, r int32, kind uint8) {
	if 4*(m.count+1) > 3*len(m.slots) {
		m.grow()
	}
	h := m.hash(w, tmod)
	for i := h & m.mask; ; i = (i + 1) & m.mask {
		s := &m.slots[i]
		if s.kind == memoEmpty {
			*s = memoSlot{hash: h, r: r, tmod: int32(tmod), kind: kind}
			m.keys[i] = m.copyKey(w)
			m.count++
			return
		}
		if s.hash == h && s.tmod == int32(tmod) && m.keys[i].Equal(w) {
			s.r, s.kind = r, kind
			return
		}
	}
}

// grow doubles the slot array and re-places every entry by its stored
// digest; the pooled key copies move with their entries.
func (m *memoTable) grow() {
	oldSlots, oldKeys := m.slots, m.keys
	n := 2 * len(oldSlots)
	if n == 0 {
		n = memoInitialSlots
	}
	m.slots = make([]memoSlot, n)
	m.keys = make([]bitset.Set, n)
	m.mask = uint64(n - 1)
	for idx := range oldSlots {
		s := oldSlots[idx]
		if s.kind == memoEmpty {
			continue
		}
		i := s.hash & m.mask
		for m.slots[i].kind != memoEmpty {
			i = (i + 1) & m.mask
		}
		m.slots[i] = s
		m.keys[i] = oldKeys[idx]
	}
}
