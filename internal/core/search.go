package core

import (
	"errors"
	"fmt"
	"slices"

	"mlbs/internal/bitset"
	"mlbs/internal/color"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// inf is larger than any reachable end time but safely below overflow.
const inf = 1 << 30

// MoveGen selects which color sets the search branches over.
type MoveGen int

const (
	// GreedyMoves branches over the λ greedy classes of Algorithm 1 —
	// the G-OPT target of Eq. 7 (sync) and Eq. 8 (duty cycle).
	GreedyMoves MoveGen = iota
	// MaximalMoves branches over every maximal conflict-free relay set —
	// the OPT target of Eq. 5 (sync) and Eq. 6 (duty cycle). Monotonicity
	// of coverage makes maximal sets sufficient for optimality.
	MaximalMoves
)

// SearchConfig tunes the branch-and-bound evaluation of the time counter M.
type SearchConfig struct {
	Moves MoveGen
	// Budget caps the number of expanded states; once exhausted the search
	// returns its incumbent with Exact=false. 0 selects DefaultBudget.
	Budget int
	// MaxSets caps maximal-set enumeration per state (MaximalMoves only);
	// hitting the cap clears Exact. 0 selects DefaultMaxSets.
	MaxSets int
	// MaxBundles caps per-state bundle enumeration on multi-channel
	// instances (Instance.Channels > 1); hitting the cap clears Exact.
	// 0 selects color.DefaultMaxBundles.
	MaxBundles int
	// Incumbent seeds the upper bound; nil uses the E-model policy, which
	// is both the paper's practical scheme and a strong initial incumbent.
	Incumbent Scheduler
	// DepthProfile collects per-depth expansion/memo/prune counters into
	// SearchStats.Depths. Off by default: profiled runs pay one branch and
	// a small slice append per DFS event, and untraced requests must stay
	// bit-identical to historic encodings.
	DepthProfile bool
}

// DefaultBudget bounds search effort when SearchConfig.Budget is zero.
const DefaultBudget = 200_000

// DefaultMaxSets bounds per-state maximal-set enumeration when
// SearchConfig.MaxSets is zero.
const DefaultMaxSets = 128

// Search evaluates the time counter M by memoized branch-and-bound and
// returns a provably minimal schedule when it completes within budget.
type Search struct {
	name string
	cfg  SearchConfig
}

// NewGOPT returns the G-OPT scheduler (Eq. 7/8). budget ≤ 0 uses the
// default.
func NewGOPT(budget int) *Search {
	return &Search{name: "G-OPT", cfg: SearchConfig{Moves: GreedyMoves, Budget: budget}}
}

// NewOPT returns the OPT scheduler (Eq. 5/6). budget/maxSets ≤ 0 use
// defaults.
func NewOPT(budget, maxSets int) *Search {
	return &Search{name: "OPT", cfg: SearchConfig{Moves: MaximalMoves, Budget: budget, MaxSets: maxSets}}
}

// NewSearch builds a custom search scheduler.
func NewSearch(name string, cfg SearchConfig) *Search { return &Search{name: name, cfg: cfg} }

// Name implements Scheduler.
func (s *Search) Name() string { return s.name }

// pendingAdvance is one step of the line the dfs is currently walking.
// senders, bundle and covered alias the owning frame's scratch buffers —
// valid for exactly as long as the entry is on the stack — and are only
// materialized into Advances when the line is committed as the new
// incumbent. bundle is nil in the single-channel system; on a
// multi-channel instance it holds the slot's full per-channel class list
// and covered holds their joint coverage.
type pendingAdvance struct {
	t       int
	senders color.Class
	bundle  color.Bundle
	covered bitset.Set
}

// frame is the per-depth scratch arena of the search: color buffers, the
// generated moves, the coverage set of the move currently being explored
// (active), and the child-coverage buffer (w2). Frames are reused across
// every visit to their depth, so a warm search expands states without
// allocating.
type frame struct {
	scratch color.Scratch
	moves   []move
	active  bitset.Set
	w2      bitset.Set
}

type engine struct {
	in      Instance
	cfg     SearchConfig
	n       int
	k       int // effective channel count, in.K()
	period  int
	memo    memoTable
	stats   SearchStats
	depths  []DepthStats // per-depth profile, cfg.DepthProfile only
	budget  int
	trunc   bool
	bestEnd int
	best    []Advance // materialized incumbent achieving bestEnd
	stack   []pendingAdvance
	pool    *bitset.Pool
	frames  []*frame
	distBuf []int
	quBuf   []graph.NodeID
	// Channelized-commit scratch: the initial coverage and the two working
	// sets commitBest uses to re-derive per-channel coverage attribution.
	w0        bitset.Set
	commitW   bitset.Set
	commitTmp bitset.Set
	// Interference oracle of the bound instance; ib owns both backends so
	// rebinding on reset never allocates.
	ib     interference.Binder
	oracle interference.Oracle
}

// memoSeed keys the digest; any constant works, it only decorrelates the
// hash from the raw set contents.
const memoSeed = 0x6d6c62732d6d656d

// memoSeedFor folds the channel count into the memo seed so channelized
// states can never alias single-channel ones: the memoized value of a
// coverage state depends on how many classes a slot may carry. K = 1
// returns memoSeed exactly, keeping single-channel hashing bit-identical.
func memoSeedFor(k int) uint64 {
	if k <= 1 {
		return memoSeed
	}
	return memoSeed ^ (0x9e3779b97f4a7c15 * uint64(k))
}

func newEngine(in Instance, cfg SearchConfig) *engine {
	e := &engine{
		in:     in,
		cfg:    cfg,
		n:      in.G.N(),
		k:      in.K(),
		period: in.Wake.Period(),
		memo:   newMemoTable(memoSeedFor(in.K())),
		budget: cfg.Budget,
		pool:   bitset.NewPool(),
	}
	e.oracle = in.Oracle(&e.ib)
	return e
}

// reset rebinds a used engine to a new instance while keeping every arena
// that can survive: the bitset pool always carries over (it is binned by
// word count), and the frame arena, BFS buffers and memo storage carry
// over whenever the node count is unchanged. The incumbent slice is
// detached, not truncated — the previous Result still aliases it.
func (e *engine) reset(in Instance, cfg SearchConfig) {
	n := in.G.N()
	if n != e.n {
		e.frames = nil
		e.distBuf, e.quBuf = nil, nil
	}
	e.in = in
	e.cfg = cfg
	e.n = n
	e.k = in.K()
	e.period = in.Wake.Period()
	e.memo.reset()
	e.memo.seed = memoSeedFor(e.k)
	e.stats = SearchStats{}
	e.depths = nil // never reuse: the previous Result aliases the slice
	e.budget = cfg.Budget
	e.trunc = false
	e.bestEnd = 0
	e.best = nil
	e.stack = e.stack[:0]
	e.oracle = in.Oracle(&e.ib)
}

// frame returns the depth-th scratch frame, creating it on first descent.
func (e *engine) frame(depth int) *frame {
	for len(e.frames) <= depth {
		f := &frame{active: bitset.New(e.n), w2: bitset.New(e.n)}
		f.scratch.Pool = e.pool
		e.frames = append(e.frames, f)
	}
	return e.frames[depth]
}

// depthStats returns the profile row for depth, growing the profile on
// first descent. Callers must have checked cfg.DepthProfile — the common
// (unprofiled) search never reaches this.
func (e *engine) depthStats(depth int) *DepthStats {
	for len(e.depths) <= depth {
		e.depths = append(e.depths, DepthStats{})
	}
	return &e.depths[depth]
}

// Schedule implements Scheduler.
func (s *Search) Schedule(in Instance) (*Result, error) {
	res, _, err := s.run(in, s.cfg, nil)
	return res, err
}

// run executes one search. reuse, when non-nil, is a previously-used
// engine whose arenas are recycled; the engine actually used is returned
// so callers holding one (the reusable Engine) can keep it warm.
func (s *Search) run(in Instance, cfg SearchConfig, reuse *engine) (*Result, *engine, error) {
	if err := in.Validate(); err != nil {
		return nil, reuse, err
	}
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultBudget
	}
	if cfg.MaxSets <= 0 {
		cfg.MaxSets = DefaultMaxSets
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = color.DefaultMaxBundles
	}
	incumbent := cfg.Incumbent
	if incumbent == nil {
		switch {
		case cfg.Moves == MaximalMoves:
			// OPT's strongest cheap incumbent is G-OPT itself (greedy
			// classes are maximal sets, so its value is feasible for OPT);
			// with it the search usually only has to prove a fail-high.
			incumbent = NewGOPT(cfg.Budget)
		case in.G.DistinctPositions():
			incumbent = NewEModel(0)
		default:
			// Abstract graphs without geometry cannot host the E-model;
			// the utilization-greedy policy is the next-best rollout.
			incumbent = NewPolicy("max-coverage", MaxCoverageRule{})
		}
	}
	seed, err := incumbent.Schedule(in)
	if err != nil {
		return nil, reuse, fmt.Errorf("core: incumbent rollout failed: %w", err)
	}

	e := reuse
	if e == nil {
		e = newEngine(in, cfg)
	} else {
		e.reset(in, cfg)
	}
	e.bestEnd = seed.Schedule.End()
	e.best = append([]Advance(nil), seed.Schedule.Advances...)

	w0 := in.initialCoverage()
	e.w0 = w0
	var (
		sched *Schedule
		exact bool
	)
	if w0.Len() == e.n {
		// Single-node network: nothing to broadcast.
		sched = &Schedule{Source: in.Source, Start: in.Start}
		exact = true
	} else {
		val, ex := e.dfs(0, w0, in.Start, e.bestEnd)
		switch {
		case ex && val <= e.bestEnd:
			// The search established the exact optimum; rebuild its path
			// from the memo. Move caps make "exact" relative to the capped
			// move set, which is not a global optimality proof.
			adv, rerr := e.reconstruct(w0, in.Start, val)
			if rerr != nil {
				return nil, e, rerr
			}
			sched = &Schedule{Source: in.Source, Start: in.Start, Advances: adv}
			exact = !e.stats.MovesCapped
		case ex:
			return nil, e, errors.New("core: search returned exact value above the incumbent (internal error)")
		case val >= e.bestEnd:
			// Fail-high: every alternative is provably ≥ the incumbent, so
			// the incumbent is optimal. Lower bounds stay valid under
			// budget truncation (truncated subtrees return admissible
			// bounds), so only move caps spoil the proof.
			sched = &Schedule{Source: in.Source, Start: in.Start, Advances: e.best}
			exact = !e.stats.MovesCapped
		default:
			// Budget ran out before a proof: ship the best walked schedule.
			sched = &Schedule{Source: in.Source, Start: in.Start, Advances: e.best}
		}
	}
	e.stats.MemoEntries = e.memo.count
	e.stats.BudgetExhausted = e.trunc
	e.stats.Depths = e.depths // nil unless cfg.DepthProfile collected rows
	return &Result{
		Scheduler: s.name,
		Schedule:  sched,
		PA:        sched.PA(),
		Exact:     exact,
		Stats:     e.stats,
	}, e, nil
}

// maxHop returns the largest hop distance from coverage w to any uncovered
// node — the admissible lower bound on remaining advances (each advance
// extends coverage by at most one hop).
func (e *engine) maxHop(w bitset.Set) int {
	var dist []int
	dist, e.quBuf = e.in.G.MultiSourceBFS(w, e.distBuf, e.quBuf)
	e.distBuf = dist
	max := 0
	for v, d := range dist {
		if w.Has(v) {
			continue
		}
		if d < 0 {
			return inf // unreachable; cannot complete
		}
		if d > max {
			max = d
		}
	}
	return max
}

// moves generates the color sets available at slot among the awake
// candidates into fr, largest coverage first (ties: ascending lexicographic
// senders). On a multi-channel instance every move is a bundle of up to K
// sender-disjoint classes — one per channel — instead of a single class.
// The returned slice and everything it references belong to fr and are
// clobbered by the frame's next use.
//
//mlbs:hotpath -- move generation runs once per expanded node; warm frames reuse every buffer
func (e *engine) moves(fr *frame, w bitset.Set, cands []graph.NodeID, slot int) []move {
	var classes []color.Class
	switch e.cfg.Moves {
	case GreedyMoves:
		classes = fr.scratch.GreedyPartitionOracle(e.in.G, w, cands, e.oracle)
	case MaximalMoves:
		var capped bool
		classes, capped = fr.scratch.MaximalSetsOracle(e.in.G, w, cands, e.cfg.MaxSets, e.oracle)
		if capped {
			e.stats.MovesCapped = true
		}
	default:
		panic("core: unknown move generator")
	}
	fr.moves = fr.moves[:0]
	if e.k > 1 && len(classes) > 1 {
		bundles, capped := fr.scratch.Bundles(classes, e.k, e.cfg.MaxBundles)
		if capped {
			e.stats.MovesCapped = true
		}
		for _, b := range bundles {
			fr.moves = append(fr.moves, move{
				senders: b[0],
				bundle:  b,
				covLen:  fr.scratch.BundleCoveredLen(e.in.G, w, b),
			})
		}
		slices.SortStableFunc(fr.moves, compareMoves)
		return fr.moves
	}
	for _, c := range classes {
		fr.moves = append(fr.moves, move{senders: c, covLen: fr.scratch.CoveredLen(e.in.G, w, c)})
	}
	slices.SortStableFunc(fr.moves, compareMoves)
	return fr.moves
}

// commitBest materializes the walked line on the stack into e.best. Only
// here do pending advances turn into real Advance values (copied senders,
// member-list coverage): improvements are rare, so the whole search defers
// that work until a line actually wins. On a multi-channel instance each
// pending slot expands into one Advance per channel, with coverage
// attributed to the lowest channel reaching each node — the canonical
// form Schedule.Validate checks.
func (e *engine) commitBest() {
	e.best = e.best[:0]
	if e.k <= 1 {
		for _, p := range e.stack {
			e.best = append(e.best, Advance{
				T:       p.t,
				Senders: append([]graph.NodeID(nil), p.senders...),
				Covered: p.covered.Members(),
			})
		}
		return
	}
	if e.commitW.Capacity() < e.n {
		e.commitW = bitset.New(e.n)
		e.commitTmp = bitset.New(e.n)
	}
	w := e.commitW[:e.w0.Words()]
	tmp := e.commitTmp[:e.w0.Words()]
	w.CopyFrom(e.w0)
	for _, p := range e.stack {
		b := p.bundle
		if b == nil {
			b = color.Bundle{p.senders}
		}
		e.best = appendBundleAdvances(e.best, e.in.G, w, tmp, p.t, b)
	}
}

// appendBundleAdvances materializes one channelized slot: the bundle's
// classes fire at slot t on channels 0, 1, …, each node's coverage
// attributed to the lowest channel that reaches it; classes whose whole
// reach was claimed by a lower channel are dropped (and their channel
// reused). w — the coverage before the slot — accumulates the slot's
// coverage; tmp is scratch.
func appendBundleAdvances(out []Advance, g *graph.Graph, w, tmp bitset.Set, t int, b color.Bundle) []Advance {
	ch := 0
	for _, cls := range b {
		tmp.Clear()
		for _, u := range cls {
			tmp.UnionWith(g.Nbr(u))
		}
		tmp.DifferenceWith(w)
		if tmp.Empty() {
			continue
		}
		out = append(out, Advance{
			T:       t,
			Channel: ch,
			Senders: append([]graph.NodeID(nil), cls...),
			Covered: tmp.Members(),
		})
		w.UnionWith(tmp)
		ch++
	}
	return out
}

// dfs evaluates M(w, t): the minimal end time (slot of the last advance)
// achievable from coverage w at time t. The second return value reports
// the kind of the first: true — the value is exact; false — it is only a
// lower bound (the branch was cut off at `limit`, or the budget ran out).
// limit is a pure search-control: the caller does not care about values
// ≥ limit, so subtrees provably at or above it are cut. depth indexes the
// engine's frame arena; w is owned by the caller and read-only here.
//
//mlbs:hotpath -- the branch-and-bound inner loop; the warm-path alloc pin depends on it staying allocation-free
func (e *engine) dfs(depth int, w bitset.Set, t, limit int) (int, bool) {
	fr := e.frame(depth)
	slot, cands, ok := nextUsefulSlot(e.in.G, e.in.Wake, w, t, &fr.scratch)
	if !ok {
		return inf, true // no candidate can ever fire again
	}
	hop := e.maxHop(w)
	if hop >= inf {
		return inf, true
	}
	lb := slot + hop - 1
	if lb >= limit {
		if e.cfg.DepthProfile {
			e.depthStats(depth).BoundPrunes++
		}
		return lb, false
	}
	tmod := slot % e.period
	if r, kind := e.memo.lookup(w, tmod); kind != memoEmpty {
		if kind == memoExact {
			e.stats.MemoHits++
			if e.cfg.DepthProfile {
				e.depthStats(depth).MemoHits++
			}
			return slot + int(r), true
		}
		if v := slot + int(r); v >= limit {
			e.stats.MemoHits++
			if e.cfg.DepthProfile {
				e.depthStats(depth).MemoHits++
			}
			return v, false
		}
	}
	if e.budget <= 0 {
		e.trunc = true
		if e.cfg.DepthProfile {
			e.depthStats(depth).BudgetCuts++
		}
		return lb, false
	}
	e.budget--
	e.stats.Expanded++
	if e.cfg.DepthProfile {
		e.depthStats(depth).Expanded++
	}

	bestExact, minLB := inf, inf
	for i := range e.moves(fr, w, cands, slot) {
		m := &fr.moves[i]
		if m.covLen == 0 {
			continue // defensive: candidates always cover someone
		}
		if m.bundle != nil {
			m.bundle.CoveredInto(e.in.G, w, fr.active)
		} else {
			m.senders.CoveredInto(e.in.G, w, fr.active)
		}
		bitset.UnionInto(fr.w2, w, fr.active)
		e.stack = append(e.stack, pendingAdvance{t: slot, senders: m.senders, bundle: m.bundle, covered: fr.active})
		if m.covLen+w.Len() == e.n {
			// Ending at the current slot is unbeatable from this state
			// (full coverage in one advance forces hop == 1, so lb == slot);
			// exact regardless of the other moves.
			if slot < e.bestEnd {
				e.bestEnd = slot
				e.commitBest()
			}
			e.stack = e.stack[:len(e.stack)-1]
			e.memo.put(w, tmod, 0, memoExact)
			return slot, true
		}
		childLimit := limit
		if bestExact < childLimit {
			childLimit = bestExact
		}
		v, exact := e.dfs(depth+1, fr.w2, slot+1, childLimit)
		e.stack = e.stack[:len(e.stack)-1]
		if exact {
			if v < bestExact {
				bestExact = v
			}
		} else if v < minLB {
			minLB = v
		}
		if bestExact == lb {
			break // matches the lower bound; provably optimal here
		}
	}

	// Exact when every alternative is proven no better (bestExact ≤ minLB)
	// or the value meets the admissible floor (bestExact == lb).
	if bestExact <= minLB || bestExact == lb {
		e.memo.put(w, tmod, int32(bestExact-slot), memoExact)
		return bestExact, true
	}
	res := minLB
	if lb > res {
		res = lb
	}
	if r, kind := e.memo.lookup(w, tmod); kind == memoEmpty || (kind == memoLower && int(r) < res-slot) {
		e.memo.put(w, tmod, int32(res-slot), memoLower)
	}
	return res, false
}

// reconstruct rebuilds the optimal advance sequence from the memo after an
// exact improving search: at every state it re-derives the moves in the
// same deterministic order and follows the child whose exact value matches
// the expected end time.
func (e *engine) reconstruct(w0 bitset.Set, t, want int) ([]Advance, error) {
	var out []Advance
	w := w0.Clone()
	w2 := bitset.New(e.n)
	tmp := bitset.New(e.n)
	fr, probe := e.frame(0), e.frame(1)
	for w.Len() < e.n {
		slot, cands, ok := nextUsefulSlot(e.in.G, e.in.Wake, w, t, &fr.scratch)
		if !ok {
			return nil, errors.New("core: reconstruction reached a dead state")
		}
		found := false
		for i := range e.moves(fr, w, cands, slot) {
			m := &fr.moves[i]
			if m.covLen == 0 {
				continue
			}
			if m.bundle != nil {
				m.bundle.CoveredInto(e.in.G, w, fr.active)
			} else {
				m.senders.CoveredInto(e.in.G, w, fr.active)
			}
			bitset.UnionInto(w2, w, fr.active)
			if w2.Len() == e.n {
				if slot != want {
					continue
				}
			} else {
				slot2, _, ok2 := nextUsefulSlot(e.in.G, e.in.Wake, w2, slot+1, &probe.scratch)
				if !ok2 {
					continue
				}
				r, kind := e.memo.lookup(w2, slot2%e.period)
				if kind != memoExact || slot2+int(r) != want {
					continue
				}
			}
			if e.k > 1 {
				b := m.bundle
				if b == nil {
					b = color.Bundle{m.senders}
				}
				out = appendBundleAdvances(out, e.in.G, w, tmp, slot, b)
			} else {
				out = append(out, Advance{
					T:       slot,
					Senders: append([]graph.NodeID(nil), m.senders...),
					Covered: fr.active.Members(),
				})
				w.UnionWith(fr.active)
			}
			t = slot + 1
			found = true
			break
		}
		if !found {
			return nil, errors.New("core: reconstruction lost the optimal path (memo incomplete)")
		}
	}
	return out, nil
}
