package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mlbs/internal/bitset"
	"mlbs/internal/color"
	"mlbs/internal/graph"
)

// inf is larger than any reachable end time but safely below overflow.
const inf = 1 << 30

// MoveGen selects which color sets the search branches over.
type MoveGen int

const (
	// GreedyMoves branches over the λ greedy classes of Algorithm 1 —
	// the G-OPT target of Eq. 7 (sync) and Eq. 8 (duty cycle).
	GreedyMoves MoveGen = iota
	// MaximalMoves branches over every maximal conflict-free relay set —
	// the OPT target of Eq. 5 (sync) and Eq. 6 (duty cycle). Monotonicity
	// of coverage makes maximal sets sufficient for optimality.
	MaximalMoves
)

// SearchConfig tunes the branch-and-bound evaluation of the time counter M.
type SearchConfig struct {
	Moves MoveGen
	// Budget caps the number of expanded states; once exhausted the search
	// returns its incumbent with Exact=false. 0 selects DefaultBudget.
	Budget int
	// MaxSets caps maximal-set enumeration per state (MaximalMoves only);
	// hitting the cap clears Exact. 0 selects DefaultMaxSets.
	MaxSets int
	// Incumbent seeds the upper bound; nil uses the E-model policy, which
	// is both the paper's practical scheme and a strong initial incumbent.
	Incumbent Scheduler
}

// DefaultBudget bounds search effort when SearchConfig.Budget is zero.
const DefaultBudget = 200_000

// DefaultMaxSets bounds per-state maximal-set enumeration when
// SearchConfig.MaxSets is zero.
const DefaultMaxSets = 128

// Search evaluates the time counter M by memoized branch-and-bound and
// returns a provably minimal schedule when it completes within budget.
type Search struct {
	name string
	cfg  SearchConfig
}

// NewGOPT returns the G-OPT scheduler (Eq. 7/8). budget ≤ 0 uses the
// default.
func NewGOPT(budget int) *Search {
	return &Search{name: "G-OPT", cfg: SearchConfig{Moves: GreedyMoves, Budget: budget}}
}

// NewOPT returns the OPT scheduler (Eq. 5/6). budget/maxSets ≤ 0 use
// defaults.
func NewOPT(budget, maxSets int) *Search {
	return &Search{name: "OPT", cfg: SearchConfig{Moves: MaximalMoves, Budget: budget, MaxSets: maxSets}}
}

// NewSearch builds a custom search scheduler.
func NewSearch(name string, cfg SearchConfig) *Search { return &Search{name: name, cfg: cfg} }

// Name implements Scheduler.
func (s *Search) Name() string { return s.name }

type memoEntry struct {
	r     int32 // end − slot when exact; known lower bound on it otherwise
	exact bool
}

type engine struct {
	in      Instance
	cfg     SearchConfig
	n       int
	period  int
	memo    map[string]memoEntry
	stats   SearchStats
	budget  int
	trunc   bool
	bestEnd int
	best    []Advance // walked incumbent achieving bestEnd
	stack   []Advance
	distBuf []int
	quBuf   []graph.NodeID
}

// Schedule implements Scheduler.
func (s *Search) Schedule(in Instance) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	cfg := s.cfg
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultBudget
	}
	if cfg.MaxSets <= 0 {
		cfg.MaxSets = DefaultMaxSets
	}
	incumbent := cfg.Incumbent
	if incumbent == nil {
		switch {
		case cfg.Moves == MaximalMoves:
			// OPT's strongest cheap incumbent is G-OPT itself (greedy
			// classes are maximal sets, so its value is feasible for OPT);
			// with it the search usually only has to prove a fail-high.
			incumbent = NewGOPT(cfg.Budget)
		case in.G.DistinctPositions():
			incumbent = NewEModel(0)
		default:
			// Abstract graphs without geometry cannot host the E-model;
			// the utilization-greedy policy is the next-best rollout.
			incumbent = NewPolicy("max-coverage", MaxCoverageRule{})
		}
	}
	seed, err := incumbent.Schedule(in)
	if err != nil {
		return nil, fmt.Errorf("core: incumbent rollout failed: %w", err)
	}

	e := &engine{
		in:      in,
		cfg:     cfg,
		n:       in.G.N(),
		period:  in.Wake.Period(),
		memo:    make(map[string]memoEntry),
		budget:  cfg.Budget,
		bestEnd: seed.Schedule.End(),
		best:    append([]Advance(nil), seed.Schedule.Advances...),
	}

	w0 := in.initialCoverage()
	var (
		sched *Schedule
		exact bool
	)
	if w0.Len() == e.n {
		// Single-node network: nothing to broadcast.
		sched = &Schedule{Source: in.Source, Start: in.Start}
		exact = true
	} else {
		val, ex := e.dfs(w0, in.Start, e.bestEnd)
		switch {
		case ex && val <= e.bestEnd:
			// The search established the exact optimum; rebuild its path
			// from the memo. Move caps make "exact" relative to the capped
			// move set, which is not a global optimality proof.
			adv, rerr := e.reconstruct(w0, in.Start, val)
			if rerr != nil {
				return nil, rerr
			}
			sched = &Schedule{Source: in.Source, Start: in.Start, Advances: adv}
			exact = !e.stats.MovesCapped
		case ex:
			return nil, errors.New("core: search returned exact value above the incumbent (internal error)")
		case val >= e.bestEnd:
			// Fail-high: every alternative is provably ≥ the incumbent, so
			// the incumbent is optimal. Lower bounds stay valid under
			// budget truncation (truncated subtrees return admissible
			// bounds), so only move caps spoil the proof.
			sched = &Schedule{Source: in.Source, Start: in.Start, Advances: e.best}
			exact = !e.stats.MovesCapped
		default:
			// Budget ran out before a proof: ship the best walked schedule.
			sched = &Schedule{Source: in.Source, Start: in.Start, Advances: e.best}
		}
	}
	e.stats.MemoEntries = len(e.memo)
	return &Result{
		Scheduler: s.name,
		Schedule:  sched,
		PA:        sched.PA(),
		Exact:     exact,
		Stats:     e.stats,
	}, nil
}

// maxHop returns the largest hop distance from coverage w to any uncovered
// node — the admissible lower bound on remaining advances (each advance
// extends coverage by at most one hop).
func (e *engine) maxHop(w bitset.Set) int {
	var dist []int
	dist, e.quBuf = e.in.G.MultiSourceBFS(w, e.distBuf, e.quBuf)
	e.distBuf = dist
	max := 0
	for v, d := range dist {
		if w.Has(v) {
			continue
		}
		if d < 0 {
			return inf // unreachable; cannot complete
		}
		if d > max {
			max = d
		}
	}
	return max
}

func (e *engine) memoKey(w bitset.Set, tmod int) string {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(tmod))
	return w.Key() + string(buf[:])
}

// moves enumerates the color sets available at slot among the awake
// candidates, largest coverage first.
func (e *engine) moves(w bitset.Set, cands []graph.NodeID, slot int) []move {
	var classes []color.Class
	switch e.cfg.Moves {
	case GreedyMoves:
		classes = color.GreedyPartition(e.in.G, w, cands)
	case MaximalMoves:
		var capped bool
		classes, capped = color.MaximalSets(e.in.G, w, cands, e.cfg.MaxSets)
		if capped {
			e.stats.MovesCapped = true
		}
	default:
		panic("core: unknown move generator")
	}
	return movesOf(e.in.G, w, classes, true)
}

// dfs evaluates M(w, t): the minimal end time (slot of the last advance)
// achievable from coverage w at time t. The second return value reports
// the kind of the first: true — the value is exact; false — it is only a
// lower bound (the branch was cut off at `limit`, or the budget ran out).
// limit is a pure search-control: the caller does not care about values
// ≥ limit, so subtrees provably at or above it are cut.
func (e *engine) dfs(w bitset.Set, t, limit int) (int, bool) {
	slot, cands, ok := nextUsefulSlot(e.in.G, e.in.Wake, w, t)
	if !ok {
		return inf, true // no candidate can ever fire again
	}
	hop := e.maxHop(w)
	if hop >= inf {
		return inf, true
	}
	lb := slot + hop - 1
	if lb >= limit {
		return lb, false
	}
	key := e.memoKey(w, slot%e.period)
	if ent, hit := e.memo[key]; hit {
		if ent.exact {
			e.stats.MemoHits++
			return slot + int(ent.r), true
		}
		if v := slot + int(ent.r); v >= limit {
			e.stats.MemoHits++
			return v, false
		}
	}
	if e.budget <= 0 {
		e.trunc = true
		return lb, false
	}
	e.budget--
	e.stats.Expanded++

	bestExact, minLB := inf, inf
	for _, m := range e.moves(w, cands, slot) {
		if m.covered.Empty() {
			continue // defensive: candidates always cover someone
		}
		w2 := bitset.Union(w, m.covered)
		e.stack = append(e.stack, Advance{T: slot, Senders: m.senders, Covered: m.covered.Members()})
		if w2.Len() == e.n {
			// Ending at the current slot is unbeatable from this state
			// (full coverage in one advance forces hop == 1, so lb == slot);
			// exact regardless of the other moves.
			if slot < e.bestEnd {
				e.bestEnd = slot
				e.best = append([]Advance(nil), e.stack...)
			}
			e.stack = e.stack[:len(e.stack)-1]
			e.memo[key] = memoEntry{r: 0, exact: true}
			return slot, true
		}
		childLimit := limit
		if bestExact < childLimit {
			childLimit = bestExact
		}
		v, exact := e.dfs(w2, slot+1, childLimit)
		e.stack = e.stack[:len(e.stack)-1]
		if exact {
			if v < bestExact {
				bestExact = v
			}
		} else if v < minLB {
			minLB = v
		}
		if bestExact == lb {
			break // matches the lower bound; provably optimal here
		}
	}

	// Exact when every alternative is proven no better (bestExact ≤ minLB)
	// or the value meets the admissible floor (bestExact == lb).
	if bestExact <= minLB || bestExact == lb {
		e.memo[key] = memoEntry{r: int32(bestExact - slot), exact: true}
		return bestExact, true
	}
	res := minLB
	if lb > res {
		res = lb
	}
	if ent, hit := e.memo[key]; !hit || (!ent.exact && int(ent.r) < res-slot) {
		e.memo[key] = memoEntry{r: int32(res - slot)}
	}
	return res, false
}

// reconstruct rebuilds the optimal advance sequence from the memo after an
// exact improving search: at every state it re-derives the moves in the
// same deterministic order and follows the child whose exact value matches
// the expected end time.
func (e *engine) reconstruct(w bitset.Set, t, want int) ([]Advance, error) {
	var out []Advance
	w = w.Clone()
	for w.Len() < e.n {
		slot, cands, ok := nextUsefulSlot(e.in.G, e.in.Wake, w, t)
		if !ok {
			return nil, errors.New("core: reconstruction reached a dead state")
		}
		found := false
		for _, m := range e.moves(w, cands, slot) {
			if m.covered.Empty() {
				continue
			}
			w2 := bitset.Union(w, m.covered)
			if w2.Len() == e.n {
				if slot != want {
					continue
				}
			} else {
				slot2, _, ok2 := nextUsefulSlot(e.in.G, e.in.Wake, w2, slot+1)
				if !ok2 {
					continue
				}
				ent, hit := e.memo[e.memoKey(w2, slot2%e.period)]
				if !hit || !ent.exact || slot2+int(ent.r) != want {
					continue
				}
			}
			out = append(out, Advance{T: slot, Senders: m.senders, Covered: m.covered.Members()})
			w = w2
			t = slot + 1
			found = true
			break
		}
		if !found {
			return nil, errors.New("core: reconstruction lost the optimal path (memo incomplete)")
		}
	}
	return out, nil
}
