package dutycycle

import (
	"testing"
	"testing/quick"
)

func TestAlwaysAwake(t *testing.T) {
	s := AlwaysAwake{Nodes: 3}
	if !s.Awake(0, 0) || !s.Awake(2, 999) {
		t.Fatal("AlwaysAwake must always be awake")
	}
	if s.NextAwake(1, 17) != 17 {
		t.Fatal("NextAwake must be the identity")
	}
	if s.Period() != 1 || s.Rate() != 1 || s.N() != 3 {
		t.Fatal("AlwaysAwake metadata wrong")
	}
}

func TestUniformOneWakePerCycle(t *testing.T) {
	s := NewUniform(20, 10, 7, 0)
	for u := 0; u < s.N(); u++ {
		for c := 0; c < 50; c++ {
			count := 0
			for t := c * 10; t < (c+1)*10; t++ {
				if s.Awake(u, t) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("node %d cycle %d has %d wake slots, want 1", u, c, count)
			}
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := NewUniform(10, 10, 42, 0)
	b := NewUniform(10, 10, 42, 0)
	for u := 0; u < 10; u++ {
		for tt := 0; tt < 200; tt++ {
			if a.Awake(u, tt) != b.Awake(u, tt) {
				t.Fatalf("same seed diverged at node %d slot %d", u, tt)
			}
		}
	}
}

func TestUniformSeedsDiffer(t *testing.T) {
	s := NewUniform(2, 50, 3, 0)
	same := true
	for c := 0; c < 20 && same; c++ {
		if s.offset(0, c) != s.offset(1, c) {
			same = false
		}
	}
	if same {
		t.Fatal("two nodes share the whole wake sequence; seeds not independent")
	}
}

func TestUniformNextAwake(t *testing.T) {
	s := NewUniform(5, 10, 11, 0)
	for u := 0; u < 5; u++ {
		for tt := 0; tt < 100; tt += 7 {
			w := s.NextAwake(u, tt)
			if w < tt {
				t.Fatalf("NextAwake(%d,%d) = %d < t", u, tt, w)
			}
			if !s.Awake(u, w) {
				t.Fatalf("NextAwake(%d,%d) = %d is not a wake slot", u, tt, w)
			}
			for x := tt; x < w; x++ {
				if s.Awake(u, x) {
					t.Fatalf("NextAwake(%d,%d) skipped earlier wake slot %d", u, tt, x)
				}
			}
			if gap := w - tt; gap >= 2*10 {
				t.Fatalf("wake gap %d ≥ 2r; uniform-per-cycle guarantees < 2r", gap)
			}
		}
	}
}

func TestUniformPeriodicity(t *testing.T) {
	s := NewUniform(4, 10, 9, 8) // short period for the test: 80 slots
	p := s.Period()
	if p != 80 {
		t.Fatalf("Period = %d, want 80", p)
	}
	for u := 0; u < 4; u++ {
		for tt := 0; tt < p; tt++ {
			if s.Awake(u, tt) != s.Awake(u, tt+p) {
				t.Fatalf("schedule not periodic at node %d slot %d", u, tt)
			}
		}
	}
}

func TestUniformNegativeSlot(t *testing.T) {
	s := NewUniform(1, 10, 1, 0)
	if s.Awake(0, -1) {
		t.Fatal("negative slots must not be awake")
	}
	if w := s.NextAwake(0, -5); w < 0 || !s.Awake(0, w) {
		t.Fatalf("NextAwake from negative = %d", w)
	}
}

func TestUniformRateAverage(t *testing.T) {
	s := NewUniform(1, 10, 21, 0)
	wakes := WakeSlotsInWindow(s, 0, 0, 10*1000)
	if len(wakes) != 1000 {
		t.Fatalf("got %d wakes in 1000 cycles, want exactly 1000", len(wakes))
	}
	if s.Rate() != 10 {
		t.Fatalf("Rate = %d, want 10", s.Rate())
	}
}

func TestNewUniformPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative n": func() { NewUniform(-1, 10, 1, 0) },
		"zero rate":  func() { NewUniform(1, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFixedSchedule(t *testing.T) {
	s := NewFixed(10, 5, [][]int{{2, 7}, {0}})
	if !s.Awake(0, 2) || !s.Awake(0, 7) || s.Awake(0, 3) {
		t.Fatal("Fixed Awake wrong within first period")
	}
	if !s.Awake(0, 12) {
		t.Fatal("Fixed must repeat with the period")
	}
	if got := s.NextAwake(0, 3); got != 7 {
		t.Fatalf("NextAwake(0,3) = %d, want 7", got)
	}
	if got := s.NextAwake(0, 8); got != 12 {
		t.Fatalf("NextAwake(0,8) = %d, want 12 (wrap)", got)
	}
	if got := s.NextAwake(1, 1); got != 10 {
		t.Fatalf("NextAwake(1,1) = %d, want 10", got)
	}
	if s.Period() != 10 || s.Rate() != 5 || s.N() != 2 {
		t.Fatal("Fixed metadata wrong")
	}
}

func TestNewFixedValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty slots":  func() { NewFixed(10, 1, [][]int{{}}) },
		"out of range": func() { NewFixed(10, 1, [][]int{{10}}) },
		"unsorted":     func() { NewFixed(10, 1, [][]int{{5, 5}}) },
		"bad period":   func() { NewFixed(0, 1, nil) },
		"bad rate":     func() { NewFixed(5, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPeriodicPhase(t *testing.T) {
	s := NewPeriodicPhase(10, []int{3, 3})
	if !s.Awake(0, 3) || !s.Awake(0, 13) || s.Awake(0, 4) {
		t.Fatal("PeriodicPhase Awake wrong")
	}
	if got := s.NextAwake(1, 4); got != 13 {
		t.Fatalf("NextAwake = %d, want 13", got)
	}
	if got := s.NextAwake(1, 3); got != 3 {
		t.Fatalf("NextAwake at wake slot = %d, want 3", got)
	}
}

func TestCWT(t *testing.T) {
	// u wakes at 2; v wakes at 5 within period 10.
	s := NewFixed(10, 10, [][]int{{2}, {5}})
	if got := CWT(s, 0, 1, 2); got != 3 {
		t.Fatalf("CWT = %d, want 3", got)
	}
	// Transmit exactly at v's wake slot: must wait a full period, since the
	// paper requires t_i > t (v forwards at a *later* wake-up).
	if got := CWT(s, 1, 0, 2); got != 10 {
		t.Fatalf("CWT same-slot = %d, want 10", got)
	}
}

func TestCWTWorstCaseSamePhase(t *testing.T) {
	// Theorem 1's worst case: both ends share the schedule, so every hop
	// waits one full cycle r.
	s := NewPeriodicPhase(10, []int{4, 4})
	if got := CWT(s, 0, 1, 4); got != 10 {
		t.Fatalf("CWT = %d, want full cycle 10", got)
	}
}

func TestMeanCWT(t *testing.T) {
	// u wakes at 0, v wakes at 1 ⇒ CWT always 1.
	s := NewPeriodicPhase(4, []int{0, 1})
	if got := MeanCWT(s, 0, 1); got != 1 {
		t.Fatalf("MeanCWT = %f, want 1", got)
	}
	// Reverse direction: v wakes at 0, so from u's slot 1 the wait is 3.
	if got := MeanCWT(s, 1, 0); got != 3 {
		t.Fatalf("MeanCWT reverse = %f, want 3", got)
	}
}

func TestMeanCWTUniformApproxExpected(t *testing.T) {
	// For independent uniform wake slots the mean CWT is ≈ r (the mean gap
	// from a uniform point to the next uniform point in the following
	// cycle window is r for the wrap-around structure; we check the broad
	// band 0.5r..1.5r to catch gross errors without overfitting).
	s := NewUniform(2, 10, 77, 0)
	m := MeanCWT(s, 0, 1)
	if m < 5 || m > 15 {
		t.Fatalf("MeanCWT = %f, expected within [5,15] for r=10", m)
	}
}

func TestWakeSlotsInWindow(t *testing.T) {
	s := NewFixed(10, 10, [][]int{{2, 7}})
	got := WakeSlotsInWindow(s, 0, 0, 20)
	want := []int{2, 7, 12, 17}
	if len(got) != len(want) {
		t.Fatalf("WakeSlotsInWindow = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WakeSlotsInWindow = %v, want %v", got, want)
		}
	}
}

// Property: for every schedule type, NextAwake(u,t) is the minimal awake
// slot ≥ t and Awake is periodic with Period().
func TestQuickScheduleContract(t *testing.T) {
	f := func(seed uint64, rRaw, uRaw uint8) bool {
		r := int(rRaw%20) + 1
		var scheds []Schedule
		scheds = append(scheds, NewUniform(4, r, seed, 4))
		phases := make([]int, 4)
		for i := range phases {
			phases[i] = int(seed>>uint(i*8)) % r
			if phases[i] < 0 {
				phases[i] += r
			}
		}
		scheds = append(scheds, NewPeriodicPhase(r, phases))
		for _, s := range scheds {
			u := int(uRaw) % 4
			p := s.Period()
			for tt := 0; tt < 2*p && tt < 400; tt++ {
				w := s.NextAwake(u, tt)
				if w < tt || !s.Awake(u, w) {
					return false
				}
				if s.Awake(u, tt) != s.Awake(u, tt+p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUniformNextAwake(b *testing.B) {
	s := NewUniform(300, 50, 5, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.NextAwake(i%300, i%5000)
	}
}

func TestStaggered(t *testing.T) {
	s := NewStaggered(20, 10, 7)
	if s.Period() != 10 || s.Rate() != 10 || s.N() != 20 {
		t.Fatalf("metadata: period=%d rate=%d n=%d", s.Period(), s.Rate(), s.N())
	}
	// Exactly one wake slot per cycle, at a constant phase.
	for u := 0; u < 20; u++ {
		first := s.NextAwake(u, 0)
		for c := 1; c < 5; c++ {
			if got := s.NextAwake(u, c*10); got != first+c*10 {
				t.Fatalf("node %d phase drifts: %d vs %d", u, got, first+c*10)
			}
		}
	}
	// Phases differ across nodes (with overwhelming probability for n=20, r=10).
	allSame := true
	p0 := s.NextAwake(0, 0)
	for u := 1; u < 20; u++ {
		if s.NextAwake(u, 0) != p0 {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("every node drew the same phase; seeding broken")
	}
	// Determinism.
	again := NewStaggered(20, 10, 7)
	for u := 0; u < 20; u++ {
		if s.NextAwake(u, 0) != again.NextAwake(u, 0) {
			t.Fatal("NewStaggered not deterministic")
		}
	}
}
