// Package dutycycle models the asynchronous sleep–wake substrate of
// Section III: every node's *sending* channel is on only at wake slots
// drawn from a predictable pseudo-random sequence with a preset seed, while
// the receiving channel is always on. Neighbors that have learned a node's
// seed and last wake slot can forecast its future wake-ups; the forecasted
// wait is the cycle waiting time CWT t(u,v) of Table I.
//
// All schedules in this package are periodic (Period returns the period in
// slots). Periodicity is what makes the scheduler's memoization key
// (W, t mod Period) sound; the pseudo-random schedule uses a period of many
// cycles, far longer than any broadcast, so repetition never influences
// results.
package dutycycle

import (
	"fmt"

	"mlbs/internal/rng"
)

// Schedule describes when each node's sending channel is on.
type Schedule interface {
	// Awake reports whether node u may transmit at slot t (t ≥ 0).
	Awake(u, t int) bool
	// NextAwake returns the smallest slot ≥ t at which u may transmit.
	NextAwake(u, t int) int
	// Period returns P ≥ 1 with Awake(u, t) == Awake(u, t+P) for all u, t.
	Period() int
	// Rate returns the cycle rate r = |T| / |T(u)| — the average number of
	// slots per wake-up (1 for the always-awake synchronous system).
	Rate() int
	// N returns the number of nodes the schedule covers.
	N() int
}

// AlwaysAwake is the degenerate schedule of the round-based synchronous
// system: every node may transmit in every round.
type AlwaysAwake struct{ Nodes int }

// Awake always reports true.
func (a AlwaysAwake) Awake(u, t int) bool { return true }

// NextAwake returns t itself.
func (a AlwaysAwake) NextAwake(u, t int) int { return t }

// Period returns 1.
func (a AlwaysAwake) Period() int { return 1 }

// Rate returns 1.
func (a AlwaysAwake) Rate() int { return 1 }

// N returns the node count.
func (a AlwaysAwake) N() int { return a.Nodes }

// Uniform is the paper's duty-cycle schedule: each node wakes exactly once
// per cycle of r slots, at an offset drawn uniformly and independently per
// cycle from the node's seeded pseudo-random sequence ("a pseudo-random
// sequence in the uniform distribution with a preset seed", Section III).
// There is no fixed interval between consecutive wake-ups; on average a
// node is active once every r slots.
type Uniform struct {
	r      int
	cycles int // period = r * cycles
	master uint64
	seeds  []uint64
}

// NewUniform builds a Uniform schedule for n nodes with cycle rate r.
// Per-node seeds derive from masterSeed. cycles sets the period in cycles;
// values ≤ 0 select the default of 1024 cycles.
func NewUniform(n, r int, masterSeed uint64, cycles int) *Uniform {
	if n < 0 {
		panic("dutycycle: negative node count")
	}
	if r < 1 {
		panic("dutycycle: cycle rate must be >= 1")
	}
	if cycles <= 0 {
		cycles = 1024
	}
	seeds := make([]uint64, n)
	state := masterSeed
	for i := range seeds {
		seeds[i] = rng.SplitMix64(&state)
	}
	return &Uniform{r: r, cycles: cycles, master: masterSeed, seeds: seeds}
}

// MasterSeed returns the seed the schedule was built from; together with
// (N, Rate, Cycles) it reconstructs the schedule exactly, which is what
// graphio's instance encoding and digest rely on.
func (s *Uniform) MasterSeed() uint64 { return s.master }

// Cycles returns the period length in cycles (Period = Rate × Cycles).
func (s *Uniform) Cycles() int { return s.cycles }

// offset returns the wake offset of node u within cycle c, in [0, r).
func (s *Uniform) offset(u, c int) int {
	c %= s.cycles
	// One splitmix64 step keyed by (seed_u, cycle) is the node's
	// "predictable pseudo-random sequence": anyone holding seed_u replays it.
	state := s.seeds[u] ^ (uint64(c)+1)*0x9e3779b97f4a7c15
	return int(rng.SplitMix64(&state) % uint64(s.r))
}

// Awake reports whether u transmitting is allowed at slot t.
func (s *Uniform) Awake(u, t int) bool {
	if t < 0 {
		return false
	}
	c := t / s.r
	return t == c*s.r+s.offset(u, c)
}

// NextAwake returns u's first wake slot at or after t.
func (s *Uniform) NextAwake(u, t int) int {
	if t < 0 {
		t = 0
	}
	for c := t / s.r; ; c++ {
		w := c*s.r + s.offset(u, c)
		if w >= t {
			return w
		}
	}
}

// Period returns r × cycles.
func (s *Uniform) Period() int { return s.r * s.cycles }

// Rate returns the cycle rate r.
func (s *Uniform) Rate() int { return s.r }

// N returns the node count.
func (s *Uniform) N() int { return len(s.seeds) }

// Fixed is an explicit schedule: node u is awake exactly at the listed
// slots within each period. It reproduces the paper's worked examples
// (Table IV fixes specific wake slots) and adversarial test cases.
type Fixed struct {
	period int
	rate   int
	slots  [][]int // sorted wake slots of u within [0, period)
}

// NewFixed builds a Fixed schedule. slots[u] lists u's wake slots within
// [0, period); each list must be non-empty and sorted ascending. rate is
// reported by Rate (the paper's r), independent of the lists' cardinality.
func NewFixed(period, rate int, slots [][]int) *Fixed {
	if period < 1 {
		panic("dutycycle: period must be >= 1")
	}
	if rate < 1 {
		panic("dutycycle: rate must be >= 1")
	}
	cp := make([][]int, len(slots))
	for u, list := range slots {
		if len(list) == 0 {
			panic(fmt.Sprintf("dutycycle: node %d has no wake slots", u))
		}
		prev := -1
		for _, t := range list {
			if t < 0 || t >= period {
				panic(fmt.Sprintf("dutycycle: node %d wake slot %d outside [0,%d)", u, t, period))
			}
			if t <= prev {
				panic(fmt.Sprintf("dutycycle: node %d wake slots not strictly ascending", u))
			}
			prev = t
		}
		cp[u] = append([]int(nil), list...)
	}
	return &Fixed{period: period, rate: rate, slots: cp}
}

// Awake reports whether u is awake at slot t.
func (s *Fixed) Awake(u, t int) bool {
	if t < 0 {
		return false
	}
	tt := t % s.period
	for _, w := range s.slots[u] {
		if w == tt {
			return true
		}
		if w > tt {
			return false
		}
	}
	return false
}

// NextAwake returns u's first wake slot at or after t.
func (s *Fixed) NextAwake(u, t int) int {
	if t < 0 {
		t = 0
	}
	base := (t / s.period) * s.period
	tt := t % s.period
	for _, w := range s.slots[u] {
		if w >= tt {
			return base + w
		}
	}
	return base + s.period + s.slots[u][0]
}

// SlotLists returns the per-node wake-slot lists within [0, Period);
// callers must not modify the returned slices.
func (s *Fixed) SlotLists() [][]int { return s.slots }

// Period returns the schedule period.
func (s *Fixed) Period() int { return s.period }

// Rate returns the configured cycle rate.
func (s *Fixed) Rate() int { return s.rate }

// N returns the node count.
func (s *Fixed) N() int { return len(s.slots) }

// PeriodicPhase wakes node u every r slots at a fixed phase φ(u) — the
// regular schedule used in Theorem 1's worst-case analysis (two neighbors
// sharing a schedule force a full-cycle wait per hop).
type PeriodicPhase struct {
	r      int
	phases []int
}

// NewStaggered builds a PeriodicPhase schedule whose phases are drawn
// pseudo-randomly (uniform per node, fixed forever) from masterSeed — the
// classic staggered duty cycle in which every node keeps a constant wake
// offset. Contrast with Uniform, which redraws the offset every cycle.
func NewStaggered(n, r int, masterSeed uint64) *PeriodicPhase {
	if r < 1 {
		panic("dutycycle: cycle rate must be >= 1")
	}
	phases := make([]int, n)
	state := masterSeed
	for u := range phases {
		phases[u] = int(rng.SplitMix64(&state) % uint64(r))
	}
	return NewPeriodicPhase(r, phases)
}

// NewPeriodicPhase builds the schedule; phases[u] must lie in [0, r).
func NewPeriodicPhase(r int, phases []int) *PeriodicPhase {
	if r < 1 {
		panic("dutycycle: cycle rate must be >= 1")
	}
	for u, p := range phases {
		if p < 0 || p >= r {
			panic(fmt.Sprintf("dutycycle: node %d phase %d outside [0,%d)", u, p, r))
		}
	}
	return &PeriodicPhase{r: r, phases: append([]int(nil), phases...)}
}

// Phases returns the per-node wake phases in [0, Rate); callers must not
// modify the returned slice.
func (s *PeriodicPhase) Phases() []int { return s.phases }

// Awake reports whether u is awake at slot t.
func (s *PeriodicPhase) Awake(u, t int) bool { return t >= 0 && t%s.r == s.phases[u] }

// NextAwake returns u's first wake slot at or after t.
func (s *PeriodicPhase) NextAwake(u, t int) int {
	if t < 0 {
		t = 0
	}
	w := (t/s.r)*s.r + s.phases[u]
	if w < t {
		w += s.r
	}
	return w
}

// Period returns r.
func (s *PeriodicPhase) Period() int { return s.r }

// Rate returns r.
func (s *PeriodicPhase) Rate() int { return s.r }

// N returns the node count.
func (s *PeriodicPhase) N() int { return len(s.phases) }

// CWT returns the cycle waiting time t(u,v) of Table I: with u transmitting
// at slot t (so v receives at t), the wait until v can itself transmit —
// the gap to v's next wake slot strictly after t.
func CWT(s Schedule, u, v, t int) int {
	return s.NextAwake(v, t+1) - t
}

// MeanCWT averages CWT(u,v,·) over all of u's wake slots in one period —
// the proactive estimate a node can compute offline from its neighbor's
// seed, used by the asynchronous E-model (Eq. 11).
func MeanCWT(s Schedule, u, v int) float64 {
	if un, ok := s.(*Uniform); ok {
		return un.meanCWT(u, v)
	}
	period := s.Period()
	sum, count := 0, 0
	for t := s.NextAwake(u, 0); t < period; t = s.NextAwake(u, t+1) {
		sum += CWT(s, u, v, t)
		count++
	}
	if count == 0 {
		return float64(period)
	}
	return float64(sum) / float64(count)
}

// meanCWT is MeanCWT specialized to the uniform-per-cycle schedule: u
// wakes exactly once per cycle, so the generic NextAwake scan collapses to
// two offset draws per cycle (u's wake, v's next-cycle wake, with v's
// current-cycle offset carried over). Values are bit-identical to the
// generic path; this exists because the asynchronous E-model build
// evaluates it once per directed edge and it dominates duty-cycle
// scheduling time.
func (s *Uniform) meanCWT(u, v int) float64 {
	sum := 0
	ov := s.offset(v, 0)
	for c := 0; c < s.cycles; c++ {
		ovn := s.offset(v, c+1)
		t := c*s.r + s.offset(u, c)
		wv := c*s.r + ov
		if wv <= t {
			// v's wake this cycle is not strictly after t; the next one is
			// in cycle c+1 (always ≥ t+1 since t+1 ≤ (c+1)·r).
			wv = (c+1)*s.r + ovn
		}
		sum += wv - t
		ov = ovn
	}
	return float64(sum) / float64(s.cycles)
}

// WakeSlotsInWindow lists u's wake slots in [from, to), mainly for tests
// and trace rendering.
func WakeSlotsInWindow(s Schedule, u, from, to int) []int {
	var out []int
	for t := s.NextAwake(u, from); t < to; t = s.NextAwake(u, t+1) {
		out = append(out, t)
	}
	return out
}
