package topology

import (
	"errors"
	"math"
	"testing"

	"mlbs/internal/rng"
)

func TestPaperConfig(t *testing.T) {
	c := PaperConfig(250)
	if c.N != 250 || c.AreaSide != 50 || c.Radius != 10 {
		t.Fatalf("PaperConfig = %+v", c)
	}
	if d := c.Density(); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("Density = %f, want 0.1", d)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{N: 0, AreaSide: 50, Radius: 10},
		{N: 10, AreaSide: 0, Radius: 10},
		{N: 10, AreaSide: 50, Radius: 0},
		{N: 10, AreaSide: 50, Radius: 10, MinSourceE: 5, MaxSourceE: 3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d (%+v) validated but should not", i, c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := PaperConfig(100)
	a, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source || a.SourceEcc != b.SourceEcc || a.G.M() != b.G.M() {
		t.Fatal("same seed produced different deployments")
	}
	for i := 0; i < a.G.N(); i++ {
		if a.G.Pos(i) != b.G.Pos(i) {
			t.Fatalf("node %d position differs between equal-seed runs", i)
		}
	}
}

func TestGenerateMeetsConstraints(t *testing.T) {
	for _, n := range []int{50, 150, 300} {
		cfg := PaperConfig(n)
		d, err := Generate(cfg, uint64(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !d.G.Connected() {
			t.Fatalf("n=%d: disconnected deployment accepted", n)
		}
		if d.SourceEcc < 5 || d.SourceEcc > 8 {
			t.Fatalf("n=%d: source eccentricity %d outside 5..8", n, d.SourceEcc)
		}
		ecc, _ := d.G.Eccentricity(d.Source)
		if ecc != d.SourceEcc {
			t.Fatalf("n=%d: recorded eccentricity %d, recomputed %d", n, d.SourceEcc, ecc)
		}
		for i := 0; i < d.G.N(); i++ {
			p := d.G.Pos(i)
			if p.X < 0 || p.X >= 50 || p.Y < 0 || p.Y >= 50 {
				t.Fatalf("n=%d: node %d at %v outside the 50×50 area", n, i, p)
			}
		}
	}
}

func TestGenerateExhausts(t *testing.T) {
	// 2 nodes in a huge area are almost never connected; with 3 retries the
	// generator must give up with ErrExhausted.
	cfg := Config{N: 2, AreaSide: 10000, Radius: 1, MaxRetries: 3}
	_, err := Generate(cfg, 7)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestUniformPositionsCoverage(t *testing.T) {
	cfg := PaperConfig(2000)
	r := rng.New(5)
	pos := UniformPositions(cfg, r)
	// Quadrant counts of the area should be roughly balanced.
	var q [4]int
	for _, p := range pos {
		idx := 0
		if p.X >= 25 {
			idx |= 1
		}
		if p.Y >= 25 {
			idx |= 2
		}
		q[idx]++
	}
	for i, c := range q {
		if c < 400 || c > 600 {
			t.Fatalf("area quadrant %d has %d of 2000 nodes; distribution not uniform", i, c)
		}
	}
}

func TestPaperDensities(t *testing.T) {
	ns := PaperDensities()
	if len(ns) != 6 || ns[0] != 50 || ns[5] != 300 {
		t.Fatalf("PaperDensities = %v", ns)
	}
	lo := PaperConfig(ns[0]).Density()
	hi := PaperConfig(ns[5]).Density()
	if math.Abs(lo-0.02) > 1e-12 || math.Abs(hi-0.12) > 1e-12 {
		t.Fatalf("density range = %f..%f, want 0.02..0.12", lo, hi)
	}
}

func TestGenerateBatch(t *testing.T) {
	cfg := PaperConfig(80)
	batch, err := GenerateBatch(cfg, 99, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 5 {
		t.Fatalf("batch size = %d, want 5", len(batch))
	}
	seeds := map[uint64]bool{}
	for _, d := range batch {
		if seeds[d.Seed] {
			t.Fatal("duplicate seed within batch")
		}
		seeds[d.Seed] = true
	}
	// Reproducibility of the whole batch.
	again, err := GenerateBatch(cfg, 99, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if batch[i].Seed != again[i].Seed || batch[i].Source != again[i].Source {
			t.Fatalf("batch not reproducible at trial %d", i)
		}
	}
}

func TestDensityIncreasesDegree(t *testing.T) {
	sparse, err := Generate(PaperConfig(50), 3)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Generate(PaperConfig(300), 3)
	if err != nil {
		t.Fatal(err)
	}
	if dense.G.AvgDegree() <= sparse.G.AvgDegree() {
		t.Fatalf("avg degree did not grow with density: %f vs %f",
			sparse.G.AvgDegree(), dense.G.AvgDegree())
	}
}

func BenchmarkGenerate300(b *testing.B) {
	cfg := PaperConfig(300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
