// Package topology generates the deployments the paper evaluates on:
// "50∼300 nodes, with a communication radius of 10 feet, are deployed
// uniformly to cover an interest area of 50 × 50 Sq. Ft., creating
// different densities ... The source is randomly selected with a distance
// of 5∼8 hops to the farthest node" (Section V-A).
//
// A Deployment couples the generated unit-disk graph with the chosen source
// and the sampling metadata (seed, density, eccentricity), so every
// experiment run is reproducible from its configuration alone.
package topology

import (
	"errors"
	"fmt"

	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/rng"
)

// Config describes a deployment family. The zero value is not valid; use
// PaperConfig for the paper's setting.
type Config struct {
	N          int     // number of nodes
	AreaSide   float64 // square side length, feet
	Radius     float64 // communication radius, feet
	MinSourceE int     // minimum source eccentricity (hops); 0 disables
	MaxSourceE int     // maximum source eccentricity (hops); 0 disables
	MaxRetries int     // attempts to find a connected deployment w/ valid source
}

// PaperConfig returns the paper's simulation setting for n nodes.
func PaperConfig(n int) Config {
	return Config{
		N:          n,
		AreaSide:   50,
		Radius:     10,
		MinSourceE: 5,
		MaxSourceE: 8,
		MaxRetries: 500,
	}
}

// Density returns nodes per square foot, the x-axis of the paper's figures.
func (c Config) Density() float64 { return float64(c.N) / (c.AreaSide * c.AreaSide) }

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.N < 1:
		return errors.New("topology: N must be >= 1")
	case c.AreaSide <= 0:
		return errors.New("topology: AreaSide must be positive")
	case c.Radius <= 0:
		return errors.New("topology: Radius must be positive")
	case c.MinSourceE < 0 || c.MaxSourceE < 0 || (c.MaxSourceE > 0 && c.MinSourceE > c.MaxSourceE):
		return errors.New("topology: invalid source eccentricity bounds")
	}
	return nil
}

// Deployment is a generated instance: a connected UDG plus the broadcast
// source satisfying the eccentricity constraint.
type Deployment struct {
	G           *graph.Graph
	Source      graph.NodeID
	SourceEcc   int // hop distance from Source to the farthest node ("d" in Theorem 1)
	Seed        uint64
	Cfg         Config
	Attempts    int // placements drawn before one was accepted
	SourceDraws int // candidate sources tried on the accepted placement
}

// ErrExhausted is returned when no acceptable deployment was found within
// Config.MaxRetries placements.
var ErrExhausted = errors.New("topology: retries exhausted without a connected deployment and valid source")

// Generate draws deployments from cfg with the given seed until one is
// connected and admits a source with eccentricity in the configured band.
func Generate(cfg Config, seed uint64) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	maxTries := cfg.MaxRetries
	if maxTries <= 0 {
		maxTries = 500
	}
	for attempt := 1; attempt <= maxTries; attempt++ {
		pos := UniformPositions(cfg, r)
		g := graph.FromUDG(pos, cfg.Radius)
		if !g.Connected() {
			continue
		}
		src, ecc, draws := pickSource(g, cfg, r)
		if src < 0 {
			continue
		}
		return &Deployment{
			G:           g,
			Source:      src,
			SourceEcc:   ecc,
			Seed:        seed,
			Cfg:         cfg,
			Attempts:    attempt,
			SourceDraws: draws,
		}, nil
	}
	return nil, fmt.Errorf("%w (cfg %+v seed %d)", ErrExhausted, cfg, seed)
}

// UniformPositions draws cfg.N independent uniform positions in the area.
func UniformPositions(cfg Config, r *rng.Source) []geom.Point {
	pos := make([]geom.Point, cfg.N)
	for i := range pos {
		pos[i] = geom.Point{X: r.InRange(0, cfg.AreaSide), Y: r.InRange(0, cfg.AreaSide)}
	}
	return pos
}

// pickSource samples nodes without replacement until one has eccentricity
// within [MinSourceE, MaxSourceE]; returns (-1, 0, draws) when none does.
func pickSource(g *graph.Graph, cfg Config, r *rng.Source) (graph.NodeID, int, int) {
	perm := r.Perm(g.N())
	for i, s := range perm {
		ecc, ok := g.Eccentricity(s)
		if !ok {
			return -1, 0, i + 1 // should not happen: caller checked connectivity
		}
		if cfg.MinSourceE > 0 && ecc < cfg.MinSourceE {
			continue
		}
		if cfg.MaxSourceE > 0 && ecc > cfg.MaxSourceE {
			continue
		}
		return s, ecc, i + 1
	}
	return -1, 0, len(perm)
}

// PaperDensities returns the node counts the paper sweeps (50..300 step 50)
// producing densities 0.02 .. 0.12 nodes per sq ft.
func PaperDensities() []int { return []int{50, 100, 150, 200, 250, 300} }

// GenerateBatch produces `trials` deployments for the same configuration
// with seeds derived from masterSeed. Errors on individual instances are
// returned eagerly: a failed instance means the configuration cannot
// support the experiment, which the caller must know about.
func GenerateBatch(cfg Config, masterSeed uint64, trials int) ([]*Deployment, error) {
	state := masterSeed
	out := make([]*Deployment, 0, trials)
	for i := 0; i < trials; i++ {
		seed := rng.SplitMix64(&state)
		d, err := Generate(cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", i, err)
		}
		out = append(out, d)
	}
	return out, nil
}
