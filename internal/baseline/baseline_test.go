package baseline

import (
	"testing"
	"testing/quick"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/sim"
	"mlbs/internal/topology"
)

func fig2a() *graph.Graph {
	return graph.NewBuilder(5, nil).
		AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 3).AddEdge(1, 4).
		AddEdge(2, 3).
		Build()
}

func pathGraph(n int) *graph.Graph {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	return graph.FromUDG(pos, 1)
}

func TestSyncFig2a(t *testing.T) {
	in := core.Sync(fig2a(), 0)
	res, err := New26().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	// Layer 0 fires at 1, color {2} at 2 covers {4,5}; color {3} has lost
	// its receivers and stays silent.
	if res.PA != 2 {
		t.Fatalf("P(A) = %d, want 2", res.PA)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestLayerBlockingCostsRounds(t *testing.T) {
	// Pipeline graph: source s=0 with three mutually conflicting children
	// (common uncovered neighbor 4), each owing work — child 1 roots a long
	// tail, children 2 and 3 own pendants 8 and 9. The baseline drains all
	// three colors of layer 1 before the tail may advance; G-OPT fires the
	// pendant relays concurrently with the tail (they stop conflicting once
	// node 4 is covered) and finishes in d rounds.
	//
	//        1 ─ 5 ─ 6 ─ 7
	//   0 ── 2 ─ 8      (4 adjacent to 1,2,3)
	//        3 ─ 9
	b := graph.NewBuilder(10, nil)
	b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3)
	b.AddEdge(1, 4).AddEdge(2, 4).AddEdge(3, 4)
	b.AddEdge(1, 5).AddEdge(5, 6).AddEdge(6, 7)
	b.AddEdge(2, 8).AddEdge(3, 9)
	in := core.Sync(b.Build(), 0)

	base, err := New26().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	gopt, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	if !gopt.Exact {
		t.Fatal("G-OPT inexact on 8 nodes")
	}
	if base.PA <= gopt.PA {
		t.Fatalf("baseline %d should lose to G-OPT %d on the pipeline graph", base.PA, gopt.PA)
	}
}

func TestDutyCycleWaitsForWakes(t *testing.T) {
	// Path 0–1–2. Node 1 wakes only at slot 7 (period 10). The baseline
	// must stall layer 1 until then.
	g := pathGraph(3)
	wake := dutycycle.NewFixed(10, 10, [][]int{{1}, {7}, {9}})
	in := core.Async(g, 0, wake, 0)
	res, err := New17().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 7 {
		t.Fatalf("P(A) = %d, want 7", res.PA)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestDutySameColorDifferentSlots(t *testing.T) {
	// Star source with two compatible children relaying to separate
	// pendants; children wake at different slots and both must transmit.
	b := graph.NewBuilder(5, nil)
	b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(2, 4)
	g := b.Build()
	wake := dutycycle.NewFixed(10, 10, [][]int{{0}, {3}, {5}, {9}, {9}})
	in := core.Async(g, 0, wake, 0)
	res, err := New17().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	if res.PA != 5 {
		t.Fatalf("P(A) = %d, want 5 (children fire at 3 and 5)", res.PA)
	}
	if len(res.Schedule.Advances) != 3 {
		t.Fatalf("advances = %d, want 3 (source, child@3, child@5)", len(res.Schedule.Advances))
	}
}

func TestNew17DegeneratesToNew26OnSync(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(100), 8)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	a, err := New26().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New17().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.PA != b.PA {
		t.Fatalf("26-approx %d != 17-approx %d on the synchronous system", a.PA, b.PA)
	}
}

// Property: the baseline is valid, survives physics, and is never better
// than exact G-OPT (it is a feasible schedule of the same model).
func TestQuickBaselineSoundAndDominated(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := topology.Config{N: 40, AreaSide: 30, Radius: 10, MaxRetries: 60}
		d, err := topology.Generate(cfg, seed)
		if err != nil {
			return true
		}
		wake := dutycycle.NewUniform(d.G.N(), 6, seed, 0)
		for _, in := range []core.Instance{
			core.Sync(d.G, d.Source),
			core.Async(d.G, d.Source, wake, 0),
		} {
			base, err := New17().Schedule(in)
			if err != nil {
				return false
			}
			if err := base.Schedule.Validate(in); err != nil {
				return false
			}
			rep, err := sim.Replay(in, base.Schedule)
			if err != nil || !rep.Completed {
				return false
			}
			gopt, err := core.NewGOPT(100_000).Schedule(in)
			if err != nil {
				return false
			}
			if gopt.Exact && base.PA < gopt.PA {
				return false // beating the optimum is impossible
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApprox26At300(b *testing.B) {
	d, err := topology.Generate(topology.PaperConfig(300), 3)
	if err != nil {
		b.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	s := New26()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(in); err != nil {
			b.Fatal(err)
		}
	}
}
