// Package baseline implements the two state-of-the-art comparison points of
// Section V: the 26-approximation of Chen et al. [2] for the round-based
// system and the 17-approximation of Jiao et al. [12] for the duty-cycle
// system. Both are BFS-layer synchronized: relays of hop distance ℓ are
// colored once, the colors fire one after another, and layer ℓ+1 starts
// only when layer ℓ has finished — exactly the blocking behavior whose cost
// the paper's pipeline removes ("they require all relays in each 1-hop
// propagation to be synchronized together", Section I).
//
// Two deliberate kindnesses keep the comparison honest: senders that have
// lost all uncovered receivers by their firing time stay silent, and colors
// that end up empty consume no rounds. The latency gap to the paper's
// schedulers therefore measures pipelining, not implementation sloth.
package baseline

import (
	"sort"

	"mlbs/internal/bitset"
	"mlbs/internal/color"
	"mlbs/internal/core"
	"mlbs/internal/graph"
)

// layered is the common engine: per BFS layer, one greedy coloring, colors
// fired sequentially; the duty-cycle variant waits for each sender's wake
// slot.
type layered struct {
	name string
}

// New26 returns the round-based BFS-layer baseline (Chen et al. [2]).
func New26() core.Scheduler { return &layered{name: "26-approx"} }

// New17 returns the duty-cycle BFS-layer baseline (Jiao et al. [12]). It is
// the same scheduler: the wake schedule of the instance induces the
// per-sender waits; on an AlwaysAwake schedule it degenerates to New26.
func New17() core.Scheduler { return &layered{name: "17-approx"} }

// Name implements core.Scheduler.
func (l *layered) Name() string { return l.name }

// Schedule implements core.Scheduler.
func (l *layered) Schedule(in core.Instance) (*core.Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	g := in.G
	n := g.N()
	w := bitset.New(n)
	w.Add(in.Source)
	for _, u := range in.PreCovered {
		w.Add(u)
	}
	sched := &core.Schedule{Source: in.Source, Start: in.Start}
	layers := g.Layers(in.Source)

	t := in.Start
	for _, layer := range layers {
		if w.Len() == n {
			break
		}
		// Candidates of this layer: covered members still owing neighbors.
		var cands []graph.NodeID
		for _, u := range layer {
			if w.Has(u) && g.Nbr(u).AnyDifference(w) {
				cands = append(cands, u)
			}
		}
		if len(cands) == 0 {
			continue
		}
		// One coloring per layer, never recomputed while the layer drains —
		// the blocking discipline of the baselines. Conflicts only shrink
		// as coverage grows, so the stale partition stays conflict-free.
		classes := color.GreedyPartition(g, w, cands)
		for _, cls := range classes {
			t = l.fireClass(in, sched, w, cls, t)
		}
	}
	return &core.Result{Scheduler: l.name, Schedule: sched, PA: sched.PA()}, nil
}

// fireClass transmits one color class starting no earlier than t and
// returns the next free slot. Senders wait for their own wake slots; those
// with no uncovered receivers left stay silent.
func (l *layered) fireClass(in core.Instance, sched *core.Schedule, w bitset.Set, cls color.Class, t int) int {
	// Group the class members by their first wake slot at or after t.
	bySlot := make(map[int][]graph.NodeID)
	var slots []int
	for _, u := range cls {
		s := in.Wake.NextAwake(u, t)
		if len(bySlot[s]) == 0 {
			slots = append(slots, s)
		}
		bySlot[s] = append(bySlot[s], u)
	}
	sort.Ints(slots)
	next := t
	for _, s := range slots {
		var senders []graph.NodeID
		covered := bitset.New(w.Capacity())
		for _, u := range bySlot[s] {
			if !in.G.Nbr(u).AnyDifference(w) {
				continue // lost all receivers while waiting; stay silent
			}
			senders = append(senders, u)
			covered.UnionWith(in.G.Nbr(u))
		}
		if len(senders) == 0 {
			continue
		}
		covered.DifferenceWith(w)
		sort.Ints(senders)
		sched.Advances = append(sched.Advances, core.Advance{
			T:       s,
			Senders: senders,
			Covered: covered.Members(),
		})
		w.UnionWith(covered)
		next = s + 1
	}
	return next
}
