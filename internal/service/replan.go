package service

import (
	"context"
	"errors"
	"time"

	"mlbs/internal/churn"
	"mlbs/internal/core"
	"mlbs/internal/graphio"
	"mlbs/internal/obs"
)

// ReplanRequest asks the service to repair a cached plan after a topology
// delta instead of searching the mutated instance from scratch. The
// embedded envelope selects the *base* instance the delta applies to
// (exactly one of Instance and Generator) and the engine used for the
// residual (or fallback cold) search; its NoCache bypasses the
// replan-cache lookup only (the outcome is still stored, and the base
// plan still resolves through the plan cache), and its ImproveBudget is
// ignored. Repairs are cached by (base digest, delta digest); cold
// repairs — full engine searches — are additionally published into the
// plan cache under the mutated instance's digest.
type ReplanRequest struct {
	WorkloadRequest
	// Delta is the ordered event sequence to apply to the base instance.
	Delta churn.Delta
}

// ReplanResponse is one replan answer. Result is shared and immutable.
type ReplanResponse struct {
	// BaseDigest / Digest content-address the base and mutated instances.
	BaseDigest string
	Digest     string
	Scheduler  string
	Result     *core.Result
	// Strategy, KeptAdvances and BaseAdvances report the blast-radius
	// classification (see churn.Strategy).
	Strategy     churn.Strategy
	KeptAdvances int
	BaseAdvances int
	// BasePlanHit reports whether the base plan came from the plan cache.
	// It is only meaningful when this caller actually computed the repair
	// (a replan-cache hit resolves no base plan at all);
	// CacheHit/Coalesced describe the replan cache.
	BasePlanHit bool
	CacheHit    bool
	Coalesced   bool
	Elapsed     time.Duration
}

// replanJob carries one repair onto a worker: the base plan (shared,
// immutable — the replanner never mutates it) and the delta.
type replanJob struct {
	basePlan *core.Schedule
	delta    churn.Delta
}

// replanOutcome is the cached product of one repair. The mutated instance
// itself is not retained — its digest is, and the repaired plan is stored
// in the plan cache under that digest.
type replanOutcome struct {
	res          *core.Result
	digest       string
	strategy     churn.Strategy
	keptAdvances int
	baseAdvances int
}

// execReplan runs one repair on the worker's reusable replanner (which
// wraps the same per-spec engine the worker's plan searches use — one
// goroutine, one arena set).
func (w *worker) execReplan(s *Service, jb job) (*replanOutcome, error) {
	span := jb.tr.Root().Child("repair")
	defer span.End()
	sp := resolveSpec(jb.sp, jb.in)
	rp, ok := w.replanners[sp]
	if !ok {
		rp = churn.NewReplanner(churn.ReplanConfig{Scheduler: w.scheduler(sp)})
		w.replanners[sp] = rp
	}
	rr, err := rp.Replan(jb.in, jb.rep.basePlan, jb.rep.delta)
	if err != nil {
		return nil, err
	}
	s.engineStates.Add(int64(rr.Result.Stats.Expanded))
	s.engineMemoHits.Add(int64(rr.Result.Stats.MemoHits))
	if span != nil {
		span.SetStr("strategy", string(rr.Strategy))
		span.SetInt("kept_advances", int64(rr.KeptAdvances))
		span.SetInt("base_advances", int64(rr.BaseAdvances))
		if rr.BaseAdvances > 0 {
			span.SetFloat("kept_frac", float64(rr.KeptAdvances)/float64(rr.BaseAdvances))
		}
		span.SetInt("expanded", int64(rr.Result.Stats.Expanded))
		span.SetInt("end_slot", int64(rr.Result.Schedule.End()))
	}
	digest, err := graphio.InstanceDigest(rr.Instance)
	if err != nil {
		return nil, err
	}
	return &replanOutcome{
		res:          rr.Result,
		digest:       digest.String(),
		strategy:     rr.Strategy,
		keptAdvances: rr.KeptAdvances,
		baseAdvances: rr.BaseAdvances,
	}, nil
}

// dispatchReplan queues one repair on the worker shard owned by key and
// waits for its outcome.
func (s *Service) dispatchReplan(ctx context.Context, key string, base core.Instance, sp spec, rj *replanJob) (*replanOutcome, error) {
	r, err := s.dispatchJob(ctx, key, job{in: base, sp: sp, rep: rj, tr: obs.FromContext(ctx)})
	if err != nil {
		return nil, err
	}
	return r.rep, r.err
}

// Replan answers one churn request: resolve the base instance, obtain its
// plan through the plan cache, then serve the repaired plan from the
// replan cache keyed by (base digest, delta digest) — repairing at most
// once even under concurrent identical requests. Cold repairs are
// additionally stored in the plan cache under the *mutated* instance's
// digest (they are exactly what a Plan request would compute), so the
// churned topology content-addresses like any other.
func (s *Service) Replan(ctx context.Context, req ReplanRequest) (ReplanResponse, error) {
	start := time.Now()
	if err := s.enter(); err != nil {
		return ReplanResponse{}, err
	}
	defer s.inflight.Done()
	if err := ctx.Err(); err != nil {
		return ReplanResponse{}, err
	}
	sp, err := parseSpec(req.Scheduler, req.Budget)
	if err != nil {
		return ReplanResponse{}, err
	}
	if err := req.Delta.Validate(); err != nil {
		return ReplanResponse{}, err
	}
	base, err := s.resolve(req.WorkloadRequest)
	if err != nil {
		return ReplanResponse{}, err
	}
	if base.G == nil {
		return ReplanResponse{}, errors.New("service: replan base has no graph")
	}
	baseDigest, err := graphio.InstanceDigest(base)
	if err != nil {
		return ReplanResponse{}, err
	}
	deltaDigest, err := churn.DeltaDigest(req.Delta)
	if err != nil {
		return ReplanResponse{}, err
	}
	pkey := planKey(baseDigest, sp)
	rkey := pkey + "|replan|" + deltaDigest.String()
	s.replans.Add(1)
	tr := obs.FromContext(ctx)
	cs := tr.Root().Child("cache")

	// The base plan resolves lazily, inside the repair computation: a
	// replan-cache hit must not pay a base-plan search (the base may have
	// been evicted from the plan cache while the repair is still hot).
	// Steady-state churn traffic repairing the same base over and over
	// finds the base plan in the plan cache on every actual repair.
	var baseHit bool
	out, hit, coalesced, err := cachedCompute(ctx, s.rcache, rkey, req.NoCache,
		func(ctx context.Context) (*replanOutcome, error) {
			basePlan, planHit, _, err := s.planFor(ctx, pkey, base, sp, false, 0)
			if err != nil {
				return nil, err
			}
			baseHit = planHit
			return s.dispatchReplan(ctx, rkey, base, sp, &replanJob{basePlan: basePlan.Schedule, delta: req.Delta})
		})
	if err != nil {
		cs.End()
		s.errs.Add(1)
		return ReplanResponse{}, err
	}
	if cs != nil {
		cs.SetBool("hit", hit)
		cs.SetBool("coalesced", coalesced)
		cs.SetBool("base_plan_hit", baseHit)
		cs.SetStr("strategy", string(out.strategy))
	}
	cs.End()
	if !hit && !coalesced {
		switch out.strategy {
		case churn.StrategyPrefix:
			s.replanPrefix.Add(1)
		case churn.StrategyIncremental:
			s.replanIncremental.Add(1)
		default:
			s.replanCold.Add(1)
			// A cold repair ran the actual engine on the mutated instance —
			// byte-for-byte what a Plan request would compute — so publish
			// it under the mutated instance's own digest for later Plan
			// traffic. Prefix/incremental repairs stay in the replan cache
			// only: they are valid but possibly suboptimal, and a Plan
			// request for an exactness-claiming scheduler must never be
			// answered with one.
			s.cache.Put(planKeyString(out.digest, sp), out.res)
		}
	}
	return ReplanResponse{
		BaseDigest:   baseDigest.String(),
		Digest:       out.digest,
		Scheduler:    out.res.Scheduler,
		Result:       out.res,
		Strategy:     out.strategy,
		KeptAdvances: out.keptAdvances,
		BaseAdvances: out.baseAdvances,
		BasePlanHit:  baseHit,
		CacheHit:     hit,
		Coalesced:    coalesced,
		Elapsed:      time.Since(start),
	}, nil
}
