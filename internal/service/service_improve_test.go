package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/topology"
)

// dutyInstance builds a duty-cycle paper instance — the system with the
// widest approximation-to-optimal gap, so the improver has real headroom.
func dutyInstance(t testing.TB, n int, seed uint64, r int) *core.Instance {
	t.Helper()
	dep, err := topology.Generate(topology.PaperConfig(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	wake := dutycycle.NewUniform(n, r, seed^0xA5, 0)
	in := core.Async(dep.G, dep.Source, wake, 0)
	return &in
}

// TestPlanImproveColdSync: a cold miss with a budget spends it
// synchronously — the very first answer is already tighter than the raw
// approximation, published as Generation 0 with Improved set.
func TestPlanImproveColdSync(t *testing.T) {
	in := dutyInstance(t, 120, 1, 10)

	// Reference: what the raw approximation serves without a budget.
	raw := New(Config{Workers: 1})
	defer raw.Close()
	rawResp, err := raw.Plan(context.Background(), Request{Instance: in, Scheduler: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if rawResp.Result.Improved || rawResp.Result.Generation != 0 {
		t.Fatalf("budget-0 plan marked improved: %+v", rawResp.Result)
	}

	s := New(Config{Workers: 1})
	defer s.Close()
	resp, err := s.Plan(context.Background(), Request{Instance: in, Scheduler: "baseline", ImproveBudget: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("first request reported a hit")
	}
	res := resp.Result
	if !res.Improved || res.Generation != 0 {
		t.Fatalf("cold sync improve: Improved=%v Generation=%d", res.Improved, res.Generation)
	}
	if res.Schedule.End() >= rawResp.Result.Schedule.End() {
		t.Fatalf("sync improve did not tighten: raw end %d, improved end %d",
			rawResp.Result.Schedule.End(), res.Schedule.End())
	}
	if res.PA != res.Schedule.End() {
		t.Fatalf("PA %d out of sync with schedule end %d", res.PA, res.Schedule.End())
	}
	if err := res.Schedule.Validate(*in); err != nil {
		t.Fatalf("served improved schedule invalid: %v", err)
	}
	m := s.Metrics()
	if m.Improvements == 0 || m.ImproveSlotsSaved == 0 || m.Generations[0] == 0 {
		t.Fatalf("improve metrics empty: %+v", m)
	}
}

// TestPlanImproveBackground: warm hits with a budget are served instantly
// from the cache and upgraded in the background, re-published under the
// same digest with an advancing generation.
func TestPlanImproveBackground(t *testing.T) {
	in := dutyInstance(t, 120, 2, 10)
	s := New(Config{Workers: 2, ImproveWorkers: 1})
	defer s.Close()
	ctx := context.Background()

	// Cold fill WITHOUT a budget: the cache holds the raw approximation.
	cold, err := s.Plan(ctx, Request{Instance: in, Scheduler: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	rawEnd := cold.Result.Schedule.End()

	// Warm hit with a budget serves the cached plan as-is and enqueues the
	// upgrade; poll until a background publication lands.
	deadline := time.Now().Add(10 * time.Second)
	var got *core.Result
	for {
		resp, err := s.Plan(ctx, Request{Instance: in, Scheduler: "baseline", ImproveBudget: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.CacheHit {
			t.Fatal("warm request missed")
		}
		if resp.Result.Generation > 0 {
			got = resp.Result
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no background upgrade after 10s: %+v", s.Metrics())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !got.Improved || got.Schedule.End() >= rawEnd {
		t.Fatalf("background upgrade bogus: gen %d improved %v end %d (raw %d)",
			got.Generation, got.Improved, got.Schedule.End(), rawEnd)
	}
	if err := got.Schedule.Validate(*in); err != nil {
		t.Fatalf("upgraded schedule invalid: %v", err)
	}
	m := s.Metrics()
	if m.ImproveQueued == 0 || m.Improvements == 0 {
		t.Fatalf("background metrics empty: %+v", m)
	}
}

// TestConcurrentPlanAndUpgrade is the acceptance race test: 64 goroutines
// hammer Plan on one digest while the background pool re-publishes
// upgrades under it. Every reader asserts the (generation, end-slot) pair
// it observes is monotone — generation never moves backwards, the plan
// never worsens. Run under -race in CI.
func TestConcurrentPlanAndUpgrade(t *testing.T) {
	in := dutyInstance(t, 150, 3, 10)
	s := New(Config{Workers: 4, ImproveWorkers: 2, CacheCapacity: 1 << 12})
	defer s.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastGen, lastEnd := -1, int(^uint(0)>>1)
			for i := 0; i < 30; i++ {
				resp, err := s.Plan(ctx, Request{Instance: in, Scheduler: "baseline", ImproveBudget: 2 * time.Millisecond})
				if err != nil {
					errc <- err
					return
				}
				res := resp.Result
				if res.Generation < lastGen {
					t.Errorf("generation regressed %d → %d", lastGen, res.Generation)
					return
				}
				end := res.Schedule.End()
				if end > lastEnd {
					t.Errorf("plan worsened: end %d → %d", lastEnd, end)
					return
				}
				if res.Generation > lastGen && end == lastEnd && !res.Improved && res.Generation > 0 {
					t.Errorf("generation %d advanced without Improved", res.Generation)
					return
				}
				lastGen, lastEnd = res.Generation, end
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Improvements == 0 {
		t.Fatalf("64-goroutine run produced no upgrades: %+v", m)
	}
	t.Logf("improvements %d, slots saved %d, queued %d, dropped %d, generations %v",
		m.Improvements, m.ImproveSlotsSaved, m.ImproveQueued, m.ImproveDropped, m.Generations)
}

// TestImproveBudgetZeroBitIdentical: budget-0 requests on a service with
// an improve pool behave exactly as before — no Improved flag, generation
// 0, identical schedule to a pool-less service.
func TestImproveBudgetZeroBitIdentical(t *testing.T) {
	in := dutyInstance(t, 100, 4, 10)
	a := New(Config{Workers: 1})
	defer a.Close()
	b := New(Config{Workers: 1, ImproveWorkers: 2})
	defer b.Close()
	ctx := context.Background()
	ra, err := a.Plan(ctx, Request{Instance: in, Scheduler: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Plan(ctx, Request{Instance: in, Scheduler: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Result.Schedule.End() != rb.Result.Schedule.End() ||
		rb.Result.Improved || rb.Result.Generation != 0 {
		t.Fatalf("budget-0 behavior diverged: %+v vs %+v", ra.Result, rb.Result)
	}
	if m := b.Metrics(); m.ImproveQueued != 0 || m.Improvements != 0 {
		t.Fatalf("budget-0 traffic touched the improve pool: %+v", m)
	}
}
