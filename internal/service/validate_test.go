package service

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mlbs/internal/graphio"
	"mlbs/internal/reliability"
)

func validateService(t *testing.T) *Service {
	t.Helper()
	s := New(Config{Workers: 2, CacheCapacity: 64})
	t.Cleanup(s.Close)
	return s
}

func TestValidateBasic(t *testing.T) {
	s := validateService(t)
	ctx := context.Background()
	resp, err := s.Validate(ctx, ValidateRequest{
		WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 80, Seed: 3}},
		Loss:            reliability.LossModel{Rate: 0.1, Seed: 1},
		Trials:          150,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := resp.Report
	if rep == nil || rep.Trials != 150 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.NodeCovered) != 80 {
		t.Fatalf("node coverage over %d nodes, want 80", len(rep.NodeCovered))
	}
	if rep.MeanDeliveryRatio <= 0 || rep.MeanDeliveryRatio > 1 {
		t.Fatalf("delivery ratio %v", rep.MeanDeliveryRatio)
	}
	if len(resp.Digest) != 64 {
		t.Fatalf("digest %q", resp.Digest)
	}
	if resp.CacheHit {
		t.Fatal("first validation cannot be a cache hit")
	}
	if resp.Repair != nil {
		t.Fatal("repair present without a target")
	}

	// Second identical request: reliability-cache hit serving the same
	// immutable report.
	again, err := s.Validate(ctx, ValidateRequest{
		WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 80, Seed: 3}},
		Loss:            reliability.LossModel{Rate: 0.1, Seed: 1},
		Trials:          150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || !again.PlanCacheHit {
		t.Fatalf("repeat validation: CacheHit=%v PlanCacheHit=%v, want both", again.CacheHit, again.PlanCacheHit)
	}
	if again.Report != rep {
		t.Fatal("cache hit returned a different report object")
	}

	m := s.Metrics()
	if m.Validations != 2 || m.ValidateHits != 1 || m.ValidateMisses != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.MonteCarloTrials != 150 {
		t.Fatalf("MC trials = %d, want 150 (the hit ran none)", m.MonteCarloTrials)
	}
}

// TestValidateKeyedByLossParams: the reliability cache must distinguish
// every parameter the answer depends on.
func TestValidateKeyedByLossParams(t *testing.T) {
	s := validateService(t)
	ctx := context.Background()
	base := ValidateRequest{
		WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 60, Seed: 1}},
		Loss:            reliability.LossModel{Rate: 0.05, Seed: 1},
		Trials:          80,
	}
	if _, err := s.Validate(ctx, base); err != nil {
		t.Fatal(err)
	}
	variants := []ValidateRequest{base, base, base, base}
	variants[0].Loss.Rate = 0.1
	variants[1].Loss.Seed = 2
	variants[2].Trials = 81
	variants[3].Target = 0.99
	for i, v := range variants {
		resp, err := s.Validate(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit {
			t.Fatalf("variant %d shared the base cache entry", i)
		}
	}
}

// TestValidateDigestStableReports pins the acceptance criterion: two
// independent services answering the same request produce byte-identical
// canonical reports — validation is a pure function of content address +
// loss parameters.
func TestValidateDigestStableReports(t *testing.T) {
	req := ValidateRequest{
		WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 100, Seed: 5}},
		Loss:            reliability.LossModel{Rate: 0.08, Seed: 11},
		Trials:          200,
	}
	var encoded [][]byte
	for i := 0; i < 2; i++ {
		s := New(Config{Workers: 3})
		resp, err := s.Validate(context.Background(), req)
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		data, err := graphio.EncodeReliabilityReport(resp.Report)
		if err != nil {
			t.Fatal(err)
		}
		encoded = append(encoded, data)
	}
	if string(encoded[0]) != string(encoded[1]) {
		t.Fatal("independent services produced different canonical reports")
	}
}

func TestValidateWithRepairTarget(t *testing.T) {
	s := validateService(t)
	resp, err := s.Validate(context.Background(), ValidateRequest{
		WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 100, Seed: 5}},
		Loss:            reliability.LossModel{Rate: 0.1, Seed: 1},
		Trials:          150,
		Target:          0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := resp.Repair
	if rr == nil {
		t.Fatal("no repair result despite target")
	}
	if resp.Report != rr.After {
		t.Fatal("response report must be the repaired estimate")
	}
	if rr.After.MeanDeliveryRatio < rr.Before.MeanDeliveryRatio {
		t.Fatalf("repair lowered delivery: %v → %v", rr.Before.MeanDeliveryRatio, rr.After.MeanDeliveryRatio)
	}
}

// TestValidateConcurrentCoalesces: concurrent identical validations run
// the Monte-Carlo batch exactly once.
func TestValidateConcurrentCoalesces(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	req := ValidateRequest{
		WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 80, Seed: 2}},
		Loss:            reliability.LossModel{Rate: 0.05, Seed: 1},
		Trials:          100,
	}
	const goroutines = 16
	var wg sync.WaitGroup
	resps := make([]ValidateResponse, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Validate(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	first := resps[0].Report
	for i := 1; i < goroutines; i++ {
		if !reflect.DeepEqual(resps[i].Report, first) {
			t.Fatalf("goroutine %d saw a different report", i)
		}
	}
	if got := s.Metrics().MonteCarloTrials; got != 100 {
		t.Fatalf("ran %d Monte-Carlo trials for %d identical requests, want 100", got, goroutines)
	}
}

func TestValidateRejectsBadRequests(t *testing.T) {
	s := validateService(t)
	ctx := context.Background()
	gen40 := WorkloadRequest{Generator: &Generator{N: 40, Seed: 1}}
	cases := []ValidateRequest{
		{WorkloadRequest: gen40, Loss: reliability.LossModel{Rate: 2}},
		{WorkloadRequest: gen40, Trials: MaxValidateTrials + 1},
		{WorkloadRequest: gen40, Target: 1.5},
		{WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 40, Seed: 1}, Scheduler: "nope"}},
		{},
	}
	for i, req := range cases {
		if _, err := s.Validate(ctx, req); err == nil {
			t.Fatalf("case %d accepted: %+v", i, req)
		}
	}
}

func TestValidateNoCacheRecomputesButStores(t *testing.T) {
	s := validateService(t)
	ctx := context.Background()
	req := ValidateRequest{
		WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 60, Seed: 1}, NoCache: true},
		Loss:            reliability.LossModel{Rate: 0.05, Seed: 3},
		Trials:          64,
	}
	for i := 0; i < 2; i++ {
		resp, err := s.Validate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit {
			t.Fatalf("request %d: NoCache request reported a hit", i)
		}
	}
	if got := s.Metrics().MonteCarloTrials; got != 128 {
		t.Fatalf("MC trials = %d, want 128 (two cold batches)", got)
	}
	// The stored result now serves cached traffic.
	req.NoCache = false
	resp, err := s.Validate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("NoCache results must still populate the cache")
	}
}

func TestValidateAfterCloseFails(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	if _, err := s.Validate(context.Background(), ValidateRequest{WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 10, Seed: 1}}}); err == nil {
		t.Fatal("validate after close succeeded")
	}
}

func ExampleService_Validate() {
	s := New(Config{Workers: 2})
	defer s.Close()
	resp, err := s.Validate(context.Background(), ValidateRequest{
		WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 100, Seed: 5}},
		Loss:            reliability.LossModel{Rate: 0.08, Seed: 11},
		Trials:          200,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(resp.Report.Trials, len(resp.Report.NodeCovered))
	// Output: 200 100
}
