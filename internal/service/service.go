// Package service is the concurrent plan-serving layer: it fronts the
// schedulers with a content-addressed cache and a sharded worker pool so
// many clients can request broadcast plans at once while the PR 1
// allocation discipline survives — every worker goroutine owns its own
// reusable search engine (scratch + memo arenas), and a warm cache hit
// never touches an engine at all.
//
// Request flow:
//
//	Plan → resolve instance → InstanceDigest → cache key (digest|scheduler)
//	     → hit: return the immutable cached Result
//	     → miss: singleflight-dispatch one search onto the worker shard
//	       picked by the key; coalesced callers wait for the leader.
//
// Results handed out by the service are shared and immutable: callers must
// not modify the schedules they receive.
package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mlbs/internal/aggregate"
	"mlbs/internal/baseline"
	"mlbs/internal/churn"
	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/emodel"
	"mlbs/internal/graphio"
	"mlbs/internal/improve"
	"mlbs/internal/interference"
	"mlbs/internal/obs"
	"mlbs/internal/plancache"
	"mlbs/internal/reliability"
	"mlbs/internal/topology"
)

// ErrClosed is returned by Plan after Close.
var ErrClosed = errors.New("service: closed")

// Config sizes the service. The zero value selects the defaults noted on
// each field.
type Config struct {
	// Workers is the number of scheduling goroutines, each owning one
	// reusable engine per scheduler spec it has seen. Default 4.
	Workers int
	// QueueDepth is each worker's job buffer. Default 16.
	QueueDepth int
	// CacheCapacity bounds the plan cache (entries). Default 4096.
	CacheCapacity int
	// CacheShards is the plan cache's shard count. Default 16.
	CacheShards int
	// GenCacheCapacity bounds the generated-deployment cache that backs
	// Generator requests. Default 256.
	GenCacheCapacity int
	// ValidateCacheCapacity bounds the reliability-report cache that backs
	// Validate requests (entries). Default 1024.
	ValidateCacheCapacity int
	// ReplanCacheCapacity bounds the repaired-plan cache keyed by
	// (base digest, delta digest) that backs Replan requests. Default 1024.
	ReplanCacheCapacity int
	// AggregateCacheCapacity bounds the convergecast-plan cache that backs
	// Aggregate requests (entries). Default 1024.
	AggregateCacheCapacity int
	// ImproveWorkers is the background anytime-improver pool size. 0 (the
	// default) disables background improvement entirely: warm hits with an
	// improve budget are served as-is, exactly the pre-improver behavior.
	// Cold-path synchronous improvement only needs a request budget, not
	// the pool.
	ImproveWorkers int
	// ImproveQueue bounds the background improvement queue; a full queue
	// drops the upgrade request (counted, never blocks a Plan). Default 64.
	ImproveQueue int
}

// Generator asks the service to build the instance itself from the
// paper's topology family — the request form remote clients use when they
// don't want to ship a full instance encoding.
type Generator struct {
	// N is the node count of the paper deployment (Section V-A setting).
	N int `json:"n"`
	// Seed is the deployment seed.
	Seed uint64 `json:"seed"`
	// DutyRate r selects the duty-cycle system when > 1; 0 or 1 is the
	// round-based synchronous system.
	DutyRate int `json:"r,omitempty"`
	// WakeSeed seeds the uniform wake schedule; 0 derives Seed^0xA5, the
	// same convention mlb-run uses.
	WakeSeed uint64 `json:"wake_seed,omitempty"`
	// Channels is the orthogonal-channel count K of the generated
	// instance; 0 and 1 both select the single-channel system.
	Channels int `json:"channels,omitempty"`
	// SINR selects the physical interference model for the generated
	// instance: all three zero (the default) keeps the paper's protocol
	// model; any nonzero field requires SINRBeta > 0. Per-node powers are
	// not exposed here — ship a full Instance encoding for those.
	SINRAlpha float64 `json:"sinr_alpha,omitempty"`
	SINRBeta  float64 `json:"sinr_beta,omitempty"`
	SINRNoise float64 `json:"sinr_noise,omitempty"`
}

// WorkloadRequest is the shared request envelope of every workload the
// service answers — plan, aggregate, validate, replan. It selects the
// instance (exactly one of Instance and Generator must be set, with the
// generator carrying the duty-cycle/channel/SINR knobs), the scheduler,
// and the caching discipline. Endpoint-specific request types embed it
// and add their own fields on top.
type WorkloadRequest struct {
	Instance  *core.Instance
	Generator *Generator
	// Scheduler selects the planning algorithm. For broadcast plans: gopt
	// (default), opt, emodel, energy, baseline (resolves to the 26- or
	// 17-approximation by wake system). For aggregation: agg-spt (default)
	// or agg-bounded.
	Scheduler string
	// Budget caps search effort for gopt/opt; 0 selects the default.
	Budget int
	// NoCache bypasses the endpoint's own cache lookup (the result is
	// still stored) — load generators use it to measure the cold path.
	NoCache bool
	// ImproveBudget is the anytime-improvement budget for workloads that
	// support it (plans only today). 0 (the default) keeps the
	// pre-improver serving path bit-identical. On a cache miss the budget
	// is spent synchronously after the base search, so the caller's first
	// answer is already tightened; on a hit the cached plan is served
	// instantly and a background upgrade is enqueued (when the pool is
	// enabled and the plan is not already exact), re-published under the
	// same key with the next Generation. The budget is deliberately not
	// part of the cache key: all budgets share one entry per (digest,
	// scheduler), which is what lets generations accumulate.
	ImproveBudget time.Duration
}

// Request is one plan request — the original name of the shared envelope,
// kept as an alias so plan call sites read as before.
type Request = WorkloadRequest

// Response is one plan answer. Result is shared and immutable.
type Response struct {
	Digest    string
	Scheduler string
	Result    *core.Result
	CacheHit  bool
	Coalesced bool
	Elapsed   time.Duration
	// Err is set instead of Result on per-item failures inside PlanBatch.
	Err error
}

// Metrics is a point-in-time snapshot of service traffic.
type Metrics struct {
	Requests     int64
	Hits         int64
	Misses       int64
	Coalesced    int64
	Searches     int64
	Errors       int64
	Evictions    int64
	CacheEntries int
	// CacheCapacity is the plan cache's entry bound, paired with
	// CacheEntries so occupancy is a ratio, not a bare count.
	CacheCapacity int
	// Engine totals accumulated across every search the service ran
	// (plans, cold replans): branch-and-bound states expanded and memo
	// hits. These are the search-internal counters behind
	// mlbs_engine_states_total.
	EngineStates   int64
	EngineMemoHits int64
	// Validation traffic: request count, Monte-Carlo replays executed, and
	// the reliability-report cache's counters.
	Validations      int64
	MonteCarloTrials int64
	ValidateHits     int64
	ValidateMisses   int64
	ValidateEntries  int
	// Aggregation traffic: convergecast request count, scheduler runs
	// actually executed (misses), and the convergecast-plan cache's
	// counters.
	Aggregates       int64
	AggSearches      int64
	AggregateHits    int64
	AggregateMisses  int64
	AggregateEntries int
	// Churn traffic: replan request count, computed repairs by strategy
	// (see churn.Strategy), and the replan cache's counters.
	Replans           int64
	ReplanPrefix      int64
	ReplanIncremental int64
	ReplanCold        int64
	ReplanHits        int64
	ReplanMisses      int64
	ReplanEntries     int
	// Anytime-improvement traffic: accepted upgrades (sync + background
	// publications), total latency slots shaved off served plans, and the
	// background queue's accounting. Generations histograms publications
	// by the generation they produced (bucket i counts generation i;
	// the last bucket absorbs everything beyond).
	Improvements      int64
	ImproveSlotsSaved int64
	ImproveQueued     int64
	ImproveDropped    int64
	// ImproveQueueDepth is the background improver queue's current
	// occupancy (0 when the pool is disabled).
	ImproveQueueDepth int
	Generations       [improveGenBuckets]int64
	// HitLatency/MissLatency are the full hit and miss latency
	// distributions coarsened onto the shared Prometheus edge set —
	// the data behind the _bucket/_sum/_count series /metrics emits.
	HitLatency  obs.HistogramSnapshot
	MissLatency obs.HistogramSnapshot
	HitP50      time.Duration
	HitP99      time.Duration
	MissP50     time.Duration
	MissP99     time.Duration
	P50         time.Duration
	P99         time.Duration
}

// spec is a normalized scheduler selection — part of the cache key and the
// per-worker engine map key.
type spec struct {
	kind   string
	budget int
}

func parseSpec(name string, budget int) (spec, error) {
	if name == "" {
		name = "gopt"
	}
	switch name {
	case "gopt", "opt":
		if budget <= 0 {
			budget = core.DefaultBudget
		}
		return spec{kind: name, budget: budget}, nil
	case "emodel", "energy", "baseline":
		return spec{kind: name}, nil
	default:
		return spec{}, fmt.Errorf("service: unknown scheduler %q (want gopt|opt|emodel|energy|baseline)", name)
	}
}

type job struct {
	in    core.Instance
	sp    spec
	val   *valJob    // set for Monte-Carlo validation jobs
	rep   *replanJob // set for churn-repair jobs
	agg   *aggJob    // set for convergecast-scheduling jobs
	reply chan<- jobResult
	// improve is the synchronous anytime-improvement budget spent on a
	// cold search's result before it is stored and returned.
	improve time.Duration
	// tr is the requesting caller's trace (nil for untraced requests —
	// the overwhelmingly common case). Handing the pointer across the
	// queue is safe: every span operation takes the trace's own mutex.
	// Under singleflight only the leader's trace rides the job, so
	// coalesced waiters see cache attributes but no worker-side spans.
	tr *obs.Trace
}

// valJob carries one Monte-Carlo validation: the (shared, immutable)
// schedule to replay plus the loss-model parameters. Repair never mutates
// the schedule it is given; it clones before appending.
type valJob struct {
	sched    *core.Schedule
	model    reliability.LossModel
	trials   int
	target   float64
	maxExtra int
}

type jobResult struct {
	res *core.Result
	out *validateOutcome
	rep *replanOutcome
	agg *aggregate.Result
	err error
}

// validateOutcome is the cached product of one validation: the estimate,
// plus the repair result when a target was requested.
type validateOutcome struct {
	report *reliability.Report
	repair *reliability.RepairResult
}

// worker owns one goroutine and the reusable engines it has instantiated;
// the engines map and the Monte-Carlo estimator are touched only from the
// worker's own goroutine, so no lock guards them and their arenas stay
// warm call after call.
type worker struct {
	jobs       chan job
	engines    map[spec]core.Scheduler
	replanners map[spec]*churn.Replanner
	// aggs holds the worker's reusable convergecast schedulers by tree
	// kind; like engines, only the worker's own goroutine touches them so
	// their scratch arenas stay warm.
	aggs map[string]*aggregate.Scheduler
	est  *reliability.Estimator
	// imp is the worker's reusable improver for synchronous cold-path
	// improvement; like the engines, it is touched only by the worker's
	// own goroutine so its arenas stay warm.
	imp *improve.Improver
}

func (w *worker) run(s *Service) {
	defer s.wg.Done()
	for jb := range w.jobs {
		if jb.agg != nil {
			res, err := w.execAggregate(s, jb)
			jb.reply <- jobResult{agg: res, err: err}
			continue
		}
		if jb.rep != nil {
			rep, err := w.execReplan(s, jb)
			jb.reply <- jobResult{rep: rep, err: err}
			continue
		}
		if jb.val != nil {
			out, err := w.execValidate(jb)
			if err == nil {
				// Repair re-estimates once per round on top of the
				// baseline estimate; count every replay actually run.
				batches := int64(1)
				if out.repair != nil {
					batches = int64(out.repair.Rounds) + 1
				}
				s.mcTrials.Add(int64(jb.val.trials) * batches)
			}
			jb.reply <- jobResult{out: out, err: err}
			continue
		}
		res, err := w.exec(s, jb)
		if err == nil {
			s.searches.Add(1)
		}
		jb.reply <- jobResult{res: res, err: err}
	}
}

// execValidate runs one Monte-Carlo validation on the worker's reusable
// estimator. Trials run single-threaded here — the pool provides the
// concurrency across requests, and the report is identical either way.
func (w *worker) execValidate(jb job) (*validateOutcome, error) {
	if w.est == nil {
		w.est = reliability.NewEstimator()
	}
	v := jb.val
	if v.target > 0 {
		rr, err := w.est.Repair(jb.in, v.sched, v.model, reliability.RepairConfig{
			Target:        v.target,
			Trials:        v.trials,
			Workers:       1,
			MaxExtraSlots: v.maxExtra,
		})
		if err != nil {
			return nil, err
		}
		return &validateOutcome{report: rr.After, repair: rr}, nil
	}
	rep, err := w.est.Estimate(jb.in, v.sched, v.model, reliability.Config{Trials: v.trials, Workers: 1})
	if err != nil {
		return nil, err
	}
	return &validateOutcome{report: rep}, nil
}

func (w *worker) exec(s *Service, jb job) (*core.Result, error) {
	search := jb.tr.Root().Child("search")
	sched := w.scheduler(resolveSpec(jb.sp, jb.in))
	var res *core.Result
	var err error
	if en, ok := sched.(*core.Engine); ok && jb.tr != nil {
		// Traced searches collect the per-depth profile; the plain path
		// runs exactly the pre-observability search so untraced results
		// keep their historic encodings.
		res, err = en.ScheduleProfiled(jb.in)
	} else {
		res, err = sched.Schedule(jb.in)
	}
	if err != nil {
		search.End()
		return res, err
	}
	s.engineStates.Add(int64(res.Stats.Expanded))
	s.engineMemoHits.Add(int64(res.Stats.MemoHits))
	search.SetStr("scheduler", res.Scheduler)
	search.SetInt("end_slot", int64(res.Schedule.End()))
	search.SetBool("exact", res.Exact)
	search.SetInt("expanded", int64(res.Stats.Expanded))
	search.SetInt("memo_hits", int64(res.Stats.MemoHits))
	search.SetInt("memo_entries", int64(res.Stats.MemoEntries))
	if n := len(res.Stats.Depths); n > 0 {
		search.SetInt("search_depth", int64(n))
	}
	search.End()

	isp := jb.tr.Root().Child("improve")
	isp.SetInt("budget_ns", int64(jb.improve))
	if jb.improve <= 0 || res.Exact {
		isp.SetBool("skipped", true)
		isp.End()
		return res, nil
	}
	// Cold-path synchronous improvement: the first answer for this key is
	// already tightened before it is stored, so even a cache-cold client
	// with a budget never sees the raw approximation. Published as
	// Generation 0 — it IS the first plan under this key.
	if w.imp == nil {
		w.imp = improve.New()
	}
	out, st, ierr := w.imp.Improve(jb.in, res.Schedule, improve.Options{Deadline: jb.improve})
	setImproveAttrs(isp, st)
	isp.End()
	if ierr != nil || (st.SlotsSaved == 0 && !st.Exact) {
		// An improver failure is a quality loss, not a serving failure:
		// fall back to the unimproved result.
		return res, nil
	}
	next := *res
	if st.SlotsSaved > 0 {
		next.Schedule = out
		next.PA = out.End()
		next.Improved = true
		s.improvements.Add(1)
		s.improveSlotsSaved.Add(int64(st.SlotsSaved))
		s.genHist[0].Add(1)
	}
	// A greedy-optimality proof from the full-tail search upgrades Exact
	// honestly: no greedy-move schedule ends before this one.
	next.Exact = next.Exact || st.Exact
	return &next, nil
}

// setImproveAttrs annotates an improve span with the run's aggregate and
// per-neighborhood statistics. A no-op on the nil span.
func setImproveAttrs(sp *obs.Span, st improve.Stats) {
	if sp == nil {
		return
	}
	sp.SetInt("moves", int64(st.Moves))
	sp.SetInt("accepted", int64(st.Accepted))
	sp.SetInt("slots_saved", int64(st.SlotsSaved))
	sp.SetInt("expanded", int64(st.Expanded))
	sp.SetBool("exact", st.Exact)
	sp.SetBool("converged", st.Converged)
	for _, kind := range []struct {
		name string
		ms   improve.MoveStats
	}{
		{"norm", st.Norm}, {"tail", st.Tail}, {"merge", st.Merge}, {"shift", st.Shift},
	} {
		if kind.ms.Attempted == 0 {
			continue
		}
		sp.SetInt(kind.name+"_attempted", int64(kind.ms.Attempted))
		sp.SetInt(kind.name+"_accepted", int64(kind.ms.Accepted))
		if kind.ms.SlotsSaved > 0 {
			sp.SetInt(kind.name+"_slots_saved", int64(kind.ms.SlotsSaved))
		}
	}
}

// resolveSpec maps the generic "baseline" selection onto the
// system-specific baseline, by the instance's wake system like mlb-run
// does.
func resolveSpec(sp spec, in core.Instance) spec {
	if sp.kind == "baseline" {
		if in.Wake.Rate() > 1 {
			sp.kind = "baseline17"
		} else {
			sp.kind = "baseline26"
		}
	}
	return sp
}

// scheduler returns the worker's reusable engine for a resolved spec,
// building it on first use. Only the worker's own goroutine calls this.
func (w *worker) scheduler(sp spec) core.Scheduler {
	sched, ok := w.engines[sp]
	if !ok {
		sched = newScheduler(sp)
		w.engines[sp] = sched
	}
	return sched
}

func newScheduler(sp spec) core.Scheduler {
	switch sp.kind {
	case "gopt":
		return core.NewGOPT(sp.budget).NewEngine()
	case "opt":
		return core.NewOPT(sp.budget, 0).NewEngine()
	case "emodel":
		return core.NewEModel(emodel.TwoPass)
	case "energy":
		return core.NewEnergyAware()
	case "baseline26":
		return baseline.New26()
	case "baseline17":
		return baseline.New17()
	default:
		panic("service: unreachable scheduler kind " + sp.kind)
	}
}

// Service serves broadcast plans concurrently. Build with New; Close when
// done.
type Service struct {
	cfg     Config
	cache   *plancache.Cache[*core.Result]
	gens    *plancache.Cache[core.Instance]
	vcache  *plancache.Cache[*validateOutcome]
	rcache  *plancache.Cache[*replanOutcome]
	acache  *plancache.Cache[*aggregate.Result]
	workers []*worker
	wg      sync.WaitGroup

	mu       sync.RWMutex // guards closed against in-flight Plan entries
	closed   bool
	inflight sync.WaitGroup

	// Background anytime-improvement pool. improving dedupes upgrades per
	// plan key: a key already queued or running is not enqueued again, so
	// a hot key under heavy hit traffic costs at most one inflight
	// improver no matter how many requests carry a budget.
	improveJobs chan improveJob
	improveWg   sync.WaitGroup
	improveMu   sync.Mutex
	improving   map[string]struct{}

	requests          atomic.Int64
	aggregates        atomic.Int64
	aggSearches       atomic.Int64
	searches          atomic.Int64
	engineStates      atomic.Int64
	engineMemoHits    atomic.Int64
	validations       atomic.Int64
	mcTrials          atomic.Int64
	replans           atomic.Int64
	replanPrefix      atomic.Int64
	replanIncremental atomic.Int64
	replanCold        atomic.Int64
	errs              atomic.Int64
	improvements      atomic.Int64
	improveSlotsSaved atomic.Int64
	improveQueued     atomic.Int64
	improveDropped    atomic.Int64
	genHist           [improveGenBuckets]atomic.Int64
	hitHist           hist
	missHist          hist
}

// improveGenBuckets sizes the generation histogram: bucket i counts
// publications at generation i, with the final bucket absorbing the tail.
// Generations beyond a handful mean the improver keeps finding slack on a
// hot key — worth an operator's eye, not worth unbounded counters.
const improveGenBuckets = 8

// improveJob asks the background pool to upgrade the plan cached under key.
type improveJob struct {
	key    string
	in     core.Instance
	budget time.Duration
}

// New builds and starts a service.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.GenCacheCapacity <= 0 {
		cfg.GenCacheCapacity = 256
	}
	if cfg.ValidateCacheCapacity <= 0 {
		cfg.ValidateCacheCapacity = 1024
	}
	if cfg.ReplanCacheCapacity <= 0 {
		cfg.ReplanCacheCapacity = 1024
	}
	if cfg.AggregateCacheCapacity <= 0 {
		cfg.AggregateCacheCapacity = 1024
	}
	s := &Service{
		cfg:    cfg,
		cache:  plancache.New[*core.Result](cfg.CacheCapacity, cfg.CacheShards),
		gens:   plancache.New[core.Instance](cfg.GenCacheCapacity, 4),
		vcache: plancache.New[*validateOutcome](cfg.ValidateCacheCapacity, 8),
		rcache: plancache.New[*replanOutcome](cfg.ReplanCacheCapacity, 8),
		acache: plancache.New[*aggregate.Result](cfg.AggregateCacheCapacity, 8),
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			jobs:       make(chan job, cfg.QueueDepth),
			engines:    make(map[spec]core.Scheduler),
			replanners: make(map[spec]*churn.Replanner),
			aggs:       make(map[string]*aggregate.Scheduler),
		}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go w.run(s)
	}
	if cfg.ImproveWorkers > 0 {
		if cfg.ImproveQueue <= 0 {
			cfg.ImproveQueue = 64
		}
		s.cfg.ImproveQueue = cfg.ImproveQueue
		s.improveJobs = make(chan improveJob, cfg.ImproveQueue)
		s.improving = make(map[string]struct{})
		for i := 0; i < cfg.ImproveWorkers; i++ {
			s.improveWg.Add(1)
			go s.runImprover()
		}
	}
	return s
}

// runImprover is one background pool goroutine: it owns a reusable
// improver and upgrades cached plans in place, re-publishing every
// accepted move through the cache's atomic Update so readers always see a
// monotone (generation, end-slot) pair.
func (s *Service) runImprover() {
	defer s.improveWg.Done()
	imp := improve.New()
	for jb := range s.improveJobs {
		s.upgrade(imp, jb)
		s.improveMu.Lock()
		delete(s.improving, jb.key)
		s.improveMu.Unlock()
	}
}

// upgrade runs one background improvement against the plan currently
// cached under jb.key. Peek (not Get) reads it: a maintenance probe must
// not distort hit/miss accounting or entry recency. Each accepted move is
// published immediately — anytime semantics means a client hitting the key
// mid-run gets the best schedule found so far, not the best at enqueue
// time. Update never inserts, so an upgrade racing an eviction drops
// instead of resurrecting the entry.
func (s *Service) upgrade(imp *improve.Improver, jb improveJob) {
	cur, ok := s.cache.Peek(jb.key)
	if !ok || cur.Exact {
		return
	}
	publish := func(sched *core.Schedule, exact bool) {
		s.cache.Update(jb.key, func(res *core.Result) (*core.Result, bool) {
			if sched.End() >= res.Schedule.End() {
				// A concurrent writer (another budget's cold compute, a
				// replan publication) got here with an equal or better
				// plan; never regress, never bump the generation for a
				// non-improvement.
				if exact && sched.End() == res.Schedule.End() && !res.Exact {
					next := *res
					next.Exact = true
					return &next, true
				}
				return res, false
			}
			next := *res
			next.Schedule = sched
			next.PA = sched.End()
			next.Generation = res.Generation + 1
			next.Improved = true
			next.Exact = exact
			s.improvements.Add(1)
			s.improveSlotsSaved.Add(int64(res.Schedule.End() - sched.End()))
			b := next.Generation
			if b >= improveGenBuckets {
				b = improveGenBuckets - 1
			}
			s.genHist[b].Add(1)
			return &next, true
		})
	}
	out, st, err := imp.Improve(jb.in, cur.Schedule, improve.Options{
		Deadline: jb.budget,
		OnImprove: func(sched *core.Schedule, snap improve.Stats) {
			publish(sched, false)
		},
	})
	if err != nil {
		return
	}
	if st.Exact {
		// The full-tail search proved no greedy schedule beats out; stamp
		// the entry exact if it still holds a plan at that end slot.
		publish(out, true)
	}
}

// enqueueImprove asks the background pool to upgrade key, deduping against
// upgrades already queued or running. Never blocks: a full queue counts a
// drop and moves on — improvement is best-effort, serving is not.
func (s *Service) enqueueImprove(key string, in core.Instance, budget time.Duration) {
	if s.improveJobs == nil {
		return
	}
	s.improveMu.Lock()
	if _, busy := s.improving[key]; busy {
		s.improveMu.Unlock()
		return
	}
	s.improving[key] = struct{}{}
	s.improveMu.Unlock()
	select {
	case s.improveJobs <- improveJob{key: key, in: in, budget: budget}:
		s.improveQueued.Add(1)
	default:
		s.improveMu.Lock()
		delete(s.improving, key)
		s.improveMu.Unlock()
		s.improveDropped.Add(1)
	}
}

// Close waits for in-flight requests, stops the workers, and makes further
// Plan calls fail with ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
	for _, w := range s.workers {
		close(w.jobs)
	}
	s.wg.Wait()
	// No Plan is in flight and the workers are gone, so nothing can
	// enqueue another upgrade; drain the background pool last.
	if s.improveJobs != nil {
		close(s.improveJobs)
		s.improveWg.Wait()
	}
}

// enter registers an in-flight request; it fails once Close has begun.
func (s *Service) enter() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.inflight.Add(1)
	return nil
}

// resolve materializes the request's instance, serving Generator requests
// from the deployment cache so repeat generator traffic never re-samples
// the topology.
func (s *Service) resolve(req Request) (core.Instance, error) {
	switch {
	case req.Instance != nil && req.Generator != nil:
		return core.Instance{}, errors.New("service: request sets both Instance and Generator")
	case req.Instance != nil:
		return *req.Instance, nil
	case req.Generator == nil:
		return core.Instance{}, errors.New("service: request sets neither Instance nor Generator")
	}
	gen := *req.Generator
	if gen.N < 1 {
		return core.Instance{}, fmt.Errorf("service: generator node count %d", gen.N)
	}
	if gen.Channels < 0 || gen.Channels > core.MaxChannels {
		return core.Instance{}, fmt.Errorf("service: generator channel count %d outside [0,%d]", gen.Channels, core.MaxChannels)
	}
	if gen.Channels == 1 {
		gen.Channels = 0 // canonical single-channel form, one cache entry
	}
	var sinr *interference.SINRParams
	if gen.SINRAlpha != 0 || gen.SINRBeta != 0 || gen.SINRNoise != 0 {
		sinr = &interference.SINRParams{Alpha: gen.SINRAlpha, Beta: gen.SINRBeta, Noise: gen.SINRNoise}
		if err := sinr.Validate(gen.N); err != nil {
			return core.Instance{}, fmt.Errorf("service: %w", err)
		}
	}
	key := "gen|" + strconv.Itoa(gen.N) + "|" + strconv.FormatUint(gen.Seed, 10) +
		"|" + strconv.Itoa(gen.DutyRate) + "|" + strconv.FormatUint(gen.WakeSeed, 10) +
		"|" + strconv.Itoa(gen.Channels) +
		"|" + strconv.FormatFloat(gen.SINRAlpha, 'g', -1, 64) +
		"|" + strconv.FormatFloat(gen.SINRBeta, 'g', -1, 64) +
		"|" + strconv.FormatFloat(gen.SINRNoise, 'g', -1, 64)
	in, _, _, err := s.gens.GetOrCompute(key, func() (core.Instance, error) {
		dep, err := topology.Generate(topology.PaperConfig(gen.N), gen.Seed)
		if err != nil {
			return core.Instance{}, err
		}
		var in core.Instance
		if gen.DutyRate > 1 {
			ws := gen.WakeSeed
			if ws == 0 {
				ws = gen.Seed ^ 0xA5
			}
			wake := dutycycle.NewUniform(gen.N, gen.DutyRate, ws, 0)
			in = core.Async(dep.G, dep.Source, wake, 0)
		} else {
			in = core.Sync(dep.G, dep.Source)
		}
		in.Channels = gen.Channels
		in.SINR = sinr
		return in, nil
	})
	return in, err
}

// dispatchJob queues one job (search or validation) on the worker shard
// owned by key and waits for its result. Once queued the job runs to
// completion (its budget/trial count bounds the time); ctx only guards
// the queueing itself. The returned error is the queueing error; the
// job's own outcome travels inside the jobResult.
func (s *Service) dispatchJob(ctx context.Context, key string, jb job) (jobResult, error) {
	// plancache.KeyHash, not a local hash: worker selection deliberately
	// co-shards with the cache so repeats of an instance land on the
	// worker whose engine/estimator arenas are already sized for it.
	w := s.workers[int(plancache.KeyHash(key)%uint64(len(s.workers)))]
	reply := make(chan jobResult, 1)
	jb.reply = reply
	select {
	case w.jobs <- jb:
	case <-ctx.Done():
		return jobResult{}, ctx.Err()
	}
	return <-reply, nil
}

// dispatch queues one search and waits for its result. The caller's trace
// rides the job onto the worker: under singleflight only the leader's
// context reaches this point, so exactly one trace collects the
// worker-side spans.
func (s *Service) dispatch(ctx context.Context, key string, in core.Instance, sp spec, improveBudget time.Duration) (*core.Result, error) {
	r, err := s.dispatchJob(ctx, key, job{in: in, sp: sp, improve: improveBudget, tr: obs.FromContext(ctx)})
	if err != nil {
		return nil, err
	}
	return r.res, r.err
}

func planKey(digest graphio.Digest, sp spec) string {
	return planKeyString(digest.String(), sp)
}

// planKeyString is planKey for a digest already in hex form — the replan
// path publishes repaired plans under the mutated instance's digest
// without re-materializing a graphio.Digest.
func planKeyString(digest string, sp spec) string {
	return digest + "|" + sp.kind + "|" + strconv.Itoa(sp.budget)
}

// cachedCompute is the shared serving discipline of every content-
// addressed cache in the service: serve key from c, computing at most
// once even under concurrent identical requests. noCache bypasses the
// lookup but still stores the result. The computation always runs with a
// context detached from the caller's cancellation — it is shared by every
// coalesced waiter, so it must not die with the leader's request context
// (a leader disconnecting would fail N−1 innocent callers).
func cachedCompute[V any](ctx context.Context, c *plancache.Cache[V], key string, noCache bool,
	compute func(context.Context) (V, error)) (val V, hit, coalesced bool, err error) {
	if noCache {
		// Nothing is shared on the bypass path — the lone caller's own
		// context governs its computation.
		val, err = compute(ctx)
		if err == nil {
			c.Put(key, val)
		}
		return val, false, false, err
	}
	shared := context.WithoutCancel(ctx)
	return c.GetOrCompute(key, func() (V, error) {
		return compute(shared)
	})
}

// planFor obtains the plan behind key: from the cache, or by exactly one
// dispatched search even under concurrent identical requests.
func (s *Service) planFor(ctx context.Context, key string, in core.Instance, sp spec, noCache bool, improveBudget time.Duration) (res *core.Result, hit, coalesced bool, err error) {
	return cachedCompute(ctx, s.cache, key, noCache, func(ctx context.Context) (*core.Result, error) {
		return s.dispatch(ctx, key, in, sp, improveBudget)
	})
}

// Plan answers one request: from the cache when the instance has been
// planned before, otherwise by exactly one search even under concurrent
// identical requests.
func (s *Service) Plan(ctx context.Context, req Request) (Response, error) {
	start := time.Now()
	if err := s.enter(); err != nil {
		return Response{}, err
	}
	defer s.inflight.Done()
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	sp, err := parseSpec(req.Scheduler, req.Budget)
	if err != nil {
		return Response{}, err
	}
	// tr is nil on untraced requests — every span call below is then a
	// nil-receiver no-op, which is what keeps the warm path's alloc pin.
	tr := obs.FromContext(ctx)
	rs := tr.Root().Child("resolve")
	in, err := s.resolve(req)
	if err != nil {
		rs.End()
		return Response{}, err
	}
	digest, err := graphio.InstanceDigest(in)
	if err != nil {
		rs.End()
		return Response{}, err
	}
	if rs != nil {
		rs.SetInt("nodes", int64(in.G.N()))
		rs.SetStr("scheduler", sp.kind)
	}
	rs.End()
	key := planKey(digest, sp)

	s.requests.Add(1)
	cs := tr.Root().Child("cache")
	res, hit, coalesced, err := s.planFor(ctx, key, in, sp, req.NoCache, req.ImproveBudget)
	elapsed := time.Since(start)
	if err != nil {
		cs.End()
		s.errs.Add(1)
		return Response{}, err
	}
	cs.SetBool("hit", hit)
	cs.SetBool("coalesced", coalesced)
	if hit {
		cs.SetInt("generation", int64(res.Generation))
	}
	cs.End()
	if hit {
		s.hitHist.observe(elapsed)
		// Serve best-so-far instantly, improve in the background: a warm
		// hit with a budget never pays for its own improvement, it funds
		// the next reader's. Already-exact plans have nothing left.
		if req.ImproveBudget > 0 && !res.Exact {
			qs := tr.Root().Child("improve_enqueue")
			if qs != nil {
				qs.SetInt("budget_ns", int64(req.ImproveBudget))
				qs.SetInt("queue_depth", int64(len(s.improveJobs)))
			}
			s.enqueueImprove(key, in, req.ImproveBudget)
			qs.End()
		}
	} else {
		s.missHist.observe(elapsed)
	}
	return Response{
		Digest:    digest.String(),
		Scheduler: res.Scheduler,
		Result:    res,
		CacheHit:  hit,
		Coalesced: coalesced,
		Elapsed:   elapsed,
	}, nil
}

// PlanBatch answers many requests concurrently, preserving order.
// Per-item failures land in Response.Err; the batch itself always returns.
func (s *Service) PlanBatch(ctx context.Context, reqs []Request) []Response {
	resps := make([]Response, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Plan(ctx, reqs[i])
			if err != nil {
				r.Err = err
			}
			resps[i] = r
		}(i)
	}
	wg.Wait()
	return resps
}

// SweepRequest is a streaming parameter sweep over the paper topology
// family: the cross product of Sizes × Seeds, one plan per cell.
type SweepRequest struct {
	Sizes     []int    `json:"sizes"`
	Seeds     []uint64 `json:"seeds"`
	DutyRate  int      `json:"r,omitempty"`
	WakeSeed  uint64   `json:"wake_seed,omitempty"`
	Channels  int      `json:"channels,omitempty"`
	SINRAlpha float64  `json:"sinr_alpha,omitempty"`
	SINRBeta  float64  `json:"sinr_beta,omitempty"`
	SINRNoise float64  `json:"sinr_noise,omitempty"`
	Scheduler string   `json:"scheduler,omitempty"`
	Budget    int      `json:"budget,omitempty"`
	NoCache   bool     `json:"no_cache,omitempty"`
}

// SweepItem is one streamed sweep result.
type SweepItem struct {
	N         int    `json:"n"`
	Seed      uint64 `json:"seed"`
	Digest    string `json:"digest,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	PA        int    `json:"pa"`
	Latency   int    `json:"latency"`
	Exact     bool   `json:"exact"`
	CacheHit  bool   `json:"cache_hit"`
	Coalesced bool   `json:"coalesced"`
	ElapsedNs int64  `json:"elapsed_ns"`
	Err       string `json:"error,omitempty"`
}

// Sweep plans every (size, seed) cell and streams each result through emit
// as soon as it is ready. A failing cell is reported in its item and the
// sweep continues; emit returning an error, or ctx expiring, stops it.
func (s *Service) Sweep(ctx context.Context, req SweepRequest, emit func(SweepItem) error) error {
	if len(req.Sizes) == 0 {
		return errors.New("service: sweep needs at least one size")
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	for _, n := range req.Sizes {
		for _, seed := range seeds {
			if err := ctx.Err(); err != nil {
				return err
			}
			resp, err := s.Plan(ctx, Request{
				Generator: &Generator{N: n, Seed: seed, DutyRate: req.DutyRate, WakeSeed: req.WakeSeed, Channels: req.Channels,
					SINRAlpha: req.SINRAlpha, SINRBeta: req.SINRBeta, SINRNoise: req.SINRNoise},
				Scheduler: req.Scheduler,
				Budget:    req.Budget,
				NoCache:   req.NoCache,
			})
			item := SweepItem{N: n, Seed: seed}
			if err != nil {
				item.Err = err.Error()
			} else {
				item.Digest = resp.Digest
				item.Scheduler = resp.Scheduler
				item.PA = resp.Result.PA
				item.Latency = resp.Result.Schedule.Latency()
				item.Exact = resp.Result.Exact
				item.CacheHit = resp.CacheHit
				item.Coalesced = resp.Coalesced
				item.ElapsedNs = resp.Elapsed.Nanoseconds()
			}
			if err := emit(item); err != nil {
				return err
			}
		}
	}
	return nil
}

// Metrics snapshots the service counters and latency percentiles.
func (s *Service) Metrics() Metrics {
	cs := s.cache.Stats()
	vs := s.vcache.Stats()
	rs := s.rcache.Stats()
	as := s.acache.Stats()
	var merged [histBuckets]int64
	total := s.hitHist.snapshot(&merged)
	total += s.missHist.snapshot(&merged)
	var gens [improveGenBuckets]int64
	for i := range gens {
		gens[i] = s.genHist[i].Load()
	}
	edges := obs.DefaultLatencyEdgesNs()
	return Metrics{
		Requests:          s.requests.Load(),
		Hits:              cs.Hits,
		Misses:            cs.Misses,
		Coalesced:         cs.Coalesced,
		Searches:          s.searches.Load(),
		EngineStates:      s.engineStates.Load(),
		EngineMemoHits:    s.engineMemoHits.Load(),
		Errors:            s.errs.Load(),
		Evictions:         cs.Evictions,
		CacheEntries:      cs.Entries,
		CacheCapacity:     cs.Capacity,
		Validations:       s.validations.Load(),
		MonteCarloTrials:  s.mcTrials.Load(),
		ValidateHits:      vs.Hits,
		ValidateMisses:    vs.Misses,
		ValidateEntries:   vs.Entries,
		Aggregates:        s.aggregates.Load(),
		AggSearches:       s.aggSearches.Load(),
		AggregateHits:     as.Hits,
		AggregateMisses:   as.Misses,
		AggregateEntries:  as.Entries,
		Replans:           s.replans.Load(),
		ReplanPrefix:      s.replanPrefix.Load(),
		ReplanIncremental: s.replanIncremental.Load(),
		ReplanCold:        s.replanCold.Load(),
		ReplanHits:        rs.Hits,
		ReplanMisses:      rs.Misses,
		ReplanEntries:     rs.Entries,
		Improvements:      s.improvements.Load(),
		ImproveSlotsSaved: s.improveSlotsSaved.Load(),
		ImproveQueued:     s.improveQueued.Load(),
		ImproveDropped:    s.improveDropped.Load(),
		ImproveQueueDepth: len(s.improveJobs),
		Generations:       gens,
		HitLatency:        s.hitHist.promSnapshot(edges),
		MissLatency:       s.missHist.promSnapshot(edges),
		HitP50:            s.hitHist.percentile(0.50),
		HitP99:            s.hitHist.percentile(0.99),
		MissP50:           s.missHist.percentile(0.50),
		MissP99:           s.missHist.percentile(0.99),
		P50:               percentileOf(&merged, total, 0.50),
		P99:               percentileOf(&merged, total, 0.99),
	}
}
