package service

import (
	"slices"
	"testing"
	"testing/quick"
	"time"

	"mlbs/internal/rng"
)

// TestHistBucketUpperBoundsObservation is the round-trip property of the
// log-linear histogram: every duration lands in a bucket whose upper edge
// is at least the duration, and (for durations of ≥ 4ns, where the 4
// sub-buckets per octave are active) within 25% relative error — the
// resolution the percentile reporting promises.
func TestHistBucketUpperBoundsObservation(t *testing.T) {
	check := func(ns uint64) {
		d := time.Duration(ns)
		if d < 0 {
			return
		}
		b := histBucket(d)
		if b < 0 || b >= histBuckets {
			t.Fatalf("d=%v: bucket %d out of range", d, b)
		}
		upper := histBucketUpper(b)
		if upper < d {
			t.Fatalf("d=%v: bucket %d upper edge %v below the observation", d, b, upper)
		}
		if ns >= 4 && float64(upper) > 1.25*float64(ns) {
			t.Fatalf("d=%v: upper edge %v exceeds 25%% relative error", d, upper)
		}
	}
	// Dense small values and all power-of-two boundaries ±1.
	for ns := uint64(0); ns < 4096; ns++ {
		check(ns)
	}
	for shift := uint(2); shift < 63; shift++ {
		check(1<<shift - 1)
		check(1 << shift)
		check(1<<shift + 1)
	}
	// Random fuzz across the full range.
	src := rng.New(1)
	for i := 0; i < 20000; i++ {
		check(src.Uint64() >> uint(src.Intn(63)))
	}
	// histBucket must be monotone non-decreasing, so sorting durations
	// sorts buckets — the property percentileOf's rank walk depends on.
	var ds []time.Duration
	for shift := uint(0); shift < 62; shift++ {
		for sub := uint64(0); sub < 4; sub++ {
			ds = append(ds, time.Duration(uint64(1)<<shift+sub<<max(int(shift)-2, 0)))
		}
	}
	src2 := rng.New(2)
	for i := 0; i < 5000; i++ {
		ds = append(ds, time.Duration(src2.Uint64()>>uint(src2.Intn(62)+1)))
	}
	slices.Sort(ds)
	prev := 0
	for _, d := range ds {
		if b := histBucket(d); b < prev {
			t.Fatalf("histBucket not monotone at %v: %d < %d", d, b, prev)
		} else {
			prev = b
		}
	}
}

// TestPercentileOfMatchesRankedObservation: for any observation multiset,
// percentileOf(q) must return the upper edge of the bucket holding the
// rank-⌊q·(total−1)⌋ observation (sorted ascending) — i.e. a value ≥ the
// true quantile and within the bucket resolution of it.
func TestPercentileOfMatchesRankedObservation(t *testing.T) {
	f := func(seed uint64, nObs uint16) bool {
		src := rng.New(seed)
		n := int(nObs)%500 + 1
		obs := make([]time.Duration, n)
		var h hist
		for i := range obs {
			// Mix magnitudes so buckets across many octaves fill.
			d := time.Duration(src.Uint64() >> uint(src.Intn(60)))
			obs[i] = d
			h.observe(d)
		}
		var snap [histBuckets]int64
		total := h.snapshot(&snap)
		if total != int64(n) {
			return false
		}
		// Sort by bucket (monotone in duration, so any stable order works).
		buckets := make([]int, n)
		for i, d := range obs {
			buckets[i] = histBucket(d)
		}
		for i := 1; i < n; i++ { // insertion sort; n ≤ 500
			for j := i; j > 0 && buckets[j] < buckets[j-1]; j-- {
				buckets[j], buckets[j-1] = buckets[j-1], buckets[j]
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			rank := int(q * float64(total-1))
			want := histBucketUpper(buckets[rank])
			if got := percentileOf(&snap, total, q); got != want {
				t.Logf("seed=%d n=%d q=%v: got %v, want %v", seed, n, q, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileOfEmpty(t *testing.T) {
	var snap [histBuckets]int64
	if got := percentileOf(&snap, 0, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
}
