package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"mlbs/internal/core"
	"mlbs/internal/topology"
)

func testInstance(t *testing.T, n int, seed uint64) *core.Instance {
	t.Helper()
	dep, err := topology.Generate(topology.PaperConfig(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(dep.G, dep.Source)
	return &in
}

// TestConcurrentSameInstance is the serving layer's headline property: 64
// goroutines planning the same instance agree on P(A) and trigger exactly
// one underlying search — everyone else hits the cache or coalesces onto
// the in-flight leader. Run under -race in CI.
func TestConcurrentSameInstance(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()
	in := testInstance(t, 100, 7)

	const clients = 64
	var wg sync.WaitGroup
	resps := make([]Response, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = svc.Plan(context.Background(), Request{Instance: in})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	pa := resps[0].Result.PA
	digest := resps[0].Digest
	leaders := 0
	for i, r := range resps {
		if r.Result.PA != pa {
			t.Errorf("client %d got PA=%d, client 0 got %d", i, r.Result.PA, pa)
		}
		if r.Digest != digest {
			t.Errorf("client %d digest %s ≠ %s", i, r.Digest, digest)
		}
		if !r.CacheHit && !r.Coalesced {
			leaders++
		}
	}
	m := svc.Metrics()
	if m.Searches != 1 {
		t.Errorf("ran %d searches for %d identical requests; singleflight wants 1", m.Searches, clients)
	}
	if leaders != 1 {
		t.Errorf("%d leaders; want 1", leaders)
	}
	if m.Hits+m.Coalesced != clients-1 {
		t.Errorf("hits=%d coalesced=%d; %d followers expected", m.Hits, m.Coalesced, clients-1)
	}
	if m.Requests != clients {
		t.Errorf("requests=%d want %d", m.Requests, clients)
	}
}

// TestWarmHitPathAllocs pins the acceptance criterion that the warm-cache
// path is search-free and allocation-bounded: a steady-state Plan for a
// resident instance costs only the digest (one SHA-256) plus the key
// string and the response — no engine, no frames, no schedule rebuild.
func TestWarmHitPathAllocs(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	in := testInstance(t, 100, 7)
	req := Request{Instance: in}
	ctx := context.Background()
	if _, err := svc.Plan(ctx, req); err != nil {
		t.Fatal(err)
	}
	before := svc.Metrics().Searches
	allocs := testing.AllocsPerRun(100, func() {
		resp, err := svc.Plan(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.CacheHit {
			t.Fatal("warm request missed the cache")
		}
	})
	if svc.Metrics().Searches != before {
		t.Fatal("warm requests re-ran the search")
	}
	if allocs > 24 {
		t.Errorf("warm Plan allocated %.1f objects per call; want ≤ 24", allocs)
	}
}

func TestDistinctInstancesDistinctPlans(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ctx := context.Background()
	r1, err := svc.Plan(ctx, Request{Instance: testInstance(t, 80, 1)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Plan(ctx, Request{Instance: testInstance(t, 80, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Digest == r2.Digest {
		t.Fatal("different deployments share a digest")
	}
	if m := svc.Metrics(); m.Searches != 2 {
		t.Errorf("searches=%d want 2", m.Searches)
	}
}

func TestSchedulerPartOfKey(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ctx := context.Background()
	in := testInstance(t, 80, 3)
	g, err := svc.Plan(ctx, Request{Instance: in, Scheduler: "gopt"})
	if err != nil {
		t.Fatal(err)
	}
	e, err := svc.Plan(ctx, Request{Instance: in, Scheduler: "emodel"})
	if err != nil {
		t.Fatal(err)
	}
	if e.CacheHit {
		t.Fatal("emodel request hit the gopt entry: scheduler missing from the key")
	}
	if g.Result.Scheduler == e.Result.Scheduler {
		t.Fatalf("both requests served by %q", g.Result.Scheduler)
	}
}

func TestGeneratorRequests(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ctx := context.Background()
	gen := &Generator{N: 80, Seed: 5, DutyRate: 10}
	r1, err := svc.Plan(ctx, Request{Generator: gen})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Plan(ctx, Request{Generator: gen})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Error("repeat generator request missed")
	}
	if r1.Digest != r2.Digest {
		t.Error("generator request digest unstable")
	}
	// The generated instance must match what a caller building it by hand
	// gets (mlb-run convention: wake seed = seed^0xA5, start at the
	// source's first wake slot).
	in, err := svc.resolve(Request{Generator: gen})
	if err != nil {
		t.Fatal(err)
	}
	if in.Wake.Rate() != 10 {
		t.Errorf("generated wake rate %d", in.Wake.Rate())
	}
	if err := r1.Result.Schedule.Validate(in); err != nil {
		t.Errorf("generated plan invalid against its instance: %v", err)
	}
}

func TestNoCacheBypassesLookupButStores(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ctx := context.Background()
	in := testInstance(t, 80, 4)
	if _, err := svc.Plan(ctx, Request{Instance: in, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Plan(ctx, Request{Instance: in, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	if m := svc.Metrics(); m.Searches != 2 {
		t.Errorf("NoCache requests ran %d searches; want 2", m.Searches)
	}
	// A normal request afterwards is served from the stored result.
	r, err := svc.Plan(ctx, Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if !r.CacheHit {
		t.Error("NoCache result was not stored")
	}
}

func TestPlanBatch(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()
	reqs := []Request{
		{Generator: &Generator{N: 60, Seed: 1}},
		{Generator: &Generator{N: 60, Seed: 2}},
		{Generator: &Generator{N: 60, Seed: 1}}, // duplicate of [0]
		{Scheduler: "nope", Generator: &Generator{N: 60, Seed: 3}},
	}
	resps := svc.PlanBatch(context.Background(), reqs)
	if len(resps) != 4 {
		t.Fatalf("%d responses", len(resps))
	}
	for i := 0; i < 3; i++ {
		if resps[i].Err != nil {
			t.Fatalf("batch item %d: %v", i, resps[i].Err)
		}
	}
	if resps[0].Digest != resps[2].Digest || resps[0].Result.PA != resps[2].Result.PA {
		t.Error("duplicate batch items disagree")
	}
	if resps[3].Err == nil {
		t.Error("bad scheduler did not fail its item")
	}
}

func TestSweepStreams(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	var items []SweepItem
	err := svc.Sweep(context.Background(), SweepRequest{
		Sizes: []int{50, 60},
		Seeds: []uint64{1, 2},
	}, func(it SweepItem) error {
		items = append(items, it)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("streamed %d items; want 4", len(items))
	}
	for _, it := range items {
		if it.Err != "" {
			t.Errorf("n=%d seed=%d: %s", it.N, it.Seed, it.Err)
		}
		if it.PA <= 0 || it.Digest == "" {
			t.Errorf("malformed item %+v", it)
		}
	}
	// Re-sweeping is all hits.
	hits := 0
	if err := svc.Sweep(context.Background(), SweepRequest{Sizes: []int{50, 60}, Seeds: []uint64{1, 2}},
		func(it SweepItem) error {
			if it.CacheHit {
				hits++
			}
			return nil
		}); err != nil {
		t.Fatal(err)
	}
	if hits != 4 {
		t.Errorf("re-sweep hit %d of 4", hits)
	}
}

func TestClose(t *testing.T) {
	svc := New(Config{Workers: 2})
	in := testInstance(t, 60, 1)
	if _, err := svc.Plan(context.Background(), Request{Instance: in}); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // idempotent
	if _, err := svc.Plan(context.Background(), Request{Instance: in}); err != ErrClosed {
		t.Fatalf("Plan after Close: %v", err)
	}
}

func TestHistPercentiles(t *testing.T) {
	var h hist
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * time.Microsecond)
	}
	p50 := h.percentile(0.50)
	p99 := h.percentile(0.99)
	if p50 < 400*time.Microsecond || p50 > 700*time.Microsecond {
		t.Errorf("p50 = %v, want ≈ 500µs", p50)
	}
	if p99 < 900*time.Microsecond || p99 > 1300*time.Microsecond {
		t.Errorf("p99 = %v, want ≈ 990µs", p99)
	}
	if h.count() != 1000 {
		t.Errorf("count = %d", h.count())
	}
}
