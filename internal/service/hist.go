package service

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"mlbs/internal/obs"
)

// hist is a lock-free log-linear latency histogram: 4 linear sub-buckets
// per power-of-two octave of nanoseconds, giving ~25% relative resolution
// over the full range from 1ns to ~146h with a fixed 256-counter footprint
// and an allocation-free observe path.
type hist struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64 // total observed nanoseconds, for Prometheus _sum
}

const (
	histSub     = 4 // linear sub-buckets per octave
	histBuckets = 64 * histSub
)

func histBucket(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if ns < 1 {
		ns = 1
	}
	octave := bits.Len64(ns) - 1
	sub := 0
	if octave >= 2 {
		sub = int((ns >> (octave - 2)) & (histSub - 1))
	}
	b := octave*histSub + sub
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// histBucketUpper returns the inclusive upper edge of bucket b — the value
// percentiles report. Edges in the top octave would overflow int64
// (2^62·(1+sub/4)+2^60 crosses 2^63 at sub=3, as do all of octave 63's),
// so they saturate at MaxInt64 — nothing observable lands above ~292y
// anyway, and a negative "upper edge" would corrupt every percentile that
// walks into those buckets.
func histBucketUpper(b int) time.Duration {
	octave := b / histSub
	sub := b % histSub
	if octave < 2 {
		return time.Duration(int64(1) << (octave + 1))
	}
	if octave >= 63 {
		return time.Duration(math.MaxInt64)
	}
	lower := int64(1)<<octave + int64(sub)<<(octave-2)
	upper := lower + int64(1)<<(octave-2)
	if upper < 0 {
		upper = math.MaxInt64
	}
	return time.Duration(upper)
}

func (h *hist) observe(d time.Duration) {
	h.counts[histBucket(d)].Add(1)
	h.total.Add(1)
	h.sum.Add(d.Nanoseconds())
}

// promSnapshot coarsens the log-linear buckets onto a fixed Prometheus
// edge set (ascending upper bounds in nanoseconds): each internal bucket's
// count lands in the first edge at or above its inclusive upper bound, so
// the cumulative series is a conservative (never-undercounting) rendering
// of the finer internal histogram.
func (h *hist) promSnapshot(edgesNs []int64) obs.HistogramSnapshot {
	var counts [histBuckets]int64
	total := h.snapshot(&counts)
	snap := obs.HistogramSnapshot{
		UppersNs:  edgesNs,
		CumCounts: make([]int64, len(edgesNs)),
		Count:     total,
		SumNs:     h.sum.Load(),
	}
	per := make([]int64, len(edgesNs)+1) // +1: overflow past the last edge
	for b, c := range counts {
		if c == 0 {
			continue
		}
		u := int64(histBucketUpper(b))
		lo, hi := 0, len(edgesNs)
		for lo < hi {
			mid := (lo + hi) / 2
			if edgesNs[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		per[lo] += c
	}
	var cum int64
	for i := range edgesNs {
		cum += per[i]
		snap.CumCounts[i] = cum
	}
	return snap
}

func (h *hist) count() int64 { return h.total.Load() }

func (h *hist) snapshot(into *[histBuckets]int64) int64 {
	var total int64
	for i := range h.counts {
		c := h.counts[i].Load()
		into[i] += c
		total += c
	}
	return total
}

// percentileOf walks a (possibly merged) snapshot and returns the upper
// edge of the bucket holding the q-quantile observation; 0 when empty.
func percentileOf(counts *[histBuckets]int64, total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total-1))
	var cum int64
	for b := range counts {
		cum += counts[b]
		if cum > rank {
			return histBucketUpper(b)
		}
	}
	return histBucketUpper(histBuckets - 1)
}

func (h *hist) percentile(q float64) time.Duration {
	var snap [histBuckets]int64
	total := h.snapshot(&snap)
	return percentileOf(&snap, total, q)
}
