package service

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"mlbs/internal/churn"
	"mlbs/internal/core"
	"mlbs/internal/graphio"
	"mlbs/internal/topology"
)

func replanBase(t testing.TB, n int, seed uint64) core.Instance {
	t.Helper()
	dep, err := topology.Generate(topology.PaperConfig(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	return core.Sync(dep.G, dep.Source)
}

// tinyJitter is a delta that provably changes nothing about adjacency —
// always applicable, always repairable.
func tinyJitter(in core.Instance, node int) churn.Delta {
	node %= in.G.N()
	return churn.Delta{Events: []churn.Event{
		{Kind: churn.PositionJitter, Node: node, X: 1e-9 * float64(node+1), Y: 1e-9},
	}}
}

// sourceJoin joins a node half a radius from the source — always connected.
func sourceJoin(in core.Instance, k int) churn.Delta {
	p := in.G.Pos(in.Source)
	return churn.Delta{Events: []churn.Event{
		{Kind: churn.NodeJoin, X: p.X + 0.25 + 0.01*float64(k), Y: p.Y + 0.25},
	}}
}

func encodeResult(t testing.TB, res *core.Result) []byte {
	t.Helper()
	data, err := graphio.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestServiceReplanBasics(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ctx := context.Background()
	base := replanBase(t, 60, 1)
	d := sourceJoin(base, 0)

	resp, err := svc.Replan(ctx, ReplanRequest{WorkloadRequest: WorkloadRequest{Instance: &base}, Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit || resp.Coalesced {
		t.Fatalf("first replan cannot be a cache hit: %+v", resp)
	}
	if resp.BaseDigest == resp.Digest {
		t.Fatal("join did not change the instance digest")
	}
	mutated, _, err := churn.Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Result.Schedule.Validate(mutated); err != nil {
		t.Fatalf("served repaired plan invalid: %v", err)
	}

	// Same (base, delta) again: replan cache hit.
	again, err := svc.Replan(ctx, ReplanRequest{WorkloadRequest: WorkloadRequest{Instance: &base}, Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatalf("repeat replan missed the cache: %+v", again)
	}
	if again.Result != resp.Result {
		t.Fatal("replan cache returned a different result pointer")
	}

	// A prefix/incremental repair must NOT poison the plan cache: a Plan
	// request for the mutated topology runs the real engine (it may be
	// asking for an exact schedule the repair cannot promise). Only cold
	// repairs — actual engine output — are published under the mutated
	// digest.
	pr, err := svc.Plan(ctx, Request{Instance: &mutated})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Digest != resp.Digest {
		t.Fatalf("digest mismatch: plan %s, replan %s", pr.Digest, resp.Digest)
	}
	if resp.Strategy != churn.StrategyCold && pr.CacheHit {
		t.Fatalf("%s repair leaked into the plan cache", resp.Strategy)
	}

	// Force a cold repair — fail a sender of the base plan's second
	// advance, which strands all but the first advance (< MinKeptFrac) —
	// and check it IS published: the follow-up Plan hits the cache.
	basePlan, err := core.NewGOPT(0).Schedule(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(basePlan.Schedule.Advances) < 2 {
		t.Fatal("base plan too short for the cold-repair scenario")
	}
	forcedCold := false
	for _, victim := range basePlan.Schedule.Advances[1].Senders {
		if victim == base.Source {
			continue
		}
		coldDelta := churn.Delta{Events: []churn.Event{{Kind: churn.NodeFail, Node: victim}}}
		cresp, err := svc.Replan(ctx, ReplanRequest{WorkloadRequest: WorkloadRequest{Instance: &base}, Delta: coldDelta})
		if err != nil {
			continue // this victim disconnects the deployment
		}
		if cresp.Strategy != churn.StrategyCold {
			t.Fatalf("early-sender failure should force a cold repair, got %s", cresp.Strategy)
		}
		forcedCold = true
		cmutated, _, err := churn.Apply(base, coldDelta)
		if err != nil {
			t.Fatal(err)
		}
		cpr, err := svc.Plan(ctx, Request{Instance: &cmutated})
		if err != nil {
			t.Fatal(err)
		}
		if !cpr.CacheHit {
			t.Fatal("cold repair was not published under the mutated digest")
		}
		break
	}
	if !forcedCold {
		t.Fatal("no early-sender failure was applicable")
	}

	m := svc.Metrics()
	if m.ReplanHits != 1 {
		t.Fatalf("replan metrics wrong: %+v", m)
	}
	if m.ReplanPrefix+m.ReplanIncremental+m.ReplanCold < 2 {
		t.Fatalf("at least two repairs should have been computed: %+v", m)
	}
}

func TestServiceReplanRejectsBadRequests(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ctx := context.Background()
	base := replanBase(t, 50, 2)
	if _, err := svc.Replan(ctx, ReplanRequest{WorkloadRequest: WorkloadRequest{Instance: &base}, Delta: churn.Delta{
		Events: []churn.Event{{Kind: "warp"}},
	}}); err == nil {
		t.Fatal("bad delta accepted")
	}
	if _, err := svc.Replan(ctx, ReplanRequest{Delta: churn.Delta{}}); err == nil {
		t.Fatal("request without base accepted")
	}
	if _, err := svc.Replan(ctx, ReplanRequest{WorkloadRequest: WorkloadRequest{Instance: &base, Scheduler: "nope"}}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	// A delta that kills the source is a request error, not a panic.
	if _, err := svc.Replan(ctx, ReplanRequest{WorkloadRequest: WorkloadRequest{Instance: &base}, Delta: churn.Delta{
		Events: []churn.Event{{Kind: churn.NodeFail, Node: base.Source}},
	}}); err == nil {
		t.Fatal("source-killing delta accepted")
	}
}

// TestServiceChurnConcurrency is the interleaving stress of the serving
// layer: 64 goroutines issue overlapping Plan / Replan / Validate requests
// on shared digests under -race, asserting singleflight coalescing (one
// computation per distinct key) and that no handed-out Result is mutated
// by a later replan — the immutability contract the engine-reuse pattern
// depends on.
func TestServiceChurnConcurrency(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()
	ctx := context.Background()
	bases := []core.Instance{replanBase(t, 50, 3), replanBase(t, 60, 4)}
	deltas := make([][]churn.Delta, len(bases))
	for bi, base := range bases {
		for k := 0; k < 3; k++ {
			deltas[bi] = append(deltas[bi], sourceJoin(base, k))
		}
	}

	// Snapshot one handed-out plan per base before the storm.
	type snap struct {
		res  *core.Result
		want []byte
	}
	var snaps []snap
	for i := range bases {
		resp, err := svc.Plan(ctx, Request{Instance: &bases[i]})
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap{res: resp.Result, want: encodeResult(t, resp.Result)})
	}

	const goroutines = 64
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		leaders = map[string]int{} // replan key → computations observed
		errs    []error
	)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bi := i % len(bases)
			base := bases[bi]
			switch i % 4 {
			case 0:
				if _, err := svc.Plan(ctx, Request{Instance: &base}); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			case 1:
				if _, err := svc.Validate(ctx, ValidateRequest{WorkloadRequest: WorkloadRequest{Instance: &base}, Trials: 16}); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			default:
				d := deltas[bi][i%3]
				resp, err := svc.Replan(ctx, ReplanRequest{WorkloadRequest: WorkloadRequest{Instance: &base}, Delta: d})
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				} else if !resp.CacheHit && !resp.Coalesced {
					leaders[resp.BaseDigest+"|"+resp.Digest]++
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("%d request errors, first: %v", len(errs), errs[0])
	}
	for key, n := range leaders {
		if n != 1 {
			t.Fatalf("replan key %s computed %d times — singleflight broken", key, n)
		}
	}
	// Every snapshotted Result must be byte-identical after the storm:
	// later replans (which share worker engines and buffers with the
	// original searches) must not have written into handed-out schedules.
	for i, sn := range snaps {
		if got := encodeResult(t, sn.res); !bytes.Equal(got, sn.want) {
			t.Fatalf("handed-out result %d mutated by later traffic:\nbefore: %s\nafter: %s", i, sn.want, got)
		}
	}
	// Plan searches are bounded by distinct plan keys: the two base plans
	// (computed before the storm) — everything else must have coalesced or
	// hit. Replan residual searches are tracked separately.
	if m := svc.Metrics(); m.Searches != int64(len(bases)) {
		t.Fatalf("expected %d plan searches, got %d (coalescing broken?)", len(bases), m.Searches)
	}
}

// A replan storm on a cold service computes the repair exactly once.
func TestServiceReplanSingleflight(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()
	ctx := context.Background()
	base := replanBase(t, 50, 5)
	d := sourceJoin(base, 0)

	const goroutines = 64
	var wg sync.WaitGroup
	computed := make(chan struct{}, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := svc.Replan(ctx, ReplanRequest{WorkloadRequest: WorkloadRequest{Instance: &base}, Delta: d})
			if err != nil {
				t.Error(err)
				return
			}
			if !resp.CacheHit && !resp.Coalesced {
				computed <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(computed)
	n := 0
	for range computed {
		n++
	}
	if n != 1 {
		t.Fatalf("%d goroutines computed the repair, want exactly 1", n)
	}
	m := svc.Metrics()
	if m.ReplanMisses != 1 {
		t.Fatalf("replan cache misses %d, want 1", m.ReplanMisses)
	}
	if total := m.ReplanPrefix + m.ReplanIncremental + m.ReplanCold; total != 1 {
		t.Fatalf("%d repairs computed, want 1", total)
	}
}
