package service

import (
	"context"
	"testing"

	"mlbs/internal/sim"
)

// TestPlanGeneratorSINR drives the SINR backend end to end through the
// serving layer: a generator request carrying SINR parameters must plan a
// schedule that the SINR replayer executes collision-free, cache it under
// a digest distinct from the protocol-model plan, and reject malformed
// parameters before touching the planner.
func TestPlanGeneratorSINR(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ctx := context.Background()

	graphReq := Request{Generator: &Generator{N: 60, Seed: 1}}
	sinrReq := Request{Generator: &Generator{N: 60, Seed: 1, SINRAlpha: 3, SINRBeta: 2}}

	graphResp, err := svc.Plan(ctx, graphReq)
	if err != nil {
		t.Fatal(err)
	}
	sinrResp, err := svc.Plan(ctx, sinrReq)
	if err != nil {
		t.Fatal(err)
	}
	if graphResp.Digest == sinrResp.Digest {
		t.Fatalf("SINR request shares digest %s with the protocol-model request", sinrResp.Digest)
	}

	in, err := svc.resolve(sinrReq)
	if err != nil {
		t.Fatal(err)
	}
	if in.SINR == nil || in.SINR.Alpha != 3 || in.SINR.Beta != 2 {
		t.Fatalf("resolved instance lost SINR params: %+v", in.SINR)
	}
	sched := sinrResp.Result.Schedule
	if err := sched.Validate(in); err != nil {
		t.Fatalf("planned schedule invalid under SINR: %v", err)
	}
	rep, err := sim.Replay(in, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || len(rep.Collisions) != 0 {
		t.Fatalf("SINR plan replayed with collisions: %+v", rep.Collisions)
	}

	// Same request again must be a cache hit, proving the SINR fields are
	// part of the generator cache key rather than ignored by it.
	again, err := svc.Plan(ctx, sinrReq)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("repeat SINR request missed the cache")
	}

	if _, err := svc.Plan(ctx, Request{Generator: &Generator{N: 60, Seed: 1, SINRAlpha: 3, SINRBeta: -1}}); err == nil {
		t.Fatal("service accepted a negative SINR threshold")
	}
}
