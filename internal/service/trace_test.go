package service

import (
	"context"
	"testing"
	"time"

	"mlbs/internal/churn"
	"mlbs/internal/obs"
)

// spanByName finds the first direct child of root with the given name.
func spanByName(root *obs.SpanSnapshot, name string) *obs.SpanSnapshot {
	for i := range root.Children {
		if root.Children[i].Name == name {
			return &root.Children[i]
		}
	}
	return nil
}

// TestTracedPlanSpans pins the tentpole contract: a traced cold plan's
// snapshot contains resolve, cache, search and improve phases with the
// engine's search-internal counters attached, while a traced warm hit
// shows the cache phase only — the search never re-ran, so no search span
// may appear.
func TestTracedPlanSpans(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	in := testInstance(t, 100, 7)
	req := Request{Instance: in, ImproveBudget: 20 * time.Millisecond}

	tr := obs.NewTrace("/v1/plan")
	resp, err := svc.Plan(obs.NewContext(context.Background(), tr), req)
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Finish(resp.Digest, "")
	if snap == nil || snap.Digest != resp.Digest {
		t.Fatalf("snapshot: %+v", snap)
	}

	rs := spanByName(&snap.Root, "resolve")
	if rs == nil || rs.Attrs["nodes"] != int64(100) {
		t.Fatalf("resolve span missing or unannotated: %+v", rs)
	}
	cs := spanByName(&snap.Root, "cache")
	if cs == nil || cs.Attrs["hit"] != false {
		t.Fatalf("cache span missing or wrong: %+v", cs)
	}
	ss := spanByName(&snap.Root, "search")
	if ss == nil {
		t.Fatal("cold plan trace has no search span")
	}
	if exp, _ := ss.Attrs["expanded"].(int64); exp <= 0 {
		t.Fatalf("search span reports no expansions: %v", ss.Attrs)
	}
	if d, _ := ss.Attrs["search_depth"].(int64); d <= 0 {
		t.Fatalf("traced search collected no depth profile: %v", ss.Attrs)
	}
	is := spanByName(&snap.Root, "improve")
	if is == nil {
		t.Fatal("cold plan trace has no improve span")
	}
	if is.Attrs["budget_ns"] != int64(20*time.Millisecond) {
		t.Fatalf("improve span budget: %v", is.Attrs)
	}

	// The engine totals behind mlbs_engine_states_total moved.
	if m := svc.Metrics(); m.EngineStates <= 0 {
		t.Fatalf("EngineStates = %d after a cold search", m.EngineStates)
	}

	// Warm traced hit: cache phase only.
	tr2 := obs.NewTrace("/v1/plan")
	resp2, err := svc.Plan(obs.NewContext(context.Background(), tr2), Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.CacheHit {
		t.Fatal("second plan missed the cache")
	}
	snap2 := tr2.Finish(resp2.Digest, "")
	cs2 := spanByName(&snap2.Root, "cache")
	if cs2 == nil || cs2.Attrs["hit"] != true {
		t.Fatalf("warm cache span: %+v", cs2)
	}
	if spanByName(&snap2.Root, "search") != nil {
		t.Fatal("warm hit trace grew a search span")
	}
}

// TestTracedUntracedResultsIdentical pins golden-safety at the service
// level: the Result a traced request computes is identical — same
// schedule, same aggregate stats — to the untraced one, because the depth
// profile observes the identical search rather than steering it.
func TestTracedUntracedResultsIdentical(t *testing.T) {
	in := testInstance(t, 120, 3)

	svcA := New(Config{Workers: 1})
	plain, err := svcA.Plan(context.Background(), Request{Instance: in})
	svcA.Close()
	if err != nil {
		t.Fatal(err)
	}

	svcB := New(Config{Workers: 1})
	defer svcB.Close()
	tr := obs.NewTrace("/v1/plan")
	traced, err := svcB.Plan(obs.NewContext(context.Background(), tr), Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish(traced.Digest, "")

	if traced.Digest != plain.Digest {
		t.Fatalf("digest drifted: %s vs %s", traced.Digest, plain.Digest)
	}
	if traced.Result.Schedule.End() != plain.Result.Schedule.End() ||
		traced.Result.PA != plain.Result.PA ||
		traced.Result.Stats.Expanded != plain.Result.Stats.Expanded ||
		traced.Result.Stats.MemoHits != plain.Result.Stats.MemoHits {
		t.Fatalf("traced result diverged: %+v vs %+v", traced.Result.Stats, plain.Result.Stats)
	}
	if plain.Result.Stats.Depths != nil {
		t.Fatal("untraced service result carries a depth profile")
	}
	if traced.Result.Stats.Depths == nil {
		t.Fatal("traced service result lost its depth profile")
	}
}

// TestTracedReplanSpan pins the churn path's observability: a traced cold
// replan snapshot carries a repair span with the classification outcome
// and kept-prefix accounting.
func TestTracedReplanSpan(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	in := testInstance(t, 100, 7)
	if _, err := svc.Plan(context.Background(), Request{Instance: in}); err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTrace("/v1/replan")
	resp, err := svc.Replan(obs.NewContext(context.Background(), tr), ReplanRequest{
		WorkloadRequest: WorkloadRequest{Instance: in},
		Delta:           churn.Delta{Events: []churn.Event{{Kind: churn.PositionJitter, Node: 1, X: 1e-9, Y: 1e-9}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Finish(resp.Digest, "")

	cs := spanByName(&snap.Root, "cache")
	if cs == nil || cs.Attrs["hit"] != false {
		t.Fatalf("replan cache span: %+v", cs)
	}
	rp := spanByName(&snap.Root, "repair")
	if rp == nil {
		t.Fatal("replan trace has no repair span")
	}
	if rp.Attrs["strategy"] != string(resp.Strategy) {
		t.Fatalf("repair strategy attr %v, response %v", rp.Attrs["strategy"], resp.Strategy)
	}
	if rp.Attrs["base_advances"] != int64(resp.BaseAdvances) {
		t.Fatalf("repair base_advances attr: %v", rp.Attrs)
	}
}
