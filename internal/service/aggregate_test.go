package service

import (
	"context"
	"sync"
	"testing"

	"mlbs/internal/sim"
)

func TestAggregateBasic(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	req := AggregateRequest{WorkloadRequest{Generator: &Generator{N: 80, Seed: 3}}}

	resp, err := s.Aggregate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("first aggregation cannot be a cache hit")
	}
	if resp.Scheduler != "agg-spt" {
		t.Fatalf("scheduler = %q", resp.Scheduler)
	}
	if len(resp.Digest) != 64 {
		t.Fatalf("digest %q", resp.Digest)
	}
	in, err := s.resolve(req.WorkloadRequest)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Result.Schedule.Validate(in); err != nil {
		t.Fatalf("served aggregation schedule invalid: %v", err)
	}
	rep, err := sim.ReplayAggregate(in, resp.Result.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("served schedule does not complete: %+v", rep)
	}

	again, err := s.Aggregate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("repeat aggregation missed the cache")
	}
	if again.Result != resp.Result {
		t.Fatal("cache hit returned a different result object")
	}

	// The aggregation digest must not alias the broadcast digest of the
	// same topology: the two workloads answer different questions.
	pr, err := s.Plan(ctx, Request{Generator: &Generator{N: 80, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Digest == resp.Digest {
		t.Fatal("aggregation digest aliases the broadcast digest")
	}

	m := s.Metrics()
	if m.Aggregates != 2 || m.AggSearches != 1 || m.AggregateHits != 1 || m.AggregateMisses != 1 {
		t.Fatalf("aggregation metrics = %+v", m)
	}
}

// TestAggregateSystems serves convergecast plans across the wake/channel/
// interference matrix the acceptance criterion names: sync and duty at
// K∈{1,4}, graph and SINR oracles, both tree policies.
func TestAggregateSystems(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		gen  Generator
		kind string
	}{
		{"sync/k1", Generator{N: 60, Seed: 1}, ""},
		{"sync/k4", Generator{N: 60, Seed: 1, Channels: 4}, ""},
		{"duty/k1", Generator{N: 60, Seed: 1, DutyRate: 5}, ""},
		{"duty/k4", Generator{N: 60, Seed: 1, DutyRate: 5, Channels: 4}, ""},
		{"sinr/k2", Generator{N: 60, Seed: 1, Channels: 2, SINRAlpha: 3, SINRBeta: 1}, ""},
		{"bounded", Generator{N: 60, Seed: 1}, "agg-bounded"},
	} {
		gen := tc.gen
		req := AggregateRequest{WorkloadRequest{Generator: &gen, Scheduler: tc.kind}}
		resp, err := s.Aggregate(ctx, req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		in, err := s.resolve(req.WorkloadRequest)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Result.Schedule.Validate(in); err != nil {
			t.Fatalf("%s: invalid schedule: %v", tc.name, err)
		}
		if resp.Result.LatencySlots <= 0 {
			t.Fatalf("%s: latency %d", tc.name, resp.Result.LatencySlots)
		}
	}
	// The bounded tree is a different plan family: its entry must not
	// share the SPT cache slot.
	spt, err := s.Aggregate(ctx, AggregateRequest{WorkloadRequest{Generator: &Generator{N: 60, Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := s.Aggregate(ctx, AggregateRequest{WorkloadRequest{Generator: &Generator{N: 60, Seed: 1}, Scheduler: "agg-bounded"}})
	if err != nil {
		t.Fatal(err)
	}
	if !spt.CacheHit || !bounded.CacheHit {
		t.Fatalf("matrix entries should be cached: spt=%v bounded=%v", spt.CacheHit, bounded.CacheHit)
	}
	if spt.Result == bounded.Result {
		t.Fatal("tree policies share one cache entry")
	}
}

// TestAggregateConcurrentCoalesces: concurrent identical requests run the
// scheduler exactly once.
func TestAggregateConcurrentCoalesces(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	req := AggregateRequest{WorkloadRequest{Generator: &Generator{N: 100, Seed: 7}}}
	const goroutines = 16
	var wg sync.WaitGroup
	resps := make([]AggregateResponse, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Aggregate(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < goroutines; i++ {
		if resps[i].Result != resps[0].Result {
			t.Fatalf("goroutine %d saw a different result object", i)
		}
	}
	if m := s.Metrics(); m.AggSearches != 1 {
		t.Fatalf("ran %d scheduler runs for %d identical requests, want 1", m.AggSearches, goroutines)
	}
}

func TestAggregateNoCacheRecomputesButStores(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	req := AggregateRequest{WorkloadRequest{Generator: &Generator{N: 60, Seed: 2}, NoCache: true}}
	for i := 0; i < 2; i++ {
		resp, err := s.Aggregate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit {
			t.Fatalf("request %d: NoCache request reported a hit", i)
		}
	}
	if m := s.Metrics(); m.AggSearches != 2 {
		t.Fatalf("scheduler runs = %d, want 2", m.AggSearches)
	}
	req.NoCache = false
	resp, err := s.Aggregate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("NoCache results must still populate the cache")
	}
}

func TestAggregateRejectsBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	cases := []AggregateRequest{
		{},
		{WorkloadRequest{Generator: &Generator{N: 40, Seed: 1}, Scheduler: "gopt"}},
		{WorkloadRequest{Generator: &Generator{N: 0, Seed: 1}}},
	}
	for i, req := range cases {
		if _, err := s.Aggregate(ctx, req); err == nil {
			t.Fatalf("case %d accepted: %+v", i, req)
		}
	}
	s.Close()
	if _, err := s.Aggregate(ctx, AggregateRequest{WorkloadRequest{Generator: &Generator{N: 10, Seed: 1}}}); err == nil {
		t.Fatal("aggregate after close succeeded")
	}
}
