package service

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"mlbs/internal/core"
	"mlbs/internal/graphio"
	"mlbs/internal/obs"
	"mlbs/internal/reliability"
)

// MaxValidateTrials caps one validation's Monte-Carlo batch so a single
// request cannot pin a worker indefinitely.
const MaxValidateTrials = 100_000

// ValidateRequest asks the service what a schedule actually delivers on a
// lossy channel: plan the instance (through the regular plan cache), then
// Monte-Carlo-replay the schedule under the loss model. The embedded
// envelope selects the instance and the plan whose schedule is validated;
// its NoCache bypasses the reliability-report cache only (the plan cache
// still serves the schedule), and its ImproveBudget is ignored.
type ValidateRequest struct {
	WorkloadRequest
	// Loss is the stochastic channel (defaults: iid kind).
	Loss reliability.LossModel
	// Trials sizes the Monte-Carlo batch; 0 selects the reliability
	// package default, values above MaxValidateTrials are rejected.
	Trials int
	// Target, when > 0, additionally runs conflict-aware retransmission
	// repair until the mean delivery ratio reaches it (see
	// reliability.RepairConfig).
	Target float64
	// MaxExtraSlots caps the repair latency penalty; 0 selects the
	// default.
	MaxExtraSlots int
}

// ValidateResponse is one validation answer. Report (and Repair, when a
// target was set) are shared and immutable.
type ValidateResponse struct {
	Digest    string
	Scheduler string
	// Report is the Monte-Carlo estimate — for repair runs, the estimate
	// of the *repaired* schedule (Repair.Before holds the baseline).
	Report *reliability.Report
	Repair *reliability.RepairResult
	// PlanCacheHit reports whether the underlying schedule came from the
	// plan cache; CacheHit/Coalesced describe the reliability-report
	// cache.
	PlanCacheHit bool
	CacheHit     bool
	Coalesced    bool
	Elapsed      time.Duration
}

// validateKey extends the plan key with everything the Monte-Carlo answer
// depends on: loss-model parameters, trial count, and the repair target.
func validateKey(pkey string, m reliability.LossModel, trials int, target float64, maxExtra int) string {
	return pkey + "|v|" + m.Kind +
		"|" + strconv.FormatFloat(m.Rate, 'x', -1, 64) +
		"|" + strconv.FormatUint(m.Seed, 10) +
		"|" + strconv.Itoa(trials) +
		"|" + strconv.FormatFloat(target, 'x', -1, 64) +
		"|" + strconv.Itoa(maxExtra)
}

// dispatchValidate queues one Monte-Carlo job on the worker shard owned by
// key and waits for its outcome.
func (s *Service) dispatchValidate(ctx context.Context, key string, in core.Instance, sp spec, vj *valJob) (*validateOutcome, error) {
	r, err := s.dispatchJob(ctx, key, job{in: in, sp: sp, val: vj, tr: obs.FromContext(ctx)})
	if err != nil {
		return nil, err
	}
	return r.out, r.err
}

// Validate answers one reliability request: resolve the instance, obtain
// its schedule through the plan cache, then serve the Monte-Carlo report
// from the reliability cache — computing it at most once even under
// concurrent identical requests.
func (s *Service) Validate(ctx context.Context, req ValidateRequest) (ValidateResponse, error) {
	start := time.Now()
	if err := s.enter(); err != nil {
		return ValidateResponse{}, err
	}
	defer s.inflight.Done()
	if err := ctx.Err(); err != nil {
		return ValidateResponse{}, err
	}
	sp, err := parseSpec(req.Scheduler, req.Budget)
	if err != nil {
		return ValidateResponse{}, err
	}
	model, err := req.Loss.Normalize()
	if err != nil {
		return ValidateResponse{}, err
	}
	trials := req.Trials
	if trials <= 0 {
		trials = reliability.DefaultTrials
	}
	if trials > MaxValidateTrials {
		return ValidateResponse{}, fmt.Errorf("service: %d trials exceeds the cap of %d", trials, MaxValidateTrials)
	}
	if req.Target < 0 || req.Target > 1 {
		return ValidateResponse{}, fmt.Errorf("service: repair target %v outside [0, 1]", req.Target)
	}
	maxExtra := req.MaxExtraSlots
	if maxExtra <= 0 {
		maxExtra = reliability.DefaultMaxExtraSlots
	}
	if req.Target == 0 {
		// No repair: the slot budget cannot influence the answer, so
		// normalize it out of the cache key — distinct max_extra_slots
		// values must not fragment the cache over identical work.
		maxExtra = 0
	}
	in, err := s.resolve(req.WorkloadRequest)
	if err != nil {
		return ValidateResponse{}, err
	}
	digest, err := graphio.InstanceDigest(in)
	if err != nil {
		return ValidateResponse{}, err
	}
	pkey := planKey(digest, sp)
	s.validations.Add(1)

	// The schedule itself always goes through the plan cache: re-running
	// the search would not change the Monte-Carlo answer, only waste a
	// worker.
	tr := obs.FromContext(ctx)
	ps := tr.Root().Child("cache")
	res, planHit, _, err := s.planFor(ctx, pkey, in, sp, false, 0)
	if err != nil {
		ps.End()
		s.errs.Add(1)
		return ValidateResponse{}, err
	}
	if ps != nil {
		ps.SetBool("hit", planHit)
	}
	ps.End()

	vkey := validateKey(pkey, model, trials, req.Target, maxExtra)
	vj := &valJob{sched: res.Schedule, model: model, trials: trials, target: req.Target, maxExtra: maxExtra}
	vs := tr.Root().Child("mc_validate")
	if vs != nil {
		vs.SetInt("trials", int64(trials))
		vs.SetFloat("target", req.Target)
	}
	out, hit, coalesced, err := cachedCompute(ctx, s.vcache, vkey, req.NoCache,
		func(ctx context.Context) (*validateOutcome, error) {
			return s.dispatchValidate(ctx, vkey, in, sp, vj)
		})
	if err != nil {
		vs.End()
		s.errs.Add(1)
		return ValidateResponse{}, err
	}
	if vs != nil {
		vs.SetBool("hit", hit)
		vs.SetBool("coalesced", coalesced)
		if out.report != nil {
			vs.SetFloat("delivery_mean", out.report.MeanDeliveryRatio)
		}
	}
	vs.End()
	return ValidateResponse{
		Digest:       digest.String(),
		Scheduler:    res.Scheduler,
		Report:       out.report,
		Repair:       out.repair,
		PlanCacheHit: planHit,
		CacheHit:     hit,
		Coalesced:    coalesced,
		Elapsed:      time.Since(start),
	}, nil
}
