package service

import (
	"context"
	"fmt"
	"time"

	"mlbs/internal/aggregate"
	"mlbs/internal/core"
	"mlbs/internal/graphio"
	"mlbs/internal/obs"
)

// AggregateRequest asks the service for a conflict-aware minimum-latency
// convergecast schedule: every node's reading routed to the sink (the
// instance's Source read in reverse) along an aggregation tree, merged at
// parents on the way. The embedded envelope selects the instance and the
// tree policy — Scheduler is "" or "agg-spt" (shortest-path tree, the
// default) or "agg-bounded" (degree-bounded SPT); Budget and ImproveBudget
// are ignored, and NoCache bypasses the convergecast-plan cache (the
// result is still stored).
type AggregateRequest struct {
	WorkloadRequest
}

// AggregateResponse is one aggregation answer. Result is shared and
// immutable.
type AggregateResponse struct {
	// Digest content-addresses the instance *as an aggregation problem* —
	// the broadcast digest stream plus the "agg" tag, so convergecast and
	// broadcast plans for one topology never alias.
	Digest    string
	Scheduler string
	Result    *aggregate.Result
	CacheHit  bool
	Coalesced bool
	Elapsed   time.Duration
}

// aggJob carries one convergecast scheduling run onto a worker.
type aggJob struct {
	kind string // resolved scheduler name: agg-spt | agg-bounded
}

// parseAggSpec normalizes the aggregation scheduler selection.
func parseAggSpec(name string) (string, error) {
	switch name {
	case "", "agg-spt":
		return "agg-spt", nil
	case "agg-bounded":
		return "agg-bounded", nil
	default:
		return "", fmt.Errorf("service: unknown aggregation scheduler %q (want agg-spt|agg-bounded)", name)
	}
}

// aggScheduler returns the worker's reusable convergecast scheduler for a
// resolved kind, building it on first use. Only the worker's own goroutine
// calls this.
func (w *worker) aggScheduler(kind string) *aggregate.Scheduler {
	sched, ok := w.aggs[kind]
	if !ok {
		sched = &aggregate.Scheduler{}
		if kind == "agg-bounded" {
			sched.Tree = aggregate.TreeBounded
		}
		w.aggs[kind] = sched
	}
	return sched
}

// execAggregate runs one convergecast scheduling job on the worker's
// reusable scheduler.
func (w *worker) execAggregate(s *Service, jb job) (*aggregate.Result, error) {
	span := jb.tr.Root().Child("agg_search")
	defer span.End()
	res, err := w.aggScheduler(jb.agg.kind).Schedule(jb.in)
	if err != nil {
		return nil, err
	}
	s.aggSearches.Add(1)
	if span != nil {
		span.SetStr("scheduler", res.Scheduler)
		span.SetInt("latency_slots", int64(res.LatencySlots))
		span.SetInt("advances", int64(len(res.Schedule.Advances)))
	}
	return res, nil
}

// dispatchAggregate queues one convergecast run on the worker shard owned
// by key and waits for its result.
func (s *Service) dispatchAggregate(ctx context.Context, key string, in core.Instance, kind string) (*aggregate.Result, error) {
	r, err := s.dispatchJob(ctx, key, job{in: in, agg: &aggJob{kind: kind}, tr: obs.FromContext(ctx)})
	if err != nil {
		return nil, err
	}
	return r.agg, r.err
}

// Aggregate answers one convergecast request: from the aggregation cache
// when the instance has been scheduled before, otherwise by exactly one
// scheduler run even under concurrent identical requests — the same
// serving discipline Plan uses, against a separate cache keyed by the
// "agg"-tagged digest.
func (s *Service) Aggregate(ctx context.Context, req AggregateRequest) (AggregateResponse, error) {
	start := time.Now()
	if err := s.enter(); err != nil {
		return AggregateResponse{}, err
	}
	defer s.inflight.Done()
	if err := ctx.Err(); err != nil {
		return AggregateResponse{}, err
	}
	kind, err := parseAggSpec(req.Scheduler)
	if err != nil {
		return AggregateResponse{}, err
	}
	tr := obs.FromContext(ctx)
	rs := tr.Root().Child("resolve")
	in, err := s.resolve(req.WorkloadRequest)
	if err != nil {
		rs.End()
		return AggregateResponse{}, err
	}
	digest, err := graphio.AggInstanceDigest(in)
	if err != nil {
		rs.End()
		return AggregateResponse{}, err
	}
	if rs != nil {
		rs.SetInt("nodes", int64(in.G.N()))
		rs.SetStr("scheduler", kind)
	}
	rs.End()
	key := digest.String() + "|" + kind

	s.aggregates.Add(1)
	cs := tr.Root().Child("cache")
	res, hit, coalesced, err := cachedCompute(ctx, s.acache, key, req.NoCache,
		func(ctx context.Context) (*aggregate.Result, error) {
			return s.dispatchAggregate(ctx, key, in, kind)
		})
	elapsed := time.Since(start)
	if err != nil {
		cs.End()
		s.errs.Add(1)
		return AggregateResponse{}, err
	}
	cs.SetBool("hit", hit)
	cs.SetBool("coalesced", coalesced)
	cs.End()
	if hit {
		s.hitHist.observe(elapsed)
	} else {
		s.missHist.observe(elapsed)
	}
	return AggregateResponse{
		Digest:    digest.String(),
		Scheduler: res.Scheduler,
		Result:    res,
		CacheHit:  hit,
		Coalesced: coalesced,
		Elapsed:   elapsed,
	}, nil
}
