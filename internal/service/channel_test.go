package service

import (
	"context"
	"testing"

	"mlbs/internal/churn"
	"mlbs/internal/core"
	"mlbs/internal/reliability"
	"mlbs/internal/sim"
)

// TestPlanChannels exercises the channels parameter end to end through the
// serving layer: distinct cache entries per K, valid channelized plans,
// and the canonical K ∈ {0, 1} aliasing onto one entry.
func TestPlanChannels(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ctx := context.Background()

	plan := func(k int) Response {
		t.Helper()
		resp, err := svc.Plan(ctx, Request{Generator: &Generator{N: 60, Seed: 1, DutyRate: 10, Channels: k}})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	r0 := plan(0)
	r4 := plan(4)
	if r0.Digest == r4.Digest {
		t.Fatal("K=4 instance shares the K=1 digest")
	}
	if r4.Result.Schedule.Latency() > r0.Result.Schedule.Latency() {
		t.Fatalf("K=4 latency %d worse than single-channel %d",
			r4.Result.Schedule.Latency(), r0.Result.Schedule.Latency())
	}

	// The channelized plan validates and replays clean against the same
	// instance the service planned.
	in, err := svc.resolve(Request{Generator: &Generator{N: 60, Seed: 1, DutyRate: 10, Channels: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r4.Result.Schedule.Validate(in); err != nil {
		t.Fatalf("served channelized plan invalid: %v", err)
	}
	rep, err := sim.Replay(in, r4.Result.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("served channelized plan does not replay complete")
	}

	// K=1 canonicalizes onto the K=0 entry; K=4 repeats hit their own.
	if r := plan(1); !r.CacheHit || r.Digest != r0.Digest {
		t.Fatalf("K=1 did not hit the single-channel entry: hit=%v digest=%s", r.CacheHit, r.Digest)
	}
	if r := plan(4); !r.CacheHit {
		t.Fatal("K=4 repeat missed the cache")
	}

	if _, err := svc.Plan(ctx, Request{Generator: &Generator{N: 60, Seed: 1, Channels: core.MaxChannels + 1}}); err == nil {
		t.Fatal("out-of-range channel count accepted")
	}
}

// TestReplanChannels repairs a channelized base plan after churn through
// the serving layer and validates the repaired plan against the mutated
// channelized instance.
func TestReplanChannels(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ctx := context.Background()

	gen := &Generator{N: 60, Seed: 1, DutyRate: 10, Channels: 4}
	delta := churn.Delta{Events: []churn.Event{
		{Kind: churn.PositionJitter, Node: 7, X: 0.4, Y: -0.3},
		{Kind: churn.NodeJoin, X: 25, Y: 25},
	}}
	resp, err := svc.Replan(ctx, ReplanRequest{WorkloadRequest: WorkloadRequest{Generator: gen}, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if resp.BaseDigest == resp.Digest {
		t.Fatal("mutated digest equals base digest")
	}

	base, err := svc.resolve(Request{Generator: gen})
	if err != nil {
		t.Fatal(err)
	}
	mutated, _, err := churn.Apply(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if mutated.K() != 4 {
		t.Fatalf("churn.Apply lost the channel count: K=%d", mutated.K())
	}
	if err := resp.Result.Schedule.Validate(mutated); err != nil {
		t.Fatalf("repaired channelized plan invalid: %v", err)
	}

	if r2, err := svc.Replan(ctx, ReplanRequest{WorkloadRequest: WorkloadRequest{Generator: gen}, Delta: delta}); err != nil || !r2.CacheHit {
		t.Fatalf("replan repeat: hit=%v err=%v", r2.CacheHit, err)
	}
}

// TestValidateChannels runs the Monte-Carlo validation endpoint logic on a
// channelized plan: the estimator replays the channelized schedule, and
// repair (when needed) packs its retransmission classes onto channels.
func TestValidateChannels(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ctx := context.Background()

	resp, err := svc.Validate(ctx, ValidateRequest{
		WorkloadRequest: WorkloadRequest{Generator: &Generator{N: 60, Seed: 1, Channels: 4}},
		Loss:            reliability.LossModel{Rate: 0.05, Seed: 3},
		Trials:          64,
		Target:          0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Report == nil || resp.Report.Trials != 64 {
		t.Fatalf("report = %+v", resp.Report)
	}
	if resp.Repair != nil && resp.Repair.RepairedLatency < resp.Repair.BaseLatency {
		t.Fatal("repair shortened the schedule")
	}
}
