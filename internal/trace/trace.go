// Package trace reconstructs the paper's schedule-derivation tables
// (Tables II, III, IV): for every state along the optimal G-OPT path it
// lists the greedy colors, the time counter M of firing each of them, the
// selected color, and the resulting broadcasting advance. The mlb-trace
// command renders these rows in the paper's format.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"mlbs/internal/bitset"
	"mlbs/internal/color"
	"mlbs/internal/core"
	"mlbs/internal/graph"
)

// ColorEval is one column of a row: a candidate color and the value
// M(W + C, t+1) of committing to it.
type ColorEval struct {
	Class []graph.NodeID
	M     int
	Exact bool
}

// Row is one line of the decision table.
type Row struct {
	W        []graph.NodeID // coverage when the decision is made
	T        int            // slot of the decision
	Idle     bool           // no candidate awake at T (Table IV's "N/A" rows)
	Colors   []ColorEval
	Selected int // index into Colors of the fired class (-1 when idle)
	Advance  []graph.NodeID
}

// Namer maps a node ID to its display label (e.g. the paper's "s", "0"…).
type Namer func(graph.NodeID) string

// DefaultNamer prints the numeric node ID.
func DefaultNamer(u graph.NodeID) string { return fmt.Sprintf("%d", u) }

// GOPT derives the decision table of the optimal greedy-color schedule for
// the instance. budget ≤ 0 uses the search default. The table follows the
// optimal path: at every state each color's M is evaluated exactly and the
// minimizing color fires (ties to the earlier greedy color, matching the
// paper's tables).
func GOPT(in core.Instance, budget int) ([]Row, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.G.N()
	w := bitset.New(n)
	w.Add(in.Source)
	for _, u := range in.PreCovered {
		w.Add(u)
	}
	var rows []Row
	t := in.Start
	for w.Len() < n {
		cands := color.AwakeCandidates(in.G, w, in.Wake, t)
		if len(cands) == 0 {
			rows = append(rows, Row{W: w.Members(), T: t, Idle: true, Selected: -1})
			t = nextUseful(in, w, t)
			continue
		}
		classes := color.GreedyPartition(in.G, w, cands)
		row := Row{W: w.Members(), T: t, Selected: -1}
		bestM, bestIdx := 0, -1
		for ci, cls := range classes {
			w2 := bitset.Union(w, cls.Covered(in.G, w))
			var m int
			exact := true
			if w2.Len() == n {
				m = t
			} else {
				sub := in
				sub.Start = t + 1
				sub.PreCovered = preCoveredOf(w2, in.Source)
				res, err := core.NewGOPT(budget).Schedule(sub)
				if err != nil {
					return nil, fmt.Errorf("trace: evaluating color %d at t=%d: %w", ci+1, t, err)
				}
				m, exact = res.PA, res.Exact
			}
			row.Colors = append(row.Colors, ColorEval{Class: cls, M: m, Exact: exact})
			if bestIdx < 0 || m < bestM {
				bestM, bestIdx = m, ci
			}
		}
		row.Selected = bestIdx
		adv := classes[bestIdx].Covered(in.G, w)
		row.Advance = adv.Members()
		rows = append(rows, row)
		w.UnionWith(adv)
		t++
	}
	return rows, nil
}

// Tree derives the paper's *full* decision table: Tables III and IV list
// not only the optimal path but every state reachable by committing to any
// greedy color — the whole evaluation tree of the time counter M, breadth-
// first, with duplicate states merged (the paper prints M({s,0−9},4) once
// even though two branches reach it). Terminal commitments (full coverage)
// appear as M values in their parent's row, matching the tables' "M(N,·)"
// cells. maxRows caps the expansion; budget ≤ 0 uses the search default.
func Tree(in core.Instance, budget, maxRows int) ([]Row, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if maxRows <= 0 {
		maxRows = 256
	}
	n := in.G.N()
	type state struct {
		w bitset.Set
		t int
	}
	w0 := bitset.New(n)
	w0.Add(in.Source)
	for _, u := range in.PreCovered {
		w0.Add(u)
	}
	queue := []state{{w: w0, t: in.Start}}
	seen := map[string]bool{stateKey(w0, in.Start): true}
	var rows []Row
	for len(queue) > 0 && len(rows) < maxRows {
		st := queue[0]
		queue = queue[1:]
		cands := color.AwakeCandidates(in.G, st.w, in.Wake, st.t)
		if len(cands) == 0 {
			rows = append(rows, Row{W: st.w.Members(), T: st.t, Idle: true, Selected: -1})
			t2 := nextUseful(in, st.w, st.t)
			if key := stateKey(st.w, t2); !seen[key] {
				seen[key] = true
				queue = append(queue, state{w: st.w, t: t2})
			}
			continue
		}
		classes := color.GreedyPartition(in.G, st.w, cands)
		row := Row{W: st.w.Members(), T: st.t, Selected: -1}
		bestM, bestIdx := 0, -1
		for ci, cls := range classes {
			w2 := bitset.Union(st.w, cls.Covered(in.G, st.w))
			m, exact, err := evalM(in, w2, st.t, budget)
			if err != nil {
				return nil, err
			}
			row.Colors = append(row.Colors, ColorEval{Class: cls, M: m, Exact: exact})
			if bestIdx < 0 || m < bestM {
				bestM, bestIdx = m, ci
			}
			if w2.Len() == n {
				continue // terminal: shown as M in this row, no child row
			}
			if key := stateKey(w2, st.t+1); !seen[key] {
				seen[key] = true
				queue = append(queue, state{w: w2, t: st.t + 1})
			}
		}
		row.Selected = bestIdx
		row.Advance = classes[bestIdx].Covered(in.G, st.w).Members()
		rows = append(rows, row)
	}
	return rows, nil
}

// evalM returns M(w2, ·) — the end slot of the optimal greedy-color
// continuation after coverage reached w2 at slot t.
func evalM(in core.Instance, w2 bitset.Set, t, budget int) (int, bool, error) {
	if w2.Len() == in.G.N() {
		return t, true, nil
	}
	sub := in
	sub.Start = t + 1
	sub.PreCovered = preCoveredOf(w2, in.Source)
	res, err := core.NewGOPT(budget).Schedule(sub)
	if err != nil {
		return 0, false, fmt.Errorf("trace: evaluating M at t=%d: %w", t, err)
	}
	return res.PA, res.Exact, nil
}

func stateKey(w bitset.Set, t int) string {
	return fmt.Sprintf("%s@%d", w.Key(), t)
}

// nextUseful returns the first slot after t at which some candidate wakes.
func nextUseful(in core.Instance, w bitset.Set, t int) int {
	best := -1
	for _, u := range color.Candidates(in.G, w) {
		nw := in.Wake.NextAwake(u, t+1)
		if best < 0 || nw < best {
			best = nw
		}
	}
	if best < 0 {
		return t + 1
	}
	return best
}

func preCoveredOf(w bitset.Set, source graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	w.ForEach(func(u int) {
		if u != source {
			out = append(out, u)
		}
	})
	return out
}

// FormatSet renders a node set as "{s, 0, 1}" under the namer.
func FormatSet(nodes []graph.NodeID, name Namer) string {
	labels := make([]string, len(nodes))
	for i, u := range nodes {
		labels[i] = name(u)
	}
	return "{" + strings.Join(labels, ",") + "}"
}

// Render prints the rows in the paper's table layout.
func Render(rows []Row, name Namer) string {
	if name == nil {
		name = DefaultNamer
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-22s %-26s %-10s %s\n",
		"Task M(W,t)", "colors C1..Cλ", "M in consideration", "selected", "A(W,t)")
	for _, row := range rows {
		task := fmt.Sprintf("M(%s, %d)", FormatSet(row.W, name), row.T)
		if row.Idle {
			fmt.Fprintf(&b, "%-28s %-22s %-26s %-10s %s\n", task, "N/A", "", "N/A", "{}")
			continue
		}
		for ci, ce := range row.Colors {
			colName := fmt.Sprintf("C%d: %s", ci+1, FormatSet(ce.Class, name))
			mval := fmt.Sprintf("M=%d", ce.M)
			if !ce.Exact {
				mval += " (bound)"
			}
			sel, adv := "", ""
			if ci == row.Selected {
				sel = fmt.Sprintf("C%d", ci+1)
				adv = FormatSet(row.Advance, name)
			}
			lead := ""
			if ci == 0 {
				lead = task
			}
			fmt.Fprintf(&b, "%-28s %-22s %-26s %-10s %s\n", lead, colName, mval, sel, adv)
		}
	}
	return b.String()
}

// PA returns the end slot implied by the trace (the T of the last firing
// row), matching Schedule.PA of the traced schedule.
func PA(rows []Row) int {
	end := 0
	for _, r := range rows {
		if !r.Idle {
			end = r.T
		}
	}
	return end
}

// Sort guarantees deterministic member order inside every row (defensive;
// builders already emit sorted sets).
func Sort(rows []Row) {
	for i := range rows {
		sort.Ints(rows[i].W)
		sort.Ints(rows[i].Advance)
	}
}
