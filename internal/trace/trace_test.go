package trace

import (
	"strings"
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/paperfig"
)

// fig2Namer labels Figure 2 nodes 1..5 as the paper does.
func fig2Namer(u graph.NodeID) string {
	return string(rune('1' + u))
}

// fig1Namer labels Figure 1 nodes s, 0..10.
func fig1Namer(u graph.NodeID) string {
	if u == paperfig.Fig1S {
		return "s"
	}
	return DefaultNamer(u - 1)
}

// Table II: two decision rows; row 1 fires {1}, row 2 evaluates colors
// {2} (M=2, selected) and {3} (M=3).
func TestTableIITrace(t *testing.T) {
	g, src := paperfig.Figure2()
	rows, err := GOPT(core.Sync(g, src), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	r0 := rows[0]
	if r0.T != 1 || len(r0.Colors) != 1 || r0.Selected != 0 {
		t.Fatalf("row 0 = %+v", r0)
	}
	r1 := rows[1]
	if len(r1.Colors) != 2 {
		t.Fatalf("row 1 colors = %+v", r1.Colors)
	}
	if r1.Colors[0].M != 2 || !r1.Colors[0].Exact {
		t.Fatalf("C1 M = %+v, want exact 2", r1.Colors[0])
	}
	if r1.Colors[1].M != 3 {
		t.Fatalf("C2 M = %d, want 3", r1.Colors[1].M)
	}
	if r1.Selected != 0 {
		t.Fatalf("selected = %d, want C1", r1.Selected)
	}
	if PA(rows) != 2 {
		t.Fatalf("PA = %d, want 2", PA(rows))
	}
}

// Table III's first decision at W={s,0,1,2}: M of colors {0}, {1}, {2} are
// 4, 3, 4; the magenta color {1} is selected.
func TestTableIIITraceFirstDecision(t *testing.T) {
	g, src := paperfig.Figure1()
	rows, err := GOPT(core.Sync(g, src), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (P(A)=3)", len(rows))
	}
	r := rows[1]
	if len(r.Colors) != 3 {
		t.Fatalf("colors = %+v", r.Colors)
	}
	wantM := []int{4, 3, 4}
	for i, ce := range r.Colors {
		if ce.M != wantM[i] || !ce.Exact {
			t.Fatalf("color %d M = %d (exact=%v), want %d", i+1, ce.M, ce.Exact, wantM[i])
		}
	}
	if r.Selected != 1 {
		t.Fatalf("selected = C%d, want C2 = {1}", r.Selected+1)
	}
	if PA(rows) != 3 {
		t.Fatalf("PA = %d", PA(rows))
	}
}

// Table IV: the duty-cycle trace contains the idle slot 3 between the two
// firings, and the slot-4 decision shows M=4 for {2} vs M=13 for {3}.
func TestTableIVTrace(t *testing.T) {
	g, src := paperfig.Figure2()
	in := core.Instance{G: g, Source: src, Start: 2, Wake: paperfig.TableIVWake()}
	rows, err := GOPT(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (fire@2, idle@3, fire@4)", len(rows))
	}
	if !rows[1].Idle || rows[1].T != 3 {
		t.Fatalf("row 1 = %+v, want idle at t=3", rows[1])
	}
	r := rows[2]
	if r.T != 4 || len(r.Colors) != 2 {
		t.Fatalf("slot-4 row = %+v", r)
	}
	if r.Colors[0].M != 4 || r.Colors[1].M != 13 {
		t.Fatalf("slot-4 Ms = %d,%d want 4,13", r.Colors[0].M, r.Colors[1].M)
	}
	if r.Selected != 0 {
		t.Fatalf("selected = C%d, want C1 = {2}", r.Selected+1)
	}
	if PA(rows) != 4 {
		t.Fatalf("PA = %d, want 4", PA(rows))
	}
}

func TestRenderContainsPaperShapes(t *testing.T) {
	g, src := paperfig.Figure2()
	rows, err := GOPT(core.Sync(g, src), 0)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(rows, fig2Namer)
	for _, want := range []string{"M({1}, 1)", "C1: {2}", "C2: {3}", "M=2", "M=3", "{4,5}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderIdleRow(t *testing.T) {
	g, src := paperfig.Figure2()
	in := core.Instance{G: g, Source: src, Start: 2, Wake: paperfig.TableIVWake()}
	rows, err := GOPT(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(rows, fig2Namer)
	if !strings.Contains(out, "N/A") {
		t.Fatalf("render missing the idle N/A row:\n%s", out)
	}
}

func TestRenderFigure1Namer(t *testing.T) {
	g, src := paperfig.Figure1()
	rows, err := GOPT(core.Sync(g, src), 0)
	if err != nil {
		t.Fatal(err)
	}
	Sort(rows)
	out := Render(rows, fig1Namer)
	if !strings.Contains(out, "M({s}, 1)") {
		t.Fatalf("render missing source row:\n%s", out)
	}
	if !strings.Contains(out, "{3,4,10}") {
		t.Fatalf("render missing the magenta advance:\n%s", out)
	}
}

func TestTraceMatchesScheduler(t *testing.T) {
	// The trace's selected path must equal the scheduler's P(A).
	g, src := paperfig.Figure1()
	in := core.Sync(g, src)
	rows, err := GOPT(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if PA(rows) != res.PA {
		t.Fatalf("trace PA %d != scheduler PA %d", PA(rows), res.PA)
	}
}

// Table III's full row set: the decision tree of Figure 1(c) contains
// exactly the task states the paper prints (with the two documented 3–8
// erratum substitutions). Paper node k is our k+1; s is 0.
func TestTableIIIFullTree(t *testing.T) {
	g, src := paperfig.Figure1()
	rows, err := Tree(core.Sync(g, src), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range rows {
		got[FormatSet(r.W, fig1Namer)] = true
	}
	// The paper's task column, translated to coverage sets. The two rows
	// marked (*) differ from the printed table only through the 3–8 edge
	// erratum documented in internal/paperfig.
	want := []string{
		"{s}",                      // M({s},1)
		"{s,0,1,2}",                // M({s,0−2},2)
		"{s,0,1,2,3,5,6,7}",        // M({s,0−3,5−7},3)
		"{s,0,1,2,3,4,5,6,7,8,9}",  // M({s,0−9},4)
		"{s,0,1,2,3,4,5,6,7,9,10}", // M({s,0−7,9−10},4)
		"{s,0,1,2,3,4,10}",         // M({s,0−4,10},3)
		"{s,0,1,2,3,4,6,8,9,10}",   // (*) M({s,0−4,6,9−10},·) with 8 covered too
		"{s,0,1,2,3,4,8,10}",       // M({s,0−4,8,10},·)
		"{s,0,1,2,3}",              // M({s,0−3},·)
		"{s,0,1,2,3,4,6,8,9}",      // M({s,0−4,6,8−9},·)
		"{s,0,1,2,3,4,5,6,7,10}",   // M({s,0−7,10},·)
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("paper task state %s missing from the tree; have %v", w, keys(got))
		}
	}
	// Spot-check the root M values within the tree rows.
	for _, r := range rows {
		if FormatSet(r.W, fig1Namer) == "{s,0,1,2}" {
			if len(r.Colors) != 3 || r.Colors[1].M != 3 || r.Selected != 1 {
				t.Fatalf("row {s,0,1,2}: %+v", r)
			}
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestTreeMaxRows(t *testing.T) {
	g, src := paperfig.Figure1()
	rows, err := Tree(core.Sync(g, src), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want cap 3", len(rows))
	}
}

func TestTreeAsyncHasIdleRows(t *testing.T) {
	g, src := paperfig.Figure2()
	in := core.Instance{G: g, Source: src, Start: 2, Wake: paperfig.TableIVWake()}
	rows, err := Tree(in, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	idle := false
	for _, r := range rows {
		if r.Idle {
			idle = true
		}
	}
	if !idle {
		t.Fatal("async tree missing the Table IV idle row")
	}
}
