package bitset

import (
	"testing"
	"testing/quick"
)

func TestUnionInto(t *testing.T) {
	s := FromMembers(130, 1, 64)
	u := FromMembers(130, 2, 129)
	dst := New(130)
	UnionInto(dst, s, u)
	if !dst.Equal(Union(s, u)) {
		t.Fatalf("UnionInto = %v, want %v", dst, Union(s, u))
	}
	// Aliasing: dst == s.
	UnionInto(s, s, u)
	if !s.Equal(dst) {
		t.Fatalf("aliased UnionInto = %v, want %v", s, dst)
	}
}

func TestIntersectInto(t *testing.T) {
	s := FromMembers(130, 1, 64, 100)
	u := FromMembers(130, 64, 100, 129)
	dst := New(130)
	IntersectInto(dst, s, u)
	if !dst.Equal(Intersect(s, u)) {
		t.Fatalf("IntersectInto = %v, want %v", dst, Intersect(s, u))
	}
	IntersectInto(u, s, u)
	if !u.Equal(dst) {
		t.Fatalf("aliased IntersectInto = %v, want %v", u, dst)
	}
}

func TestIntoCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UnionInto with mismatched capacities did not panic")
		}
	}()
	UnionInto(New(64), New(128), New(128))
}

func TestCountIntersect(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return a.CountIntersect(b) == Intersect(a, b).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashWithEqualSetsEqualHashes(t *testing.T) {
	a := FromMembers(300, 5, 77, 299)
	b := FromMembers(300, 5, 77, 299)
	if a.HashWith(42) != b.HashWith(42) {
		t.Fatal("equal sets must hash equal under the same seed")
	}
	if a.HashWith(42) == a.HashWith(43) {
		t.Fatal("different seeds should (overwhelmingly) give different digests")
	}
}

// HashWith must actually discriminate: over a few thousand single-bit and
// two-bit variations of a base set, no two digests may coincide (a
// collision here would be astronomically unlikely for a sound 64-bit mix
// and certain for a broken one).
func TestHashWithDiscriminates(t *testing.T) {
	seen := make(map[uint64]string)
	record := func(s Set, label string) {
		h := s.HashWith(7)
		if prev, dup := seen[h]; dup {
			t.Fatalf("digest collision between %s and %s", prev, label)
		}
		seen[h] = label
	}
	base := New(512)
	record(base, "empty")
	for i := 0; i < 512; i++ {
		s := base.Clone()
		s.Add(i)
		record(s, "one-bit")
		s.Add((i + 200) % 512)
		record(s, "two-bit")
	}
}
