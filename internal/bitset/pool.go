package bitset

// Pool recycles Sets so hot paths (the scheduler's memo table and move
// generation) stop allocating once warm. Sets are binned by word count —
// a size-classed free list — so one pool can serve coverage sets, conflict
// masks over candidate indices, and any other capacity that shows up.
//
// A Pool is not safe for concurrent use; engines own one each.
type Pool struct {
	free [][]Set // free[words] = returned sets backed by `words` uint64s
	gets int
	news int
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a cleared set of capacity ≥ n bits (exactly the word count
// New(n) would use), reusing a returned set when one is available.
func (p *Pool) Get(n int) Set {
	words := (n + wordBits - 1) / wordBits
	p.gets++
	if words < len(p.free) {
		if list := p.free[words]; len(list) > 0 {
			s := list[len(list)-1]
			p.free[words] = list[:len(list)-1]
			s.Clear()
			return s
		}
	}
	p.news++
	return make(Set, words)
}

// GetCopy returns a pooled set holding a copy of src.
//
//mlbs:poolowner -- ownership of the returned set transfers to the caller, who must Put it
func (p *Pool) GetCopy(src Set) Set {
	s := p.Get(src.Capacity())
	copy(s, src)
	return s
}

// Put returns s to the pool. Putting a set twice, or using it after Put,
// corrupts whoever holds the other reference; nil and zero-length sets are
// ignored.
func (p *Pool) Put(s Set) {
	if len(s) == 0 {
		return
	}
	words := len(s)
	for len(p.free) <= words {
		p.free = append(p.free, nil)
	}
	p.free[words] = append(p.free[words], s)
}

// Stats reports pool traffic: total Get calls and how many of them had to
// allocate. A warm steady state shows news flat while gets grows.
func (p *Pool) Stats() (gets, news int) { return p.gets, p.news }
