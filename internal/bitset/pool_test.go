package bitset

import "testing"

func TestPoolRecycles(t *testing.T) {
	p := NewPool()
	a := p.Get(100)
	if a.Capacity() != New(100).Capacity() {
		t.Fatalf("Get(100) capacity %d, want %d", a.Capacity(), New(100).Capacity())
	}
	a.Add(7)
	p.Put(a)
	b := p.Get(100)
	if !b.Empty() {
		t.Fatal("recycled set not cleared")
	}
	if &a[0] != &b[0] {
		t.Fatal("Get after Put did not reuse the returned set")
	}
	gets, news := p.Stats()
	if gets != 2 || news != 1 {
		t.Fatalf("stats = (%d gets, %d news), want (2, 1)", gets, news)
	}
}

func TestPoolSizeClasses(t *testing.T) {
	p := NewPool()
	small := p.Get(64)  // 1 word
	large := p.Get(640) // 10 words
	p.Put(small)
	p.Put(large)
	if got := p.Get(640); len(got) != 10 {
		t.Fatalf("Get(640) returned %d words, want 10", len(got))
	}
	if got := p.Get(64); len(got) != 1 {
		t.Fatalf("Get(64) returned %d words, want 1", len(got))
	}
	if _, news := p.Stats(); news != 2 {
		t.Fatalf("size classes did not recycle: %d fresh allocations, want 2", news)
	}
}

func TestPoolGetCopy(t *testing.T) {
	p := NewPool()
	src := FromMembers(200, 3, 150)
	c := p.GetCopy(src)
	if !c.Equal(src) {
		t.Fatal("GetCopy content mismatch")
	}
	c.Add(10)
	if src.Has(10) {
		t.Fatal("GetCopy aliases its source")
	}
}

func TestPoolIgnoresEmpty(t *testing.T) {
	p := NewPool()
	p.Put(nil)
	p.Put(Set{})
	if got := p.Get(1); len(got) != 1 {
		t.Fatalf("Get(1) after empty Puts returned %d words", len(got))
	}
}

func TestPoolSteadyStateAllocs(t *testing.T) {
	p := NewPool()
	allocs := testing.AllocsPerRun(100, func() {
		a := p.Get(300)
		b := p.Get(300)
		a.Add(5)
		b.Add(6)
		p.Put(a)
		p.Put(b)
	})
	if allocs > 0 {
		t.Errorf("warm Get/Put cycle allocated %.1f objects, want 0", allocs)
	}
}
