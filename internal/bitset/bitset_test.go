package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatal("new set must be empty")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Capacity() < 130 {
		t.Fatalf("Capacity = %d, want >= 130", s.Capacity())
	}
	if s.Words() != 3 {
		t.Fatalf("Words = %d, want 3", s.Words())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) must panic")
		}
	}()
	New(-1)
}

func TestAddHasRemove(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if s.Has(i) {
			t.Fatalf("bit %d set before Add", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("bit %d not set after Add", i)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("bit 64 still set after Remove")
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestClear(t *testing.T) {
	s := FromMembers(100, 1, 50, 99)
	s.Clear()
	if !s.Empty() {
		t.Fatal("set not empty after Clear")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromMembers(100, 5, 60)
	c := s.Clone()
	c.Add(7)
	if s.Has(7) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Has(5) || !c.Has(60) {
		t.Fatal("Clone lost members")
	}
}

func TestCopyFrom(t *testing.T) {
	s := New(100)
	t2 := FromMembers(100, 2, 3, 99)
	s.CopyFrom(t2)
	if !s.Equal(t2) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with different capacity must panic")
		}
	}()
	New(64).CopyFrom(New(128))
}

func TestSetAlgebra(t *testing.T) {
	a := FromMembers(128, 1, 2, 3, 70)
	b := FromMembers(128, 3, 4, 70, 100)

	u := Union(a, b)
	want := []int{1, 2, 3, 4, 70, 100}
	if got := u.Members(); !equalInts(got, want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}

	i := Intersect(a, b)
	if got := i.Members(); !equalInts(got, []int{3, 70}) {
		t.Fatalf("Intersect = %v, want [3 70]", got)
	}

	d := Difference(a, b)
	if got := d.Members(); !equalInts(got, []int{1, 2}) {
		t.Fatalf("Difference = %v, want [1 2]", got)
	}
}

func TestIntersects(t *testing.T) {
	a := FromMembers(64, 1, 2)
	b := FromMembers(64, 2, 3)
	c := FromMembers(64, 4)
	if !a.Intersects(b) {
		t.Fatal("a and b must intersect")
	}
	if a.Intersects(c) {
		t.Fatal("a and c must not intersect")
	}
}

func TestIntersectsDifference(t *testing.T) {
	// s ∩ t ∩ ¬u — the conflict predicate.
	s := FromMembers(64, 1, 2, 3)
	tt := FromMembers(64, 2, 3, 4)
	u := FromMembers(64, 2)
	if !s.IntersectsDifference(tt, u) {
		t.Fatal("3 ∈ s∩t∩¬u, want true")
	}
	u.Add(3)
	if s.IntersectsDifference(tt, u) {
		t.Fatal("s∩t∩¬u empty, want false")
	}
	if got := s.CountIntersectDifference(tt, FromMembers(64, 2)); got != 1 {
		t.Fatalf("CountIntersectDifference = %d, want 1", got)
	}
}

func TestCountDifferenceAndSubset(t *testing.T) {
	a := FromMembers(100, 1, 2, 3)
	b := FromMembers(100, 2)
	if got := a.CountDifference(b); got != 2 {
		t.Fatalf("CountDifference = %d, want 2", got)
	}
	if !b.IsSubsetOf(a) {
		t.Fatal("b ⊆ a, want true")
	}
	if a.IsSubsetOf(b) {
		t.Fatal("a ⊄ b, want false")
	}
	if !a.AnyDifference(b) {
		t.Fatal("a−b non-empty, want true")
	}
	if b.AnyDifference(a) {
		t.Fatal("b−a empty, want false")
	}
}

func TestForEachOrder(t *testing.T) {
	members := []int{0, 63, 64, 65, 120}
	s := FromMembers(128, members...)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !equalInts(got, members) {
		t.Fatalf("ForEach order = %v, want %v", got, members)
	}
}

func TestNextAfter(t *testing.T) {
	s := FromMembers(256, 3, 64, 200)
	cases := []struct{ in, want int }{
		{-5, 3}, {0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 200}, {200, 200}, {201, -1},
	}
	for _, c := range cases {
		if got := s.NextAfter(c.in); got != c.want {
			t.Fatalf("NextAfter(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := New(0).NextAfter(0); got != -1 {
		t.Fatalf("NextAfter on empty-capacity set = %d, want -1", got)
	}
}

func TestKeyCollisionFree(t *testing.T) {
	a := FromMembers(128, 1)
	b := FromMembers(128, 64)
	if a.Key() == b.Key() {
		t.Fatal("distinct sets produced identical keys")
	}
	if a.Key() != a.Clone().Key() {
		t.Fatal("equal sets produced different keys")
	}
}

func TestHashDistinguishes(t *testing.T) {
	a := FromMembers(128, 1, 2)
	b := FromMembers(128, 1, 3)
	if a.Hash() == b.Hash() {
		t.Fatal("hash collision on trivially different sets (suspicious)")
	}
}

func TestString(t *testing.T) {
	if got := FromMembers(64, 2, 5).String(); got != "{2, 5}" {
		t.Fatalf("String = %q, want {2, 5}", got)
	}
	if got := New(64).String(); got != "{}" {
		t.Fatalf("String = %q, want {}", got)
	}
}

// Property: Members is sorted and round-trips through FromMembers.
func TestQuickMembersRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		s := New(256)
		uniq := map[int]bool{}
		for _, r := range raw {
			s.Add(int(r))
			uniq[int(r)] = true
		}
		m := s.Members()
		if len(m) != len(uniq) {
			return false
		}
		if !sort.IntsAreSorted(m) {
			return false
		}
		return FromMembers(256, m...).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity |a∪b| = |a| + |b| − |a∩b|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return Union(a, b).Len() == a.Len()+b.Len()-Intersect(a, b).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: IntersectsDifference agrees with the materialized computation.
func TestQuickConflictPredicate(t *testing.T) {
	f := func(xs, ys, zs []uint8) bool {
		a, b, w := New(256), New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		for _, z := range zs {
			w.Add(int(z))
		}
		m := Intersect(a, b)
		m.DifferenceWith(w)
		if a.IntersectsDifference(b, w) != !m.Empty() {
			return false
		}
		return a.CountIntersectDifference(b, w) == m.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNextAfterScansAll(t *testing.T) {
	f := func(xs []uint8) bool {
		s := New(256)
		for _, x := range xs {
			s.Add(int(x))
		}
		var got []int
		for i := s.NextAfter(0); i >= 0; i = s.NextAfter(i + 1) {
			got = append(got, i)
		}
		return equalInts(got, s.Members())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConflictPredicate(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 512
	a, c, w := New(n), New(n), New(n)
	for i := 0; i < n/8; i++ {
		a.Add(r.Intn(n))
		c.Add(r.Intn(n))
		w.Add(r.Intn(n))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.IntersectsDifference(c, w)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: Difference and IsSubsetOf interact correctly: (a−b) ⊆ a and
// (a−b) ∩ b = ∅.
func TestQuickDifferenceSubset(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		d := Difference(a, b)
		return d.IsSubsetOf(a) && !d.Intersects(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Union is commutative, associative, and idempotent.
func TestQuickUnionLaws(t *testing.T) {
	f := func(xs, ys, zs []uint8) bool {
		a, b, c := New(256), New(256), New(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		for _, z := range zs {
			c.Add(int(z))
		}
		if !Union(a, b).Equal(Union(b, a)) {
			return false
		}
		if !Union(Union(a, b), c).Equal(Union(a, Union(b, c))) {
			return false
		}
		return Union(a, a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
