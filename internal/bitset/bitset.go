// Package bitset provides a dense, fixed-capacity bit set used as the hot
// data structure of the scheduler: coverage sets W, per-node neighborhoods
// N(u), and conflict tests N(u)∩N(v)∩W̄ all reduce to word-parallel
// operations on values of type Set.
//
// A Set is a plain []uint64 slice; the zero value is an empty set of
// capacity zero. All binary operations require operands created with the
// same capacity (same word count); this is the library-wide invariant, and
// it keeps every operation allocation-free and branch-light.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. Bits beyond the capacity passed to New
// must remain zero; every mutating method preserves that invariant.
type Set []uint64

// WordsFor returns the word count of a Set with capacity for n bits —
// for callers that slab-allocate many same-capacity sets in one backing
// slice.
func WordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// New returns an empty set able to hold bits [0, n).
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return make(Set, (n+wordBits-1)/wordBits)
}

// Words returns the number of 64-bit words backing the set.
func (s Set) Words() int { return len(s) }

// Capacity returns the number of bits the set can hold.
func (s Set) Capacity() int { return len(s) * wordBits }

// Add sets bit i.
func (s Set) Add(i int) { s[i/wordBits] |= 1 << uint(i%wordBits) }

// Remove clears bit i.
func (s Set) Remove(i int) { s[i/wordBits] &^= 1 << uint(i%wordBits) }

// Has reports whether bit i is set.
func (s Set) Has(i int) bool { return s[i/wordBits]&(1<<uint(i%wordBits)) != 0 }

// Len returns the number of set bits.
func (s Set) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear resets every bit to zero, keeping capacity.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// CopyFrom overwrites s with the contents of t. Panics if capacities differ.
func (s Set) CopyFrom(t Set) {
	if len(s) != len(t) {
		panic("bitset: capacity mismatch")
	}
	copy(s, t)
}

// Equal reports whether s and t contain exactly the same bits.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i, w := range s {
		if w != t[i] {
			return false
		}
	}
	return true
}

// UnionWith sets s = s ∪ t.
func (s Set) UnionWith(t Set) {
	for i, w := range t {
		s[i] |= w
	}
}

// IntersectWith sets s = s ∩ t.
func (s Set) IntersectWith(t Set) {
	for i, w := range t {
		s[i] &= w
	}
}

// DifferenceWith sets s = s − t.
func (s Set) DifferenceWith(t Set) {
	for i, w := range t {
		s[i] &^= w
	}
}

// CountIntersect returns |s ∩ t| without materializing the intersection.
func (s Set) CountIntersect(t Set) int {
	n := 0
	for i, w := range t {
		n += bits.OnesCount64(s[i] & w)
	}
	return n
}

// Intersects reports whether s ∩ t is non-empty without materializing it.
func (s Set) Intersects(t Set) bool {
	for i, w := range t {
		if s[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectsDifference reports whether s ∩ t ∩ ¬u is non-empty — the
// conflict predicate N(a)∩N(b)∩W̄ ≠ ∅ evaluated without allocation.
func (s Set) IntersectsDifference(t, u Set) bool {
	for i, w := range t {
		if s[i]&w&^u[i] != 0 {
			return true
		}
	}
	return false
}

// CountIntersectDifference returns |s ∩ t ∩ ¬u| — the number of uncovered
// receivers a relay would reach, used by the greedy color ordering.
func (s Set) CountIntersectDifference(t, u Set) int {
	n := 0
	for i, w := range t {
		n += bits.OnesCount64(s[i] & w &^ u[i])
	}
	return n
}

// CountDifference returns |s − t|.
func (s Set) CountDifference(t Set) int {
	n := 0
	for i, w := range s {
		n += bits.OnesCount64(w &^ t[i])
	}
	return n
}

// AnyDifference reports whether s − t is non-empty.
func (s Set) AnyDifference(t Set) bool {
	for i, w := range s {
		if w&^t[i] != 0 {
			return true
		}
	}
	return false
}

// IsSubsetOf reports whether every bit of s is also in t.
func (s Set) IsSubsetOf(t Set) bool {
	for i, w := range s {
		if w&^t[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// AppendMembers appends the indices of all set bits to dst and returns it.
func (s Set) AppendMembers(dst []int) []int {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+b)
			w &= w - 1
		}
	}
	return dst
}

// Members returns the indices of all set bits in ascending order.
func (s Set) Members() []int { return s.AppendMembers(nil) }

// NextAfter returns the smallest set bit ≥ i, or -1 if none exists.
func (s Set) NextAfter(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i / wordBits
	if wi >= len(s) {
		return -1
	}
	w := s[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s); wi++ {
		if s[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s[wi])
		}
	}
	return -1
}

// Hash returns a 64-bit FNV-1a digest of the set contents, used as a
// memoization key component by the scheduler search.
func (s Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s {
		for b := 0; b < 8; b++ {
			h ^= (w >> uint(8*b)) & 0xff
			h *= prime
		}
	}
	return h
}

// HashWith returns a seeded 64-bit digest of the set contents, one
// word-level SplitMix64-style mix per backing word. It is the memo-table
// key of the scheduler search: word-parallel (8× fewer multiplies than the
// byte-wise Hash) and seedable so distinct tables observe independent
// collision patterns. Equal sets always hash equal for a given seed;
// collisions between distinct sets are possible and callers must verify.
func (s Set) HashWith(seed uint64) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, w := range s {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Key returns the raw words as a string, a collision-free map key.
func (s Set) Key() string {
	var b strings.Builder
	b.Grow(len(s) * 8)
	for _, w := range s {
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(w >> uint(8*i)))
		}
	}
	return b.String()
}

// String renders the set as "{1, 4, 7}" for debugging and traces.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// FromMembers builds a set of capacity n containing exactly the given bits.
func FromMembers(n int, members ...int) Set {
	s := New(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Union returns a fresh set holding s ∪ t.
func Union(s, t Set) Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// UnionInto sets dst = s ∪ t without allocating. All three sets must share
// the same capacity; dst may alias s or t.
func UnionInto(dst, s, t Set) {
	if len(dst) != len(s) || len(s) != len(t) {
		panic("bitset: capacity mismatch")
	}
	for i := range dst {
		dst[i] = s[i] | t[i]
	}
}

// IntersectInto sets dst = s ∩ t without allocating. All three sets must
// share the same capacity; dst may alias s or t.
func IntersectInto(dst, s, t Set) {
	if len(dst) != len(s) || len(s) != len(t) {
		panic("bitset: capacity mismatch")
	}
	for i := range dst {
		dst[i] = s[i] & t[i]
	}
}

// Intersect returns a fresh set holding s ∩ t.
func Intersect(s, t Set) Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Difference returns a fresh set holding s − t.
func Difference(s, t Set) Set {
	c := s.Clone()
	c.DifferenceWith(t)
	return c
}
