package sim

import (
	"fmt"

	"mlbs/internal/aggregate"
	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// AggReport is the physical outcome of one convergecast execution.
type AggReport struct {
	// Completed: the sink holds every node's reading and no collision was
	// recorded — the aggregation-side mirror of Report.Completed.
	Completed bool
	End       int // slot of the last transmission (Start−1 if none)
	Slots     int // elapsed slots End−Start+1
	// Delivered counts distinct readings held by the sink at the end.
	Delivered int
	// DeliveredAt[u] is the slot u's reading reached the sink (−1 = never;
	// the sink's own reading: Start−1).
	DeliveredAt []int
	Collisions  []Collision
}

// ReplayAggregate executes a convergecast schedule against the slot
// physics and reports what actually reached the sink. Every node starts
// holding exactly its own reading; a transmission carries the sender's
// current merged payload; a parent that decodes its child (per the
// instance's interference oracle, frames interfering only within a
// channel) merges the child's payload into its own.
//
// The physics mirror the model Schedule.Validate enforces, from the
// receiver's side:
//
//   - a parent only receives in slots where it is awake (duty cycle gates
//     the listener, not the talker);
//   - one radio: a node transmitting this slot hears nothing, and a parent
//     whose children fire on several channels at once tunes to the lowest
//     and loses the rest;
//   - a tuned, awake parent that fails to decode its child records a
//     Collision; deliveries lost to sleep or mistuning are silent and
//     surface as an incomplete aggregate instead.
//
// A schedule accepted by aggregate.Schedule.Validate always replays
// Completed with zero collisions — the property the oracle tests pin.
func ReplayAggregate(in core.Instance, s *aggregate.Schedule) (*AggReport, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.G.N()
	if len(s.Parent) != n {
		return nil, fmt.Errorf("sim: parent array has %d entries for %d nodes", len(s.Parent), n)
	}
	for u := 0; u < n; u++ {
		if graph.NodeID(u) == s.Sink {
			continue
		}
		if p := s.Parent[u]; p < 0 || int(p) >= n {
			return nil, fmt.Errorf("sim: node %d parent %d out of range", u, p)
		}
	}
	if s.Sink < 0 || int(s.Sink) >= n {
		return nil, fmt.Errorf("sim: sink %d out of range", s.Sink)
	}
	k := in.K()
	var ib interference.Binder
	oracle := in.Oracle(&ib)

	// payload[u] = set of readings u currently holds.
	payload := make([]bitset.Set, n)
	for u := range payload {
		payload[u] = bitset.New(n)
		payload[u].Add(u)
	}
	deliveredAt := make([]int, n)
	for u := range deliveredAt {
		deliveredAt[u] = -1
	}
	deliveredAt[s.Sink] = s.Start - 1

	rep := &AggReport{End: s.Start - 1, DeliveredAt: deliveredAt}
	isTx := bitset.New(n)   // senders of the current slot, all channels
	tuned := make([]int, n) // per-parent listening channel this slot (−1 = idle)
	for i := range tuned {
		tuned[i] = -1
	}
	touchedParents := make([]graph.NodeID, 0, 16)

	advs := s.Advances
	prevT := s.Start - 1
	for gi := 0; gi < len(advs); {
		t := advs[gi].T
		if t <= prevT {
			return nil, errOrder(t)
		}
		end := gi
		prevCh := -1
		for end < len(advs) && advs[end].T == t {
			if advs[end].Channel <= prevCh && end > gi {
				return nil, errOrder(t)
			}
			prevCh = advs[end].Channel
			if advs[end].Channel < 0 || advs[end].Channel >= k {
				return nil, fmt.Errorf("sim: advance at t=%d uses channel %d, instance has %d", t, advs[end].Channel, k)
			}
			end++
		}
		group := advs[gi:end]

		isTx.Clear()
		for _, adv := range group {
			for _, u := range adv.Senders {
				if u < 0 || int(u) >= n {
					return nil, errOut(u, t)
				}
				if isTx.Has(int(u)) {
					return nil, fmt.Errorf("sim: node %d transmits on two channels at t=%d", u, t)
				}
				isTx.Add(int(u))
			}
		}
		// Tune each receiving parent to the lowest channel carrying one of
		// its children; a transmitting node never tunes (one radio).
		touchedParents = touchedParents[:0]
		for _, adv := range group {
			for _, u := range adv.Senders {
				if u == s.Sink {
					continue // the sink's frame is pure interference
				}
				p := s.Parent[u]
				if tuned[p] < 0 && !isTx.Has(int(p)) && in.Wake.Awake(int(p), t) {
					tuned[p] = adv.Channel
					touchedParents = append(touchedParents, p)
				}
			}
		}
		for _, adv := range group {
			for _, u := range adv.Senders {
				if u == s.Sink {
					continue
				}
				p := s.Parent[u]
				if tuned[p] != adv.Channel {
					continue // parent asleep, transmitting, or tuned elsewhere: frame lost
				}
				got, ok := oracle.Outcome(p, adv.Senders)
				if !ok || got != u {
					// An awake, tuned parent that cannot pull its child out of
					// the channel: the convergecast collision.
					senders := make([]graph.NodeID, 0, len(adv.Senders))
					for _, x := range adv.Senders {
						if in.G.Nbr(p).Has(x) {
							senders = append(senders, x)
						}
					}
					rep.Collisions = append(rep.Collisions, Collision{T: t, Receiver: p, Senders: senders, Channel: adv.Channel})
					continue
				}
				if p == s.Sink {
					payload[u].ForEach(func(x int) {
						if deliveredAt[x] < 0 {
							deliveredAt[x] = t
						}
					})
				}
				payload[p].UnionWith(payload[u])
			}
		}
		for _, p := range touchedParents {
			tuned[p] = -1
		}
		rep.End = t
		prevT = t
		gi = end
	}

	rep.Delivered = payload[s.Sink].Len()
	rep.Slots = rep.End - s.Start + 1
	if rep.Slots < 0 {
		rep.Slots = 0
	}
	rep.Completed = rep.Delivered == n && len(rep.Collisions) == 0
	return rep, nil
}
