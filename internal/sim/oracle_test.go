package sim

import (
	"strings"
	"testing"

	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
	"mlbs/internal/rng"
	"mlbs/internal/topology"
)

// TestCrossChannelCollisionAfterRescue pins the transmitGroup bugfix: a
// receiver rescued by a clean frame on a LOWER channel used to swallow a
// same-slot collision arriving on a HIGHER channel (the flagNew mark
// routed it into the duplicate-tally branch), so the replayer's collision
// flags disagreed with Validate's verdict on the same schedule.
func TestCrossChannelCollisionAfterRescue(t *testing.T) {
	// s=0 feeds relays 1, 2, 3; all three reach v=4.
	g := graph.NewBuilder(5, nil).
		AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).
		AddEdge(1, 4).AddEdge(2, 4).AddEdge(3, 4).
		Build()
	in := core.Sync(g, 0)
	in.Channels = 2
	s := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2, 3}},
		{T: 2, Channel: 0, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{4}},
		{T: 2, Channel: 1, Senders: []graph.NodeID{2, 3}, Covered: nil},
	}}
	if err := s.Validate(in); err == nil {
		t.Fatal("Validate accepted a schedule whose channel-1 advance collides and covers nothing")
	}
	rep, err := Replay(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoveredAt[4] != 2 {
		t.Fatalf("node 4 not rescued by channel 0: CoveredAt = %v", rep.CoveredAt)
	}
	if len(rep.Collisions) != 1 {
		t.Fatalf("collisions = %+v, want exactly the suppressed channel-1 collision", rep.Collisions)
	}
	c := rep.Collisions[0]
	if c.T != 2 || c.Receiver != 4 || c.Channel != 1 || len(c.Senders) != 2 || c.Senders[0] != 2 || c.Senders[1] != 3 {
		t.Fatalf("collision = %+v, want T=2 receiver=4 channel=1 senders=[2 3]", c)
	}
	if rep.Completed {
		t.Fatal("execution with a collision must not report Completed")
	}
}

// TestSINRCaptureReplay drives the capture effect end to end: a schedule
// whose concurrent relays share an uncovered receiver is protocol-illegal,
// but with one relay shouting at power 100 the receiver decodes it under
// SINR — Validate accepts and the replay is collision-free.
func TestSINRCaptureReplay(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 1}, {X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 0}}
	g := graph.NewBuilder(4, pos).
		AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 3).AddEdge(2, 3).
		Build()
	s := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2}},
		{T: 2, Senders: []graph.NodeID{1, 2}, Covered: []graph.NodeID{3}},
	}}

	graphIn := core.Sync(g, 0)
	if err := s.Validate(graphIn); err == nil || !strings.Contains(err.Error(), "senders conflict") {
		t.Fatalf("protocol model must reject the concurrent pair, got %v", err)
	}
	rep, err := Replay(graphIn, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Collisions) != 1 || rep.Collisions[0].Receiver != 3 || rep.Completed {
		t.Fatalf("protocol replay = %+v, want one collision at node 3", rep)
	}

	sinrIn := core.Sync(g, 0)
	sinrIn.SINR = &interference.SINRParams{Alpha: 2, Beta: 2, Power: []float64{1, 100, 1, 1}}
	if err := s.Validate(sinrIn); err != nil {
		t.Fatalf("SINR model must accept the capturing pair: %v", err)
	}
	rep, err = Replay(sinrIn, s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || len(rep.Collisions) != 0 {
		t.Fatalf("SINR replay = %+v, want collision-free completion", rep)
	}
	if rep.CoveredAt[3] != 2 {
		t.Fatalf("captured receiver covered at %d, want 2", rep.CoveredAt[3])
	}
}

// crossCheck plans the instance, demands a collision-free replay of the
// valid schedule, then probes every slot with mutated sender sets and
// cross-checks the replayer's collision flags against Validate's verdict —
// the two re-derivations of the conflict predicate the oracle unified.
// Any disagreement is a real bug.
func crossCheck(t *testing.T, name string, in core.Instance) {
	t.Helper()
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	sched := res.Schedule
	if err := sched.Validate(in); err != nil {
		t.Fatalf("%s: planned schedule invalid: %v", name, err)
	}
	rep, err := Replay(in, sched)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !rep.Completed || len(rep.Collisions) != 0 {
		t.Fatalf("%s: valid schedule replayed with collisions: %+v", name, rep.Collisions)
	}

	n := in.G.N()
	src := rng.New(uint64(n)*131 + 7)
	w := bitset.New(n)
	w.Add(in.Source)
	for _, u := range in.PreCovered {
		w.Add(u)
	}
	advs := sched.Advances
	for gi := 0; gi < len(advs); {
		tSlot := advs[gi].T
		end := gi
		for end < len(advs) && advs[end].T == tSlot {
			end++
		}
		group := advs[gi:end]
		slotTx := bitset.New(n)
		for _, adv := range group {
			for _, u := range adv.Senders {
				slotTx.Add(u)
			}
		}
		// Up to three mutated probes per slot: graft one extra eligible
		// sender onto the highest channel and recompute coverage, so the
		// only Validate objection left is the conflict predicate itself.
		probes := 0
		for _, pu := range src.Perm(n) {
			if probes >= 3 {
				break
			}
			u := graph.NodeID(pu)
			if !w.Has(u) || slotTx.Has(u) || !in.Wake.Awake(u, tSlot) || !in.G.Nbr(u).AnyDifference(w) {
				continue
			}
			if probe := buildProbe(in, w, group, u); probe != nil {
				probes++
				runProbe(t, name, in, w, tSlot, probe)
			}
		}
		for _, adv := range group {
			for _, v := range adv.Covered {
				w.Add(v)
			}
		}
		gi = end
	}
}

// buildProbe returns the slot's advances with u grafted onto the last
// (highest) channel and every Covered list recomputed against w, or nil
// when the mutation would trip a non-conflict Validate error (an advance
// left with nothing to cover).
func buildProbe(in core.Instance, w bitset.Set, group []core.Advance, u graph.NodeID) []core.Advance {
	n := in.G.N()
	out := make([]core.Advance, len(group))
	slotCov := bitset.New(n)
	got := bitset.New(n)
	for i, adv := range group {
		senders := append([]graph.NodeID(nil), adv.Senders...)
		if i == len(group)-1 {
			senders = append(senders, u)
		}
		got.Clear()
		for _, s := range senders {
			got.UnionWith(in.G.Nbr(s))
		}
		got.DifferenceWith(w)
		got.DifferenceWith(slotCov)
		if got.Empty() {
			return nil
		}
		out[i] = core.Advance{T: adv.T, Channel: adv.Channel, Senders: senders, Covered: got.Members()}
		slotCov.UnionWith(got)
	}
	return out
}

// runProbe validates and replays one single-slot probe schedule and fails
// on any Validate/replayer disagreement.
func runProbe(t *testing.T, name string, in core.Instance, w bitset.Set, tSlot int, group []core.Advance) {
	t.Helper()
	probeIn := in
	probeIn.Start = tSlot
	probeIn.PreCovered = w.Members()
	probeSched := &core.Schedule{Source: in.Source, Start: tSlot, Advances: group}
	verr := probeSched.Validate(probeIn)
	conflict := verr != nil && strings.Contains(verr.Error(), "senders conflict")
	if verr != nil && !conflict && !strings.Contains(verr.Error(), "broadcast incomplete") {
		t.Fatalf("%s t=%d: probe construction broke an unrelated invariant: %v", name, tSlot, verr)
	}
	rep, err := Replay(probeIn, probeSched)
	if err != nil {
		t.Fatalf("%s t=%d: %v", name, tSlot, err)
	}
	if conflict && len(rep.Collisions) == 0 {
		t.Fatalf("%s t=%d: Validate rejects senders %v as conflicting but the replay is clean",
			name, tSlot, group[len(group)-1].Senders)
	}
	if !conflict && len(rep.Collisions) != 0 {
		t.Fatalf("%s t=%d: Validate accepts senders %v but the replay collides: %+v",
			name, tSlot, group[len(group)-1].Senders, rep.Collisions)
	}
}

func TestReplayerAgreesWithValidate(t *testing.T) {
	sinr := &interference.SINRParams{Alpha: 3, Beta: 1}
	for _, seed := range []uint64{2, 5} {
		d, err := topology.Generate(topology.PaperConfig(60), seed)
		if err != nil {
			t.Fatal(err)
		}
		sync := core.Sync(d.G, d.Source)
		duty := core.Async(d.G, d.Source, dutycycle.NewUniform(d.G.N(), 5, seed^0xA5, 0), 0)
		multi := sync
		multi.Channels = 2
		cases := []struct {
			name string
			in   core.Instance
		}{
			{"sync/graph", sync},
			{"duty/graph", duty},
			{"k2/graph", multi},
		}
		for _, c := range cases {
			crossCheck(t, c.name, c.in)
			sc := c.in
			sc.SINR = sinr
			crossCheck(t, c.name+"+sinr", sc)
		}
	}
}
