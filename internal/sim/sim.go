// Package sim executes broadcast schedules against the network physics:
// per slot, every transmitting node's frame reaches all of its neighbors,
// and an uncovered node hearing two or more concurrent frames loses both to
// a collision (the interference model of Section III). On a multi-channel
// instance (Instance.Channels = K > 1) the physics are per frequency
// channel: frames interfere only with frames on the same channel, an
// uncovered node is covered when any channel delivers it exactly one
// frame, and a node may transmit on at most one channel per slot. The
// simulator is deliberately independent of the schedulers — it re-derives
// coverage from transmissions alone, so a scheduling bug shows up as a
// physical collision or an incomplete broadcast, not as a
// silently-accepted claim.
//
// Two modes are provided: Replay executes a precomputed core.Schedule
// (the paper's offline/proactive schedulers), and RunPolicy drives an
// online policy slot by slot, letting collisions actually destroy frames —
// the mode the localized extension runs under.
//
// All execution state lives in Replayer/LossyReplayer, whose buffers are
// reusable across calls; the package-level functions below are the
// one-shot convenience forms.
package sim

import (
	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/mote"
)

// Collision records one destroyed reception. Channel is the frequency
// channel the frames collided on — always 0 in the single-channel system;
// in a multi-channel execution a receiver collided on one channel may
// still be covered by a clean frame on another.
type Collision struct {
	T        int
	Receiver graph.NodeID
	Senders  []graph.NodeID
	Channel  int `json:",omitempty"`
}

// Report is the physical outcome of a broadcast execution.
type Report struct {
	Completed  bool  // every node covered, no collisions at uncovered nodes
	End        int   // slot of the last transmission (Start−1 if none)
	Slots      int   // elapsed slots End−Start+1
	CoveredAt  []int // per node: slot it received the message (-1 = never; source: Start−1)
	Usage      mote.Usage
	Collisions []Collision
}

// Latency returns the elapsed rounds/slots of the execution.
func (r *Report) Latency() int { return r.Slots }

// Replay executes a precomputed schedule and returns the physical outcome.
// An error means the schedule attempted something impossible (an uncovered
// or sleeping sender); semantic failures (collisions, incomplete coverage)
// are reported in the Report, not as errors.
func Replay(in core.Instance, sched *core.Schedule) (*Report, error) {
	return NewReplayer().Replay(in, sched)
}

// PolicyFunc chooses the transmitters for slot t given the physically
// covered set (read-only). Returning no senders lets the slot pass quietly.
type PolicyFunc func(w bitset.Set, t int) []graph.NodeID

// RunPolicy drives an online policy against the physics until coverage
// completes or the horizon passes (horizon ≤ 0 selects a generous default
// of n·(period+1) slots past the start). It returns the physical report
// and the as-executed schedule of effective advances.
func RunPolicy(in core.Instance, policy PolicyFunc, horizon int) (*Report, *core.Schedule, error) {
	return NewReplayer().RunPolicy(in, policy, horizon)
}
