// Package sim executes broadcast schedules against the network physics:
// per slot, every transmitting node's frame reaches all of its neighbors,
// and an uncovered node hearing two or more concurrent frames loses both to
// a collision (the interference model of Section III). The simulator is
// deliberately independent of the schedulers — it re-derives coverage from
// transmissions alone, so a scheduling bug shows up as a physical collision
// or an incomplete broadcast, not as a silently-accepted claim.
//
// Two modes are provided: Replay executes a precomputed core.Schedule
// (the paper's offline/proactive schedulers), and RunPolicy drives an
// online policy slot by slot, letting collisions actually destroy frames —
// the mode the localized extension runs under.
package sim

import (
	"fmt"
	"sort"

	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/mote"
)

// Collision records one destroyed reception.
type Collision struct {
	T        int
	Receiver graph.NodeID
	Senders  []graph.NodeID
}

// Report is the physical outcome of a broadcast execution.
type Report struct {
	Completed  bool  // every node covered, no collisions at uncovered nodes
	End        int   // slot of the last transmission (Start−1 if none)
	Slots      int   // elapsed slots End−Start+1
	CoveredAt  []int // per node: slot it received the message (-1 = never; source: Start−1)
	Usage      mote.Usage
	Collisions []Collision
}

// Latency returns the elapsed rounds/slots of the execution.
func (r *Report) Latency() int { return r.Slots }

// state carries the per-execution physics bookkeeping.
type state struct {
	in      core.Instance
	n       int
	w       bitset.Set
	covered []int
	report  *Report
}

func newState(in core.Instance, start int) *state {
	n := in.G.N()
	s := &state{
		in:      in,
		n:       n,
		w:       bitset.New(n),
		covered: make([]int, n),
		report:  &Report{CoveredAt: nil},
	}
	for i := range s.covered {
		s.covered[i] = -1
	}
	s.w.Add(in.Source)
	s.covered[in.Source] = start - 1
	for _, u := range in.PreCovered {
		if !s.w.Has(u) {
			s.w.Add(u)
			s.covered[u] = start - 1
		}
	}
	return s
}

// transmit applies the physics of one slot: every sender's frame reaches
// all neighbors; uncovered receivers hearing exactly one frame become
// covered, hearing more records a collision. Covered receivers tally a
// reception for the first frame they hear (duplicates are discarded by the
// MAC). Returns the nodes newly covered this slot.
func (s *state) transmit(t int, senders []graph.NodeID) ([]graph.NodeID, error) {
	for _, u := range senders {
		if u < 0 || u >= s.n {
			return nil, fmt.Errorf("sim: sender %d out of range at t=%d", u, t)
		}
		if !s.w.Has(u) {
			return nil, fmt.Errorf("sim: node %d transmitted at t=%d without holding the message", u, t)
		}
		if !s.in.Wake.Awake(u, t) {
			return nil, fmt.Errorf("sim: node %d transmitted at t=%d while its sending channel was off", u, t)
		}
	}
	heard := make(map[graph.NodeID][]graph.NodeID)
	for _, u := range senders {
		s.report.Usage.Transmissions++
		for _, v := range s.in.G.Adj(u) {
			heard[v] = append(heard[v], u)
		}
	}
	var newly []graph.NodeID
	for v, from := range heard {
		if s.w.Has(v) {
			s.report.Usage.Receptions++ // duplicate, discarded above MAC
			continue
		}
		if len(from) == 1 {
			s.report.Usage.Receptions++
			newly = append(newly, v)
			continue
		}
		sort.Ints(from)
		s.report.Usage.Collisions++
		s.report.Collisions = append(s.report.Collisions, Collision{T: t, Receiver: v, Senders: from})
	}
	sort.Ints(newly)
	for _, v := range newly {
		s.w.Add(v)
		s.covered[v] = t
	}
	return newly, nil
}

// accountQuiet charges idle/sleep slots for one elapsed slot: transmitters
// were already charged; every other node spends the slot listening, and
// additionally its sending circuitry is asleep unless its wake schedule has
// it on.
func (s *state) accountQuiet(t int, senders []graph.NodeID) {
	tx := make(map[graph.NodeID]bool, len(senders))
	for _, u := range senders {
		tx[u] = true
	}
	for u := 0; u < s.n; u++ {
		if tx[u] {
			continue
		}
		s.report.Usage.IdleSlots++
		if !s.in.Wake.Awake(u, t) {
			s.report.Usage.SleepSlots++
		}
	}
}

func (s *state) finish(start, end int) *Report {
	s.report.CoveredAt = s.covered
	s.report.End = end
	s.report.Slots = end - start + 1
	if s.report.Slots < 0 {
		s.report.Slots = 0
	}
	s.report.Completed = s.w.Len() == s.n && len(s.report.Collisions) == 0
	return s.report
}

// Replay executes a precomputed schedule and returns the physical outcome.
// An error means the schedule attempted something impossible (an uncovered
// or sleeping sender); semantic failures (collisions, incomplete coverage)
// are reported in the Report, not as errors.
func Replay(in core.Instance, sched *core.Schedule) (*Report, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	st := newState(in, sched.Start)
	byTime := make(map[int][]graph.NodeID)
	maxT := sched.Start - 1
	prev := sched.Start - 1
	for _, adv := range sched.Advances {
		if adv.T <= prev {
			return nil, fmt.Errorf("sim: advances out of order at t=%d", adv.T)
		}
		prev = adv.T
		byTime[adv.T] = append(byTime[adv.T], adv.Senders...)
		if adv.T > maxT {
			maxT = adv.T
		}
	}
	for t := sched.Start; t <= maxT; t++ {
		senders := byTime[t]
		if len(senders) > 0 {
			if _, err := st.transmit(t, senders); err != nil {
				return nil, err
			}
		}
		st.accountQuiet(t, senders)
	}
	return st.finish(sched.Start, maxT), nil
}

// PolicyFunc chooses the transmitters for slot t given the physically
// covered set (read-only). Returning no senders lets the slot pass quietly.
type PolicyFunc func(w bitset.Set, t int) []graph.NodeID

// RunPolicy drives an online policy against the physics until coverage
// completes or the horizon passes (horizon ≤ 0 selects a generous default
// of n·(period+1) slots past the start). It returns the physical report
// and the as-executed schedule of effective advances.
func RunPolicy(in core.Instance, policy PolicyFunc, horizon int) (*Report, *core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if horizon <= 0 {
		horizon = in.Start + in.G.N()*(in.Wake.Period()+1) + in.Wake.Period()
	}
	st := newState(in, in.Start)
	sched := &core.Schedule{Source: in.Source, Start: in.Start}
	end := in.Start - 1
	for t := in.Start; st.w.Len() < st.n && t <= horizon; t++ {
		senders := policy(st.w, t)
		if len(senders) > 0 {
			newly, err := st.transmit(t, senders)
			if err != nil {
				return nil, nil, err
			}
			end = t
			sched.Advances = append(sched.Advances, core.Advance{
				T:       t,
				Senders: append([]graph.NodeID(nil), senders...),
				Covered: newly,
			})
		}
		st.accountQuiet(t, senders)
	}
	return st.finish(in.Start, end), sched, nil
}
