package sim

import (
	"fmt"
	"sort"

	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

func errOut(u graph.NodeID, t int) error {
	return fmt.Errorf("sim: sender %d out of range at t=%d", u, t)
}

func errUncovered(u graph.NodeID, t int) error {
	return fmt.Errorf("sim: node %d transmitted at t=%d without holding the message", u, t)
}

func errAsleep(u graph.NodeID, t int) error {
	return fmt.Errorf("sim: node %d transmitted at t=%d while its sending channel was off", u, t)
}

func errOrder(t int) error {
	return fmt.Errorf("sim: advances out of order at t=%d", t)
}

func sortedIDs(xs []graph.NodeID) []graph.NodeID {
	cp := append([]graph.NodeID(nil), xs...)
	sort.Ints(cp)
	return cp
}

// Replayer executes schedules and policies against the slot physics with
// every piece of per-execution state held in reusable buffers: coverage
// bitset, per-node frame counters, the touched-receiver list, and the
// collision arena all survive across calls, so a warm Replayer runs a full
// replay without allocating (the discipline the Monte-Carlo reliability
// engine batches thousands of replays on).
//
// Reports returned by a Replayer alias its buffers and stay valid only
// until the next call on the same Replayer. A Replayer is not safe for
// concurrent use; the zero value is ready.
type Replayer struct {
	in   core.Instance
	n    int
	loss LossFunc // nil = ideal channel
	lost int

	w         bitset.Set
	covered   []int
	nFrames   []int32        // per-node frames arriving this slot; kept zeroed between slots
	isTx      []bool         // per-node transmitting-this-slot mark; kept cleared between slots
	touched   []graph.NodeID // receivers that heard ≥1 frame this slot
	newly     []graph.NodeID // receivers newly covered this slot
	able      []graph.NodeID // lossy replay: senders that actually hold the message
	collArena []graph.NodeID // backing storage for Collision.Senders lists
	colls     []Collision
	report    Report

	// Multi-channel slot state (see transmitGroup); kept cleared between
	// slots via slotNodes.
	slotFlag  []uint8        // per-node flagRec/flagNew marks for the current slot
	slotNodes []graph.NodeID // nodes with a nonzero slotFlag
	slotTx    []graph.NodeID // every scheduled sender of the current slot, all channels

	// Interference oracle of the bound instance. The graph backend keeps
	// the frame-counting fast path (SoloDecodes); the SINR backend resolves
	// each receiver through Oracle.Outcome. ib owns both backends, so
	// rebinding in reset never allocates.
	ib      interference.Binder
	oracle  interference.Oracle
	arrived []graph.NodeID // lossy SINR: senders whose signal reaches the receiver
}

// slotFlag bits.
const (
	flagRec uint8 = 1 << iota // a reception was tallied for this node this slot
	flagNew                   // node was newly covered by an earlier channel this slot
)

// NewReplayer returns a ready ideal-channel replayer.
func NewReplayer() *Replayer { return &Replayer{} }

// reset prepares the buffers for one execution of in starting at start.
func (r *Replayer) reset(in core.Instance, start int) {
	n := in.G.N()
	r.in, r.n, r.lost = in, n, 0
	if len(r.covered) < n {
		r.covered = make([]int, n)
		r.nFrames = make([]int32, n)
		r.isTx = make([]bool, n)
		r.slotFlag = make([]uint8, n)
	}
	if r.w.Capacity() < n {
		r.w = bitset.New(n)
	} else {
		r.w.Clear()
	}
	cov := r.covered[:n]
	for i := range cov {
		cov[i] = -1
	}
	r.collArena = r.collArena[:0]
	r.colls = r.colls[:0]
	r.report = Report{}
	r.oracle = in.Oracle(&r.ib)
	r.w.Add(in.Source)
	cov[in.Source] = start - 1
	for _, u := range in.PreCovered {
		if !r.w.Has(u) {
			r.w.Add(u)
			cov[u] = start - 1
		}
	}
}

// transmit applies the physics of one slot: every sender's frame reaches
// all neighbors (minus per-link losses on a lossy channel); uncovered
// receivers hearing exactly one frame become covered, hearing more records
// a collision. Covered receivers tally one reception for the slot
// (duplicates are discarded by the MAC). The newly covered nodes are left
// in r.newly, sorted ascending. The outcome is independent of the senders'
// iteration order: receivers are processed in ascending ID order and
// collision sender lists are sorted.
//
//mlbs:hotpath -- per-slot physics; the Monte-Carlo engine batches thousands of warm replays
func (r *Replayer) transmit(t int, senders []graph.NodeID) error {
	for _, u := range senders {
		if u < 0 || u >= r.n {
			return errOut(u, t)
		}
		if !r.w.Has(u) {
			return errUncovered(u, t)
		}
		if !r.in.Wake.Awake(u, t) {
			return errAsleep(u, t)
		}
	}
	r.touched = r.touched[:0]
	for _, u := range senders {
		r.report.Usage.Transmissions++
		for _, v := range r.in.G.Adj(u) {
			if r.loss != nil && r.loss(t, u, v) {
				r.lost++
				continue
			}
			if r.nFrames[v] == 0 {
				r.touched = append(r.touched, v)
			}
			r.nFrames[v]++
		}
	}
	sort.Ints(r.touched)
	r.newly = r.newly[:0]
	solo := r.oracle.SoloDecodes()
	for _, v := range r.touched {
		k := r.nFrames[v]
		r.nFrames[v] = 0
		if r.w.Has(v) {
			r.report.Usage.Receptions++ // duplicate, discarded above MAC
			continue
		}
		decoded := k == 1
		if !solo {
			// Physical model: every concurrent sender whose signal survives
			// the channel contributes interference (non-neighbors included);
			// the oracle resolves capture.
			all := senders
			if r.loss != nil {
				all = r.arrivedAt(t, v, senders)
			}
			_, decoded = r.oracle.Outcome(v, all)
		}
		if decoded {
			r.report.Usage.Receptions++
			r.newly = append(r.newly, v)
			continue
		}
		// Collision: re-derive the interfering senders (adjacency is
		// symmetric and the loss function is pure, so this reproduces
		// exactly the frames that arrived).
		start := len(r.collArena)
		for _, u := range senders {
			if r.in.G.Nbr(v).Has(u) && (r.loss == nil || !r.loss(t, u, v)) {
				r.collArena = append(r.collArena, u)
			}
		}
		cs := r.collArena[start:len(r.collArena):len(r.collArena)]
		sort.Ints(cs)
		r.report.Usage.Collisions++
		r.colls = append(r.colls, Collision{T: t, Receiver: v, Senders: cs})
	}
	for _, v := range r.newly {
		r.w.Add(v)
		r.covered[v] = t
	}
	return nil
}

// accountQuiet charges idle/sleep slots for one elapsed slot: transmitters
// were already charged; every other node spends the slot listening, and
// additionally its sending circuitry is asleep unless its wake schedule has
// it on.
//
//mlbs:hotpath -- runs every replayed slot
func (r *Replayer) accountQuiet(t int, senders []graph.NodeID) {
	for _, u := range senders {
		r.isTx[u] = true
	}
	for u := 0; u < r.n; u++ {
		if r.isTx[u] {
			continue
		}
		r.report.Usage.IdleSlots++
		if !r.in.Wake.Awake(u, t) {
			r.report.Usage.SleepSlots++
		}
	}
	for _, u := range senders {
		r.isTx[u] = false
	}
}

// arrivedAt narrows senders to those whose signal survives the lossy
// channel toward v — the physical-model analogue of the per-link frame
// drop in transmit. Only called with r.loss non-nil; the ideal channel
// passes the sender list through untouched.
//
//mlbs:hotpath -- per-receiver inner loop of lossy SINR replays
func (r *Replayer) arrivedAt(t int, v graph.NodeID, senders []graph.NodeID) []graph.NodeID {
	r.arrived = r.arrived[:0]
	for _, u := range senders {
		if !r.loss(t, u, v) {
			r.arrived = append(r.arrived, u)
		}
	}
	return r.arrived
}

// filterAble narrows senders to those that physically hold the message —
// in a lossy replay, relays whose own reception was lost stay silent
// instead of aborting the execution.
//
//mlbs:hotpath -- runs every lossy slot
func (r *Replayer) filterAble(t int, senders []graph.NodeID) ([]graph.NodeID, error) {
	r.able = r.able[:0]
	for _, u := range senders {
		if u < 0 || u >= r.n {
			return nil, errOut(u, t)
		}
		if r.w.Has(u) {
			r.able = append(r.able, u)
		}
	}
	return r.able, nil
}

func (r *Replayer) finish(start, end int) *Report {
	rep := &r.report
	rep.CoveredAt = r.covered[:r.n]
	if len(r.colls) > 0 {
		rep.Collisions = r.colls
	}
	rep.End = end
	rep.Slots = end - start + 1
	if rep.Slots < 0 {
		rep.Slots = 0
	}
	rep.Completed = r.w.Len() == r.n && len(r.colls) == 0
	return rep
}

// Replay executes a precomputed schedule on the ideal channel; see the
// package-level Replay for semantics. The report aliases the Replayer's
// buffers and is valid until its next call.
func (r *Replayer) Replay(in core.Instance, sched *core.Schedule) (*Report, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	r.loss = nil
	return r.replay(in, sched)
}

// replay is the shared schedule-execution loop. r.loss selects the loss
// behavior; multi-channel slots (several advances sharing a T on distinct
// ascending channels, legal only when the instance has K > 1 channels)
// route through transmitGroup.
//
//mlbs:hotpath -- the shared execution loop of every replay
func (r *Replayer) replay(in core.Instance, sched *core.Schedule) (*Report, error) {
	r.reset(in, sched.Start)
	k := in.K()
	prevT, prevCh := sched.Start-1, int(^uint(0)>>1)
	for _, adv := range sched.Advances {
		if adv.T < prevT || (adv.T == prevT && adv.Channel <= prevCh) {
			return nil, errOrder(adv.T)
		}
		if adv.Channel < 0 || adv.Channel >= k {
			//mlbs:allow hotalloc -- malformed-schedule error path, aborts the replay
			return nil, fmt.Errorf("sim: advance at t=%d uses channel %d, instance has %d", adv.T, adv.Channel, k)
		}
		prevT, prevCh = adv.T, adv.Channel
	}
	maxT := sched.Start - 1
	if len(sched.Advances) > 0 {
		maxT = sched.Advances[len(sched.Advances)-1].T
	}
	ai := 0
	for t := sched.Start; t <= maxT; t++ {
		start := ai
		for ai < len(sched.Advances) && sched.Advances[ai].T == t {
			ai++
		}
		group := sched.Advances[start:ai]
		var senders []graph.NodeID
		switch {
		case len(group) == 1 && group[0].Channel == 0:
			// Single-channel slot: the classic per-slot physics.
			senders = group[0].Senders
			firing := senders
			if r.loss != nil {
				var err error
				if firing, err = r.filterAble(t, senders); err != nil {
					return nil, err
				}
			}
			if len(firing) > 0 {
				if err := r.transmit(t, firing); err != nil {
					return nil, err
				}
			}
		case len(group) > 0:
			var err error
			if senders, err = r.transmitGroup(t, group); err != nil {
				return nil, err
			}
		}
		r.accountQuiet(t, senders)
	}
	return r.finish(sched.Start, maxT), nil
}

// transmitGroup applies the physics of one multi-channel slot: every
// advance's senders fire on the advance's own frequency channel, frames
// interfere only within a channel, and an uncovered receiver becomes
// covered when some channel delivers it exactly one frame. Collisions are
// recorded per (receiver, channel); a receiver rescued by another channel
// still reports the collision — a conflict-aware schedule must not produce
// any. Returns the slot's scheduled senders across all channels (the
// accountQuiet input).
//
//mlbs:hotpath -- multi-channel per-slot physics, same warm-replay discipline as transmit
func (r *Replayer) transmitGroup(t int, group []core.Advance) ([]graph.NodeID, error) {
	// One radio per node: a sender may appear on at most one channel. The
	// isTx marks are cleared on every exit — error paths included — so a
	// failed replay never corrupts a reused Replayer.
	r.slotTx = r.slotTx[:0]
	for gi := range group {
		for _, u := range group[gi].Senders {
			if u < 0 || u >= r.n {
				r.clearTxMarks()
				return nil, errOut(u, t)
			}
			if r.isTx[u] {
				r.clearTxMarks()
				//mlbs:allow hotalloc -- malformed-schedule error path, aborts the replay
				return nil, fmt.Errorf("sim: node %d transmits on two channels at t=%d", u, t)
			}
			r.isTx[u] = true
			r.slotTx = append(r.slotTx, u)
		}
	}
	r.clearTxMarks()

	r.slotNodes = r.slotNodes[:0]
	r.newly = r.newly[:0]
	solo := r.oracle.SoloDecodes()
	for gi := range group {
		adv := &group[gi]
		firing := adv.Senders
		if r.loss != nil {
			var err error
			if firing, err = r.filterAble(t, adv.Senders); err != nil {
				r.clearSlotFlags()
				return nil, err
			}
		} else {
			for _, u := range firing {
				if !r.w.Has(u) {
					r.clearSlotFlags()
					return nil, errUncovered(u, t)
				}
			}
		}
		for _, u := range firing {
			if !r.in.Wake.Awake(u, t) {
				r.clearSlotFlags()
				return nil, errAsleep(u, t)
			}
		}
		r.touched = r.touched[:0]
		for _, u := range firing {
			r.report.Usage.Transmissions++
			for _, v := range r.in.G.Adj(u) {
				if r.loss != nil && r.loss(t, u, v) {
					r.lost++
					continue
				}
				if r.nFrames[v] == 0 {
					r.touched = append(r.touched, v)
				}
				r.nFrames[v]++
			}
		}
		sort.Ints(r.touched)
		for _, v := range r.touched {
			k := r.nFrames[v]
			r.nFrames[v] = 0
			if r.slotFlag[v] == 0 {
				r.slotNodes = append(r.slotNodes, v)
			}
			if r.w.Has(v) {
				// Covered before the slot: one duplicate reception is
				// tallied per slot, like the single-channel MAC discard.
				if r.slotFlag[v]&flagRec == 0 {
					r.slotFlag[v] |= flagRec
					r.report.Usage.Receptions++
				}
				continue
			}
			decoded := k == 1
			if !solo {
				all := firing
				if r.loss != nil {
					all = r.arrivedAt(t, v, firing)
				}
				_, decoded = r.oracle.Outcome(v, all)
			}
			if !decoded {
				// Same-channel collision at an uncovered node; re-derive
				// the interfering senders of this channel. Recorded even if
				// a lower channel already rescued v this slot (flagNew):
				// Validate judges every advance against pre-slot coverage,
				// so the replayer's collision flags must match its verdicts.
				start := len(r.collArena)
				for _, u := range firing {
					if r.in.G.Nbr(v).Has(u) && (r.loss == nil || !r.loss(t, u, v)) {
						r.collArena = append(r.collArena, u)
					}
				}
				cs := r.collArena[start:len(r.collArena):len(r.collArena)]
				sort.Ints(cs)
				r.report.Usage.Collisions++
				r.colls = append(r.colls, Collision{T: t, Receiver: v, Senders: cs, Channel: adv.Channel})
				continue
			}
			if r.slotFlag[v]&flagRec == 0 {
				r.slotFlag[v] |= flagRec
				r.report.Usage.Receptions++
			}
			if r.slotFlag[v]&flagNew == 0 {
				r.slotFlag[v] |= flagNew
				r.newly = append(r.newly, v)
			}
		}
	}
	sort.Ints(r.newly)
	for _, v := range r.newly {
		r.w.Add(v)
		r.covered[v] = t
	}
	r.clearSlotFlags()
	return r.slotTx, nil
}

// clearTxMarks clears the isTx marks of the senders recorded in slotTx,
// keeping the slotTx list itself (accountQuiet consumes it).
//
//mlbs:hotpath -- cleanup shared by every transmitGroup exit
func (r *Replayer) clearTxMarks() {
	for _, u := range r.slotTx {
		r.isTx[u] = false
	}
}

// clearSlotFlags zeroes the per-slot reception marks of every node
// touched so far — the cleanup all transmitGroup exits share.
//
//mlbs:hotpath -- cleanup shared by every transmitGroup exit
func (r *Replayer) clearSlotFlags() {
	for _, v := range r.slotNodes {
		r.slotFlag[v] = 0
	}
}

// RunPolicy drives an online policy against the ideal physics; see the
// package-level RunPolicy. The report aliases the Replayer's buffers.
func (r *Replayer) RunPolicy(in core.Instance, policy PolicyFunc, horizon int) (*Report, *core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if horizon <= 0 {
		horizon = in.Start + in.G.N()*(in.Wake.Period()+1) + in.Wake.Period()
	}
	r.loss = nil
	return r.run(in, policy, horizon, false)
}

// run is the shared policy-execution loop. sortSenders selects whether the
// recorded advances normalize sender order (the lossy runner does).
func (r *Replayer) run(in core.Instance, policy PolicyFunc, horizon int, sortSenders bool) (*Report, *core.Schedule, error) {
	r.reset(in, in.Start)
	sched := &core.Schedule{Source: in.Source, Start: in.Start}
	end := in.Start - 1
	for t := in.Start; r.w.Len() < r.n && t <= horizon; t++ {
		senders := policy(r.w, t)
		if len(senders) > 0 {
			if err := r.transmit(t, senders); err != nil {
				return nil, nil, err
			}
			end = t
			recorded := append([]graph.NodeID(nil), senders...)
			if sortSenders {
				sort.Ints(recorded)
			}
			sched.Advances = append(sched.Advances, core.Advance{
				T:       t,
				Senders: recorded,
				Covered: append([]graph.NodeID(nil), r.newly...),
			})
		}
		r.accountQuiet(t, senders)
	}
	return r.finish(in.Start, end), sched, nil
}

// LossyReplayer is the lossy-channel counterpart of Replayer: the same
// reusable buffers plus the dropped-frame accounting. Reports alias the
// replayer's buffers and stay valid until its next call; not safe for
// concurrent use; the zero value is ready.
type LossyReplayer struct {
	r    Replayer
	lrep LossyReport
}

// NewLossyReplayer returns a ready lossy-channel replayer.
func NewLossyReplayer() *LossyReplayer { return &LossyReplayer{} }

// Replay executes a precomputed schedule over a lossy channel; see the
// package-level ReplayLossy for semantics.
func (l *LossyReplayer) Replay(in core.Instance, sched *core.Schedule, loss LossFunc) (*LossyReport, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return l.ReplayValidated(in, sched, loss)
}

// ReplayValidated is Replay without the per-call Instance.Validate — the
// entry point for batch engines that validate the instance once and then
// execute thousands of trials against it. The caller guarantees
// in.Validate() == nil.
func (l *LossyReplayer) ReplayValidated(in core.Instance, sched *core.Schedule, loss LossFunc) (*LossyReport, error) {
	if loss == nil {
		loss = NoLoss
	}
	l.r.loss = loss
	rep, err := l.r.replay(in, sched)
	l.r.loss = nil
	if err != nil {
		return nil, err
	}
	l.lrep = LossyReport{Report: *rep, LostFrames: l.r.lost}
	return &l.lrep, nil
}

// RunPolicy drives an online policy over a lossy channel; see the
// package-level RunPolicyLossy for semantics.
func (l *LossyReplayer) RunPolicy(in core.Instance, policy PolicyFunc, horizon int, loss LossFunc) (*LossyReport, *core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if loss == nil {
		loss = NoLoss
	}
	if horizon <= 0 {
		// Losses stretch executions: allow an order of magnitude beyond
		// the lossless default before declaring failure.
		horizon = in.Start + 10*in.G.N()*(in.Wake.Period()+1) + in.Wake.Period()
	}
	l.r.loss = loss
	rep, sched, err := l.r.run(in, policy, horizon, true)
	l.r.loss = nil
	if err != nil {
		return nil, nil, err
	}
	l.lrep = LossyReport{Report: *rep, LostFrames: l.r.lost}
	return &l.lrep, sched, nil
}
