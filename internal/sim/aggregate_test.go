package sim

import (
	"strings"
	"testing"

	"mlbs/internal/aggregate"
	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
	"mlbs/internal/topology"
)

// aggCrossCheck plans a convergecast schedule, demands Validate accept it,
// and demands the replay deliver every reading to the sink with zero
// collisions — the aggregation mirror of crossCheck: Validate's
// receiver-safe classes and the replayer's per-channel physics are two
// derivations of the same oracle, and any disagreement is a real bug.
func aggCrossCheck(t *testing.T, name string, in core.Instance) {
	t.Helper()
	var s aggregate.Scheduler
	res, err := s.Schedule(in)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("%s: planned aggregation schedule invalid: %v", name, err)
	}
	rep, err := ReplayAggregate(in, res.Schedule)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(rep.Collisions) != 0 {
		t.Fatalf("%s: valid aggregation schedule replayed with collisions: %+v", name, rep.Collisions)
	}
	n := in.G.N()
	if !rep.Completed || rep.Delivered != n {
		t.Fatalf("%s: sink holds %d of %d readings (completed=%v)", name, rep.Delivered, n, rep.Completed)
	}
	for u, at := range rep.DeliveredAt {
		if at < 0 {
			t.Fatalf("%s: reading of node %d never delivered", name, u)
		}
	}
	if rep.Slots != res.LatencySlots {
		t.Fatalf("%s: replay took %d slots, schedule claims %d", name, rep.Slots, res.LatencySlots)
	}
}

// TestAggReplayerAgreesWithValidate is the aggregation property test: for
// random sync/duty/K∈{1,2} instances under both interference oracles, a
// schedule accepted by aggregate.Schedule.Validate must replay to a
// complete, collision-free aggregate at the sink.
func TestAggReplayerAgreesWithValidate(t *testing.T) {
	sinr := &interference.SINRParams{Alpha: 3, Beta: 1}
	for _, seed := range []uint64{2, 5} {
		d, err := topology.Generate(topology.PaperConfig(60), seed)
		if err != nil {
			t.Fatal(err)
		}
		sync := core.Sync(d.G, d.Source)
		duty := core.Async(d.G, d.Source, dutycycle.NewUniform(d.G.N(), 5, seed^0xA5, 0), 0)
		multi := sync
		multi.Channels = 2
		cases := []struct {
			name string
			in   core.Instance
		}{
			{"sync/graph", sync},
			{"duty/graph", duty},
			{"k2/graph", multi},
		}
		for _, c := range cases {
			aggCrossCheck(t, c.name, c.in)
			sc := c.in
			sc.SINR = sinr
			aggCrossCheck(t, c.name+"+sinr", sc)
		}
	}
}

// TestAggReplayCollision drives an invalid bundle through the replayer: two
// children whose parents each hear both frames collide at both receivers
// under the protocol model.
func TestAggReplayCollision(t *testing.T) {
	// 0-1, 0-2, 1-3, 2-3 diamond: parents 1 and 2 both hear 3.
	g := graph.NewBuilder(4, nil).
		AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 3).AddEdge(2, 3).AddEdge(1, 2).
		Build()
	in := core.Sync(g, 0)
	sched := &aggregate.Schedule{Sink: 0, Start: 1, Parent: []graph.NodeID{-1, 0, 0, 1}, Advances: []aggregate.Advance{
		{T: 1, Senders: []graph.NodeID{2, 3}}, // parent 1 hears both 2 and 3
		{T: 2, Senders: []graph.NodeID{1}},
	}}
	if err := sched.Validate(in); err == nil || !strings.Contains(err.Error(), "does not decode") {
		t.Fatalf("Validate must reject the bundle, got %v", err)
	}
	rep, err := ReplayAggregate(in, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Collisions) == 0 {
		t.Fatal("replay of a receiver-unsafe bundle must record a collision")
	}
	if rep.Completed {
		t.Fatal("collided execution must not report Completed")
	}
	c := rep.Collisions[0]
	if c.T != 1 || c.Receiver != 1 {
		t.Fatalf("collision = %+v, want T=1 at receiver 1", c)
	}
}

// TestAggReplaySleepingParentLosesFrame: a frame sent while the parent
// sleeps is silently lost — no collision, but the aggregate is incomplete.
func TestAggReplaySleepingParentLosesFrame(t *testing.T) {
	g := graph.NewBuilder(3, nil).AddEdge(0, 1).AddEdge(1, 2).Build()
	wake := dutycycle.NewFixed(2, 1, [][]int{{0, 1}, {0}, {0, 1}})
	in := core.Async(g, 0, wake, 0)
	sched := &aggregate.Schedule{Sink: 0, Start: in.Start, Parent: []graph.NodeID{-1, 0, 1}, Advances: []aggregate.Advance{
		{T: 1, Senders: []graph.NodeID{2}}, // parent 1 asleep at odd slots
		{T: 2, Senders: []graph.NodeID{1}},
	}}
	rep, err := ReplayAggregate(in, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Collisions) != 0 {
		t.Fatalf("sleep loss must not be a collision: %+v", rep.Collisions)
	}
	if rep.Completed || rep.Delivered != 2 {
		t.Fatalf("delivered %d readings (completed=%v), want 2 (node 2's reading lost)", rep.Delivered, rep.Completed)
	}
	if rep.DeliveredAt[2] != -1 {
		t.Fatalf("node 2's reading delivered at %d, want never", rep.DeliveredAt[2])
	}
}
