package sim

import (
	"strings"
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/graph"
)

// chKite: 0—1, 0—2, 1—3, 2—3, 1—4, 2—5. Relays 1 and 2 share uncovered
// node 3 — a same-channel collision, harmless on two channels.
func chKite() *graph.Graph {
	return graph.NewBuilder(6, nil).
		AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 3).AddEdge(2, 3).
		AddEdge(1, 4).AddEdge(2, 5).
		Build()
}

func chInstance(k int) core.Instance {
	in := core.Sync(chKite(), 0)
	in.Channels = k
	return in
}

func chSchedule() *core.Schedule {
	return &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2}},
		{T: 2, Channel: 0, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{3, 4}},
		{T: 2, Channel: 1, Senders: []graph.NodeID{2}, Covered: []graph.NodeID{5}},
	}}
}

func TestReplayChannelizedSlot(t *testing.T) {
	in := chInstance(2)
	rep, err := Replay(in, chSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("channelized replay incomplete: %+v", rep)
	}
	if len(rep.Collisions) != 0 {
		t.Fatalf("orthogonal channels collided: %v", rep.Collisions)
	}
	for v, want := range []int{0, 1, 1, 2, 2, 2} {
		if rep.CoveredAt[v] != want {
			t.Fatalf("node %d covered at %d, want %d", v, rep.CoveredAt[v], want)
		}
	}
	if rep.Usage.Transmissions != 3 {
		t.Fatalf("transmissions = %d, want 3", rep.Usage.Transmissions)
	}
}

func TestReplaySameChannelCollision(t *testing.T) {
	// Same senders, both on channel 0 of a 2-channel instance: node 3
	// hears two frames on one channel and loses both.
	s := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2}},
		{T: 2, Channel: 0, Senders: []graph.NodeID{1, 2}, Covered: []graph.NodeID{3, 4, 5}},
	}}
	rep, err := Replay(chInstance(2), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Fatal("same-channel collision not detected")
	}
	if len(rep.Collisions) != 1 || rep.Collisions[0].Receiver != 3 || rep.Collisions[0].Channel != 0 {
		t.Fatalf("collisions = %+v, want one at node 3 channel 0", rep.Collisions)
	}
	if rep.CoveredAt[3] >= 0 {
		t.Fatal("collided node reported covered")
	}
	// Private receivers 4 and 5 each heard exactly one frame.
	if rep.CoveredAt[4] != 2 || rep.CoveredAt[5] != 2 {
		t.Fatalf("private receivers: %v", rep.CoveredAt)
	}
}

func TestReplayCrossChannelRescue(t *testing.T) {
	// Channel 1 carries a clean frame to node 3 while channel 0 collides
	// there: the node is covered, but the channel-0 collision is still
	// reported — a conflict-aware schedule must not produce any.
	g := graph.NewBuilder(6, nil).
		AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 5).
		AddEdge(1, 3).AddEdge(2, 3).AddEdge(5, 3).
		AddEdge(1, 4).AddEdge(2, 4).
		Build()
	in := core.Sync(g, 0)
	in.Channels = 2
	s := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2, 5}},
		{T: 2, Channel: 0, Senders: []graph.NodeID{1, 2}, Covered: []graph.NodeID{4}},
		{T: 2, Channel: 1, Senders: []graph.NodeID{5}, Covered: []graph.NodeID{3}},
	}}
	rep, err := Replay(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoveredAt[3] != 2 {
		t.Fatalf("node 3 not rescued by channel 1: CoveredAt = %v", rep.CoveredAt)
	}
	// Nodes 3 and 4 both hear 1 and 2 collide on channel 0; only 3 has a
	// clean channel-1 frame to fall back on.
	if len(rep.Collisions) != 2 ||
		rep.Collisions[0].Receiver != 3 || rep.Collisions[0].Channel != 0 ||
		rep.Collisions[1].Receiver != 4 || rep.Collisions[1].Channel != 0 {
		t.Fatalf("collisions = %+v, want channel-0 collisions at 3 and 4", rep.Collisions)
	}
	if rep.CoveredAt[4] >= 0 {
		t.Fatal("node 4 has no clean channel and must stay dark")
	}
	if rep.Completed {
		t.Fatal("execution with a collision must not report Completed")
	}
}

func TestReplayChannelErrors(t *testing.T) {
	base := chSchedule()

	twoRadios := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		base.Advances[0],
		{T: 2, Channel: 0, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{3, 4}},
		{T: 2, Channel: 1, Senders: []graph.NodeID{1, 2}, Covered: []graph.NodeID{5}},
	}}
	if _, err := Replay(chInstance(2), twoRadios); err == nil || !strings.Contains(err.Error(), "two channels") {
		t.Fatalf("two-radio schedule: err = %v", err)
	}

	if _, err := Replay(chInstance(1), base); err == nil {
		t.Fatal("channelized schedule accepted on a single-channel instance")
	}

	outOfRange := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Channel: 5, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2}},
	}}
	if _, err := Replay(chInstance(2), outOfRange); err == nil || !strings.Contains(err.Error(), "channel") {
		t.Fatalf("out-of-range channel: err = %v", err)
	}

	disorder := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		base.Advances[0],
		{T: 2, Channel: 1, Senders: []graph.NodeID{2}, Covered: []graph.NodeID{5}},
		{T: 2, Channel: 0, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{3, 4}},
	}}
	if _, err := Replay(chInstance(2), disorder); err == nil || !strings.Contains(err.Error(), "order") {
		t.Fatalf("descending channels: err = %v", err)
	}
}

// TestReplayerReusableAfterGroupError pins the cleanup contract: a failed
// multi-channel replay must not leave per-slot marks (isTx, slotFlag) set
// on a reused Replayer, or the next — perfectly valid — replay would be
// rejected or mis-covered.
func TestReplayerReusableAfterGroupError(t *testing.T) {
	in := chInstance(2)
	bad := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		chSchedule().Advances[0],
		{T: 2, Channel: 0, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{3, 4}},
		{T: 2, Channel: 1, Senders: []graph.NodeID{1, 2}, Covered: []graph.NodeID{5}},
	}}
	r := NewReplayer()
	if _, err := r.Replay(in, bad); err == nil {
		t.Fatal("two-radio schedule accepted")
	}
	rep, err := r.Replay(in, chSchedule())
	if err != nil {
		t.Fatalf("valid replay after an error on the same Replayer: %v", err)
	}
	if !rep.Completed || len(rep.Collisions) != 0 {
		t.Fatalf("reused replayer corrupted: completed=%v collisions=%v", rep.Completed, rep.Collisions)
	}

	// An error after channel 0 was processed (asleep sender on channel 1)
	// must clear the slot reception marks too.
	asleepIn := core.Async(chKite(), 0, dutycycle.NewPeriodicPhase(2, []int{0, 0, 1, 0, 0, 0}), 0)
	asleepIn.Channels = 2
	late := &core.Schedule{Source: 0, Start: 2, Advances: []core.Advance{
		{T: 2, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2}},
		{T: 4, Channel: 0, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{3, 4}},
		{T: 4, Channel: 1, Senders: []graph.NodeID{2}, Covered: []graph.NodeID{5}}, // 2 wakes on odd slots only: asleep at 4
	}}
	if _, err := r.Replay(asleepIn, late); err == nil || !strings.Contains(err.Error(), "channel was off") {
		t.Fatalf("want asleep error, got %v", err)
	}
	rep, err = r.Replay(in, chSchedule())
	if err != nil || !rep.Completed {
		t.Fatalf("replayer corrupted after mid-group error: rep=%+v err=%v", rep, err)
	}
}

func TestLossyReplayChannelized(t *testing.T) {
	in := chInstance(2)
	s := chSchedule()
	// A lossless lossy replay matches the ideal one.
	rep, err := ReplayLossy(in, s, NoLoss)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.LostFrames != 0 {
		t.Fatalf("lossless channelized replay: %+v", rep)
	}
	// Killing the 0→1 link strands relay 1; relay 2's channel-1 frame
	// still covers 3 and 5, node 4 stays dark, and nothing errors.
	kill := func(t int, u, v graph.NodeID) bool { return u == 0 && v == 1 }
	rep, err = ReplayLossy(in, s, kill)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Fatal("stranded-relay execution reported complete")
	}
	if rep.CoveredAt[1] >= 0 || rep.CoveredAt[4] >= 0 {
		t.Fatalf("1 and 4 should stay dark: %v", rep.CoveredAt)
	}
	if rep.CoveredAt[3] != 2 || rep.CoveredAt[5] != 2 {
		t.Fatalf("relay 2's receivers should be covered at 2: %v", rep.CoveredAt)
	}
	if rep.LostFrames != 1 {
		t.Fatalf("lost frames = %d, want 1", rep.LostFrames)
	}
}

func TestChannelizedReplayMatchesValidate(t *testing.T) {
	// Schedules the channelized search produces replay collision-free on
	// both wake systems — the sim/core consistency contract.
	for _, k := range []int{2, 4} {
		for _, duty := range []bool{false, true} {
			in := core.Sync(chKite(), 0)
			if duty {
				in = core.Async(chKite(), 0, dutycycle.NewUniform(6, 3, 5, 0), 0)
			}
			in.Channels = k
			res, err := core.NewGOPT(0).Schedule(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Schedule.Validate(in); err != nil {
				t.Fatalf("K=%d duty=%v: %v", k, duty, err)
			}
			rep, err := Replay(in, res.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Completed || len(rep.Collisions) != 0 {
				t.Fatalf("K=%d duty=%v: completed=%v collisions=%v", k, duty, rep.Completed, rep.Collisions)
			}
		}
	}
}
