package sim

import (
	"reflect"
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/rng"
	"mlbs/internal/topology"
)

// TestWarmLossyReplayAllocs pins the replayer refactor's core property:
// once a LossyReplayer's buffers are warm, a full lossy replay of the
// n=300 paper topology allocates nothing — the per-slot heard/tx maps of
// the old implementation (several allocations per slot) are gone. The
// Monte-Carlo engine batches thousands of replays on this ceiling.
func TestWarmLossyReplayAllocs(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(300), 2)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	loss := IIDLoss(0.05, 7)
	rep := NewLossyReplayer()
	for i := 0; i < 3; i++ { // warm-up: grows arenas, collision buffers
		if _, err := rep.ReplayValidated(in, res.Schedule, loss); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := rep.ReplayValidated(in, res.Schedule, loss); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("warm lossy replay allocated %.1f objects per replay; want ≤ 2", allocs)
	}
}

// TestWarmIdealReplayAllocs bounds the ideal path too: the only remaining
// per-call cost is Instance.Validate's connectivity BFS.
func TestWarmIdealReplayAllocs(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(300), 2)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplayer()
	if _, err := rep.Replay(in, res.Schedule); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := rep.Replay(in, res.Schedule); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Errorf("warm ideal replay allocated %.1f objects per replay; want ≤ 16", allocs)
	}
}

// TestReplayerMatchesOneShot checks the reusable replayer against the
// package-level one-shot functions, including reuse across instances of
// different sizes in both directions.
func TestReplayerMatchesOneShot(t *testing.T) {
	rep := NewReplayer()
	lrep := NewLossyReplayer()
	for _, cfg := range []struct {
		n    int
		seed uint64
	}{{120, 3}, {40, 5}, {200, 1}} {
		d, err := topology.Generate(topology.PaperConfig(cfg.n), cfg.seed)
		if err != nil {
			t.Fatal(err)
		}
		in := core.Sync(d.G, d.Source)
		res, err := core.NewEModel(0).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Replay(in, res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rep.Replay(in, res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: reused replayer diverged from one-shot:\n got %+v\nwant %+v", cfg.n, got, want)
		}
		loss := IIDLoss(0.1, cfg.seed)
		lwant, err := ReplayLossy(in, res.Schedule, loss)
		if err != nil {
			t.Fatal(err)
		}
		lgot, err := lrep.Replay(in, res.Schedule, loss)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lgot, lwant) {
			t.Fatalf("n=%d: reused lossy replayer diverged from one-shot", cfg.n)
		}
	}
}

// TestLossyReplayDeterministicUnderSenderOrder pins the simulator's
// order-independence contract: shuffling the sender list inside each
// advance must produce the identical LossyReport — coverage slots,
// collision records (receiver and sorted senders), usage tallies, and
// the dropped-frame count all match.
func TestLossyReplayDeterministicUnderSenderOrder(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(150), 8)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	loss := IIDLoss(0.15, 4)
	base, err := ReplayLossy(in, res.Schedule, loss)
	if err != nil {
		t.Fatal(err)
	}
	baseCopy := cloneLossyReport(base)
	src := rng.New(99)
	for trial := 0; trial < 5; trial++ {
		shuffled := &core.Schedule{Source: res.Schedule.Source, Start: res.Schedule.Start}
		for _, adv := range res.Schedule.Advances {
			senders := append([]graph.NodeID(nil), adv.Senders...)
			src.Shuffle(len(senders), func(i, j int) { senders[i], senders[j] = senders[j], senders[i] })
			shuffled.Advances = append(shuffled.Advances, core.Advance{T: adv.T, Senders: senders, Covered: adv.Covered})
		}
		got, err := ReplayLossy(in, shuffled, loss)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cloneLossyReport(got), baseCopy) {
			t.Fatalf("trial %d: shuffled sender order changed the report\n got %+v\nwant %+v", trial, got, baseCopy)
		}
	}
}

// cloneLossyReport deep-copies a report so comparisons survive replayer
// buffer reuse.
func cloneLossyReport(r *LossyReport) *LossyReport {
	cp := *r
	cp.CoveredAt = append([]int(nil), r.CoveredAt...)
	cp.Collisions = nil
	for _, c := range r.Collisions {
		cp.Collisions = append(cp.Collisions, Collision{
			T: c.T, Receiver: c.Receiver, Senders: append([]graph.NodeID(nil), c.Senders...),
		})
	}
	return &cp
}

func BenchmarkLossyReplayerReplay300(b *testing.B) {
	d, err := topology.Generate(topology.PaperConfig(300), 2)
	if err != nil {
		b.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		b.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		b.Fatal(err)
	}
	loss := IIDLoss(0.05, 7)
	rep := NewLossyReplayer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rep.ReplayValidated(in, res.Schedule, loss); err != nil {
			b.Fatal(err)
		}
	}
}
