package sim_test

import (
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/emodel"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/localized"
	"mlbs/internal/sim"
	"mlbs/internal/topology"
)

func lossyPath(n int) *graph.Graph {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	return graph.FromUDG(pos, 1)
}

func TestIIDLossDeterministic(t *testing.T) {
	a := sim.IIDLoss(0.3, 7)
	b := sim.IIDLoss(0.3, 7)
	for i := 0; i < 200; i++ {
		if a(i, i%5, (i+1)%5) != b(i, i%5, (i+1)%5) {
			t.Fatal("IIDLoss not deterministic")
		}
	}
}

func TestIIDLossRate(t *testing.T) {
	loss := sim.IIDLoss(0.25, 3)
	dropped := 0
	const trials = 40000
	for i := 0; i < trials; i++ {
		if loss(i, 1, 2) {
			dropped++
		}
	}
	rate := float64(dropped) / trials
	if rate < 0.23 || rate > 0.27 {
		t.Fatalf("empirical loss rate = %f, want ≈0.25", rate)
	}
	if sim.IIDLoss(0, 1)(1, 2, 3) {
		t.Fatal("zero rate must never drop")
	}
}

func TestReplayLossyNoLossMatchesReplay(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(80), 2)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := sim.Replay(in, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := sim.ReplayLossy(in, res.Schedule, sim.NoLoss)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.LostFrames != 0 || lossy.Completed != ideal.Completed || lossy.End != ideal.End {
		t.Fatalf("NoLoss replay diverged: %+v vs %+v", lossy.Report, ideal)
	}
}

// An offline schedule degrades under loss: the plan fires each relay once,
// so a lost frame permanently strands downstream nodes (the fragility
// Section VI points out for offline interference-free schedules).
func TestReplayLossyOfflinePlanStrands(t *testing.T) {
	g := lossyPath(6)
	in := core.Sync(g, 0)
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	// Drop exactly the frame 1→2 at slot 2 (the second advance).
	loss := func(t int, from, to graph.NodeID) bool { return t == 2 && from == 1 && to == 2 }
	rep, err := sim.ReplayLossy(in, res.Schedule, loss)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Fatal("plan completed despite a severed relay")
	}
	if rep.LostFrames != 1 {
		t.Fatalf("lost = %d, want 1", rep.LostFrames)
	}
	// Everything past node 1 is stranded: node 2's only upstream frame died
	// and the plan never retransmits.
	for v := 2; v < 6; v++ {
		if rep.CoveredAt[v] != -1 {
			t.Fatalf("node %d covered at %d despite the severed link", v, rep.CoveredAt[v])
		}
	}
}

func TestReplayLossySilentStrandedSenders(t *testing.T) {
	// A stranded sender must be skipped silently, not crash the replay.
	g := lossyPath(4)
	in := core.Sync(g, 0)
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	loss := func(t int, from, to graph.NodeID) bool { return from == 0 } // source isolated
	rep, err := sim.ReplayLossy(in, res.Schedule, loss)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed || rep.CoveredAt[1] != -1 {
		t.Fatalf("report = %+v", rep.Report)
	}
}

// The localized scheme retransmits naturally (a candidate stays a
// candidate until its receivers are covered), so it completes even over a
// harsh channel — the robustness contrast to the offline plan above.
func TestRunPolicyLossyLocalizedRecovers(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(60), 4)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	tab := localizedTable(t, in)
	loss := sim.IIDLoss(0.3, 11)
	rep, sched, err := sim.RunPolicyLossy(in, localized.Policy(in, tab), 0, loss)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("localized scheme failed to complete under 30%% loss: %+v", rep.Report)
	}
	if rep.LostFrames == 0 {
		t.Fatal("expected dropped frames at 30% loss")
	}
	if len(sched.Advances) == 0 {
		t.Fatal("no advances recorded")
	}
	// Retransmissions cost energy: more transmissions than the lossless run.
	ideal, _, err := sim.RunPolicy(in, localized.Policy(in, tab), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Usage.Transmissions <= ideal.Usage.Transmissions {
		t.Fatalf("lossy run used %d transmissions, lossless %d — retransmission missing",
			rep.Usage.Transmissions, ideal.Usage.Transmissions)
	}
}

func TestRunPolicyLossyDeterministic(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(50), 6)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	tab := localizedTable(t, in)
	loss := sim.IIDLoss(0.2, 21)
	a, _, err := sim.RunPolicyLossy(in, localized.Policy(in, tab), 0, loss)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := sim.RunPolicyLossy(in, localized.Policy(in, tab), 0, loss)
	if err != nil {
		t.Fatal(err)
	}
	if a.End != b.End || a.LostFrames != b.LostFrames {
		t.Fatal("lossy run not deterministic")
	}
}

// localizedTable builds the synchronous E table the localized policy uses.
func localizedTable(t *testing.T, in core.Instance) *emodel.Table {
	t.Helper()
	return emodel.BuildSync(in.G)
}
