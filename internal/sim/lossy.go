package sim

import (
	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/rng"
)

// LossFunc decides whether the frame sent by `from` at slot t is lost on
// the link to `to`. Implementations must be pure functions of their
// arguments so replays are deterministic regardless of iteration order.
type LossFunc func(t int, from, to graph.NodeID) bool

// NoLoss is the ideal channel.
func NoLoss(int, graph.NodeID, graph.NodeID) bool { return false }

// IIDPremix runs the seed through the mixing pass IIDDrop would apply
// first. The pre-mix depends only on the seed, so batch engines hoist it
// out of the per-frame loop: pre-mix once per trial, then draw with
// IIDDropPremixed.
func IIDPremix(seed uint64) uint64 {
	return rng.Mix64(seed + 0x9e3779b97f4a7c15)
}

// IIDDropPremixed is IIDDrop after IIDPremix has been applied to the
// seed — the per-frame decision on the Monte-Carlo hot path. The three
// coordinates are absorbed sequentially, each followed by a full
// SplitMix64 finalizer pass, so every bit of every field avalanches
// through 64-bit mixing before the next field enters — links sharing a
// slot, a sender, or a receiver see statistically independent draws (the
// earlier XOR-of-products construction left linear correlations between
// such links).
func IIDDropPremixed(rate float64, premixed uint64, t int, from, to graph.NodeID) bool {
	if rate <= 0 {
		return false
	}
	h := rng.Mix64(premixed ^ uint64(t+1))
	h = rng.Mix64(h ^ uint64(from+1))
	h = rng.Mix64(h ^ uint64(to+1))
	return float64(h>>11)/(1<<53) < rate
}

// IIDDrop is the pure per-frame decision IIDLoss closes over: drop the
// (slot, sender, receiver) frame with the given probability under seed.
func IIDDrop(rate float64, seed uint64, t int, from, to graph.NodeID) bool {
	return IIDDropPremixed(rate, IIDPremix(seed), t, from, to)
}

// IIDLoss drops each (slot, sender, receiver) frame independently with the
// given probability, keyed by seed. The draw hashes the triple, so it is
// order-independent and reproducible.
func IIDLoss(rate float64, seed uint64) LossFunc {
	if rate <= 0 {
		return NoLoss
	}
	premixed := IIDPremix(seed)
	return func(t int, from, to graph.NodeID) bool {
		return IIDDropPremixed(rate, premixed, t, from, to)
	}
}

// LossyReport extends Report with the dropped-frame count.
type LossyReport struct {
	Report
	LostFrames int
}

// ReplayLossy executes a precomputed schedule over a lossy channel. Unlike
// the ideal Replay, coverage claimed by the schedule may simply not happen;
// the report shows how far the offline plan actually got — the fragility
// of interference-free offline schedules that Section VI attributes to
// [20]-style approaches. Senders that never got the message (an earlier
// lossy slot failed them) stay silent instead of aborting: the offline
// plan simply degrades.
func ReplayLossy(in core.Instance, sched *core.Schedule, loss LossFunc) (*LossyReport, error) {
	return NewLossyReplayer().Replay(in, sched, loss)
}

// RunPolicyLossy drives an online policy over a lossy channel. Policies
// that re-derive senders from actual coverage (the localized scheme)
// retransmit naturally and still complete; the report records the price.
func RunPolicyLossy(in core.Instance, policy PolicyFunc, horizon int, loss LossFunc) (*LossyReport, *core.Schedule, error) {
	return NewLossyReplayer().RunPolicy(in, policy, horizon, loss)
}
