package sim

import (
	"fmt"
	"sort"

	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/rng"
)

func errOut(u graph.NodeID, t int) error {
	return fmt.Errorf("sim: sender %d out of range at t=%d", u, t)
}

func errUncovered(u graph.NodeID, t int) error {
	return fmt.Errorf("sim: node %d transmitted at t=%d without holding the message", u, t)
}

func errAsleep(u graph.NodeID, t int) error {
	return fmt.Errorf("sim: node %d transmitted at t=%d while its sending channel was off", u, t)
}

func errOrder(t int) error {
	return fmt.Errorf("sim: advances out of order at t=%d", t)
}

func sortedIDs(xs []graph.NodeID) []graph.NodeID {
	cp := append([]graph.NodeID(nil), xs...)
	sort.Ints(cp)
	return cp
}

func sortInts(xs []int) { sort.Ints(xs) }

// LossFunc decides whether the frame sent by `from` at slot t is lost on
// the link to `to`. Implementations must be pure functions of their
// arguments so replays are deterministic regardless of iteration order.
type LossFunc func(t int, from, to graph.NodeID) bool

// NoLoss is the ideal channel.
func NoLoss(int, graph.NodeID, graph.NodeID) bool { return false }

// IIDLoss drops each (slot, sender, receiver) frame independently with the
// given probability, keyed by seed. The draw hashes the triple, so it is
// order-independent and reproducible.
func IIDLoss(rate float64, seed uint64) LossFunc {
	if rate <= 0 {
		return NoLoss
	}
	return func(t int, from, to graph.NodeID) bool {
		s := seed
		s ^= uint64(t+1) * 0x9e3779b97f4a7c15
		s ^= uint64(from+1) * 0xbf58476d1ce4e5b9
		s ^= uint64(to+1) * 0x94d049bb133111eb
		v := rng.SplitMix64(&s)
		return float64(v>>11)/(1<<53) < rate
	}
}

// lostFrames counts dropped receptions in a lossy execution.
type lossState struct {
	*state
	loss LossFunc
	Lost int
}

// transmitLossy applies the slot physics with a lossy channel: frames may
// vanish per link; an uncovered node is covered when exactly one frame
// *arrives* (losses thin out collisions too, as on a real channel).
func (s *lossState) transmitLossy(t int, senders []graph.NodeID) ([]graph.NodeID, error) {
	for _, u := range senders {
		if u < 0 || u >= s.n {
			return nil, errOut(u, t)
		}
		if !s.w.Has(u) {
			return nil, errUncovered(u, t)
		}
		if !s.in.Wake.Awake(u, t) {
			return nil, errAsleep(u, t)
		}
	}
	heard := make(map[graph.NodeID][]graph.NodeID)
	for _, u := range senders {
		s.report.Usage.Transmissions++
		for _, v := range s.in.G.Adj(u) {
			if s.loss(t, u, v) {
				s.Lost++
				continue
			}
			heard[v] = append(heard[v], u)
		}
	}
	var newly []graph.NodeID
	for v, from := range heard {
		if s.w.Has(v) {
			s.report.Usage.Receptions++
			continue
		}
		if len(from) == 1 {
			s.report.Usage.Receptions++
			newly = append(newly, v)
			continue
		}
		s.report.Usage.Collisions++
		s.report.Collisions = append(s.report.Collisions, Collision{T: t, Receiver: v, Senders: sortedIDs(from)})
	}
	sortInts(newly)
	for _, v := range newly {
		s.w.Add(v)
		s.covered[v] = t
	}
	return newly, nil
}

// LossyReport extends Report with the dropped-frame count.
type LossyReport struct {
	Report
	LostFrames int
}

// ReplayLossy executes a precomputed schedule over a lossy channel. Unlike
// the ideal Replay, coverage claimed by the schedule may simply not happen;
// the report shows how far the offline plan actually got — the fragility
// of interference-free offline schedules that Section VI attributes to
// [20]-style approaches.
func ReplayLossy(in core.Instance, sched *core.Schedule, loss LossFunc) (*LossyReport, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if loss == nil {
		loss = NoLoss
	}
	ls := &lossState{state: newState(in, sched.Start), loss: loss}
	byTime := make(map[int][]graph.NodeID)
	maxT := sched.Start - 1
	prev := sched.Start - 1
	for _, adv := range sched.Advances {
		if adv.T <= prev {
			return nil, errOrder(adv.T)
		}
		prev = adv.T
		byTime[adv.T] = append(byTime[adv.T], adv.Senders...)
		if adv.T > maxT {
			maxT = adv.T
		}
	}
	for t := sched.Start; t <= maxT; t++ {
		senders := byTime[t]
		if len(senders) > 0 {
			// Senders that never got the message (an earlier lossy slot
			// failed them) stay silent instead of aborting: the offline
			// plan simply degrades.
			var able []graph.NodeID
			for _, u := range senders {
				if ls.w.Has(u) {
					able = append(able, u)
				}
			}
			if len(able) > 0 {
				if _, err := ls.transmitLossy(t, able); err != nil {
					return nil, err
				}
			}
		}
		ls.accountQuiet(t, senders)
	}
	rep := ls.finish(sched.Start, maxT)
	return &LossyReport{Report: *rep, LostFrames: ls.Lost}, nil
}

// RunPolicyLossy drives an online policy over a lossy channel. Policies
// that re-derive senders from actual coverage (the localized scheme)
// retransmit naturally and still complete; the report records the price.
func RunPolicyLossy(in core.Instance, policy PolicyFunc, horizon int, loss LossFunc) (*LossyReport, *core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if loss == nil {
		loss = NoLoss
	}
	if horizon <= 0 {
		// Losses stretch executions: allow an order of magnitude beyond
		// the lossless default before declaring failure.
		horizon = in.Start + 10*in.G.N()*(in.Wake.Period()+1) + in.Wake.Period()
	}
	ls := &lossState{state: newState(in, in.Start), loss: loss}
	sched := &core.Schedule{Source: in.Source, Start: in.Start}
	end := in.Start - 1
	for t := in.Start; ls.w.Len() < ls.n && t <= horizon; t++ {
		senders := policy(ls.w, t)
		if len(senders) > 0 {
			newly, err := ls.transmitLossy(t, senders)
			if err != nil {
				return nil, nil, err
			}
			end = t
			sched.Advances = append(sched.Advances, core.Advance{
				T:       t,
				Senders: sortedIDs(senders),
				Covered: newly,
			})
		}
		ls.accountQuiet(t, senders)
	}
	rep := ls.finish(in.Start, end)
	return &LossyReport{Report: *rep, LostFrames: ls.Lost}, sched, nil
}
