package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	return graph.FromUDG(pos, 1)
}

// fig2a: paper's Figure 2(a), 0-based.
func fig2a() *graph.Graph {
	return graph.NewBuilder(5, nil).
		AddEdge(0, 1).AddEdge(0, 2).
		AddEdge(1, 3).AddEdge(1, 4).
		AddEdge(2, 3).
		Build()
}

func TestReplayValidSchedule(t *testing.T) {
	in := core.Sync(fig2a(), 0)
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(in, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("valid schedule did not complete: %+v", rep)
	}
	if rep.End != res.PA {
		t.Fatalf("physical end %d != schedule end %d", rep.End, res.PA)
	}
	if len(rep.Collisions) != 0 {
		t.Fatalf("collisions in a conflict-free schedule: %v", rep.Collisions)
	}
	if rep.CoveredAt[0] != 0 {
		t.Fatalf("source covered at %d, want Start-1 = 0", rep.CoveredAt[0])
	}
	for v, at := range rep.CoveredAt {
		if at < 0 {
			t.Fatalf("node %d never covered", v)
		}
	}
	// Source + paper-node 2 transmit once each.
	if rep.Usage.Transmissions != 2 {
		t.Fatalf("transmissions = %d, want 2", rep.Usage.Transmissions)
	}
}

func TestReplayDetectsCollision(t *testing.T) {
	// Fire conflicting nodes 2 and 3 (ours 1 and 2) together: node 4
	// (ours 3) hears both and is lost; node 5 (ours 4) still covered.
	in := core.Sync(fig2a(), 0)
	sched := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 2}},
		{T: 2, Senders: []graph.NodeID{1, 2}, Covered: []graph.NodeID{3, 4}},
	}}
	rep, err := Replay(in, sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Fatal("colliding schedule reported complete")
	}
	if len(rep.Collisions) != 1 {
		t.Fatalf("collisions = %v, want exactly one", rep.Collisions)
	}
	c := rep.Collisions[0]
	if c.Receiver != 3 || c.T != 2 || len(c.Senders) != 2 {
		t.Fatalf("collision = %+v", c)
	}
	if rep.CoveredAt[3] != -1 {
		t.Fatal("collided node must remain uncovered")
	}
	if rep.CoveredAt[4] != 2 {
		t.Fatalf("node 4 covered at %d, want 2", rep.CoveredAt[4])
	}
}

func TestReplayRejectsImpossibleActions(t *testing.T) {
	in := core.Sync(fig2a(), 0)
	uncovered := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{3}},
	}}
	if _, err := Replay(in, uncovered); err == nil || !strings.Contains(err.Error(), "without holding") {
		t.Fatalf("want uncovered-sender error, got %v", err)
	}

	wake := dutycycle.NewFixed(10, 10, [][]int{{1}, {2}, {3}, {4}, {5}})
	inAsync := core.Instance{G: fig2a(), Source: 0, Start: 1, Wake: wake}
	asleep := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}},
		{T: 3, Senders: []graph.NodeID{1}}, // node 1 wakes at 2, not 3
	}}
	if _, err := Replay(inAsync, asleep); err == nil || !strings.Contains(err.Error(), "sending channel was off") {
		t.Fatalf("want asleep error, got %v", err)
	}

	disorder := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 2, Senders: []graph.NodeID{0}},
		{T: 2, Senders: []graph.NodeID{0}},
	}}
	if _, err := Replay(in, disorder); err == nil {
		t.Fatal("out-of-order advances accepted")
	}
}

func TestReplayIncompleteSchedule(t *testing.T) {
	in := core.Sync(pathGraph(4), 0)
	sched := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1}},
	}}
	rep, err := Replay(in, sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Fatal("incomplete broadcast reported complete")
	}
	if rep.CoveredAt[3] != -1 || rep.CoveredAt[2] != -1 {
		t.Fatal("far nodes must be uncovered")
	}
}

func TestUsageAccounting(t *testing.T) {
	// Path of 3, sync: t=1 node0 fires (node1 covered), t=2 node1 fires
	// (node0 duplicate reception, node2 covered).
	in := core.Sync(pathGraph(3), 0)
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(in, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Usage.Transmissions != 2 {
		t.Fatalf("tx = %d, want 2", rep.Usage.Transmissions)
	}
	if rep.Usage.Receptions != 3 { // 1 fresh + (1 fresh + 1 duplicate)
		t.Fatalf("rx = %d, want 3", rep.Usage.Receptions)
	}
	// 2 slots × 3 nodes − 2 transmissions = 4 idle node-slots; AlwaysAwake
	// means no sleep slots.
	if rep.Usage.IdleSlots != 4 || rep.Usage.SleepSlots != 0 {
		t.Fatalf("idle/sleep = %d/%d, want 4/0", rep.Usage.IdleSlots, rep.Usage.SleepSlots)
	}
}

func TestSleepAccounting(t *testing.T) {
	g := pathGraph(2)
	wake := dutycycle.NewFixed(4, 4, [][]int{{1}, {3}})
	in := core.Instance{G: g, Source: 0, Start: 1, Wake: wake}
	sched := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1}},
	}}
	rep, err := Replay(in, sched)
	if err != nil {
		t.Fatal(err)
	}
	// One slot: node 1 idle and asleep (wake at 3).
	if rep.Usage.IdleSlots != 1 || rep.Usage.SleepSlots != 1 {
		t.Fatalf("idle/sleep = %d/%d, want 1/1", rep.Usage.IdleSlots, rep.Usage.SleepSlots)
	}
}

func TestRunPolicyFloodingCollides(t *testing.T) {
	// Naive flooding on Figure 2(a): every covered node with uncovered
	// neighbors fires each round. Nodes 2 and 3 collide at 4 in round 2;
	// node 4 is covered one round later than optimal via... it never is —
	// both its neighbors keep colliding forever. The physics must show a
	// live-lock, exactly the broadcast-storm failure the paper cites [17].
	in := core.Sync(fig2a(), 0)
	flood := func(w bitset.Set, t int) []graph.NodeID {
		var out []graph.NodeID
		w.ForEach(func(u int) {
			if in.G.Nbr(u).AnyDifference(w) {
				out = append(out, u)
			}
		})
		return out
	}
	rep, _, err := RunPolicy(in, flood, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Fatal("flooding completed despite permanent collision at node 3")
	}
	if len(rep.Collisions) == 0 {
		t.Fatal("flooding produced no collisions")
	}
	if rep.CoveredAt[3] != -1 {
		t.Fatal("node 3 should never be covered under flooding live-lock")
	}
}

func TestRunPolicyMatchesReplay(t *testing.T) {
	// Driving the E-model's advances through RunPolicy must physically
	// reproduce the offline schedule.
	d, err := topology.Generate(topology.PaperConfig(80), 4)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	byTime := make(map[int][]graph.NodeID)
	for _, adv := range res.Schedule.Advances {
		byTime[adv.T] = adv.Senders
	}
	rep, executed, err := RunPolicy(in, func(w bitset.Set, t int) []graph.NodeID {
		return byTime[t]
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("policy run incomplete")
	}
	if rep.End != res.PA {
		t.Fatalf("policy end %d != schedule end %d", rep.End, res.PA)
	}
	if len(executed.Advances) != len(res.Schedule.Advances) {
		t.Fatalf("executed %d advances, want %d", len(executed.Advances), len(res.Schedule.Advances))
	}
}

func TestRunPolicyHorizon(t *testing.T) {
	in := core.Sync(pathGraph(5), 0)
	quiet := func(bitset.Set, int) []graph.NodeID { return nil }
	rep, sched, err := RunPolicy(in, quiet, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed || len(sched.Advances) != 0 {
		t.Fatal("silent policy must time out without advances")
	}
}

// Property: every scheduler's output replays to completion with zero
// collisions on random deployments, sync and async — the simulator and the
// schedulers agree about the model.
func TestQuickSchedulersSurvivePhysics(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := topology.Config{N: 35, AreaSide: 30, Radius: 10, MaxRetries: 60}
		d, err := topology.Generate(cfg, seed)
		if err != nil {
			return true
		}
		wake := dutycycle.NewUniform(d.G.N(), 8, seed, 0)
		for _, in := range []core.Instance{
			core.Sync(d.G, d.Source),
			core.Async(d.G, d.Source, wake, 0),
		} {
			for _, s := range []core.Scheduler{core.NewGOPT(30_000), core.NewEModel(0)} {
				res, err := s.Schedule(in)
				if err != nil {
					return false
				}
				rep, err := Replay(in, res.Schedule)
				if err != nil || !rep.Completed || len(rep.Collisions) != 0 {
					return false
				}
				if rep.End != res.PA {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReplay300(b *testing.B) {
	d, err := topology.Generate(topology.PaperConfig(300), 2)
	if err != nil {
		b.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	res, err := core.NewEModel(0).Schedule(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(in, res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}
