package sim_test

import (
	"math"
	"testing"

	"mlbs/internal/sim"
)

// corrIndicator computes the Pearson correlation of two binary sequences.
func corrIndicator(x, y []bool) float64 {
	n := float64(len(x))
	var sx, sy, sxy float64
	for i := range x {
		xi, yi := 0.0, 0.0
		if x[i] {
			xi = 1
		}
		if y[i] {
			yi = 1
		}
		sx += xi
		sy += yi
		sxy += xi * yi
	}
	mx, my := sx/n, sy/n
	vx, vy := mx*(1-mx), my*(1-my)
	if vx == 0 || vy == 0 {
		return 0
	}
	return (sxy/n - mx*my) / math.Sqrt(vx*vy)
}

// TestIIDLossPerLinkRate checks the empirical drop rate of several distinct
// links against the configured probability — each link's stream must be a
// fair Bernoulli sequence on its own.
func TestIIDLossPerLinkRate(t *testing.T) {
	const (
		trials = 50000
		rate   = 0.2
	)
	loss := sim.IIDLoss(rate, 17)
	links := [][2]int{{1, 2}, {2, 1}, {1, 3}, {7, 8}, {0, 299}}
	for _, lk := range links {
		dropped := 0
		for i := 0; i < trials; i++ {
			if loss(i, lk[0], lk[1]) {
				dropped++
			}
		}
		got := float64(dropped) / trials
		// Binomial std-err ≈ sqrt(p(1−p)/n) ≈ 0.0018; 5σ tolerance.
		if math.Abs(got-rate) > 0.009 {
			t.Errorf("link %v: empirical rate %.4f, want ≈%.2f", lk, got, rate)
		}
	}
}

// TestIIDLossAdjacentLinksUncorrelated pins the satellite fix: the old
// construction XOR-ed three independently multiplied coordinates before a
// single SplitMix64 step, leaving linear correlations between links that
// share a slot, a sender, or a receiver. With sequential chaining through
// the full finalizer, the indicator streams of coordinate-sharing links
// must be empirically uncorrelated (|r| within ~5/√n of zero).
func TestIIDLossAdjacentLinksUncorrelated(t *testing.T) {
	const (
		trials = 50000
		rate   = 0.3
		tol    = 0.025 // ≈ 5.5/√trials
	)
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		loss := sim.IIDLoss(rate, seed)
		pairs := []struct {
			name   string
			a, b   [2]int
			shiftB int // slot offset applied to the second stream
		}{
			{"shared relay b: a→b vs b→c", [2]int{1, 2}, [2]int{2, 3}, 0},
			{"shared sender: a→b vs a→c", [2]int{5, 6}, [2]int{5, 7}, 0},
			{"shared receiver: a→c vs b→c", [2]int{4, 9}, [2]int{8, 9}, 0},
			{"same link, consecutive slots", [2]int{1, 2}, [2]int{1, 2}, 1},
			{"reverse link, same slot", [2]int{3, 4}, [2]int{4, 3}, 0},
		}
		for _, p := range pairs {
			x := make([]bool, trials)
			y := make([]bool, trials)
			for i := 0; i < trials; i++ {
				x[i] = loss(i, p.a[0], p.a[1])
				y[i] = loss(i+p.shiftB, p.b[0], p.b[1])
			}
			if r := corrIndicator(x, y); math.Abs(r) > tol {
				t.Errorf("seed %d, %s: |corr| = %.4f > %.3f", seed, p.name, math.Abs(r), tol)
			}
		}
	}
}
