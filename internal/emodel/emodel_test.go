package emodel

import (
	"math"
	"testing"
	"testing/quick"

	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/rng"
	"mlbs/internal/topology"
)

// lineGraph places n nodes on the x-axis, unit spacing, radius 1.
func lineGraph(n int) *graph.Graph {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	return graph.FromUDG(pos, 1)
}

func TestLineSyncE(t *testing.T) {
	const n = 5
	g := lineGraph(n)
	tab := BuildSync(g)
	for i := 0; i < n; i++ {
		// Eastern neighbor (dx>0, dy=0) is in Q1; western in Q3.
		if got := tab.Value(i, geom.Q1); got != float64(n-1-i) {
			t.Fatalf("E1(%d) = %v, want %d", i, got, n-1-i)
		}
		if got := tab.Value(i, geom.Q3); got != float64(i) {
			t.Fatalf("E3(%d) = %v, want %d", i, got, i)
		}
		// No neighbors north or south: quadrants 2 and 4 are empty ⇒ 0.
		if tab.Value(i, geom.Q2) != 0 || tab.Value(i, geom.Q4) != 0 {
			t.Fatalf("node %d: E2/E4 = %v/%v, want 0/0",
				i, tab.Value(i, geom.Q2), tab.Value(i, geom.Q4))
		}
	}
}

func TestEdgeNodesGrid(t *testing.T) {
	// 5×5 unit grid with radius 1.5 (8-connected): the 16 perimeter nodes
	// are edge nodes, the 9 interior ones are not.
	var pos []geom.Point
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			pos = append(pos, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	g := graph.FromUDG(pos, 1.5)
	edge := EdgeNodes(g)
	for i, p := range pos {
		perimeter := p.X == 0 || p.X == 4 || p.Y == 0 || p.Y == 4
		if edge[i] != perimeter {
			t.Fatalf("node %d at %v: edge=%v, want %v", i, p, edge[i], perimeter)
		}
	}
}

func TestEmptyQuadrantIsZeroAndConverse(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(120), 5)
	if err != nil {
		t.Fatal(err)
	}
	tab := BuildSync(d.G)
	for u := 0; u < d.G.N(); u++ {
		for qi, q := range geom.Quadrants {
			empty := len(d.G.NeighborsInQuadrant(u, q)) == 0
			zero := tab.E[u][qi] == 0
			if empty != zero {
				t.Fatalf("node %d %v: empty=%v but E=%v", u, q, empty, tab.E[u][qi])
			}
		}
	}
}

func TestAllEntriesFinite(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		d, err := topology.Generate(topology.PaperConfig(100), seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Seeding{TwoPass, OnePass} {
			tab := Build(d.G, HopWeight, mode)
			for u := 0; u < d.G.N(); u++ {
				for qi := range geom.Quadrants {
					if math.IsInf(tab.E[u][qi], 1) {
						t.Fatalf("seed %d mode %v: E[%d][%d] = ∞ after build", seed, mode, u, qi)
					}
				}
			}
		}
	}
}

func TestOnePassSatisfiesRecurrence(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(100), 7)
	if err != nil {
		t.Fatal(err)
	}
	g := d.G
	tab := Build(g, HopWeight, OnePass)
	for u := 0; u < g.N(); u++ {
		for qi, q := range geom.Quadrants {
			nbrs := g.NeighborsInQuadrant(u, q)
			if len(nbrs) == 0 {
				if tab.E[u][qi] != 0 {
					t.Fatalf("empty quadrant E = %v", tab.E[u][qi])
				}
				continue
			}
			min := math.Inf(1)
			for _, v := range nbrs {
				if e := 1 + tab.E[v][qi]; e < min {
					min = e
				}
			}
			if tab.E[u][qi] != min {
				t.Fatalf("Eq.9 violated at node %d %v: E=%v, 1+min=%v", u, q, tab.E[u][qi], min)
			}
		}
	}
}

func TestTwoPassDominatesOnePass(t *testing.T) {
	// TwoPass restricts pass-1 seeding to edge nodes, so its estimates are
	// pointwise ≥ the unrestricted shortest distance of OnePass.
	d, err := topology.Generate(topology.PaperConfig(150), 11)
	if err != nil {
		t.Fatal(err)
	}
	two := Build(d.G, HopWeight, TwoPass)
	one := Build(d.G, HopWeight, OnePass)
	for u := 0; u < d.G.N(); u++ {
		for qi := range geom.Quadrants {
			if two.E[u][qi] < one.E[u][qi]-1e-9 {
				t.Fatalf("node %d q%d: two-pass %v < one-pass %v", u, qi, two.E[u][qi], one.E[u][qi])
			}
		}
	}
}

// Theorem 3: each node's tuple settles at most once per quadrant per pass —
// at most 8 updates per node over the two passes, and exactly 4 once built
// when counted per quadrant (every entry receives exactly one value).
func TestTheorem3UpdateCount(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(200), 13)
	if err != nil {
		t.Fatal(err)
	}
	tab := BuildSync(d.G)
	for u, c := range tab.Updates {
		if c != 4 {
			t.Fatalf("node %d settled %d entries, want exactly 4 (one per quadrant)", u, c)
		}
	}
}

func TestAsyncWeightsAreCWT(t *testing.T) {
	// Two nodes on a line, u west of v. With phases u=0, v=1 and r=4 the
	// CWT from u to v is 1, so E_Q1(u) = 1 (v is u's eastern edge node).
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	g := graph.FromUDG(pos, 1)
	s := dutycycle.NewPeriodicPhase(4, []int{0, 1})
	tab := BuildAsync(g, s)
	if got := tab.Value(0, geom.Q1); got != 1 {
		t.Fatalf("async E1(0) = %v, want 1 (CWT)", got)
	}
	// Reverse direction: from v's wake slot 1 the wait for u (phase 0) is 3.
	if got := tab.Value(1, geom.Q3); got != 3 {
		t.Fatalf("async E3(1) = %v, want 3 (CWT)", got)
	}
}

func TestScore(t *testing.T) {
	g := lineGraph(4)
	tab := BuildSync(g)
	covered := map[int]bool{0: true, 1: true}
	isUncovered := func(v graph.NodeID) bool { return !covered[v] }
	// Node 1's only uncovered neighbor is 2, east (Q1): E1(1) = 2.
	if got := tab.Score(g, 1, isUncovered); got != 2 {
		t.Fatalf("Score(1) = %v, want 2", got)
	}
	// Node 0 has no uncovered neighbors.
	if got := tab.Score(g, 0, isUncovered); got != -1 {
		t.Fatalf("Score(0) = %v, want -1", got)
	}
}

func TestMaxFinite(t *testing.T) {
	g := lineGraph(6)
	tab := BuildSync(g)
	if got := tab.MaxFinite(); got != 5 {
		t.Fatalf("MaxFinite = %v, want 5", got)
	}
}

// Property: on random connected deployments every entry is finite, zero
// exactly on empty quadrants, and two-pass dominates one-pass.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := topology.Config{N: 40, AreaSide: 25, Radius: 10, MaxRetries: 50}
		d, err := topology.Generate(cfg, seed)
		if err != nil {
			return true // rare disconnected-only seeds are not the property under test
		}
		two := Build(d.G, HopWeight, TwoPass)
		one := Build(d.G, HopWeight, OnePass)
		for u := 0; u < d.G.N(); u++ {
			for qi, q := range geom.Quadrants {
				if math.IsInf(two.E[u][qi], 1) || math.IsInf(one.E[u][qi], 1) {
					return false
				}
				empty := len(d.G.NeighborsInQuadrant(u, q)) == 0
				if (two.E[u][qi] == 0) != empty {
					return false
				}
				if two.E[u][qi] < one.E[u][qi]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeNodesIncludeHull(t *testing.T) {
	r := rng.New(3)
	pos := make([]geom.Point, 60)
	for i := range pos {
		pos[i] = geom.Point{X: r.InRange(0, 30), Y: r.InRange(0, 30)}
	}
	g := graph.FromUDG(pos, 12)
	edge := EdgeNodes(g)
	for _, h := range geom.ConvexHull(pos) {
		if !edge[h] {
			t.Fatalf("hull node %d not flagged as edge", h)
		}
	}
}

func BenchmarkBuildSync300(b *testing.B) {
	d, err := topology.Generate(topology.PaperConfig(300), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = BuildSync(d.G)
	}
}
