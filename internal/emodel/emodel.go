// Package emodel builds the paper's lightweight delay estimation: the
// 4-tuple E_1..E_4(u) giving, for each quadrant, the remaining work from u
// to the edge of the network (Section IV-E, Algorithm 2). In the
// synchronous system the estimate is the quadrant-constrained hop distance
// to an edge node (Eq. 9); in the duty-cycle system hops are weighted by
// the cycle waiting time t(u,v) (Eq. 11), estimated proactively by the mean
// CWT a node can compute from its neighbor's seed.
//
// Edge detection stands in for the paper's references [3] (convex hull) and
// [6] (boundary construction): a node is an edge node when it lies on the
// convex hull of the deployment or exhibits an angular gap of at least π/2
// among its neighbors — a quarter-plane of its coverage disk is empty, the
// hole/boundary criterion surveyed in the paper's reference [1].
package emodel

import (
	"math"

	"mlbs/internal/bitset"
	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
)

// Inf marks an unreachable estimate (no path toward an edge through the
// quadrant); it survives in local-minimum pockets until the second pass.
var Inf = math.Inf(1)

// Table holds E_i(u) for every node and quadrant: E[u][q.Index()].
type Table struct {
	E [][4]float64
	// Stats for Theorem 3's O(1) update claim: how many times each node's
	// tuple entries were settled during construction.
	Updates []int
	// Edge flags the nodes seeded in pass 1 (network-edge nodes).
	Edge []bool
}

// Value returns E_q(u).
func (t *Table) Value(u graph.NodeID, q geom.Quadrant) float64 { return t.E[u][q.Index()] }

// MaxFinite returns the largest finite entry of the table (0 when empty).
func (t *Table) MaxFinite() float64 {
	max := 0.0
	for _, row := range t.E {
		for _, v := range row {
			if !math.IsInf(v, 1) && v > max {
				max = v
			}
		}
	}
	return max
}

// Seeding selects how zero values are planted before relaxation.
type Seeding int

const (
	// TwoPass follows Algorithm 2 exactly: pass 1 seeds only network-edge
	// nodes with empty quadrants; pass 2 seeds the still-∞ nodes with empty
	// quadrants (interior local minima) and relaxes only the remaining ∞
	// values.
	TwoPass Seeding = iota
	// OnePass seeds every node with an empty quadrant immediately — the
	// ablation variant that skips the edge-first structure.
	OnePass
)

// EdgeNodes reports which nodes lie on the network edge: convex-hull
// membership or a ≥ π/2 angular gap among neighbor directions.
func EdgeNodes(g *graph.Graph) []bool {
	n := g.N()
	edge := make([]bool, n)
	for _, h := range geom.ConvexHull(g.Positions()) {
		edge[h] = true
	}
	maxDeg := g.MaxDegree()
	nbrs := make([]geom.Point, 0, maxDeg)
	angles := make([]float64, maxDeg)
	for u := 0; u < n; u++ {
		if edge[u] {
			continue
		}
		nbrs = nbrs[:0]
		for _, v := range g.Adj(u) {
			nbrs = append(nbrs, g.Pos(v))
		}
		if geom.MaxAngularGapBuf(g.Pos(u), nbrs, angles) >= math.Pi/2-1e-12 {
			edge[u] = true
		}
	}
	return edge
}

// Weight gives the cost of relaying from u to neighbor v. The synchronous
// system uses 1 (a hop per round, Eq. 9); the duty-cycle system uses the
// proactive mean CWT (Eq. 11).
type Weight func(u, v graph.NodeID) float64

// HopWeight is the synchronous weight: every hop costs one round.
func HopWeight(u, v graph.NodeID) float64 { return 1 }

// CWTWeight returns the asynchronous weight for schedule s: the mean cycle
// waiting time u observes before v can forward (Eq. 11's t(u,v)).
func CWTWeight(s dutycycle.Schedule) Weight {
	return func(u, v graph.NodeID) float64 { return dutycycle.MeanCWT(s, u, v) }
}

// weightCache memoizes a Weight per directed edge. The duty-cycle weight
// (mean CWT) walks a full schedule period per evaluation, and relaxation
// queries each edge once per quadrant per pass — up to eight times — so
// Build evaluates through this cache instead. cost[v][j] stores
// w(adj(v)[j], v), the direction relaxQuadrant asks for; NaN marks unset.
type weightCache struct {
	g    *graph.Graph
	w    Weight
	cost [][]float64
}

func newWeightCache(g *graph.Graph, w Weight) *weightCache {
	n := g.N()
	total := 0
	for v := 0; v < n; v++ {
		total += g.Degree(v)
	}
	flat := make([]float64, total)
	for i := range flat {
		flat[i] = math.NaN()
	}
	cost := make([][]float64, n)
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		cost[v], flat = flat[:d:d], flat[d:]
	}
	return &weightCache{g: g, w: w, cost: cost}
}

// weight returns w(u→v) where u is the j-th neighbor of v.
func (c *weightCache) weight(v graph.NodeID, j int) float64 {
	if x := c.cost[v][j]; !math.IsNaN(x) {
		return x
	}
	x := c.w(c.g.Adj(v)[j], v)
	c.cost[v][j] = x
	return x
}

// Build constructs the E table for graph g per Algorithm 2.
//
// Relaxation solves E_i(u) = min over v ∈ N(u)∩Q_i(u) of w(u,v) + E_i(v)
// exactly (Dijkstra from the seeded zeros along reversed constraint edges),
// which settles every node's entry at most once per pass — the O(1)
// information-exchange property of Theorem 3.
func Build(g *graph.Graph, w Weight, seeding Seeding) *Table {
	n := g.N()
	t := &Table{
		E:       make([][4]float64, n),
		Updates: make([]int, n),
		Edge:    EdgeNodes(g),
	}
	emptyQ := make([][4]bool, n)
	for u := 0; u < n; u++ {
		for qi := range geom.Quadrants {
			emptyQ[u][qi] = !g.HasNeighborInQuadrant(u, geom.Quadrants[qi])
			t.E[u][qi] = Inf
		}
	}

	// One relaxation scratch serves every quadrant of every pass: the
	// search constructs an incumbent E-model rollout inside each OPT/G-OPT
	// call, so Build must not allocate per node settled.
	rx := &relaxScratch{
		eligible: make([]bool, n),
		settled:  make([]bool, n),
	}
	cw := newWeightCache(g, w)
	var seeds []graph.NodeID
	seedAndRelax := func(maySeed func(u int) bool) {
		for qi, q := range geom.Quadrants {
			seeds = seeds[:0]
			for u := 0; u < n; u++ {
				if math.IsInf(t.E[u][qi], 1) && emptyQ[u][qi] && maySeed(u) {
					t.E[u][qi] = 0
					t.Updates[u]++
					seeds = append(seeds, u)
				}
			}
			relaxQuadrant(g, cw, q, t, seeds, rx)
		}
	}

	if seeding == OnePass {
		seedAndRelax(func(u int) bool { return true })
		return t
	}
	// Pass 1: network-edge nodes only (Algorithm 2 steps 1–4).
	seedAndRelax(func(u int) bool { return t.Edge[u] })
	// Pass 2: interior local minima (steps 5–6) — only ∞ entries update.
	seedAndRelax(func(u int) bool { return true })
	return t
}

// BuildSync builds the synchronous-table of Eq. 9 with two-pass seeding.
func BuildSync(g *graph.Graph) *Table { return Build(g, HopWeight, TwoPass) }

// BuildAsync builds the duty-cycle table of Eq. 11 with two-pass seeding.
func BuildAsync(g *graph.Graph, s dutycycle.Schedule) *Table {
	return Build(g, CWTWeight(s), TwoPass)
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node graph.NodeID
	dist float64
}

// pq is a typed binary min-heap over (dist, node). container/heap would
// box every pushed pqItem into an interface, allocating once per edge
// relaxation; the hand-rolled sift functions keep the frontier
// allocation-free on a reused backing array.
type pq []pqItem

func (p pq) less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].node < p[j].node
}

func (p *pq) push(it pqItem) {
	*p = append(*p, it)
	h := *p
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (p *pq) pop() pqItem {
	h := *p
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	*p = h
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// relaxScratch holds the per-node Dijkstra state reused across quadrants
// and passes: eligibility (entry was ∞ at pass start), settlement, and the
// frontier heap's backing array.
type relaxScratch struct {
	eligible []bool
	settled  []bool
	frontier pq
}

// relaxQuadrant runs Dijkstra for quadrant q from the given zero seeds.
// The constraint edge u→v exists when v ∈ N(u)∩Q_q(u); Dijkstra walks the
// reverse direction: settling v improves every u that sees v in its
// quadrant q. Only entries that were ∞ when the pass started may receive
// values, as Algorithm 2 requires ("update its ∞ value and only ∞ value");
// within the pass an unsettled entry may still tighten (Dijkstra's
// decrease-key — the node has not announced its value yet, so this is not
// a second information exchange).
func relaxQuadrant(g *graph.Graph, cw *weightCache, q geom.Quadrant, t *Table, seeds []graph.NodeID, rx *relaxScratch) {
	qi := q.Index()
	frontier := rx.frontier[:0]
	eligible, settled := rx.eligible, rx.settled
	for i := range eligible {
		eligible[i] = false
		settled[i] = false
	}
	for _, s := range seeds {
		frontier.push(pqItem{s, 0})
		eligible[s] = true
	}
	for len(frontier) > 0 {
		it := frontier.pop()
		v := it.node
		if settled[v] || it.dist > t.E[v][qi] {
			continue
		}
		settled[v] = true
		for j, u := range g.Adj(v) {
			if geom.QuadrantOf(g.Pos(u), g.Pos(v)) != q {
				continue // v is not in u's quadrant q
			}
			cand := cw.weight(v, j) + t.E[v][qi]
			if math.IsInf(t.E[u][qi], 1) {
				t.E[u][qi] = cand
				t.Updates[u]++
				eligible[u] = true
				frontier.push(pqItem{u, cand})
			} else if eligible[u] && !settled[u] && cand < t.E[u][qi] {
				t.E[u][qi] = cand
				frontier.push(pqItem{u, cand})
			}
		}
	}
	rx.frontier = frontier[:0]
}

// Score evaluates Eq. 10 for a candidate u: the maximum E_k(u) over
// quadrants k in which u still has uncovered neighbors (isUncovered
// reports coverage). Returns -1 when u has no uncovered neighbor at all.
// Completed tables have no ∞ entries (every quadrant chain terminates at
// an empty-quadrant node), so the result is finite in practice.
func (t *Table) Score(g *graph.Graph, u graph.NodeID, isUncovered func(v graph.NodeID) bool) float64 {
	best := -1.0
	for _, v := range g.Adj(u) {
		if !isUncovered(v) {
			continue
		}
		if e := t.E[u][geom.QuadrantOf(g.Pos(u), g.Pos(v)).Index()]; e > best {
			best = e
		}
	}
	return best
}

// ScoreCovered is Score with coverage given directly as a bitset — the
// form the scheduler's rollout loop calls, avoiding a per-evaluation
// predicate closure.
func (t *Table) ScoreCovered(g *graph.Graph, u graph.NodeID, covered bitset.Set) float64 {
	best := -1.0
	for _, v := range g.Adj(u) {
		if covered.Has(v) {
			continue
		}
		if e := t.E[u][geom.QuadrantOf(g.Pos(u), g.Pos(v)).Index()]; e > best {
			best = e
		}
	}
	return best
}
