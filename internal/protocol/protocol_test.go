package protocol

import (
	"math"
	"testing"
	"testing/quick"

	"mlbs/internal/dutycycle"
	"mlbs/internal/emodel"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/paperfig"
	"mlbs/internal/topology"
)

func TestDiscoverCounts(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(100), 3)
	if err != nil {
		t.Fatal(err)
	}
	res := Discover(d.G, 5)
	if res.Beacons != 100 {
		t.Fatalf("beacons = %d, want 100", res.Beacons)
	}
	if res.Replies != 2*d.G.M() {
		t.Fatalf("replies = %d, want %d (one per directed edge)", res.Replies, 2*d.G.M())
	}
}

func TestDiscoverTablesComplete(t *testing.T) {
	g, _ := paperfig.Figure1()
	res := Discover(g, 7)
	for u := 0; u < g.N(); u++ {
		if len(res.Tables[u]) != g.Degree(u) {
			t.Fatalf("node %d learned %d neighbors, has %d", u, len(res.Tables[u]), g.Degree(u))
		}
		for i, rec := range res.Tables[u] {
			if !g.HasEdge(u, rec.ID) {
				t.Fatalf("node %d learned phantom neighbor %d", u, rec.ID)
			}
			if rec.Pos != g.Pos(rec.ID) {
				t.Fatalf("node %d has wrong position for %d", u, rec.ID)
			}
			if i > 0 && res.Tables[u][i-1].ID >= rec.ID {
				t.Fatalf("node %d table unsorted", u)
			}
		}
	}
}

func TestDiscoverSeedsConsistent(t *testing.T) {
	// Two different observers of the same node must learn the same seed —
	// that is what makes wake forecasting possible.
	g, _ := paperfig.Figure1()
	res := Discover(g, 11)
	seedSeen := map[graph.NodeID]uint64{}
	for u := 0; u < g.N(); u++ {
		for _, rec := range res.Tables[u] {
			if prev, ok := seedSeen[rec.ID]; ok && prev != rec.WakeSeed {
				t.Fatalf("node %d advertised different seeds to different neighbors", rec.ID)
			}
			seedSeen[rec.ID] = rec.WakeSeed
		}
	}
}

func TestBuildEMatchesCentralizedSync(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		d, err := topology.Generate(topology.PaperConfig(120), seed)
		if err != nil {
			t.Fatal(err)
		}
		want := emodel.Build(d.G, emodel.HopWeight, emodel.TwoPass)
		got, err := BuildE(d.G, emodel.HopWeight)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < d.G.N(); u++ {
			for qi := range geom.Quadrants {
				if got.Table.E[u][qi] != want.E[u][qi] {
					t.Fatalf("seed %d node %d q%d: protocol %v, centralized %v",
						seed, u, qi, got.Table.E[u][qi], want.E[u][qi])
				}
			}
		}
	}
}

func TestBuildEMatchesCentralizedAsync(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(80), 9)
	if err != nil {
		t.Fatal(err)
	}
	wake := dutycycle.NewUniform(d.G.N(), 10, 4, 8)
	w := emodel.CWTWeight(wake)
	want := emodel.Build(d.G, w, emodel.TwoPass)
	got, err := BuildE(d.G, w)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.G.N(); u++ {
		for qi := range geom.Quadrants {
			if math.Abs(got.Table.E[u][qi]-want.E[u][qi]) > 1e-9 {
				t.Fatalf("node %d q%d: protocol %v, centralized %v",
					u, qi, got.Table.E[u][qi], want.E[u][qi])
			}
		}
	}
}

// Theorem 3, literally: every node announces each quadrant entry exactly
// once — 4 messages per node, 4n in total.
func TestTheorem3MessageCount(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(200), 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildE(d.G, emodel.HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	n := d.G.N()
	if res.Exchanges != 4*n {
		t.Fatalf("exchanges = %d, want exactly 4n = %d", res.Exchanges, 4*n)
	}
	for u, c := range res.PerNode {
		if c != 4 {
			t.Fatalf("node %d announced %d times, want 4", u, c)
		}
	}
}

func TestBuildEFigure1Values(t *testing.T) {
	g, _ := paperfig.Figure1()
	res, err := BuildE(g, emodel.HopWeight)
	if err != nil {
		t.Fatal(err)
	}
	for node, want := range paperfig.Figure1E2Want() {
		if got := res.Table.Value(node, geom.Q2); got != want {
			t.Fatalf("E2(paper %d) = %v, want %v", node-1, got, want)
		}
	}
}

func TestBuildERejectsDegenerate(t *testing.T) {
	g := graph.NewBuilder(3, nil).AddEdge(0, 1).AddEdge(1, 2).Build()
	if _, err := BuildE(g, emodel.HopWeight); err == nil {
		t.Fatal("degenerate geometry accepted")
	}
}

// Property: protocol and centralized construction agree on random
// deployments.
func TestQuickProtocolMatchesCentralized(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := topology.Config{N: 40, AreaSide: 30, Radius: 10, MaxRetries: 50}
		d, err := topology.Generate(cfg, seed)
		if err != nil {
			return true
		}
		want := emodel.Build(d.G, emodel.HopWeight, emodel.TwoPass)
		got, err := BuildE(d.G, emodel.HopWeight)
		if err != nil {
			return false
		}
		for u := 0; u < d.G.N(); u++ {
			for qi := range geom.Quadrants {
				if got.Table.E[u][qi] != want.E[u][qi] {
					return false
				}
			}
		}
		return got.Exchanges == 4*d.G.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildE300(b *testing.B) {
	d, err := topology.Generate(topology.PaperConfig(300), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildE(d.G, emodel.HopWeight); err != nil {
			b.Fatal(err)
		}
	}
}
