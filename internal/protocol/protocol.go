// Package protocol simulates the proactive (pre-broadcast) phase of the
// system as an actual message-passing protocol, rather than as centralized
// computation:
//
//  1. Neighbor discovery — each node beacons; every neighbor records its
//     position and wake seed ("when a node receives the beacon message
//     from its neighbor, it will respond with its own status information,
//     including the location, last wake-up time, metric values",
//     Section III).
//  2. Distributed E construction — Algorithm 2 run by announcements: a
//     node whose E_i settles announces the value once; neighbors that see
//     the announcer in their quadrant i relax their own entry. Theorem 3's
//     claim is that this converges with each node announcing each entry at
//     most once per pass — the Exchanges counter makes the claim testable
//     message by message.
//
// The resulting tables are bit-identical to the centralized
// emodel.Build, which the tests assert; the package exists to demonstrate
// (and count) the communication the paper argues is O(1) per node.
package protocol

import (
	"fmt"
	"math"
	"sort"

	"mlbs/internal/emodel"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
)

// NeighborRecord is what a node learns about a neighbor during discovery.
type NeighborRecord struct {
	ID       graph.NodeID
	Pos      geom.Point
	WakeSeed uint64
	LastWake int
}

// DiscoveryResult reports the neighbor-discovery round.
type DiscoveryResult struct {
	// Tables[u] lists u's neighbor records sorted by ID.
	Tables [][]NeighborRecord
	// Beacons is the number of beacon transmissions (one per node).
	Beacons int
	// Replies is the number of unicast status replies (one per directed
	// edge: each neighbor answers each beacon).
	Replies int
}

// Discover simulates one beaconing round over the topology: every node
// broadcasts a beacon; every neighbor replies with its status. Wake seeds
// are synthesized per node from masterSeed, standing in for the preset
// seeds of Section III.
func Discover(g *graph.Graph, masterSeed uint64) *DiscoveryResult {
	n := g.N()
	res := &DiscoveryResult{Tables: make([][]NeighborRecord, n)}
	seedOf := func(u graph.NodeID) uint64 {
		s := masterSeed ^ (uint64(u)+1)*0x9e3779b97f4a7c15
		return s
	}
	for u := 0; u < n; u++ {
		res.Beacons++ // u beacons once
		for _, v := range g.Adj(u) {
			res.Replies++ // v replies to u's beacon
			res.Tables[u] = append(res.Tables[u], NeighborRecord{
				ID:       v,
				Pos:      g.Pos(v),
				WakeSeed: seedOf(v),
				LastWake: 0,
			})
		}
		sort.Slice(res.Tables[u], func(i, j int) bool {
			return res.Tables[u][i].ID < res.Tables[u][j].ID
		})
	}
	return res
}

// ETableResult is the outcome of the distributed E construction.
type ETableResult struct {
	Table *emodel.Table
	// Exchanges is the number of E announcements sent: each is one
	// broadcast by a node whose entry for some quadrant just settled.
	Exchanges int
	// PerNode[u] counts u's announcements; Theorem 3 bounds it by 4 per
	// pass (8 over the two passes), and in practice each entry settles in
	// exactly one pass, giving exactly 4.
	PerNode []int
	// Rounds is the number of synchronous announcement rounds until
	// quiescence.
	Rounds int
}

// message is one E announcement: "my E value for quadrant q is v".
type message struct {
	from graph.NodeID
	q    geom.Quadrant
	v    float64
}

// BuildE runs Algorithm 2 as a message-passing protocol with the given
// hop weight (use emodel.HopWeight for the synchronous system or
// emodel.CWTWeight for duty-cycle instances). Pass structure follows the
// paper: pass 1 seeds network-edge nodes with empty quadrants, pass 2
// seeds the interior local minima that remained ∞.
func BuildE(g *graph.Graph, w emodel.Weight) (*ETableResult, error) {
	if !g.DistinctPositions() {
		return nil, fmt.Errorf("protocol: E construction needs distinct positions")
	}
	n := g.N()
	res := &ETableResult{
		Table: &emodel.Table{
			E:       make([][4]float64, n),
			Updates: make([]int, n),
			Edge:    emodel.EdgeNodes(g),
		},
		PerNode: make([]int, n),
	}
	tab := res.Table
	for u := 0; u < n; u++ {
		for qi := range geom.Quadrants {
			tab.E[u][qi] = emodel.Inf
		}
	}
	emptyQ := func(u graph.NodeID, q geom.Quadrant) bool {
		return len(g.NeighborsInQuadrant(u, q)) == 0
	}

	settle := func(u graph.NodeID, q geom.Quadrant, v float64, outbox *[]message) {
		qi := q.Index()
		tab.E[u][qi] = v
		tab.Updates[u]++
		*outbox = append(*outbox, message{from: u, q: q, v: v})
	}

	runPass := func(maySeed func(u graph.NodeID) bool) {
		var outbox []message
		for qi, q := range geom.Quadrants {
			for u := 0; u < n; u++ {
				if math.IsInf(tab.E[u][qi], 1) && emptyQ(u, q) && maySeed(u) {
					settle(u, q, 0, &outbox)
				}
			}
		}
		// Synchronous rounds: deliver all announcements, collect the
		// tentative updates, settle the per-quadrant minima (a node's
		// entry is safe to settle once no pending smaller offer can exist;
		// with uniform weights this is exactly BFS — we emulate Dijkstra's
		// settle-min rule to stay exact for CWT weights too).
		pending := make([]map[graph.NodeID]float64, 4)
		for qi := range pending {
			pending[qi] = make(map[graph.NodeID]float64)
		}
		for len(outbox) > 0 {
			res.Rounds++
			for _, m := range outbox {
				res.Exchanges++
				res.PerNode[m.from]++
				// Every neighbor u that sees m.from in its quadrant m.q
				// relaxes its tentative entry.
				for _, u := range g.Adj(m.from) {
					if geom.QuadrantOf(g.Pos(u), g.Pos(m.from)) != m.q {
						continue
					}
					qi := m.q.Index()
					if !math.IsInf(tab.E[u][qi], 1) {
						continue // settled in an earlier pass/round
					}
					offer := w(u, m.from) + m.v
					if cur, ok := pending[qi][u]; !ok || offer < cur {
						pending[qi][u] = offer
					}
				}
			}
			outbox = outbox[:0]
			// Settle the global minimum tentative entry per quadrant (and
			// any ties): no future offer can undercut it, because offers
			// only grow along paths. Settling only minima keeps the
			// protocol exact under real-valued CWT weights.
			for qi, q := range geom.Quadrants {
				min := math.Inf(1)
				for _, v := range pending[qi] {
					if v < min {
						min = v
					}
				}
				if math.IsInf(min, 1) {
					continue
				}
				for u, v := range pending[qi] {
					if v <= min+1e-12 {
						settle(u, q, v, &outbox)
						delete(pending[qi], u)
					}
				}
			}
		}
	}

	runPass(func(u graph.NodeID) bool { return tab.Edge[u] })
	runPass(func(graph.NodeID) bool { return true })
	return res, nil
}
