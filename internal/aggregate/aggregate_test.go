package aggregate

import (
	"strings"
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
	"mlbs/internal/topology"
)

// line returns the path 0-1-2-...-(n-1) with unit spacing.
func line(n int) *graph.Graph {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	b := graph.NewBuilder(n, pos)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

func TestSPTLine(t *testing.T) {
	g := line(4)
	parent, err := SPT(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.NodeID{-1, 0, 1, 2}
	for u, p := range parent {
		if p != want[u] {
			t.Fatalf("parent[%d] = %d, want %d", u, p, want[u])
		}
	}
}

func TestBoundedSPTSpreadsChildren(t *testing.T) {
	// Star-ish: sink 0 adjacent to relays 1,2; leaves 3..8 adjacent to both
	// relays. SPT sends every leaf to relay 1 (lowest ID); bounded with
	// maxChildren=3 must split them 3/3.
	b := graph.NewBuilder(9, nil).AddEdge(0, 1).AddEdge(0, 2)
	for leaf := graph.NodeID(3); leaf < 9; leaf++ {
		b.AddEdge(1, leaf).AddEdge(2, leaf)
	}
	g := b.Build()
	parent, err := BoundedSPT(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	load := map[graph.NodeID]int{}
	for leaf := graph.NodeID(3); leaf < 9; leaf++ {
		load[parent[leaf]]++
	}
	if load[1] != 3 || load[2] != 3 {
		t.Fatalf("leaf parents split %d/%d, want 3/3", load[1], load[2])
	}
	plain, err := SPT(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := func() (c int) {
		for leaf := graph.NodeID(3); leaf < 9; leaf++ {
			if plain[leaf] == 1 {
				c++
			}
		}
		return
	}(); n != 6 {
		t.Fatalf("SPT sends %d of 6 leaves to relay 1, want all", n)
	}
}

func TestScheduleLineLatency(t *testing.T) {
	// On a path with sink at one end, convergecast needs exactly one slot
	// per hop when packed greedily: nodes 3,2,1 fire in a pipeline but the
	// protocol model forbids concurrent neighbors sharing a receiver, so
	// the latency is pinned by construction.
	g := line(4)
	in := core.Sync(g, 0)
	var s Scheduler
	res, err := s.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	if res.LatencySlots != res.Schedule.Latency() {
		t.Fatalf("LatencySlots %d != Schedule.Latency %d", res.LatencySlots, res.Schedule.Latency())
	}
	// Lower bound: the farthest node is 3 hops out and each hop is a
	// distinct slot on its chain, so at least 3 slots.
	if res.LatencySlots < 3 {
		t.Fatalf("latency %d below the 3-hop lower bound", res.LatencySlots)
	}
}

func TestScheduleTransmitOnce(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(60), 2)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	var s Scheduler
	res, err := s.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.NodeID]int{}
	for _, adv := range res.Schedule.Advances {
		for _, u := range adv.Senders {
			seen[u]++
		}
	}
	if len(seen) != d.G.N()-1 {
		t.Fatalf("%d distinct senders, want %d", len(seen), d.G.N()-1)
	}
	for u, c := range seen {
		if c != 1 {
			t.Fatalf("node %d transmits %d times", u, c)
		}
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleDutyAndChannels(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(60), 5)
	if err != nil {
		t.Fatal(err)
	}
	wake := dutycycle.NewUniform(d.G.N(), 5, 5^0xA5, 0)
	duty := core.Async(d.G, d.Source, wake, 0)
	var s Scheduler
	dres, err := s.Schedule(duty)
	if err != nil {
		t.Fatal(err)
	}
	if err := dres.Schedule.Validate(duty); err != nil {
		t.Fatal(err)
	}

	multi := core.Sync(d.G, d.Source)
	multi.Channels = 4
	mres, err := s.Schedule(multi)
	if err != nil {
		t.Fatal(err)
	}
	if err := mres.Schedule.Validate(multi); err != nil {
		t.Fatal(err)
	}
	single := core.Sync(d.G, d.Source)
	sres, err := s.Schedule(single)
	if err != nil {
		t.Fatal(err)
	}
	if mres.LatencySlots > sres.LatencySlots {
		t.Fatalf("K=4 latency %d worse than K=1 latency %d", mres.LatencySlots, sres.LatencySlots)
	}
	usedHigher := false
	for _, adv := range mres.Schedule.Advances {
		if adv.Channel > 0 {
			usedHigher = true
		}
	}
	if !usedHigher {
		t.Fatal("K=4 schedule never used a channel above 0")
	}
}

func TestScheduleSINR(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(60), 2)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	in.SINR = &interference.SINRParams{Alpha: 3, Beta: 1}
	var s Scheduler
	res, err := s.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleBoundedTree(t *testing.T) {
	d, err := topology.Generate(topology.PaperConfig(60), 2)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Sync(d.G, d.Source)
	s := Scheduler{Tree: TreeBounded}
	res, err := s.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "agg-bounded" {
		t.Fatalf("scheduler name %q", res.Scheduler)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	g := line(4)
	in := core.Sync(g, 0)
	var s Scheduler
	res, err := s.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	good := res.Schedule

	cases := []struct {
		name string
		mut  func(s *Schedule)
		want string
	}{
		{"wrong sink", func(s *Schedule) { s.Sink = 1 }, "instance sink"},
		{"bad parent edge", func(s *Schedule) { s.Parent[3] = 1 }, "not in graph"},
		{"cycle", func(s *Schedule) { s.Parent[1] = 2; s.Parent[2] = 1 }, "never reaches sink"},
		{"sink transmits", func(s *Schedule) {
			s.Advances[0].Senders = append(s.Advances[0].Senders, 0)
		}, "sink 0 transmits"},
		{"missing transmission", func(s *Schedule) { s.Advances = s.Advances[:len(s.Advances)-1] }, "non-sink nodes transmitted"},
		{"double transmission", func(s *Schedule) {
			last := s.Advances[len(s.Advances)-1]
			s.Advances = append(s.Advances, Advance{T: last.T + 1, Senders: last.Senders})
		}, "transmits twice"},
		{"out of order", func(s *Schedule) { s.Advances[0].T = s.Advances[len(s.Advances)-1].T + 5 }, "not after"},
	}
	for _, tc := range cases {
		cp := &Schedule{Sink: good.Sink, Start: good.Start, Parent: append([]graph.NodeID(nil), good.Parent...)}
		for _, adv := range good.Advances {
			cp.Advances = append(cp.Advances, Advance{T: adv.T, Channel: adv.Channel, Senders: append([]graph.NodeID(nil), adv.Senders...)})
		}
		tc.mut(cp)
		err := cp.Validate(in)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := good.Validate(in); err != nil {
		t.Fatalf("unmutated schedule must stay valid: %v", err)
	}
}

func TestValidatePrecedence(t *testing.T) {
	// 0-1-2 path: node 1 may not fire before (or with) its child 2.
	g := line(3)
	in := core.Sync(g, 0)
	bad := &Schedule{Sink: 0, Start: 1, Parent: []graph.NodeID{-1, 0, 1}, Advances: []Advance{
		{T: 1, Senders: []graph.NodeID{1}},
		{T: 2, Senders: []graph.NodeID{2}},
	}}
	err := bad.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "children still pending") {
		t.Fatalf("err = %v, want precedence violation", err)
	}
}

func TestValidateReceiverWake(t *testing.T) {
	// Parent 1 of sender 2 must be awake at the transmit slot. Fixed wake:
	// node 1 awake only at even slots (period 2).
	g := line(3)
	wake := dutycycle.NewFixed(2, 1, [][]int{{0, 1}, {0}, {0, 1}})
	in := core.Async(g, 0, wake, 0)
	sched := &Schedule{Sink: 0, Start: in.Start, Parent: []graph.NodeID{-1, 0, 1}, Advances: []Advance{
		{T: 1, Senders: []graph.NodeID{2}}, // parent 1 asleep at odd slot
		{T: 2, Senders: []graph.NodeID{1}},
	}}
	err := sched.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "asleep") {
		t.Fatalf("err = %v, want receiver-asleep violation", err)
	}
	good := &Schedule{Sink: 0, Start: in.Start, Parent: []graph.NodeID{-1, 0, 1}, Advances: []Advance{
		{T: 2, Senders: []graph.NodeID{2}},
		{T: 3, Senders: []graph.NodeID{1}},
	}}
	if err := good.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestValidateOneRadioPerSlot(t *testing.T) {
	// Two children of the same parent on different channels in one slot:
	// the parent cannot tune to both.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}
	g := graph.NewBuilder(3, pos).AddEdge(0, 1).AddEdge(0, 2).Build()
	in := core.Sync(g, 0)
	in.Channels = 2
	sched := &Schedule{Sink: 0, Start: 1, Parent: []graph.NodeID{-1, 0, 0}, Advances: []Advance{
		{T: 1, Channel: 0, Senders: []graph.NodeID{1}},
		{T: 1, Channel: 1, Senders: []graph.NodeID{2}},
	}}
	err := sched.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "one radio") {
		t.Fatalf("err = %v, want one-radio violation", err)
	}
}

func TestValidateReceiverSafety(t *testing.T) {
	// Nodes 1 and 2 both adjacent to each other's parents: concurrent
	// transmission collides at both receivers under the protocol model.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	b := graph.NewBuilder(4, pos)
	b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(0, 2).AddEdge(1, 3)
	g := b.Build()
	in := core.Sync(g, 0)
	sched := &Schedule{Sink: 0, Start: 1, Parent: []graph.NodeID{-1, 0, 0, 1}, Advances: []Advance{
		{T: 1, Senders: []graph.NodeID{2, 3}},
		{T: 2, Senders: []graph.NodeID{1}},
	}}
	err := sched.Validate(in)
	if err == nil || !strings.Contains(err.Error(), "does not decode") {
		t.Fatalf("err = %v, want receiver-safety violation", err)
	}
}

func TestSINRCaptureAdmitsProtocolIllegalBundle(t *testing.T) {
	// Sink 0 hears both concurrent senders 1 and 3 (edges 0-1 and 0-3), so
	// the protocol model collides at 0; under SINR node 1 shouts at power
	// 100 and 0 captures it, while far-away parent 2 still decodes its
	// whisper-close child 3.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 10, Y: 10}, {X: 10.1, Y: 10}}
	g := graph.NewBuilder(4, pos).
		AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).
		AddEdge(2, 3).
		Build()
	parent := []graph.NodeID{-1, 0, 0, 2}
	sched := &Schedule{Sink: 0, Start: 1, Parent: parent, Advances: []Advance{
		{T: 1, Senders: []graph.NodeID{1, 3}},
		{T: 2, Senders: []graph.NodeID{2}},
	}}
	graphIn := core.Sync(g, 0)
	if err := sched.Validate(graphIn); err == nil || !strings.Contains(err.Error(), "does not decode") {
		t.Fatalf("protocol model must reject the concurrent pair, got %v", err)
	}
	sinrIn := core.Sync(g, 0)
	sinrIn.SINR = &interference.SINRParams{Alpha: 2, Beta: 2, Power: []float64{1, 100, 1, 1}}
	if err := sched.Validate(sinrIn); err != nil {
		t.Fatalf("SINR model must accept the capturing pair: %v", err)
	}
}
