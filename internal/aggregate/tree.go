package aggregate

import (
	"fmt"

	"mlbs/internal/graph"
)

// SPT builds the shortest-path routing tree toward the sink: every node's
// parent is its lowest-ID neighbor one BFS layer closer to the sink.
// Deterministic; errors when the graph is not connected to the sink.
func SPT(g *graph.Graph, sink graph.NodeID) ([]graph.NodeID, error) {
	dist := g.BFS(sink)
	n := g.N()
	parent := make([]graph.NodeID, n)
	parent[sink] = -1
	for u := 0; u < n; u++ {
		if graph.NodeID(u) == sink {
			continue
		}
		if dist[u] < 0 {
			return nil, fmt.Errorf("aggregate: node %d unreachable from sink %d", u, sink)
		}
		parent[u] = -1
		for _, v := range g.Adj(graph.NodeID(u)) { // Adj is sorted ascending
			if dist[v] == dist[u]-1 {
				parent[u] = v
				break
			}
		}
		if parent[u] < 0 {
			return nil, fmt.Errorf("aggregate: node %d has no neighbor closer to sink", u)
		}
	}
	return parent, nil
}

// BoundedSPT builds a degree-bounded shortest-path tree: parents are still
// one BFS layer closer to the sink, but each parent accepts at most
// maxChildren children while an unsaturated closer neighbor exists —
// spreading subtrees across relays so no single parent serializes
// maxDegree receptions. When every closer neighbor is saturated the least
// loaded one (lowest ID on ties) is used anyway, so the tree always
// spans. maxChildren < 1 degenerates to SPT.
func BoundedSPT(g *graph.Graph, sink graph.NodeID, maxChildren int) ([]graph.NodeID, error) {
	if maxChildren < 1 {
		return SPT(g, sink)
	}
	dist := g.BFS(sink)
	n := g.N()
	parent := make([]graph.NodeID, n)
	parent[sink] = -1
	load := make([]int, n)
	// Assign in (layer, ID) order so load counts are deterministic.
	order := make([]graph.NodeID, 0, n)
	maxd := 0
	for u := 0; u < n; u++ {
		if dist[u] > maxd {
			maxd = dist[u]
		}
	}
	for d := 1; d <= maxd; d++ {
		for u := 0; u < n; u++ {
			if dist[u] == d {
				order = append(order, graph.NodeID(u))
			}
		}
	}
	assigned := 1
	for _, u := range order {
		best := graph.NodeID(-1)
		for _, v := range g.Adj(u) {
			if dist[v] != dist[u]-1 {
				continue
			}
			if best < 0 || load[v] < load[best] {
				best = v
			}
			if load[v] < maxChildren {
				// First unsaturated closer neighbor in ID order wins.
				best = v
				break
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("aggregate: node %d has no neighbor closer to sink", u)
		}
		parent[u] = best
		load[best]++
		assigned++
	}
	if assigned != n {
		return nil, fmt.Errorf("aggregate: sink %d reaches %d of %d nodes", sink, assigned, n)
	}
	return parent, nil
}
