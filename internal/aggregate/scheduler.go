package aggregate

import (
	"fmt"
	"sort"

	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// Tree selects the routing-tree construction strategy.
type Tree int

const (
	// TreeSPT is the plain shortest-path tree (lowest-ID closer neighbor).
	TreeSPT Tree = iota
	// TreeBounded is the degree-bounded shortest-path tree.
	TreeBounded
)

// DefaultMaxChildren is the child cap of the degree-bounded tree when the
// caller does not override it.
const DefaultMaxChildren = 3

// Scheduler plans convergecast schedules. It is reusable across calls —
// scratch buffers grow to the largest instance seen and are then reused —
// but, like the broadcast engines, NOT safe for concurrent use; each
// service worker owns its own.
type Scheduler struct {
	Tree Tree
	// MaxChildren caps per-parent fan-in for TreeBounded; ≤ 0 selects
	// DefaultMaxChildren.
	MaxChildren int

	ib       interference.Binder
	pending  []int
	depth    []int
	ready    []graph.NodeID
	eligible []graph.NodeID
	groups   [][]graph.NodeID
	taken    bitset.Set
	done     bitset.Set
	probe    []graph.NodeID
}

// Name returns the strategy label recorded in Result.Scheduler.
func (s *Scheduler) Name() string {
	if s.Tree == TreeBounded {
		return "agg-bounded"
	}
	return "agg-spt"
}

// Schedule plans one convergecast round for in (Source read as the sink).
// Bottom-up greedy: at each slot, ready nodes (all children transmitted,
// parent awake to receive) are packed into ≤K receiver-safe channel
// bundles, deepest-first so the longest root-ward chains drain earliest.
// Deterministic for a fixed instance.
func (s *Scheduler) Schedule(in core.Instance) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(in.PreCovered) != 0 {
		return nil, fmt.Errorf("aggregate: PreCovered is a broadcast-only input")
	}
	g, sink := in.G, in.Source
	n := g.N()
	var parent []graph.NodeID
	var err error
	if s.Tree == TreeBounded {
		mc := s.MaxChildren
		if mc <= 0 {
			mc = DefaultMaxChildren
		}
		parent, err = BoundedSPT(g, sink, mc)
	} else {
		parent, err = SPT(g, sink)
	}
	if err != nil {
		return nil, err
	}

	k := in.K()
	oracle := in.Oracle(&s.ib)
	s.grow(n, k)
	pending, depth := s.pending[:n], s.depth[:n]
	for u := range pending {
		pending[u], depth[u] = 0, 0
	}
	for u := 0; u < n; u++ {
		if graph.NodeID(u) != sink {
			pending[parent[u]]++
		}
	}
	// depth[u] = hops to sink along the tree; deeper nodes are more urgent.
	var walk func(u graph.NodeID) int
	walk = func(u graph.NodeID) int {
		if u == sink || depth[u] != 0 {
			return depth[u]
		}
		depth[u] = walk(parent[u]) + 1
		return depth[u]
	}
	for u := 0; u < n; u++ {
		walk(graph.NodeID(u))
	}

	s.done.Clear()
	ready := s.ready[:0]
	for u := 0; u < n; u++ {
		if graph.NodeID(u) != sink && pending[u] == 0 {
			ready = append(ready, graph.NodeID(u))
		}
	}

	sched := &Schedule{Sink: sink, Start: in.Start, Parent: parent}
	transmitted := 0
	t := in.Start
	for transmitted < n-1 {
		if len(ready) == 0 {
			return nil, fmt.Errorf("aggregate: no ready node with %d transmissions left", n-1-transmitted)
		}
		// Deepest first, then lowest ID: drain the critical chains.
		sort.Slice(ready, func(i, j int) bool {
			if depth[ready[i]] != depth[ready[j]] {
				return depth[ready[i]] > depth[ready[j]]
			}
			return ready[i] < ready[j]
		})
		eligible := s.eligible[:0]
		for _, u := range ready {
			if in.Wake.Awake(int(parent[u]), t) {
				eligible = append(eligible, u)
			}
		}
		if len(eligible) == 0 {
			// Jump to the next slot where any ready node's parent wakes.
			next := -1
			for _, u := range ready {
				if na := in.Wake.NextAwake(int(parent[u]), t); next < 0 || na < next {
					next = na
				}
			}
			t = next
			continue
		}
		for ch := 0; ch < k; ch++ {
			s.groups[ch] = s.groups[ch][:0]
		}
		s.taken.Clear()
		fired := 0
		for _, u := range eligible {
			if s.taken.Has(int(parent[u])) {
				continue // one radio: this parent already receives this slot
			}
			for ch := 0; ch < k; ch++ {
				if s.admits(oracle, parent, s.groups[ch], u) {
					s.groups[ch] = insertSorted(s.groups[ch], u)
					s.taken.Add(int(parent[u]))
					fired++
					break
				}
			}
		}
		if fired == 0 {
			// Every eligible node failed its solo decode — time-independent
			// (a positive SINR noise floor can strand a link), so retrying
			// later slots would loop forever.
			return nil, fmt.Errorf("aggregate: node %d cannot decode at parent %d under %s",
				eligible[0], parent[eligible[0]], oracle.Name())
		}
		{
			for ch := 0; ch < k; ch++ {
				if len(s.groups[ch]) == 0 {
					continue
				}
				senders := append([]graph.NodeID(nil), s.groups[ch]...)
				sched.Advances = append(sched.Advances, Advance{T: t, Channel: ch, Senders: senders})
				for _, u := range senders {
					s.done.Add(int(u))
					pending[parent[u]]--
					transmitted++
				}
			}
			// Refresh the ready set: drop fired nodes, add newly unblocked.
			next := ready[:0]
			for _, u := range ready {
				if !s.done.Has(int(u)) {
					next = append(next, u)
				}
			}
			for u := 0; u < n; u++ {
				if graph.NodeID(u) != sink && pending[u] == 0 && !s.done.Has(u) && !contains(next, graph.NodeID(u)) {
					next = append(next, graph.NodeID(u))
				}
			}
			ready = next
		}
		t++
	}
	s.ready = ready[:0]
	return &Result{Scheduler: s.Name(), Schedule: sched, LatencySlots: sched.Latency()}, nil
}

// admits reports whether group ∪ {u} stays receiver-safe: every member's
// parent decodes exactly that member under the oracle. Capture (SINR) can
// admit sets the protocol model rejects and vice versa, so the whole
// candidate set is re-checked every join.
func (s *Scheduler) admits(oracle interference.Oracle, parent []graph.NodeID, group []graph.NodeID, u graph.NodeID) bool {
	s.probe = insertSorted(append(s.probe[:0], group...), u)
	for _, x := range s.probe {
		got, ok := oracle.Outcome(parent[x], s.probe)
		if !ok || got != x {
			return false
		}
	}
	return true
}

// grow (re)sizes the scratch buffers for an n-node, k-channel instance.
func (s *Scheduler) grow(n, k int) {
	if cap(s.pending) < n {
		s.pending = make([]int, n)
		s.depth = make([]int, n)
	}
	s.pending, s.depth = s.pending[:n], s.depth[:n]
	if s.taken.Capacity() < n {
		s.taken = bitset.New(n)
		s.done = bitset.New(n)
	}
	for len(s.groups) < k {
		s.groups = append(s.groups, nil)
	}
}

// insertSorted inserts u into the ascending slice, keeping it sorted —
// SINR's deterministic strongest-sender tie-break reads sender order.
func insertSorted(xs []graph.NodeID, u graph.NodeID) []graph.NodeID {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= u })
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = u
	return xs
}

func contains(xs []graph.NodeID, u graph.NodeID) bool {
	for _, x := range xs {
		if x == u {
			return true
		}
	}
	return false
}
