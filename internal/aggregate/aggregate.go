// Package aggregate schedules conflict-aware minimum-latency convergecast:
// the dual of the paper's broadcast problem. Every node holds one reading;
// readings flow UP a routing tree toward the sink, merging at each parent,
// and the schedule ends when the sink holds all of them. Where broadcast
// packs senders into coverage-maximizing conflict-free color classes,
// aggregation packs them into *receiver-safe* sender-disjoint classes: a
// sender set is admissible on one (slot, channel) iff every sender's
// parent decodes exactly that sender under the instance's interference
// oracle (graph or SINR — both via interference.Oracle.Outcome, so capture
// can rescue a class the protocol model would reject).
//
// Wake semantics invert too. In broadcast the duty cycle gates the
// *transmitter* (a sleeping node may not send; neighbors of a sender are
// covered regardless of their own wake state). In aggregation the gated
// party is the *receiver*: a child may fire only in a slot where its
// parent is awake to listen. This is the exact dual and keeps the two
// workloads on the same dutycycle.Schedule.
//
// The same Instance type drives both workloads: Instance.Source is read as
// the sink, Channels as the bundle width K, Wake as the listen schedule.
package aggregate

import (
	"fmt"

	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// Advance is one (slot, channel) transmission bundle: Senders fire
// concurrently on Channel at slot T, each delivering its merged subtree
// payload to its tree parent. Unlike the broadcast Advance there is no
// Covered list — each sender has exactly one intended receiver, Parent[u],
// and receiver-safety (not coverage) is the admissibility criterion.
type Advance struct {
	T       int
	Channel int `json:"Channel,omitempty"`
	Senders []graph.NodeID
}

// Schedule is a complete convergecast plan: a routing tree oriented at the
// sink plus the per-slot sender bundles. Every non-sink node transmits
// exactly once; when it does, its whole subtree has already merged into
// its payload, so the final transmission into the sink completes the
// aggregate.
type Schedule struct {
	Sink  graph.NodeID
	Start int
	// Parent[u] is u's tree parent (the receiver of u's one transmission);
	// Parent[Sink] = -1.
	Parent   []graph.NodeID
	Advances []Advance
}

// End returns the slot of the last transmission, Start−1 when empty.
func (s *Schedule) End() int {
	if len(s.Advances) == 0 {
		return s.Start - 1
	}
	return s.Advances[len(s.Advances)-1].T
}

// Latency returns the elapsed slots End−Start+1.
func (s *Schedule) Latency() int { return s.End() - s.Start + 1 }

// Result is the outcome of one aggregation scheduling run.
type Result struct {
	// Scheduler names the tree/assignment strategy ("agg-spt" or
	// "agg-bounded").
	Scheduler string
	Schedule  *Schedule
	// LatencySlots duplicates Schedule.Latency() for wire convenience.
	LatencySlots int
}

// Validate checks s against in and returns nil iff the schedule is a
// correct convergecast plan: the parent array is a spanning tree oriented
// at the sink over real edges, every non-sink node transmits exactly once
// and only after all its children have, parents are awake to receive,
// each parent receives on at most one channel per slot, and every
// (slot, channel) bundle is receiver-safe under the instance's
// interference oracle.
func (s *Schedule) Validate(in core.Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if len(in.PreCovered) != 0 {
		return fmt.Errorf("aggregate: PreCovered is a broadcast-only input")
	}
	n := in.G.N()
	if s.Sink != in.Source {
		return fmt.Errorf("aggregate: schedule sink %d, instance sink %d", s.Sink, in.Source)
	}
	if s.Start != in.Start {
		return fmt.Errorf("aggregate: schedule starts at %d, instance at %d", s.Start, in.Start)
	}
	if err := checkTree(in.G, s.Sink, s.Parent); err != nil {
		return err
	}

	k := in.K()
	var ib interference.Binder
	oracle := in.Oracle(&ib)

	// children[u] = number of tree children still to transmit before u may.
	pending := make([]int, n)
	for u := 0; u < n; u++ {
		if graph.NodeID(u) != s.Sink {
			pending[s.Parent[u]]++
		}
	}

	done := bitset.New(n) // nodes whose transmission is complete (strictly earlier slot)
	transmitted := 0
	prevT := s.Start - 1
	advs := s.Advances
	for gi := 0; gi < len(advs); {
		t := advs[gi].T
		if t <= prevT {
			return fmt.Errorf("aggregate: advance at t=%d not after t=%d", t, prevT)
		}
		end := gi
		for end < len(advs) && advs[end].T == t {
			end++
		}
		group := advs[gi:end]
		if len(group) > k {
			return fmt.Errorf("aggregate: %d advances in slot %d exceed %d channels", len(group), t, k)
		}
		prevCh := -1
		slotParents := bitset.New(n) // parents already receiving this slot (any channel)
		for _, adv := range group {
			if adv.Channel <= prevCh {
				return fmt.Errorf("aggregate: t=%d channel %d not above %d", t, adv.Channel, prevCh)
			}
			if adv.Channel >= k {
				return fmt.Errorf("aggregate: t=%d channel %d outside [0,%d)", t, adv.Channel, k)
			}
			prevCh = adv.Channel
			if len(adv.Senders) == 0 {
				return fmt.Errorf("aggregate: empty sender set at t=%d ch=%d", t, adv.Channel)
			}
			for _, u := range adv.Senders {
				if u < 0 || int(u) >= n {
					return fmt.Errorf("aggregate: sender %d out of range at t=%d", u, t)
				}
				if u == s.Sink {
					return fmt.Errorf("aggregate: sink %d transmits at t=%d", u, t)
				}
				if done.Has(int(u)) {
					return fmt.Errorf("aggregate: node %d transmits twice (again at t=%d)", u, t)
				}
				if pending[u] != 0 {
					return fmt.Errorf("aggregate: node %d transmits at t=%d with %d children still pending", u, t, pending[u])
				}
				p := s.Parent[u]
				if !in.Wake.Awake(int(p), t) {
					return fmt.Errorf("aggregate: parent %d of sender %d asleep at t=%d", p, u, t)
				}
				if slotParents.Has(int(p)) {
					return fmt.Errorf("aggregate: parent %d receives twice in slot %d (one radio)", p, t)
				}
				slotParents.Add(int(p))
			}
			for _, u := range adv.Senders {
				got, ok := oracle.Outcome(s.Parent[u], adv.Senders)
				if !ok || got != u {
					return fmt.Errorf("aggregate: t=%d ch=%d parent %d does not decode child %d (senders %v)",
						t, adv.Channel, s.Parent[u], u, adv.Senders)
				}
			}
		}
		// Commit the slot: same-slot senders never count as "done" for each
		// other above, so precedence is strict.
		for _, adv := range group {
			for _, u := range adv.Senders {
				done.Add(int(u))
				pending[s.Parent[u]]--
				transmitted++
			}
		}
		prevT = t
		gi = end
	}
	if transmitted != n-1 {
		return fmt.Errorf("aggregate: %d of %d non-sink nodes transmitted", transmitted, n-1)
	}
	return nil
}

// checkTree verifies parent is a spanning tree of g oriented at sink:
// right length, Parent[sink] = -1, every other parent a real graph edge,
// and every chain reaches the sink (no cycles, no strays).
func checkTree(g *graph.Graph, sink graph.NodeID, parent []graph.NodeID) error {
	n := g.N()
	if len(parent) != n {
		return fmt.Errorf("aggregate: parent array has %d entries for %d nodes", len(parent), n)
	}
	if parent[sink] != -1 {
		return fmt.Errorf("aggregate: sink %d has parent %d, want -1", sink, parent[sink])
	}
	for u := 0; u < n; u++ {
		if graph.NodeID(u) == sink {
			continue
		}
		p := parent[u]
		if p < 0 || int(p) >= n {
			return fmt.Errorf("aggregate: node %d parent %d out of range", u, p)
		}
		if !g.HasEdge(graph.NodeID(u), p) {
			return fmt.Errorf("aggregate: tree edge %d→%d not in graph", u, p)
		}
	}
	// Rooted-at-sink check: each chain must hit the sink within n hops.
	reach := bitset.New(n)
	reach.Add(int(sink))
	for u := 0; u < n; u++ {
		v, hops := graph.NodeID(u), 0
		for !reach.Has(int(v)) {
			if hops++; hops > n {
				return fmt.Errorf("aggregate: parent chain from node %d never reaches sink", u)
			}
			v = parent[v]
		}
		v = graph.NodeID(u)
		for !reach.Has(int(v)) {
			reach.Add(int(v))
			v = parent[v]
		}
	}
	return nil
}
