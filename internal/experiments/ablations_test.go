package experiments

import (
	"strings"
	"testing"
)

func ablationCfg() Config {
	return Config{Trials: 3, Seed: 5, NodeCounts: []int{60}}
}

func TestAblationSelection(t *testing.T) {
	a, err := AblationSelection(ablationCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Variants) != 5 {
		t.Fatalf("variants = %v", a.Variants)
	}
	for _, v := range a.Variants {
		s := a.Latency[v]
		if s == nil || s.N() != 3 {
			t.Fatalf("variant %q sample = %+v", v, s)
		}
		if s.Mean() <= 0 {
			t.Fatalf("variant %q mean latency %f", v, s.Mean())
		}
	}
	out := a.Format()
	if !strings.Contains(out, "max-E/two-pass") || !strings.Contains(out, "latency") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestAblationBudget(t *testing.T) {
	a, err := AblationBudget(ablationCfg(), []int{5, 50_000})
	if err != nil {
		t.Fatal(err)
	}
	small, big := a.Variants[0], a.Variants[1]
	// More budget never hurts latency and never lowers the proof rate.
	if a.Latency[big].Mean() > a.Latency[small].Mean()+1e-9 {
		t.Fatalf("bigger budget worsened latency: %f vs %f",
			a.Latency[big].Mean(), a.Latency[small].Mean())
	}
	if a.Extra["exact-rate"][big].Mean() < a.Extra["exact-rate"][small].Mean()-1e-9 {
		t.Fatalf("bigger budget lowered exact rate")
	}
	if a.Extra["states"][big].Mean() < a.Extra["states"][small].Mean() {
		t.Fatalf("bigger budget expanded fewer states")
	}
}

func TestAblationRobustness(t *testing.T) {
	a, err := AblationRobustness(ablationCfg(), []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	clean, harsh := a.Variants[0], a.Variants[1]
	// The offline plan covers everything on a clean channel and loses
	// coverage under loss.
	if got := a.Extra["plan-coverage"][clean].Mean(); got != 1 {
		t.Fatalf("plan coverage on clean channel = %f, want 1", got)
	}
	if got := a.Extra["plan-coverage"][harsh].Mean(); got >= 1 {
		t.Fatalf("plan coverage under 30%% loss = %f, want < 1", got)
	}
	// The localized scheme completes in both, paying latency and energy.
	if a.Latency[harsh].Mean() <= a.Latency[clean].Mean() {
		t.Fatalf("loss did not slow the localized scheme: %f vs %f",
			a.Latency[harsh].Mean(), a.Latency[clean].Mean())
	}
	if a.Extra["retransmit-tx"][harsh].Mean() <= a.Extra["retransmit-tx"][clean].Mean() {
		t.Fatal("loss did not increase transmissions")
	}
}

func TestPlot(t *testing.T) {
	fig, err := Figure5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := fig.Plot(60, 12)
	if !strings.Contains(out, "legend:") {
		t.Fatalf("plot missing legend:\n%s", out)
	}
	if !strings.Contains(out, "o="+SeriesOPTAnalysis) {
		t.Fatalf("plot missing series marker:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
	// Markers must actually appear on the canvas.
	canvas := strings.Join(lines[1:13], "\n")
	if !strings.ContainsAny(canvas, "o*") {
		t.Fatalf("no markers drawn:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	f := &Figure{ID: "x", Title: "t"}
	if out := f.Plot(40, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
}

func TestAblationWakeFamily(t *testing.T) {
	a, err := AblationWakeFamily(ablationCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Variants) != 4 {
		t.Fatalf("variants = %v", a.Variants)
	}
	for _, v := range a.Variants {
		s := a.Latency[v]
		if s == nil || s.N() != 3 || s.Mean() <= 0 {
			t.Fatalf("variant %q sample = %+v", v, s)
		}
	}
	// Within each family, G-OPT (exact) is never worse than the E-model
	// policy it seeds from.
	for _, fam := range []string{"uniform", "staggered"} {
		if a.Latency[fam+"/G-OPT"].Mean() > a.Latency[fam+"/E-model"].Mean()+1e-9 {
			t.Fatalf("%s: G-OPT %f worse than E-model %f", fam,
				a.Latency[fam+"/G-OPT"].Mean(), a.Latency[fam+"/E-model"].Mean())
		}
	}
}
