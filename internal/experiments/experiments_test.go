package experiments

import (
	"strings"
	"testing"
)

// tinyConfig keeps test sweeps fast: 2 trials, 3 densities, small budgets.
func tinyConfig() Config {
	return Config{
		Trials:     2,
		Seed:       7,
		NodeCounts: []int{50, 100, 150},
		GOPTBudget: 50_000,
		OPTBudget:  10_000,
		OPTMaxSets: 48,
	}
}

func TestDefaultFillsFields(t *testing.T) {
	cfg := Default(Config{})
	if cfg.Trials != 20 || cfg.Seed != 1 || len(cfg.NodeCounts) != 6 ||
		cfg.Workers < 1 || cfg.GOPTBudget <= 0 || cfg.OPTBudget <= 0 || cfg.OPTMaxSets <= 0 {
		t.Fatalf("Default = %+v", cfg)
	}
}

func TestFigure3Shape(t *testing.T) {
	fig, err := Figure3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "figure3" || len(fig.Points) != 3 {
		t.Fatalf("figure = %+v", fig)
	}
	for _, p := range fig.Points {
		for _, name := range []string{Series26Approx, SeriesOPT, SeriesGOPT, SeriesEModel, SeriesOPTAnalysis} {
			s := p.Series[name]
			if s == nil || s.N() != 2 {
				t.Fatalf("density %.3f series %q sample = %+v", p.Density, name, s)
			}
		}
		// The paper's headline orderings: OPT ≤ G-OPT ≤ E-model (policy) and
		// every conflict-aware scheduler beats the blocking baseline.
		opt := p.Series[SeriesOPT].Mean()
		gopt := p.Series[SeriesGOPT].Mean()
		em := p.Series[SeriesEModel].Mean()
		base := p.Series[Series26Approx].Mean()
		if opt > gopt+1e-9 {
			t.Fatalf("density %.3f: OPT %.2f > G-OPT %.2f", p.Density, opt, gopt)
		}
		if gopt > em+1e-9 {
			t.Fatalf("density %.3f: G-OPT %.2f > E-model %.2f (G-OPT uses E-model incumbent)", p.Density, gopt, em)
		}
		if base < gopt-1e-9 {
			t.Fatalf("density %.3f: baseline %.2f beats G-OPT %.2f", p.Density, base, gopt)
		}
		// Theorem 1: measured optimal latency within the analytical curve.
		if opt > p.Series[SeriesOPTAnalysis].Mean()+1e-9 {
			t.Fatalf("density %.3f: OPT %.2f above OPT-analysis %.2f", p.Density, opt, p.Series[SeriesOPTAnalysis].Mean())
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	cfg := tinyConfig()
	cfg.NodeCounts = []int{50, 100}
	fig, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Points {
		base := p.Series[Series17Approx].Mean()
		gopt := p.Series[SeriesGOPT].Mean()
		opt := p.Series[SeriesOPT].Mean()
		if base < gopt-1e-9 {
			t.Fatalf("17-approx %.2f beats G-OPT %.2f", base, gopt)
		}
		if opt > gopt+1e-9 {
			t.Fatalf("OPT %.2f > G-OPT %.2f", opt, gopt)
		}
	}
}

func TestFigure5And7Bounds(t *testing.T) {
	cfg := tinyConfig()
	f5, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for fi, fig := range []*Figure{f5, f7} {
		for _, p := range fig.Points {
			ours := p.Series[SeriesOPTAnalysis].Mean()
			theirs := p.Series[SeriesRef12Bound].Mean()
			if ours >= theirs {
				t.Fatalf("fig %d density %.3f: Theorem-1 bound %.1f not below [12] bound %.1f",
					fi, p.Density, ours, theirs)
			}
		}
	}
	// r=50 bounds are 5× the r=10 bounds on identical deployments.
	for i := range f5.Points {
		a := f5.Points[i].Series[SeriesOPTAnalysis].Mean()
		b := f7.Points[i].Series[SeriesOPTAnalysis].Mean()
		if b != 5*a {
			t.Fatalf("point %d: r=50 bound %.1f != 5 × r=10 bound %.1f", i, b, a)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID(2, tinyConfig()); err == nil {
		t.Fatal("figure 2 is not an evaluation figure")
	}
	fig, err := ByID(5, tinyConfig())
	if err != nil || fig.ID != "figure5" {
		t.Fatalf("ByID(5) = %v, %v", fig, err)
	}
}

func TestFormatAndCSV(t *testing.T) {
	fig, err := Figure5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := fig.Format()
	if !strings.Contains(text, "density") || !strings.Contains(text, SeriesRef12Bound) {
		t.Fatalf("Format output missing headers:\n%s", text)
	}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(fig.Points) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(fig.Points))
	}
	if !strings.HasPrefix(lines[0], "density,nodes") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestSeriesMean(t *testing.T) {
	fig, err := Figure5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	means := fig.SeriesMean(SeriesOPTAnalysis)
	if len(means) != len(fig.Points) {
		t.Fatalf("SeriesMean length %d", len(means))
	}
	for i, p := range fig.Points {
		if means[i] != p.Series[SeriesOPTAnalysis].Mean() {
			t.Fatal("SeriesMean mismatch")
		}
	}
}

func TestSummarize(t *testing.T) {
	fig, err := Figure3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(fig)
	imp := sum.ImprovementPct["figure3"]
	if imp <= 0 || imp >= 100 {
		t.Fatalf("sync improvement = %.1f%%, expected within (0,100)", imp)
	}
	if gap := sum.GOPTvsOPTMeanGap["figure3"]; gap < 0 {
		t.Fatalf("G-OPT beats OPT on average (gap %.2f)", gap)
	}
	out := sum.Format()
	if !strings.Contains(out, "figure3") || !strings.Contains(out, "improvement") {
		t.Fatalf("summary format:\n%s", out)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Figure5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].Series[SeriesOPTAnalysis].Mean() != b.Points[i].Series[SeriesOPTAnalysis].Mean() {
			t.Fatal("analytical figure not reproducible")
		}
	}
}

func TestSweepDeterministicParallel(t *testing.T) {
	// Worker count must not change the statistics, only the wall clock.
	cfg := tinyConfig()
	cfg.NodeCounts = []int{60}
	cfg.Workers = 1
	a, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Names {
		if a.Points[0].Series[name].Mean() != b.Points[0].Series[name].Mean() {
			t.Fatalf("series %q differs across worker counts", name)
		}
	}
}
