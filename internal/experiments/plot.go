package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the figure's series as an ASCII chart (density on x, mean
// latency on y), so mlb-sweep output shows the curve shapes the paper
// plots without leaving the terminal. Each series is drawn with its own
// marker; the legend maps markers to series names.
func (f *Figure) Plot(width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	if len(f.Points) == 0 {
		return "(no data)\n"
	}

	markers := []byte{'o', '*', '+', 'x', '#', '@', '%', '&'}
	maxY := 0.0
	for _, name := range f.Names {
		for _, v := range f.SeriesMean(name) {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	minX := f.Points[0].Density
	maxX := f.Points[len(f.Points)-1].Density
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((1 - y/maxY) * float64(height-1)))
		return clamp(r, 0, height-1)
	}
	for si, name := range f.Names {
		marker := markers[si%len(markers)]
		means := f.SeriesMean(name)
		for pi, p := range f.Points {
			grid[row(means[pi])][col(p.Density)] = marker
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s (y: 0..%.1f %s)\n", f.Title, maxY, f.YLabel)
	for _, line := range grid {
		fmt.Fprintf(&b, "|%s\n", string(line))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, " x: density %.3f..%.3f   legend:", minX, maxX)
	for si, name := range f.Names {
		fmt.Fprintf(&b, " %c=%s", markers[si%len(markers)], name)
	}
	b.WriteByte('\n')
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
