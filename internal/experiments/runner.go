package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mlbs/internal/core"
	"mlbs/internal/rng"
	"mlbs/internal/sim"
	"mlbs/internal/stats"
	"mlbs/internal/topology"
)

// trialResult carries one scheduler's outcome on one deployment.
type trialResult struct {
	point   int // index into the density sweep
	series  string
	latency int
	exact   bool
	tracked bool // search-based: participates in ExactFrac
}

// instanceFn builds the broadcast instance for a deployment; schedulersFn
// builds fresh scheduler values per trial (searches carry per-run state in
// engines; constructing per trial keeps workers independent).
type instanceFn func(d *topology.Deployment, trialSeed uint64) core.Instance
type schedulerFn func() []namedScheduler

type namedScheduler struct {
	name    string
	sched   core.Scheduler
	tracked bool // record exactness (search-based schedulers)
}

// sweep runs trials×densities×schedulers with a bounded worker pool and
// assembles the Figure points. Every schedule is validated against the
// model and replayed through the physics simulator; any violation aborts
// the sweep with an error identifying the offending scheduler and seed.
func sweep(cfg Config, id, title, ylabel string, names []string,
	makeInstance instanceFn, makeSchedulers schedulerFn) (*Figure, error) {

	cfg = Default(cfg)
	type job struct {
		point, trial int
		n            int
		seed         uint64
	}

	var jobs []job
	seedState := cfg.Seed
	for pi, n := range cfg.NodeCounts {
		for tr := 0; tr < cfg.Trials; tr++ {
			jobs = append(jobs, job{point: pi, trial: tr, n: n, seed: rng.SplitMix64(&seedState)})
		}
	}

	jobCh := make(chan job)
	resCh := make(chan []trialResult, len(jobs))
	errCh := make(chan error, len(jobs))
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				results, err := runTrial(cfg, j.n, j.seed, j.point, makeInstance, makeSchedulers)
				if err != nil {
					failed.Store(true)
					errCh <- fmt.Errorf("n=%d seed=%d: %w", j.n, j.seed, err)
					continue
				}
				resCh <- results
			}
		}()
	}
	// Stop feeding once any worker reports a failure: in-flight trials
	// finish, queued ones are abandoned, and the sweep fails fast instead
	// of burning the remaining grid on a doomed run.
	for _, j := range jobs {
		if failed.Load() {
			break
		}
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	close(resCh)
	close(errCh)
	// Report every worker error, not just the first drained: concurrent
	// failures (several seeds tripping the same validation) would otherwise
	// vanish silently.
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}

	points := make([]Point, len(cfg.NodeCounts))
	exactCount := make([]map[string]int, len(cfg.NodeCounts))
	trackedCount := make([]map[string]int, len(cfg.NodeCounts))
	for pi, n := range cfg.NodeCounts {
		points[pi] = Point{
			N:         n,
			Density:   topology.PaperConfig(n).Density(),
			Series:    make(map[string]*stats.Sample),
			ExactFrac: make(map[string]float64),
		}
		exactCount[pi] = make(map[string]int)
		trackedCount[pi] = make(map[string]int)
	}
	for results := range resCh {
		for _, r := range results {
			p := &points[r.point]
			s, ok := p.Series[r.series]
			if !ok {
				s = &stats.Sample{}
				p.Series[r.series] = s
			}
			s.AddInt(r.latency)
			if r.tracked {
				trackedCount[r.point][r.series]++
				if r.exact {
					exactCount[r.point][r.series]++
				}
			}
		}
	}
	for pi := range points {
		for name, total := range trackedCount[pi] {
			points[pi].ExactFrac[name] = float64(exactCount[pi][name]) / float64(total)
		}
	}
	return &Figure{ID: id, Title: title, YLabel: ylabel, Names: names, Points: points}, nil
}

// runTrial generates one deployment and runs every scheduler on it.
func runTrial(cfg Config, n int, seed uint64, point int,
	makeInstance instanceFn, makeSchedulers schedulerFn) ([]trialResult, error) {

	d, err := topology.Generate(topology.PaperConfig(n), seed)
	if err != nil {
		return nil, err
	}
	in := makeInstance(d, seed)
	var out []trialResult
	for _, ns := range makeSchedulers() {
		res, err := ns.sched.Schedule(in)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ns.name, err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			return nil, fmt.Errorf("%s produced an invalid schedule: %w", ns.name, err)
		}
		rep, err := sim.Replay(in, res.Schedule)
		if err != nil {
			return nil, fmt.Errorf("%s failed physical replay: %w", ns.name, err)
		}
		if !rep.Completed {
			return nil, fmt.Errorf("%s schedule did not physically complete", ns.name)
		}
		out = append(out, trialResult{
			point:   point,
			series:  ns.name,
			latency: res.Schedule.Latency(),
			exact:   res.Exact,
			tracked: ns.tracked,
		})
	}
	return out, nil
}
