package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/emodel"
	"mlbs/internal/localized"
	"mlbs/internal/rng"
	"mlbs/internal/sim"
	"mlbs/internal/stats"
	"mlbs/internal/topology"
)

// Ablation is a named-variant comparison at one deployment setting: for
// every variant, the latency sample across trials plus optional extras.
type Ablation struct {
	ID       string
	Title    string
	Variants []string
	Latency  map[string]*stats.Sample
	Extra    map[string]map[string]*stats.Sample // metric → variant → sample
}

// Format renders the ablation as an aligned table.
func (a *Ablation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", a.ID, a.Title)
	metrics := make([]string, 0, len(a.Extra))
	for m := range a.Extra {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	fmt.Fprintf(&b, "%-26s %-18s", "variant", "latency")
	for _, m := range metrics {
		fmt.Fprintf(&b, " %-18s", m)
	}
	b.WriteByte('\n')
	for _, v := range a.Variants {
		fmt.Fprintf(&b, "%-26s %-18s", v, a.Latency[v].String())
		for _, m := range metrics {
			if s := a.Extra[m][v]; s != nil {
				fmt.Fprintf(&b, " %-18s", s.String())
			} else {
				fmt.Fprintf(&b, " %-18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func newAblation(id, title string, variants []string) *Ablation {
	a := &Ablation{
		ID:       id,
		Title:    title,
		Variants: variants,
		Latency:  make(map[string]*stats.Sample),
		Extra:    make(map[string]map[string]*stats.Sample),
	}
	for _, v := range variants {
		a.Latency[v] = &stats.Sample{}
	}
	return a
}

func (a *Ablation) extra(metric, variant string) *stats.Sample {
	m, ok := a.Extra[metric]
	if !ok {
		m = make(map[string]*stats.Sample)
		a.Extra[metric] = m
	}
	s, ok := m[variant]
	if !ok {
		s = &stats.Sample{}
		m[variant] = s
	}
	return s
}

// ablationDeployments draws the trial deployments for an ablation at a
// single density (the paper's middle point, n = 150, unless overridden by
// cfg.NodeCounts[0]).
func ablationDeployments(cfg Config) ([]*topology.Deployment, error) {
	cfg = Default(cfg)
	n := 150
	if len(cfg.NodeCounts) > 0 {
		n = cfg.NodeCounts[0]
	}
	return topology.GenerateBatch(topology.PaperConfig(n), cfg.Seed, cfg.Trials)
}

// AblationSelection compares color-selection rules under the same greedy
// colors: Eq. 10's max-E (two-pass and one-pass seeding), max-coverage,
// first-color, and uniform-random selection.
func AblationSelection(cfg Config) (*Ablation, error) {
	deps, err := ablationDeployments(cfg)
	if err != nil {
		return nil, err
	}
	variants := []string{"max-E/two-pass", "max-E/one-pass", "max-coverage", "first-color", "random"}
	a := newAblation("ablation-selection", "color selection rule (sync, greedy colors fixed)", variants)
	for ti, d := range deps {
		in := core.Sync(d.G, d.Source)
		schedulers := map[string]core.Scheduler{
			"max-E/two-pass": core.NewEModel(emodel.TwoPass),
			"max-E/one-pass": core.NewEModel(emodel.OnePass),
			"max-coverage":   core.NewPolicy("max-coverage", core.MaxCoverageRule{}),
			"first-color":    core.NewPolicy("first-color", core.FirstColorRule{}),
			"random":         core.NewPolicy("random", core.RandomRule{Src: rng.New(cfg.Seed ^ uint64(ti))}),
		}
		for _, v := range variants {
			res, err := schedulers[v].Schedule(in)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", v, err)
			}
			if err := res.Schedule.Validate(in); err != nil {
				return nil, fmt.Errorf("%s: %w", v, err)
			}
			a.Latency[v].AddInt(res.Schedule.Latency())
		}
	}
	return a, nil
}

// AblationBudget measures what the search budget buys G-OPT: latency and
// proof rate per budget, on the duty-cycle system where searches are
// hardest.
func AblationBudget(cfg Config, budgets []int) (*Ablation, error) {
	deps, err := ablationDeployments(cfg)
	if err != nil {
		return nil, err
	}
	if len(budgets) == 0 {
		budgets = []int{10, 100, 1_000, 100_000}
	}
	variants := make([]string, len(budgets))
	for i, b := range budgets {
		variants[i] = fmt.Sprintf("budget=%d", b)
	}
	a := newAblation("ablation-budget", "G-OPT search budget (duty cycle r=10)", variants)
	for ti, d := range deps {
		wakeSeed := cfg.Seed ^ uint64(ti)<<8
		wake := dutycycle.NewUniform(d.G.N(), 10, wakeSeed, 0)
		in := core.Async(d.G, d.Source, wake, 0)
		for i, budget := range budgets {
			res, err := core.NewGOPT(budget).Schedule(in)
			if err != nil {
				return nil, err
			}
			v := variants[i]
			a.Latency[v].AddInt(res.Schedule.Latency())
			exact := 0.0
			if res.Exact {
				exact = 1
			}
			a.extra("exact-rate", v).Add(exact)
			a.extra("states", v).AddInt(res.Stats.Expanded)
		}
	}
	return a, nil
}

// AblationWakeFamily compares the paper's uniform-per-cycle wake schedule
// with the constant-phase staggered family at the same rate: staggered
// links have a fixed CWT forever (good links stay good, bad links stay
// bad), while uniform redraws per cycle — this changes both the optimum
// and how well the proactive mean-CWT E estimates track reality.
func AblationWakeFamily(cfg Config) (*Ablation, error) {
	deps, err := ablationDeployments(cfg)
	if err != nil {
		return nil, err
	}
	const r = 10
	variants := []string{"uniform/G-OPT", "uniform/E-model", "staggered/G-OPT", "staggered/E-model"}
	a := newAblation("ablation-wake-family", "wake schedule family at r=10 (slots)", variants)
	for ti, d := range deps {
		n := d.G.N()
		seed := cfg.Seed ^ uint64(ti)<<16
		families := map[string]dutycycle.Schedule{
			"uniform":   dutycycle.NewUniform(n, r, seed, 0),
			"staggered": dutycycle.NewStaggered(n, r, seed),
		}
		for fam, wake := range families {
			in := core.Async(d.G, d.Source, wake, 0)
			for name, s := range map[string]core.Scheduler{
				"G-OPT":   core.NewGOPT(cfg.GOPTBudget),
				"E-model": core.NewEModel(emodel.TwoPass),
			} {
				res, err := s.Schedule(in)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", fam, name, err)
				}
				if err := res.Schedule.Validate(in); err != nil {
					return nil, fmt.Errorf("%s/%s: %w", fam, name, err)
				}
				a.Latency[fam+"/"+name].AddInt(res.Schedule.Latency())
			}
		}
	}
	return a, nil
}

// AblationRobustness runs the offline E-model plan and the online
// localized scheme over increasingly lossy channels, quantifying the
// fragility-of-offline-plans argument of Section VI: coverage fraction for
// the plan, completion latency and retransmission overhead for the scheme.
func AblationRobustness(cfg Config, rates []float64) (*Ablation, error) {
	deps, err := ablationDeployments(cfg)
	if err != nil {
		return nil, err
	}
	if len(rates) == 0 {
		rates = []float64{0, 0.1, 0.2, 0.3}
	}
	variants := make([]string, len(rates))
	for i, r := range rates {
		variants[i] = fmt.Sprintf("loss=%.0f%%", 100*r)
	}
	a := newAblation("ablation-robustness", "lossy channel: offline plan vs localized retransmission (sync)", variants)
	for ti, d := range deps {
		in := core.Sync(d.G, d.Source)
		plan, err := core.NewEModel(0).Schedule(in)
		if err != nil {
			return nil, err
		}
		for i, rate := range rates {
			v := variants[i]
			loss := sim.IIDLoss(rate, cfg.Seed^uint64(ti*31+i))
			planRep, err := sim.ReplayLossy(in, plan.Schedule, loss)
			if err != nil {
				return nil, err
			}
			covered := 0
			for _, at := range planRep.CoveredAt {
				if at >= 0 {
					covered++
				}
			}
			a.extra("plan-coverage", v).Add(float64(covered) / float64(d.G.N()))

			locRep, _, err := localized.RunLossy(in, loss)
			if err != nil {
				return nil, err
			}
			if !locRep.Completed {
				return nil, fmt.Errorf("localized failed to complete at loss %.2f", rate)
			}
			a.Latency[v].AddInt(locRep.Latency())
			a.extra("retransmit-tx", v).AddInt(locRep.Usage.Transmissions)
		}
	}
	return a, nil
}
