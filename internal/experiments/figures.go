package experiments

import (
	"fmt"
	"strconv"

	"mlbs/internal/baseline"
	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/rng"
	"mlbs/internal/stats"
	"mlbs/internal/topology"
)

// Series names, matching the paper's legends.
const (
	Series26Approx    = "26-approx"
	Series17Approx    = "17-approx"
	SeriesOPT         = "OPT"
	SeriesGOPT        = "G-OPT"
	SeriesEModel      = "E-model"
	SeriesOPTAnalysis = "OPT-analysis"
	SeriesRef12Bound  = "bound of [12]"
)

// syncSchedulers builds the Figure 3 scheduler set.
func syncSchedulers(cfg Config) schedulerFn {
	return func() []namedScheduler {
		return []namedScheduler{
			{Series26Approx, baseline.New26(), false},
			{SeriesOPT, core.NewOPT(cfg.OPTBudget, cfg.OPTMaxSets), true},
			{SeriesGOPT, core.NewGOPT(cfg.GOPTBudget), true},
			{SeriesEModel, core.NewEModel(0), false},
		}
	}
}

// asyncSchedulers builds the Figure 4/6 scheduler set.
func asyncSchedulers(cfg Config) schedulerFn {
	return func() []namedScheduler {
		return []namedScheduler{
			{Series17Approx, baseline.New17(), false},
			{SeriesOPT, core.NewOPT(cfg.OPTBudget, cfg.OPTMaxSets), true},
			{SeriesGOPT, core.NewGOPT(cfg.GOPTBudget), true},
			{SeriesEModel, core.NewEModel(0), false},
		}
	}
}

// Figure3 regenerates the round-based experiment: P(A) latency (rounds)
// versus density for the 26-approximation, OPT, G-OPT, and E-model, plus
// the OPT-analysis curve d+2 of Theorem 1.
func Figure3(cfg Config) (*Figure, error) {
	cfg = Default(cfg)
	fig, err := sweep(cfg, "figure3",
		"P(A) in the round-based synchronous system",
		"rounds",
		[]string{Series26Approx, SeriesOPT, SeriesGOPT, SeriesEModel, SeriesOPTAnalysis},
		func(d *topology.Deployment, _ uint64) core.Instance {
			return core.Sync(d.G, d.Source)
		},
		syncSchedulers(cfg))
	if err != nil {
		return nil, err
	}
	return attachAnalysis(fig, cfg, func(d int) []analysisValue {
		return []analysisValue{{SeriesOPTAnalysis, core.SyncLatencyBound(d)}}
	})
}

// asyncFigure is the shared body of Figures 4 and 6.
func asyncFigure(cfg Config, id string, r int) (*Figure, error) {
	cfg = Default(cfg)
	cfg.Rate = r
	return sweep(cfg, id,
		"P(A) in the duty cycle system, r="+strconv.Itoa(r),
		"slots",
		[]string{Series17Approx, SeriesOPT, SeriesGOPT, SeriesEModel},
		func(d *topology.Deployment, trialSeed uint64) core.Instance {
			wakeSeed := trialSeed ^ 0xD0C5_11FE
			wake := dutycycle.NewUniform(d.G.N(), r, rng.SplitMix64(&wakeSeed), 0)
			return core.Async(d.G, d.Source, wake, 0)
		},
		asyncSchedulers(cfg))
}

// Figure4 regenerates the duty-cycle experiment at r = 10 slots.
func Figure4(cfg Config) (*Figure, error) { return asyncFigure(cfg, "figure4", 10) }

// Figure6 regenerates the light (2%) duty-cycle experiment at r = 50.
func Figure6(cfg Config) (*Figure, error) { return asyncFigure(cfg, "figure6", 50) }

// analysisValue is one analytical series value for a deployment.
type analysisValue struct {
	name  string
	value int
}

// analyticalFigure evaluates closed-form bounds over the same deployments
// the experimental figures use — Figures 5 and 7.
func analyticalFigure(cfg Config, id, title string, eval func(d int) []analysisValue, names []string) (*Figure, error) {
	cfg = Default(cfg)
	fig := &Figure{ID: id, Title: title, YLabel: "slots (bound)", Names: names}
	seedState := cfg.Seed
	for _, n := range cfg.NodeCounts {
		p := Point{
			N:         n,
			Density:   topology.PaperConfig(n).Density(),
			Series:    make(map[string]*stats.Sample),
			ExactFrac: make(map[string]float64),
		}
		for tr := 0; tr < cfg.Trials; tr++ {
			seed := rng.SplitMix64(&seedState)
			d, err := topology.Generate(topology.PaperConfig(n), seed)
			if err != nil {
				return nil, err
			}
			for _, av := range eval(d.SourceEcc) {
				s, ok := p.Series[av.name]
				if !ok {
					s = &stats.Sample{}
					p.Series[av.name] = s
				}
				s.AddInt(av.value)
			}
		}
		fig.Points = append(fig.Points, p)
	}
	return fig, nil
}

// Figure5 regenerates the analytical comparison at r = 10: Theorem 1's
// 2r(d+2) versus the 17k·d accumulation bound of [12].
func Figure5(cfg Config) (*Figure, error) {
	return analyticalFigure(cfg, "figure5",
		"analytical upper bounds in the duty cycle system, r=10",
		func(d int) []analysisValue {
			return []analysisValue{
				{SeriesOPTAnalysis, core.AsyncLatencyBound(10, d)},
				{SeriesRef12Bound, core.Ref12LatencyBound(10, d)},
			}
		},
		[]string{SeriesOPTAnalysis, SeriesRef12Bound})
}

// Figure7 regenerates the analytical comparison at r = 50.
func Figure7(cfg Config) (*Figure, error) {
	return analyticalFigure(cfg, "figure7",
		"analytical upper bounds in the duty cycle system, r=50",
		func(d int) []analysisValue {
			return []analysisValue{
				{SeriesOPTAnalysis, core.AsyncLatencyBound(50, d)},
				{SeriesRef12Bound, core.Ref12LatencyBound(50, d)},
			}
		},
		[]string{SeriesOPTAnalysis, SeriesRef12Bound})
}

// attachAnalysis appends analytical series to an experimental figure —
// Figure 3 plots OPT-analysis alongside the measured curves. Seeds are
// drawn in the same point-major order as sweep, so the bounds are
// evaluated on exactly the deployments the schedulers ran on.
func attachAnalysis(fig *Figure, cfg Config, eval func(d int) []analysisValue) (*Figure, error) {
	seedState := cfg.Seed
	for pi, n := range cfg.NodeCounts {
		for tr := 0; tr < cfg.Trials; tr++ {
			seed := rng.SplitMix64(&seedState)
			d, err := topology.Generate(topology.PaperConfig(n), seed)
			if err != nil {
				return nil, fmt.Errorf("analysis trial %d: %w", tr, err)
			}
			for _, av := range eval(d.SourceEcc) {
				s, ok := fig.Points[pi].Series[av.name]
				if !ok {
					s = &stats.Sample{}
					fig.Points[pi].Series[av.name] = s
				}
				s.AddInt(av.value)
			}
		}
	}
	return fig, nil
}
