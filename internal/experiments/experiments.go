// Package experiments regenerates the paper's evaluation: Figures 3–7 and
// the Section V-C summary claims. Each figure function sweeps the paper's
// densities (50–300 nodes over 50×50 sq ft, radius 10 ft, source
// eccentricity 5–8), runs every scheduler on every trial deployment in
// parallel, validates and physically replays each schedule, and returns
// the same series the paper plots, with dispersion statistics attached.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"mlbs/internal/mote"
	"mlbs/internal/stats"
	"mlbs/internal/topology"
)

// Config tunes an experiment sweep. The zero value selects the paper's
// setting with library defaults; see Default.
type Config struct {
	Trials     int    // deployments per density point (default 20)
	Seed       uint64 // master seed (default 1)
	NodeCounts []int  // default topology.PaperDensities()
	Workers    int    // parallel workers (default GOMAXPROCS)
	GOPTBudget int    // search budget for G-OPT (default 500k)
	OPTBudget  int    // search budget for OPT (default 50k)
	OPTMaxSets int    // per-state move cap for OPT (default 96)
	Rate       int    // duty-cycle rate r for async figures (set by figure)
}

// Default returns cfg with unset fields filled in.
func Default(cfg Config) Config {
	if cfg.Trials <= 0 {
		cfg.Trials = 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.NodeCounts) == 0 {
		cfg.NodeCounts = topology.PaperDensities()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.GOPTBudget <= 0 {
		cfg.GOPTBudget = 500_000
	}
	if cfg.OPTBudget <= 0 {
		cfg.OPTBudget = 50_000
	}
	if cfg.OPTMaxSets <= 0 {
		cfg.OPTMaxSets = 96
	}
	return cfg
}

// Point is one x-position of a figure: a density with one sample per
// series.
type Point struct {
	N       int     // nodes deployed
	Density float64 // nodes per sq ft (the paper's x axis)
	// Series maps series name → P(A) latency sample across trials.
	Series map[string]*stats.Sample
	// ExactFrac maps search-based series → fraction of trials in which the
	// search proved optimality (1.0 = every point exact).
	ExactFrac map[string]float64
}

// Figure is a regenerated paper figure: ordered series over density points.
type Figure struct {
	ID     string // e.g. "figure3"
	Title  string
	YLabel string
	Names  []string // series order for rendering
	Points []Point
}

// SeriesMean returns the mean P(A) of a series at each density, in point
// order — the curve the paper plots.
func (f *Figure) SeriesMean(name string) []float64 {
	out := make([]float64, len(f.Points))
	for i, p := range f.Points {
		if s, ok := p.Series[name]; ok {
			out[i] = s.Mean()
		}
	}
	return out
}

// Format renders the figure as an aligned text table with 95% CIs.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	fmt.Fprintf(&b, "%-10s %-6s", "density", "nodes")
	for _, name := range f.Names {
		fmt.Fprintf(&b, " %-22s", name)
	}
	b.WriteByte('\n')
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-10.3f %-6d", p.Density, p.N)
		for _, name := range f.Names {
			s := p.Series[name]
			if s == nil {
				fmt.Fprintf(&b, " %-22s", "-")
				continue
			}
			cell := fmt.Sprintf("%.2f ± %.2f", s.Mean(), s.CI95())
			if frac, ok := p.ExactFrac[name]; ok && frac < 1 {
				cell += fmt.Sprintf(" [%d%% exact]", int(frac*100+0.5))
			}
			fmt.Fprintf(&b, " %-22s", cell)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(y: %s; Mica2 slot = %v)\n", f.YLabel, mote.Mica2().SlotDuration())
	return b.String()
}

// CSV renders the figure as comma-separated series means with CI columns.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("density,nodes")
	for _, name := range f.Names {
		clean := strings.ReplaceAll(name, ",", " ")
		fmt.Fprintf(&b, ",%s,%s_ci95", clean, clean)
	}
	b.WriteByte('\n')
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%.4f,%d", p.Density, p.N)
		for _, name := range f.Names {
			s := p.Series[name]
			if s == nil {
				b.WriteString(",,")
				continue
			}
			fmt.Fprintf(&b, ",%.4f,%.4f", s.Mean(), s.CI95())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ByID dispatches a figure by its paper number.
func ByID(id int, cfg Config) (*Figure, error) {
	switch id {
	case 3:
		return Figure3(cfg)
	case 4:
		return Figure4(cfg)
	case 5:
		return Figure5(cfg)
	case 6:
		return Figure6(cfg)
	case 7:
		return Figure7(cfg)
	}
	return nil, errors.New("experiments: the paper has figures 3–7")
}

// sortedNames returns map keys in deterministic order (helper for tests).
func sortedNames(m map[string]*stats.Sample) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
