package experiments

import (
	"fmt"
	"strings"

	"mlbs/internal/stats"
)

// Summary quantifies the Section V-C claims from regenerated figures:
//
//   - "There exists a room of at least 70% improvement from the best
//     results known to date. In the synchronous system, a 70% improvement
//     is expected. In both the light ... and the heavy duty cycle system,
//     the improvement from 85% up to 90% is expected."
//   - "G-OPT is very close to OPT ... the difference between them is no
//     more than 2 hops in the round-based system. In light duty cycle
//     system, they achieve the same performance."
//   - "E-model can achieve a close performance as OPT and G-OPT."
type Summary struct {
	// ImprovementPct maps figure ID → mean percentage latency reduction of
	// G-OPT over the figure's baseline across densities.
	ImprovementPct map[string]float64
	// EModelImprovementPct is the same for the practical E-model scheduler.
	EModelImprovementPct map[string]float64
	// GOPTvsOPTMeanGap maps figure ID → mean of (G-OPT − OPT) latency.
	GOPTvsOPTMeanGap map[string]float64
	// EModelvsGOPTMeanGap maps figure ID → mean of (E-model − G-OPT).
	EModelvsGOPTMeanGap map[string]float64
}

// baselineOf returns the baseline series of a figure.
func baselineOf(fig *Figure) string {
	if fig.ID == "figure3" {
		return Series26Approx
	}
	return Series17Approx
}

// Summarize derives the Section V-C quantities from regenerated figures
// (any of Figures 3, 4, 6).
func Summarize(figs ...*Figure) *Summary {
	s := &Summary{
		ImprovementPct:       make(map[string]float64),
		EModelImprovementPct: make(map[string]float64),
		GOPTvsOPTMeanGap:     make(map[string]float64),
		EModelvsGOPTMeanGap:  make(map[string]float64),
	}
	for _, fig := range figs {
		base := baselineOf(fig)
		var imp, impE, gapGO, gapEG stats.Sample
		for _, p := range fig.Points {
			b, g, o, e := p.Series[base], p.Series[SeriesGOPT], p.Series[SeriesOPT], p.Series[SeriesEModel]
			if b == nil || g == nil {
				continue
			}
			imp.Add(stats.ImprovementPct(b.Mean(), g.Mean()))
			if e != nil {
				impE.Add(stats.ImprovementPct(b.Mean(), e.Mean()))
				gapEG.Add(e.Mean() - g.Mean())
			}
			if o != nil {
				gapGO.Add(g.Mean() - o.Mean())
			}
		}
		s.ImprovementPct[fig.ID] = imp.Mean()
		s.EModelImprovementPct[fig.ID] = impE.Mean()
		s.GOPTvsOPTMeanGap[fig.ID] = gapGO.Mean()
		s.EModelvsGOPTMeanGap[fig.ID] = gapEG.Mean()
	}
	return s
}

// Format renders the summary for EXPERIMENTS.md and mlb-sweep -summary.
func (s *Summary) Format() string {
	var b strings.Builder
	b.WriteString("Section V-C summary claims (paper → measured)\n")
	order := []string{"figure3", "figure4", "figure6"}
	for _, id := range order {
		if _, ok := s.ImprovementPct[id]; !ok {
			continue
		}
		fmt.Fprintf(&b, "%s:\n", id)
		fmt.Fprintf(&b, "  G-OPT improvement over baseline:   %.1f%%\n", s.ImprovementPct[id])
		fmt.Fprintf(&b, "  E-model improvement over baseline: %.1f%%\n", s.EModelImprovementPct[id])
		fmt.Fprintf(&b, "  mean G-OPT − OPT gap:              %.2f\n", s.GOPTvsOPTMeanGap[id])
		fmt.Fprintf(&b, "  mean E-model − G-OPT gap:          %.2f\n", s.EModelvsGOPTMeanGap[id])
	}
	return b.String()
}
