package churn

import (
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/sim"
)

// checkRepaired asserts the contract every repaired plan must satisfy:
// model-valid against the mutated instance, collision-free under the
// physics, and covering exactly the live node set.
func checkRepaired(t *testing.T, rr *ReplanResult) {
	t.Helper()
	if rr.Result == nil || rr.Result.Schedule == nil {
		t.Fatal("replan returned no schedule")
	}
	if err := rr.Result.Schedule.Validate(rr.Instance); err != nil {
		t.Fatalf("repaired schedule invalid (%s): %v", rr.Strategy, err)
	}
	rep, err := sim.Replay(rr.Instance, rr.Result.Schedule)
	if err != nil {
		t.Fatalf("replay failed (%s): %v", rr.Strategy, err)
	}
	if !rep.Completed {
		t.Fatalf("replay incomplete or collided (%s): %+v", rr.Strategy, rep.Usage)
	}
	if rr.Result.PA != rr.Result.Schedule.PA() {
		t.Fatalf("PA %d does not match schedule end %d", rr.Result.PA, rr.Result.Schedule.PA())
	}
}

func basePlanFor(t *testing.T, in core.Instance) *core.Result {
	t.Helper()
	res, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReplanJitterKeepsPrefix(t *testing.T) {
	in := paperSync(t, 80, 11)
	base := basePlanFor(t, in)
	rp := NewReplanner(ReplanConfig{})
	// A microscopic jitter cannot change any adjacency (positions are
	// floats drawn over a 50-ft area; 1e-9 ft moves nothing across the
	// 10-ft threshold with overwhelming probability).
	rr, err := rp.Replan(in, base.Schedule, Delta{Events: []Event{
		{Kind: PositionJitter, Node: (in.Source + 1) % in.G.N(), X: 1e-9, Y: 1e-9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	checkRepaired(t, rr)
	if rr.Strategy != StrategyPrefix {
		t.Fatalf("unchanged adjacency should keep the whole plan, got %s (kept %d/%d)",
			rr.Strategy, rr.KeptAdvances, rr.BaseAdvances)
	}
	if rr.Result.PA != base.PA {
		t.Fatalf("prefix strategy changed PA: %d → %d", base.PA, rr.Result.PA)
	}
}

func TestReplanNodeFailRepairs(t *testing.T) {
	in := paperSync(t, 100, 5)
	base := basePlanFor(t, in)
	rp := NewReplanner(ReplanConfig{})
	n := in.G.N()
	repaired := 0
	for victim := 0; victim < n && repaired < 8; victim++ {
		if victim == in.Source {
			continue
		}
		rr, err := rp.Replan(in, base.Schedule, Delta{Events: []Event{{Kind: NodeFail, Node: victim}}})
		if err != nil {
			continue // this victim disconnects the deployment
		}
		repaired++
		checkRepaired(t, rr)
		if rr.Instance.G.N() != n-1 {
			t.Fatalf("mutated instance has %d nodes, want %d", rr.Instance.G.N(), n-1)
		}
	}
	if repaired == 0 {
		t.Fatal("no failure was repairable on this deployment")
	}
}

func TestReplanJoinCoversNewNode(t *testing.T) {
	in := paperSync(t, 80, 3)
	base := basePlanFor(t, in)
	rp := NewReplanner(ReplanConfig{})
	// Join next to the source so connectivity is guaranteed.
	p := in.G.Pos(in.Source)
	rr, err := rp.Replan(in, base.Schedule, Delta{Events: []Event{
		{Kind: NodeJoin, X: p.X + 0.5, Y: p.Y + 0.5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	checkRepaired(t, rr)
	if rr.Instance.G.N() != in.G.N()+1 {
		t.Fatalf("join did not add a node")
	}
}

func TestReplanLargeDeltaFallsBackCold(t *testing.T) {
	in := paperSync(t, 80, 9)
	base := basePlanFor(t, in)
	rp := NewReplanner(ReplanConfig{})
	// Doubling the radius rewires essentially every adjacency: the blast
	// radius is the whole schedule.
	rr, err := rp.Replan(in, base.Schedule, Delta{Events: []Event{
		{Kind: RadiusChange, Radius: 2 * in.G.Radius()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	checkRepaired(t, rr)
	if rr.Strategy == StrategyPrefix {
		t.Fatalf("radius doubling kept the full plan — classification is not looking at the graph")
	}
}

func TestReplanDutyCycle(t *testing.T) {
	in := paperDuty(t, 60, 4, 6)
	base := basePlanFor(t, in)
	rp := NewReplanner(ReplanConfig{})
	n := in.G.N()
	done := 0
	for victim := 0; victim < n && done < 4; victim++ {
		if victim == in.Source {
			continue
		}
		rr, err := rp.Replan(in, base.Schedule, Delta{Events: []Event{{Kind: NodeFail, Node: victim}}})
		if err != nil {
			continue
		}
		done++
		checkRepaired(t, rr)
	}
	if done == 0 {
		t.Fatal("no duty-cycle failure was repairable")
	}
}

// lateSenderVictims lists non-source senders of advances in the second
// half of the schedule — failing one strands the schedule mid-way, the
// situation where the incremental/cold decision actually matters.
func lateSenderVictims(res *core.Result, source int) []int {
	var out []int
	advs := res.Schedule.Advances
	for _, adv := range advs[len(advs)/2:] {
		for _, u := range adv.Senders {
			if u != source {
				out = append(out, u)
			}
		}
	}
	return out
}

func TestReplanIncrementalVsForcedCold(t *testing.T) {
	in := paperSync(t, 100, 13)
	base := basePlanFor(t, in)
	inc := NewReplanner(ReplanConfig{})
	cold := NewReplanner(ReplanConfig{MinKeptFrac: -1})
	victims := lateSenderVictims(base, in.Source)
	if len(victims) == 0 {
		t.Fatal("no late senders on this deployment")
	}
	// MinKeptFrac<0 is total: even a delta whose surviving prefix covers
	// everything (a no-op jitter) must go through the cold engine.
	nr, err := cold.Replan(in, base.Schedule, Delta{Events: []Event{
		{Kind: PositionJitter, Node: (in.Source + 1) % in.G.N(), X: 1e-9, Y: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if nr.Strategy != StrategyCold {
		t.Fatalf("forced-cold replanner returned %s for a no-op delta", nr.Strategy)
	}
	tried := false
	for _, victim := range victims {
		d := Delta{Events: []Event{{Kind: NodeFail, Node: victim}}}
		rr, err := inc.Replan(in, base.Schedule, d)
		if err != nil {
			continue // victim disconnects the deployment
		}
		tried = true
		checkRepaired(t, rr)
		if rr.Strategy != StrategyIncremental {
			continue // some victims strand so much that prefix/cold wins
		}
		cr, err := cold.Replan(in, base.Schedule, d)
		if err != nil {
			t.Fatal(err)
		}
		checkRepaired(t, cr)
		if cr.Strategy != StrategyCold {
			t.Fatalf("MinKeptFrac<0 must force cold search, got %s", cr.Strategy)
		}
		if cr.KeptAdvances != 0 {
			t.Fatalf("cold result reports %d kept advances", cr.KeptAdvances)
		}
		return
	}
	if !tried {
		t.Fatal("every late-sender failure disconnected the deployment")
	}
	t.Fatal("no late-sender failure produced an incremental repair")
}

func TestReplanNilBasePlan(t *testing.T) {
	in := paperSync(t, 50, 1)
	if _, err := NewReplanner(ReplanConfig{}).Replan(in, nil, Delta{}); err == nil {
		t.Fatal("nil base schedule accepted")
	}
}

// The repaired plan must not alias the base schedule: mutating the base
// after a replan must not change the repaired plan.
func TestReplanResultDetachedFromBase(t *testing.T) {
	in := paperSync(t, 60, 21)
	base := basePlanFor(t, in)
	rp := NewReplanner(ReplanConfig{})
	rr, err := rp.Replan(in, base.Schedule, Delta{Events: []Event{
		{Kind: PositionJitter, Node: (in.Source + 1) % in.G.N(), X: 1e-9, Y: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	checkRepaired(t, rr)
	for _, adv := range base.Schedule.Advances {
		for i := range adv.Senders {
			adv.Senders[i] = -999
		}
		for i := range adv.Covered {
			adv.Covered[i] = -999
		}
	}
	if err := rr.Result.Schedule.Validate(rr.Instance); err != nil {
		t.Fatalf("repaired plan aliases the base schedule: %v", err)
	}
}
