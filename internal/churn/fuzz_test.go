package churn

import (
	"bytes"
	"testing"
)

// The churn decoders share the graphio fuzz contract: never panic on
// arbitrary bytes, and accepted inputs re-encode to a canonical fixed
// point.

func FuzzDecodeDelta(f *testing.F) {
	data, err := EncodeDelta(goldenDelta())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{"version":1,"events":[{"kind":"fail","node":0}]}`))
	f.Add([]byte(`{"version":1,"events":[{"kind":"radius","radius":1e308}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			return
		}
		if _, err := DeltaDigest(d); err != nil {
			t.Fatalf("accepted delta does not digest: %v", err)
		}
		enc, err := EncodeDelta(d)
		if err != nil {
			t.Fatalf("accepted delta does not re-encode: %v", err)
		}
		d2, err := DecodeDelta(enc)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		enc2, err := EncodeDelta(d2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}

func FuzzDecodeTrace(f *testing.F) {
	f.Add([]byte(`{"version":1,"seed":7,"base_digest":"ab","config":{"horizon_hours":1},` +
		`"events":[{"at":3,"kind":"join","x":1,"y":2},{"at":9,"kind":"fail","node":1}]}`))
	f.Add([]byte(`{"version":1,"events":[{"at":-1,"kind":"jitter","node":0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data)
		if err != nil {
			return
		}
		enc, err := EncodeTrace(tr)
		if err != nil {
			t.Fatalf("accepted trace does not re-encode: %v", err)
		}
		tr2, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		enc2, err := EncodeTrace(tr2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
