package churn

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"mlbs/internal/core"
	"mlbs/internal/geom"
	"mlbs/internal/graphio"
	"mlbs/internal/rng"
)

// TraceConfig parameterizes a synthetic churn trace: independent Poisson
// processes for failures, joins and position jitter over a wall-clock
// horizon measured in wake slots. Zero-valued fields select the defaults
// noted on each field.
type TraceConfig struct {
	// HorizonHours is the trace length. Default 4.
	HorizonHours float64 `json:"horizon_hours"`
	// SlotsPerHour converts event times to slots. Default 100_000
	// (≈ 36 ms slots, the Mica2 ballpark).
	SlotsPerHour int `json:"slots_per_hour"`
	// FailsPerHour / JoinsPerHour / JittersPerHour are the Poisson rates.
	// Zero rates mean exactly that: all three at zero generate an empty
	// trace (no silent defaults — a zero-churn control run must stay one).
	FailsPerHour   float64 `json:"fails_per_hour"`
	JoinsPerHour   float64 `json:"joins_per_hour"`
	JittersPerHour float64 `json:"jitters_per_hour"`
	// JitterSigma is the per-axis standard deviation of a jitter
	// displacement, in the deployment's length unit (feet for the paper
	// topology). Default 1.
	JitterSigma float64 `json:"jitter_sigma"`
	// MinNodes / MaxNodes clamp the live node count: failures are
	// suppressed at the floor, joins at the ceiling. Defaults: half and
	// double the base node count.
	MinNodes int `json:"min_nodes"`
	MaxNodes int `json:"max_nodes"`
}

func (cfg TraceConfig) withDefaults(baseN int) TraceConfig {
	if cfg.HorizonHours <= 0 {
		cfg.HorizonHours = 4
	}
	if cfg.SlotsPerHour <= 0 {
		cfg.SlotsPerHour = 100_000
	}
	if cfg.JitterSigma <= 0 {
		cfg.JitterSigma = 1
	}
	if cfg.MinNodes <= 0 {
		cfg.MinNodes = max(2, baseN/2)
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 2 * baseN
	}
	return cfg
}

// TraceEvent is one timed topology event. At is the slot at which the
// event takes effect; event node IDs refer to the ID space produced by all
// earlier trace events (the same sequential semantics as Delta).
type TraceEvent struct {
	At int `json:"at"`
	Event
}

// Trace is a generated churn history against a specific base instance.
// Every event is applicable in sequence: the generator rejection-samples
// events so the evolving topology stays connected and keeps its source.
type Trace struct {
	Seed       uint64       `json:"seed"`
	BaseDigest string       `json:"base_digest"`
	Cfg        TraceConfig  `json:"config"`
	Events     []TraceEvent `json:"events"`
}

// Delta flattens the trace's events (dropping timestamps) into one delta —
// the form Apply and Replan consume. A sub-range [i, j) of events is a
// valid delta against the instance produced by events [0, i).
func (tr *Trace) Delta(i, j int) Delta {
	evs := make([]Event, 0, j-i)
	for _, te := range tr.Events[i:j] {
		evs = append(evs, te.Event)
	}
	return Delta{Events: evs}
}

// maxEventTries bounds rejection sampling per event slot before the event
// is skipped (e.g. every candidate failure would disconnect the network).
const maxEventTries = 32

// GenerateTrace draws a seeded Poisson churn trace against the base
// instance. The generator evolves a copy of the instance event by event
// and only emits events the evolving topology survives (connected, source
// alive), so replaying the trace through Apply never fails.
func GenerateTrace(base core.Instance, cfg TraceConfig, seed uint64) (*Trace, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("churn: invalid base instance: %w", err)
	}
	if base.G.Radius() <= 0 {
		return nil, errors.New("churn: base instance is not a unit-disk graph")
	}
	if cfg.FailsPerHour < 0 || cfg.JoinsPerHour < 0 || cfg.JittersPerHour < 0 {
		return nil, errors.New("churn: negative event rate")
	}
	cfg = cfg.withDefaults(base.G.N())
	digest, err := graphio.InstanceDigest(base)
	if err != nil {
		return nil, err
	}

	// Joins land uniformly in the base deployment's bounding box — the
	// best stand-in for the original interest area recoverable from the
	// instance alone.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range base.G.Positions() {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}

	r := rng.New(seed)
	tr := &Trace{Seed: seed, BaseDigest: digest.String(), Cfg: cfg}
	cur := base
	total := cfg.FailsPerHour + cfg.JoinsPerHour + cfg.JittersPerHour
	if total <= 0 {
		return tr, nil
	}
	for hours := expSample(r, total); hours < cfg.HorizonHours; hours += expSample(r, total) {
		at := int(hours * float64(cfg.SlotsPerHour))
		pick := r.Float64() * total
		var kind Kind
		switch {
		case pick < cfg.FailsPerHour:
			kind = NodeFail
		case pick < cfg.FailsPerHour+cfg.JoinsPerHour:
			kind = NodeJoin
		default:
			kind = PositionJitter
		}
		n := cur.G.N()
		if kind == NodeFail && n <= cfg.MinNodes {
			continue
		}
		if kind == NodeJoin && n >= cfg.MaxNodes {
			continue
		}
		for try := 0; try < maxEventTries; try++ {
			ev := sampleEvent(r, kind, cur, geom.Point{X: minX, Y: minY}, geom.Point{X: maxX, Y: maxY}, cfg.JitterSigma)
			next, _, err := Apply(cur, Delta{Events: []Event{ev}})
			if err != nil {
				continue // would disconnect / hit the source; redraw
			}
			cur = next
			tr.Events = append(tr.Events, TraceEvent{At: at, Event: ev})
			break
		}
	}
	return tr, nil
}

// sampleEvent draws one candidate event of the given kind against the
// current topology.
func sampleEvent(r *rng.Source, kind Kind, cur core.Instance, lo, hi geom.Point, sigma float64) Event {
	switch kind {
	case NodeFail:
		// Never draw the source: failing it is a dead end by definition.
		u := r.Intn(cur.G.N() - 1)
		if u >= cur.Source {
			u++
		}
		return Event{Kind: NodeFail, Node: u}
	case NodeJoin:
		return Event{Kind: NodeJoin, X: r.InRange(lo.X, hi.X), Y: r.InRange(lo.Y, hi.Y)}
	default:
		return Event{Kind: PositionJitter, Node: r.Intn(cur.G.N()),
			X: sigma * r.NormFloat64(), Y: sigma * r.NormFloat64()}
	}
}

// expSample draws an exponential inter-arrival time (hours) for rate
// events per hour.
func expSample(r *rng.Source, rate float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// traceJSON is the stored form of a Trace.
type traceJSON struct {
	Version int `json:"version"`
	Trace
}

// EncodeTrace serializes a churn trace.
func EncodeTrace(tr *Trace) ([]byte, error) {
	if tr == nil {
		return nil, errors.New("churn: nil trace")
	}
	for i, te := range tr.Events {
		if err := te.Validate(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return json.MarshalIndent(traceJSON{Version: codecVersion, Trace: *tr}, "", " ")
}

// DecodeTrace rebuilds a trace from EncodeTrace output, validating every
// event and the timestamp ordering. It never panics on arbitrary bytes.
func DecodeTrace(data []byte) (*Trace, error) {
	var st traceJSON
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("churn: %w", err)
	}
	if st.Version != codecVersion {
		return nil, fmt.Errorf("churn: unsupported trace version %d", st.Version)
	}
	if len(st.Events) > maxWireEvents {
		return nil, fmt.Errorf("churn: trace has %d events (limit %d)", len(st.Events), maxWireEvents)
	}
	prev := -1
	for i, te := range st.Events {
		if err := te.Validate(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		if te.At < prev {
			return nil, fmt.Errorf("churn: trace events out of order at index %d", i)
		}
		prev = te.At
	}
	out := st.Trace
	return &out, nil
}
